package experiments

import (
	"testing"
)

func TestCOOShape(t *testing.T) {
	res, err := RunCOO(Config{})
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Tables[0].Rows
	prevGain := 1e18
	for _, row := range rows {
		lstar := parseCell(t, row[1])
		cht := parseCell(t, row[2])
		iht := parseCell(t, row[3])
		gain := parseCell(t, row[4])
		// Dominance chain: coordinated L* ≤ coordinated HT ≤ independent HT.
		if lstar > cht+1e-9 {
			t.Errorf("t=%s: coord L* (%g) should not exceed coord HT (%g)", row[0], lstar, cht)
		}
		if cht > iht+1e-9 {
			t.Errorf("t=%s: coord HT (%g) should not exceed indep HT (%g)", row[0], cht, iht)
		}
		if gain < 1 {
			t.Errorf("t=%s: coordination gain %g below 1", row[0], gain)
		}
		// The gain shrinks as tuples become similar but never vanishes.
		if gain > prevGain+1e-9 {
			t.Errorf("t=%s: gain %g should decrease with similarity", row[0], gain)
		}
		prevGain = gain
	}
}

func TestJACEstimatesTrackTruth(t *testing.T) {
	res, err := RunJAC(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Tables[0].Rows {
		exact := parseCell(t, row[0])
		mean := parseCell(t, row[2])
		if d := mean - exact; d > 0.05+0.1*exact || d < -0.05-0.1*exact {
			t.Errorf("J=%g: mean estimate %g strays", exact, mean)
		}
	}
}
