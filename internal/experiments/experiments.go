// Package experiments reproduces every table, figure and quantitative
// claim of the paper's examples and Section 7 summaries. Each experiment
// has an ID matching DESIGN.md's index and produces report tables and/or
// figure series; cmd/mesrun and cmd/mesfig render them, bench_test.go wraps
// them as benchmarks, and EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/report"
)

// newRand returns a deterministic source for experiment data generation.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Config tunes experiment sizes.
type Config struct {
	// Quick shrinks workloads for benchmarks and smoke tests.
	Quick bool
	// Seed drives all synthetic randomness (defaults to 1).
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Result is an experiment's output.
type Result struct {
	// Tables holds paper-style tables.
	Tables []report.Table
	// Figures holds figure series (Examples 3–4 plots).
	Figures []report.Figure
}

// Experiment pairs an ID with its runner.
type Experiment struct {
	// ID matches DESIGN.md's experiment index (e.g. "F3").
	ID string
	// Title is a one-line description.
	Title string
	// Run executes the experiment.
	Run func(Config) (Result, error)
}

// All returns the experiments in index order.
func All() []Experiment {
	return []Experiment{
		{ID: "E1", Title: "Example 1: dataset and exact queries", Run: RunE1},
		{ID: "E2", Title: "Example 2: coordinated PPS outcomes", Run: RunE2},
		{ID: "F3", Title: "Example 3 figures: lower bounds and hulls for RGp+", Run: RunF3},
		{ID: "F4", Title: "Example 4 figures: L*, U*, v-optimal estimates", Run: RunF4},
		{ID: "E5", Title: "Example 5: order-optimal estimators on a discrete domain", Run: RunE5},
		{ID: "T41", Title: "Theorem 4.1 tightness family: ratio 2/(1-p) → 4", Run: RunT41},
		{ID: "RAT", Title: "L* competitive ratios for RG1 (2) and RG2 (2.5)", Run: RunRAT},
		{ID: "DOM", Title: "L* dominates Horvitz-Thompson", Run: RunDOM},
		{ID: "LP", Title: "Section 7: Lp-difference estimation on flows vs stable data", Run: RunLP},
		{ID: "SIM", Title: "Section 7: ADS closeness similarity", Run: RunSIM},
		{ID: "UNIV", Title: "Conclusion: universal-ratio bounds", Run: RunUNIV},
		{ID: "COO", Title: "Motivation: coordinated vs independent sampling", Run: RunCOO},
		{ID: "JAC", Title: "Application: Jaccard over coordinated 0/1 samples", Run: RunJAC},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, 0, len(All()))
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, ids)
}
