package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/funcs"
	"repro/internal/report"
	"repro/internal/sampling"
)

// RunT41 reproduces the Theorem 4.1 tightness family: V = [0,1], PPS
// τ(u) = u, f(v) = (1 − v^{1−p})/(1−p), data v = 0. The closed forms are
// v-optimal f̂(u) = u^{-p} and L*(u) = (u^{-p} − 1)/p, whose squares
// integrate to 1/(1−2p) and 2/((1−2p)(1−p)) — ratio 2/(1−p), approaching 4
// as p → 0.5⁻. Measured values come from quadrature on the closed forms.
func RunT41(cfg Config) (Result, error) {
	tbl := report.Table{
		ID:    "T41",
		Title: "Tightness family: measured L* ratio vs analytic 2/(1−p)",
		Cols:  []string{"p", "E[(L*)²]", "E[(opt)²]", "measured ratio", "analytic 2/(1−p)"},
	}
	ps := []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.45, 0.48, 0.49}
	if cfg.Quick {
		ps = []float64{0.1, 0.3, 0.45}
	}
	for _, p := range ps {
		lstar := func(x float64) float64 {
			if x <= 0 || x > 1 {
				return 0
			}
			return (math.Pow(x, -p) - 1) / p
		}
		vopt := func(x float64) float64 {
			if x <= 0 || x > 1 {
				return 0
			}
			return math.Pow(x, -p)
		}
		lsq := core.SquareOf(lstar)
		osq := core.SquareOf(vopt)
		ratio := lsq / osq
		analytic := 2 / (1 - p)
		if !closeRel(ratio, analytic, 1e-3) {
			return Result{}, fmt.Errorf("experiments: T41 p=%g ratio %g vs analytic %g", p, ratio, analytic)
		}
		tbl.AddRow(report.Fmt(p), report.Fmt(lsq), report.Fmt(osq), report.Fmt(ratio), report.Fmt(analytic))
	}
	tbl.Notes = append(tbl.Notes,
		"ratio → 4 as p → 0.5⁻; every row is ≤ 4, matching the tight bound of Theorem 4.1")
	return Result{Tables: []report.Table{tbl}}, nil
}

// RunRAT reproduces the quoted competitive ratios of L* for the
// exponentiated range: the supremum over data of
// E[(L*)²]/E[(opt)²] is 2 for p = 1 and 2.5 for p = 2 (attained at
// vectors with a vanishing second entry).
func RunRAT(cfg Config) (Result, error) {
	scheme := sampling.UniformTuple(2)
	tbl := report.Table{
		ID:    "RAT",
		Title: "L* competitive ratio for RG_p over the data domain",
		Cols:  []string{"p", "sup ratio (measured)", "argmax v", "paper"},
	}
	steps := 8
	if cfg.Quick {
		steps = 4
	}
	paper := map[float64]string{1: "2", 2: "2.5"}
	for _, p := range []float64{1, 2} {
		f, err := funcs.NewRGPlus(p)
		if err != nil {
			return Result{}, err
		}
		best, bestV := 0.0, []float64{0, 0}
		for i := 1; i <= steps; i++ {
			v1 := float64(i) / float64(steps)
			for j := 0; j < steps; j++ {
				v2 := v1 * float64(j) / float64(steps)
				v := []float64{v1, v2}
				ratio, err := lstarRatio(f, scheme, v)
				if err != nil {
					return Result{}, err
				}
				if ratio > best {
					best, bestV = ratio, v
				}
			}
		}
		if best > 4+1e-2 {
			return Result{}, fmt.Errorf("experiments: RAT p=%g ratio %g exceeds 4", p, best)
		}
		tbl.AddRow(report.Fmt(p), report.Fmt(best),
			fmt.Sprintf("(%.3g,%.3g)", bestV[0], bestV[1]), paper[p])
	}
	tbl.Notes = append(tbl.Notes,
		"the supremum is attained at v2 = 0 (HT-inapplicable data): ratios 2 and 2.5 as quoted in Section 1")
	return Result{Tables: []report.Table{tbl}}, nil
}

// lstarRatio computes the per-data competitive ratio of L* via closed-form
// estimates and the hull-based optimum.
func lstarRatio(f funcs.F, scheme sampling.TupleScheme, v []float64) (float64, error) {
	est := func(u float64) float64 {
		if u <= 0 || u > 1 {
			return 0
		}
		return funcs.EstimateLStar(f, scheme.Sample(v, u))
	}
	lb := funcs.DataLB(f, scheme, v)
	r, err := core.CompetitiveRatioAt(est, lb, f.Value(v), core.Grid{Breaks: []float64{v[1], v[0]}})
	if err != nil {
		return 0, fmt.Errorf("experiments: ratio at %v: %w", v, err)
	}
	return r.Value(), nil
}

// RunDOM verifies the Theorem 4.2 corollary on a grid of data vectors: the
// L* estimator dominates Horvitz–Thompson everywhere, strictly wherever HT
// wastes partial information, and remains defined where HT does not exist
// (v2 = 0 — the paper's (0.5, 0) example).
func RunDOM(cfg Config) (Result, error) {
	scheme := sampling.UniformTuple(2)
	f, err := funcs.NewRGPlus(1)
	if err != nil {
		return Result{}, err
	}
	tbl := report.Table{
		ID:    "DOM",
		Title: "Var[L*] vs Var[HT] for RG1+ under coordinated PPS",
		Cols:  []string{"v", "f(v)", "Var[L*]", "Var[HT]", "HT/L*"},
	}
	grid := [][]float64{
		{0.5, 0}, {0.6, 0.2}, {0.6, 0.4}, {0.9, 0.1}, {0.9, 0.5}, {0.9, 0.8}, {0.3, 0.1}, {1, 0.01},
	}
	for _, v := range grid {
		val := f.Value(v)
		est := func(u float64) float64 {
			if u <= 0 || u > 1 {
				return 0
			}
			return funcs.EstimateLStar(f, scheme.Sample(v, u))
		}
		lvar := core.SquareOf(est) - val*val
		hsq := core.HTSquare(val, v[1]) // reveal prob = v2 under τ*=1
		hvar := hsq - val*val
		ratioCell := "+Inf (HT inapplicable)"
		if !math.IsInf(hvar, 1) {
			if lvar > hvar+1e-6 {
				return Result{}, fmt.Errorf("experiments: DOM violated at %v: L* %g > HT %g", v, lvar, hvar)
			}
			ratioCell = report.Fmt(hvar / lvar)
		}
		tbl.AddRow(fmt.Sprintf("(%g,%g)", v[0], v[1]), report.Fmt(val),
			report.Fmt(lvar), report.Fmt(hvar), ratioCell)
	}
	tbl.Notes = append(tbl.Notes,
		"Var[L*] ≤ Var[HT] on every row; rows with v2 = 0 have no HT estimator at all (Section 1)")
	return Result{Tables: []report.Table{tbl}}, nil
}

func closeRel(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}
