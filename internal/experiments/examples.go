package experiments

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/funcs"
	"repro/internal/report"
	"repro/internal/sampling"
)

// RunE1 reproduces Example 1: the 3×8 dataset and its example queries.
// Three of the paper's printed constants are arithmetic slips (0.71→0.72,
// 0.235→0.28, 1.18→1.4144); the table lists both.
func RunE1(cfg Config) (Result, error) {
	d := dataset.Example1()
	rg1, err := funcs.NewRG(1)
	if err != nil {
		return Result{}, err
	}
	rg2, err := funcs.NewRG(2)
	if err != nil {
		return Result{}, err
	}
	rg1p, err := funcs.NewRGPlus(1)
	if err != nil {
		return Result{}, err
	}
	g, err := funcs.NewLinComb([]float64{1, -2, 1}, 2)
	if err != nil {
		return Result{}, err
	}

	sub := func(f funcs.F, instances []int, letters string) float64 {
		var sum float64
		for _, k := range dataset.Example1Items(letters) {
			sum += f.Value(d.SubTuple(k, instances))
		}
		return sum
	}
	two := []int{0, 1}
	l22 := sub(rg2, two, "cfh")

	tbl := report.Table{
		ID:    "E1",
		Title: "Example 1 queries (exact values)",
		Cols:  []string{"query", "measured", "paper"},
	}
	tbl.AddRow("L1({b,c,e})", report.Fmt(sub(rg1, two, "bce")), "0.71 (slip; correct 0.72)")
	tbl.AddRow("L2^2({c,f,h})", report.Fmt(l22), "≈0.16")
	tbl.AddRow("L2({c,f,h})", report.Fmt(math.Sqrt(l22)), "≈0.40")
	tbl.AddRow("L1+({b,c,e})", report.Fmt(sub(rg1p, two, "bce")), "0.235 (slip; correct 0.28)")
	tbl.AddRow("G({b,d})", report.Fmt(d.ExactSum(g, dataset.Example1Items("bd"))), "≈1.18 (slip; correct 1.4144)")
	tbl.Notes = append(tbl.Notes,
		"printed 'slip' values re-derived by hand from the Example 1 matrix; see EXPERIMENTS.md")
	return Result{Tables: []report.Table{tbl}}, nil
}

// RunE2 reproduces Example 2: coordinated PPS outcomes of the Example 1
// dataset under the paper's fixed per-item seeds.
func RunE2(cfg Config) (Result, error) {
	d := dataset.Example1()
	scheme := sampling.UniformTuple(3)
	seeds := []float64{0.32, 0.21, 0.04, 0.23, 0.84, 0.70, 0.15, 0.64}
	paper := []string{
		"(0.95,*,*)", "(*,0.44,*)", "(0.23,*,*)", "(0.7,0.8,*)",
		"(*,*,*)", "(*,*,*)", "(*,0.2,*)", "(*,*,*)",
	}
	tbl := report.Table{
		ID:    "E2",
		Title: "Example 2 coordinated PPS outcomes (τ*=1, fixed seeds)",
		Cols:  []string{"item", "seed", "outcome", "paper"},
	}
	for k := 0; k < d.N(); k++ {
		o := scheme.Sample(d.Tuple(k), seeds[k])
		pattern := "("
		for i := range o.Known {
			if i > 0 {
				pattern += ","
			}
			if o.Known[i] {
				pattern += fmt.Sprintf("%g", o.Vals[i])
			} else {
				pattern += "*"
			}
		}
		pattern += ")"
		tbl.AddRow(string(rune('a'+k)), report.Fmt(seeds[k]), pattern, paper[k])
		if pattern != paper[k] {
			return Result{}, fmt.Errorf("experiments: E2 outcome for item %c = %s, paper says %s",
				'a'+k, pattern, paper[k])
		}
	}
	tbl.Notes = append(tbl.Notes, "all eight outcome patterns match the paper")
	return Result{Tables: []report.Table{tbl}}, nil
}
