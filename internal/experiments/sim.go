package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/ads"
	"repro/internal/graph"
	"repro/internal/report"
	"repro/internal/sampling"
	"repro/internal/stats"
)

// RunSIM reproduces the Section 7 closeness-similarity study [9]: build
// all-distances sketches of a synthetic social network (preferential
// attachment), estimate sim(u,v) = Σα(max d)/Σα(min d) from sketches alone
// using HIP probabilities and the L* estimator, and report the error
// against exact all-pairs values as the sketch parameter k grows.
func RunSIM(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	n, m, pairs := 400, 3, 60
	ks := []int{4, 8, 16, 32}
	if cfg.Quick {
		n, pairs = 120, 15
		ks = []int{4, 16}
	}
	g, err := graph.PreferentialAttachment(n, m, cfg.Seed)
	if err != nil {
		return Result{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	type pair struct{ u, v int }
	ps := make([]pair, pairs)
	exact := make([]float64, pairs)
	for i := range ps {
		ps[i] = pair{rng.Intn(n), rng.Intn(n)}
		exact[i] = ads.ExactSimilarity(g, ps[i].u, ps[i].v, ads.AlphaInverse)
	}
	tbl := report.Table{
		ID:    "SIM",
		Title: "ADS closeness similarity: sketch estimate vs exact (α = 1/(1+d))",
		Cols:  []string{"k", "mean sketch size", "NRMSE", "mean rel bias"},
	}
	for _, k := range ks {
		sketches, err := ads.Build(g, k, sampling.NewSeedHash(uint64(cfg.Seed)+uint64(k)*77))
		if err != nil {
			return Result{}, err
		}
		var size stats.Welford
		for _, s := range sketches {
			size.Add(float64(len(s.Entries)))
		}
		var meter stats.ErrorMeter
		for i, p := range ps {
			est := ads.EstimateSimilarity(sketches[p.u], sketches[p.v], ads.AlphaInverse)
			meter.Add(est, exact[i])
		}
		if k >= 16 && meter.NRMSE() > 0.5 {
			return Result{}, fmt.Errorf("experiments: SIM k=%d NRMSE %g too large", k, meter.NRMSE())
		}
		tbl.AddRow(fmt.Sprintf("%d", k), report.Fmt(size.Mean()),
			report.Fmt(meter.NRMSE()), report.Fmt(meter.RelBias()))
	}
	tbl.Notes = append(tbl.Notes,
		"error decreases with k; sketch size grows ~k·log n while the graph has "+fmt.Sprint(n)+" nodes")
	return Result{Tables: []report.Table{tbl}}, nil
}
