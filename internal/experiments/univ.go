package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/numeric"
	"repro/internal/report"
)

// RunUNIV addresses the conclusion's universal-ratio discussion: the lowest
// competitive ratio guaranteeable across all monotone estimation problems
// lies between ~1.4 and 4. Two demonstrations:
//
//  1. Upper bound: the L* ratio stays ≤ 4 on randomized step-lower-bound
//     instances (Theorem 4.1's guarantee, exercised beyond the closed-form
//     families).
//  2. Lower bound: on geometric-ladder domains V = {b·q^i} under PPS with
//     f(v) = v, even the instance-optimal estimator (computed by convex
//     minimax over the shared unrevealed segments) has ratio strictly
//     above 1, showing no estimator is simultaneously optimal for all data
//     — the source of the >1 universal bound. The L* ratio on the same
//     instances quantifies what the 4-competitive default gives up.
func RunUNIV(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()

	// Part 1: randomized instances, L* ratio ≤ 4.
	rng := rand.New(rand.NewSource(cfg.Seed))
	instances := 300
	if cfg.Quick {
		instances = 40
	}
	worst := 0.0
	for i := 0; i < instances; i++ {
		steps := randomSteps(rng)
		lb := core.StepLB(0, steps)
		value := lb(1e-12)
		est := func(u float64) float64 {
			if u <= 0 || u > 1 {
				return 0
			}
			return core.LStarStep(0, steps, u)
		}
		breaks := make([]float64, len(steps))
		for j, s := range steps {
			breaks[j] = s.At
		}
		r, err := core.CompetitiveRatioAt(est, lb, value, core.Grid{Breaks: breaks})
		if err != nil {
			return Result{}, err
		}
		if v := r.Value(); v > worst {
			worst = v
		}
	}
	if worst > 4+1e-2 {
		return Result{}, fmt.Errorf("experiments: UNIV random instance ratio %g exceeds 4", worst)
	}
	upper := report.Table{
		ID:    "UNIV",
		Title: "Upper bound: worst L* ratio over randomized step instances",
		Cols:  []string{"instances", "worst L* ratio", "bound"},
	}
	upper.AddRow(fmt.Sprint(instances), report.Fmt(worst), "4 (Theorem 4.1)")

	// Part 2: ladder-domain minimax.
	lower := report.Table{
		ID:    "UNIV",
		Title: "Lower bound: instance-optimal vs L* ratio on geometric ladders",
		Cols:  []string{"ladder (b,q,m)", "optimal minimax ratio", "L* ratio"},
	}
	type ladder struct {
		b float64
		q float64
		m int
	}
	ladders := []ladder{{0.5, 0.5, 2}, {0.5, 0.5, 4}, {0.9, 0.3, 4}, {0.9, 0.5, 6}, {0.7, 0.7, 6}}
	if cfg.Quick {
		ladders = ladders[:2]
	}
	bestMinimax := 0.0
	for _, ld := range ladders {
		opt, lstar, err := ladderRatios(ld.b, ld.q, ld.m)
		if err != nil {
			return Result{}, err
		}
		if opt > lstar+1e-6 {
			return Result{}, fmt.Errorf("experiments: UNIV ladder (%g,%g,%d): minimax %g above L* %g",
				ld.b, ld.q, ld.m, opt, lstar)
		}
		if opt > bestMinimax {
			bestMinimax = opt
		}
		lower.AddRow(fmt.Sprintf("(%g,%g,%d)", ld.b, ld.q, ld.m), report.Fmt(opt), report.Fmt(lstar))
	}
	lower.Notes = append(lower.Notes,
		fmt.Sprintf("largest instance-optimal ratio found: %.4g — a certified lower bound on the universal ratio for these instances", bestMinimax),
		"the paper's conclusion cites constructions reaching ≥ 1.4; the ladder family shows the same phenomenon")
	return Result{Tables: []report.Table{upper, lower}}, nil
}

func randomSteps(rng *rand.Rand) []core.Step {
	n := 1 + rng.Intn(6)
	ats := make([]float64, n)
	for i := range ats {
		ats[i] = 0.02 + 0.98*rng.Float64()
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(ats)))
	steps := make([]core.Step, n)
	for i := range steps {
		steps[i] = core.Step{At: ats[i], Delta: 0.1 + rng.Float64()}
	}
	return steps
}

// ladderRatios computes, for the domain V = {b·q^i : i = 0..m} under PPS
// τ = 1 and f(v) = v, (a) the minimax competitive ratio over estimators
// that are constant on the shared unrevealed segments (the optimal shape),
// found by coordinate descent, and (b) the L* ratio.
func ladderRatios(b, q float64, m int) (minimax, lstar float64, err error) {
	vals := make([]float64, m+1)
	for i := range vals {
		vals[i] = b * math.Pow(q, float64(i))
	}
	vm := vals[m]
	// Segment lengths: segment 0 = (v0, 1], segment j = (v_j, v_{j-1}].
	lens := make([]float64, m+1)
	lens[0] = 1 - vals[0]
	for j := 1; j <= m; j++ {
		lens[j] = vals[j-1] - vals[j]
	}
	// Standalone v-optimal squares.
	opts := make([]float64, m+1)
	for i, vi := range vals {
		lb := func(u float64) float64 {
			if u > vi {
				return vm
			}
			return vi
		}
		o, oerr := core.OptimalSquare(lb, vi, core.Grid{Breaks: []float64{vi}})
		if oerr != nil {
			return 0, 0, oerr
		}
		opts[i] = o
	}
	square := func(s []float64, i int) float64 {
		var sq, mass float64
		for j := 0; j <= i; j++ {
			sq += s[j] * s[j] * lens[j]
			mass += s[j] * lens[j]
		}
		rem := vals[i] - mass
		return sq + rem*rem/vals[i]
	}
	objective := func(s []float64) float64 {
		worst := 0.0
		for i := range vals {
			if r := square(s, i) / opts[i]; r > worst {
				worst = r
			}
		}
		return worst
	}
	// Coordinate descent over the shared segment values, respecting the
	// mass cap P_j ≤ v_m (constraint (7) against the smallest vector).
	s := make([]float64, m+1)
	for sweep := 0; sweep < 120; sweep++ {
		before := objective(s)
		for j := 0; j <= m; j++ {
			// Upper bound for s_j from every partial-sum constraint J ≥ j.
			ub := math.Inf(1)
			run := 0.0
			for J := 0; J <= m; J++ {
				if J != j {
					run += s[J] * lens[J]
				}
				if J >= j {
					if limit := (vm - run) / lens[j]; limit < ub {
						ub = limit
					}
				}
			}
			if ub <= 0 {
				s[j] = 0
				continue
			}
			x, _ := numeric.MinimizeGolden(func(x float64) float64 {
				old := s[j]
				s[j] = x
				v := objective(s)
				s[j] = old
				return v
			}, 0, ub, 1e-10)
			s[j] = x
		}
		if before-objective(s) < 1e-12 {
			break
		}
	}
	minimax = objective(s)

	// L* on the same instances: step estimates with base v_m.
	worstL := 0.0
	for i, vi := range vals {
		steps := []core.Step{{At: vi, Delta: vi - vm}}
		est := func(u float64) float64 {
			if u <= 0 || u > 1 {
				return 0
			}
			return core.LStarStep(vm, steps, u)
		}
		sq := core.SquareOf(est)
		if r := sq / opts[i]; r > worstL {
			worstL = r
		}
		_ = i
	}
	return minimax, worstL, nil
}
