package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/funcs"
	"repro/internal/report"
	"repro/internal/sampling"
	"repro/internal/stats"
)

// coreSquare adapts a plain closure to core.SquareOf, guarding the domain.
func coreSquare(est func(u float64) float64) float64 {
	return core.SquareOf(func(u float64) float64 {
		if u <= 0 || u > 1 {
			return 0
		}
		return est(u)
	})
}

// RunLP reproduces the Section 7 Lp-difference study [7]: estimate L1 and
// L2 differences between two coordinated-PPS-sampled instances, on a
// dissimilar flows-like dataset and a similar surnames-like dataset,
// sweeping the expected sampling fraction. Reported per estimator: NRMSE
// over independent coordinations. The paper's qualitative findings to
// reproduce: U* wins on dissimilar data, L* wins on similar data, L* never
// blows up (competitiveness), and HT trails both.
func RunLP(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	n, trials := 2000, 30
	rates := []float64{0.05, 0.1, 0.2, 0.4}
	if cfg.Quick {
		n, trials = 300, 6
		rates = []float64{0.1, 0.4}
	}
	datasets := []struct {
		name string
		d    dataset.Dataset
	}{
		{"flows (dissimilar)", dataset.Flows(dataset.FlowsConfig{N: n, Seed: cfg.Seed})},
		{"stable (similar)", dataset.Stable(dataset.StableConfig{N: n, Seed: cfg.Seed})},
	}
	var tables []report.Table
	for _, p := range []float64{1, 2} {
		f, err := funcs.NewRG(p)
		if err != nil {
			return Result{}, err
		}
		tbl := report.Table{
			ID:    "LP",
			Title: fmt.Sprintf("L%g difference estimation, NRMSE by estimator", p),
			Cols:  []string{"dataset", "sample frac", "L*", "U*", "HT"},
		}
		for _, ds := range datasets {
			exact := ds.d.ExactLp(0, 1, p, nil)
			for _, rate := range rates {
				tau, err := tauForRate(ds.d, rate)
				if err != nil {
					return Result{}, err
				}
				scheme, err := sampling.NewTupleScheme([]float64{tau, tau})
				if err != nil {
					return Result{}, err
				}
				meters := map[dataset.EstimatorKind]*stats.ErrorMeter{
					dataset.KindLStar: {}, dataset.KindUStar: {}, dataset.KindHT: {},
				}
				var frac stats.Welford
				for trial := 0; trial < trials; trial++ {
					cs, err := dataset.SampleCoordinated(ds.d, nil, scheme,
						sampling.NewSeedHash(uint64(cfg.Seed)*1000+uint64(trial)))
					if err != nil {
						return Result{}, err
					}
					frac.Add(float64(cs.SampledEntries) / float64(cs.TotalEntries))
					for kind, meter := range meters {
						sum, err := cs.EstimateSum(f, kind, nil)
						if err != nil {
							return Result{}, err
						}
						meter.Add(math.Pow(sum, 1/p), exact)
					}
				}
				tbl.AddRow(ds.name, report.Fmt(frac.Mean()),
					report.Fmt(meters[dataset.KindLStar].NRMSE()),
					report.Fmt(meters[dataset.KindUStar].NRMSE()),
					report.Fmt(meters[dataset.KindHT].NRMSE()))
			}
		}
		tbl.Notes = append(tbl.Notes,
			"expected shape (paper §7): U* best on dissimilar data, L* best on similar data, HT worst;",
			"L* stays within its competitive guarantee on both (never blows up)")
		tables = append(tables, tbl)
	}
	cross, err := crossoverTable()
	if err != nil {
		return Result{}, err
	}
	tables = append(tables, cross)
	return Result{Tables: tables}, nil
}

// crossoverTable locates where the per-item L*/U* preference flips: for a
// tuple (a, t·a) under τ* = 1 PPS, sweep the similarity t = v2/v1 and
// report Var[L*]/Var[U*]. The customization story of Section 7 is exactly
// this crossover: U* wins only below a similarity threshold (≈0.28 for
// p = 1), which is why churn-dominated flow data favors U* while stable
// data favors L*.
func crossoverTable() (report.Table, error) {
	tbl := report.Table{
		ID:    "LP",
		Title: "Per-item Var[L*]/Var[U*] vs similarity t = v2/v1 (a = 0.8)",
		Cols:  []string{"t", "p=1", "p=2"},
	}
	scheme := sampling.UniformTuple(2)
	const a = 0.8
	for _, t := range []float64{0.05, 0.1, 0.2, 0.28, 0.4, 0.6, 0.8, 0.95} {
		row := []string{report.Fmt(t)}
		for _, p := range []float64{1, 2} {
			f, err := funcs.NewRGPlus(p)
			if err != nil {
				return report.Table{}, err
			}
			v := []float64{a, t * a}
			val := f.Value(v)
			lvar := coreSquare(func(u float64) float64 {
				return funcs.EstimateLStar(f, scheme.Sample(v, u))
			}) - val*val
			uvar := coreSquare(func(u float64) float64 {
				est, _ := f.UStarClosed(scheme.Sample(v, u))
				return est
			}) - val*val
			row = append(row, report.Fmt(lvar/uvar))
		}
		tbl.AddRow(row...)
	}
	tbl.Notes = append(tbl.Notes,
		"ratio < 1 means L* wins; U* wins only for strongly dissimilar tuples (small t)")
	return tbl, nil
}

// tauForRate bisects the PPS threshold τ so that the expected fraction of
// sampled active entries matches the target rate.
func tauForRate(d dataset.Dataset, rate float64) (float64, error) {
	if rate <= 0 || rate > 1 {
		return 0, fmt.Errorf("experiments: sampling rate %g outside (0,1]", rate)
	}
	expected := func(tau float64) float64 {
		var sum float64
		var active int
		for _, row := range d.W {
			for _, w := range row {
				if w > 0 {
					active++
					sum += math.Min(1, w/tau)
				}
			}
		}
		return sum / float64(active)
	}
	lo, hi := 1e-9, math.Max(1, d.MaxWeight()/1e-6)
	for i := 0; i < 200; i++ {
		mid := math.Sqrt(lo * hi)
		if expected(mid) > rate {
			lo = mid
		} else {
			hi = mid
		}
	}
	return math.Sqrt(lo * hi), nil
}
