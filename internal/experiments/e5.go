package experiments

import (
	"fmt"
	"math"

	"repro/internal/order"
	"repro/internal/report"
)

// RunE5 reproduces Example 5: ≺+-optimal estimators for RG1+ over the
// discrete domain {0,1,2,3}² with thresholds π = (0.2, 0.5, 0.9), for the
// three orders the paper discusses (f-ascending = L*, f-descending = U*,
// and "difference 2 first"). It prints the lower-bound table, the
// estimate-per-outcome table of each order, and an unbiasedness audit.
func RunE5(cfg Config) (Result, error) {
	s, err := order.NewScheme([]float64{1, 2, 3}, []float64{0.2, 0.5, 0.9})
	if err != nil {
		return Result{}, err
	}
	f := func(v []float64) float64 { return math.Max(0, v[0]-v[1]) }
	dom := order.GridDomain(s, 2)
	vectors := [][]float64{{1, 0}, {2, 1}, {2, 0}, {3, 2}, {3, 1}, {3, 0}}
	intervals := [][2]float64{{0, 0.2}, {0.2, 0.5}, {0.5, 0.9}, {0.9, 1}}

	// Lower-bound table (the paper's first Example 5 table plus the
	// top interval, which is identically 0).
	lbTbl := report.Table{
		ID:    "E5",
		Title: "Example 5 lower bounds RG1+^(v)(u)",
		Cols:  []string{"interval", "(1,0)", "(2,1)", "(2,0)", "(3,2)", "(3,1)", "(3,0)"},
	}
	tables := []report.Table{}

	// Lower bound from first principles: minimum f over domain vectors
	// consistent with v's outcome on (lo, hi] — if π(v_i) ≥ hi the value is
	// seen and z_i must equal it; otherwise z_i must satisfy π(z_i) ≤ lo.
	lower := func(v []float64, lo, hi float64) float64 {
		best := math.Inf(1)
		for _, z := range dom {
			ok := true
			for i := range z {
				if pi(s, v[i]) >= hi {
					if z[i] != v[i] {
						ok = false
						break
					}
				} else if pi(s, z[i]) > lo {
					ok = false
					break
				}
			}
			if ok {
				best = math.Min(best, f(z))
			}
		}
		return best
	}
	for _, iv := range intervals {
		row := []string{fmt.Sprintf("(%g,%g]", iv[0], iv[1])}
		for _, v := range vectors {
			row = append(row, report.Fmt(lower(v, iv[0], iv[1])))
		}
		lbTbl.AddRow(row...)
	}
	lbTbl.Notes = append(lbTbl.Notes, "matches the paper's Example 5 lower-bound table")
	tables = append(tables, lbTbl)

	orders := []struct {
		name string
		less func(a, b []float64) bool
	}{
		{"f-ascending (L*)", order.LessByF(f)},
		{"f-descending (U*)", order.LessByFDesc(f)},
		{"difference-2 first", diff2Less},
	}
	for _, od := range orders {
		e, err := order.New(order.Problem{Scheme: s, F: f, Domain: dom, Less: od.less})
		if err != nil {
			return Result{}, err
		}
		tbl := report.Table{
			ID:    "E5",
			Title: fmt.Sprintf("Example 5 estimates, order %s", od.name),
			Cols:  []string{"interval", "(1,0)", "(2,1)", "(2,0)", "(3,2)", "(3,1)", "(3,0)"},
		}
		for _, iv := range intervals {
			mid := iv[0] + (iv[1]-iv[0])/2
			row := []string{fmt.Sprintf("(%g,%g]", iv[0], iv[1])}
			for _, v := range vectors {
				row = append(row, report.Fmt(e.Estimate(v, mid)))
			}
			tbl.AddRow(row...)
		}
		// Unbiasedness audit across the whole domain.
		worst := 0.0
		for _, v := range dom {
			if d := math.Abs(e.Mean(v) - f(v)); d > worst {
				worst = d
			}
		}
		tbl.Notes = append(tbl.Notes, fmt.Sprintf("max |E[f̂]−f| over the 16-vector domain: %.2e", worst))
		if worst > 1e-9 {
			return Result{}, fmt.Errorf("experiments: E5 order %s biased by %g", od.name, worst)
		}
		tables = append(tables, tbl)
	}
	return Result{Tables: tables}, nil
}

func pi(s order.Scheme, val float64) float64 {
	p, err := s.Pi(val)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return p
}

// diff2Less is Example 5's custom priority: difference-2 vectors first,
// then nearer differences, f = 0 last.
func diff2Less(a, b []float64) bool {
	key := func(v []float64) [2]float64 {
		d := v[0] - v[1]
		if d <= 0 {
			return [2]float64{math.Inf(1), 0}
		}
		return [2]float64{math.Abs(d - 2), d}
	}
	ka, kb := key(a), key(b)
	if ka[0] != kb[0] {
		return ka[0] < kb[0]
	}
	return ka[1] < kb[1]
}
