package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestAllExperimentsRunQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res, err := e.Run(Config{Quick: true})
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(res.Tables) == 0 && len(res.Figures) == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
			for _, tbl := range res.Tables {
				if len(tbl.Rows) == 0 {
					t.Errorf("%s: table %q has no rows", e.ID, tbl.Title)
				}
			}
			for _, fig := range res.Figures {
				if len(fig.Curves) == 0 {
					t.Errorf("%s: figure %q has no curves", e.ID, fig.Title)
				}
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, err := ByID("F3"); err != nil {
		t.Errorf("ByID(F3) failed: %v", err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown id should fail")
	}
}

func parseCell(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

func TestT41RatiosApproachFour(t *testing.T) {
	res, err := RunT41(Config{})
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Tables[0].Rows
	last := rows[len(rows)-1]
	ratio := parseCell(t, last[3])
	if ratio < 3.9 || ratio > 4.001 {
		t.Errorf("final tightness ratio = %g, want ≈ 4⁻", ratio)
	}
	prev := 0.0
	for _, row := range rows {
		r := parseCell(t, row[3])
		if r < prev {
			t.Error("ratios should increase with p")
		}
		prev = r
	}
}

func TestRATMatchesQuotedConstants(t *testing.T) {
	res, err := RunRAT(Config{})
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Tables[0].Rows
	if len(rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(rows))
	}
	if r1 := parseCell(t, rows[0][1]); r1 < 1.9 || r1 > 2.05 {
		t.Errorf("RG1 sup ratio = %g, want ≈ 2", r1)
	}
	if r2 := parseCell(t, rows[1][1]); r2 < 2.4 || r2 > 2.55 {
		t.Errorf("RG2 sup ratio = %g, want ≈ 2.5", r2)
	}
	// The supremum is attained at v2 = 0.
	for _, row := range rows {
		if !strings.Contains(row[2], ",0)") {
			t.Errorf("argmax %s should have v2 = 0", row[2])
		}
	}
}

func TestLPShapeFullConfig(t *testing.T) {
	if testing.Short() {
		t.Skip("full LP study takes a while")
	}
	res, err := RunLP(Config{})
	if err != nil {
		t.Fatal(err)
	}
	// For every (dataset, rate) row: on dissimilar data U* ≤ L*; on
	// similar data L* ≤ U*; L* never exceeds HT (per-item dominance,
	// Theorem 4.2, with slack for the nonlinear Lp root); and L* never
	// blows up catastrophically against U* (the competitive guarantee is on
	// per-item E[f̂²] ≤ 4·optimal, which leaves a bounded but nontrivial
	// aggregate-NRMSE gap — far from HT's unbounded one).
	for _, tbl := range res.Tables {
		if len(tbl.Cols) != 5 {
			continue // the per-item crossover table has its own shape
		}
		for _, row := range tbl.Rows {
			lstar := parseCell(t, row[2])
			ustar := parseCell(t, row[3])
			ht := parseCell(t, row[4])
			diss := strings.Contains(row[0], "dissimilar")
			if diss && ustar > lstar*1.15 {
				t.Errorf("%s %s: U* (%g) should beat L* (%g) on dissimilar data", tbl.Title, row[0], ustar, lstar)
			}
			if !diss && lstar > ustar*1.15 {
				t.Errorf("%s %s: L* (%g) should beat U* (%g) on similar data", tbl.Title, row[0], lstar, ustar)
			}
			if lstar > 1.3*ht {
				t.Errorf("%s %s: L* (%g) should not lose to HT (%g) — dominance violated",
					tbl.Title, row[0], lstar, ht)
			}
			if lstar > 100*ustar {
				t.Errorf("%s %s: L* (%g) blew up vs U* (%g)", tbl.Title, row[0], lstar, ustar)
			}
		}
	}
}

func TestUNIVBounds(t *testing.T) {
	res, err := RunUNIV(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	worst := parseCell(t, res.Tables[0].Rows[0][1])
	if worst > 4.001 || worst < 1 {
		t.Errorf("worst L* ratio = %g, want within [1, 4]", worst)
	}
	for _, row := range res.Tables[1].Rows {
		opt := parseCell(t, row[1])
		lst := parseCell(t, row[2])
		if opt < 1-1e-9 {
			t.Errorf("ladder %s: minimax ratio %g below 1", row[0], opt)
		}
		if opt > lst+1e-6 {
			t.Errorf("ladder %s: minimax %g exceeds L* %g", row[0], opt, lst)
		}
	}
}
