package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/funcs"
	"repro/internal/report"
	"repro/internal/sampling"
	"repro/internal/stats"
)

// RunCOO quantifies why the paper coordinates samples at all (Section 1's
// motivation): estimating the per-item difference |v1 − v2| = RG1 from
// independent samples of the two instances only reveals the value when both
// entries happen to be sampled (probability p1·p2), whereas coordination
// makes the events maximally overlap (probability min(p1, p2)) and, through
// the L* estimator, exploits even partially-revealing outcomes. The table
// sweeps the similarity t = v2/v1 and compares per-item variances.
func RunCOO(cfg Config) (Result, error) {
	scheme := sampling.UniformTuple(2)
	f, err := funcs.NewRGPlus(1)
	if err != nil {
		return Result{}, err
	}
	tbl := report.Table{
		ID:    "COO",
		Title: "Per-item variance for |v1−v2| (a = 0.8): coordinated vs independent",
		Cols:  []string{"t = v2/v1", "coord L*", "coord HT", "indep HT", "indep/coord"},
	}
	const a = 0.8
	for _, t := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 0.99} {
		v := []float64{a, t * a}
		val := f.Value(v)
		lvar := coreSquare(func(u float64) float64 {
			return funcs.EstimateLStar(f, scheme.Sample(v, u))
		}) - val*val
		// Coordinated HT: both entries revealed iff the shared seed is
		// below min(p1, p2) = t·a.
		chtVar := core.HTSquare(val, t*a) - val*val
		// Independent HT: two independent seeds reveal both entries with
		// probability p1·p2 = t·a².
		ihtVar := core.HTSquare(val, t*a*a) - val*val
		tbl.AddRow(report.Fmt(t), report.Fmt(lvar), report.Fmt(chtVar),
			report.Fmt(ihtVar), report.Fmt(ihtVar/lvar))
	}
	tbl.Notes = append(tbl.Notes,
		"independent sampling pays a 1/a factor in revelation probability and cannot use partial information;",
		"coordinated L* additionally dominates coordinated HT (Theorem 4.2), so the last column compounds both effects")
	return Result{Tables: []report.Table{tbl}}, nil
}

// RunJAC exercises the distinct-count/Jaccard application the paper cites
// (references [3, 4]: coordinated MinHash-style samples of 0/1 data): the
// Jaccard coefficient of the instances' supports is estimated as the ratio
// of L* sum estimates of AND and OR over items.
func RunJAC(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	n, trials := 3000, 60
	if cfg.Quick {
		n, trials = 400, 12
	}
	tbl := report.Table{
		ID:    "JAC",
		Title: "Jaccard estimation from coordinated 0/1 samples",
		Cols:  []string{"true J", "sample rate", "mean estimate", "NRMSE"},
	}
	for _, overlap := range []float64{0.2, 0.5, 0.8} {
		tuples := jaccardData(n, overlap, cfg.Seed)
		exact := funcs.JaccardExact(tuples)
		for _, rate := range []float64{0.1, 0.3} {
			scheme, err := sampling.NewTupleScheme([]float64{1 / rate, 1 / rate})
			if err != nil {
				return Result{}, err
			}
			var meter stats.ErrorMeter
			var acc stats.Welford
			for trial := 0; trial < trials; trial++ {
				hash := sampling.NewSeedHash(uint64(cfg.Seed) + uint64(trial)*31)
				outcomes := make([]sampling.TupleOutcome, 0, len(tuples))
				for k, v := range tuples {
					outcomes = append(outcomes, scheme.Sample(v, hash.U(uint64(k))))
				}
				est := funcs.JaccardEstimate(outcomes)
				meter.Add(est, exact)
				acc.Add(est)
			}
			if math.Abs(acc.Mean()-exact) > 0.1*exact+4*acc.StdErr() {
				return Result{}, fmt.Errorf("experiments: JAC mean %g strays from exact %g", acc.Mean(), exact)
			}
			tbl.AddRow(report.Fmt(exact), report.Fmt(rate), report.Fmt(acc.Mean()), report.Fmt(meter.NRMSE()))
		}
	}
	tbl.Notes = append(tbl.Notes,
		"AND and OR sums are individually unbiased L* estimates; the ratio is consistent",
	)
	return Result{Tables: []report.Table{tbl}}, nil
}

// jaccardData builds n 0/1 tuples whose supports overlap with the given
// probability on the union.
func jaccardData(n int, overlap float64, seed int64) [][]float64 {
	rng := newRand(seed)
	tuples := make([][]float64, n)
	for k := range tuples {
		switch {
		case rng.Float64() < overlap:
			tuples[k] = []float64{1, 1}
		case rng.Float64() < 0.5:
			tuples[k] = []float64{1, 0}
		default:
			tuples[k] = []float64{0, 1}
		}
	}
	return tuples
}
