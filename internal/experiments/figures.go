package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/funcs"
	"repro/internal/numeric"
	"repro/internal/report"
	"repro/internal/sampling"
)

// figureVectors are the data vectors of Examples 3 and 4.
var figureVectors = [][]float64{{0.6, 0.2}, {0.6, 0}}

// RunF3 reproduces the Example 3 figures: the lower-bound function (LB) and
// its lower hull (CH) of RG_{p+} under coordinated PPS with τ* = 1, for
// p ∈ {0.5, 1, 2} and data vectors (0.6, 0.2) and (0.6, 0).
func RunF3(cfg Config) (Result, error) {
	scheme := sampling.UniformTuple(2)
	var figs []report.Figure
	for _, p := range []float64{0.5, 1, 2} {
		f, err := funcs.NewRGPlus(p)
		if err != nil {
			return Result{}, err
		}
		fig := report.Figure{
			ID:     fmt.Sprintf("F3-p%g", p),
			Title:  fmt.Sprintf("RGp+ p=%g, PPS tau=1, LB and CH", p),
			XLabel: "u",
			YLabel: "value",
		}
		xs := numeric.Linspace(0.005, 0.8, gridN(cfg))
		for _, v := range figureVectors {
			lb := funcs.DataLB(f, scheme, v)
			hullFn, err := core.VOptimalHull(lb, f.Value(v), core.Grid{Breaks: []float64{v[1], v[0]}})
			if err != nil {
				return Result{}, fmt.Errorf("experiments: F3 hull for %v: %w", v, err)
			}
			lbY := make([]float64, len(xs))
			chY := make([]float64, len(xs))
			for i, x := range xs {
				lbY[i] = lb(x)
				chY[i] = hullFn.Eval(x)
			}
			name := fmt.Sprintf("v1=%g v2=%g", v[0], v[1])
			fig.Curves = append(fig.Curves,
				report.Series{Name: name + " LB", X: xs, Y: lbY},
				report.Series{Name: name + " CH", X: xs, Y: chY},
			)
		}
		figs = append(figs, fig)
	}
	return Result{Figures: figs}, nil
}

// RunF4 reproduces the Example 4 figures: the L*, U* and v-optimal
// estimates for the same instances as Example 3.
func RunF4(cfg Config) (Result, error) {
	scheme := sampling.UniformTuple(2)
	var figs []report.Figure
	for _, p := range []float64{0.5, 1, 2} {
		f, err := funcs.NewRGPlus(p)
		if err != nil {
			return Result{}, err
		}
		fig := report.Figure{
			ID:     fmt.Sprintf("F4-p%g", p),
			Title:  fmt.Sprintf("RGp+ p=%g, PPS tau=1, L, U, opt estimates", p),
			XLabel: "u",
			YLabel: "estimate",
		}
		xs := numeric.Linspace(0.005, 0.8, gridN(cfg))
		for _, v := range figureVectors {
			lb := funcs.DataLB(f, scheme, v)
			vopt, _, err := core.VOptimal(lb, f.Value(v), core.Grid{Breaks: []float64{v[1], v[0]}})
			if err != nil {
				return Result{}, fmt.Errorf("experiments: F4 v-optimal for %v: %w", v, err)
			}
			lY := make([]float64, len(xs))
			uY := make([]float64, len(xs))
			oY := make([]float64, len(xs))
			for i, x := range xs {
				o := scheme.Sample(v, x)
				lY[i] = funcs.EstimateLStar(f, o)
				uY[i] = funcs.EstimateUStar(f, o, core.DefaultGrid())
				oY[i] = vopt(x)
			}
			name := fmt.Sprintf("v1=%g v2=%g", v[0], v[1])
			fig.Curves = append(fig.Curves,
				report.Series{Name: name + " L", X: xs, Y: lY},
				report.Series{Name: name + " U", X: xs, Y: uY},
				report.Series{Name: name + " opt", X: xs, Y: oY},
			)
		}
		figs = append(figs, fig)
	}
	return Result{Figures: figs}, nil
}

func gridN(cfg Config) int {
	if cfg.Quick {
		return 40
	}
	return 160
}
