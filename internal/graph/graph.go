// Package graph is the graph substrate for the sketch-based similarity
// application (Section 7 of the paper): weighted graphs, Dijkstra, and
// synthetic social-network generators.
package graph

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
)

// Edge is a weighted arc.
type Edge struct {
	// To is the head vertex.
	To int
	// W is the nonnegative length.
	W float64
}

// Graph is a directed weighted graph; use AddUndirected for symmetric
// relations.
type Graph struct {
	adj [][]Edge
}

// New returns an empty graph on n vertices.
func New(n int) (*Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("graph: vertex count %d must be positive", n)
	}
	return &Graph{adj: make([][]Edge, n)}, nil
}

// N returns the vertex count.
func (g *Graph) N() int { return len(g.adj) }

// AddEdge inserts the arc u→v with length w.
func (g *Graph) AddEdge(u, v int, w float64) error {
	if u < 0 || u >= g.N() || v < 0 || v >= g.N() {
		return fmt.Errorf("graph: edge (%d,%d) outside [0,%d)", u, v, g.N())
	}
	if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		return fmt.Errorf("graph: edge weight %g invalid", w)
	}
	g.adj[u] = append(g.adj[u], Edge{To: v, W: w})
	return nil
}

// AddUndirected inserts both arcs.
func (g *Graph) AddUndirected(u, v int, w float64) error {
	if err := g.AddEdge(u, v, w); err != nil {
		return err
	}
	return g.AddEdge(v, u, w)
}

// Degree returns the out-degree of u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// pqItem is a Dijkstra heap entry.
type pqItem struct {
	node int
	dist float64
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Dijkstra returns shortest-path distances from src (+Inf if unreachable).
func (g *Graph) Dijkstra(src int) []float64 {
	dist := make([]float64, g.N())
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	q := &pq{{node: src, dist: 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if it.dist > dist[it.node] {
			continue
		}
		for _, e := range g.adj[it.node] {
			if nd := it.dist + e.W; nd < dist[e.To] {
				dist[e.To] = nd
				heap.Push(q, pqItem{node: e.To, dist: nd})
			}
		}
	}
	return dist
}

// VisitAscending runs Dijkstra from src and invokes visit for each
// reachable vertex in order of increasing distance (ties broken by vertex
// id via the heap's determinism). Returning false stops the scan. This is
// the traversal order all-distances sketches are built in.
func (g *Graph) VisitAscending(src int, visit func(node int, dist float64) bool) {
	dist := make([]float64, g.N())
	done := make([]bool, g.N())
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	q := &pq{{node: src, dist: 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if done[it.node] || it.dist > dist[it.node] {
			continue
		}
		done[it.node] = true
		if !visit(it.node, it.dist) {
			return
		}
		for _, e := range g.adj[it.node] {
			if nd := it.dist + e.W; nd < dist[e.To] {
				dist[e.To] = nd
				heap.Push(q, pqItem{node: e.To, dist: nd})
			}
		}
	}
}

// ErdosRenyi samples an undirected G(n, p) graph with unit edge lengths.
func ErdosRenyi(n int, p float64, seed int64) (*Graph, error) {
	g, err := New(n)
	if err != nil {
		return nil, err
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("graph: edge probability %g outside [0,1]", p)
	}
	rng := rand.New(rand.NewSource(seed))
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				if err := g.AddUndirected(u, v, 1); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}

// PreferentialAttachment grows a Barabási–Albert-style graph: each new
// vertex attaches m edges to existing vertices chosen proportionally to
// degree (unit lengths). Produces the heavy-tailed degree profile of
// social networks.
func PreferentialAttachment(n, m int, seed int64) (*Graph, error) {
	if m <= 0 || n <= m {
		return nil, fmt.Errorf("graph: need n > m > 0, got n=%d m=%d", n, m)
	}
	g, err := New(n)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	// targets repeats vertex ids by degree for proportional selection.
	var targets []int
	for v := 0; v < m; v++ {
		if err := g.AddUndirected(v, (v+1)%m, 1); err != nil && m > 1 {
			return nil, err
		}
		targets = append(targets, v, v)
	}
	for v := m; v < n; v++ {
		chosen := make(map[int]bool, m)
		for len(chosen) < m {
			chosen[targets[rng.Intn(len(targets))]] = true
		}
		for u := range chosen {
			if err := g.AddUndirected(v, u, 1); err != nil {
				return nil, err
			}
			targets = append(targets, u, v)
		}
	}
	return g, nil
}

// Grid2D builds a rows×cols lattice with unit edge lengths.
func Grid2D(rows, cols int) (*Graph, error) {
	g, err := New(rows * cols)
	if err != nil {
		return nil, err
	}
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				if err := g.AddUndirected(id(r, c), id(r, c+1), 1); err != nil {
					return nil, err
				}
			}
			if r+1 < rows {
				if err := g.AddUndirected(id(r, c), id(r+1, c), 1); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}
