package graph

import (
	"math"
	"testing"
)

func TestDijkstraAgainstFloydWarshall(t *testing.T) {
	g, err := ErdosRenyi(40, 0.15, 3)
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	// Floyd–Warshall reference.
	const inf = math.MaxFloat64 / 4
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			if i != j {
				d[i][j] = inf
			}
		}
	}
	for u := 0; u < n; u++ {
		for _, e := range g.adj[u] {
			if e.W < d[u][e.To] {
				d[u][e.To] = e.W
			}
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if d[i][k]+d[k][j] < d[i][j] {
					d[i][j] = d[i][k] + d[k][j]
				}
			}
		}
	}
	for src := 0; src < n; src++ {
		dist := g.Dijkstra(src)
		for v := 0; v < n; v++ {
			want := d[src][v]
			if want >= inf {
				if !math.IsInf(dist[v], 1) {
					t.Errorf("dist[%d][%d] = %g, want +Inf", src, v, dist[v])
				}
				continue
			}
			if dist[v] != want {
				t.Errorf("dist[%d][%d] = %g, want %g", src, v, dist[v], want)
			}
		}
	}
}

func TestDijkstraWeighted(t *testing.T) {
	g, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []struct {
		u, v int
		w    float64
	}{{0, 1, 1}, {1, 2, 1}, {0, 2, 5}, {2, 3, 1}} {
		if err := g.AddUndirected(e.u, e.v, e.w); err != nil {
			t.Fatal(err)
		}
	}
	dist := g.Dijkstra(0)
	want := []float64{0, 1, 2, 3}
	for i := range want {
		if dist[i] != want[i] {
			t.Errorf("dist[%d] = %g, want %g", i, dist[i], want[i])
		}
	}
}

func TestVisitAscendingOrderAndPrefix(t *testing.T) {
	g, err := Grid2D(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	var dists []float64
	g.VisitAscending(12, func(node int, dist float64) bool {
		dists = append(dists, dist)
		return true
	})
	if len(dists) != 25 {
		t.Fatalf("visited %d nodes, want 25", len(dists))
	}
	for i := 1; i < len(dists); i++ {
		if dists[i] < dists[i-1] {
			t.Fatal("visit order not ascending in distance")
		}
	}
	// Early stop.
	count := 0
	g.VisitAscending(12, func(int, float64) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early stop visited %d, want 5", count)
	}
	// Distances agree with Dijkstra.
	dist := g.Dijkstra(12)
	seen := make(map[int]float64)
	g.VisitAscending(12, func(node int, d float64) bool {
		seen[node] = d
		return true
	})
	for v, d := range seen {
		if dist[v] != d {
			t.Errorf("VisitAscending dist[%d] = %g, Dijkstra %g", v, d, dist[v])
		}
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("New(0) should fail")
	}
	g, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(0, 5, 1); err == nil {
		t.Error("out-of-range edge should fail")
	}
	if err := g.AddEdge(0, 1, -1); err == nil {
		t.Error("negative weight should fail")
	}
	if err := g.AddEdge(0, 1, math.NaN()); err == nil {
		t.Error("NaN weight should fail")
	}
	if _, err := ErdosRenyi(5, 1.5, 0); err == nil {
		t.Error("p > 1 should fail")
	}
	if _, err := PreferentialAttachment(3, 3, 0); err == nil {
		t.Error("n ≤ m should fail")
	}
}

func TestPreferentialAttachmentShape(t *testing.T) {
	g, err := PreferentialAttachment(500, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 500 {
		t.Fatalf("N = %d, want 500", g.N())
	}
	// Connected: every node reachable from 0.
	dist := g.Dijkstra(0)
	maxDeg := 0
	var totalDeg int
	for v := 0; v < g.N(); v++ {
		if math.IsInf(dist[v], 1) {
			t.Fatalf("node %d unreachable", v)
		}
		deg := g.Degree(v)
		totalDeg += deg
		if deg > maxDeg {
			maxDeg = deg
		}
	}
	// Heavy tail: the max degree should far exceed the mean.
	mean := float64(totalDeg) / float64(g.N())
	if float64(maxDeg) < 3*mean {
		t.Errorf("max degree %d not heavy-tailed vs mean %g", maxDeg, mean)
	}
}

func TestGrid2DDistances(t *testing.T) {
	g, err := Grid2D(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	dist := g.Dijkstra(0)
	// Manhattan distances on the lattice.
	for r := 0; r < 3; r++ {
		for c := 0; c < 4; c++ {
			if want := float64(r + c); dist[r*4+c] != want {
				t.Errorf("dist[%d,%d] = %g, want %g", r, c, dist[r*4+c], want)
			}
		}
	}
}
