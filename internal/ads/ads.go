// Package ads implements all-distances sketches (ADS) with HIP inclusion
// probabilities and the sketch-based closeness-similarity estimation of the
// paper's Section 7 (following Cohen's ADS line of work cited there).
//
// A bottom-k ADS of node v contains node i iff i's hash rank is among the k
// smallest ranks of nodes at distance ≤ d(v, i). ADSs of different nodes
// built from the same rank assignment are coordinated samples; restricted
// to a single node i, the pair (membership in ADS(u), membership in ADS(v))
// is a monotone sampling scheme with the shared seed r_i and fixed
// per-entry HIP thresholds — which is where the L* estimator plugs in.
package ads

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sampling"
)

// Entry is one sketched node.
type Entry struct {
	// Node is the sketched node id.
	Node int
	// Dist is the shortest-path distance from the sketch owner.
	Dist float64
	// Rank is the node's hash rank in (0, 1].
	Rank float64
	// Tau is the HIP inclusion threshold: conditioned on the ranks of all
	// strictly closer nodes, Node is included iff Rank < Tau, so the HIP
	// inclusion probability is min(1, Tau).
	Tau float64
}

// P returns the HIP inclusion probability.
func (e Entry) P() float64 { return math.Min(1, e.Tau) }

// Sketch is the all-distances sketch of one node, entries sorted by
// increasing distance.
type Sketch struct {
	// Owner is the node the sketch belongs to.
	Owner int
	// Entries are the sketched nodes.
	Entries []Entry
}

// Lookup returns the entry for a node, if present.
func (s Sketch) Lookup(node int) (Entry, bool) {
	for _, e := range s.Entries {
		if e.Node == node {
			return e, true
		}
	}
	return Entry{}, false
}

// Build computes the bottom-k ADS of every node: for each node a Dijkstra
// scan in increasing distance maintains the k smallest ranks seen so far;
// a node enters the sketch iff its rank beats the current k-th smallest,
// which is also its HIP threshold. Ranks are hashed from node ids, so
// sketches of different nodes are coordinated.
func Build(g *graph.Graph, k int, hash sampling.SeedHash) ([]Sketch, error) {
	if k <= 0 {
		return nil, fmt.Errorf("ads: sketch parameter k = %d must be positive", k)
	}
	n := g.N()
	ranks := make([]float64, n)
	for i := 0; i < n; i++ {
		ranks[i] = hash.U(uint64(i))
	}
	sketches := make([]Sketch, n)
	for v := 0; v < n; v++ {
		sketches[v] = buildOne(g, v, k, ranks)
	}
	return sketches, nil
}

func buildOne(g *graph.Graph, v, k int, ranks []float64) Sketch {
	s := Sketch{Owner: v}
	// kSmallest holds the k smallest ranks among strictly closer visited
	// nodes; kth() is the inclusion threshold. Equal distances are treated
	// as a batch: thresholds are computed against strictly closer nodes
	// only, then the batch is merged.
	var kSmallest []float64 // sorted ascending, ≤ k entries
	kth := func() float64 {
		if len(kSmallest) < k {
			return math.Inf(1)
		}
		return kSmallest[k-1]
	}
	insert := func(r float64) {
		pos := sort.SearchFloat64s(kSmallest, r)
		kSmallest = append(kSmallest, 0)
		copy(kSmallest[pos+1:], kSmallest[pos:])
		kSmallest[pos] = r
		if len(kSmallest) > k {
			kSmallest = kSmallest[:k]
		}
	}
	var batch []Entry
	lastDist := math.Inf(-1)
	flush := func() {
		for _, e := range batch {
			insert(e.Rank)
		}
		batch = batch[:0]
	}
	g.VisitAscending(v, func(node int, dist float64) bool {
		if dist > lastDist {
			flush()
			lastDist = dist
		}
		tau := kth()
		if ranks[node] < tau {
			s.Entries = append(s.Entries, Entry{Node: node, Dist: dist, Rank: ranks[node], Tau: tau})
		}
		batch = append(batch, Entry{Rank: ranks[node]})
		return true
	})
	return s
}

// NeighborhoodEstimate returns the HIP estimate of |{i : d(v,i) ≤ d}|:
// Σ 1/p over sketch entries within distance d. Unbiased (HIP estimator).
func (s Sketch) NeighborhoodEstimate(d float64) float64 {
	var sum float64
	for _, e := range s.Entries {
		if e.Dist <= d {
			sum += 1 / e.P()
		}
	}
	return sum
}

// Alpha is a non-increasing distance-decay kernel for closeness
// similarity.
type Alpha func(d float64) float64

// AlphaInverse is α(d) = 1/(1+d).
func AlphaInverse(d float64) float64 { return 1 / (1 + d) }

// AlphaExp returns α(d) = exp(−λd).
func AlphaExp(lambda float64) Alpha {
	return func(d float64) float64 { return math.Exp(-lambda * d) }
}

// AlphaThreshold returns α(d) = 1[d ≤ t].
func AlphaThreshold(t float64) Alpha {
	return func(d float64) float64 {
		if d <= t {
			return 1
		}
		return 0
	}
}

// ExactSimilarity computes closeness similarity
// sim(u,v) = Σ_i α(max(d_ui, d_vi)) / Σ_i α(min(d_ui, d_vi)) from exact
// distances (Section 7; α non-increasing, terms with both distances
// infinite contribute nothing).
func ExactSimilarity(g *graph.Graph, u, v int, alpha Alpha) float64 {
	du := g.Dijkstra(u)
	dv := g.Dijkstra(v)
	var num, den float64
	for i := range du {
		num += alphaOrZero(alpha, math.Max(du[i], dv[i]))
		den += alphaOrZero(alpha, math.Min(du[i], dv[i]))
	}
	if den == 0 {
		return 0
	}
	return num / den
}

func alphaOrZero(alpha Alpha, d float64) float64 {
	if math.IsInf(d, 1) {
		return 0
	}
	return alpha(d)
}

// EstimateSimilarity estimates closeness similarity from the two sketches
// alone. Per candidate node i, the tuple (α(d_ui), α(d_vi)) is observed
// through fixed HIP thresholds driven by the shared rank r_i:
//
//   - the denominator summand α(min d) = max(α(d_ui), α(d_vi)) is estimated
//     with the L* estimator, whose lower-bound function is the exact step
//     function over the visible entries (Σ Δ/p form, core.LStarStep);
//   - the numerator summand α(max d) = min(α(d_ui), α(d_vi)) uses the
//     identity min = α_u + α_v − max: the per-entry α-masses have exact
//     HIP (inverse-probability) estimates, and subtracting the L* max
//     estimate avoids the high-variance 1/min(p_u, p_v) terms a direct
//     min estimator would pay on doubly-visible nodes.
//
// Both per-node estimators are unbiased, so the sums are unbiased; the
// returned similarity is their ratio (consistent; mildly biased for small
// sketches, as any ratio of unbiased estimates is).
func EstimateSimilarity(su, sv Sketch, alpha Alpha) float64 {
	num, den := similaritySums(su, sv, alpha)
	if den == 0 {
		return 0
	}
	return num / den
}

// similaritySums returns the unbiased numerator and denominator estimates.
func similaritySums(su, sv Sketch, alpha Alpha) (num, den float64) {
	type pair struct {
		au, av float64 // α values where visible
		pu, pv float64 // HIP inclusion probabilities (0 when invisible)
		rank   float64
	}
	nodes := make(map[int]*pair)
	for _, e := range su.Entries {
		nodes[e.Node] = &pair{au: alpha(e.Dist), pu: e.P(), rank: e.Rank}
	}
	for _, e := range sv.Entries {
		p, ok := nodes[e.Node]
		if !ok {
			p = &pair{rank: e.Rank}
			nodes[e.Node] = p
		}
		p.av = alpha(e.Dist)
		p.pv = e.P()
	}
	for _, p := range nodes {
		// L* on the step lower bound of max(au, av) over the visible
		// entries: steps at each visible entry's inclusion probability
		// where the running max (sweeping p downward) grows.
		maxEst := maxLStar(p.au, p.pu, p.av, p.pv, p.rank)
		den += maxEst
		// Per-entry HIP masses minus the max estimate: unbiased for min.
		var ht float64
		if p.pu > 0 {
			ht += p.au / p.pu
		}
		if p.pv > 0 {
			ht += p.av / p.pv
		}
		num += ht - maxEst
	}
	return num, den
}

// maxLStar computes the L* estimate of max(au, av) from the visible
// entries: the exact step-function form of the lower bound. Invisible
// entries have p = 0 and contribute nothing (their probabilities are
// unknown but provably below the seed, so their steps fall outside the
// estimator's sum).
func maxLStar(au, pu, av, pv, rank float64) float64 {
	var steps []core.Step
	cur := 0.0
	// Sweep visible entries by decreasing inclusion probability.
	if pu >= pv {
		cur = addStep(&steps, pu, au, cur)
		cur = addStep(&steps, pv, av, cur)
	} else {
		cur = addStep(&steps, pv, av, cur)
		cur = addStep(&steps, pu, au, cur)
	}
	_ = cur
	return core.LStarStep(0, steps, rank)
}

func addStep(steps *[]core.Step, p, val, cur float64) float64 {
	if p <= 0 || val <= cur {
		return cur
	}
	*steps = append(*steps, core.Step{At: p, Delta: val - cur})
	return val
}
