package ads

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/sampling"
	"repro/internal/stats"
)

func buildGrid(t *testing.T, rows, cols, k int, salt uint64) (*graph.Graph, []Sketch) {
	t.Helper()
	g, err := graph.Grid2D(rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	sk, err := Build(g, k, sampling.NewSeedHash(salt))
	if err != nil {
		t.Fatal(err)
	}
	return g, sk
}

func TestBuildValidation(t *testing.T) {
	g, err := graph.Grid2D(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(g, 0, sampling.NewSeedHash(1)); err == nil {
		t.Error("k = 0 should fail")
	}
}

func TestSketchContainsOwnerWithProbabilityOne(t *testing.T) {
	_, sk := buildGrid(t, 5, 5, 3, 7)
	for v, s := range sk {
		e, ok := s.Lookup(v)
		if !ok {
			t.Fatalf("sketch of %d misses its owner", v)
		}
		if e.Dist != 0 || e.P() != 1 {
			t.Errorf("owner entry = %+v, want dist 0, p 1", e)
		}
	}
}

func TestSketchEntriesSortedWithValidThresholds(t *testing.T) {
	_, sk := buildGrid(t, 6, 6, 4, 9)
	for _, s := range sk {
		prev := -1.0
		for _, e := range s.Entries {
			if e.Dist < prev {
				t.Fatalf("sketch %d not sorted by distance", s.Owner)
			}
			prev = e.Dist
			if !(e.Rank < e.Tau) {
				t.Errorf("entry %+v: rank must be below threshold", e)
			}
			if e.P() <= 0 || e.P() > 1 {
				t.Errorf("entry %+v: invalid inclusion probability", e)
			}
		}
	}
}

func TestSketchMembershipDefinition(t *testing.T) {
	// Bottom-k definition: node i ∈ ADS(v) iff rank_i is among the k
	// smallest ranks of nodes at distance ≤ d(v,i) — verified directly
	// against exact distances and ranks.
	const k = 3
	g, sk := buildGrid(t, 5, 5, k, 21)
	hash := sampling.NewSeedHash(21)
	n := g.N()
	ranks := make([]float64, n)
	for i := range ranks {
		ranks[i] = hash.U(uint64(i))
	}
	for v := 0; v < n; v++ {
		dist := g.Dijkstra(v)
		for i := 0; i < n; i++ {
			if math.IsInf(dist[i], 1) {
				continue
			}
			// Count nodes at distance ≤ d(v,i) with rank below rank_i;
			// i is in the sketch iff fewer than k of them... with the
			// strictly-closer HIP convention, ties at equal distance do
			// not exclude each other, so count strictly closer only.
			closer := 0
			for j := 0; j < n; j++ {
				if dist[j] < dist[i] && ranks[j] < ranks[i] {
					closer++
				}
			}
			_, in := sk[v].Lookup(i)
			if want := closer < k; in != want {
				t.Errorf("node %d in ADS(%d): got %v, want %v", i, v, in, want)
			}
		}
	}
}

func TestNeighborhoodEstimateUnbiased(t *testing.T) {
	// HIP neighborhood-size estimates, averaged over independent rank
	// assignments, approach the exact ball sizes.
	g, err := graph.Grid2D(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	const (
		v      = 14
		radius = 3.0
		trials = 400
		k      = 4
	)
	dist := g.Dijkstra(v)
	exact := 0.0
	for _, d := range dist {
		if d <= radius {
			exact++
		}
	}
	var acc stats.Welford
	for trial := 0; trial < trials; trial++ {
		sk, err := Build(g, k, sampling.NewSeedHash(uint64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		acc.Add(sk[v].NeighborhoodEstimate(radius))
	}
	if math.Abs(acc.Mean()-exact) > 4*acc.StdErr()+0.05*exact {
		t.Errorf("HIP estimate mean %g ± %g, exact %g", acc.Mean(), acc.StdErr(), exact)
	}
}

func TestSketchSizeGrowsLogarithmically(t *testing.T) {
	// E|ADS| ≈ k·H_n on a path-like visit order; assert the size is well
	// below n and above k for a mid-size grid.
	g, sk := buildGrid(t, 10, 10, 4, 3)
	n := g.N()
	var total int
	for _, s := range sk {
		total += len(s.Entries)
	}
	mean := float64(total) / float64(n)
	if mean < 4 || mean > float64(n)/2 {
		t.Errorf("mean sketch size %g outside (k, n/2)", mean)
	}
}

func TestExactSimilarityProperties(t *testing.T) {
	g, err := graph.Grid2D(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Self-similarity is 1; similarity decays with distance.
	if got := ExactSimilarity(g, 5, 5, AlphaInverse); math.Abs(got-1) > 1e-12 {
		t.Errorf("sim(v,v) = %g, want 1", got)
	}
	near := ExactSimilarity(g, 5, 6, AlphaInverse)
	far := ExactSimilarity(g, 0, 15, AlphaInverse)
	if near <= far {
		t.Errorf("similarity should decay with distance: near %g, far %g", near, far)
	}
	if near <= 0 || near > 1 || far <= 0 || far > 1 {
		t.Errorf("similarities outside (0,1]: %g, %g", near, far)
	}
}

func TestEstimateSimilaritySumsUnbiased(t *testing.T) {
	// The numerator and denominator estimators are unbiased: average over
	// independent rank assignments vs exact values.
	g, err := graph.Grid2D(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	const (
		u, v   = 6, 18
		trials = 500
		k      = 3
	)
	du := g.Dijkstra(u)
	dv := g.Dijkstra(v)
	var exactNum, exactDen float64
	for i := range du {
		exactNum += AlphaInverse(math.Max(du[i], dv[i]))
		exactDen += AlphaInverse(math.Min(du[i], dv[i]))
	}
	var num, den stats.Welford
	for trial := 0; trial < trials; trial++ {
		sk, err := Build(g, k, sampling.NewSeedHash(uint64(1000+trial)))
		if err != nil {
			t.Fatal(err)
		}
		n, d := similaritySums(sk[u], sk[v], AlphaInverse)
		num.Add(n)
		den.Add(d)
	}
	if math.Abs(num.Mean()-exactNum) > 4*num.StdErr()+0.03*exactNum {
		t.Errorf("numerator mean %g ± %g, exact %g", num.Mean(), num.StdErr(), exactNum)
	}
	if math.Abs(den.Mean()-exactDen) > 4*den.StdErr()+0.03*exactDen {
		t.Errorf("denominator mean %g ± %g, exact %g", den.Mean(), den.StdErr(), exactDen)
	}
}

func TestEstimateSimilarityCloseToExact(t *testing.T) {
	// With a generous k the sketch estimate should land near the truth.
	g, err := graph.PreferentialAttachment(300, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	sk, err := Build(g, 16, sampling.NewSeedHash(4))
	if err != nil {
		t.Fatal(err)
	}
	var meter stats.ErrorMeter
	pairs := [][2]int{{0, 1}, {10, 200}, {50, 51}, {100, 299}, {5, 250}}
	for _, p := range pairs {
		exact := ExactSimilarity(g, p[0], p[1], AlphaInverse)
		est := EstimateSimilarity(sk[p[0]], sk[p[1]], AlphaInverse)
		meter.Add(est, exact)
	}
	if meter.NRMSE() > 0.35 {
		t.Errorf("similarity NRMSE = %g, want < 0.35", meter.NRMSE())
	}
}

func TestAlphaKernels(t *testing.T) {
	if AlphaInverse(0) != 1 || AlphaInverse(1) != 0.5 {
		t.Error("AlphaInverse wrong")
	}
	ae := AlphaExp(2)
	if math.Abs(ae(1)-math.Exp(-2)) > 1e-12 {
		t.Error("AlphaExp wrong")
	}
	at := AlphaThreshold(3)
	if at(3) != 1 || at(3.1) != 0 {
		t.Error("AlphaThreshold wrong")
	}
}
