package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/engine"
)

// This file is the streaming wire protocol: the same length-prefixed,
// CRC-framed update batches the WAL journals (codec.go), carried over a
// long-lived connection instead of a segment file. Sharing the record
// encoding means one codec to test, and a captured stream body is literally
// a replayable WAL tail.
//
// Stream layout:
//
//	[8]  magic "MONESTB1"
//	then frames, each exactly a WAL record:
//	  [4] payload length N
//	  [4] CRC32(payload)
//	  [N] payload = [4] count, then count × { [4] instance, [8] key,
//	      [8] weight bits }
//
// The stream has no trailer: a clean EOF on a frame boundary ends it. A
// torn frame (EOF mid-record) or a CRC mismatch is an error — unlike WAL
// recovery, which tolerates a torn tail, a live connection that breaks
// mid-frame must surface the break to the sender.
const (
	// StreamMagic opens every binary ingest stream; it differs from the WAL
	// segment magic so a stream capture and a WAL segment cannot be
	// confused, while the per-record bytes after it are identical.
	StreamMagic = "MONESTB1"

	// MaxStreamFrameBytes bounds one frame's declared payload (1 MiB,
	// ~52k updates — far above any sane batch). A larger declared length is
	// a protocol error, not a buffer worth allocating.
	MaxStreamFrameBytes = 1 << 20

	// StreamContentType is the media type of a binary ingest stream.
	StreamContentType = "application/x-monest-stream"
)

// UpdateBytes is the encoded size of one update on the wire and in the WAL.
const UpdateBytes = updateBytes

// AppendStreamHeader appends the stream magic. Writers send it once,
// before the first frame.
func AppendStreamHeader(dst []byte) []byte {
	return append(dst, StreamMagic...)
}

// AppendFrame appends one framed update batch (length, CRC, payload) —
// the exact record encoding the WAL appends to its segments.
func AppendFrame(dst []byte, batch []engine.Update) []byte {
	head := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
	dst = appendUpdates(dst, batch)
	payload := dst[head+8:]
	binary.LittleEndian.PutUint32(dst[head:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[head+4:], crc32.ChecksumIEEE(payload))
	return dst
}

// FrameScanner reads a binary ingest stream incrementally with reusable
// scratch: the frame buffer and the decoded batch slice are owned by the
// scanner and overwritten by the next call, so a steady-state connection
// allocates nothing per frame. Not safe for concurrent use.
type FrameScanner struct {
	r *bufio.Reader
	// head is the persistent 8-byte header scratch: a stack array would
	// escape through the io.ReadFull interface call, costing an allocation
	// per frame.
	head    [8]byte
	buf     []byte
	batch   []engine.Update
	started bool
	frames  uint64
}

// NewFrameScanner wraps a stream body. The magic header is consumed and
// verified on the first Next call.
func NewFrameScanner(r io.Reader) *FrameScanner {
	return &FrameScanner{r: bufio.NewReaderSize(r, 64<<10)}
}

// Frames reports how many frames have been decoded so far.
func (s *FrameScanner) Frames() uint64 { return s.frames }

// Next returns the next decoded update batch. It returns io.EOF exactly
// when the stream ends cleanly on a frame boundary; any mid-frame EOF,
// CRC mismatch or malformed payload is a non-EOF error. The returned
// slice is valid only until the next call.
func (s *FrameScanner) Next() ([]engine.Update, error) {
	if !s.started {
		if _, err := io.ReadFull(s.r, s.head[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return nil, fmt.Errorf("store: stream ended before the %q header", StreamMagic)
			}
			return nil, fmt.Errorf("store: reading stream header: %w", err)
		}
		if string(s.head[:]) != StreamMagic {
			return nil, fmt.Errorf("store: bad stream magic %q (want %q)", s.head, StreamMagic)
		}
		s.started = true
	}
	if _, err := io.ReadFull(s.r, s.head[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF // clean end: EOF exactly on a frame boundary
		}
		return nil, fmt.Errorf("store: torn frame header: %w", err)
	}
	plen := binary.LittleEndian.Uint32(s.head[:4])
	crc := binary.LittleEndian.Uint32(s.head[4:])
	if plen < 4 || plen > MaxStreamFrameBytes {
		return nil, fmt.Errorf("store: frame declares %d payload bytes (want 4..%d)", plen, MaxStreamFrameBytes)
	}
	if cap(s.buf) < int(plen) {
		s.buf = make([]byte, plen)
	}
	payload := s.buf[:plen]
	if _, err := io.ReadFull(s.r, payload); err != nil {
		return nil, fmt.Errorf("store: torn frame payload (%d bytes declared): %w", plen, err)
	}
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, errors.New("store: frame checksum mismatch")
	}
	batch, err := decodeUpdatesInto(s.batch, payload)
	if err != nil {
		return nil, err
	}
	s.batch = batch
	s.frames++
	return batch, nil
}

// decodeUpdatesInto is decodeUpdates reusing the caller's slice.
func decodeUpdatesInto(dst []engine.Update, payload []byte) ([]engine.Update, error) {
	if len(payload) < 4 {
		return nil, fmt.Errorf("store: record payload %d bytes, want ≥ 4", len(payload))
	}
	n := binary.LittleEndian.Uint32(payload)
	if uint64(len(payload)) != 4+uint64(n)*updateBytes {
		return nil, fmt.Errorf("store: record declares %d updates in %d payload bytes", n, len(payload))
	}
	if cap(dst) < int(n) {
		dst = make([]engine.Update, n)
	}
	dst = dst[:n]
	decodeUpdatesIntoSlice(dst, payload[4:])
	return dst, nil
}
