package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"testing"

	"repro/internal/engine"
)

func streamBatches(n, per int) [][]engine.Update {
	rng := rand.New(rand.NewSource(7))
	out := make([][]engine.Update, n)
	for i := range out {
		b := make([]engine.Update, per)
		for j := range b {
			b[j] = engine.Update{
				Instance: rng.Intn(3),
				Key:      rng.Uint64(),
				Weight:   rng.Float64() * 10,
			}
		}
		out[i] = b
	}
	return out
}

func encodeStream(batches [][]engine.Update) []byte {
	buf := AppendStreamHeader(nil)
	for _, b := range batches {
		buf = AppendFrame(buf, b)
	}
	return buf
}

func TestFrameScannerRoundTrip(t *testing.T) {
	batches := streamBatches(17, 9)
	batches = append(batches, []engine.Update{}) // empty frame is legal
	sc := NewFrameScanner(bytes.NewReader(encodeStream(batches)))
	for i, want := range batches {
		got, err := sc.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if len(got) != len(want) {
			t.Fatalf("frame %d: %d updates, want %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("frame %d update %d: %+v != %+v", i, j, got[j], want[j])
			}
		}
	}
	if _, err := sc.Next(); err != io.EOF {
		t.Fatalf("end of stream: %v, want io.EOF", err)
	}
	if sc.Frames() != uint64(len(batches)) {
		t.Fatalf("Frames() = %d, want %d", sc.Frames(), len(batches))
	}
}

// The wire frame must be byte-identical to a WAL record, so a captured
// stream body (minus its magic) is a replayable WAL tail.
func TestFrameMatchesWALRecordEncoding(t *testing.T) {
	batch := streamBatches(1, 5)[0]
	frame := AppendFrame(nil, batch)
	plen := binary.LittleEndian.Uint32(frame[:4])
	if int(plen) != len(frame)-8 {
		t.Fatalf("frame length prefix %d, frame payload %d", plen, len(frame)-8)
	}
	wantPayload := appendUpdates(nil, batch)
	if !bytes.Equal(frame[8:], wantPayload) {
		t.Fatal("frame payload differs from WAL record payload encoding")
	}
	decoded, err := decodeUpdates(frame[8:])
	if err != nil {
		t.Fatal(err)
	}
	for i := range batch {
		if decoded[i] != batch[i] {
			t.Fatalf("update %d: %+v != %+v", i, decoded[i], batch[i])
		}
	}
}

func TestFrameScannerRejectsCorruption(t *testing.T) {
	batches := streamBatches(3, 4)
	good := encodeStream(batches)

	cases := []struct {
		name string
		data []byte
	}{
		{"bad magic", append([]byte("MONESTXX"), good[8:]...)},
		{"empty stream", nil},
		{"truncated magic", good[:5]},
		{"torn frame header", good[:8+3]},
		{"torn payload", good[:len(good)-5]},
		{"flipped payload bit", func() []byte {
			b := bytes.Clone(good)
			b[len(b)-1] ^= 1
			return b
		}()},
		{"oversized declared length", func() []byte {
			b := bytes.Clone(good)
			binary.LittleEndian.PutUint32(b[8:], MaxStreamFrameBytes+1)
			return b
		}()},
		{"undersized declared length", func() []byte {
			b := bytes.Clone(good)
			binary.LittleEndian.PutUint32(b[8:], 3)
			return b
		}()},
		{"count/length mismatch", func() []byte {
			b := bytes.Clone(good)
			// Payload starts at 16: bump the update count without adding bytes.
			n := binary.LittleEndian.Uint32(b[16:])
			binary.LittleEndian.PutUint32(b[16:], n+1)
			return b
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := NewFrameScanner(bytes.NewReader(tc.data))
			var err error
			for err == nil {
				_, err = sc.Next()
			}
			if errors.Is(err, io.EOF) {
				t.Fatalf("%s scanned cleanly to EOF; want an error", tc.name)
			}
		})
	}
}

// A truncation exactly on a frame boundary is indistinguishable from a
// clean close — the scanner must report EOF, and the frames before the
// cut must have been delivered.
func TestFrameScannerCleanEOFOnBoundary(t *testing.T) {
	batches := streamBatches(2, 4)
	full := encodeStream(batches)
	first := AppendFrame(AppendStreamHeader(nil), batches[0])
	sc := NewFrameScanner(bytes.NewReader(full[:len(first)]))
	if _, err := sc.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Next(); err != io.EOF {
		t.Fatalf("boundary truncation: %v, want io.EOF", err)
	}
}

func TestFrameScannerReusesScratch(t *testing.T) {
	batches := streamBatches(50, 8)
	sc := NewFrameScanner(bytes.NewReader(encodeStream(batches)))
	if _, err := sc.Next(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(40, func() {
		if _, err := sc.Next(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state Next allocates %.1f/op, want 0", allocs)
	}
}
