package store

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/sampling"
)

func benchEngine(b *testing.B) *engine.Engine {
	b.Helper()
	e, err := engine.New(engine.Config{Instances: 2, K: 64, Shards: 16, Hash: sampling.NewSeedHash(1)})
	if err != nil {
		b.Fatal(err)
	}
	return e
}

func benchUpdates(n, keyspace int) []engine.Update {
	rng := rand.New(rand.NewSource(42))
	ups := make([]engine.Update, n)
	for i := range ups {
		ups[i] = engine.Update{
			Instance: rng.Intn(2),
			Key:      uint64(rng.Intn(keyspace)),
			Weight:   rng.Float64() * 100,
		}
	}
	return ups
}

// BenchmarkIngestWAL measures the WAL's ingest overhead: 256-update
// batches into a 16-shard engine, with journaling off and on under each
// fsync policy. The off/never delta is the encoding+write cost; never vs
// always is the price of per-batch durability.
func BenchmarkIngestWAL(b *testing.B) {
	const batch = 256
	run := func(b *testing.B, attach bool, opt Options) {
		e := benchEngine(b)
		if attach {
			st, err := Open(b.TempDir(), opt)
			if err != nil {
				b.Fatal(err)
			}
			p, _, err := Attach(e, st)
			if err != nil {
				b.Fatal(err)
			}
			defer p.Close()
		}
		ups := benchUpdates(64*batch, 1<<16)
		b.ReportAllocs()
		b.SetBytes(int64(batch * 20))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			lo := (i * batch) % (len(ups) - batch)
			if err := e.IngestBatch(ups[lo : lo+batch]); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, false, Options{}) })
	b.Run("fsync=never", func(b *testing.B) { run(b, true, Options{Fsync: FsyncNever}) })
	b.Run("fsync=interval", func(b *testing.B) {
		run(b, true, Options{Fsync: FsyncInterval, SyncInterval: 100 * time.Millisecond})
	})
	b.Run("fsync=always", func(b *testing.B) { run(b, true, Options{Fsync: FsyncAlways}) })
}

// BenchmarkRecovery measures boot-time replay of a 1M-update WAL (no
// checkpoint — the worst case) into a fresh engine.
func BenchmarkRecovery(b *testing.B) {
	const total = 1 << 20
	const batch = 256
	dir := b.TempDir()
	{
		e := benchEngine(b)
		st, err := Open(dir, Options{Fsync: FsyncNever})
		if err != nil {
			b.Fatal(err)
		}
		p, _, err := Attach(e, st)
		if err != nil {
			b.Fatal(err)
		}
		ups := benchUpdates(total, 1<<18)
		for lo := 0; lo < total; lo += batch {
			if err := e.IngestBatch(ups[lo : lo+batch]); err != nil {
				b.Fatal(err)
			}
		}
		if err := st.Sync(); err != nil {
			b.Fatal(err)
		}
		if err := st.Close(); err != nil { // crash-style: no final checkpoint
			b.Fatal(err)
		}
		_ = p
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := benchEngine(b)
		st, err := Open(dir, Options{Fsync: FsyncNever})
		if err != nil {
			b.Fatal(err)
		}
		stats, err := st.Recover(recoveryTarget{e})
		if err != nil {
			b.Fatal(err)
		}
		if stats.Updates != total {
			b.Fatalf("replayed %d updates, want %d", stats.Updates, total)
		}
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(total)/b.Elapsed().Seconds()/float64(b.N), "updates/s")
	}
}

// BenchmarkCheckpoint measures cutting and persisting a 64k-key state.
func BenchmarkCheckpoint(b *testing.B) {
	e := benchEngine(b)
	st, err := Open(b.TempDir(), Options{Fsync: FsyncNever})
	if err != nil {
		b.Fatal(err)
	}
	p, _, err := Attach(e, st)
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	ups := benchUpdates(1<<18, 1<<16)
	for lo := 0; lo < len(ups); lo += 256 {
		if err := e.IngestBatch(ups[lo : lo+256]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Checkpoint(); err != nil {
			b.Fatal(err)
		}
	}
}

// The benchmarks double as a large-scale equivalence check when run with
// -test.run support; keep a cheap guard here so `go test` exercises the
// 1M path shape without the cost.
func TestRecoveryBenchShape(t *testing.T) {
	e, err := engine.New(engine.Config{Instances: 2, K: 64, Shards: 16, Hash: sampling.NewSeedHash(1)})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	st, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	p, _, err := Attach(e, st)
	if err != nil {
		t.Fatal(err)
	}
	ups := benchUpdates(4096, 1<<12)
	for lo := 0; lo < len(ups); lo += 256 {
		if err := e.IngestBatch(ups[lo : lo+256]); err != nil {
			t.Fatal(err)
		}
	}
	want := e.Snapshot()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	r, _ := engine.New(engine.Config{Instances: 2, K: 64, Shards: 16, Hash: sampling.NewSeedHash(1)})
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st2.Recover(recoveryTarget{r}); err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if !reflect.DeepEqual(r.Snapshot(), want) {
		t.Fatal("bench-shaped recovery is not bit-identical")
	}
}
