package store

import (
	"fmt"
	"sync"

	"repro/internal/engine"
)

// Persistence ties one engine to one Store: Attach recovers the engine
// from the store and wires the store in as the engine's write-ahead
// journal; Checkpoint cuts and persists the live state; Close writes a
// final checkpoint and releases the store (the graceful-shutdown path).
type Persistence struct {
	eng *engine.Engine
	st  Store
	// mu serializes checkpoints: two concurrent cuts would race for the
	// rotation-then-cut ordering the store's pruning relies on.
	mu        sync.Mutex
	closed    bool
	recovered RecoveryStats
}

// recoveryTarget replays a store's contents into a bare engine.
type recoveryTarget struct{ eng *engine.Engine }

func (t recoveryTarget) Restore(st *engine.State) error { return t.eng.RestoreState(st) }
func (t recoveryTarget) Replay(batch []engine.Update) error {
	// The journal is not attached yet, so replay does not re-journal.
	if err := t.eng.IngestBatch(batch); err != nil {
		return fmt.Errorf("replaying %d updates: %w", len(batch), err)
	}
	return nil
}

// Attach recovers the store's contents into the engine (which must be
// freshly constructed) and attaches the store as the engine's journal.
// On return the engine's Snapshot() is bit-identical to the pre-crash
// engine's at the last durable point, and every subsequent ingest is
// journaled. The engine must not receive traffic until Attach returns.
func Attach(eng *engine.Engine, st Store) (*Persistence, RecoveryStats, error) {
	stats, err := st.Recover(recoveryTarget{eng})
	if err != nil {
		return nil, stats, err
	}
	eng.SetJournal(st)
	return &Persistence{eng: eng, st: st, recovered: stats}, stats, nil
}

// Recovered reports what Attach found.
func (p *Persistence) Recovered() RecoveryStats { return p.recovered }

// Checkpoint persists a consistent cut of the engine and truncates the
// WAL it covers. Safe to call concurrently with ingests and with itself.
func (p *Persistence) Checkpoint() (CheckpointStats, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return CheckpointStats{}, fmt.Errorf("store: persistence closed")
	}
	return p.st.Checkpoint(p.eng.DumpState)
}

// Sync forces journaled updates to stable storage (exposed for tests and
// operators; the fsync policy drives it in normal operation).
func (p *Persistence) Sync() error { return p.st.Sync() }

// Close writes a final checkpoint and closes the store. The caller must
// have stopped ingest traffic (monestd drains HTTP first); after Close
// the WAL tail is empty, so the next boot restores the checkpoint and
// replays nothing.
func (p *Persistence) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	p.closed = true
	_, cerr := p.st.Checkpoint(p.eng.DumpState)
	if err := p.st.Close(); err != nil {
		if cerr != nil {
			return fmt.Errorf("%w (and close: %v)", cerr, err)
		}
		return err
	}
	return cerr
}
