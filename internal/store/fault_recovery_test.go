package store_test

// Crash-recovery property test under injected store faults: a journal
// that fails, tears, or refuses checkpoints mid-run must still recover
// to exactly the surviving durable prefix. External package: the fault
// toolkit imports internal/store, so this test cannot live inside it.
//
// The oracle is built from the per-update fault outcomes:
//
//   - a successful Ingest is durable (journaled, applied);
//   - a TORN append (fault.ErrTorn: the WAL record landed, then the
//     fault surfaced) is rejected by the live engine but survives in
//     the WAL — recovery must resurrect it, UNLESS a later successful
//     checkpoint pruned it (the checkpoint cut the live state, which
//     never held the torn update);
//   - a FAILED append (fault.ErrInjected: nothing reached the WAL)
//     vanishes entirely;
//   - a failed checkpoint prunes nothing and changes nothing.

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/sampling"
	"repro/internal/store"
)

func newFaultTestEngine(t *testing.T) *engine.Engine {
	t.Helper()
	e, err := engine.New(engine.Config{
		Instances: 3,
		K:         8,
		Shards:    4,
		Hash:      sampling.NewSeedHash(7),
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestFaultInjectedCrashRecovery(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			eng := newFaultTestEngine(t)
			inner, err := store.Open(dir, store.Options{})
			if err != nil {
				t.Fatal(err)
			}
			fs := fault.WrapStore(inner, seed, fault.StoreFaults{
				AppendFailRate:     0.08,
				AppendTornRate:     0.08,
				CheckpointFailRate: 0.5,
			})
			p, _, err := store.Attach(eng, fs)
			if err != nil {
				t.Fatal(err)
			}

			rng := rand.New(rand.NewSource(int64(seed)))
			var applied []engine.Update // ingests the engine accepted
			var tornTail []engine.Update
			var fails, torn, ckptFails, ckptOK int
			for i := 0; i < 3000; i++ {
				u := engine.Update{
					Instance: rng.Intn(3),
					Key:      uint64(rng.Intn(500)),
					Weight:   rng.Float64() * 10,
				}
				err := eng.Ingest(u.Instance, u.Key, u.Weight)
				switch {
				case err == nil:
					applied = append(applied, u)
				case errors.Is(err, fault.ErrTorn):
					torn++
					tornTail = append(tornTail, u)
				case errors.Is(err, fault.ErrInjected):
					fails++ // never durable
				default:
					t.Fatalf("update %d: unexpected error: %v", i, err)
				}
				if i%500 == 499 {
					if _, err := p.Checkpoint(); err == nil {
						ckptOK++
						// The checkpoint cut the LIVE state and pruned the
						// WAL under it: torn records so far are gone for good.
						tornTail = tornTail[:0]
					} else if errors.Is(err, fault.ErrInjected) {
						ckptFails++
					} else {
						t.Fatalf("checkpoint: %v", err)
					}
				}
			}
			if fails == 0 || torn == 0 {
				t.Fatalf("seed %d drew no faults (fails=%d torn=%d) — rates too low to test anything", seed, fails, torn)
			}
			t.Logf("seed %d: %d applied, %d failed, %d torn (%d in tail), checkpoints %d ok / %d failed",
				seed, len(applied), fails, torn, len(tornTail), ckptOK, ckptFails)

			// Crash: abandon without flushing or checkpointing, exactly like
			// the in-package crash() stand-in for SIGKILL.
			_ = p

			oracle := newFaultTestEngine(t)
			for _, u := range append(append([]engine.Update{}, applied...), tornTail...) {
				if err := oracle.Ingest(u.Instance, u.Key, u.Weight); err != nil {
					t.Fatal(err)
				}
			}

			rec := newFaultTestEngine(t)
			st2, err := store.Open(dir, store.Options{})
			if err != nil {
				t.Fatal(err)
			}
			p2, stats, err := store.Attach(rec, st2)
			if err != nil {
				t.Fatalf("recovering after injected faults: %v", err)
			}
			defer p2.Close()
			if len(tornTail) > 0 && stats.Updates == 0 {
				t.Fatal("torn appends in the WAL tail but recovery replayed nothing")
			}
			if !reflect.DeepEqual(rec.Snapshot(), oracle.Snapshot()) {
				t.Fatalf("seed %d: recovered state differs from the surviving-prefix oracle", seed)
			}
		})
	}
}

// TestFaultStoreCheckpointFailureLeavesWAL pins the failed-checkpoint
// contract deterministically: an injected checkpoint error must prune
// nothing, so a crash right after still recovers every journaled update.
func TestFaultStoreCheckpointFailureLeavesWAL(t *testing.T) {
	dir := t.TempDir()
	eng := newFaultTestEngine(t)
	inner, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fs := fault.WrapStore(inner, 1, fault.StoreFaults{CheckpointFailRate: 1})
	p, _, err := store.Attach(eng, fs)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	oracle := newFaultTestEngine(t)
	for i := 0; i < 400; i++ {
		u := engine.Update{Instance: rng.Intn(3), Key: uint64(rng.Intn(200)), Weight: rng.Float64() * 10}
		if err := eng.Ingest(u.Instance, u.Key, u.Weight); err != nil {
			t.Fatal(err)
		}
		if err := oracle.Ingest(u.Instance, u.Key, u.Weight); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.Checkpoint(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("checkpoint error = %v, want injected", err)
	}
	if st := fs.Stats(); st.CheckpointFails != 1 {
		t.Fatalf("checkpoint fails = %d, want 1", st.CheckpointFails)
	}

	rec := newFaultTestEngine(t)
	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p2, stats, err := store.Attach(rec, st2)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if stats.CheckpointSeq != 0 {
		t.Fatalf("failed checkpoint left seq %d", stats.CheckpointSeq)
	}
	if stats.Updates != 400 {
		t.Fatalf("replayed %d updates, want 400", stats.Updates)
	}
	if !reflect.DeepEqual(rec.Snapshot(), oracle.Snapshot()) {
		t.Fatal("recovery after failed checkpoint lost updates")
	}
}
