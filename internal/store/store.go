// Package store is the engine's persistence subsystem: an append-only
// write-ahead log of accepted updates plus compact sketch checkpoints,
// behind a pluggable Store interface with a backend registry.
//
// The durability model leans on two sketch properties. First, sketches
// are tiny (≤ k+1 retained entries per instance per shard), so a full
// checkpoint costs little relative to the raw stream and the WAL never
// needs to grow past one checkpoint interval. Second, the sketch fold is
// commutative and idempotent under max semantics, so recovery can replay
// a WAL tail that overlaps the checkpoint cut — re-applying an already
// checkpointed update is a dominated-duplicate no-op. The file backend
// exploits this by rotating to a fresh WAL segment before cutting the
// checkpoint: no coordination between appenders and the checkpointer is
// needed beyond the rotation itself.
//
// Recovery = newest valid checkpoint (falling back to older ones when the
// newest is missing or corrupt) + replay of the WAL segments it points
// at, truncating at the first torn or corrupt record. The Persistence
// type (persist.go) wires all of this to an engine.
package store

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/engine"
)

// FsyncPolicy says when WAL appends are forced to stable storage.
type FsyncPolicy int

const (
	// FsyncAlways fsyncs after every append: no accepted update is ever
	// lost, at the cost of a disk flush per batch.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval fsyncs on a background timer (Options.SyncInterval):
	// a crash loses at most one interval of updates.
	FsyncInterval
	// FsyncNever leaves flushing to the OS: fastest, loses whatever the
	// page cache held on a power failure (a clean process crash loses
	// nothing — the writes are already in the kernel).
	FsyncNever
)

// ParseFsyncPolicy maps the -fsync flag values to a policy.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("store: unknown fsync policy %q (have always, interval, never)", s)
}

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	}
	return fmt.Sprintf("FsyncPolicy(%d)", int(p))
}

// Options tune a backend.
type Options struct {
	// Fsync is the WAL flush policy. Default FsyncAlways.
	Fsync FsyncPolicy
	// SyncInterval is the background flush period under FsyncInterval.
	// Default 100ms.
	SyncInterval time.Duration
	// KeepCheckpoints is how many most-recent checkpoints to retain (the
	// older ones are the corruption fallbacks). Default 2, minimum 1.
	KeepCheckpoints int
}

func (o Options) withDefaults() Options {
	if o.SyncInterval <= 0 {
		o.SyncInterval = 100 * time.Millisecond
	}
	if o.KeepCheckpoints < 1 {
		o.KeepCheckpoints = 2
	}
	return o
}

// RecoveryHandler receives a store's recovered contents in order: Restore
// at most once (absent when no valid checkpoint exists), then Replay per
// valid WAL record. An error from either aborts recovery.
type RecoveryHandler interface {
	Restore(st *engine.State) error
	Replay(batch []engine.Update) error
}

// RecoveryStats summarizes what Recover found.
type RecoveryStats struct {
	// CheckpointSeq and CheckpointVersion identify the checkpoint restored
	// from (zero when none was found).
	CheckpointSeq     uint64 `json:"checkpoint_seq"`
	CheckpointVersion uint64 `json:"checkpoint_version"`
	// CheckpointsSkipped counts newer checkpoints that existed but failed
	// validation and were passed over.
	CheckpointsSkipped int `json:"checkpoints_skipped,omitempty"`
	// Records and Updates count the replayed WAL tail.
	Records int `json:"records"`
	Updates int `json:"updates"`
	// Truncated reports that a torn or corrupt record was found and the
	// WAL was cut off there.
	Truncated bool `json:"truncated,omitempty"`
}

// CheckpointStats summarizes one written checkpoint.
type CheckpointStats struct {
	// Seq is the checkpoint's sequence number (monotone per store).
	Seq uint64 `json:"seq"`
	// Version is the engine mutation version at the cut.
	Version uint64 `json:"version"`
	// Keys and RetainedEntries size the cut.
	Keys            int `json:"keys"`
	RetainedEntries int `json:"retained_entries"`
	// Bytes is the encoded checkpoint size on disk.
	Bytes int `json:"bytes"`
	// WALRecordsDropped counts WAL records made obsolete (pruned) by this
	// checkpoint.
	WALRecordsDropped int `json:"wal_records_dropped"`
}

// Store persists an engine's stream. Append/Sync serve the write-ahead
// log (Append is safe for concurrent use — it is the engine's Journal,
// called under the engine's shard locks). Checkpoint atomically persists
// a full sketch state and prunes the WAL prefix it covers; the state is
// produced by the cut callback, which the backend invokes only AFTER it
// has sealed the WAL position the checkpoint claims to cover (the file
// backend rotates to a fresh segment first) — callers must not cut
// early, or updates journaled between the cut and the seal are pruned
// unreplayed. Recover must be called exactly once, before any Append.
// Close flushes and releases the backend without checkpointing.
type Store interface {
	engine.Journal
	Sync() error
	Checkpoint(cut func() *engine.State) (CheckpointStats, error)
	Recover(h RecoveryHandler) (RecoveryStats, error)
	Close() error
}

// Opener constructs a backend rooted at path.
type Opener func(path string, opt Options) (Store, error)

var (
	regMu    sync.Mutex
	backends = map[string]Opener{}
)

// Register adds a backend under name; the name must be unused. The file
// and null backends self-register; external backends (an S3 or raft
// store) plug in the same way.
func Register(name string, op Opener) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := backends[name]; dup {
		panic(fmt.Sprintf("store: backend %q registered twice", name))
	}
	backends[name] = op
}

// Backends lists the registered backend names, sorted.
func Backends() []string {
	regMu.Lock()
	defer regMu.Unlock()
	names := make([]string, 0, len(backends))
	for n := range backends {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Open resolves a spec of the form "backend:path" — "file:/var/lib/monestd",
// "null:" — against the registry. A spec without a backend prefix is a
// path for the file backend, so a bare -data-dir just works.
func Open(spec string, opt Options) (Store, error) {
	backend, path := "file", spec
	if i := strings.Index(spec, ":"); i > 0 {
		if name := spec[:i]; !strings.Contains(name, "/") {
			backend, path = name, spec[i+1:]
		}
	}
	regMu.Lock()
	op, ok := backends[backend]
	regMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("store: unknown backend %q (have %s)", backend, strings.Join(Backends(), ", "))
	}
	return op(path, opt.withDefaults())
}
