package store

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/sampling"
)

func newEngine(t *testing.T) *engine.Engine {
	t.Helper()
	e, err := engine.New(engine.Config{Instances: 3, K: 8, Shards: 4, Hash: sampling.NewSeedHash(7)})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func randomUpdates(rng *rand.Rand, n int) []engine.Update {
	ups := make([]engine.Update, n)
	for i := range ups {
		ups[i] = engine.Update{
			Instance: rng.Intn(3),
			Key:      uint64(rng.Intn(500)),
			Weight:   rng.Float64() * 10,
		}
	}
	return ups
}

func attach(t *testing.T, e *engine.Engine, dir string, opt Options) (*Persistence, RecoveryStats) {
	t.Helper()
	st, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	p, stats, err := Attach(e, st)
	if err != nil {
		t.Fatal(err)
	}
	return p, stats
}

func listFiles(t *testing.T, dir, glob string) []string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, glob))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(names)
	return names
}

func TestOpenSpecs(t *testing.T) {
	if _, err := Open("bogus:x", Options{}); err == nil || !strings.Contains(err.Error(), "unknown backend") {
		t.Errorf("unknown backend error = %v", err)
	}
	if _, err := Open("", Options{}); err == nil {
		t.Error("empty file path must fail")
	}
	ns, err := Open("null:", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ns.Recover(recoveryTarget{}); err != nil {
		t.Fatal(err)
	}
	if err := ns.Close(); err != nil {
		t.Fatal(err)
	}
	for _, spec := range []string{t.TempDir(), "file:" + t.TempDir()} {
		fs, err := Open(spec, Options{})
		if err != nil {
			t.Fatalf("Open(%q): %v", spec, err)
		}
		if _, ok := fs.(*fileStore); !ok {
			t.Fatalf("Open(%q) = %T, want *fileStore", spec, fs)
		}
		fs.Close()
	}
	have := strings.Join(Backends(), ",")
	for _, want := range []string{"file", "null"} {
		if !strings.Contains(have, want) {
			t.Errorf("Backends() = %s, missing %q", have, want)
		}
	}
}

func TestStateArtifactRoundTrip(t *testing.T) {
	e := newEngine(t)
	rng := rand.New(rand.NewSource(1))
	if err := e.IngestBatch(randomUpdates(rng, 4000)); err != nil {
		t.Fatal(err)
	}
	st := e.DumpState()
	data := EncodeState(st)
	back, err := DecodeState(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, st) {
		t.Fatal("decoded state differs from the dumped state")
	}
	// Determinism: equal contents encode to equal bytes.
	if !bytes.Equal(EncodeState(e.DumpState()), data) {
		t.Fatal("re-encoding the same engine produced different bytes")
	}

	// Structural corruption must be detected, never half-decoded.
	for name, mutate := range map[string]func([]byte) []byte{
		"bad magic":  func(d []byte) []byte { d[0] ^= 0xff; return d },
		"truncated":  func(d []byte) []byte { return d[:len(d)-5] },
		"bit flip":   func(d []byte) []byte { d[len(d)/2] ^= 1; return d },
		"trailing":   func(d []byte) []byte { return append(d, 0) },
		"bad length": func(d []byte) []byte { d[9] ^= 0x10; return d },
	} {
		cp := mutate(append([]byte(nil), data...))
		if _, err := DecodeState(cp); err == nil {
			t.Errorf("%s: corrupt artifact decoded without error", name)
		}
	}
}

// crash abandons the persistence without flushing or checkpointing —
// the in-process stand-in for SIGKILL (writes already issued to the OS
// survive; nothing else does).
func crash(p *Persistence) {}

func TestRecoverEmptyDir(t *testing.T) {
	dir := t.TempDir()
	e := newEngine(t)
	p, stats := attach(t, e, dir, Options{})
	if stats.CheckpointSeq != 0 || stats.Records != 0 {
		t.Fatalf("fresh dir recovered %+v", stats)
	}
	if err := e.Ingest(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverWALOnly(t *testing.T) {
	dir := t.TempDir()
	e := newEngine(t)
	p, _ := attach(t, e, dir, Options{Fsync: FsyncNever})
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20; i++ {
		if err := e.IngestBatch(randomUpdates(rng, 50)); err != nil {
			t.Fatal(err)
		}
	}
	want := e.Snapshot()
	crash(p) // no checkpoint was ever written

	r := newEngine(t)
	_, stats := attach(t, r, dir, Options{})
	if stats.CheckpointSeq != 0 {
		t.Fatalf("no checkpoint exists, recovered from seq %d", stats.CheckpointSeq)
	}
	if stats.Updates != 1000 {
		t.Fatalf("replayed %d updates, want 1000", stats.Updates)
	}
	if !reflect.DeepEqual(r.Snapshot(), want) {
		t.Fatal("WAL-only recovery is not bit-identical")
	}
}

func TestRecoverCheckpointPlusTail(t *testing.T) {
	dir := t.TempDir()
	e := newEngine(t)
	p, _ := attach(t, e, dir, Options{Fsync: FsyncNever})
	rng := rand.New(rand.NewSource(3))
	if err := e.IngestBatch(randomUpdates(rng, 700)); err != nil {
		t.Fatal(err)
	}
	cs, err := p.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if cs.Keys == 0 || cs.Bytes == 0 {
		t.Fatalf("checkpoint stats %+v", cs)
	}
	tail := randomUpdates(rng, 300)
	if err := e.IngestBatch(tail); err != nil {
		t.Fatal(err)
	}
	want := e.Snapshot()
	crash(p)

	r := newEngine(t)
	_, stats := attach(t, r, dir, Options{})
	if stats.CheckpointSeq != cs.Seq {
		t.Fatalf("recovered from checkpoint %d, want %d", stats.CheckpointSeq, cs.Seq)
	}
	if stats.Updates == 0 {
		t.Fatal("expected a WAL tail replay")
	}
	if !reflect.DeepEqual(r.Snapshot(), want) {
		t.Fatal("checkpoint+tail recovery is not bit-identical")
	}
}

func TestCleanShutdownRoundTripsExportBytes(t *testing.T) {
	dir := t.TempDir()
	e := newEngine(t)
	p, _ := attach(t, e, dir, Options{})
	rng := rand.New(rand.NewSource(4))
	if err := e.IngestBatch(randomUpdates(rng, 2000)); err != nil {
		t.Fatal(err)
	}
	export := EncodeState(e.DumpState())
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	r := newEngine(t)
	p2, stats := attach(t, r, dir, Options{})
	defer p2.Close()
	if stats.Records != 0 || stats.Updates != 0 {
		t.Fatalf("clean shutdown left a WAL tail: %+v", stats)
	}
	// Byte-identical export across the restart: contents, masks, and the
	// Ingests/Version counters all survived.
	if !bytes.Equal(EncodeState(r.DumpState()), export) {
		t.Fatal("export bytes differ across a clean restart")
	}
}

func TestTornFinalRecordIsTruncated(t *testing.T) {
	dir := t.TempDir()
	e := newEngine(t)
	p, _ := attach(t, e, dir, Options{Fsync: FsyncNever})
	reference := newEngine(t)
	rng := rand.New(rand.NewSource(5))
	// Single Ingests: one WAL record per update in call order, so the
	// surviving log is exactly a prefix of `all`.
	all := randomUpdates(rng, 1000)
	for _, u := range all {
		if err := e.Ingest(u.Instance, u.Key, u.Weight); err != nil {
			t.Fatal(err)
		}
	}
	crash(p)

	segs := listFiles(t, dir, "wal-*.log")
	if len(segs) == 0 {
		t.Fatal("no wal segment written")
	}
	last := segs[len(segs)-1]
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the file mid-record: drop the final 7 bytes.
	if err := os.Truncate(last, fi.Size()-7); err != nil {
		t.Fatal(err)
	}

	r := newEngine(t)
	_, stats := attach(t, r, dir, Options{})
	if !stats.Truncated {
		t.Fatal("torn final record not reported as truncation")
	}
	if err := reference.IngestBatch(all[:stats.Updates]); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.Snapshot(), reference.Snapshot()) {
		t.Fatal("recovery after a torn final record is not the surviving prefix")
	}
}

func TestCRCMismatchMidWALStopsReplay(t *testing.T) {
	dir := t.TempDir()
	e := newEngine(t)
	p, _ := attach(t, e, dir, Options{Fsync: FsyncNever})
	rng := rand.New(rand.NewSource(6))
	all := randomUpdates(rng, 1000)
	for _, u := range all {
		if err := e.Ingest(u.Instance, u.Key, u.Weight); err != nil {
			t.Fatal(err)
		}
	}
	crash(p)

	segs := listFiles(t, dir, "wal-*.log")
	last := segs[len(segs)-1]
	data, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte roughly mid-file: the CRC of that record must
	// fail, replay must stop there even though later records are intact.
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(last, data, 0o644); err != nil {
		t.Fatal(err)
	}

	r := newEngine(t)
	_, stats := attach(t, r, dir, Options{})
	if !stats.Truncated {
		t.Fatal("mid-WAL corruption not reported as truncation")
	}
	if stats.Updates == 0 || stats.Updates >= len(all) {
		t.Fatalf("replayed %d of %d updates; corruption should stop replay strictly early", stats.Updates, len(all))
	}
	reference := newEngine(t)
	if err := reference.IngestBatch(all[:stats.Updates]); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.Snapshot(), reference.Snapshot()) {
		t.Fatal("recovery after mid-WAL corruption is not the surviving prefix")
	}

	// Recovery rewrote the log to the surviving prefix: a second recovery
	// sees a clean (untruncated) WAL with the same contents.
	r2 := newEngine(t)
	_, stats2 := attach(t, r2, dir, Options{})
	if stats2.Truncated {
		t.Fatal("second recovery still sees corruption")
	}
	if !reflect.DeepEqual(r2.Snapshot(), r.Snapshot()) {
		t.Fatal("second recovery differs from the first")
	}
}

func TestCheckpointFallbackToPrevious(t *testing.T) {
	dir := t.TempDir()
	e := newEngine(t)
	p, _ := attach(t, e, dir, Options{Fsync: FsyncNever})
	rng := rand.New(rand.NewSource(7))
	if err := e.IngestBatch(randomUpdates(rng, 400)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := e.IngestBatch(randomUpdates(rng, 400)); err != nil {
		t.Fatal(err)
	}
	cs2, err := p.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if err := e.IngestBatch(randomUpdates(rng, 200)); err != nil {
		t.Fatal(err)
	}
	want := e.Snapshot()
	crash(p)

	corrupt := func(path string) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)-3] ^= 0xff
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	cks := listFiles(t, dir, "checkpoint-*.ckpt")
	if len(cks) != 2 {
		t.Fatalf("retained %d checkpoints, want 2", len(cks))
	}
	corrupt(cks[len(cks)-1])

	r := newEngine(t)
	_, stats := attach(t, r, dir, Options{})
	if stats.CheckpointSeq == cs2.Seq {
		t.Fatal("recovery used the corrupted newest checkpoint")
	}
	if stats.CheckpointsSkipped != 1 {
		t.Fatalf("CheckpointsSkipped = %d, want 1", stats.CheckpointsSkipped)
	}
	if !reflect.DeepEqual(r.Snapshot(), want) {
		t.Fatal("fallback recovery (previous checkpoint + longer tail) is not bit-identical")
	}

	// With BOTH checkpoints gone, the WAL alone no longer reaches the
	// full state (pruned prefix) — recovery must still succeed and land
	// exactly on what the remaining log proves.
	for _, c := range listFiles(t, dir, "checkpoint-*.ckpt") {
		if err := os.Remove(c); err != nil {
			t.Fatal(err)
		}
	}
	r2 := newEngine(t)
	_, stats2 := attach(t, r2, dir, Options{})
	if stats2.CheckpointSeq != 0 {
		t.Fatalf("checkpoints deleted but recovery reports seq %d", stats2.CheckpointSeq)
	}
}

func TestMissingCheckpointFileFallsBack(t *testing.T) {
	dir := t.TempDir()
	e := newEngine(t)
	p, _ := attach(t, e, dir, Options{Fsync: FsyncNever})
	rng := rand.New(rand.NewSource(8))
	if err := e.IngestBatch(randomUpdates(rng, 300)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := e.IngestBatch(randomUpdates(rng, 300)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want := e.Snapshot()
	crash(p)

	cks := listFiles(t, dir, "checkpoint-*.ckpt")
	if err := os.Remove(cks[len(cks)-1]); err != nil {
		t.Fatal(err)
	}
	r := newEngine(t)
	_, _ = attach(t, r, dir, Options{})
	if !reflect.DeepEqual(r.Snapshot(), want) {
		t.Fatal("recovery with the newest checkpoint missing is not bit-identical")
	}
}

func TestCrashRecoveryProperty(t *testing.T) {
	// Random ingest cut at a random WAL byte: the recovered snapshot must
	// be bit-identical to a reference engine fed exactly the surviving
	// prefix. One update per record makes the oracle exact: surviving
	// updates = checkpointed prefix + replayed records.
	for trial := 0; trial < 12; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		dir := t.TempDir()
		e := newEngine(t)
		p, _ := attach(t, e, dir, Options{Fsync: FsyncNever})
		n := 100 + rng.Intn(300)
		ckptAt := -1
		if rng.Intn(2) == 0 {
			ckptAt = rng.Intn(n)
		}
		ups := randomUpdates(rng, n)
		for i, u := range ups {
			if err := e.Ingest(u.Instance, u.Key, u.Weight); err != nil {
				t.Fatal(err)
			}
			if i == ckptAt {
				if _, err := p.Checkpoint(); err != nil {
					t.Fatal(err)
				}
			}
		}
		crash(p)

		// Cut the newest segment at a uniformly random byte ≥ its header.
		segs := listFiles(t, dir, "wal-*.log")
		last := segs[len(segs)-1]
		fi, err := os.Stat(last)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() > 8 {
			cut := 8 + rng.Int63n(fi.Size()-8+1)
			if err := os.Truncate(last, cut); err != nil {
				t.Fatal(err)
			}
		}

		r := newEngine(t)
		_, stats := attach(t, r, dir, Options{})
		survived := stats.Updates
		if ckptAt >= 0 {
			survived += ckptAt + 1
		}
		if survived > n {
			t.Fatalf("trial %d: survived %d of %d updates", trial, survived, n)
		}
		reference := newEngine(t)
		for _, u := range ups[:survived] {
			if err := reference.Ingest(u.Instance, u.Key, u.Weight); err != nil {
				t.Fatal(err)
			}
		}
		if !reflect.DeepEqual(r.Snapshot(), reference.Snapshot()) {
			t.Fatalf("trial %d: recovered snapshot differs from the %d-update prefix (ckpt at %d)",
				trial, survived, ckptAt)
		}
	}
}

func TestFsyncPolicies(t *testing.T) {
	for _, pol := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNever} {
		t.Run(pol.String(), func(t *testing.T) {
			dir := t.TempDir()
			e := newEngine(t)
			p, _ := attach(t, e, dir, Options{Fsync: pol, SyncInterval: 5 * time.Millisecond})
			for i := 0; i < 50; i++ {
				if err := e.Ingest(i%3, uint64(i), 1); err != nil {
					t.Fatal(err)
				}
			}
			if pol == FsyncInterval {
				time.Sleep(25 * time.Millisecond) // let the flusher tick
			}
			if err := p.Sync(); err != nil {
				t.Fatal(err)
			}
			if err := p.Close(); err != nil {
				t.Fatal(err)
			}
			r := newEngine(t)
			p2, _ := attach(t, r, dir, Options{})
			defer p2.Close()
			if !reflect.DeepEqual(r.Snapshot(), e.Snapshot()) {
				t.Fatalf("policy %v: recovery not bit-identical", pol)
			}
		})
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Error("bad fsync policy must fail to parse")
	}
	for _, s := range []string{"always", "interval", "never"} {
		pol, err := ParseFsyncPolicy(s)
		if err != nil || pol.String() != s {
			t.Errorf("ParseFsyncPolicy(%q) = %v, %v", s, pol, err)
		}
	}
}

func TestCheckpointPrunesWAL(t *testing.T) {
	dir := t.TempDir()
	e := newEngine(t)
	p, _ := attach(t, e, dir, Options{Fsync: FsyncNever, KeepCheckpoints: 2})
	rng := rand.New(rand.NewSource(9))
	var dropped int
	for i := 0; i < 4; i++ {
		if err := e.IngestBatch(randomUpdates(rng, 100)); err != nil {
			t.Fatal(err)
		}
		cs, err := p.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		dropped += cs.WALRecordsDropped
	}
	if dropped == 0 {
		t.Fatal("repeated checkpoints never pruned a WAL record")
	}
	if n := len(listFiles(t, dir, "checkpoint-*.ckpt")); n != 2 {
		t.Fatalf("retained %d checkpoints, want 2", n)
	}
	// Segments older than the oldest retained checkpoint must be gone.
	segs := listFiles(t, dir, "wal-*.log")
	cks := listFiles(t, dir, "checkpoint-*.ckpt")
	oldest := filepath.Base(cks[0])
	for _, s := range segs {
		if filepath.Base(s) < strings.Replace(oldest, "checkpoint-", "wal-", 1) {
			t.Fatalf("segment %s predates the oldest retained checkpoint %s", s, oldest)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreUsageErrors(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(nil); err == nil {
		t.Error("append before Recover must fail")
	}
	if _, err := st.Checkpoint(func() *engine.State { return nil }); err == nil {
		t.Error("checkpoint before Recover must fail")
	}
	if _, err := st.Recover(recoveryTarget{newEngineQuiet()}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Recover(recoveryTarget{newEngineQuiet()}); err == nil {
		t.Error("second Recover must fail")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	if err := st.Append(nil); err == nil {
		t.Error("append after Close must fail")
	}
}

func newEngineQuiet() *engine.Engine {
	e, _ := engine.New(engine.Config{Instances: 3, K: 8, Shards: 4, Hash: sampling.NewSeedHash(7)})
	return e
}
