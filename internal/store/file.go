package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/engine"
)

func init() {
	Register("file", func(path string, opt Options) (Store, error) { return openFile(path, opt) })
	Register("null", func(string, Options) (Store, error) { return nullStore{}, nil })
}

// nullStore is the no-op backend: durability disabled but the plumbing
// exercised — useful for tests and for running export/import without a
// data directory.
type nullStore struct{}

func (nullStore) Append([]engine.Update) error { return nil }
func (nullStore) Sync() error                  { return nil }
func (nullStore) Checkpoint(cut func() *engine.State) (CheckpointStats, error) {
	st := cut()
	return CheckpointStats{Version: st.Version, Keys: len(st.Keys)}, nil
}
func (nullStore) Recover(RecoveryHandler) (RecoveryStats, error) { return RecoveryStats{}, nil }
func (nullStore) Close() error                                   { return nil }

// fileStore is the file backend. Directory layout:
//
//	wal-00000001.log         WAL segments, appended in sequence order
//	checkpoint-00000002.ckpt numbered checkpoints (newest wins)
//
// A checkpoint numbered n covers every update in segments < n and
// possibly a prefix of segment n (the cut is taken after rotating to
// segment n, so appends racing the cut land in n and are replayed — an
// idempotent no-op for the ones the cut already saw). Recovery therefore
// replays segments ≥ n on top of checkpoint n.
type fileStore struct {
	dir string
	opt Options

	// mu guards the append path: the current segment file, its sequence
	// number, the encode scratch, and the per-segment record count.
	mu        sync.Mutex
	seg       *os.File
	segSeq    uint64
	segDirty  bool // written since last fsync
	scratch   []byte
	recovered bool
	closed    bool

	// records[seq] counts live records per retained segment, so pruning
	// can report how many WAL records a checkpoint made obsolete.
	records map[uint64]int

	// ckpts tracks retained checkpoint sequence numbers, ascending.
	ckpts []uint64

	// syncStop ends the FsyncInterval flusher.
	syncStop chan struct{}
	syncDone chan struct{}
}

func openFile(dir string, opt Options) (*fileStore, error) {
	if dir == "" {
		return nil, errors.New("store: file backend needs a directory path")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &fileStore{dir: dir, opt: opt, records: map[uint64]int{}}, nil
}

func (f *fileStore) segPath(seq uint64) string {
	return filepath.Join(f.dir, fmt.Sprintf("wal-%08d.log", seq))
}

func (f *fileStore) ckptPath(seq uint64) string {
	return filepath.Join(f.dir, fmt.Sprintf("checkpoint-%08d.ckpt", seq))
}

// scan lists the numbered files matching prefix/suffix, ascending.
func (f *fileStore) scan(prefix, suffix string) ([]uint64, error) {
	des, err := os.ReadDir(f.dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var seqs []uint64
	for _, de := range des {
		name := de.Name()
		var seq uint64
		if _, err := fmt.Sscanf(name, prefix+"%d"+suffix, &seq); err == nil &&
			name == fmt.Sprintf(prefix+"%08d"+suffix, seq) {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// Recover loads the newest valid checkpoint, replays the WAL tail through
// the handler, truncates at the first torn or corrupt record, and opens a
// fresh segment for subsequent appends. It must be called exactly once.
func (f *fileStore) Recover(h RecoveryHandler) (RecoveryStats, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var stats RecoveryStats
	if f.recovered {
		return stats, errors.New("store: Recover called twice")
	}

	ckpts, err := f.scan("checkpoint-", ".ckpt")
	if err != nil {
		return stats, err
	}
	segs, err := f.scan("wal-", ".log")
	if err != nil {
		return stats, err
	}

	// Newest checkpoint that decodes cleanly wins; corrupt or partial ones
	// (a crash mid-rename cannot produce these, but bit rot or manual
	// damage can) fall back to the one before.
	replayFrom := uint64(0)
	var valid []uint64
	for i := len(ckpts) - 1; i >= 0; i-- {
		seq := ckpts[i]
		st, first, cerr := readCheckpoint(f.ckptPath(seq))
		if cerr != nil {
			if stats.CheckpointSeq == 0 {
				stats.CheckpointsSkipped++
			}
			continue
		}
		valid = append([]uint64{seq}, valid...)
		if stats.CheckpointSeq == 0 {
			if err := h.Restore(st); err != nil {
				return stats, fmt.Errorf("store: restoring checkpoint %d: %w", seq, err)
			}
			stats.CheckpointSeq = seq
			stats.CheckpointVersion = st.Version
			replayFrom = first
		}
	}
	f.ckpts = valid

	// Replay segments ≥ replayFrom in order. The first invalid record ends
	// the log: the segment is truncated there and any later segments are
	// dropped (they may depend on the lost suffix). Segments older than
	// the oldest retained checkpoint's window are obsolete — a crash
	// between checkpoint rename and prune leaves them behind — and
	// segments inside a fallback checkpoint's window are kept (unreplayed,
	// zero live-record count) in case the next recovery needs them.
	oldestNeeded := replayFrom
	if len(valid) > 0 {
		oldestNeeded = valid[0]
	}
	truncatedAt := -1
	for i, seq := range segs {
		if seq < oldestNeeded {
			if err := os.Remove(f.segPath(seq)); err != nil {
				return stats, fmt.Errorf("store: %w", err)
			}
			continue
		}
		if seq < replayFrom {
			f.records[seq] = 0
			continue
		}
		n, u, complete, rerr := f.replaySegment(seq, h)
		stats.Records += n
		stats.Updates += u
		f.records[seq] = n
		if rerr != nil {
			return stats, rerr
		}
		if !complete {
			stats.Truncated = true
			truncatedAt = i
			break
		}
	}
	if truncatedAt >= 0 {
		for _, seq := range segs[truncatedAt+1:] {
			if err := os.Remove(f.segPath(seq)); err != nil {
				return stats, fmt.Errorf("store: %w", err)
			}
		}
	}

	// Appends go to a fresh segment past everything seen, so recovery
	// never appends into a file whose tail it just judged.
	next := replayFrom + 1
	if len(segs) > 0 && segs[len(segs)-1]+1 > next {
		next = segs[len(segs)-1] + 1
	}
	if err := f.openSegment(next); err != nil {
		return stats, err
	}
	f.recovered = true

	if f.opt.Fsync == FsyncInterval {
		f.syncStop = make(chan struct{})
		f.syncDone = make(chan struct{})
		go f.syncLoop()
	}
	return stats, nil
}

// replaySegment feeds every valid record to the handler and reports
// whether the segment was cleanly terminated; a torn or corrupt tail is
// truncated in place.
func (f *fileStore) replaySegment(seq uint64, h RecoveryHandler) (records, updates int, complete bool, err error) {
	path := f.segPath(seq)
	file, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return 0, 0, false, fmt.Errorf("store: %w", err)
	}
	defer file.Close()

	truncate := func(off int64) (int, int, bool, error) {
		if terr := file.Truncate(off); terr != nil {
			return records, updates, false, fmt.Errorf("store: truncating %s: %w", path, terr)
		}
		return records, updates, false, nil
	}

	var hdr [8]byte
	if _, rerr := io.ReadFull(file, hdr[:]); rerr != nil || string(hdr[:]) != walMagic {
		// A header-less or truncated-header segment holds no records;
		// clear it so the file is never misread later.
		return truncate(0)
	}
	off := int64(8)
	var frame [8]byte
	for {
		if _, rerr := io.ReadFull(file, frame[:]); rerr != nil {
			if rerr == io.EOF {
				return records, updates, true, nil
			}
			return truncate(off) // torn frame header
		}
		plen := binary.LittleEndian.Uint32(frame[:4])
		crc := binary.LittleEndian.Uint32(frame[4:])
		if plen > maxRecordBytes {
			return truncate(off)
		}
		payload := make([]byte, plen)
		if _, rerr := io.ReadFull(file, payload); rerr != nil {
			return truncate(off) // torn payload
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return truncate(off) // corrupt payload
		}
		batch, derr := decodeUpdates(payload)
		if derr != nil {
			return truncate(off) // framing valid but content malformed
		}
		if err := h.Replay(batch); err != nil {
			return records, updates, false, fmt.Errorf("store: replaying %s: %w", path, err)
		}
		records++
		updates += len(batch)
		off += 8 + int64(plen)
	}
}

// openSegment starts segment seq for appending (creating it with the
// magic header) and makes it current.
func (f *fileStore) openSegment(seq uint64) error {
	file, err := os.OpenFile(f.segPath(seq), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := file.Write([]byte(walMagic)); err != nil {
		file.Close()
		return fmt.Errorf("store: %w", err)
	}
	f.seg, f.segSeq = file, seq
	f.records[seq] = 0
	return nil
}

// Append writes one batch as a single framed record, flushing per the
// fsync policy. It is the engine's write-ahead Journal: the engine calls
// it before applying the batch, so an error here means nothing was
// applied.
func (f *fileStore) Append(batch []engine.Update) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.appendable(); err != nil {
		return err
	}
	buf := f.scratch[:0]
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // frame placeholder
	buf = appendUpdates(buf, batch)
	payload := buf[8:]
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	f.scratch = buf[:0]
	if _, err := f.seg.Write(buf); err != nil {
		return fmt.Errorf("store: wal append: %w", err)
	}
	f.records[f.segSeq]++
	f.segDirty = true
	if f.opt.Fsync == FsyncAlways {
		return f.syncLocked()
	}
	return nil
}

func (f *fileStore) appendable() error {
	if f.closed {
		return errors.New("store: closed")
	}
	if !f.recovered {
		return errors.New("store: Recover must run before appends")
	}
	return nil
}

// Sync forces the current segment to stable storage.
func (f *fileStore) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed || f.seg == nil {
		return nil
	}
	return f.syncLocked()
}

func (f *fileStore) syncLocked() error {
	if !f.segDirty {
		return nil
	}
	if err := f.seg.Sync(); err != nil {
		return fmt.Errorf("store: wal fsync: %w", err)
	}
	f.segDirty = false
	return nil
}

func (f *fileStore) syncLoop() {
	defer close(f.syncDone)
	t := time.NewTicker(f.opt.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			_ = f.Sync() // next Append or Close surfaces a persistent error
		case <-f.syncStop:
			return
		}
	}
}

// Checkpoint persists a state cut atomically (temp file + fsync +
// rename + dir fsync) and prunes WAL segments and older checkpoints it
// makes obsolete. Ordering is the crux: the WAL is rotated to a fresh
// segment FIRST, and only then is cut() invoked. Updates are journaled
// and applied inside one shard critical section and the cut acquires
// every shard lock, so every record in the closed segments is visible to
// the cut — the closed tail can be pruned with nothing lost. Appends
// racing the cut land in the new segment; the cut may already include
// some of them, and replaying those on recovery is an idempotent no-op
// under max semantics.
func (f *fileStore) Checkpoint(cut func() *engine.State) (CheckpointStats, error) {
	f.mu.Lock()
	if err := f.appendable(); err != nil {
		f.mu.Unlock()
		return CheckpointStats{}, err
	}
	if err := f.rotateLocked(); err != nil {
		f.mu.Unlock()
		return CheckpointStats{}, err
	}
	first := f.segSeq
	f.mu.Unlock()
	// The cut happens outside the append lock: it takes the engine's
	// shard locks, which in-flight appenders hold while waiting for the
	// append lock — cutting under f.mu would deadlock.
	st := cut()

	stats := CheckpointStats{Seq: first, Version: st.Version, Keys: len(st.Keys)}
	for _, ents := range st.Entries {
		stats.RetainedEntries += len(ents)
	}
	data := make([]byte, 0, 16+len(st.Keys)*24)
	data = append(data, ckptMagic...)
	data = binary.LittleEndian.AppendUint64(data, first)
	data = append(data, EncodeState(st)...)
	stats.Bytes = len(data)

	path := f.ckptPath(first)
	tmp, err := os.CreateTemp(f.dir, "checkpoint-*.tmp")
	if err != nil {
		return stats, fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return stats, fmt.Errorf("store: checkpoint write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return stats, fmt.Errorf("store: checkpoint fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return stats, fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return stats, fmt.Errorf("store: checkpoint rename: %w", err)
	}
	if err := syncDir(f.dir); err != nil {
		return stats, err
	}

	f.mu.Lock()
	defer f.mu.Unlock()
	f.ckpts = append(f.ckpts, first)
	dropped, err := f.pruneLocked()
	stats.WALRecordsDropped = dropped
	return stats, err
}

// rotateLocked finishes the current segment (flushing it durable — the
// checkpoint that follows claims everything before it is covered) and
// opens the next one.
func (f *fileStore) rotateLocked() error {
	if err := f.syncLocked(); err != nil {
		return err
	}
	if err := f.seg.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return f.openSegment(f.segSeq + 1)
}

// pruneLocked retains the newest KeepCheckpoints checkpoints and deletes
// WAL segments no retained checkpoint needs, reporting how many WAL
// records were dropped.
func (f *fileStore) pruneLocked() (int, error) {
	for len(f.ckpts) > f.opt.KeepCheckpoints {
		seq := f.ckpts[0]
		if err := os.Remove(f.ckptPath(seq)); err != nil && !os.IsNotExist(err) {
			return 0, fmt.Errorf("store: %w", err)
		}
		f.ckpts = f.ckpts[1:]
	}
	if len(f.ckpts) == 0 {
		return 0, nil
	}
	oldestNeeded := f.ckpts[0]
	dropped := 0
	for seq, n := range f.records {
		if seq >= oldestNeeded || seq == f.segSeq {
			continue
		}
		if err := os.Remove(f.segPath(seq)); err != nil && !os.IsNotExist(err) {
			return dropped, fmt.Errorf("store: %w", err)
		}
		dropped += n
		delete(f.records, seq)
	}
	return dropped, nil
}

// Close flushes the WAL and releases the backend. It does not write a
// final checkpoint — Persistence.Close layers that on top.
func (f *fileStore) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	stop := f.syncStop
	f.mu.Unlock()
	if stop != nil {
		close(stop)
		<-f.syncDone
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.seg == nil {
		return nil
	}
	err := f.syncLocked()
	if cerr := f.seg.Close(); err == nil {
		err = cerr
	}
	f.seg = nil
	return err
}

// readCheckpoint loads and validates one checkpoint file, returning the
// state and the first WAL segment recovery must replay.
func readCheckpoint(path string) (*engine.State, uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	if len(data) < 16 || string(data[:8]) != ckptMagic {
		return nil, 0, fmt.Errorf("store: %s: bad checkpoint magic", path)
	}
	first := binary.LittleEndian.Uint64(data[8:16])
	st, err := DecodeState(data[16:])
	if err != nil {
		return nil, 0, fmt.Errorf("store: %s: %w", path, err)
	}
	return st, first, nil
}

// syncDir fsyncs a directory so a just-renamed file's entry is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: dir fsync: %w", err)
	}
	return nil
}
