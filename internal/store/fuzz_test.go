package store

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/sampling"
)

// FuzzDecodeState hammers the one decoder every state artifact passes
// through — disk checkpoints, /v1/import, /v1/export round-trips and
// the cluster's /v1/sketch-/v1/merge exchange. The contract under
// arbitrary bytes: reject with an error or accept, never panic; and an
// accepted artifact must survive its own re-encode (the decoder may not
// hand the engine a state the encoder cannot represent).
func FuzzDecodeState(f *testing.F) {
	eng, err := engine.New(engine.Config{Instances: 2, K: 4, Shards: 2, Hash: sampling.NewSeedHash(5)})
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := eng.Ingest(i%2, uint64(i%16), 1+float64(i)); err != nil {
			f.Fatal(err)
		}
	}
	valid := EncodeState(eng.DumpState())

	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // truncated payload
	f.Add(valid[:12])           // truncated header
	crcFlip := append([]byte(nil), valid...)
	crcFlip[len(crcFlip)-1] ^= 0x01
	f.Add(crcFlip)
	lenLie := append([]byte(nil), valid...)
	lenLie[8] ^= 0xFF // declared payload length != actual
	f.Add(lenLie)
	f.Add([]byte{})
	f.Add([]byte(stateMagic))

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := DecodeState(data)
		if err != nil {
			return // rejection is the expected outcome for junk
		}
		re := EncodeState(st)
		if _, err := DecodeState(re); err != nil {
			t.Fatalf("re-encode of accepted artifact rejected: %v", err)
		}
	})
}
