package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/engine"
)

// Binary formats. Everything is little-endian and length-prefixed; every
// payload carries a CRC32 (IEEE) so torn writes and bit rot are detected,
// never silently replayed.
//
// WAL segment file:
//
//	[8]  magic "MONESTW1"
//	then records:
//	  [4] payload length N
//	  [4] CRC32(payload)
//	  [N] payload = update batch:
//	        [4] count
//	        count × { [4] instance, [8] key, [8] weight bits }
//
// State artifact (export format and checkpoint body):
//
//	[8]  magic "MONESTS1"
//	[4]  payload length N
//	[4]  CRC32(payload)
//	[N]  payload:
//	       [2] format version (1)
//	       [4] instances  [4] k  [4] shards
//	       [8] engine version  [8] ingests
//	       2 × [8] seed-fingerprint bits
//	       [8] key count, then keys, then masks (keys × maskWords words)
//	       per instance: [8] entry count, then { [8] key, [8] weight bits }
//
// Checkpoint file: [8] magic "MONESTK1", [8] first WAL segment to replay,
// then a full state artifact.
const (
	walMagic   = "MONESTW1"
	stateMagic = "MONESTS1"
	ckptMagic  = "MONESTK1"

	stateFormat = 1

	// maxRecordBytes bounds a WAL record's declared payload length; a
	// longer length is corruption, not a record worth allocating for.
	maxRecordBytes = 64 << 20

	updateBytes = 4 + 8 + 8
)

// appendUpdates encodes a batch as one WAL record payload.
func appendUpdates(dst []byte, batch []engine.Update) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(batch)))
	for _, u := range batch {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(u.Instance))
		dst = binary.LittleEndian.AppendUint64(dst, u.Key)
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(u.Weight))
	}
	return dst
}

// decodeUpdates parses one WAL record payload.
func decodeUpdates(payload []byte) ([]engine.Update, error) {
	if len(payload) < 4 {
		return nil, fmt.Errorf("store: record payload %d bytes, want ≥ 4", len(payload))
	}
	n := binary.LittleEndian.Uint32(payload)
	if uint64(len(payload)) != 4+uint64(n)*updateBytes {
		return nil, fmt.Errorf("store: record declares %d updates in %d payload bytes", n, len(payload))
	}
	batch := make([]engine.Update, n)
	decodeUpdatesIntoSlice(batch, payload[4:])
	return batch, nil
}

// decodeUpdatesIntoSlice fills batch from body (the payload after its
// count prefix); the caller has already validated len(body) ==
// len(batch)*updateBytes.
func decodeUpdatesIntoSlice(batch []engine.Update, body []byte) {
	off := 0
	for i := range batch {
		batch[i] = engine.Update{
			Instance: int(binary.LittleEndian.Uint32(body[off:])),
			Key:      binary.LittleEndian.Uint64(body[off+4:]),
			Weight:   math.Float64frombits(binary.LittleEndian.Uint64(body[off+12:])),
		}
		off += updateBytes
	}
}

// EncodeState serializes a dumped engine state as a self-contained,
// integrity-checked artifact — the /v1/export wire format and the body of
// every checkpoint. Equal states encode to equal bytes.
func EncodeState(st *engine.State) []byte {
	mw := (st.Instances + 63) / 64
	size := 2 + 3*4 + 2*8 + 2*8 + 8 + len(st.Keys)*8 + len(st.Keys)*mw*8
	for _, ents := range st.Entries {
		size += 8 + len(ents)*16
	}
	payload := make([]byte, 0, size)
	payload = binary.LittleEndian.AppendUint16(payload, stateFormat)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(st.Instances))
	payload = binary.LittleEndian.AppendUint32(payload, uint32(st.K))
	payload = binary.LittleEndian.AppendUint32(payload, uint32(st.Shards))
	payload = binary.LittleEndian.AppendUint64(payload, st.Version)
	payload = binary.LittleEndian.AppendUint64(payload, st.Ingests)
	payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(st.SeedCheck[0]))
	payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(st.SeedCheck[1]))
	payload = binary.LittleEndian.AppendUint64(payload, uint64(len(st.Keys)))
	for _, k := range st.Keys {
		payload = binary.LittleEndian.AppendUint64(payload, k)
	}
	for _, m := range st.Masks {
		payload = binary.LittleEndian.AppendUint64(payload, m)
	}
	for _, ents := range st.Entries {
		payload = binary.LittleEndian.AppendUint64(payload, uint64(len(ents)))
		for _, en := range ents {
			payload = binary.LittleEndian.AppendUint64(payload, en.Key)
			payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(en.Weight))
		}
	}

	out := make([]byte, 0, 8+4+4+len(payload))
	out = append(out, stateMagic...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
	return append(out, payload...)
}

// stateReader walks an encoded payload with bounds checking.
type stateReader struct {
	b   []byte
	off int
}

func (r *stateReader) need(n int) error {
	if len(r.b)-r.off < n {
		return fmt.Errorf("store: state artifact truncated at byte %d (need %d more)", r.off, n)
	}
	return nil
}

func (r *stateReader) u16() uint16 {
	v := binary.LittleEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}

func (r *stateReader) u32() uint32 {
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *stateReader) u64() uint64 {
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

// DecodeState parses an EncodeState artifact, verifying magic, length and
// checksum. Structural validity is checked here; semantic compatibility
// (instances, k, seed fingerprint) is the engine's RestoreState/MergeState
// contract.
func DecodeState(data []byte) (*engine.State, error) {
	if len(data) < 16 || string(data[:8]) != stateMagic {
		return nil, fmt.Errorf("store: not a state artifact (bad magic)")
	}
	plen := binary.LittleEndian.Uint32(data[8:])
	if uint64(len(data)) != 16+uint64(plen) {
		return nil, fmt.Errorf("store: state artifact is %d bytes, header declares %d", len(data), 16+plen)
	}
	payload := data[16:]
	if crc := crc32.ChecksumIEEE(payload); crc != binary.LittleEndian.Uint32(data[12:]) {
		return nil, fmt.Errorf("store: state artifact checksum mismatch")
	}
	r := &stateReader{b: payload}
	if err := r.need(2 + 3*4 + 2*8 + 2*8 + 8); err != nil {
		return nil, err
	}
	if f := r.u16(); f != stateFormat {
		return nil, fmt.Errorf("store: state format %d not supported (want %d)", f, stateFormat)
	}
	st := &engine.State{
		Instances: int(r.u32()),
		K:         int(r.u32()),
		Shards:    int(r.u32()),
	}
	st.Version = r.u64()
	st.Ingests = r.u64()
	st.SeedCheck[0] = math.Float64frombits(r.u64())
	st.SeedCheck[1] = math.Float64frombits(r.u64())
	if st.Instances < 1 || st.K < 1 {
		return nil, fmt.Errorf("store: state has instances=%d k=%d", st.Instances, st.K)
	}
	nkeys := r.u64()
	mw := (st.Instances + 63) / 64
	// Bound counts by the payload size before converting to int: a
	// corrupt huge count must fail, not overflow the size arithmetic.
	if nkeys > uint64(len(payload))/8 {
		return nil, fmt.Errorf("store: state declares %d keys in %d payload bytes", nkeys, len(payload))
	}
	if err := r.need(int(nkeys) * (8 + mw*8)); err != nil {
		return nil, err
	}
	st.Keys = make([]uint64, nkeys)
	for i := range st.Keys {
		st.Keys[i] = r.u64()
	}
	st.Masks = make([]uint64, int(nkeys)*mw)
	for i := range st.Masks {
		st.Masks[i] = r.u64()
	}
	st.Entries = make([][]engine.StateEntry, st.Instances)
	for i := range st.Entries {
		if err := r.need(8); err != nil {
			return nil, err
		}
		n := r.u64()
		if n > uint64(len(payload))/16 {
			return nil, fmt.Errorf("store: state declares %d entries in %d payload bytes", n, len(payload))
		}
		if err := r.need(int(n) * 16); err != nil {
			return nil, err
		}
		ents := make([]engine.StateEntry, n)
		for j := range ents {
			ents[j] = engine.StateEntry{Key: r.u64(), Weight: math.Float64frombits(r.u64())}
		}
		st.Entries[i] = ents
	}
	if r.off != len(payload) {
		return nil, fmt.Errorf("store: %d trailing bytes after state payload", len(payload)-r.off)
	}
	return st, nil
}
