package funcs

import (
	"fmt"
	"math"

	"repro/internal/sampling"
)

// RG is the symmetric exponentiated range RG_p(v) = (max(v) − min(v))^p
// over r ≥ 2 entries — the summand of the Lp^p difference (Example 1).
// For two instances under a common threshold, the lower-bound function on
// the data path coincides with RGPlus of the sorted pair, so the Example 4
// closed forms apply there too.
type RG struct {
	// P is the exponent; must be positive.
	P float64
}

// NewRG validates the exponent.
func NewRG(p float64) (RG, error) {
	if p <= 0 || math.IsNaN(p) || math.IsInf(p, 0) {
		return RG{}, fmt.Errorf("funcs: RG exponent %g must be positive and finite", p)
	}
	return RG{P: p}, nil
}

// Name implements F.
func (f RG) Name() string { return fmt.Sprintf("RG%g", f.P) }

// Arity implements F: any tuple length (a single entry has range 0).
func (f RG) Arity() int { return 0 }

// Value implements F.
func (f RG) Value(v []float64) float64 {
	if len(v) < 2 {
		return 0
	}
	mn, mx := v[0], v[0]
	for _, x := range v[1:] {
		mn = math.Min(mn, x)
		mx = math.Max(mx, x)
	}
	return math.Pow(mx-mn, f.P)
}

// Lower implements F. With K the known entries (values mn..mx) and U the
// unknown ones (bounds b_i), the range-minimizing completion places each
// unknown inside [mn, mx] when its bound allows and just below the bound
// otherwise, giving inf = (mx − min(mn, min_{i∈U} b_i))^p; with no known
// entry every completion can collapse to a point, giving 0.
func (f RG) Lower(o sampling.TupleOutcome) float64 {
	mn, mx := math.Inf(1), math.Inf(-1)
	minBound := math.Inf(1)
	for i, known := range o.Known {
		if known {
			mn = math.Min(mn, o.Vals[i])
			mx = math.Max(mx, o.Vals[i])
		} else {
			minBound = math.Min(minBound, o.Bound(i))
		}
	}
	if math.IsInf(mx, -1) {
		return 0
	}
	return math.Pow(math.Max(0, mx-math.Min(mn, minBound)), f.P)
}

// Upper implements F. Each unknown entry is pushed to 0 ("low") or to its
// bound ("high"); only the assignment with the single best high candidate
// and everything else low can realize the supremum.
func (f RG) Upper(o sampling.TupleOutcome) float64 {
	mn, mx := math.Inf(1), math.Inf(-1)
	var unknown []int
	for i, known := range o.Known {
		if known {
			mn = math.Min(mn, o.Vals[i])
			mx = math.Max(mx, o.Vals[i])
		} else {
			unknown = append(unknown, i)
		}
	}
	best := 0.0
	if !math.IsInf(mx, -1) {
		best = mx - mn // all unknowns inside [mn, mx] is never the sup, but covers |U|=0
		if len(unknown) > 0 {
			best = math.Max(best, mx-0) // any unknown low
		}
	}
	for _, j := range unknown {
		bj := o.Bound(j)
		hiMax := bj
		if !math.IsInf(mx, -1) {
			hiMax = math.Max(mx, bj)
		}
		lo := math.Inf(1)
		if !math.IsInf(mn, 1) {
			lo = mn
		}
		lo = math.Min(lo, bj) // the high entry's own value bounds the min
		for _, k := range unknown {
			if k != j {
				lo = 0 // another unknown goes low
				break
			}
		}
		if lo == math.Inf(1) {
			continue // single unknown entry alone: range 0
		}
		best = math.Max(best, hiMax-lo)
	}
	return math.Pow(math.Max(0, best), f.P)
}

// Family implements F: per-unknown sweeps over {0, b/3, 2b/3, b⁻}, capped
// by falling back to extremes when the cross product would explode.
func (f RG) Family(o sampling.TupleOutcome) [][]float64 {
	const maxMembers = 72
	sweep := 3
	unknowns := len(o.Known) - o.NumKnown()
	for unknowns > 0 && pow(sweep+1, unknowns) > maxMembers && sweep > 1 {
		sweep--
	}
	grids := make([][]float64, len(o.Known))
	total := 1
	for i := range o.Known {
		grids[i] = entrySweep(o, i, sweep)
		total *= len(grids[i])
	}
	out := make([][]float64, 0, total)
	idx := make([]int, len(grids))
	for {
		v := make([]float64, len(grids))
		for i, g := range grids {
			v[i] = g[idx[i]]
		}
		out = append(out, v)
		i := 0
		for ; i < len(idx); i++ {
			idx[i]++
			if idx[i] < len(grids[i]) {
				break
			}
			idx[i] = 0
		}
		if i == len(idx) {
			return out
		}
	}
}

func pow(base, exp int) int {
	out := 1
	for i := 0; i < exp; i++ {
		out *= base
		if out > 1<<20 {
			return out
		}
	}
	return out
}

// LStarClosed implements LStarClosedForm for two instances by delegating to
// RGPlus on the sorted pair: on the data path, knowing only the smaller
// entry cannot happen (the larger clears any threshold the smaller does,
// under a common τ), and in the remaining cases the lower-bound functions
// coincide. When only one entry is known it must be treated as the larger.
func (f RG) LStarClosed(o sampling.TupleOutcome) (float64, bool) {
	swapped, ok := sortedPairOutcome(o)
	if !ok {
		return 0, false
	}
	return RGPlus{P: f.P}.LStarClosed(swapped)
}

// UStarClosed implements UStarClosedForm for two instances (see
// LStarClosed for the reduction).
func (f RG) UStarClosed(o sampling.TupleOutcome) (float64, bool) {
	swapped, ok := sortedPairOutcome(o)
	if !ok {
		return 0, false
	}
	return RGPlus{P: f.P}.UStarClosed(swapped)
}

// sortedPairOutcome rewrites a two-entry common-τ outcome so that the
// known/larger entry comes first, making RGPlus's closed forms applicable
// to the symmetric range. It reports false for other shapes.
func sortedPairOutcome(o sampling.TupleOutcome) (sampling.TupleOutcome, bool) {
	if len(o.Known) != 2 {
		return o, false
	}
	if _, ok := commonTau(o); !ok {
		return o, false
	}
	swap := false
	switch {
	case o.Known[0] && o.Known[1]:
		swap = o.Vals[1] > o.Vals[0]
	case o.Known[1]:
		swap = true
	}
	if !swap {
		return o, true
	}
	return sampling.TupleOutcome{
		Scheme: o.Scheme,
		Rho:    o.Rho,
		Known:  []bool{o.Known[1], o.Known[0]},
		Vals:   []float64{o.Vals[1], o.Vals[0]},
	}, true
}

var (
	_ F               = RG{}
	_ LStarClosedForm = RG{}
	_ UStarClosedForm = RG{}
)
