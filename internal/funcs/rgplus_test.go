package funcs

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/numeric"
	"repro/internal/sampling"
)

func mustRGPlus(t *testing.T, p float64) RGPlus {
	t.Helper()
	f, err := NewRGPlus(p)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestRGPlusValue(t *testing.T) {
	tests := []struct {
		p    float64
		v    []float64
		want float64
	}{
		{1, []float64{0.6, 0.2}, 0.4},
		{2, []float64{0.6, 0.2}, 0.16000000000000003},
		{0.5, []float64{0.9, 0.65}, 0.5},
		{1, []float64{0.2, 0.6}, 0}, // increase-only
		{2, []float64{0.5, 0.5}, 0},
	}
	for _, tt := range tests {
		f := mustRGPlus(t, tt.p)
		if got := f.Value(tt.v); !numeric.EqualWithin(got, tt.want, 1e-12) {
			t.Errorf("RG%g+(%v) = %g, want %g", tt.p, tt.v, got, tt.want)
		}
	}
}

func TestRGPlusValidation(t *testing.T) {
	for _, p := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewRGPlus(p); err == nil {
			t.Errorf("NewRGPlus(%g) should fail", p)
		}
	}
}

func TestRGPlusLowerMatchesExample3(t *testing.T) {
	// Example 3: RG_{p+}(u, v) = max(0, v1 − max(v2, u))^p under PPS τ*=1.
	s := sampling.UniformTuple(2)
	for _, p := range []float64{0.5, 1, 2} {
		f := mustRGPlus(t, p)
		for _, v := range [][]float64{{0.6, 0.2}, {0.6, 0}} {
			for _, u := range []float64{0.05, 0.15, 0.2, 0.3, 0.45, 0.6, 0.7, 1} {
				got := f.Lower(s.Sample(v, u))
				want := math.Pow(math.Max(0, boolVal(v[0] >= u)*v[0]-math.Max(v[1], u)), p)
				if !numeric.EqualWithin(got, want, 1e-12) {
					t.Errorf("p=%g v=%v u=%g: Lower = %g, want %g", p, v, u, got, want)
				}
			}
		}
	}
}

func boolVal(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func TestRGPlusLowerUpperBracketValue(t *testing.T) {
	s := sampling.UniformTuple(2)
	f := mustRGPlus(t, 1)
	for _, v := range [][]float64{{0.6, 0.2}, {0.3, 0.7}, {0.9, 0}, {0.1, 0.1}} {
		val := f.Value(v)
		for _, u := range []float64{0.05, 0.25, 0.5, 0.75, 1} {
			o := s.Sample(v, u)
			lo, hi := f.Lower(o), f.Upper(o)
			if lo > val+1e-12 {
				t.Errorf("v=%v u=%g: Lower %g > Value %g", v, u, lo, val)
			}
			if hi < val-1e-12 {
				t.Errorf("v=%v u=%g: Upper %g < Value %g", v, u, hi, val)
			}
		}
	}
}

func TestRGPlusLStarClosedMatchesGeneric(t *testing.T) {
	// Closed form (Example 4) vs formula (31) evaluated through outcome
	// coarsening: they must agree for every p and outcome shape.
	s := sampling.UniformTuple(2)
	for _, p := range []float64{0.5, 1, 2, 1.5} {
		f := mustRGPlus(t, p)
		for _, v := range [][]float64{{0.6, 0.2}, {0.6, 0}, {0.9, 0.5}} {
			for _, u := range []float64{0.05, 0.15, 0.3, 0.55, 0.7, 1} {
				o := s.Sample(v, u)
				closed, ok := f.LStarClosed(o)
				if !ok {
					t.Fatalf("closed form should apply under common τ")
				}
				generic := core.LStarAt(OutcomeLB(f, o), o.Rho)
				if !numeric.EqualWithin(closed, generic, 1e-5) {
					t.Errorf("p=%g v=%v u=%g: closed %g vs generic %g", p, v, u, closed, generic)
				}
			}
		}
	}
}

func TestRGPlusLStarUnbiased(t *testing.T) {
	s := sampling.UniformTuple(2)
	for _, p := range []float64{0.5, 1, 2} {
		f := mustRGPlus(t, p)
		for _, v := range [][]float64{{0.6, 0.2}, {0.6, 0}, {0.9, 0.5}, {0.2, 0.6}} {
			est := func(u float64) float64 { return EstimateLStar(f, s.Sample(v, u)) }
			got, err := numeric.IntegrateToZero(est, 1, numeric.QuadOptions{AbsTol: 1e-10})
			if err != nil {
				t.Fatalf("p=%g v=%v: %v", p, v, err)
			}
			if want := f.Value(v); !numeric.EqualWithin(got, want, 1e-4) {
				t.Errorf("p=%g v=%v: E[L*] = %g, want %g", p, v, got, want)
			}
		}
	}
}

func TestRGPlusUStarClosedUnbiased(t *testing.T) {
	s := sampling.UniformTuple(2)
	for _, p := range []float64{0.5, 1, 2} {
		f := mustRGPlus(t, p)
		for _, v := range [][]float64{{0.6, 0.2}, {0.6, 0}, {0.9, 0.5}} {
			est := func(u float64) float64 { return EstimateUStar(f, s.Sample(v, u), core.Grid{}) }
			got, err := numeric.IntegrateToZero(est, 1, numeric.QuadOptions{AbsTol: 1e-10})
			if err != nil {
				t.Fatalf("p=%g v=%v: %v", p, v, err)
			}
			if want := f.Value(v); !numeric.EqualWithin(got, want, 1e-6) {
				t.Errorf("p=%g v=%v: E[U*] = %g, want %g", p, v, got, want)
			}
		}
	}
}

func TestRGPlusUStarClosedMatchesSolver(t *testing.T) {
	// The generic backward solver (core.UStarAt with the outcome family)
	// must reproduce Example 4's closed forms.
	s := sampling.UniformTuple(2)
	g := core.Grid{N: 600, Breaks: []float64{0.2, 0.6}}
	for _, p := range []float64{1, 2} {
		f := mustRGPlus(t, p)
		for _, tc := range []struct{ v1, v2, u float64 }{
			{0.6, 0.2, 0.4}, {0.6, 0.2, 0.1}, {0.6, 0, 0.3}, {0.6, 0.2, 0.8},
		} {
			o := s.Sample([]float64{tc.v1, tc.v2}, tc.u)
			closed, _ := f.UStarClosed(o)
			solver := core.UStarAt(OutcomeFamily(f, o), o.Rho, g)
			if math.Abs(closed-solver) > 5e-2*(1+closed) {
				t.Errorf("p=%g v=(%g,%g) u=%g: closed %g vs solver %g",
					p, tc.v1, tc.v2, tc.u, closed, solver)
			}
		}
	}
}

func TestRGPlusEstimatorHonesty(t *testing.T) {
	// Vectors (0.6, 0.2) and (0.6, 0.05) share outcomes for u > 0.2; the
	// estimates must coincide there (they are functions of the outcome).
	s := sampling.UniformTuple(2)
	for _, p := range []float64{0.5, 1, 2} {
		f := mustRGPlus(t, p)
		for _, u := range []float64{0.25, 0.4, 0.55, 0.7} {
			oa := s.Sample([]float64{0.6, 0.2}, u)
			ob := s.Sample([]float64{0.6, 0.05}, u)
			if !oa.Same(ob) {
				t.Fatalf("u=%g: outcomes should coincide", u)
			}
			la := EstimateLStar(f, oa)
			lbv := EstimateLStar(f, ob)
			if la != lbv {
				t.Errorf("p=%g u=%g: L* estimates differ across consistent data: %g vs %g", p, u, la, lbv)
			}
			ua := EstimateUStar(f, oa, core.Grid{})
			ub := EstimateUStar(f, ob, core.Grid{})
			if ua != ub {
				t.Errorf("p=%g u=%g: U* estimates differ across consistent data: %g vs %g", p, u, ua, ub)
			}
		}
	}
}

func TestRGPlusRevealSeedAndHT(t *testing.T) {
	s := sampling.UniformTuple(2)
	f := mustRGPlus(t, 1)
	o := s.Sample([]float64{0.6, 0.2}, 0.1)
	if !Revealed(f, o) {
		t.Fatal("both entries sampled: f should be revealed")
	}
	if got := RevealSeed(f, o); math.Abs(got-0.2) > 1e-9 {
		t.Errorf("RevealSeed = %g, want 0.2", got)
	}
	if got := EstimateHT(f, o); math.Abs(got-2) > 1e-6 {
		t.Errorf("HT estimate = %g, want 2", got)
	}
	// Unrevealing outcome: estimate 0.
	if got := EstimateHT(f, s.Sample([]float64{0.6, 0.2}, 0.4)); got != 0 {
		t.Errorf("HT on unrevealing outcome = %g, want 0", got)
	}
}

func TestRGPlusHTUnbiased(t *testing.T) {
	s := sampling.UniformTuple(2)
	f := mustRGPlus(t, 2)
	v := []float64{0.6, 0.2}
	est := func(u float64) float64 { return EstimateHT(f, s.Sample(v, u)) }
	got, err := numeric.IntegrateToZero(est, 1, numeric.QuadOptions{AbsTol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if want := f.Value(v); !numeric.EqualWithin(got, want, 1e-6) {
		t.Errorf("E[HT] = %g, want %g", got, want)
	}
}

func TestRGPlusHTRevealedByUpperBoundSqueeze(t *testing.T) {
	// v = (0.1, 0.5): for u ∈ (0.1, 0.5] entry 2 is known and entry 1 is
	// bounded below 0.5, so f = 0 is revealed without seeing entry 1.
	s := sampling.UniformTuple(2)
	f := mustRGPlus(t, 1)
	o := s.Sample([]float64{0.1, 0.5}, 0.3)
	if !o.Known[1] || o.Known[0] {
		t.Fatal("expected only entry 2 known")
	}
	if !Revealed(f, o) {
		t.Error("f=0 should be revealed by the bound squeeze")
	}
	if got := EstimateHT(f, o); got != 0 {
		t.Errorf("HT = %g, want 0 (value is 0)", got)
	}
}

func TestRGPlusScaledTauClosedForm(t *testing.T) {
	// Common τ ≠ 1: closed form rescales; must agree with the generic path.
	s, err := sampling.NewTupleScheme([]float64{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	f := mustRGPlus(t, 2)
	v := []float64{1.2, 0.4}
	for _, u := range []float64{0.1, 0.3, 0.55} {
		o := s.Sample(v, u)
		closed, ok := f.LStarClosed(o)
		if !ok {
			t.Fatal("common τ should use the closed form")
		}
		generic := core.LStarAt(OutcomeLB(f, o), o.Rho)
		if !numeric.EqualWithin(closed, generic, 1e-5) {
			t.Errorf("u=%g: closed %g vs generic %g", u, closed, generic)
		}
	}
	// Mixed thresholds: closed form must decline.
	s2, err := sampling.NewTupleScheme([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := f.LStarClosed(s2.Sample(v, 0.3)); ok {
		t.Error("mixed τ should not use the closed form")
	}
}
