package funcs

import (
	"repro/internal/core"
	"repro/internal/sampling"
)

// EstimateLStar returns the L* estimate of f on a concrete outcome,
// dispatching to the function's closed form when available and otherwise
// integrating the outcome-derived lower-bound function (formula (31)).
func EstimateLStar(f F, o sampling.TupleOutcome) float64 {
	if cf, ok := f.(LStarClosedForm); ok {
		if est, ok := cf.LStarClosed(o); ok {
			return est
		}
	}
	return core.LStarAt(OutcomeLB(f, o), o.Rho)
}

// EstimateUStar returns the U* estimate of f on a concrete outcome,
// dispatching to the closed form when available and otherwise running the
// backward solver over [Rho, 1] with the outcome-derived family.
func EstimateUStar(f F, o sampling.TupleOutcome, g core.Grid) float64 {
	if cf, ok := f.(UStarClosedForm); ok {
		if est, ok := cf.UStarClosed(o); ok {
			return est
		}
	}
	return core.UStarAt(OutcomeFamily(f, o), o.Rho, g)
}

// EstimateHT returns the Horvitz–Thompson estimate on a concrete outcome:
// f(v)/p when the outcome reveals f(v) (p being the revelation
// probability, recovered from the outcome by bisection), 0 otherwise.
func EstimateHT(f F, o sampling.TupleOutcome) float64 {
	if !Revealed(f, o) {
		return 0
	}
	value := f.Lower(o)
	if value == 0 {
		return 0
	}
	return value / RevealSeed(f, o)
}

// EstimateVOptimal returns the v-optimal oracle estimate for the true data
// vector v — not a legal estimator (it peeks at v), but the per-data
// variance benchmark that defines competitiveness (Theorem 2.1).
func EstimateVOptimal(f F, s sampling.TupleScheme, v []float64, rho float64, g core.Grid) (float64, error) {
	est, _, err := core.VOptimal(DataLB(f, s, v), f.Value(v), g)
	if err != nil {
		return 0, err
	}
	return est(rho), nil
}
