package funcs

import (
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/sampling"
)

// MaxTuple is f(v) = max_i v_i. Under coordinated sampling its lower-bound
// function is a step function (jumps at the inclusion thresholds of the
// known entries), so the L* estimate has the exact form Σ Δ_j/b_j
// (core.LStarStep). It is the workhorse of the closeness-similarity
// application: α(min distance) = max of the per-instance α values.
type MaxTuple struct{}

// Name implements F.
func (MaxTuple) Name() string { return "max" }

// Arity implements F.
func (MaxTuple) Arity() int { return 0 }

// Value implements F.
func (MaxTuple) Value(v []float64) float64 {
	mx := 0.0
	for _, x := range v {
		mx = math.Max(mx, x)
	}
	return mx
}

// Lower implements F: unknown entries may be 0.
func (MaxTuple) Lower(o sampling.TupleOutcome) float64 {
	mx := 0.0
	for i, known := range o.Known {
		if known {
			mx = math.Max(mx, o.Vals[i])
		}
	}
	return mx
}

// Upper implements F: unknown entries approach their bounds.
func (MaxTuple) Upper(o sampling.TupleOutcome) float64 {
	mx := 0.0
	for i := range o.Known {
		mx = math.Max(mx, o.Bound(i))
	}
	return mx
}

// Family implements F: per-unknown extremes (0 or just below the bound);
// max is monotone in every entry, so extremes realize the spread.
func (MaxTuple) Family(o sampling.TupleOutcome) [][]float64 {
	return extremeFamily(o, 64)
}

// Steps returns the outcome's lower-bound function as exact steps: entry i
// (known, value w) is visible down to seed p_i = min(1, w/τ_i), so the
// lower bound jumps wherever the running max over visible entries grows.
func (MaxTuple) Steps(o sampling.TupleOutcome) []core.Step {
	type pv struct{ p, v float64 }
	var entries []pv
	for i, known := range o.Known {
		if known {
			entries = append(entries, pv{
				p: math.Min(1, o.Vals[i]/o.Scheme.Tau[i]),
				v: o.Vals[i],
			})
		}
	}
	// Sweep from u = 1 downward: at u = p the entry becomes visible.
	sort.Slice(entries, func(i, j int) bool { return entries[i].p > entries[j].p })
	var steps []core.Step
	cur := 0.0
	for _, e := range entries {
		if e.v > cur {
			steps = append(steps, core.Step{At: e.p, Delta: e.v - cur})
			cur = e.v
		}
	}
	return steps
}

// LStarClosed implements LStarClosedForm via the exact step formula.
func (f MaxTuple) LStarClosed(o sampling.TupleOutcome) (float64, bool) {
	return core.LStarStep(0, f.Steps(o), o.Rho), true
}

// OrTuple is the logical OR f(v) = 1[∃i: v_i > 0] — the distinct-count
// summand of Example 1's discussion. Its L* estimate is the single-step
// inverse-probability 1/p_max over the sampled entries.
type OrTuple struct{}

// Name implements F.
func (OrTuple) Name() string { return "or" }

// Arity implements F.
func (OrTuple) Arity() int { return 0 }

// Value implements F.
func (OrTuple) Value(v []float64) float64 {
	for _, x := range v {
		if x > 0 {
			return 1
		}
	}
	return 0
}

// Lower implements F: a sampled entry proves a positive value.
func (OrTuple) Lower(o sampling.TupleOutcome) float64 {
	if o.NumKnown() > 0 {
		return 1
	}
	return 0
}

// Upper implements F: an unknown entry can always be positive (bounds are
// positive), and a zero entry is never sampled, so the supremum is 1
// whenever the tuple is nonempty.
func (OrTuple) Upper(o sampling.TupleOutcome) float64 {
	if len(o.Known) == 0 {
		return 0
	}
	return 1
}

// Family implements F.
func (OrTuple) Family(o sampling.TupleOutcome) [][]float64 {
	return extremeFamily(o, 64)
}

// LStarClosed implements LStarClosedForm: one step of height 1 at the
// largest visible inclusion probability.
func (OrTuple) LStarClosed(o sampling.TupleOutcome) (float64, bool) {
	pmax := 0.0
	for i, known := range o.Known {
		if known {
			pmax = math.Max(pmax, math.Min(1, o.Vals[i]/o.Scheme.Tau[i]))
		}
	}
	if pmax == 0 || o.Rho > pmax {
		return 0, true
	}
	return 1 / pmax, true
}

// extremeFamily enumerates consistent vectors with every unknown entry at 0
// or just below its bound, capped at maxMembers by dropping to a single
// all-low + per-entry-high set.
func extremeFamily(o sampling.TupleOutcome, maxMembers int) [][]float64 {
	var unknown []int
	base := make([]float64, len(o.Known))
	for i, known := range o.Known {
		if known {
			base[i] = o.Vals[i]
		} else {
			unknown = append(unknown, i)
		}
	}
	if len(unknown) == 0 {
		return [][]float64{base}
	}
	if pow(2, len(unknown)) > maxMembers {
		// All-low plus one-high-at-a-time: linear-size spanning set.
		out := [][]float64{append([]float64(nil), base...)}
		for _, i := range unknown {
			v := append([]float64(nil), base...)
			v[i] = o.Bound(i) * (1 - 1e-6)
			out = append(out, v)
		}
		return out
	}
	out := make([][]float64, 0, pow(2, len(unknown)))
	for mask := 0; mask < pow(2, len(unknown)); mask++ {
		v := append([]float64(nil), base...)
		for bit, i := range unknown {
			if mask&(1<<bit) != 0 {
				v[i] = o.Bound(i) * (1 - 1e-6)
			}
		}
		out = append(out, v)
	}
	return out
}

var (
	_ F               = MaxTuple{}
	_ LStarClosedForm = MaxTuple{}
	_ F               = OrTuple{}
	_ LStarClosedForm = OrTuple{}
)
