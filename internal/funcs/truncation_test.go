package funcs

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/numeric"
	"repro/internal/sampling"
)

// Weights above the PPS threshold (scaled w/τ > 1) are always sampled; the
// closed forms must truncate their integrals at u = 1. These tests pin the
// extension against the generic outcome-coarsening path and unbiasedness.

func TestRGPlusLStarClosedTruncatedRegime(t *testing.T) {
	s, err := sampling.NewTupleScheme([]float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{1, 2, 1.5} {
		f := mustRGPlus(t, p)
		// Regimes: both above threshold, one above, straddling.
		for _, v := range [][]float64{{1.2, 0.8}, {1.2, 0.3}, {0.8, 0.6}, {2.0, 1.7}} {
			for _, u := range []float64{0.05, 0.3, 0.7, 1} {
				o := s.Sample(v, u)
				closed, ok := f.LStarClosed(o)
				if !ok {
					t.Fatal("closed form should apply under common τ")
				}
				generic := core.LStarAt(OutcomeLB(f, o), o.Rho)
				if !numeric.EqualWithin(closed, generic, 1e-5) {
					t.Errorf("p=%g v=%v u=%g: closed %g vs generic %g", p, v, u, closed, generic)
				}
			}
		}
	}
}

func TestRGPlusLStarUnbiasedTruncatedRegime(t *testing.T) {
	s, err := sampling.NewTupleScheme([]float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{1, 2} {
		f := mustRGPlus(t, p)
		for _, v := range [][]float64{{1.2, 0.8}, {1.2, 0.3}, {2.0, 1.7}, {0.9, 0.2}} {
			est := func(u float64) float64 { return EstimateLStar(f, s.Sample(v, u)) }
			got, err := numeric.IntegrateToZero(est, 1, numeric.QuadOptions{AbsTol: 1e-10})
			if err != nil {
				t.Fatalf("p=%g v=%v: %v", p, v, err)
			}
			if want := f.Value(v); !numeric.EqualWithin(got, want, 1e-4) {
				t.Errorf("p=%g v=%v: E[L*] = %g, want %g", p, v, got, want)
			}
		}
	}
}

func TestRGPlusUStarTruncatedRegime(t *testing.T) {
	s, err := sampling.NewTupleScheme([]float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	f := mustRGPlus(t, 1)
	// p=1 closed constants: w1 on entry-2-unknown outcomes, w1−1 on
	// both-known outcomes (scaled), f when both entries clear the
	// threshold; unbiased in all regimes.
	for _, v := range [][]float64{{1.2, 0.3}, {1.2, 0.8}, {2.0, 1.7}} {
		est := func(u float64) float64 { return EstimateUStar(f, s.Sample(v, u), core.DefaultGrid()) }
		got, err := numeric.IntegrateToZero(est, 1, numeric.QuadOptions{AbsTol: 1e-10})
		if err != nil {
			t.Fatalf("v=%v: %v", v, err)
		}
		if want := f.Value(v); !numeric.EqualWithin(got, want, 1e-4) {
			t.Errorf("v=%v: E[U*] = %g, want %g", v, got, want)
		}
	}
	// Spot-check the constants for v = (1.2, 0.3), τ = 0.5: scaled
	// w1 = 2.4, w2 = 0.6: entry 2 is hidden iff u > 0.6; est = 0.5·2.4 =
	// 1.2 there, and 0.5·1.4 = 0.7 once it is revealed.
	if got := EstimateUStar(f, s.Sample([]float64{1.2, 0.3}, 0.7), core.Grid{}); !numeric.EqualWithin(got, 1.2, 1e-9) {
		t.Errorf("U* on hidden-entry outcome = %g, want 1.2", got)
	}
	if got := EstimateUStar(f, s.Sample([]float64{1.2, 0.3}, 0.2), core.Grid{}); !numeric.EqualWithin(got, 0.7, 1e-9) {
		t.Errorf("U* on revealed outcome = %g, want 0.7", got)
	}
	// Fully-revealed regime pins the estimate to f exactly.
	if got := EstimateUStar(f, s.Sample([]float64{2.0, 1.7}, 0.9), core.Grid{}); !numeric.EqualWithin(got, 0.3, 1e-9) {
		t.Errorf("U* on always-revealed data = %g, want f = 0.3", got)
	}
}

func TestRGPlusUStarClosedTruncatedP2(t *testing.T) {
	// p = 2 above the threshold uses the upper-greedy closed form; it must
	// be unbiased and feasible (mass never exceeds the lower bound of any
	// consistent vector, verified here through unbiasedness for straddling
	// vectors like (1.2, 0.8) whose revealed value caps the mass).
	s, err := sampling.NewTupleScheme([]float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	f := mustRGPlus(t, 2)
	for _, v := range [][]float64{{1.2, 0.3}, {1.2, 0.8}, {0.7, 0.1}, {1.5, 0.45}} {
		if _, ok := f.UStarClosed(s.Sample(v, 0.5)); !ok {
			t.Fatal("expected closed form for p=2")
		}
		est := func(u float64) float64 { return EstimateUStar(f, s.Sample(v, u), core.Grid{}) }
		got, err := numeric.IntegrateToZero(est, 1, numeric.QuadOptions{AbsTol: 1e-10})
		if err != nil {
			t.Fatal(err)
		}
		if want := f.Value(v); !numeric.EqualWithin(got, want, 1e-5) {
			t.Errorf("v=%v: E[U*] = %g, want %g", v, got, want)
		}
	}
}

func TestRGPlusUStarNumericFallbackTruncated(t *testing.T) {
	// p = 1.5 with w1 > 1 > w2 has no closed form; the capped solver must
	// still be (approximately) unbiased there.
	s, err := sampling.NewTupleScheme([]float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	f := mustRGPlus(t, 1.5)
	v := []float64{1.2, 0.3}
	if _, ok := f.UStarClosed(s.Sample(v, 0.5)); ok {
		t.Fatal("expected numeric fallback for p=1.5 above threshold")
	}
	// Each estimate is a full backward solve, so integrate the mean over a
	// fixed trapezoid grid rather than adaptively.
	grid := numeric.Geomspace(1e-4, 1, 80)
	est := func(u float64) float64 { return EstimateUStar(f, s.Sample(v, u), core.Grid{N: 300}) }
	var got float64
	prev := est(grid[0])
	for i := 1; i < len(grid); i++ {
		next := est(grid[i])
		got += 0.5 * (prev + next) * (grid[i] - grid[i-1])
		prev = next
	}
	got += est(grid[0]/2) * grid[0] // small-u remainder
	if want := f.Value(v); math.Abs(got-want) > 0.05*want {
		t.Errorf("E[U*] = %g, want %g", got, want)
	}
}

func TestNarrowPulseQuadrature(t *testing.T) {
	// Regression: the U* pulse on (v2, v1] must not be missed by the
	// evaluation quadrature (it used to vanish when the initial Simpson
	// probes straddled it).
	s := sampling.UniformTuple(2)
	f := mustRGPlus(t, 1)
	v := []float64{0.8, 0.64}
	est := func(u float64) float64 {
		if u <= 0 || u > 1 {
			return 0
		}
		e, _ := f.UStarClosed(s.Sample(v, u))
		return e
	}
	if got := core.MeanOf(est); !numeric.EqualWithin(got, 0.16, 1e-6) {
		t.Errorf("E[U*] = %g, want 0.16", got)
	}
	if got := core.SquareOf(est); !numeric.EqualWithin(got, 0.16, 1e-6) {
		t.Errorf("E[U*²] = %g, want 0.16 (indicator pulse)", got)
	}
}
