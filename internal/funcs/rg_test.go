package funcs

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/numeric"
	"repro/internal/sampling"
)

func mustRG(t *testing.T, p float64) RG {
	t.Helper()
	f, err := NewRG(p)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestRGValue(t *testing.T) {
	f := mustRG(t, 1)
	tests := []struct {
		v    []float64
		want float64
	}{
		{[]float64{0.6, 0.2}, 0.4},
		{[]float64{0.2, 0.6}, 0.4}, // symmetric
		{[]float64{0.95, 0.15, 0.25}, 0.8},
		{[]float64{0.5}, 0},
		{[]float64{0.3, 0.3, 0.3}, 0},
	}
	for _, tt := range tests {
		if got := f.Value(tt.v); !numeric.EqualWithin(got, tt.want, 1e-12) {
			t.Errorf("RG1(%v) = %g, want %g", tt.v, got, tt.want)
		}
	}
	f2 := mustRG(t, 2)
	if got := f2.Value([]float64{0.6, 0.2}); !numeric.EqualWithin(got, 0.16, 1e-12) {
		t.Errorf("RG2 = %g, want 0.16", got)
	}
}

func TestRGLowerThreeInstances(t *testing.T) {
	// v = (0.95, 0.15, 0.25) under PPS τ*=1.
	s := sampling.UniformTuple(3)
	f := mustRG(t, 1)
	tests := []struct {
		u    float64
		want float64
	}{
		{0.10, 0.8},  // all known: 0.95 − 0.15
		{0.20, 0.75}, // 0.95, 0.25 known; entry 2 bounded by 0.20 < 0.25
		{0.30, 0.65}, // only 0.95 known; min bound 0.30
		{0.96, 0},    // nothing known
	}
	for _, tt := range tests {
		got := f.Lower(s.Sample([]float64{0.95, 0.15, 0.25}, tt.u))
		if !numeric.EqualWithin(got, tt.want, 1e-12) {
			t.Errorf("u=%g: Lower = %g, want %g", tt.u, got, tt.want)
		}
	}
}

func TestRGUpperCases(t *testing.T) {
	s := sampling.UniformTuple(2)
	f := mustRG(t, 1)
	// Both known: revealed.
	o := s.Sample([]float64{0.6, 0.2}, 0.1)
	if got := f.Upper(o); !numeric.EqualWithin(got, 0.4, 1e-12) {
		t.Errorf("both known Upper = %g, want 0.4", got)
	}
	// Only larger known at u=0.4: sup range = 0.6 (other entry → 0).
	o = s.Sample([]float64{0.6, 0.2}, 0.4)
	if got := f.Upper(o); !numeric.EqualWithin(got, 0.6, 1e-9) {
		t.Errorf("one known Upper = %g, want 0.6", got)
	}
	// Nothing known at u=0.7: sup range → 0.7 (one high, one low).
	o = s.Sample([]float64{0.6, 0.2}, 0.7)
	if got := f.Upper(o); !numeric.EqualWithin(got, 0.7, 1e-9) {
		t.Errorf("none known Upper = %g, want 0.7", got)
	}
	// Single-entry tuple: range is always 0.
	s1 := sampling.UniformTuple(1)
	if got := f.Upper(s1.Sample([]float64{0.5}, 0.7)); got != 0 {
		t.Errorf("single entry Upper = %g, want 0", got)
	}
}

func TestRGLowerUpperBracketProperty(t *testing.T) {
	s := sampling.UniformTuple(3)
	f := mustRG(t, 2)
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		u := rng.Float64()*0.999 + 0.001
		o := s.Sample(v, u)
		val := f.Value(v)
		return f.Lower(o) <= val+1e-9 && f.Upper(o) >= val-1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRGClosedFormMatchesRGPlusSorted(t *testing.T) {
	s := sampling.UniformTuple(2)
	for _, p := range []float64{1, 2} {
		f := mustRG(t, p)
		// Symmetric: data with the larger value in either slot.
		for _, v := range [][]float64{{0.6, 0.2}, {0.2, 0.6}, {0.8, 0.8}} {
			for _, u := range []float64{0.1, 0.3, 0.5, 0.7, 1} {
				o := s.Sample(v, u)
				closed, ok := f.LStarClosed(o)
				if !ok {
					t.Fatal("closed form should apply")
				}
				generic := core.LStarAt(OutcomeLB(f, o), o.Rho)
				if !numeric.EqualWithin(closed, generic, 1e-5) {
					t.Errorf("p=%g v=%v u=%g: closed %g vs generic %g", p, v, u, closed, generic)
				}
			}
		}
	}
}

func TestRGLStarUnbiasedTwoAndThreeInstances(t *testing.T) {
	for _, tc := range []struct {
		r int
		v []float64
	}{
		{2, []float64{0.6, 0.2}},
		{2, []float64{0.2, 0.6}},
		{3, []float64{0.95, 0.15, 0.25}},
	} {
		s := sampling.UniformTuple(tc.r)
		f := mustRG(t, 1)
		est := func(u float64) float64 { return EstimateLStar(f, s.Sample(tc.v, u)) }
		got, err := numeric.IntegrateToZero(est, 1, numeric.QuadOptions{AbsTol: 1e-9})
		if err != nil {
			t.Fatalf("v=%v: %v", tc.v, err)
		}
		if want := f.Value(tc.v); !numeric.EqualWithin(got, want, 2e-3) {
			t.Errorf("v=%v: E[L*] = %g, want %g", tc.v, got, want)
		}
	}
}

func TestRGFamilyIncludesExtremes(t *testing.T) {
	s := sampling.UniformTuple(2)
	f := mustRG(t, 1)
	o := s.Sample([]float64{0.6, 0.2}, 0.4) // entry 2 unknown
	fam := f.Family(o)
	if len(fam) == 0 {
		t.Fatal("family empty")
	}
	foundLo, foundHi := false, false
	for _, z := range fam {
		if z[0] != 0.6 {
			t.Fatalf("family member %v breaks the known entry", z)
		}
		if z[1] == 0 {
			foundLo = true
		}
		if z[1] > 0.39 {
			foundHi = true
		}
	}
	if !foundLo || !foundHi {
		t.Errorf("family misses extremes: lo=%v hi=%v", foundLo, foundHi)
	}
}

func TestRGFamilyCapRespected(t *testing.T) {
	s := sampling.UniformTuple(6)
	f := mustRG(t, 1)
	o := s.Sample([]float64{0.9, 0.01, 0.01, 0.01, 0.01, 0.01}, 0.5) // 5 unknowns
	fam := f.Family(o)
	if len(fam) == 0 || len(fam) > 72 {
		t.Errorf("family size %d outside (0, 72]", len(fam))
	}
}
