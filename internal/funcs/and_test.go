package funcs

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/numeric"
	"repro/internal/sampling"
	"repro/internal/stats"
)

func TestAndTupleValue(t *testing.T) {
	f := AndTuple{}
	tests := []struct {
		v    []float64
		want float64
	}{
		{[]float64{0.3, 0.7}, 1},
		{[]float64{0.3, 0}, 0},
		{[]float64{0, 0}, 0},
		{nil, 0},
	}
	for _, tt := range tests {
		if got := f.Value(tt.v); got != tt.want {
			t.Errorf("And(%v) = %g, want %g", tt.v, got, tt.want)
		}
	}
}

func TestAndTupleLStarUnbiased(t *testing.T) {
	s := sampling.UniformTuple(2)
	f := AndTuple{}
	for _, v := range [][]float64{{0.3, 0.7}, {0.5, 0.5}, {0.9, 0}, {0, 0}} {
		est := func(u float64) float64 { return EstimateLStar(f, s.Sample(v, u)) }
		got, err := numeric.IntegrateToZero(est, 1, numeric.QuadOptions{AbsTol: 1e-10})
		if err != nil {
			t.Fatalf("v=%v: %v", v, err)
		}
		if want := f.Value(v); !numeric.EqualWithin(got, want, 1e-6) {
			t.Errorf("v=%v: E[L*] = %g, want %g", v, got, want)
		}
	}
}

func TestAndTupleMatchesGenericLStar(t *testing.T) {
	s := sampling.UniformTuple(3)
	f := AndTuple{}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 60; trial++ {
		v := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		u := rng.Float64()*0.999 + 0.001
		o := s.Sample(v, u)
		closed, _ := f.LStarClosed(o)
		generic := core.LStarAt(OutcomeLB(f, o), o.Rho)
		if !numeric.EqualWithin(closed, generic, 1e-6) {
			t.Errorf("v=%v u=%g: closed %g vs generic %g", v, u, closed, generic)
		}
	}
}

func TestAndTupleEstimateOnlyWhenAllKnown(t *testing.T) {
	s := sampling.UniformTuple(2)
	f := AndTuple{}
	// v = (0.3, 0.7): both sampled iff u ≤ 0.3; estimate 1/0.3 there.
	if got, _ := f.LStarClosed(s.Sample([]float64{0.3, 0.7}, 0.2)); !numeric.EqualWithin(got, 1/0.3, 1e-12) {
		t.Errorf("estimate = %g, want %g", got, 1/0.3)
	}
	if got, _ := f.LStarClosed(s.Sample([]float64{0.3, 0.7}, 0.5)); got != 0 {
		t.Errorf("estimate = %g, want 0 (entry 1 hidden)", got)
	}
}

func TestJaccardExact(t *testing.T) {
	tuples := [][]float64{
		{1, 1}, {1, 0}, {0, 1}, {1, 1}, {0, 0},
	}
	// |∩| = 2, |∪| = 4.
	if got := JaccardExact(tuples); got != 0.5 {
		t.Errorf("JaccardExact = %g, want 0.5", got)
	}
	if got := JaccardExact([][]float64{{0, 0}}); got != 0 {
		t.Errorf("empty union Jaccard = %g, want 0", got)
	}
}

func TestJaccardEstimateConsistency(t *testing.T) {
	// Coordinated sampling of 0/1 data: the Jaccard estimate concentrates
	// around the true coefficient as trials average out.
	rng := rand.New(rand.NewSource(9))
	const n = 400
	tuples := make([][]float64, n)
	for k := range tuples {
		a := float64(rng.Intn(2))
		b := a
		if rng.Float64() < 0.3 { // 30% disagreement
			b = 1 - a
		}
		tuples[k] = []float64{a, b}
	}
	exact := JaccardExact(tuples)
	// Sample each item with probability 0.5 via τ* = 2 (weights are 1).
	scheme, err := sampling.NewTupleScheme([]float64{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	var acc stats.Welford
	for trial := 0; trial < 60; trial++ {
		hash := sampling.NewSeedHash(uint64(trial))
		outcomes := make([]sampling.TupleOutcome, n)
		for k, v := range tuples {
			outcomes[k] = scheme.Sample(v, hash.U(uint64(k)))
		}
		acc.Add(JaccardEstimate(outcomes))
	}
	if math.Abs(acc.Mean()-exact) > 4*acc.StdErr()+0.02 {
		t.Errorf("Jaccard estimate mean %g ± %g, exact %g", acc.Mean(), acc.StdErr(), exact)
	}
}
