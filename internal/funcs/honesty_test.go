package funcs

import (
	"math/rand"
	"testing"

	"repro/internal/sampling"
)

// TestEstimatorHonestyAllFunctions: estimates must be functions of the
// outcome alone. For random data vectors and seeds, replace every hidden
// entry with a random consistent value and check the estimates agree.
func TestEstimatorHonestyAllFunctions(t *testing.T) {
	fs := []F{
		mustRGPlus(t, 1), mustRGPlus(t, 2), mustRGPlus(t, 0.5),
		mustRG(t, 1), mustRG(t, 2),
		MaxTuple{}, OrTuple{}, AndTuple{},
	}
	lc, err := NewLinComb([]float64{1, -2, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		r := 2
		var f F = fs[rng.Intn(len(fs))]
		if f.Arity() == 0 && rng.Intn(2) == 0 {
			r = 3
		}
		if rng.Intn(8) == 0 && r == 3 {
			f = lc
		}
		if a := f.Arity(); a != 0 {
			r = a
		}
		s := sampling.UniformTuple(r)
		v := make([]float64, r)
		z := make([]float64, r)
		for i := range v {
			v[i] = rng.Float64()
		}
		u := rng.Float64()*0.999 + 0.001
		o := s.Sample(v, u)
		// z agrees on known entries, is an arbitrary consistent value on
		// unknown ones.
		for i := range z {
			if o.Known[i] {
				z[i] = v[i]
			} else {
				z[i] = o.Bound(i) * rng.Float64() * (1 - 1e-9)
			}
		}
		oz := s.Sample(z, u)
		if !o.Same(oz) {
			t.Fatalf("%s trial %d: consistent vector produced a different outcome", f.Name(), trial)
		}
		if a, b := EstimateLStar(f, o), EstimateLStar(f, oz); a != b {
			t.Errorf("%s: L* estimates differ across consistent data: %g vs %g (v=%v z=%v u=%g)",
				f.Name(), a, b, v, z, u)
		}
		if a, b := EstimateHT(f, o), EstimateHT(f, oz); a != b {
			t.Errorf("%s: HT estimates differ across consistent data: %g vs %g", f.Name(), a, b)
		}
	}
}
