package funcs

import (
	"fmt"
	"math"

	"repro/internal/numeric"
	"repro/internal/sampling"
)

// RGPlus is the asymmetric exponentiated range RG_{p+}(v1, v2) =
// max(0, v1 − v2)^p — the summand of the increase-only difference Lpp+
// (Example 1 of the paper). Closed-form L* and U* estimates follow
// Example 4 and apply whenever all instances share a common PPS threshold.
type RGPlus struct {
	// P is the exponent; must be positive.
	P float64
}

// NewRGPlus validates the exponent.
func NewRGPlus(p float64) (RGPlus, error) {
	if p <= 0 || math.IsNaN(p) || math.IsInf(p, 0) {
		return RGPlus{}, fmt.Errorf("funcs: RG+ exponent %g must be positive and finite", p)
	}
	return RGPlus{P: p}, nil
}

// Name implements F.
func (f RGPlus) Name() string { return fmt.Sprintf("RG%g+", f.P) }

// Arity implements F.
func (f RGPlus) Arity() int { return 2 }

// Value implements F.
func (f RGPlus) Value(v []float64) float64 {
	return math.Pow(math.Max(0, v[0]-v[1]), f.P)
}

// Lower implements F: the minimizing consistent vector sets an unknown
// first entry to 0 and an unknown second entry to its upper bound.
func (f RGPlus) Lower(o sampling.TupleOutcome) float64 {
	minuend := 0.0
	if o.Known[0] {
		minuend = o.Vals[0]
	}
	subtrahend := o.Bound(1) // value when known, threshold bound otherwise
	return math.Pow(math.Max(0, minuend-subtrahend), f.P)
}

// Upper implements F: the maximizing vector pushes an unknown first entry
// to its bound and an unknown second entry to 0. The supremum is approached
// (bounds are exclusive) but not attained.
func (f RGPlus) Upper(o sampling.TupleOutcome) float64 {
	minuend := o.Bound(0)
	subtrahend := 0.0
	if o.Known[1] {
		subtrahend = o.Vals[1]
	}
	return math.Pow(math.Max(0, minuend-subtrahend), f.P)
}

// Family implements F: unknown entries sweep a small grid of their allowed
// interval including both f-extremes. Margins keep discontinuities away
// from the seed (see core.ConsistentFamily).
func (f RGPlus) Family(o sampling.TupleOutcome) [][]float64 {
	const sweep = 6
	firsts := entrySweep(o, 0, sweep)
	seconds := entrySweep(o, 1, sweep)
	out := make([][]float64, 0, len(firsts)*len(seconds))
	for _, a := range firsts {
		for _, b := range seconds {
			out = append(out, []float64{a, b})
		}
	}
	return out
}

// entrySweep returns candidate values for entry i: the known value, or a
// grid over [0, bound) with a relative safety margin.
func entrySweep(o sampling.TupleOutcome, i, sweep int) []float64 {
	if o.Known[i] {
		return []float64{o.Vals[i]}
	}
	bound := o.Bound(i) * (1 - 1e-6)
	vals := make([]float64, 0, sweep+1)
	for j := 0; j <= sweep; j++ {
		vals = append(vals, bound*float64(j)/float64(sweep))
	}
	return vals
}

// commonTau returns the shared PPS threshold when all entries use the same
// one; closed forms rescale by it.
func commonTau(o sampling.TupleOutcome) (float64, bool) {
	tau := o.Scheme.Tau[0]
	for _, t := range o.Scheme.Tau[1:] {
		if t != tau {
			return 0, false
		}
	}
	return tau, true
}

// LStarClosed implements LStarClosedForm (Example 4, extended to scaled
// weights above the threshold): with w1 = v1/τ, a = max(v2/τ, ρ) (entry 2's
// scaled value or its bound), A = min(a, 1), B = min(w1, 1),
//
//	fˆ(L) = τ^p · [ (w1−a)^p/A − ∫_A^B (w1−x)^p/x² dx ],
//
// and 0 whenever entry 1 is unknown or w1 ≤ a. The caps A, B truncate the
// formula-(31) integral at u = 1 for entries whose weight exceeds the PPS
// threshold (w/τ > 1, always sampled) — Example 4's domain [0,1]² never
// exercises that regime, but datasets do. Exact antiderivatives are used
// for p ∈ {1, 2}; other exponents evaluate the definite integral by
// quadrature (still far cheaper and better-conditioned than the generic
// outcome-coarsening path).
func (f RGPlus) LStarClosed(o sampling.TupleOutcome) (float64, bool) {
	tau, ok := commonTau(o)
	if !ok {
		return 0, false
	}
	if !o.Known[0] {
		return 0, true
	}
	w1 := o.Vals[0] / tau
	a := o.Rho
	if o.Known[1] {
		a = math.Max(o.Vals[1]/tau, o.Rho)
	}
	if w1 <= a {
		return 0, true
	}
	lo := math.Min(a, 1)
	hi := math.Min(w1, 1)
	scale := math.Pow(tau, f.P)
	return scale * (math.Pow(w1-a, f.P)/lo - f.tailIntegral(w1, lo, hi)), true
}

// tailIntegral computes ∫_lo^hi (w−x)^p/x² dx (0 when hi ≤ lo).
func (f RGPlus) tailIntegral(w, lo, hi float64) float64 {
	if hi <= lo {
		return 0
	}
	switch f.P {
	case 1:
		return w*(1/lo-1/hi) - math.Log(hi/lo)
	case 2:
		return w*w*(1/lo-1/hi) - 2*w*math.Log(hi/lo) + (hi - lo)
	default:
		return numeric.Integrate(func(x float64) float64 {
			return math.Pow(w-x, f.P) / (x * x)
		}, lo, hi)
	}
}

// UStarClosed implements UStarClosedForm (Example 4): with scaled values,
// on outcomes where only entry 1 is known the estimate is p(w1−ρ)^{p−1}
// for p ≥ 1 and w1^{p−1} for p < 1; when both entries are known it is 0
// for p ≥ 1 and ((w1−w2)^p − w1^{p−1}(w1−w2))/w2 for p < 1; otherwise 0.
//
// Above the threshold (scaled weights exceeding 1, which Example 4's
// domain never reaches) the closed forms change. When both entries are
// always sampled the estimate is pinned to the revealed f. When only
// entry 1 is always sampled, equation (48) with equality can overdraw: its
// accumulated mass violates constraint (7) for consistent vectors whose
// second entry is large, so no estimator attains the upper range extreme
// everywhere. The feasible upper-greedy extension rides the (7) boundary
// (M(x) ≤ f^(v)(x)) and coincides with U* wherever U* exists; solving the
// defining equation with that cap gives, for scaled w1 > 1 ≥ w2 and seeds
// where entry 2 is hidden:
//
//	p = 1:          w1                               (never hits the cap)
//	p = 2, w1 < 2:  4(w1−1)  on ρ > 2−w1,  2(w1−ρ)  on ρ ≤ 2−w1 (cap ride)
//	p = 2, w1 ≥ 2:  w1²                              (never hits the cap)
//
// with the both-entries-known remainder spread uniformly. Exponents other
// than 1 and 2 fall back to the numeric solver (ok = false).
func (f RGPlus) UStarClosed(o sampling.TupleOutcome) (float64, bool) {
	tau, ok := commonTau(o)
	if !ok {
		return 0, false
	}
	if !o.Known[0] {
		return 0, true
	}
	w1 := o.Vals[0] / tau
	scale := math.Pow(tau, f.P)
	if o.Known[1] && o.Vals[1]/tau >= 1 {
		// Both entries always sampled: every outcome reveals f.
		return scale * math.Pow(math.Max(0, w1-o.Vals[1]/tau), f.P), true
	}
	if w1 > 1 {
		switch f.P {
		case 1:
			if !o.Known[1] {
				return scale * w1, true
			}
			return scale * (w1 - 1), true
		case 2:
			return scale * f.uStarTruncatedP2(o, w1), true
		default:
			return 0, false // no closed form; use the numeric solver
		}
	}
	if !o.Known[1] {
		if w1 <= o.Rho {
			return 0, true
		}
		if f.P >= 1 {
			return scale * f.P * math.Pow(w1-o.Rho, f.P-1), true
		}
		return scale * math.Pow(w1, f.P-1), true
	}
	w2 := o.Vals[1] / tau
	if w1 <= w2 || f.P >= 1 {
		return 0, true
	}
	return scale * (math.Pow(w1-w2, f.P) - math.Pow(w1, f.P-1)*(w1-w2)) / w2, true
}

// uStarTruncatedP2 evaluates the upper-greedy U* extension for p = 2 with
// scaled w1 > 1 (see UStarClosed). Scaled values throughout; the caller
// multiplies by τ².
func (f RGPlus) uStarTruncatedP2(o sampling.TupleOutcome, w1 float64) float64 {
	rho0 := math.Max(0, 2-w1) // cap-ride boundary (0 when w1 ≥ 2)
	// Mass committed while entry 2 was hidden, down to seed x:
	// w1 ≥ 2: M(x) = w1²(1−x);
	// w1 < 2: M(x) = 4(w1−1)(1−x) for x ≥ ρ0, and the cap (w1−x)² below.
	mass := func(x float64) float64 {
		if w1 >= 2 {
			return w1 * w1 * (1 - x)
		}
		if x >= rho0 {
			return 4 * (w1 - 1) * (1 - x)
		}
		return (w1 - x) * (w1 - x)
	}
	if !o.Known[1] {
		if w1 >= 2 {
			return w1 * w1
		}
		if o.Rho > rho0 {
			return 4 * (w1 - 1)
		}
		return 2 * (w1 - o.Rho) // riding the (7) boundary
	}
	w2 := o.Vals[1] / tauOf(o)
	val := math.Max(0, w1-w2)
	rem := val*val - mass(w2)
	if rem <= 0 || w2 <= 0 {
		return 0
	}
	return rem / w2
}

func tauOf(o sampling.TupleOutcome) float64 {
	return o.Scheme.Tau[0]
}

var (
	_ F               = RGPlus{}
	_ LStarClosedForm = RGPlus{}
	_ UStarClosedForm = RGPlus{}
)
