package funcs

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/numeric"
	"repro/internal/sampling"
)

func TestMaxTupleValueLowerUpper(t *testing.T) {
	s := sampling.UniformTuple(3)
	f := MaxTuple{}
	v := []float64{0.3, 0.7, 0.1}
	if got := f.Value(v); got != 0.7 {
		t.Fatalf("Value = %g, want 0.7", got)
	}
	o := s.Sample(v, 0.5) // only 0.7 known
	if got := f.Lower(o); got != 0.7 {
		t.Errorf("Lower = %g, want 0.7", got)
	}
	if got := f.Upper(o); got != 0.7 {
		t.Errorf("Upper = %g, want 0.7 (bounds 0.5 below known max)", got)
	}
	o = s.Sample(v, 0.8) // nothing known
	if got := f.Lower(o); got != 0 {
		t.Errorf("Lower = %g, want 0", got)
	}
	if got := f.Upper(o); got != 0.8 {
		t.Errorf("Upper = %g, want 0.8", got)
	}
}

func TestMaxTupleSteps(t *testing.T) {
	// v = (0.3, 0.7, 0.1) at seed 0.05 (all known): lower bound steps are
	// 0.7 at u=0.7 (entry 2 appears first and dominates): entries 1 and 3
	// never raise the max.
	s := sampling.UniformTuple(3)
	f := MaxTuple{}
	steps := f.Steps(s.Sample([]float64{0.3, 0.7, 0.1}, 0.05))
	if len(steps) != 1 || steps[0].At != 0.7 || steps[0].Delta != 0.7 {
		t.Fatalf("steps = %+v, want single step (0.7, 0.7)", steps)
	}
	// Increasing from the right: (0.2, 0.5): max jumps 0→0.5 at 0.5; 0.2
	// never beats it. With order (0.5, 0.2) same.
	steps = f.Steps(s.Sample([]float64{0.2, 0.5, 0}, 0.05))
	if len(steps) != 1 || steps[0].At != 0.5 {
		t.Fatalf("steps = %+v, want single step at 0.5", steps)
	}
	// Distinct scheme thresholds shift visibility: τ = (1, 4): entry 2 of
	// (0.3, 0.8) is visible only for u ≤ 0.2, entry 1 for u ≤ 0.3:
	// steps: +0.3 at 0.3, then +0.5 at 0.2.
	s2, err := sampling.NewTupleScheme([]float64{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	steps = f.Steps(s2.Sample([]float64{0.3, 0.8}, 0.05))
	if len(steps) != 2 {
		t.Fatalf("steps = %+v, want 2 steps", steps)
	}
	if steps[0].At != 0.3 || steps[0].Delta != 0.3 {
		t.Errorf("first step = %+v, want (0.3, 0.3)", steps[0])
	}
	if steps[1].At != 0.2 || !numeric.EqualWithin(steps[1].Delta, 0.5, 1e-12) {
		t.Errorf("second step = %+v, want (0.2, 0.5)", steps[1])
	}
}

func TestMaxTupleLStarClosedMatchesGeneric(t *testing.T) {
	s := sampling.UniformTuple(3)
	f := MaxTuple{}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		v := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		u := rng.Float64()*0.999 + 0.001
		o := s.Sample(v, u)
		closed, _ := f.LStarClosed(o)
		generic := core.LStarAt(OutcomeLB(f, o), o.Rho)
		if !numeric.EqualWithin(closed, generic, 1e-5) {
			t.Errorf("v=%v u=%g: closed %g vs generic %g", v, u, closed, generic)
		}
	}
}

func TestMaxTupleLStarUnbiased(t *testing.T) {
	s := sampling.UniformTuple(2)
	f := MaxTuple{}
	for _, v := range [][]float64{{0.3, 0.7}, {0.5, 0.5}, {0.9, 0}, {0, 0}} {
		est := func(u float64) float64 { return EstimateLStar(f, s.Sample(v, u)) }
		got, err := numeric.IntegrateToZero(est, 1, numeric.QuadOptions{AbsTol: 1e-10})
		if err != nil {
			t.Fatalf("v=%v: %v", v, err)
		}
		if want := f.Value(v); !numeric.EqualWithin(got, want, 1e-6) {
			t.Errorf("v=%v: E[L*] = %g, want %g", v, got, want)
		}
	}
}

func TestOrTupleValueAndEstimate(t *testing.T) {
	s := sampling.UniformTuple(2)
	f := OrTuple{}
	if f.Value([]float64{0, 0}) != 0 || f.Value([]float64{0, 0.1}) != 1 {
		t.Fatal("OrTuple.Value wrong")
	}
	// v = (0.3, 0.7): sampled for u ≤ 0.7; estimate 1/0.7 there.
	v := []float64{0.3, 0.7}
	o := s.Sample(v, 0.5)
	if got, _ := f.LStarClosed(o); !numeric.EqualWithin(got, 1/0.7, 1e-12) {
		t.Errorf("estimate = %g, want %g", got, 1/0.7)
	}
	if got, _ := f.LStarClosed(s.Sample(v, 0.8)); got != 0 {
		t.Errorf("estimate = %g, want 0 (nothing sampled)", got)
	}
	// u ≤ 0.3: both known; pmax still 0.7.
	if got, _ := f.LStarClosed(s.Sample(v, 0.2)); !numeric.EqualWithin(got, 1/0.7, 1e-12) {
		t.Errorf("estimate = %g, want %g", got, 1/0.7)
	}
}

func TestOrTupleLStarUnbiased(t *testing.T) {
	s := sampling.UniformTuple(3)
	f := OrTuple{}
	for _, v := range [][]float64{{0.3, 0.7, 0.1}, {0.2, 0, 0}, {0, 0, 0}} {
		est := func(u float64) float64 { return EstimateLStar(f, s.Sample(v, u)) }
		got, err := numeric.IntegrateToZero(est, 1, numeric.QuadOptions{AbsTol: 1e-10})
		if err != nil {
			t.Fatalf("v=%v: %v", v, err)
		}
		if want := f.Value(v); !numeric.EqualWithin(got, want, 1e-6) {
			t.Errorf("v=%v: E[L*] = %g, want %g", v, got, want)
		}
	}
}

func TestOrTupleMatchesGenericLStar(t *testing.T) {
	s := sampling.UniformTuple(2)
	f := OrTuple{}
	for _, u := range []float64{0.1, 0.4, 0.6, 0.9} {
		o := s.Sample([]float64{0.3, 0.7}, u)
		closed, _ := f.LStarClosed(o)
		generic := core.LStarAt(OutcomeLB(f, o), o.Rho)
		if !numeric.EqualWithin(closed, generic, 1e-6) {
			t.Errorf("u=%g: closed %g vs generic %g", u, closed, generic)
		}
	}
}

func TestLinCombExample1G(t *testing.T) {
	// G({b, d}) from Example 1: |0 − 2·0.44 + 0|² + |0.7 − 2·0.8 + 0.1|².
	// The paper prints "≈ 1.18", but 0.88² + 0.8² = 0.7744 + 0.64 = 1.4144;
	// the printed constant is an arithmetic slip (recorded in
	// EXPERIMENTS.md). We assert the true value of the defined expression.
	g, err := NewLinComb([]float64{1, -2, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	b := g.Value([]float64{0, 0.44, 0})
	d := g.Value([]float64{0.70, 0.80, 0.10})
	if !numeric.EqualWithin(b+d, 1.4144, 1e-9) {
		t.Errorf("G({b,d}) = %g, want 1.4144", b+d)
	}
}

func TestLinCombBoundsBracketValue(t *testing.T) {
	s := sampling.UniformTuple(3)
	g, err := NewLinComb([]float64{1, -2, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		v := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		u := rng.Float64()*0.999 + 0.001
		o := s.Sample(v, u)
		val := g.Value(v)
		if g.Lower(o) > val+1e-9 || g.Upper(o) < val-1e-9 {
			t.Fatalf("v=%v u=%g: bounds [%g, %g] miss value %g", v, u, g.Lower(o), g.Upper(o), val)
		}
	}
}

func TestLinCombLStarUnbiased(t *testing.T) {
	s := sampling.UniformTuple(3)
	g, err := NewLinComb([]float64{1, -2, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range [][]float64{{0.7, 0.8, 0.1}, {0.5, 0.1, 0.3}} {
		est := func(u float64) float64 { return EstimateLStar(g, s.Sample(v, u)) }
		got, err := numeric.IntegrateToZero(est, 1, numeric.QuadOptions{AbsTol: 1e-9})
		if err != nil {
			t.Fatalf("v=%v: %v", v, err)
		}
		if want := g.Value(v); math.Abs(got-want) > 2e-3*(1+want) {
			t.Errorf("v=%v: E[L*] = %g, want %g", v, got, want)
		}
	}
}

func TestLinCombValidation(t *testing.T) {
	if _, err := NewLinComb(nil, 1); err == nil {
		t.Error("empty coefficients should fail")
	}
	if _, err := NewLinComb([]float64{1}, 0); err == nil {
		t.Error("zero exponent should fail")
	}
}

func TestExtremeFamilyLinearFallback(t *testing.T) {
	s := sampling.UniformTuple(10)
	v := make([]float64, 10)
	o := s.Sample(v, 0.5) // all unknown
	fam := extremeFamily(o, 64)
	if len(fam) != 11 { // all-low + one-high per entry
		t.Errorf("fallback family size = %d, want 11", len(fam))
	}
}
