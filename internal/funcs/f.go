package funcs

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/sampling"
)

// F is a nonnegative item function together with the outcome-level
// machinery the estimators consume. Implementations must derive Lower,
// Upper and Family from the outcome alone (never from hidden data), which
// keeps every estimator built on them honest.
type F interface {
	// Name identifies the function in reports (e.g. "RG1+").
	Name() string
	// Arity returns the required tuple length, or 0 for any length ≥ 1.
	Arity() int
	// Value evaluates f on a full data vector.
	Value(v []float64) float64
	// Lower returns inf f over data vectors consistent with the outcome —
	// the lower-bound value f^(v)(ρ) at the outcome's own seed.
	Lower(o sampling.TupleOutcome) float64
	// Upper returns sup f over data vectors consistent with the outcome
	// (the supremum may be approached, not attained). Upper == Lower means
	// the outcome reveals f exactly.
	Upper(o sampling.TupleOutcome) float64
	// Family returns representative data vectors consistent with the
	// outcome, spanning the spread of lower-bound functions over S*; it
	// must include a vector attaining Lower and vectors approaching Upper.
	// Used by the U* solver and the λU range bound.
	Family(o sampling.TupleOutcome) [][]float64
}

// LStarClosedForm is implemented by functions with an exact L* expression
// (Example 4 of the paper); Estimate dispatches to it when available.
type LStarClosedForm interface {
	LStarClosed(o sampling.TupleOutcome) (float64, bool)
}

// UStarClosedForm is implemented by functions with an exact U* expression.
type UStarClosedForm interface {
	UStarClosed(o sampling.TupleOutcome) (float64, bool)
}

// LowerAt returns f^(v)(u) for u ≥ o.Rho, derived from the outcome alone by
// coarsening: the information at seed u is exactly o.At(u).
func LowerAt(f F, o sampling.TupleOutcome, u float64) float64 {
	if u >= 1 {
		u = 1
	}
	return f.Lower(o.At(u))
}

// OutcomeLB adapts a concrete outcome to the core.LowerBoundFunc the
// estimators integrate: u ↦ f^(v)(u), defined for u ≥ o.Rho. (Arguments
// below o.Rho are clamped to o.Rho; estimators never use them.)
func OutcomeLB(f F, o sampling.TupleOutcome) core.LowerBoundFunc {
	return func(u float64) float64 {
		if u < o.Rho {
			u = o.Rho
		}
		return LowerAt(f, o, u)
	}
}

// DataLB returns the full lower-bound function of data vector v under
// scheme s — the evaluation-side view used to study estimator distributions
// (variance, competitiveness) rather than to estimate.
func DataLB(f F, s sampling.TupleScheme, v []float64) core.LowerBoundFunc {
	checkArity(f, len(v))
	return func(u float64) float64 {
		if u <= 0 {
			return f.Value(v)
		}
		if u > 1 {
			u = 1
		}
		return f.Lower(s.Sample(v, u))
	}
}

// DataFamily returns the core.ConsistentFamily of data vector v under
// scheme s: at each seed it samples the outcome and converts the function's
// representative vectors into their lower-bound functions.
func DataFamily(f F, s sampling.TupleScheme, v []float64) core.ConsistentFamily {
	checkArity(f, len(v))
	return func(rho float64) []core.LowerBoundFunc {
		o := s.Sample(v, rho)
		reps := f.Family(o)
		lbs := make([]core.LowerBoundFunc, 0, len(reps))
		for _, z := range reps {
			lbs = append(lbs, DataLB(f, s, z))
		}
		return lbs
	}
}

// OutcomeFamily is the honest counterpart of DataFamily for a concrete
// outcome: the family at seed u ≥ o.Rho is derived from o.At(u). Used by
// the per-outcome U* estimate.
func OutcomeFamily(f F, o sampling.TupleOutcome) core.ConsistentFamily {
	return func(rho float64) []core.LowerBoundFunc {
		if rho < o.Rho {
			rho = o.Rho
		}
		co := o.At(rho)
		reps := f.Family(co)
		lbs := make([]core.LowerBoundFunc, 0, len(reps))
		for _, z := range reps {
			lbs = append(lbs, DataLB(f, co.Scheme, z))
		}
		return lbs
	}
}

// Revealed reports whether the outcome determines f exactly.
func Revealed(f F, o sampling.TupleOutcome) bool {
	lo, hi := f.Lower(o), f.Upper(o)
	return hi-lo <= 1e-12*(1+math.Abs(hi))
}

// RevealSeed returns the supremum seed at which the outcome (or a coarser
// version of it) still reveals f — the Horvitz–Thompson inclusion
// probability. It returns 0 when the outcome does not reveal f at all.
// Revelation is monotone (coarser outcomes reveal no more), so bisection
// applies; the result is honest because only o.At(u) is consulted.
func RevealSeed(f F, o sampling.TupleOutcome) float64 {
	if !Revealed(f, o) {
		return 0
	}
	if Revealed(f, o.At(1)) {
		return 1
	}
	lo, hi := o.Rho, 1.0 // revealed at lo, not at hi
	for i := 0; i < 60; i++ {
		mid := 0.5 * (lo + hi)
		if Revealed(f, o.At(mid)) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

func checkArity(f F, n int) {
	if a := f.Arity(); a != 0 && a != n {
		panic(fmt.Sprintf("funcs: %s expects %d entries, got %d", f.Name(), a, n))
	}
}
