package funcs

import (
	"math"

	"repro/internal/sampling"
)

// AndTuple is the logical AND f(v) = 1[∀i: v_i > 0] — together with
// OrTuple it expresses intersection/union cardinalities and hence the
// Jaccard coefficient of 0/1 data, the application of the paper's
// references [3, 4] (MinHash-style coordinated samples).
type AndTuple struct{}

// Name implements F.
func (AndTuple) Name() string { return "and" }

// Arity implements F.
func (AndTuple) Arity() int { return 0 }

// Value implements F.
func (AndTuple) Value(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	for _, x := range v {
		if x <= 0 {
			return 0
		}
	}
	return 1
}

// Lower implements F: all entries must be provably positive, i.e. sampled
// (a zero entry is never sampled, so an unsampled entry might be zero).
func (AndTuple) Lower(o sampling.TupleOutcome) float64 {
	if len(o.Known) == 0 {
		return 0
	}
	for _, known := range o.Known {
		if !known {
			return 0
		}
	}
	return 1
}

// Upper implements F: unknown entries can always be positive (their bounds
// are positive), so the supremum is 1 whenever the tuple is nonempty.
func (AndTuple) Upper(o sampling.TupleOutcome) float64 {
	if len(o.Known) == 0 {
		return 0
	}
	return 1
}

// Family implements F.
func (AndTuple) Family(o sampling.TupleOutcome) [][]float64 {
	return extremeFamily(o, 64)
}

// LStarClosed implements LStarClosedForm. The lower-bound function has a
// single step of height 1 at the seed below which every entry is visible
// (the minimum of the visible inclusion probabilities), so the L* estimate
// is the inverse of that probability — computable only when all entries
// are known, which is exactly when the step is visible.
func (AndTuple) LStarClosed(o sampling.TupleOutcome) (float64, bool) {
	pmin := math.Inf(1)
	for i, known := range o.Known {
		if !known {
			return 0, true
		}
		pmin = math.Min(pmin, math.Min(1, o.Vals[i]/o.Scheme.Tau[i]))
	}
	if math.IsInf(pmin, 1) || o.Rho > pmin {
		return 0, true
	}
	return 1 / pmin, true
}

var (
	_ F               = AndTuple{}
	_ LStarClosedForm = AndTuple{}
)

// JaccardEstimate estimates the Jaccard coefficient |∩|/|∪| of the positive
// supports of the instances from a coordinated sample: the ratio of the L*
// sum estimates of AND and OR over the items. Both sums are unbiased; the
// ratio is the standard consistent plug-in.
func JaccardEstimate(outcomes []sampling.TupleOutcome) float64 {
	var and, or float64
	fa, fo := AndTuple{}, OrTuple{}
	for _, o := range outcomes {
		a, _ := fa.LStarClosed(o)
		u, _ := fo.LStarClosed(o)
		and += a
		or += u
	}
	if or == 0 {
		return 0
	}
	return and / or
}

// JaccardExact computes the true Jaccard coefficient of the tuples'
// positive supports.
func JaccardExact(tuples [][]float64) float64 {
	var and, or float64
	fa, fo := AndTuple{}, OrTuple{}
	for _, v := range tuples {
		and += fa.Value(v)
		or += fo.Value(v)
	}
	if or == 0 {
		return 0
	}
	return and / or
}
