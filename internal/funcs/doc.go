// Package funcs implements the item functions the paper estimates over
// coordinated tuples, together with the per-outcome machinery estimators
// need: exact values, lower-bound functions (inf of f over data vectors
// consistent with an outcome), consistent families for the U* solver, and
// the closed-form L*/U* expressions the paper derives for the exponentiated
// range (Example 4).
//
// The functions mirror Example 1:
//
//   - RGPlus (RG_{p+}): max(0, v1−v2)^p — asymmetric exponentiated range,
//     the summand of Lpp+ (increase-only change).
//   - RG (RG_p): (max(v)−min(v))^p over r ≥ 2 entries — the summand of the
//     Lp^p difference.
//   - MaxTuple / OrTuple: max(v) and 1[∃ v_i > 0] — building blocks of the
//     sketch-similarity application (Section 7) and distinct counts.
//   - LinComb: |Σ c_i v_i|^p — the "arbitrary" G query of Example 1.
//
// Everything consumes sampling.TupleOutcome, the per-item view of
// coordinated PPS sampling.
package funcs
