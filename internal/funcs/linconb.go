package funcs

import (
	"fmt"
	"math"

	"repro/internal/sampling"
)

// LinComb is f(v) = |Σ c_i v_i|^p — the shape of Example 1's "arbitrary"
// query G (c = (1, −2, 1), p = 2). Lower and upper bounds follow from
// interval arithmetic over the box of consistent vectors.
type LinComb struct {
	// C holds the coefficients; fixes the arity.
	C []float64
	// P is the exponent; must be positive.
	P float64
}

// NewLinComb validates coefficients and exponent.
func NewLinComb(c []float64, p float64) (LinComb, error) {
	if len(c) == 0 {
		return LinComb{}, fmt.Errorf("funcs: LinComb needs coefficients")
	}
	if p <= 0 || math.IsNaN(p) || math.IsInf(p, 0) {
		return LinComb{}, fmt.Errorf("funcs: LinComb exponent %g must be positive and finite", p)
	}
	cc := make([]float64, len(c))
	copy(cc, c)
	return LinComb{C: cc, P: p}, nil
}

// Name implements F.
func (f LinComb) Name() string { return fmt.Sprintf("lincomb%g", f.P) }

// Arity implements F.
func (f LinComb) Arity() int { return len(f.C) }

// Value implements F.
func (f LinComb) Value(v []float64) float64 {
	var t float64
	for i, x := range v {
		t += f.C[i] * x
	}
	return math.Pow(math.Abs(t), f.P)
}

// interval returns the range [lo, hi] of Σ c_i z_i over consistent z.
func (f LinComb) interval(o sampling.TupleOutcome) (lo, hi float64) {
	for i, known := range o.Known {
		if known {
			lo += f.C[i] * o.Vals[i]
			hi += f.C[i] * o.Vals[i]
			continue
		}
		term := f.C[i] * o.Bound(i)
		lo += math.Min(0, term)
		hi += math.Max(0, term)
	}
	return lo, hi
}

// Lower implements F: the distance of the interval from 0, exponentiated.
func (f LinComb) Lower(o sampling.TupleOutcome) float64 {
	lo, hi := f.interval(o)
	return math.Pow(math.Max(0, math.Max(lo, -hi)), f.P)
}

// Upper implements F: the farthest interval endpoint from 0.
func (f LinComb) Upper(o sampling.TupleOutcome) float64 {
	lo, hi := f.interval(o)
	return math.Pow(math.Max(math.Abs(lo), math.Abs(hi)), f.P)
}

// Family implements F: |Σc_i z_i| is componentwise monotone toward one of
// the box corners, so the extreme corners span the lower-bound spread.
func (f LinComb) Family(o sampling.TupleOutcome) [][]float64 {
	return extremeFamily(o, 64)
}

var _ F = LinComb{}
