package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := Table{ID: "T1", Title: "demo", Cols: []string{"a", "bbbb"}}
	tbl.AddRow("1", "2")
	tbl.AddRow("333", "4")
	tbl.Notes = append(tbl.Notes, "a note")
	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"== T1: demo ==", "333", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTableAddRowPanicsOnArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for wrong cell count")
		}
	}()
	tbl := Table{Cols: []string{"a", "b"}}
	tbl.AddRow("only one")
}

func TestTableCSV(t *testing.T) {
	tbl := Table{ID: "T", Title: "t", Cols: []string{"x", "y"}}
	tbl.AddRow("1", "2")
	var b strings.Builder
	if err := tbl.CSV(&b); err != nil {
		t.Fatal(err)
	}
	if got, want := b.String(), "x,y\n1,2\n"; got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestFigureCSV(t *testing.T) {
	fig := Figure{
		ID: "F", Title: "f", XLabel: "u", YLabel: "value",
		Curves: []Series{{Name: "LB", X: []float64{0.1, 0.2}, Y: []float64{1, 2}}},
	}
	var b strings.Builder
	if err := fig.CSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "series,u,value\nLB,0.1,1\nLB,0.2,2\n"
	if b.String() != want {
		t.Errorf("CSV = %q, want %q", b.String(), want)
	}
}

func TestFigureCSVLengthMismatch(t *testing.T) {
	fig := Figure{Curves: []Series{{Name: "bad", X: []float64{1}, Y: nil}}}
	var b strings.Builder
	if err := fig.CSV(&b); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestFmt(t *testing.T) {
	if got := Fmt(0.123456); got != "0.1235" {
		t.Errorf("Fmt = %q", got)
	}
}
