// Package report renders the experiment harness's tables and figure series
// as aligned text and CSV — the formats cmd/mesrun and cmd/mesfig emit.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of cells with optional footnotes.
type Table struct {
	// ID is the experiment identifier (e.g. "F3", "LP").
	ID string
	// Title describes the table.
	Title string
	// Cols holds the column headers.
	Cols []string
	// Rows holds the cells (each row sized like Cols).
	Rows [][]string
	// Notes are rendered underneath.
	Notes []string
}

// AddRow appends a row; the cell count must match the headers.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Cols) {
		panic(fmt.Sprintf("report: row has %d cells, want %d", len(cells), len(t.Cols)))
	}
	t.Rows = append(t.Rows, cells)
}

// Render writes an aligned plain-text rendering.
func (t Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Cols)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes the table as headers + rows.
func (t Table) CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Cols); err != nil {
		return fmt.Errorf("report: writing CSV header: %w", err)
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("report: writing CSV row: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("report: flushing CSV: %w", err)
	}
	return nil
}

// Series is a named sequence of (x, y) points — one plotted curve of a
// figure.
type Series struct {
	// Name labels the curve (e.g. "v1=0.6 v2=0.2 LB").
	Name string
	// X and Y are the coordinates (equal length).
	X, Y []float64
}

// Figure is a set of curves sharing axes — one panel of a paper figure.
type Figure struct {
	// ID is the experiment identifier (e.g. "F3-p0.5").
	ID string
	// Title describes the panel.
	Title string
	// XLabel and YLabel name the axes.
	XLabel, YLabel string
	// Curves holds the series.
	Curves []Series
}

// CSV writes the figure in long form: series,x,y.
func (f Figure) CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"series", f.XLabel, f.YLabel}); err != nil {
		return fmt.Errorf("report: writing figure header: %w", err)
	}
	for _, s := range f.Curves {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("report: series %q has %d xs but %d ys", s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			rec := []string{s.Name, fmt.Sprintf("%g", s.X[i]), fmt.Sprintf("%g", s.Y[i])}
			if err := cw.Write(rec); err != nil {
				return fmt.Errorf("report: writing figure row: %w", err)
			}
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("report: flushing figure CSV: %w", err)
	}
	return nil
}

// Fmt formats a float compactly for table cells.
func Fmt(x float64) string { return fmt.Sprintf("%.4g", x) }
