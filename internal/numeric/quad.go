package numeric

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoConvergence is reported when an iterative routine exhausts its
// iteration budget before reaching the requested tolerance.
var ErrNoConvergence = errors.New("numeric: no convergence")

// Func1 is a scalar function of one variable.
type Func1 func(x float64) float64

// QuadOptions controls adaptive quadrature.
type QuadOptions struct {
	// AbsTol is the absolute error target. Default 1e-10.
	AbsTol float64
	// RelTol is the relative error target. Default 1e-9.
	RelTol float64
	// MaxDepth bounds the recursion depth. Default 48.
	MaxDepth int
	// MaxEvals bounds the total integrand evaluations per IntegrateOpt
	// call. Deep recursion is cheap when it localizes around isolated
	// kinks, but a noisy integrand (e.g. finite-difference derivatives)
	// fails the tolerance everywhere and would otherwise explore an
	// exponential bisection tree. Default 400000.
	MaxEvals int
}

func (o QuadOptions) withDefaults() QuadOptions {
	if o.AbsTol <= 0 {
		o.AbsTol = 1e-10
	}
	if o.RelTol <= 0 {
		o.RelTol = 1e-9
	}
	if o.MaxDepth <= 0 {
		o.MaxDepth = 48
	}
	if o.MaxEvals <= 0 {
		o.MaxEvals = 400000
	}
	return o
}

// Integrate computes the definite integral of f over [a, b] with adaptive
// Simpson quadrature and default tolerances. It is the convenience form of
// IntegrateOpt.
func Integrate(f Func1, a, b float64) float64 {
	v, _ := IntegrateOpt(f, a, b, QuadOptions{})
	return v
}

// IntegrateOpt computes the definite integral of f over [a, b] with adaptive
// Simpson quadrature. The returned error is non-nil when the recursion budget
// was exhausted somewhere; the value is still the best available estimate.
//
// Integrands coming from lower-bound functions are piecewise smooth with a
// modest number of kinks or jumps, which adaptive Simpson handles well: the
// recursion isolates each kink. Integrable endpoint singularities (such as
// u^-p near 0 for p < 1) are handled by the depth-bounded bisection.
func IntegrateOpt(f Func1, a, b float64, opt QuadOptions) (float64, error) {
	if a == b {
		return 0, nil
	}
	if b < a {
		v, err := IntegrateOpt(f, b, a, opt)
		return -v, err
	}
	opt = opt.withDefaults()
	// Composite start: 16 panels before adaptivity. A single top-level
	// Simpson probe (3 points) can land entirely outside a narrow feature
	// (estimator pulses such as U* on (v2, v1]) and "converge" to 0; the
	// composite start bounds the width of features that can hide.
	const panels = 16
	var (
		sum       Kahan
		exhausted bool
	)
	evals := opt.MaxEvals
	h := (b - a) / panels
	x0, f0 := a, f(a)
	for i := 1; i <= panels; i++ {
		x1 := a + float64(i)*h
		if i == panels {
			x1 = b
		}
		f1 := f(x1)
		m := 0.5 * (x0 + x1)
		fm := f(m)
		whole := simpson(x0, x1, f0, fm, f1)
		sum.Add(adaptSimpson(f, x0, x1, f0, fm, f1, whole,
			opt.AbsTol/panels, opt.RelTol, opt.MaxDepth, opt.AbsTol/panels, &evals, &exhausted))
		x0, f0 = x1, f1
	}
	if exhausted {
		return sum.Sum(), fmt.Errorf("integrating over [%g, %g]: %w", a, b, ErrNoConvergence)
	}
	return sum.Sum(), nil
}

func simpson(a, b, fa, fm, fb float64) float64 {
	return (b - a) / 6 * (fa + 4*fm + fb)
}

func adaptSimpson(f Func1, a, b, fa, fm, fb, whole, absTol, relTol float64, depth int, flagTol float64, evals *int, exhausted *bool) float64 {
	m := 0.5 * (a + b)
	lm := 0.5 * (a + m)
	rm := 0.5 * (m + b)
	flm, frm := f(lm), f(rm)
	*evals -= 2
	left := simpson(a, m, fa, flm, fm)
	right := simpson(m, b, fm, frm, fb)
	delta := left + right - whole
	if math.Abs(delta) <= 15*math.Max(absTol, relTol*math.Abs(left+right)) {
		return left + right + delta/15
	}
	if depth <= 0 || *evals <= 0 || math.IsNaN(delta) {
		// Only report exhaustion when the residual is material against the
		// caller's original tolerance: bounded jump discontinuities pin the
		// recursion to machine-width intervals whose residuals are
		// negligible, whereas genuine divergences leave large residuals.
		// NaN can never satisfy the tolerance; recursing on it would
		// explore the full 2^depth bisection tree, so it surfaces here too,
		// as does running out of the evaluation budget.
		if !(math.Abs(delta)/15 <= flagTol) {
			*exhausted = true
		}
		return left + right + delta/15
	}
	return adaptSimpson(f, a, m, fa, flm, fm, left, absTol/2, relTol, depth-1, flagTol, evals, exhausted) +
		adaptSimpson(f, m, b, fm, frm, fb, right, absTol/2, relTol, depth-1, flagTol, evals, exhausted)
}

// IntegrateToZero integrates f over (0, b] where f may have an integrable
// singularity at 0. It splits the interval at a geometric sequence of
// breakpoints approaching 0 and stops once the contribution of the innermost
// slice falls below the tolerance.
func IntegrateToZero(f Func1, b float64, opt QuadOptions) (float64, error) {
	opt = opt.withDefaults()
	if b <= 0 {
		return 0, nil
	}
	var sum Kahan
	hi := b
	var firstErr error
	// Slices [hi/4, hi] shrink geometrically; for u^-p integrands the slice
	// contributions decay like 4^{-(1-p)i}, so the loop bound must be large
	// enough for p close to 1. Underflow of hi terminates in any case.
	for i := 0; i < 600 && hi > 1e-300; i++ {
		lo := hi / 4
		v, err := IntegrateOpt(f, lo, hi, opt)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if math.IsNaN(v) {
			return math.NaN(), fmt.Errorf("integrand NaN in [%g, %g]: %w", lo, hi, ErrNoConvergence)
		}
		sum.Add(v)
		if math.Abs(v) < opt.AbsTol && i > 2 {
			return sum.Sum(), firstErr
		}
		hi = lo
	}
	return sum.Sum(), firstErr
}
