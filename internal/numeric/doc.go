// Package numeric provides the small numerical substrate used throughout the
// repository: adaptive quadrature, compensated summation, bracketing
// minimization, grids, and tolerant float comparison.
//
// Everything is deterministic and allocation-light; the estimator code in
// internal/core is the primary consumer.
package numeric
