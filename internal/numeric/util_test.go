package numeric

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestClamp(t *testing.T) {
	tests := []struct {
		x, lo, hi, want float64
	}{
		{-1, 0, 1, 0},
		{2, 0, 1, 1},
		{0.5, 0, 1, 0.5},
		{0, 0, 0, 0},
	}
	for _, tt := range tests {
		if got := Clamp(tt.x, tt.lo, tt.hi); got != tt.want {
			t.Errorf("Clamp(%g,%g,%g) = %g, want %g", tt.x, tt.lo, tt.hi, got, tt.want)
		}
	}
}

func TestLinspace(t *testing.T) {
	xs := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	if len(xs) != len(want) {
		t.Fatalf("len = %d, want %d", len(xs), len(want))
	}
	for i := range xs {
		if !EqualWithin(xs[i], want[i], 1e-12) {
			t.Errorf("xs[%d] = %g, want %g", i, xs[i], want[i])
		}
	}
}

func TestGeomspaceEndpointsAndMonotonicity(t *testing.T) {
	xs := Geomspace(1e-6, 1, 41)
	if xs[0] != 1e-6 || xs[len(xs)-1] != 1 {
		t.Fatalf("endpoints = %g, %g", xs[0], xs[len(xs)-1])
	}
	if !sort.Float64sAreSorted(xs) {
		t.Error("Geomspace output is not sorted")
	}
	// Ratio between consecutive points should be constant.
	r := xs[1] / xs[0]
	for i := 2; i < len(xs); i++ {
		if !EqualWithin(xs[i]/xs[i-1], r, 1e-9) {
			t.Errorf("ratio at %d = %g, want %g", i, xs[i]/xs[i-1], r)
		}
	}
}

func TestMinimizeGoldenQuadratic(t *testing.T) {
	f := func(x float64) float64 { return (x - 0.37) * (x - 0.37) }
	x, fx := MinimizeGolden(f, 0, 1, 1e-10)
	if math.Abs(x-0.37) > 1e-6 {
		t.Errorf("argmin = %g, want 0.37", x)
	}
	if fx > 1e-10 {
		t.Errorf("min value = %g, want ~0", fx)
	}
}

func TestMinimizeGoldenEndpointMinimum(t *testing.T) {
	// Monotone increasing: minimum at left endpoint.
	x, _ := MinimizeGolden(func(x float64) float64 { return x }, 0.2, 0.9, 1e-10)
	if math.Abs(x-0.2) > 1e-6 {
		t.Errorf("argmin = %g, want 0.2", x)
	}
}

func TestMinimizeGoldenMultimodal(t *testing.T) {
	// Two valleys; the deeper one is near 0.8.
	f := func(x float64) float64 {
		return math.Min((x-0.2)*(x-0.2)+0.1, (x-0.8)*(x-0.8))
	}
	x, fx := MinimizeGolden(f, 0, 1, 1e-10)
	if math.Abs(x-0.8) > 1e-3 {
		t.Errorf("argmin = %g, want 0.8", x)
	}
	if fx > 1e-6 {
		t.Errorf("min = %g, want ~0", fx)
	}
}

func TestMinimizeGoldenNeverWorseThanEndpoints(t *testing.T) {
	prop := func(seed uint32) bool {
		a := float64(seed%97) / 100
		b := a + 0.1 + float64(seed%13)/20
		c1 := float64(seed%7) - 3
		c2 := float64(seed%11) - 5
		f := func(x float64) float64 { return math.Cos(c1*x) + c2*x*x }
		_, fx := MinimizeGolden(f, a, b, 1e-9)
		return fx <= f(a)+1e-12 && fx <= f(b)+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEqualWithin(t *testing.T) {
	tests := []struct {
		a, b, tol float64
		want      bool
	}{
		{1, 1, 0, true},
		{1, 1.0000001, 1e-6, true},
		{1, 1.1, 1e-6, false},
		{1e12, 1e12 + 1, 1e-9, true}, // relative
		{0, 1e-12, 1e-9, true},       // absolute
	}
	for _, tt := range tests {
		if got := EqualWithin(tt.a, tt.b, tt.tol); got != tt.want {
			t.Errorf("EqualWithin(%g,%g,%g) = %v, want %v", tt.a, tt.b, tt.tol, got, tt.want)
		}
	}
}
