package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestIntegratePolynomials(t *testing.T) {
	tests := []struct {
		name string
		f    Func1
		a, b float64
		want float64
	}{
		{"constant", func(x float64) float64 { return 3 }, 0, 2, 6},
		{"linear", func(x float64) float64 { return x }, 0, 1, 0.5},
		{"quadratic", func(x float64) float64 { return x * x }, 0, 1, 1.0 / 3},
		{"cubic shifted", func(x float64) float64 { return x*x*x - 2*x }, -1, 3, 12},
		{"reversed bounds", func(x float64) float64 { return x }, 1, 0, -0.5},
		{"empty interval", func(x float64) float64 { return 42 }, 1, 1, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := IntegrateOpt(tt.f, tt.a, tt.b, QuadOptions{})
			if err != nil {
				t.Fatalf("IntegrateOpt() error: %v", err)
			}
			if !EqualWithin(got, tt.want, 1e-9) {
				t.Errorf("IntegrateOpt() = %g, want %g", got, tt.want)
			}
		})
	}
}

func TestIntegrateTranscendental(t *testing.T) {
	tests := []struct {
		name string
		f    Func1
		a, b float64
		want float64
	}{
		{"sin over half period", math.Sin, 0, math.Pi, 2},
		{"exp", math.Exp, 0, 1, math.E - 1},
		{"1/x", func(x float64) float64 { return 1 / x }, 1, math.E, 1},
		{"kinked abs", math.Abs, -1, 2, 2.5},
		{"step", func(x float64) float64 {
			if x < 0.3 {
				return 1
			}
			return 2
		}, 0, 1, 1.7},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Integrate(tt.f, tt.a, tt.b)
			if !EqualWithin(got, tt.want, 1e-7) {
				t.Errorf("Integrate() = %g, want %g", got, tt.want)
			}
		})
	}
}

func TestIntegrateToZeroSingularities(t *testing.T) {
	// ∫0^1 u^-p du = 1/(1-p) for p < 1: integrable endpoint singularity.
	for _, p := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		f := func(u float64) float64 { return math.Pow(u, -p) }
		got, err := IntegrateToZero(f, 1, QuadOptions{AbsTol: 1e-12})
		if err != nil {
			t.Fatalf("p=%g: error: %v", p, err)
		}
		want := 1 / (1 - p)
		if !EqualWithin(got, want, 1e-6) {
			t.Errorf("p=%g: got %g, want %g", p, got, want)
		}
	}
	// -log has an integrable singularity too: ∫0^1 -ln u du = 1.
	got, err := IntegrateToZero(func(u float64) float64 { return -math.Log(u) }, 1, QuadOptions{})
	if err != nil {
		t.Fatalf("log: error: %v", err)
	}
	if !EqualWithin(got, 1, 1e-8) {
		t.Errorf("∫ -ln = %g, want 1", got)
	}
}

func TestIntegrateAdditivityProperty(t *testing.T) {
	// ∫a^b + ∫b^c = ∫a^c for random polynomial-ish integrands.
	f := func(x float64) float64 { return 3*x*x - x + math.Sin(3*x) }
	prop := func(a, m, c uint16) bool {
		x := float64(a%1000) / 1000
		y := x + float64(m%1000)/1000
		z := y + float64(c%1000)/1000
		left := Integrate(f, x, y) + Integrate(f, y, z)
		whole := Integrate(f, x, z)
		return EqualWithin(left, whole, 1e-7)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestKahanCompensation(t *testing.T) {
	// Summing many tiny values onto a huge one loses everything with naive
	// accumulation but not with compensation.
	var k Kahan
	k.Add(1e16)
	for i := 0; i < 10000; i++ {
		k.Add(1.0)
	}
	if got, want := k.Sum(), 1e16+10000; got != want {
		t.Errorf("Kahan sum = %g, want %g", got, want)
	}
}

func TestSumMatchesNaiveOnBenignInput(t *testing.T) {
	prop := func(xs []float64) bool {
		var naive float64
		ok := true
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				ok = false
				break
			}
			naive += x
		}
		if !ok {
			return true // skip pathological inputs
		}
		return EqualWithin(Sum(xs), naive, 1e-6)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
