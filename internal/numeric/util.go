package numeric

import "math"

// Kahan is a compensated (Kahan–Neumaier) accumulator. The zero value is an
// empty sum ready for use.
type Kahan struct {
	sum float64
	c   float64
}

// Add accumulates x.
func (k *Kahan) Add(x float64) {
	t := k.sum + x
	if math.Abs(k.sum) >= math.Abs(x) {
		k.c += (k.sum - t) + x
	} else {
		k.c += (x - t) + k.sum
	}
	k.sum = t
}

// Sum returns the compensated total.
func (k *Kahan) Sum() float64 { return k.sum + k.c }

// Sum returns the compensated sum of xs.
func Sum(xs []float64) float64 {
	var k Kahan
	for _, x := range xs {
		k.Add(x)
	}
	return k.Sum()
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	switch {
	case x < lo:
		return lo
	case x > hi:
		return hi
	default:
		return x
	}
}

// EqualWithin reports whether a and b agree to within tol absolutely or
// relatively (whichever is more permissive).
func EqualWithin(a, b, tol float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	if d <= tol {
		return true
	}
	return d <= tol*math.Max(math.Abs(a), math.Abs(b))
}

// Linspace returns n evenly spaced points from a to b inclusive. n must be
// at least 2.
func Linspace(a, b float64, n int) []float64 {
	if n < 2 {
		panic("numeric: Linspace needs n >= 2")
	}
	xs := make([]float64, n)
	step := (b - a) / float64(n-1)
	for i := range xs {
		xs[i] = a + float64(i)*step
	}
	xs[n-1] = b
	return xs
}

// Geomspace returns n geometrically spaced points from a to b inclusive,
// requiring 0 < a < b and n >= 2. It is the natural grid for seed values
// because estimator mass concentrates near u = 0.
func Geomspace(a, b float64, n int) []float64 {
	if n < 2 || a <= 0 || b <= a {
		panic("numeric: Geomspace needs n >= 2 and 0 < a < b")
	}
	xs := make([]float64, n)
	la, lb := math.Log(a), math.Log(b)
	step := (lb - la) / float64(n-1)
	for i := range xs {
		xs[i] = math.Exp(la + float64(i)*step)
	}
	xs[0], xs[n-1] = a, b
	return xs
}

// MinimizeGolden locates a minimizer of f on [a, b] by golden-section search.
// f need not be smooth; for unimodal f the result is within tol of the true
// minimizer, and for general f it returns the best point seen (including the
// endpoints and a coarse pre-scan), which is what the U* solver needs.
func MinimizeGolden(f Func1, a, b, tol float64) (x, fx float64) {
	const invPhi = 0.6180339887498949
	if b < a {
		a, b = b, a
	}
	if tol <= 0 {
		tol = 1e-10
	}
	// Coarse pre-scan to pick a bracket; protects against multimodal f.
	const scan = 24
	bestX, bestF := a, f(a)
	if fb := f(b); fb < bestF {
		bestX, bestF = b, fb
	}
	lo, hi := a, b
	step := (b - a) / scan
	if step > 0 {
		for i := 1; i < scan; i++ {
			x := a + float64(i)*step
			if fx := f(x); fx < bestF {
				bestX, bestF = x, fx
			}
		}
		lo = math.Max(a, bestX-step)
		hi = math.Min(b, bestX+step)
	}
	c := hi - invPhi*(hi-lo)
	d := lo + invPhi*(hi-lo)
	fc, fd := f(c), f(d)
	for hi-lo > tol {
		if fc < fd {
			hi, d, fd = d, c, fc
			c = hi - invPhi*(hi-lo)
			fc = f(c)
		} else {
			lo, c, fc = c, d, fd
			d = lo + invPhi*(hi-lo)
			fd = f(d)
		}
	}
	x = 0.5 * (lo + hi)
	fx = f(x)
	if fc < fx {
		x, fx = c, fc
	}
	if fd < fx {
		x, fx = d, fd
	}
	if bestF < fx {
		x, fx = bestX, bestF
	}
	return x, fx
}
