// Package stats provides the small statistics toolkit used by the
// experiment harness: streaming moments, error metrics, and quantiles.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Welford is a streaming mean/variance accumulator (numerically stable).
// The zero value is ready for use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add accumulates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the sample mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the population variance (0 when fewer than 2 observations).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// Std returns the population standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// StdErr returns the standard error of the mean.
func (w *Welford) StdErr() float64 {
	if w.n == 0 {
		return 0
	}
	return w.Std() / math.Sqrt(float64(w.n))
}

// ErrorMeter accumulates estimate/truth pairs and reports normalized error
// metrics, the workhorse of the Section 7 experiment reproductions.
type ErrorMeter struct {
	sqErr  Welford
	absErr Welford
	truth  Welford
	bias   Welford
}

// Add records one (estimate, truth) pair.
func (m *ErrorMeter) Add(estimate, truth float64) {
	m.sqErr.Add((estimate - truth) * (estimate - truth))
	m.absErr.Add(math.Abs(estimate - truth))
	m.truth.Add(truth)
	m.bias.Add(estimate - truth)
}

// N returns the number of pairs.
func (m *ErrorMeter) N() int { return m.sqErr.N() }

// RMSE returns the root-mean-squared error.
func (m *ErrorMeter) RMSE() float64 { return math.Sqrt(m.sqErr.Mean()) }

// NRMSE returns RMSE normalized by the mean truth (NaN when truth ≈ 0).
func (m *ErrorMeter) NRMSE() float64 {
	if m.truth.Mean() == 0 {
		return math.NaN()
	}
	return m.RMSE() / math.Abs(m.truth.Mean())
}

// MeanAbs returns the mean absolute error.
func (m *ErrorMeter) MeanAbs() float64 { return m.absErr.Mean() }

// Bias returns the mean signed error (≈0 for unbiased estimators).
func (m *ErrorMeter) Bias() float64 { return m.bias.Mean() }

// RelBias returns Bias normalized by mean truth.
func (m *ErrorMeter) RelBias() float64 {
	if m.truth.Mean() == 0 {
		return math.NaN()
	}
	return m.Bias() / math.Abs(m.truth.Mean())
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs by linear
// interpolation of the order statistics. xs is not modified.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: quantile of empty slice")
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("stats: quantile level %g outside [0,1]", q)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Mean returns the arithmetic mean of xs (0 when empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	return w.Mean()
}
