package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWelfordAgainstDirect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 100, -7}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var varc float64
	for _, x := range xs {
		varc += (x - mean) * (x - mean)
	}
	varc /= float64(len(xs))
	if math.Abs(w.Mean()-mean) > 1e-12 {
		t.Errorf("mean = %g, want %g", w.Mean(), mean)
	}
	if math.Abs(w.Var()-varc) > 1e-9 {
		t.Errorf("var = %g, want %g", w.Var(), varc)
	}
	if w.N() != len(xs) {
		t.Errorf("N = %d, want %d", w.N(), len(xs))
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.StdErr() != 0 {
		t.Error("empty accumulator should be all zeros")
	}
	w.Add(5)
	if w.Mean() != 5 || w.Var() != 0 {
		t.Error("single observation: mean 5, var 0")
	}
}

func TestWelfordShiftInvarianceProperty(t *testing.T) {
	// Variance is shift-invariant; mean shifts by the offset.
	prop := func(seed int64, offBits uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		off := float64(offBits)
		var a, b Welford
		for i := 0; i < 50; i++ {
			x := rng.NormFloat64()
			a.Add(x)
			b.Add(x + off)
		}
		return math.Abs(a.Var()-b.Var()) < 1e-6 && math.Abs(b.Mean()-a.Mean()-off) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestErrorMeter(t *testing.T) {
	var m ErrorMeter
	m.Add(11, 10)
	m.Add(9, 10)
	if m.N() != 2 {
		t.Fatalf("N = %d, want 2", m.N())
	}
	if got := m.RMSE(); math.Abs(got-1) > 1e-12 {
		t.Errorf("RMSE = %g, want 1", got)
	}
	if got := m.NRMSE(); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("NRMSE = %g, want 0.1", got)
	}
	if got := m.Bias(); math.Abs(got) > 1e-12 {
		t.Errorf("Bias = %g, want 0", got)
	}
	if got := m.MeanAbs(); math.Abs(got-1) > 1e-12 {
		t.Errorf("MeanAbs = %g, want 1", got)
	}
}

func TestErrorMeterZeroTruth(t *testing.T) {
	var m ErrorMeter
	m.Add(1, 0)
	if !math.IsNaN(m.NRMSE()) || !math.IsNaN(m.RelBias()) {
		t.Error("zero truth should give NaN normalized metrics")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 5, 4}
	tests := []struct {
		q, want float64
	}{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4},
	}
	for _, tt := range tests {
		got, err := Quantile(xs, tt.q)
		if err != nil {
			t.Fatal(err)
		}
		if got != tt.want {
			t.Errorf("Quantile(%g) = %g, want %g", tt.q, got, tt.want)
		}
	}
	// Input must not be mutated.
	if xs[0] != 3 {
		t.Error("Quantile mutated its input")
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("out-of-range level should fail")
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %g, want 2", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %g, want 0", got)
	}
}
