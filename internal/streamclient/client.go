// Package streamclient is the client side of monestd's streaming wire:
// a binary ingest stream writer (POST /v1/stream) and a Server-Sent
// Events subscriber (GET /v1/subscribe). cmd/loadgen and the e2e suite
// drive the daemon through it; external Go writers can too.
package streamclient

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/store"
)

// StreamSummary is the server's response to a finished ingest stream.
type StreamSummary struct {
	Frames  int `json:"frames"`
	Updates int `json:"updates"`
	// SkippedFrames/SkippedUpdates count frames the server recognized as
	// idempotent replays (same Idempotency-Key, position and digest) and
	// did not re-apply.
	SkippedFrames  int  `json:"skipped_frames"`
	SkippedUpdates int  `json:"skipped_updates"`
	Draining       bool `json:"draining"`
}

// StreamError is a structured stream rejection decoded from the server's
// error envelope — the 429 backpressure contract in client form. A
// stream that dies with a transport error (no HTTP response) yields a
// plain error instead.
type StreamError struct {
	Status  int
	Code    string
	Message string
	// RetryAfter is the server's retry hint (zero when absent).
	RetryAfter time.Duration
	// AppliedFrames/AppliedUpdates report how much of the stream the
	// server applied before rejecting (-1: the envelope omitted them —
	// not a mid-stream rejection).
	AppliedFrames  int
	AppliedUpdates int
}

func (e *StreamError) Error() string {
	return fmt.Sprintf("stream: status %d (%s): %s", e.Status, e.Code, e.Message)
}

// RateLimited reports whether the rejection is the backpressure 429 the
// client should back off and retry.
func (e *StreamError) RateLimited() bool { return e.Status == http.StatusTooManyRequests }

// parseStreamError decodes the server's error envelope; ok=false means
// the body was not the structured envelope (fall back to raw text).
func parseStreamError(status int, body []byte) (*StreamError, bool) {
	var env struct {
		Error struct {
			Code              string  `json:"code"`
			Message           string  `json:"message"`
			RetryAfterSeconds float64 `json:"retry_after_seconds"`
			AppliedFrames     *int    `json:"applied_frames"`
			AppliedUpdates    *int    `json:"applied_updates"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err != nil || env.Error.Code == "" {
		return nil, false
	}
	se := &StreamError{
		Status:         status,
		Code:           env.Error.Code,
		Message:        env.Error.Message,
		RetryAfter:     time.Duration(env.Error.RetryAfterSeconds * float64(time.Second)),
		AppliedFrames:  -1,
		AppliedUpdates: -1,
	}
	if env.Error.AppliedFrames != nil {
		se.AppliedFrames = *env.Error.AppliedFrames
	}
	if env.Error.AppliedUpdates != nil {
		se.AppliedUpdates = *env.Error.AppliedUpdates
	}
	return se, true
}

// StreamOptions tunes OpenStreamWith.
type StreamOptions struct {
	// IdempotencyKey, when non-empty, rides as the Idempotency-Key
	// header: replaying the same stream under the same key makes
	// already-applied frames no-ops on the server.
	IdempotencyKey string
}

// Stream is one open binary ingest connection. Send frames with Send;
// Close ends the stream and returns the server's summary. Not safe for
// concurrent use.
type Stream struct {
	pw   *io.PipeWriter
	resp chan streamResult
	buf  []byte
	sent int
}

type streamResult struct {
	summary StreamSummary
	err     error
}

// OpenStream starts a POST /v1/stream request against baseURL (e.g.
// "http://127.0.0.1:8080") using the client (nil = http.DefaultClient).
// The request body is chunked: frames flow as Send is called, so one
// connection carries an unbounded update stream with the server applying
// batches as they arrive.
func OpenStream(ctx context.Context, client *http.Client, baseURL string) (*Stream, error) {
	return OpenStreamWith(ctx, client, baseURL, StreamOptions{})
}

// OpenStreamWith is OpenStream with options (idempotency key).
func OpenStreamWith(ctx context.Context, client *http.Client, baseURL string, opts StreamOptions) (*Stream, error) {
	if client == nil {
		client = http.DefaultClient
	}
	pr, pw := io.Pipe()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, strings.TrimSuffix(baseURL, "/")+"/v1/stream", pr)
	if err != nil {
		pw.Close()
		return nil, err
	}
	req.Header.Set("Content-Type", store.StreamContentType)
	if opts.IdempotencyKey != "" {
		req.Header.Set("Idempotency-Key", opts.IdempotencyKey)
	}
	s := &Stream{pw: pw, resp: make(chan streamResult, 1)}
	go func() {
		resp, err := client.Do(req)
		if err != nil {
			// Unblock a Send stuck writing into the abandoned body.
			pr.CloseWithError(err)
			s.resp <- streamResult{err: err}
			return
		}
		defer resp.Body.Close()
		body, rerr := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		if resp.StatusCode != http.StatusOK {
			var rejection error
			if se, ok := parseStreamError(resp.StatusCode, body); ok {
				rejection = se
			} else {
				rejection = fmt.Errorf("stream: status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
			}
			pr.CloseWithError(rejection)
			s.resp <- streamResult{err: rejection}
			return
		}
		if rerr != nil {
			s.resp <- streamResult{err: rerr}
			return
		}
		var sum StreamSummary
		if err := json.Unmarshal(body, &sum); err != nil {
			s.resp <- streamResult{err: fmt.Errorf("stream summary: %w", err)}
			return
		}
		s.resp <- streamResult{summary: sum}
	}()
	// The magic rides ahead of the first frame in one write.
	s.buf = store.AppendStreamHeader(s.buf[:0])
	return s, nil
}

// Send frames one update batch and writes it to the connection. An error
// usually means the server rejected the stream; Close returns the cause.
func (s *Stream) Send(batch []engine.Update) error {
	s.buf = store.AppendFrame(s.buf, batch)
	_, err := s.pw.Write(s.buf)
	s.buf = s.buf[:0]
	if err == nil {
		s.sent++
	}
	return err
}

// Sent reports how many frames were written so far.
func (s *Stream) Sent() int { return s.sent }

// Close ends the stream cleanly and returns the server's summary.
func (s *Stream) Close() (StreamSummary, error) {
	s.pw.Close()
	r := <-s.resp
	return r.summary, r.err
}

// Event is one decoded SSE event from /v1/subscribe.
type Event struct {
	// Type is the SSE event name: "estimate" or "drain".
	Type string
	// ID is the raw SSE id line — the engine version for estimate events.
	ID string
	// Data is the event's data payload (JSON for estimate events).
	Data []byte
}

// Push is a decoded estimate event: the engine version the results
// reflect plus the raw per-query result objects, exactly as POST
// /v1/query would return them.
type Push struct {
	Version uint64            `json:"version"`
	Results []json.RawMessage `json:"results"`
	// Degraded is the raw degraded block when the push was evaluated
	// from a view missing cluster nodes (absent otherwise).
	Degraded json.RawMessage `json:"degraded,omitempty"`
}

// Subscription is one open /v1/subscribe connection.
type Subscription struct {
	resp *http.Response
	sc   *bufio.Scanner
}

// Subscribe opens GET /v1/subscribe with the given raw query string
// (e.g. "func=rg&p=1&estimator=lstar" or "queries=[...]"). A non-200
// response is returned as an error carrying the server's message.
func Subscribe(ctx context.Context, client *http.Client, baseURL, rawQuery string) (*Subscription, error) {
	if client == nil {
		client = http.DefaultClient
	}
	url := strings.TrimSuffix(baseURL, "/") + "/v1/subscribe"
	if rawQuery != "" {
		url += "?" + rawQuery
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		return nil, fmt.Errorf("subscribe: status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	return &Subscription{resp: resp, sc: sc}, nil
}

// Next blocks until the next event arrives (heartbeat comments are
// skipped) and returns it. io.EOF means the server closed the stream.
func (s *Subscription) Next() (Event, error) {
	var ev Event
	haveData := false
	for s.sc.Scan() {
		line := s.sc.Bytes()
		switch {
		case len(line) == 0:
			if ev.Type != "" || haveData {
				return ev, nil
			}
			// Blank after a comment-only block: keep waiting.
		case line[0] == ':':
			// Heartbeat comment.
		case bytes.HasPrefix(line, []byte("event: ")):
			ev.Type = string(line[len("event: "):])
		case bytes.HasPrefix(line, []byte("id: ")):
			ev.ID = string(line[len("id: "):])
		case bytes.HasPrefix(line, []byte("data: ")):
			ev.Data = append(ev.Data, line[len("data: "):]...)
			haveData = true
		}
	}
	if err := s.sc.Err(); err != nil {
		return Event{}, err
	}
	return Event{}, io.EOF
}

// NextPush reads events until the next "estimate" event and decodes it.
func (s *Subscription) NextPush() (Push, error) {
	for {
		ev, err := s.Next()
		if err != nil {
			return Push{}, err
		}
		if ev.Type != "estimate" {
			continue
		}
		var p Push
		if err := json.Unmarshal(ev.Data, &p); err != nil {
			return Push{}, fmt.Errorf("decoding push %q: %w", ev.Data, err)
		}
		if ev.ID != "" {
			if id, err := strconv.ParseUint(ev.ID, 10, 64); err == nil && id != p.Version {
				return Push{}, fmt.Errorf("push id %d disagrees with payload version %d", id, p.Version)
			}
		}
		return p, nil
	}
}

// Close tears down the subscription connection.
func (s *Subscription) Close() error { return s.resp.Body.Close() }
