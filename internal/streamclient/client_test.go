package streamclient

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/sampling"
	"repro/internal/server"
)

func testServer(t *testing.T) (*httptest.Server, *engine.Engine) {
	t.Helper()
	eng, err := engine.New(engine.Config{Instances: 2, K: 16, Shards: 4, Hash: sampling.NewSeedHash(1)})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.NewWith(eng, server.Config{SubscribeDebounce: 10 * time.Millisecond})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, eng
}

func batch(n, base int) []engine.Update {
	b := make([]engine.Update, n)
	for i := range b {
		b[i] = engine.Update{Instance: i % 2, Key: uint64(base + i), Weight: float64(i%7) + 0.5}
	}
	return b
}

func TestStreamRoundTrip(t *testing.T) {
	ts, eng := testServer(t)
	st, err := OpenStream(context.Background(), ts.Client(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i := 0; i < 5; i++ {
		b := batch(32, i*100)
		if err := st.Send(b); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		total += len(b)
	}
	sum, err := st.Close()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Frames != 5 || sum.Updates != total || sum.Draining {
		t.Fatalf("summary %+v, want 5 frames / %d updates", sum, total)
	}
	if got := eng.Stats().Ingests; got != uint64(total) {
		t.Fatalf("engine ingested %d, want %d", got, total)
	}
}

func TestStreamServerRejectsBadUpdate(t *testing.T) {
	ts, _ := testServer(t)
	st, err := OpenStream(context.Background(), ts.Client(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	// Instance 9 is outside [0, 2): the server must abort the stream.
	_ = st.Send([]engine.Update{{Instance: 9, Key: 1, Weight: 1}})
	// Later sends may fail once the server closes its end; Close must
	// surface the 400.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if err := st.Send(batch(8, 0)); err != nil {
			break
		}
	}
	if _, err := st.Close(); err == nil || !strings.Contains(err.Error(), "status 400") {
		t.Fatalf("Close error %v, want status 400", err)
	}
}

func TestSubscribePushesOnStreamIngest(t *testing.T) {
	ts, _ := testServer(t)
	ctx := context.Background()
	sub, err := Subscribe(ctx, ts.Client(), ts.URL, "func=rg&p=1&estimator=lstar")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	initial, err := sub.NextPush()
	if err != nil {
		t.Fatal(err)
	}
	if len(initial.Results) != 1 {
		t.Fatalf("initial push has %d results", len(initial.Results))
	}

	st, err := OpenStream(ctx, ts.Client(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Send(batch(64, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Close(); err != nil {
		t.Fatal(err)
	}

	push, err := sub.NextPush()
	if err != nil {
		t.Fatal(err)
	}
	if push.Version <= initial.Version && initial.Version != 0 {
		t.Fatalf("pushed version %d did not advance past %d", push.Version, initial.Version)
	}

	// The pushed estimate must equal what POST /v1/query answers for the
	// same spec at the same version.
	resp, err := ts.Client().Post(ts.URL+"/v1/query", "application/json",
		strings.NewReader(`{"queries":[{"statistic":"sum","func":"rg","p":1,"estimator":"lstar"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr struct {
		Version uint64            `json:"version"`
		Results []json.RawMessage `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if qr.Version != push.Version {
		t.Fatalf("query version %d != push version %d (engine mutated between?)", qr.Version, push.Version)
	}
	var a, b map[string]any
	if err := json.Unmarshal(push.Results[0], &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(qr.Results[0], &b); err != nil {
		t.Fatal(err)
	}
	if a["estimate"] != b["estimate"] {
		t.Fatalf("pushed estimate %v != queried estimate %v", a["estimate"], b["estimate"])
	}
}

func TestSubscribeRejectsBadQuery(t *testing.T) {
	ts, _ := testServer(t)
	if _, err := Subscribe(context.Background(), ts.Client(), ts.URL, "estimator=bogus"); err == nil ||
		!strings.Contains(err.Error(), "status 400") {
		t.Fatalf("bad estimator: %v, want status 400", err)
	}
}

func TestSubscribeContextCancelCloses(t *testing.T) {
	ts, _ := testServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	sub, err := Subscribe(ctx, ts.Client(), ts.URL, "")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if _, err := sub.NextPush(); err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := sub.Next(); err == nil {
		t.Fatal("Next succeeded after cancel")
	}
}
