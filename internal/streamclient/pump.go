package streamclient

import (
	"context"
	"errors"
	"net/http"
	"time"

	"repro/internal/engine"
)

// Pump drives one logical update stream to completion under
// backpressure: it opens /v1/stream with an Idempotency-Key, feeds it
// frames from next, and when the server rejects a frame with the
// backpressure 429 it waits out the Retry-After hint and replays the
// whole stream under the same key — the server skips every frame it
// already applied (position + digest match), so the replay costs no
// re-application and the node's counters stay exact.

// PumpStats describes a completed Pump run. Frames applied across ALL
// attempts total Frames+SkippedFrames: the final (successful) attempt
// replays every frame, and each one is either applied then (Frames) or
// recognized as applied by an earlier attempt (SkippedFrames) — each
// logical frame counts exactly once between the two.
type PumpStats struct {
	// Frames/Updates: applied by the final attempt.
	Frames  int
	Updates int
	// SkippedFrames/SkippedUpdates: recognized by the final attempt as
	// already applied (0 on a clean first pass).
	SkippedFrames  int
	SkippedUpdates int
	// RateLimited counts 429 rejections; Retries counts replays (equal
	// unless the retry budget ran out mid-sequence).
	RateLimited int
	Retries     int
}

// Pump sends the stream produced by next — next(i) returns frame i and
// whether it exists, and MUST be replayable (same i, same updates:
// server-side dedup matches on content digests). maxRetries bounds the
// replays. Two failure classes replay: the backpressure 429 (waiting
// out Retry-After) and transport-level failures such as a connection
// reset or a response lost in flight (capped exponential backoff) —
// the idempotency key makes both exact. Any other structured rejection
// (400 torn frame, 503 draining) returns immediately.
func Pump(ctx context.Context, client *http.Client, baseURL, key string, next func(frame int) ([]engine.Update, bool), maxRetries int) (PumpStats, error) {
	var stats PumpStats
	for attempt := 0; ; attempt++ {
		s, err := OpenStreamWith(ctx, client, baseURL, StreamOptions{IdempotencyKey: key})
		if err != nil {
			return stats, err
		}
		for i := 0; ; i++ {
			batch, ok := next(i)
			if !ok {
				break
			}
			if err := s.Send(batch); err != nil {
				break // the server closed the stream; Close has the cause
			}
		}
		sum, err := s.Close()
		stats.Frames = sum.Frames
		stats.Updates = sum.Updates
		stats.SkippedFrames = sum.SkippedFrames
		stats.SkippedUpdates = sum.SkippedUpdates
		if err == nil {
			return stats, nil
		}
		var delay time.Duration
		var se *StreamError
		switch {
		case errors.As(err, &se):
			if !se.RateLimited() {
				return stats, err
			}
			stats.RateLimited++
			delay = se.RetryAfter
			if delay <= 0 {
				delay = 100 * time.Millisecond
			}
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			return stats, err
		default:
			// Transport failure: the server may or may not have applied a
			// suffix of what we sent — exactly the ambiguity the key's
			// replay-and-skip resolves.
			delay = min(time.Second, 50*time.Millisecond<<min(attempt, 6))
		}
		if attempt >= maxRetries {
			return stats, err
		}
		stats.Retries++
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return stats, ctx.Err()
		}
	}
}
