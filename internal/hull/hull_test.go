package hull

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLowerSimpleShapes(t *testing.T) {
	tests := []struct {
		name     string
		pts      []Point
		wantXs   []float64
		wantYs   []float64
		wantSegs int
	}{
		{
			name:   "two points",
			pts:    []Point{{0, 1}, {1, 0}},
			wantXs: []float64{0, 1},
			wantYs: []float64{1, 0},
		},
		{
			name:   "middle point above is dropped",
			pts:    []Point{{0, 0}, {0.5, 1}, {1, 0}},
			wantXs: []float64{0, 1},
			wantYs: []float64{0, 0},
		},
		{
			name:   "middle point below is kept",
			pts:    []Point{{0, 0}, {0.5, -1}, {1, 0}},
			wantXs: []float64{0, 0.5, 1},
			wantYs: []float64{0, -1, 0},
		},
		{
			name:   "collinear middle removed",
			pts:    []Point{{0, 0}, {0.5, 0.5}, {1, 1}},
			wantXs: []float64{0, 1},
			wantYs: []float64{0, 1},
		},
		{
			name:   "duplicate x keeps lower y",
			pts:    []Point{{0, 3}, {0, 1}, {1, 0}},
			wantXs: []float64{0, 1},
			wantYs: []float64{1, 0},
		},
		{
			name:   "unsorted input",
			pts:    []Point{{1, 0}, {0, 0}, {0.25, -2}},
			wantXs: []float64{0, 0.25, 1},
			wantYs: []float64{0, -2, 0},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			h, err := Lower(tt.pts)
			if err != nil {
				t.Fatalf("Lower() error: %v", err)
			}
			if h.Len() != len(tt.wantXs) {
				t.Fatalf("Len() = %d, want %d (xs=%v)", h.Len(), len(tt.wantXs), h.xs)
			}
			for i := range tt.wantXs {
				bp := h.Breakpoint(i)
				if bp.X != tt.wantXs[i] || bp.Y != tt.wantYs[i] {
					t.Errorf("breakpoint %d = (%g,%g), want (%g,%g)", i, bp.X, bp.Y, tt.wantXs[i], tt.wantYs[i])
				}
			}
		})
	}
}

func TestLowerErrors(t *testing.T) {
	if _, err := Lower(nil); err == nil {
		t.Error("Lower(nil) should fail")
	}
	if _, err := Lower([]Point{{0, 0}, {1, math.NaN()}}); err == nil {
		t.Error("Lower with NaN should fail")
	}
}

func TestLowerHullProperties(t *testing.T) {
	// Property: hull is convex, below all points, and agrees with the
	// pointwise minimum at the extremes of x.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(40)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{X: rng.Float64(), Y: rng.NormFloat64()}
		}
		h, err := Lower(pts)
		if err != nil {
			return false
		}
		if !h.IsConvex(1e-9) {
			return false
		}
		return h.Below(pts, 1e-9)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHullOfConvexFunctionIsFunction(t *testing.T) {
	// For a convex function, the hull of a dense sample should interpolate
	// the sample closely.
	f := func(x float64) float64 { return (x - 0.3) * (x - 0.3) }
	var pts []Point
	for i := 0; i <= 100; i++ {
		x := float64(i) / 100
		pts = append(pts, Point{x, f(x)})
	}
	h, err := Lower(pts)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.05, 0.31, 0.5, 0.77, 0.99} {
		if got, want := h.Eval(x), f(x); math.Abs(got-want) > 1e-3 {
			t.Errorf("Eval(%g) = %g, want ≈ %g", x, got, want)
		}
	}
}

func TestEvalAndSlopeLeft(t *testing.T) {
	h, err := FromBreakpoints([]float64{0, 1, 2}, []float64{0, -1, 1})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		x         float64
		wantEval  float64
		wantSlope float64
	}{
		{0.5, -0.5, -1},
		{1, -1, -1}, // half-open-left: slope at breakpoint is the left segment's
		{1.5, 0, 2},
		{2, 1, 2},
		{0, 0, -1}, // clamped to first segment
	}
	for _, tt := range tests {
		if got := h.Eval(tt.x); math.Abs(got-tt.wantEval) > 1e-12 {
			t.Errorf("Eval(%g) = %g, want %g", tt.x, got, tt.wantEval)
		}
		if got := h.SlopeLeft(tt.x); math.Abs(got-tt.wantSlope) > 1e-12 {
			t.Errorf("SlopeLeft(%g) = %g, want %g", tt.x, got, tt.wantSlope)
		}
	}
}

func TestIntegralSquaredSlope(t *testing.T) {
	// Slopes: -1 on [0,1], 2 on [1,2]. ∫ slope² = 1 + 4 = 5.
	h, err := FromBreakpoints([]float64{0, 1, 2}, []float64{0, -1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := h.IntegralSquaredSlope(0, 2); math.Abs(got-5) > 1e-12 {
		t.Errorf("IntegralSquaredSlope = %g, want 5", got)
	}
	// Clipped: [0.5, 1.5] -> 0.5*1 + 0.5*4 = 2.5.
	if got := h.IntegralSquaredSlope(0.5, 1.5); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("clipped IntegralSquaredSlope = %g, want 2.5", got)
	}
}

func TestIntegral(t *testing.T) {
	h, err := FromBreakpoints([]float64{0, 1, 2}, []float64{0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Integral(0, 2); math.Abs(got-1) > 1e-12 {
		t.Errorf("Integral = %g, want 1 (triangle area)", got)
	}
	if got := h.Integral(0.5, 1.5); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("clipped Integral = %g, want 0.75", got)
	}
}

func TestFromBreakpointsValidation(t *testing.T) {
	if _, err := FromBreakpoints([]float64{0, 1}, []float64{0}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := FromBreakpoints([]float64{0, 0}, []float64{1, 2}); err == nil {
		t.Error("non-increasing xs should fail")
	}
}

func TestAnchoredHullPassesThroughAnchor(t *testing.T) {
	// The order-optimal construction anchors hulls at (ρ, M) with M at or
	// below the lower-bound value; the rightmost point is always a vertex.
	pts := []Point{{0, 2}, {0.2, 2}, {0.5, 1}, {0.8, 0.4}} // lower-bound samples
	anchor := Point{0.8, 0.1}                              // M < f^(v)(0.8)
	h, err := Lower(append(pts, anchor))
	if err != nil {
		t.Fatal(err)
	}
	last := h.Breakpoint(h.Len() - 1)
	if last != anchor {
		t.Errorf("rightmost hull vertex = %+v, want anchor %+v", last, anchor)
	}
}

func TestZeroValuePiecewiseLinear(t *testing.T) {
	var p PiecewiseLinear
	if p.Eval(0.5) != 0 || p.SlopeLeft(0.5) != 0 || p.IntegralSquaredSlope(0, 1) != 0 {
		t.Error("zero value should behave as the zero function")
	}
	if p.Len() != 0 {
		t.Error("zero value Len should be 0")
	}
}
