// Package hull computes lower convex hulls (greatest convex minorants) of
// planar point sets and exposes them as piecewise-linear functions.
//
// In the paper's framework (Cohen, PODC 2014), the v-optimal estimator for a
// data vector v is the negated slope of the lower hull of the lower-bound
// function f^(v) on (0,1] (Theorem 2.1), and the minimum attainable
// E[f̂²|v] is the integral of the squared hull slope. The order-optimal
// construction of Section 5 repeatedly takes hulls anchored at a point
// (ρ, M) carrying the mass already committed by less-informative outcomes.
package hull

import (
	"fmt"
	"math"
	"sort"
)

// Point is a planar point.
type Point struct {
	X, Y float64
}

// Lower returns the lower convex hull of pts as a piecewise-linear function.
// The hull is the greatest convex function lying on or below every input
// point; its vertex set is a subset of pts. Points sharing an X coordinate
// collapse to the one with minimum Y. At least one point is required.
//
// The input slice is not modified.
func Lower(pts []Point) (PiecewiseLinear, error) {
	if len(pts) == 0 {
		return PiecewiseLinear{}, fmt.Errorf("hull: no points")
	}
	sorted := make([]Point, len(pts))
	copy(sorted, pts)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].X != sorted[j].X {
			return sorted[i].X < sorted[j].X
		}
		return sorted[i].Y < sorted[j].Y
	})
	// Deduplicate by X keeping the minimum Y (which sorts first).
	uniq := sorted[:1]
	for _, p := range sorted[1:] {
		if p.X == uniq[len(uniq)-1].X {
			continue
		}
		if math.IsNaN(p.Y) || math.IsInf(p.Y, 0) || math.IsNaN(p.X) || math.IsInf(p.X, 0) {
			return PiecewiseLinear{}, fmt.Errorf("hull: non-finite input point (%g, %g)", p.X, p.Y)
		}
		uniq = append(uniq, p)
	}
	// Monotone chain: keep vertices with strictly increasing slopes.
	h := make([]Point, 0, len(uniq))
	for _, p := range uniq {
		for len(h) >= 2 && !rightTurn(h[len(h)-2], h[len(h)-1], p) {
			h = h[:len(h)-1]
		}
		h = append(h, p)
	}
	pl := PiecewiseLinear{xs: make([]float64, len(h)), ys: make([]float64, len(h))}
	for i, p := range h {
		pl.xs[i], pl.ys[i] = p.X, p.Y
	}
	return pl, nil
}

// rightTurn reports whether the middle point b lies strictly below the
// segment ac, i.e. keeping b preserves convexity of the lower chain.
func rightTurn(a, b, c Point) bool {
	// Cross product of (b-a) x (c-a); positive means c is above line ab,
	// i.e. the chain turns left at b — convex for a lower hull.
	return (b.X-a.X)*(c.Y-a.Y)-(b.Y-a.Y)*(c.X-a.X) > 0
}

// PiecewiseLinear is a continuous piecewise-linear function given by its
// breakpoints. Hulls returned by Lower are convex (non-decreasing slopes).
// The zero value is an empty function whose methods return zeros.
type PiecewiseLinear struct {
	xs, ys []float64
}

// FromBreakpoints builds a piecewise-linear function directly from sorted
// breakpoints. xs must be strictly increasing and the slices equal length.
func FromBreakpoints(xs, ys []float64) (PiecewiseLinear, error) {
	if len(xs) != len(ys) {
		return PiecewiseLinear{}, fmt.Errorf("hull: breakpoint length mismatch %d vs %d", len(xs), len(ys))
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			return PiecewiseLinear{}, fmt.Errorf("hull: breakpoints not strictly increasing at %d", i)
		}
	}
	cx := make([]float64, len(xs))
	cy := make([]float64, len(ys))
	copy(cx, xs)
	copy(cy, ys)
	return PiecewiseLinear{xs: cx, ys: cy}, nil
}

// Len returns the number of breakpoints.
func (p PiecewiseLinear) Len() int { return len(p.xs) }

// Breakpoint returns the i-th breakpoint.
func (p PiecewiseLinear) Breakpoint(i int) Point { return Point{p.xs[i], p.ys[i]} }

// XMin returns the leftmost breakpoint abscissa.
func (p PiecewiseLinear) XMin() float64 {
	if len(p.xs) == 0 {
		return 0
	}
	return p.xs[0]
}

// XMax returns the rightmost breakpoint abscissa.
func (p PiecewiseLinear) XMax() float64 {
	if len(p.xs) == 0 {
		return 0
	}
	return p.xs[len(p.xs)-1]
}

// Eval evaluates the function at x by linear interpolation. Outside the
// breakpoint range the nearest segment is extrapolated linearly; with a
// single breakpoint the constant value is returned.
func (p PiecewiseLinear) Eval(x float64) float64 {
	n := len(p.xs)
	switch n {
	case 0:
		return 0
	case 1:
		return p.ys[0]
	}
	i := p.segmentLeft(x)
	x0, y0 := p.xs[i], p.ys[i]
	x1, y1 := p.xs[i+1], p.ys[i+1]
	t := (x - x0) / (x1 - x0)
	return y0 + t*(y1-y0)
}

// segmentLeft returns the index i of the segment [xs[i], xs[i+1]] such that
// x lies in (xs[i], xs[i+1]], clamped to the outermost segments. The
// half-open-left convention matches the paper's outcome intervals (a, b].
func (p PiecewiseLinear) segmentLeft(x float64) int {
	n := len(p.xs)
	// sort.SearchFloat64s finds the first index with xs[i] >= x.
	i := sort.SearchFloat64s(p.xs, x)
	// x in (xs[i-1], xs[i]] -> segment i-1.
	switch {
	case i <= 1:
		return 0
	case i >= n:
		return n - 2
	default:
		return i - 1
	}
}

// SlopeLeft returns the slope of the segment covering (x0, x] at x. For a
// convex hull of a lower-bound function, the negated SlopeLeft at u is the
// v-optimal estimate on the outcome with seed u (Theorem 2.1).
func (p PiecewiseLinear) SlopeLeft(x float64) float64 {
	if len(p.xs) < 2 {
		return 0
	}
	i := p.segmentLeft(x)
	return (p.ys[i+1] - p.ys[i]) / (p.xs[i+1] - p.xs[i])
}

// IsConvex reports whether slopes are non-decreasing left to right, with a
// tolerance for floating-point noise relative to the slope magnitudes.
func (p PiecewiseLinear) IsConvex(tol float64) bool {
	prev := math.Inf(-1)
	for i := 0; i+1 < len(p.xs); i++ {
		s := (p.ys[i+1] - p.ys[i]) / (p.xs[i+1] - p.xs[i])
		if s < prev-tol*(1+math.Abs(prev)) {
			return false
		}
		prev = s
	}
	return true
}

// IntegralSquaredSlope integrates slope(x)² over [a, b] clipped to the
// function's domain. For a hull of a lower-bound function on [0,1] this is
// the minimum attainable E[f̂²|v] over unbiased nonnegative estimators.
func (p PiecewiseLinear) IntegralSquaredSlope(a, b float64) float64 {
	if len(p.xs) < 2 || b <= a {
		return 0
	}
	var total float64
	for i := 0; i+1 < len(p.xs); i++ {
		lo := math.Max(a, p.xs[i])
		hi := math.Min(b, p.xs[i+1])
		if hi <= lo {
			continue
		}
		s := (p.ys[i+1] - p.ys[i]) / (p.xs[i+1] - p.xs[i])
		total += s * s * (hi - lo)
	}
	return total
}

// Integral integrates the function itself over [a, b] clipped to the domain
// (trapezoid areas, exact for piecewise-linear).
func (p PiecewiseLinear) Integral(a, b float64) float64 {
	if len(p.xs) < 2 || b <= a {
		return 0
	}
	var total float64
	for i := 0; i+1 < len(p.xs); i++ {
		lo := math.Max(a, p.xs[i])
		hi := math.Min(b, p.xs[i+1])
		if hi <= lo {
			continue
		}
		total += 0.5 * (p.Eval(lo) + p.Eval(hi)) * (hi - lo)
	}
	return total
}

// Below reports whether the function lies on or below all the given points,
// within tolerance. Hulls produced by Lower satisfy this by construction.
func (p PiecewiseLinear) Below(pts []Point, tol float64) bool {
	for _, q := range pts {
		if q.X < p.XMin() || q.X > p.XMax() {
			continue
		}
		if p.Eval(q.X) > q.Y+tol*(1+math.Abs(q.Y)) {
			return false
		}
	}
	return true
}
