// Package sampling implements the weighted-sampling substrate underlying
// the paper's applications: single-instance schemes (Poisson PPS, bottom-k
// with priority or exponential ranks, plain reservoir sampling) and their
// coordinated (shared-seed / permanent-random-numbers) versions, where the
// per-item randomization is a hash of the item key so that samples of
// different instances are maximally correlated.
//
// Coordinated PPS restricted to a single item is exactly the monotone
// sampling scheme of the paper: the tuple of the item's weights across
// instances is observed through thresholds τ_i(u) = u·τ*_i driven by one
// shared seed u. TupleOutcome captures that per-item view and is the bridge
// to the estimators in internal/core via internal/funcs.
package sampling
