package sampling

import (
	"fmt"
	"math"
	"sort"
)

// Item is a keyed weight in one instance.
type Item struct {
	Key    uint64
	Weight float64
}

// PPS is Poisson probability-proportional-to-size sampling with threshold
// Tau: an item with weight w is included with probability min(1, w/Tau).
// Under coordination, inclusion is decided by the shared seed: include iff
// u ≤ w/Tau, i.e. iff w ≥ u·Tau — the linear threshold functions
// τ(u) = u·τ* of the paper.
type PPS struct {
	// Tau is the PPS threshold τ*; must be positive.
	Tau float64
	// Hash supplies the coordinated per-item seeds.
	Hash SeedHash
}

// NewPPS returns a coordinated PPS sampler.
func NewPPS(tau float64, hash SeedHash) (PPS, error) {
	if tau <= 0 || math.IsNaN(tau) || math.IsInf(tau, 0) {
		return PPS{}, fmt.Errorf("sampling: PPS threshold %g must be positive and finite", tau)
	}
	return PPS{Tau: tau, Hash: hash}, nil
}

// Prob returns the inclusion probability of weight w.
func (p PPS) Prob(w float64) float64 {
	if w <= 0 {
		return 0
	}
	return math.Min(1, w/p.Tau)
}

// Includes reports whether an item with the given key and weight is sampled.
func (p PPS) Includes(key uint64, w float64) bool {
	return w > 0 && p.Hash.U(key) <= p.Prob(w)
}

// Sample returns the sampled subset of items, preserving input order.
func (p PPS) Sample(items []Item) []Item {
	out := make([]Item, 0, len(items))
	for _, it := range items {
		if p.Includes(it.Key, it.Weight) {
			out = append(out, it)
		}
	}
	return out
}

// BottomK is bottom-k sampling: the k items with the smallest ranks are
// kept. With coordinated seeds, bottom-k samples of near-identical
// instances are near-identical (the LSH property the paper describes).
type BottomK struct {
	// K is the sample size; must be positive.
	K int
	// Kind selects the rank family.
	Kind RankKind
	// Hash supplies coordinated per-item seeds.
	Hash SeedHash
}

// NewBottomK returns a coordinated bottom-k sampler.
func NewBottomK(k int, kind RankKind, hash SeedHash) (BottomK, error) {
	if k <= 0 {
		return BottomK{}, fmt.Errorf("sampling: bottom-k size %d must be positive", k)
	}
	switch kind {
	case RankPriority, RankExponential, RankUniform:
	default:
		return BottomK{}, fmt.Errorf("sampling: unknown rank kind %d", kind)
	}
	return BottomK{K: k, Kind: kind, Hash: hash}, nil
}

// Ranked pairs an item with its rank.
type Ranked struct {
	Item
	Rank float64
}

// Sample returns the k lowest-ranked items (all items if fewer than k have
// finite rank), sorted by increasing rank, together with the inclusion
// threshold: the (k+1)-st smallest rank, or +Inf when fewer than k+1 items
// have finite ranks. Conditioned on the other items' seeds, an item is
// included iff its rank is below the threshold — which reduces bottom-k to
// a per-item monotone scheme as in the paper's footnote 1.
func (b BottomK) Sample(items []Item) (sample []Ranked, threshold float64) {
	ranked := make([]Ranked, 0, len(items))
	for _, it := range items {
		r := Rank(b.Kind, b.Hash.U(it.Key), it.Weight)
		if !math.IsInf(r, 1) {
			ranked = append(ranked, Ranked{Item: it, Rank: r})
		}
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].Rank < ranked[j].Rank })
	threshold = math.Inf(1)
	if len(ranked) > b.K {
		threshold = ranked[b.K].Rank
		ranked = ranked[:b.K]
	}
	return ranked, threshold
}

// InclusionProb returns, for an item with weight w, the conditional
// inclusion probability given the threshold t (the k-th order statistic of
// the other items' ranks): P(rank(u,w) < t) over u ~ U(0,1].
func (b BottomK) InclusionProb(w, t float64) float64 {
	if w <= 0 || t <= 0 {
		return 0
	}
	if math.IsInf(t, 1) {
		return 1
	}
	switch b.Kind {
	case RankUniform:
		return math.Min(1, t)
	case RankPriority:
		return math.Min(1, t*w)
	case RankExponential:
		return -math.Expm1(-t * w) // 1 - e^{-tw}
	default:
		panic("sampling: unknown rank kind")
	}
}
