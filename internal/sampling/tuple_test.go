package sampling

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTupleSchemeValidation(t *testing.T) {
	if _, err := NewTupleScheme(nil); err == nil {
		t.Error("empty scheme should fail")
	}
	if _, err := NewTupleScheme([]float64{1, 0}); err == nil {
		t.Error("zero threshold should fail")
	}
	if _, err := NewTupleScheme([]float64{1, math.Inf(1)}); err == nil {
		t.Error("infinite threshold should fail")
	}
	s, err := NewTupleScheme([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.R() != 2 {
		t.Errorf("R = %d, want 2", s.R())
	}
	if got := s.Threshold(1, 0.25); got != 0.5 {
		t.Errorf("Threshold(1, 0.25) = %g, want 0.5", got)
	}
}

func TestTupleSampleKnowledge(t *testing.T) {
	s := UniformTuple(3)
	v := []float64{0.95, 0.15, 0.25}
	tests := []struct {
		rho  float64
		want []bool
	}{
		{0.10, []bool{true, true, true}},
		{0.20, []bool{true, false, true}},
		{0.30, []bool{true, false, false}},
		{0.96, []bool{false, false, false}},
	}
	for _, tt := range tests {
		o := s.Sample(v, tt.rho)
		for i := range tt.want {
			if o.Known[i] != tt.want[i] {
				t.Errorf("rho=%g entry %d: known=%v, want %v", tt.rho, i, o.Known[i], tt.want[i])
			}
			if o.Known[i] && o.Vals[i] != v[i] {
				t.Errorf("rho=%g entry %d: val=%g, want %g", tt.rho, i, o.Vals[i], v[i])
			}
		}
	}
}

func TestTupleExample2Outcomes(t *testing.T) {
	// Example 2 of the paper: instances as rows, PPS τ*=1, fixed per-item
	// seeds; checks the printed outcome patterns for all eight items.
	s := UniformTuple(3)
	type itemCase struct {
		name string
		v    []float64
		u    float64
		want []bool
	}
	cases := []itemCase{
		{"a", []float64{0.95, 0.15, 0.25}, 0.32, []bool{true, false, false}},
		{"b", []float64{0, 0.44, 0}, 0.21, []bool{false, true, false}},
		{"c", []float64{0.23, 0, 0}, 0.04, []bool{true, false, false}},
		{"d", []float64{0.70, 0.80, 0.10}, 0.23, []bool{true, true, false}},
		{"e", []float64{0.10, 0.05, 0}, 0.84, []bool{false, false, false}},
		{"f", []float64{0.42, 0.50, 0.22}, 0.70, []bool{false, false, false}},
		{"g", []float64{0, 0.20, 0}, 0.15, []bool{false, true, false}},
		{"h", []float64{0.32, 0, 0}, 0.64, []bool{false, false, false}},
	}
	for _, c := range cases {
		o := s.Sample(c.v, c.u)
		for i := range c.want {
			if o.Known[i] != c.want[i] {
				t.Errorf("item %s entry %d: known=%v, want %v", c.name, i, o.Known[i], c.want[i])
			}
		}
	}
}

func TestTupleAtCoarsensMonotonically(t *testing.T) {
	// Monotone sampling: information only shrinks as the seed grows, and
	// At(u) must agree with sampling directly at u.
	s := UniformTuple(2)
	prop := func(v1Bits, v2Bits, rBits, uBits uint16) bool {
		v := []float64{float64(v1Bits%1000) / 1000, float64(v2Bits%1000) / 1000}
		rho := (float64(rBits%999) + 1) / 1000
		u := rho + (1-rho)*float64(uBits%1000)/1000
		if u <= 0 || u > 1 {
			return true
		}
		derived := s.Sample(v, rho).At(u)
		direct := s.Sample(v, u)
		return derived.Same(direct)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestTupleAtPanicsBelowSeed(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("At below outcome seed should panic")
		}
	}()
	s := UniformTuple(1)
	s.Sample([]float64{0.5}, 0.5).At(0.4)
}

func TestTupleBound(t *testing.T) {
	s, err := NewTupleScheme([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	o := s.Sample([]float64{0.9, 0.1}, 0.5)
	if !o.Known[0] || o.Bound(0) != 0.9 {
		t.Errorf("entry 0 should be known with bound 0.9, got %v %g", o.Known[0], o.Bound(0))
	}
	if o.Known[1] || o.Bound(1) != 1.0 {
		t.Errorf("entry 1 should be unknown with bound u·τ = 1.0, got %v %g", o.Known[1], o.Bound(1))
	}
	if o.NumKnown() != 1 {
		t.Errorf("NumKnown = %d, want 1", o.NumKnown())
	}
}

func TestTupleOutcomeSameDistinguishes(t *testing.T) {
	s := UniformTuple(2)
	a := s.Sample([]float64{0.6, 0.2}, 0.4)
	b := s.Sample([]float64{0.6, 0.3}, 0.4) // same pattern: entry 1 unknown
	if !a.Same(b) {
		t.Error("outcomes with identical knowledge should be Same")
	}
	c := s.Sample([]float64{0.6, 0.5}, 0.4) // entry 1 known now
	if a.Same(c) {
		t.Error("outcomes with different knowledge should differ")
	}
	d := s.Sample([]float64{0.6, 0.2}, 0.3)
	if a.Same(d) {
		t.Error("outcomes at different seeds should differ")
	}
}

func TestZeroWeightNeverKnown(t *testing.T) {
	s := UniformTuple(2)
	for _, rho := range []float64{0.001, 0.5, 1} {
		o := s.Sample([]float64{0, 0.4}, rho)
		if o.Known[0] {
			t.Errorf("zero entry sampled at rho=%g", rho)
		}
	}
}

func TestSampleIntoMatchesSample(t *testing.T) {
	// SampleInto must produce bit-identical outcomes to Sample and fully
	// overwrite dirty backing (the engine's arenas are reused snapshots'
	// memory in spirit — no stale truth may leak through).
	s, err := NewTupleScheme([]float64{1, 0.5, 2})
	if err != nil {
		t.Fatal(err)
	}
	known := []bool{true, true, true}
	vals := []float64{9, 9, 9}
	for _, tc := range []struct {
		v   []float64
		rho float64
	}{
		{[]float64{0.95, 0.15, 0.25}, 0.1},
		{[]float64{0.95, 0.15, 0.25}, 0.9},
		{[]float64{0, 0.5, 1}, 0.5},
		{[]float64{0, 0, 0}, 1},
	} {
		want := s.Sample(tc.v, tc.rho)
		got := s.SampleInto(tc.v, tc.rho, known, vals)
		if !got.Same(want) {
			t.Errorf("v=%v rho=%g: SampleInto %+v != Sample %+v", tc.v, tc.rho, got, want)
		}
		if &got.Known[0] != &known[0] || &got.Vals[0] != &vals[0] {
			t.Error("SampleInto did not alias the provided backing")
		}
	}
}

func TestSampleIntoRejectsBadBacking(t *testing.T) {
	s := UniformTuple(2)
	defer func() {
		if recover() == nil {
			t.Error("mismatched backing lengths should panic")
		}
	}()
	s.SampleInto([]float64{1, 2}, 0.5, make([]bool, 1), make([]float64, 2))
}
