package sampling

import (
	"fmt"
	"math"
)

// TupleScheme is the per-item view of coordinated PPS sampling of r
// instances: entry i of the tuple is observed iff v_i ≥ u·Tau[i], where u
// is the item's shared seed. This is precisely the monotone sampling scheme
// the paper analyzes (Section 1, "Coordinated shared-seed sampling").
type TupleScheme struct {
	// Tau holds the per-instance PPS thresholds τ*_i (all positive).
	Tau []float64
}

// NewTupleScheme validates thresholds and returns the scheme.
func NewTupleScheme(tau []float64) (TupleScheme, error) {
	if len(tau) == 0 {
		return TupleScheme{}, fmt.Errorf("sampling: tuple scheme needs at least one instance")
	}
	out := make([]float64, len(tau))
	for i, t := range tau {
		if t <= 0 || math.IsNaN(t) || math.IsInf(t, 0) {
			return TupleScheme{}, fmt.Errorf("sampling: tau[%d] = %g must be positive and finite", i, t)
		}
		out[i] = t
	}
	return TupleScheme{Tau: out}, nil
}

// UniformTuple returns the scheme with τ*_i ≡ 1 for r instances — the
// setting of the paper's Examples 2–4.
func UniformTuple(r int) TupleScheme {
	tau := make([]float64, r)
	for i := range tau {
		tau[i] = 1
	}
	return TupleScheme{Tau: tau}
}

// R returns the number of instances.
func (s TupleScheme) R() int { return len(s.Tau) }

// Threshold returns τ_i(u) = u·τ*_i, the exclusive upper bound on an
// unsampled entry at seed u.
func (s TupleScheme) Threshold(i int, u float64) float64 { return u * s.Tau[i] }

// TupleOutcome is the outcome S(v, u) of sampling one item's tuple: the
// seed, the scheme, and per-entry knowledge. For an unsampled entry the
// data value is known to lie in [0, Threshold(i, Rho)).
type TupleOutcome struct {
	// Scheme is the sampling scheme that produced the outcome.
	Scheme TupleScheme
	// Rho is the seed the sample was drawn with.
	Rho float64
	// Known[i] reports whether entry i was sampled.
	Known []bool
	// Vals[i] is the entry value where Known[i]; zero otherwise.
	Vals []float64
}

// Sample draws the outcome of the tuple v at seed rho. The tuple length
// must equal the scheme arity and rho must lie in (0, 1].
func (s TupleScheme) Sample(v []float64, rho float64) TupleOutcome {
	return s.SampleInto(v, rho, make([]bool, len(v)), make([]float64, len(v)))
}

// SampleInto draws the same outcome as Sample but writes the per-entry
// knowledge into the caller-provided backing slices (each of length
// len(v)) instead of allocating; the returned outcome aliases known and
// vals. The streaming engine's snapshot reduction backs every outcome of
// a snapshot with two shared arena arrays through it. Both paths share
// this one loop, so arena-backed and allocated outcomes are bit-identical
// by construction.
func (s TupleScheme) SampleInto(v []float64, rho float64, known []bool, vals []float64) TupleOutcome {
	if len(v) != s.R() {
		panic(fmt.Sprintf("sampling: tuple arity %d != scheme arity %d", len(v), s.R()))
	}
	if len(known) != len(v) || len(vals) != len(v) {
		panic(fmt.Sprintf("sampling: backing lengths %d/%d != tuple arity %d", len(known), len(vals), len(v)))
	}
	if rho <= 0 || rho > 1 {
		panic(fmt.Sprintf("sampling: seed %g outside (0,1]", rho))
	}
	o := TupleOutcome{Scheme: s, Rho: rho, Known: known, Vals: vals}
	for i, w := range v {
		if w >= s.Threshold(i, rho) && w > 0 {
			known[i] = true
			vals[i] = w
		} else {
			known[i] = false
			vals[i] = 0
		}
	}
	return o
}

// At re-derives the (coarser) outcome at seed u ≥ Rho from this outcome:
// exactly the information the estimators are allowed to use. An entry known
// at Rho is known at u iff its value clears the larger threshold; an entry
// unknown at Rho stays unknown.
func (o TupleOutcome) At(u float64) TupleOutcome {
	if u < o.Rho {
		panic(fmt.Sprintf("sampling: At(%g) below outcome seed %g", u, o.Rho))
	}
	c := TupleOutcome{
		Scheme: o.Scheme,
		Rho:    u,
		Known:  make([]bool, len(o.Known)),
		Vals:   make([]float64, len(o.Vals)),
	}
	for i := range o.Known {
		if o.Known[i] && o.Vals[i] >= o.Scheme.Threshold(i, u) {
			c.Known[i] = true
			c.Vals[i] = o.Vals[i]
		}
	}
	return c
}

// Bound returns the exclusive upper bound on entry i implied by the
// outcome: the value itself when known (inclusive, returned as-is), or the
// threshold at Rho when unknown.
func (o TupleOutcome) Bound(i int) float64 {
	if o.Known[i] {
		return o.Vals[i]
	}
	return o.Scheme.Threshold(i, o.Rho)
}

// LowerVector returns the pointwise-minimal data vector consistent with the
// outcome: known entries carry their value, unknown entries (known only to
// lie in [0, Threshold)) are taken as 0. For a monotone f this vector
// attains the outcome's lower bound; the registry's plug-in v-optimal
// estimator customizes to it.
func (o TupleOutcome) LowerVector() []float64 {
	v := make([]float64, len(o.Vals))
	for i, known := range o.Known {
		if known {
			v[i] = o.Vals[i]
		}
	}
	return v
}

// NumKnown returns the number of sampled entries.
func (o TupleOutcome) NumKnown() int {
	n := 0
	for _, k := range o.Known {
		if k {
			n++
		}
	}
	return n
}

// Same reports whether two outcomes carry identical information (same seed,
// knowledge pattern, values and scheme arity). Estimator honesty tests use
// it: consistent vectors sharing an outcome must share estimates.
func (o TupleOutcome) Same(p TupleOutcome) bool {
	if o.Rho != p.Rho || len(o.Known) != len(p.Known) {
		return false
	}
	for i := range o.Known {
		if o.Known[i] != p.Known[i] {
			return false
		}
		if o.Known[i] && o.Vals[i] != p.Vals[i] {
			return false
		}
		if o.Scheme.Tau[i] != p.Scheme.Tau[i] {
			return false
		}
	}
	return true
}
