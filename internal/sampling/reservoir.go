package sampling

import (
	"fmt"
	"math/rand"
)

// Reservoir is classic streaming uniform sampling without replacement
// (Vitter's Algorithm R): after observing n items, each is in the reservoir
// with probability min(1, k/n). It is the stream-facing member of the
// substrate; the coordinated analyses in this repository use PPS and
// BottomK, but reservoir sampling is part of the paper's scheme inventory
// (Section 1) and feeds the samplers' shared tests.
type Reservoir struct {
	k     int
	n     int
	items []Item
	rng   *rand.Rand
}

// NewReservoir returns a reservoir of capacity k driven by the given
// deterministic source seed.
func NewReservoir(k int, seed int64) (*Reservoir, error) {
	if k <= 0 {
		return nil, fmt.Errorf("sampling: reservoir size %d must be positive", k)
	}
	return &Reservoir{
		k:     k,
		items: make([]Item, 0, k),
		rng:   rand.New(rand.NewSource(seed)),
	}, nil
}

// Observe offers one stream item to the reservoir.
func (r *Reservoir) Observe(it Item) {
	r.n++
	if len(r.items) < r.k {
		r.items = append(r.items, it)
		return
	}
	if j := r.rng.Intn(r.n); j < r.k {
		r.items[j] = it
	}
}

// Len returns the number of items currently held.
func (r *Reservoir) Len() int { return len(r.items) }

// N returns the number of items observed so far.
func (r *Reservoir) N() int { return r.n }

// Items returns a copy of the current reservoir contents.
func (r *Reservoir) Items() []Item {
	out := make([]Item, len(r.items))
	copy(out, r.items)
	return out
}
