package sampling

import "math"

// SeedHash derives the shared uniform seed of an item from its key and a
// scheme-level salt, using a splitmix64-style finalizer. Coordination
// ("permanent random numbers") falls out of determinism: every instance
// sampled with the same salt sees the same seed for the same item.
type SeedHash struct {
	salt uint64
}

// NewSeedHash returns a hasher with the given salt. Distinct salts give
// independent-looking seed assignments (used for independent replications).
func NewSeedHash(salt uint64) SeedHash {
	return SeedHash{salt: splitmix64(salt ^ 0x9e3779b97f4a7c15)}
}

// U returns the item's seed in the open interval (0, 1]. The zero value is
// excluded so that seeds are valid for the monotone sampling domain (0, 1].
func (h SeedHash) U(key uint64) float64 {
	x := splitmix64(key ^ h.salt)
	// 53 random bits → (0,1]: (x>>11 + 1) / 2^53.
	return float64(x>>11+1) / (1 << 53)
}

// UString returns the seed of a string key.
func (h SeedHash) UString(key string) float64 {
	return h.U(fnv64(key))
}

// StringKey maps a string key to the uint64 key space, such that
// h.U(StringKey(s)) == h.UString(s) for every hasher h. The streaming
// engine and its HTTP API use it to address items by name.
func StringKey(s string) uint64 { return fnv64(s) }

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func fnv64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// Rank families convert the uniform seed and an item weight into a sampling
// rank; bottom-k keeps the k smallest ranks. They match the single-instance
// schemes cited in the paper's Section 1.
type RankKind int

const (
	// RankPriority is u/w: priority (sequential Poisson) sampling.
	RankPriority RankKind = iota + 1
	// RankExponential is -ln(u)/w: successive weighted sampling without
	// replacement.
	RankExponential
	// RankUniform is u itself: uniform sampling / distinct sketches.
	RankUniform
)

// Rank computes the rank of an item with weight w and seed u under the
// chosen family. Weights must be positive for the weighted families; a
// non-positive weight yields +Inf (never sampled).
func Rank(kind RankKind, u, w float64) float64 {
	switch kind {
	case RankUniform:
		return u
	case RankPriority:
		if w <= 0 {
			return math.Inf(1)
		}
		return u / w
	case RankExponential:
		if w <= 0 {
			return math.Inf(1)
		}
		return -math.Log(u) / w
	default:
		panic("sampling: unknown rank kind")
	}
}
