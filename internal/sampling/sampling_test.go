package sampling

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSeedHashRangeAndDeterminism(t *testing.T) {
	h := NewSeedHash(42)
	seen := make(map[float64]int)
	for key := uint64(0); key < 20000; key++ {
		u := h.U(key)
		if u <= 0 || u > 1 {
			t.Fatalf("seed %g outside (0,1]", u)
		}
		seen[u]++
	}
	if len(seen) < 19990 {
		t.Errorf("too many seed collisions: %d distinct of 20000", len(seen))
	}
	if h.U(7) != h.U(7) {
		t.Error("seed hash must be deterministic")
	}
	if NewSeedHash(1).U(7) == NewSeedHash(2).U(7) {
		t.Error("different salts should give different seeds (w.h.p.)")
	}
}

func TestSeedHashUniformity(t *testing.T) {
	// Mean should be ~1/2 and variance ~1/12 for uniform seeds.
	h := NewSeedHash(7)
	const n = 100000
	var sum, sumsq float64
	for key := uint64(0); key < n; key++ {
		u := h.U(key)
		sum += u
		sumsq += u * u
	}
	mean := sum / n
	varc := sumsq/n - mean*mean
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("seed mean = %g, want ≈ 0.5", mean)
	}
	if math.Abs(varc-1.0/12) > 0.005 {
		t.Errorf("seed variance = %g, want ≈ 1/12", varc)
	}
}

func TestSeedHashStringAgreesWithItself(t *testing.T) {
	h := NewSeedHash(3)
	if h.UString("alpha") != h.UString("alpha") {
		t.Error("string seeds must be deterministic")
	}
	if h.UString("alpha") == h.UString("beta") {
		t.Error("distinct strings should get distinct seeds (w.h.p.)")
	}
}

func TestPPSInclusionProbability(t *testing.T) {
	// Empirical inclusion frequency over many items ≈ min(1, w/τ).
	p, err := NewPPS(2, NewSeedHash(11))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []float64{0.2, 0.5, 1, 1.9, 2, 3} {
		const n = 60000
		count := 0
		for key := uint64(0); key < n; key++ {
			if p.Includes(key, w) {
				count++
			}
		}
		got := float64(count) / n
		want := math.Min(1, w/2)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("w=%g: empirical inclusion %g, want %g", w, got, want)
		}
	}
}

func TestPPSZeroWeightNeverSampled(t *testing.T) {
	p, err := NewPPS(1, NewSeedHash(5))
	if err != nil {
		t.Fatal(err)
	}
	for key := uint64(0); key < 1000; key++ {
		if p.Includes(key, 0) {
			t.Fatal("zero-weight item sampled")
		}
	}
}

func TestPPSValidation(t *testing.T) {
	for _, tau := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewPPS(tau, NewSeedHash(0)); err == nil {
			t.Errorf("NewPPS(%g) should fail", tau)
		}
	}
}

func TestCoordinationIdenticalInstancesIdenticalSamples(t *testing.T) {
	// The defining property of coordination: two instances with identical
	// weights produce identical samples because seeds are shared.
	p, err := NewPPS(1, NewSeedHash(99))
	if err != nil {
		t.Fatal(err)
	}
	items := make([]Item, 500)
	for i := range items {
		items[i] = Item{Key: uint64(i), Weight: float64(i%10+1) / 10}
	}
	a := p.Sample(items)
	b := p.Sample(items)
	if len(a) != len(b) {
		t.Fatalf("coordinated samples differ in size: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("coordinated samples differ at %d", i)
		}
	}
}

func TestCoordinationLSHProperty(t *testing.T) {
	// Samples of similar instances overlap more than samples of dissimilar
	// ones (the locality-sensitive property motivating coordination).
	hash := NewSeedHash(123)
	p, err := NewPPS(4, hash)
	if err != nil {
		t.Fatal(err)
	}
	base := make([]Item, 2000)
	for i := range base {
		base[i] = Item{Key: uint64(i), Weight: 1 + float64(i%7)}
	}
	perturb := func(factor float64, every int) []Item {
		out := make([]Item, len(base))
		copy(out, base)
		for i := every - 1; i < len(out); i += every {
			out[i].Weight *= factor
		}
		return out
	}
	similar := perturb(1.05, 3) // 1/3 of items changed by 5%
	dissimilar := perturb(4, 2) // 1/2 of items changed 4-fold
	overlap := func(a, b []Item) float64 {
		in := make(map[uint64]bool, len(a))
		for _, it := range a {
			in[it.Key] = true
		}
		common := 0
		for _, it := range b {
			if in[it.Key] {
				common++
			}
		}
		union := len(a) + len(b) - common
		if union == 0 {
			return 1
		}
		return float64(common) / float64(union)
	}
	sBase := p.Sample(base)
	jSim := overlap(sBase, p.Sample(similar))
	jDis := overlap(sBase, p.Sample(dissimilar))
	if jSim <= jDis {
		t.Errorf("similarity of samples should track data similarity: similar=%g dissimilar=%g", jSim, jDis)
	}
	if jSim < 0.8 {
		t.Errorf("5%% perturbation should keep samples mostly identical, got Jaccard %g", jSim)
	}
}

func TestBottomKExactSize(t *testing.T) {
	for _, kind := range []RankKind{RankPriority, RankExponential, RankUniform} {
		b, err := NewBottomK(16, kind, NewSeedHash(6))
		if err != nil {
			t.Fatal(err)
		}
		items := make([]Item, 300)
		for i := range items {
			items[i] = Item{Key: uint64(i), Weight: float64(i + 1)}
		}
		sample, thr := b.Sample(items)
		if len(sample) != 16 {
			t.Errorf("kind %d: sample size %d, want 16", kind, len(sample))
		}
		if math.IsInf(thr, 1) {
			t.Errorf("kind %d: threshold should be finite with %d items", kind, len(items))
		}
		for i := 1; i < len(sample); i++ {
			if sample[i].Rank < sample[i-1].Rank {
				t.Fatalf("kind %d: sample not sorted by rank", kind)
			}
		}
		for _, s := range sample {
			if s.Rank >= thr {
				t.Errorf("kind %d: sampled rank %g ≥ threshold %g", kind, s.Rank, thr)
			}
		}
	}
}

func TestBottomKFewerItemsThanK(t *testing.T) {
	b, err := NewBottomK(10, RankPriority, NewSeedHash(6))
	if err != nil {
		t.Fatal(err)
	}
	items := []Item{{1, 1}, {2, 2}, {3, 0}} // zero weight excluded
	sample, thr := b.Sample(items)
	if len(sample) != 2 {
		t.Errorf("sample size %d, want 2", len(sample))
	}
	if !math.IsInf(thr, 1) {
		t.Errorf("threshold %g, want +Inf", thr)
	}
}

func TestBottomKWeightBiasesInclusion(t *testing.T) {
	// Heavier items should be sampled more often under priority ranks.
	b, err := NewBottomK(50, RankPriority, NewSeedHash(17))
	if err != nil {
		t.Fatal(err)
	}
	heavyHits, lightHits := 0, 0
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		b.Hash = NewSeedHash(uint64(trial))
		items := make([]Item, 1000)
		for i := range items {
			w := 1.0
			if i < 100 {
				w = 20
			}
			items[i] = Item{Key: uint64(i), Weight: w}
		}
		sample, _ := b.Sample(items)
		for _, s := range sample {
			if s.Key < 100 {
				heavyHits++
			} else {
				lightHits++
			}
		}
	}
	if heavyHits <= lightHits {
		t.Errorf("heavy items under-sampled: heavy=%d light=%d", heavyHits, lightHits)
	}
}

func TestBottomKInclusionProbFormulas(t *testing.T) {
	b := BottomK{K: 4, Kind: RankExponential}
	if got, want := b.InclusionProb(2, 0.5), 1-math.Exp(-1); math.Abs(got-want) > 1e-12 {
		t.Errorf("exp inclusion = %g, want %g", got, want)
	}
	b.Kind = RankPriority
	if got := b.InclusionProb(0.5, 0.4); got != 0.2 {
		t.Errorf("priority inclusion = %g, want 0.2", got)
	}
	if got := b.InclusionProb(10, 0.4); got != 1 {
		t.Errorf("priority inclusion capped = %g, want 1", got)
	}
	b.Kind = RankUniform
	if got := b.InclusionProb(3, 0.25); got != 0.25 {
		t.Errorf("uniform inclusion = %g, want 0.25", got)
	}
	if got := b.InclusionProb(3, math.Inf(1)); got != 1 {
		t.Errorf("infinite threshold inclusion = %g, want 1", got)
	}
	if got := b.InclusionProb(0, 0.5); got != 0 {
		t.Errorf("zero weight inclusion = %g, want 0", got)
	}
}

func TestReservoirUniformity(t *testing.T) {
	// Each of n items should land in the reservoir with probability k/n.
	const k, n, trials = 5, 50, 4000
	counts := make([]int, n)
	for trial := 0; trial < trials; trial++ {
		r, err := NewReservoir(k, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			r.Observe(Item{Key: uint64(i), Weight: 1})
		}
		for _, it := range r.Items() {
			counts[it.Key]++
		}
	}
	want := float64(trials) * k / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("item %d sampled %d times, want ≈ %g", i, c, want)
		}
	}
}

func TestReservoirSmallStream(t *testing.T) {
	r, err := NewReservoir(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		r.Observe(Item{Key: uint64(i), Weight: 1})
	}
	if r.Len() != 4 || r.N() != 4 {
		t.Errorf("Len=%d N=%d, want 4, 4", r.Len(), r.N())
	}
}

func TestValidationErrors(t *testing.T) {
	if _, err := NewBottomK(0, RankPriority, NewSeedHash(0)); err == nil {
		t.Error("NewBottomK(0) should fail")
	}
	if _, err := NewBottomK(3, RankKind(99), NewSeedHash(0)); err == nil {
		t.Error("unknown rank kind should fail")
	}
	if _, err := NewReservoir(0, 1); err == nil {
		t.Error("NewReservoir(0) should fail")
	}
}

func TestRankFamiliesMonotoneInWeight(t *testing.T) {
	// Larger weight ⇒ smaller rank ⇒ more likely sampled, for both
	// weighted families, at any fixed seed.
	prop := func(seedBits uint32, w1Bits, w2Bits uint16) bool {
		u := (float64(seedBits) + 1) / (math.MaxUint32 + 1)
		w1 := float64(w1Bits)/1000 + 0.001
		w2 := w1 + float64(w2Bits)/1000 + 0.001
		return Rank(RankPriority, u, w2) <= Rank(RankPriority, u, w1) &&
			Rank(RankExponential, u, w2) <= Rank(RankExponential, u, w1)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
