package sampling

import (
	"math"
	"sort"
)

// This file holds the bottom-k → monotone-outcome reduction shared by the
// batch sampler (dataset.SampleBottomK) and the streaming sketch engine
// (internal/engine). Both must agree bit-for-bit so that incrementally
// maintained sketches answer exactly as a from-scratch sample of the same
// data: the paper's footnote 1 conditions on the seeds of the other items,
// under which item k is included in an instance iff its rank is below the
// k-th smallest rank among the other items — a linear (PPS) threshold.

// KSmallest returns the min(k, #finite) smallest finite values of xs,
// sorted ascending. +Inf entries (absent or zero-weight items) are skipped.
func KSmallest(xs []float64, k int) []float64 {
	finite := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsInf(x, 1) {
			finite = append(finite, x)
		}
	}
	sort.Float64s(finite)
	if len(finite) > k {
		finite = finite[:k]
	}
	return finite
}

// CondThreshold returns the conditional inclusion threshold t of an item
// with the given rank: the k-th smallest rank among the *other* items,
// derived from smallest — the (at most k+1) smallest ranks of the whole
// instance as produced by KSmallest(ranks, k+1). When fewer than k other
// items exist the item is always included and t is +Inf.
func CondThreshold(smallest []float64, k int, rank float64) float64 {
	t := math.Inf(1)
	switch {
	case len(smallest) > k:
		// k-th among others: skip over the item itself when it is one of
		// the k smallest.
		if rank <= smallest[k-1] {
			t = smallest[k]
		} else {
			t = smallest[k-1]
		}
	case len(smallest) == k:
		if rank <= smallest[k-1] {
			t = math.Inf(1) // fewer than k others: always included
		} else {
			t = smallest[k-1]
		}
	}
	return t
}

// TauFromThreshold converts a conditional rank threshold t into the PPS
// threshold τ* = 1/t of the item's TupleScheme. An infinite t (always
// included) maps to an arbitrarily permissive positive τ*, since
// NewTupleScheme requires finite positive thresholds. A subnormal t (an
// item with a near-overflow weight, rank u/w ~ 1e-309) would make 1/t
// overflow to +Inf and invalidate the scheme; it is clamped to the most
// restrictive finite τ* instead. Inclusion at that extreme is slightly
// more permissive than the exact rank comparison, but both reduction
// paths (batch and streaming) apply the same clamp, so they still agree
// bit-for-bit instead of crashing.
func TauFromThreshold(t float64) float64 {
	if math.IsInf(t, 1) {
		return 1e-12
	}
	if tau := 1 / t; !math.IsInf(tau, 1) {
		return tau
	}
	return math.MaxFloat64
}
