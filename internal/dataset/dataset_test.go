package dataset

import (
	"math"
	"testing"

	"repro/internal/funcs"
	"repro/internal/numeric"
	"repro/internal/sampling"
	"repro/internal/stats"
)

func TestExample1Queries(t *testing.T) {
	// The printed query values of Example 1 (the paper's G({b,d}) ≈ 1.18 is
	// an arithmetic slip; the defined expression evaluates to 1.4144, see
	// EXPERIMENTS.md).
	d := Example1()
	rg1, err := funcs.NewRG(1)
	if err != nil {
		t.Fatal(err)
	}
	rg2, err := funcs.NewRG(2)
	if err != nil {
		t.Fatal(err)
	}
	rg1p, err := funcs.NewRGPlus(1)
	if err != nil {
		t.Fatal(err)
	}
	two := []int{0, 1} // instances v1, v2

	// The paper prints 0.71, but |0−0.44| + |0.23−0| + |0.10−0.05| = 0.72;
	// a printed-value slip (see EXPERIMENTS.md).
	l1 := sumOver(d, rg1, two, Example1Items("bce"))
	if !numeric.EqualWithin(l1, 0.72, 1e-9) {
		t.Errorf("L1({b,c,e}) = %g, want 0.72", l1)
	}
	l22 := sumOver(d, rg2, two, Example1Items("cfh"))
	if !numeric.EqualWithin(l22, 0.23*0.23+0.08*0.08+0.32*0.32, 1e-9) {
		t.Errorf("L2²({c,f,h}) = %g, want ≈ 0.1617", l22)
	}
	if l2 := math.Sqrt(l22); math.Abs(l2-0.40) > 0.005 {
		t.Errorf("L2({c,f,h}) = %g, want ≈ 0.40", l2)
	}
	// The paper prints 0.235, but 0 + 0.23 + 0.05 = 0.28; another printed
	// slip (see EXPERIMENTS.md).
	l1p := sumOver(d, rg1p, two, Example1Items("bce"))
	if !numeric.EqualWithin(l1p, 0.28, 1e-9) {
		t.Errorf("L1+({b,c,e}) = %g, want 0.28", l1p)
	}
	g, err := funcs.NewLinComb([]float64{1, -2, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	gv := d.ExactSum(g, Example1Items("bd"))
	if !numeric.EqualWithin(gv, 1.4144, 1e-9) {
		t.Errorf("G({b,d}) = %g, want 1.4144", gv)
	}
}

func sumOver(d Dataset, f funcs.F, instances, items []int) float64 {
	var sum float64
	for _, k := range items {
		sum += f.Value(d.SubTuple(k, instances))
	}
	return sum
}

func TestExactLpMatchesExactSum(t *testing.T) {
	d := Example1()
	rg2, err := funcs.NewRG(2)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(sumOver(d, rg2, []int{0, 1}, Example1Items("abcdefgh")))
	got := d.ExactLp(0, 1, 2, nil)
	if !numeric.EqualWithin(got, want, 1e-12) {
		t.Errorf("ExactLp = %g, want %g", got, want)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Error("empty dataset should fail")
	}
	if _, err := New(nil, [][]float64{{1, 2}, {1}}); err == nil {
		t.Error("ragged dataset should fail")
	}
	if _, err := New(nil, [][]float64{{1, -2}}); err == nil {
		t.Error("negative weight should fail")
	}
	if _, err := New([]string{"a"}, [][]float64{{1}, {2}}); err == nil {
		t.Error("name count mismatch should fail")
	}
}

func TestStableGeneratorIsSimilar(t *testing.T) {
	d := Stable(StableConfig{N: 5000, Seed: 1})
	if d.R() != 2 || d.N() != 5000 {
		t.Fatalf("shape = %d×%d, want 2×5000", d.R(), d.N())
	}
	// Relative L1 difference should be small for the stable generator.
	var diff, tot float64
	for k := 0; k < d.N(); k++ {
		diff += math.Abs(d.W[0][k] - d.W[1][k])
		tot += math.Max(d.W[0][k], d.W[1][k])
	}
	if ratio := diff / tot; ratio > 0.15 {
		t.Errorf("stable generator relative difference %g, want < 0.15", ratio)
	}
}

func TestFlowsGeneratorIsDissimilar(t *testing.T) {
	d := Flows(FlowsConfig{N: 5000, Seed: 1})
	var diff, tot float64
	for k := 0; k < d.N(); k++ {
		diff += math.Abs(d.W[0][k] - d.W[1][k])
		tot += math.Max(d.W[0][k], d.W[1][k])
	}
	if ratio := diff / tot; ratio < 0.4 {
		t.Errorf("flows generator relative difference %g, want > 0.4", ratio)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := Flows(FlowsConfig{N: 100, Seed: 7})
	b := Flows(FlowsConfig{N: 100, Seed: 7})
	for k := 0; k < 100; k++ {
		if a.W[0][k] != b.W[0][k] || a.W[1][k] != b.W[1][k] {
			t.Fatal("generator not deterministic")
		}
	}
}

func TestSampleCoordinatedAccounting(t *testing.T) {
	d := Example1()
	scheme := sampling.UniformTuple(3)
	cs, err := SampleCoordinated(d, nil, scheme, sampling.NewSeedHash(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.Outcomes) != d.N() {
		t.Fatalf("outcomes = %d, want %d", len(cs.Outcomes), d.N())
	}
	// Active entries in Example 1: count positives.
	want := 0
	for _, row := range d.W {
		for _, x := range row {
			if x > 0 {
				want++
			}
		}
	}
	if cs.TotalEntries != want {
		t.Errorf("TotalEntries = %d, want %d", cs.TotalEntries, want)
	}
	if cs.SampledEntries < 0 || cs.SampledEntries > cs.TotalEntries {
		t.Errorf("SampledEntries = %d outside [0, %d]", cs.SampledEntries, cs.TotalEntries)
	}
}

func TestSampleCoordinatedArityMismatch(t *testing.T) {
	d := Example1()
	if _, err := SampleCoordinated(d, []int{0, 1}, sampling.UniformTuple(3), sampling.NewSeedHash(1)); err == nil {
		t.Error("arity mismatch should fail")
	}
}

func TestEstimateSumUnbiasedAcrossSeeds(t *testing.T) {
	// Sum-aggregate unbiasedness: averaging the L* sum estimate over many
	// independent seed hashes approaches the exact sum (Section 1's
	// reduction of sum estimation to per-item monotone estimation).
	d := Stable(StableConfig{N: 300, Seed: 3})
	f, err := funcs.NewRGPlus(1)
	if err != nil {
		t.Fatal(err)
	}
	scheme := sampling.UniformTuple(2)
	exact := d.ExactSum(f, nil)
	var acc stats.Welford
	const trials = 800
	for trial := 0; trial < trials; trial++ {
		cs, err := SampleCoordinated(d, nil, scheme, sampling.NewSeedHash(uint64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		est, err := cs.EstimateSum(f, KindLStar, nil)
		if err != nil {
			t.Fatal(err)
		}
		acc.Add(est)
	}
	if math.Abs(acc.Mean()-exact) > 4*acc.StdErr()+0.01*exact {
		t.Errorf("mean L* sum = %g ± %g, exact = %g", acc.Mean(), acc.StdErr(), exact)
	}
}

func TestEstimateSumHTAndUStarRun(t *testing.T) {
	d := Stable(StableConfig{N: 50, Seed: 9})
	f, err := funcs.NewRGPlus(2)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := SampleCoordinated(d, nil, sampling.UniformTuple(2), sampling.NewSeedHash(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []EstimatorKind{KindLStar, KindUStar, KindHT} {
		est, err := cs.EstimateSum(f, kind, nil)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if est < 0 || math.IsNaN(est) {
			t.Errorf("%v: estimate %g invalid", kind, est)
		}
	}
	if _, err := cs.EstimateSum(f, EstimatorKind(99), nil); err == nil {
		t.Error("unknown estimator kind should fail")
	}
}

func TestEstimatorKindString(t *testing.T) {
	if KindLStar.String() != "L*" || KindUStar.String() != "U*" || KindHT.String() != "HT" {
		t.Error("EstimatorKind names wrong")
	}
}
