package dataset

import (
	"math"
	"testing"

	"repro/internal/funcs"
	"repro/internal/sampling"
	"repro/internal/stats"
)

func TestSampleBottomKValidation(t *testing.T) {
	d := Example1()
	if _, err := SampleBottomK(d, 0, sampling.NewSeedHash(1)); err == nil {
		t.Error("k = 0 should fail")
	}
}

func TestSampleBottomKMatchesSamplerMembership(t *testing.T) {
	// Per-item outcome knowledge must agree with the actual bottom-k
	// samples of each instance: entry (i, key) is known iff key is among
	// the k lowest priority ranks of instance i.
	d := Stable(StableConfig{N: 60, Seed: 2})
	const k = 10
	hash := sampling.NewSeedHash(11)
	cs, err := SampleBottomK(d, k, hash)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d.R(); i++ {
		items := make([]sampling.Item, d.N())
		for key := range items {
			items[key] = sampling.Item{Key: uint64(key), Weight: d.W[i][key]}
		}
		b, err := sampling.NewBottomK(k, sampling.RankPriority, hash)
		if err != nil {
			t.Fatal(err)
		}
		sample, _ := b.Sample(items)
		inSample := make(map[uint64]bool, len(sample))
		for _, s := range sample {
			inSample[s.Key] = true
		}
		for key := 0; key < d.N(); key++ {
			if got, want := cs.Outcomes[key].Known[i], inSample[uint64(key)]; got != want {
				t.Errorf("instance %d item %d: outcome known=%v, sampler=%v", i, key, got, want)
			}
		}
	}
}

func TestSampleBottomKSizeAccounting(t *testing.T) {
	d := Flows(FlowsConfig{N: 200, Seed: 5})
	const k = 25
	cs, err := SampleBottomK(d, k, sampling.NewSeedHash(3))
	if err != nil {
		t.Fatal(err)
	}
	// Each instance keeps at most k items.
	perInstance := make([]int, d.R())
	for key, o := range cs.Outcomes {
		for i, known := range o.Known {
			if known {
				perInstance[i]++
			}
		}
		_ = key
	}
	for i, count := range perInstance {
		if count > k {
			t.Errorf("instance %d: %d sampled items exceed k=%d", i, count, k)
		}
	}
}

func TestSampleBottomKSumEstimateUnbiased(t *testing.T) {
	// The footnote-1 reduction: per-item L* estimates over bottom-k
	// conditional outcomes sum to an (approximately) unbiased estimate.
	d := Stable(StableConfig{N: 80, Seed: 4})
	f, err := funcs.NewRGPlus(1)
	if err != nil {
		t.Fatal(err)
	}
	exact := d.ExactSum(f, nil)
	var acc stats.Welford
	const trials = 250
	for trial := 0; trial < trials; trial++ {
		cs, err := SampleBottomK(d, 20, sampling.NewSeedHash(uint64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		est, err := cs.EstimateSum(f, KindLStar, nil)
		if err != nil {
			t.Fatal(err)
		}
		acc.Add(est)
	}
	if math.Abs(acc.Mean()-exact) > 4*acc.StdErr()+0.02*exact {
		t.Errorf("mean bottom-k L* sum = %g ± %g, exact = %g", acc.Mean(), acc.StdErr(), exact)
	}
}
