package dataset

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/funcs"
	"repro/internal/sampling"
)

// EstimatorKind selects the per-item estimator used in sum aggregation.
type EstimatorKind int

const (
	// KindLStar is the L* estimator (Section 4) — the competitive default.
	KindLStar EstimatorKind = iota + 1
	// KindUStar is the U* estimator (Section 6) — customized for large
	// values.
	KindUStar
	// KindHT is Horvitz–Thompson — the classic baseline L* dominates.
	KindHT
)

// String implements fmt.Stringer.
func (k EstimatorKind) String() string {
	switch k {
	case KindLStar:
		return "L*"
	case KindUStar:
		return "U*"
	case KindHT:
		return "HT"
	default:
		return fmt.Sprintf("EstimatorKind(%d)", int(k))
	}
}

// CoordinatedSample is the materialized coordinated sample of a dataset:
// per-item tuple outcomes sharing the per-item hashed seeds, plus
// bookkeeping for storage accounting.
type CoordinatedSample struct {
	// Outcomes[k] is item k's tuple outcome.
	Outcomes []sampling.TupleOutcome
	// SampledEntries counts stored (instance, item) pairs.
	SampledEntries int
	// TotalEntries counts active (positive) entries in the dataset.
	TotalEntries int
}

// SampleCoordinated draws the coordinated PPS sample of the instances in
// the dataset under the given scheme, using hashed per-item seeds.
// instances selects a subset of rows (nil = all).
func SampleCoordinated(d Dataset, instances []int, scheme sampling.TupleScheme, hash sampling.SeedHash) (CoordinatedSample, error) {
	if instances == nil {
		instances = make([]int, d.R())
		for i := range instances {
			instances[i] = i
		}
	}
	if scheme.R() != len(instances) {
		return CoordinatedSample{}, fmt.Errorf("dataset: scheme arity %d != %d selected instances", scheme.R(), len(instances))
	}
	cs := CoordinatedSample{Outcomes: make([]sampling.TupleOutcome, d.N())}
	for k := 0; k < d.N(); k++ {
		u := hash.U(uint64(k))
		tuple := d.SubTuple(k, instances)
		o := scheme.Sample(tuple, u)
		cs.Outcomes[k] = o
		cs.SampledEntries += o.NumKnown()
		for _, x := range tuple {
			if x > 0 {
				cs.TotalEntries++
			}
		}
	}
	return cs, nil
}

// EstimateSum applies the selected per-item estimator to every outcome and
// sums: the estimator for Σ_k f(v^(k)) of Section 1. Unbiasedness of the
// per-item estimates makes the sum unbiased; pairwise independence of the
// hashed seeds makes variances add.
func (cs CoordinatedSample) EstimateSum(f funcs.F, kind EstimatorKind, items []int) (float64, error) {
	if items == nil {
		items = allItems(len(cs.Outcomes))
	}
	var sum float64
	for _, k := range items {
		o := cs.Outcomes[k]
		switch kind {
		case KindLStar:
			sum += funcs.EstimateLStar(f, o)
		case KindUStar:
			sum += funcs.EstimateUStar(f, o, core.DefaultGrid())
		case KindHT:
			sum += funcs.EstimateHT(f, o)
		default:
			return 0, fmt.Errorf("dataset: unknown estimator kind %d", int(kind))
		}
	}
	return sum, nil
}
