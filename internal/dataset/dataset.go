// Package dataset provides multi-instance weighted datasets (the matrix
// form of the paper's Section 1), exact query evaluation, and synthetic
// generators standing in for the proprietary corpora of the follow-up
// experiments (Section 7): a *stable* generator mimicking the surnames
// corpus (instances highly similar) and a *flows* generator mimicking IP
// traffic (heavy-tailed weights, churn, large differences). See DESIGN.md
// §4.3 for the substitution rationale.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/funcs"
)

// Dataset is r instances (rows) over n items (columns).
type Dataset struct {
	// Names labels the instances (optional, sized r if present).
	Names []string
	// W[i][k] is the weight of item k in instance i; all rows equal length.
	W [][]float64
}

// New validates rectangularity and nonnegativity.
func New(names []string, w [][]float64) (Dataset, error) {
	if len(w) == 0 || len(w[0]) == 0 {
		return Dataset{}, fmt.Errorf("dataset: need at least one instance and one item")
	}
	n := len(w[0])
	for i, row := range w {
		if len(row) != n {
			return Dataset{}, fmt.Errorf("dataset: row %d has %d items, want %d", i, len(row), n)
		}
		for k, x := range row {
			if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
				return Dataset{}, fmt.Errorf("dataset: weight [%d][%d] = %g invalid", i, k, x)
			}
		}
	}
	if names != nil && len(names) != len(w) {
		return Dataset{}, fmt.Errorf("dataset: %d names for %d instances", len(names), len(w))
	}
	return Dataset{Names: names, W: w}, nil
}

// R returns the number of instances.
func (d Dataset) R() int { return len(d.W) }

// N returns the number of items.
func (d Dataset) N() int { return len(d.W[0]) }

// Tuple returns item k's value tuple across instances.
func (d Dataset) Tuple(k int) []float64 {
	t := make([]float64, d.R())
	for i := range d.W {
		t[i] = d.W[i][k]
	}
	return t
}

// SubTuple returns item k's tuple restricted to the given instances.
func (d Dataset) SubTuple(k int, instances []int) []float64 {
	t := make([]float64, len(instances))
	for j, i := range instances {
		t[j] = d.W[i][k]
	}
	return t
}

// ExactSum evaluates Σ_{k∈items} f(tuple_k) exactly; items nil means all.
func (d Dataset) ExactSum(f funcs.F, items []int) float64 {
	if items == nil {
		items = allItems(d.N())
	}
	var sum float64
	for _, k := range items {
		sum += f.Value(d.Tuple(k))
	}
	return sum
}

// ExactLp evaluates the Lp difference between two instances over items:
// (Σ |v_a − v_b|^p)^(1/p).
func (d Dataset) ExactLp(a, b int, p float64, items []int) float64 {
	if items == nil {
		items = allItems(d.N())
	}
	var sum float64
	for _, k := range items {
		sum += math.Pow(math.Abs(d.W[a][k]-d.W[b][k]), p)
	}
	return math.Pow(sum, 1/p)
}

// MaxWeight returns the largest weight in the dataset (used to choose PPS
// thresholds).
func (d Dataset) MaxWeight() float64 {
	mx := 0.0
	for _, row := range d.W {
		for _, x := range row {
			mx = math.Max(mx, x)
		}
	}
	return mx
}

func allItems(n int) []int {
	items := make([]int, n)
	for k := range items {
		items[k] = k
	}
	return items
}

// Example1 returns the 3×8 dataset of the paper's Example 1.
func Example1() Dataset {
	d, err := New(
		[]string{"v1", "v2", "v3"},
		[][]float64{
			{0.95, 0, 0.23, 0.70, 0.10, 0.42, 0, 0.32},
			{0.15, 0.44, 0, 0.80, 0.05, 0.50, 0.20, 0},
			{0.25, 0, 0, 0.10, 0, 0.22, 0, 0},
		})
	if err != nil {
		panic("dataset: Example1 construction failed: " + err.Error())
	}
	return d
}

// Example1Items maps the paper's item letters to column indices.
func Example1Items(letters string) []int {
	items := make([]int, 0, len(letters))
	for _, c := range letters {
		if c < 'a' || c > 'h' {
			panic(fmt.Sprintf("dataset: item %q outside a-h", c))
		}
		items = append(items, int(c-'a'))
	}
	return items
}

// StableConfig parameterizes the surnames-like generator: two instances
// whose weights differ by small relative perturbations.
type StableConfig struct {
	// N is the number of items.
	N int
	// Alpha is the Zipf exponent of the base weights. Default 1.0.
	Alpha float64
	// Sigma is the lognormal perturbation scale between instances.
	// Default 0.05 (≈5% relative change).
	Sigma float64
	// Churn is the probability an item disappears from (or newly joins)
	// the second instance. Zero (the default) matches a surnames-like
	// corpus where the item universe is fixed; per-item variance there is
	// dominated by the small persisting differences, which is exactly the
	// regime the L* estimator is optimized for.
	Churn float64
	// Seed drives the deterministic generator.
	Seed int64
}

// Stable generates a two-instance dataset with highly similar instances.
func Stable(cfg StableConfig) Dataset {
	if cfg.Alpha == 0 {
		cfg.Alpha = 1.0
	}
	if cfg.Sigma == 0 {
		cfg.Sigma = 0.05
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	w1 := make([]float64, cfg.N)
	w2 := make([]float64, cfg.N)
	for k := 0; k < cfg.N; k++ {
		base := math.Pow(float64(k+1), -cfg.Alpha)
		w1[k] = base
		switch {
		case rng.Float64() < cfg.Churn/2:
			w2[k] = 0 // dropped
		case rng.Float64() < cfg.Churn/2:
			w1[k] = 0 // newly joined in instance 2
			w2[k] = base
		default:
			w2[k] = base * math.Exp(cfg.Sigma*rng.NormFloat64())
		}
	}
	d, err := New([]string{"year1", "year2"}, [][]float64{w1, w2})
	if err != nil {
		panic("dataset: Stable generation failed: " + err.Error())
	}
	return d
}

// FlowsConfig parameterizes the IP-flow-like generator: heavy-tailed
// weights with churn and large independent fluctuations.
type FlowsConfig struct {
	// N is the number of flow keys.
	N int
	// TailIndex is the Pareto tail index of flow sizes. Default 1.2.
	TailIndex float64
	// Churn is the probability a flow is present in only one instance.
	// Default 0.7: most flow keys appear in only one time window, which is
	// the regime (per-item tuples with a zero entry) where the U*
	// estimator is v-optimal and L* pays its competitive factor.
	Churn float64
	// Sigma is the lognormal fluctuation scale for persisting flows.
	// Default 2.5 (persisting flows still change a lot).
	Sigma float64
	// Seed drives the deterministic generator.
	Seed int64
}

// Flows generates a two-instance dataset with dissimilar instances.
func Flows(cfg FlowsConfig) Dataset {
	if cfg.TailIndex == 0 {
		cfg.TailIndex = 1.2
	}
	if cfg.Churn == 0 {
		cfg.Churn = 0.7
	}
	if cfg.Sigma == 0 {
		cfg.Sigma = 2.5
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	pareto := func() float64 {
		return math.Pow(1-rng.Float64(), -1/cfg.TailIndex) - 1
	}
	w1 := make([]float64, cfg.N)
	w2 := make([]float64, cfg.N)
	for k := 0; k < cfg.N; k++ {
		switch {
		case rng.Float64() < cfg.Churn/2:
			w1[k] = pareto()
		case rng.Float64() < cfg.Churn/2:
			w2[k] = pareto()
		default:
			base := pareto()
			w1[k] = base
			w2[k] = base * math.Exp(cfg.Sigma*rng.NormFloat64())
		}
	}
	d, err := New([]string{"epoch1", "epoch2"}, [][]float64{w1, w2})
	if err != nil {
		panic("dataset: Flows generation failed: " + err.Error())
	}
	return d
}
