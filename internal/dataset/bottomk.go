package dataset

import (
	"fmt"

	"repro/internal/sampling"
)

// SampleBottomK draws coordinated bottom-k samples (priority ranks
// rank = u/w, shared per-item seeds) of every instance and reduces them to
// per-item monotone outcomes following the paper's footnote 1: conditioned
// on the seeds of the other items, item k is included in instance i iff
// its rank is below t_ik, the k-th smallest rank among the other items —
// equivalently iff w_ik ≥ u_k/t_ik, a linear threshold τ*_ik = 1/t_ik.
// Each item therefore gets its own TupleScheme; the estimators consume the
// outcomes exactly as with PPS. The reduction itself (sampling.KSmallest,
// sampling.CondThreshold, sampling.TauFromThreshold) is shared with the
// streaming engine, which must reproduce these outcomes bit-for-bit.
func SampleBottomK(d Dataset, k int, hash sampling.SeedHash) (CoordinatedSample, error) {
	if k <= 0 {
		return CoordinatedSample{}, fmt.Errorf("dataset: bottom-k size %d must be positive", k)
	}
	n := d.N()
	r := d.R()
	seeds := make([]float64, n)
	for key := 0; key < n; key++ {
		seeds[key] = hash.U(uint64(key))
	}
	// Per instance: every item's conditional threshold t_ik (k-th smallest
	// rank among the other items), derived from the k+1 smallest ranks.
	thresholds := make([][]float64, r)
	for i := 0; i < r; i++ {
		ranks := make([]float64, n)
		for key := 0; key < n; key++ {
			ranks[key] = sampling.Rank(sampling.RankPriority, seeds[key], d.W[i][key])
		}
		smallest := sampling.KSmallest(ranks, k+1)
		thresholds[i] = make([]float64, n)
		for key := 0; key < n; key++ {
			thresholds[i][key] = sampling.CondThreshold(smallest, k, ranks[key])
		}
	}
	cs := CoordinatedSample{Outcomes: make([]sampling.TupleOutcome, n)}
	for key := 0; key < n; key++ {
		tau := make([]float64, r)
		for i := 0; i < r; i++ {
			tau[i] = sampling.TauFromThreshold(thresholds[i][key])
		}
		scheme, err := sampling.NewTupleScheme(tau)
		if err != nil {
			return CoordinatedSample{}, fmt.Errorf("dataset: item %d scheme: %w", key, err)
		}
		o := scheme.Sample(d.Tuple(key), seeds[key])
		cs.Outcomes[key] = o
		cs.SampledEntries += o.NumKnown()
		for i := 0; i < r; i++ {
			if d.W[i][key] > 0 {
				cs.TotalEntries++
			}
		}
	}
	return cs, nil
}
