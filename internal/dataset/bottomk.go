package dataset

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sampling"
)

// SampleBottomK draws coordinated bottom-k samples (priority ranks
// rank = u/w, shared per-item seeds) of every instance and reduces them to
// per-item monotone outcomes following the paper's footnote 1: conditioned
// on the seeds of the other items, item k is included in instance i iff
// its rank is below t_ik, the k-th smallest rank among the other items —
// equivalently iff w_ik ≥ u_k/t_ik, a linear threshold τ*_ik = 1/t_ik.
// Each item therefore gets its own TupleScheme; the estimators consume the
// outcomes exactly as with PPS.
func SampleBottomK(d Dataset, k int, hash sampling.SeedHash) (CoordinatedSample, error) {
	if k <= 0 {
		return CoordinatedSample{}, fmt.Errorf("dataset: bottom-k size %d must be positive", k)
	}
	n := d.N()
	r := d.R()
	seeds := make([]float64, n)
	for key := 0; key < n; key++ {
		seeds[key] = hash.U(uint64(key))
	}
	// Per instance: every item's conditional threshold t_ik (k-th smallest
	// rank among the other items), derived from the k+1 smallest ranks.
	thresholds := make([][]float64, r)
	for i := 0; i < r; i++ {
		ranks := make([]float64, n)
		for key := 0; key < n; key++ {
			ranks[key] = sampling.Rank(sampling.RankPriority, seeds[key], d.W[i][key])
		}
		smallest := kSmallest(ranks, k+1)
		thresholds[i] = make([]float64, n)
		for key := 0; key < n; key++ {
			t := math.Inf(1)
			switch {
			case len(smallest) > k:
				// k-th among others: skip over the item itself when it is
				// one of the k smallest.
				if ranks[key] <= smallest[k-1] {
					t = smallest[k]
				} else {
					t = smallest[k-1]
				}
			case len(smallest) == k:
				if ranks[key] <= smallest[k-1] {
					t = math.Inf(1) // fewer than k others: always included
				} else {
					t = smallest[k-1]
				}
			}
			thresholds[i][key] = t
		}
	}
	cs := CoordinatedSample{Outcomes: make([]sampling.TupleOutcome, n)}
	for key := 0; key < n; key++ {
		tau := make([]float64, r)
		for i := 0; i < r; i++ {
			t := thresholds[i][key]
			if math.IsInf(t, 1) {
				// Always included: an arbitrarily permissive threshold.
				tau[i] = 1e-12
			} else {
				tau[i] = 1 / t
			}
		}
		scheme, err := sampling.NewTupleScheme(tau)
		if err != nil {
			return CoordinatedSample{}, fmt.Errorf("dataset: item %d scheme: %w", key, err)
		}
		o := scheme.Sample(d.Tuple(key), seeds[key])
		cs.Outcomes[key] = o
		cs.SampledEntries += o.NumKnown()
		for i := 0; i < r; i++ {
			if d.W[i][key] > 0 {
				cs.TotalEntries++
			}
		}
	}
	return cs, nil
}

// kSmallest returns the min(k, len) smallest finite values of xs, sorted
// ascending.
func kSmallest(xs []float64, k int) []float64 {
	finite := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsInf(x, 1) {
			finite = append(finite, x)
		}
	}
	sort.Float64s(finite)
	if len(finite) > k {
		finite = finite[:k]
	}
	return finite
}
