package server

// Tests for the failure-domain serving surface: ingest backpressure
// (token buckets + in-flight budget, the structured 429 contract),
// stream idempotency replay, the /readyz readiness probe, and the
// degraded block every snapshot-backed response must carry when the
// snapshot source serves a partial cluster view.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/sampling"
	"repro/internal/store"
)

// postJSON posts a JSON body and returns status + decoded envelope.
func postRawJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp, out
}

func ingestBody(n int, from int) map[string]any {
	ups := make([]map[string]any, n)
	for i := range ups {
		ups[i] = map[string]any{"instance": i % 2, "id": from + i, "weight": 1.5}
	}
	return map[string]any{"updates": ups}
}

// errEnvelope mirrors the structured error envelope's 429 fields.
type errEnvelope struct {
	Error struct {
		Code              string  `json:"code"`
		Message           string  `json:"message"`
		RetryAfterSeconds float64 `json:"retry_after_seconds"`
		AppliedFrames     *int    `json:"applied_frames"`
		AppliedUpdates    *int    `json:"applied_updates"`
	} `json:"error"`
}

func TestIngestRateLimit(t *testing.T) {
	_, ts, eng := subTestServer(t, Config{IngestRate: 10, IngestBurst: 20})

	resp, out := postRawJSON(t, ts.URL+"/v1/ingest", ingestBody(20, 0))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("burst-sized batch refused: %d: %s", resp.StatusCode, out)
	}
	resp, out = postRawJSON(t, ts.URL+"/v1/ingest", ingestBody(20, 100))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget batch got %d, want 429: %s", resp.StatusCode, out)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After header")
	} else if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want whole seconds ≥ 1", ra)
	}
	var env errEnvelope
	if err := json.Unmarshal(out, &env); err != nil {
		t.Fatalf("unparseable 429 body %s: %v", out, err)
	}
	if env.Error.Code != "rate_limited" || env.Error.RetryAfterSeconds <= 0 {
		t.Fatalf("429 envelope = %+v, want code rate_limited with a positive retry hint", env.Error)
	}
	if env.Error.AppliedFrames != nil {
		t.Fatalf("/v1/ingest 429 carries stream progress fields: %+v", env.Error)
	}
	if got := eng.Stats().Ingests; got != 20 {
		t.Fatalf("engine ingested %d, want only the admitted batch (20)", got)
	}
}

// TestStreamRateLimitReportsProgress pins the mid-stream 429 contract:
// the refusal names the applied prefix so the client resumes instead of
// guessing, exactly like the torn-frame contract.
func TestStreamRateLimitReportsProgress(t *testing.T) {
	s, ts, eng := subTestServer(t, Config{IngestRate: 5, IngestBurst: 10})
	frame1 := make([]engine.Update, 10)
	frame2 := make([]engine.Update, 10)
	for i := range frame1 {
		frame1[i] = engine.Update{Instance: i % 2, Key: uint64(i), Weight: 2}
		frame2[i] = engine.Update{Instance: i % 2, Key: uint64(50 + i), Weight: 2}
	}
	resp, out := postStream(t, ts, streamBody(frame1, frame2))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second frame got %d, want 429: %s", resp.StatusCode, out)
	}
	var env errEnvelope
	if err := json.Unmarshal(out, &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.AppliedFrames == nil || *env.Error.AppliedFrames != 1 ||
		env.Error.AppliedUpdates == nil || *env.Error.AppliedUpdates != 10 {
		t.Fatalf("mid-stream 429 progress = %+v, want 1 frame / 10 updates applied", env.Error)
	}
	if env.Error.RetryAfterSeconds <= 0 || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("mid-stream 429 without retry hint: %+v", env.Error)
	}
	if got := eng.Stats().Ingests; got != 10 {
		t.Fatalf("engine ingested %d, want the admitted first frame kept (10)", got)
	}
	if f := s.wire.streamFrames.Load(); f != 1 {
		t.Fatalf("wire counted %d frames, want 1", f)
	}
}

// TestIngestInflightBudget holds the single in-flight slot open with a
// pipe-fed stream and verifies concurrent write work answers 429 until
// the slot frees.
func TestIngestInflightBudget(t *testing.T) {
	_, ts, _ := subTestServer(t, Config{IngestInflight: 1})

	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/stream", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", store.StreamContentType)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	if _, err := pw.Write(store.AppendStreamHeader(nil)); err != nil {
		t.Fatal(err)
	}

	// The open stream owns the only slot; both write endpoints refuse.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, out := postRawJSON(t, ts.URL+"/v1/ingest", ingestBody(1, 0))
		if resp.StatusCode == http.StatusTooManyRequests {
			var env errEnvelope
			if err := json.Unmarshal(out, &env); err != nil || env.Error.Code != "rate_limited" {
				t.Fatalf("in-flight 429 envelope %s: %v", out, err)
			}
			break
		}
		// The stream goroutine may not have claimed the slot yet.
		if time.Now().After(deadline) {
			t.Fatalf("ingest never hit the in-flight budget (last status %d)", resp.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp, out := postStream(t, ts, streamBody([]engine.Update{{Instance: 0, Key: 9, Weight: 1}}))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second stream got %d, want 429: %s", resp.StatusCode, out)
	}

	// Slot freed: writes flow again.
	pw.Close()
	wg.Wait()
	resp, out = postRawJSON(t, ts.URL+"/v1/ingest", ingestBody(1, 0))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest after slot freed got %d: %s", resp.StatusCode, out)
	}
}

func postStreamKeyed(t *testing.T, ts *httptest.Server, key string, body []byte) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", store.StreamContentType)
	req.Header.Set("Idempotency-Key", key)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp, out
}

type streamSummary struct {
	Frames         int `json:"frames"`
	Updates        int `json:"updates"`
	SkippedFrames  int `json:"skipped_frames"`
	SkippedUpdates int `json:"skipped_updates"`
}

// TestStreamIdempotentReplay pins satellite (b): a replayed keyed stream
// is recognized frame by frame — engine ingests and wire counters count
// each logical frame exactly once — while a fresh key or fresh content
// under the same key applies normally.
func TestStreamIdempotentReplay(t *testing.T) {
	s, ts, eng := subTestServer(t, Config{})
	f1 := []engine.Update{{Instance: 0, Key: 1, Weight: 2}, {Instance: 1, Key: 2, Weight: 3}}
	f2 := []engine.Update{{Instance: 0, Key: 3, Weight: 4}}
	body := streamBody(f1, f2)

	resp, out := postStreamKeyed(t, ts, "retry-1", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first pass: %d: %s", resp.StatusCode, out)
	}
	var sum streamSummary
	if err := json.Unmarshal(out, &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Frames != 2 || sum.Updates != 3 || sum.SkippedFrames != 0 {
		t.Fatalf("first pass summary %+v, want 2 frames applied", sum)
	}

	// Replay, same key: everything skips, nothing re-applies.
	resp, out = postStreamKeyed(t, ts, "retry-1", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replay: %d: %s", resp.StatusCode, out)
	}
	if err := json.Unmarshal(out, &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Frames != 0 || sum.Updates != 0 || sum.SkippedFrames != 2 || sum.SkippedUpdates != 3 {
		t.Fatalf("replay summary %+v, want 2 frames / 3 updates skipped", sum)
	}
	if got := eng.Stats().Ingests; got != 3 {
		t.Fatalf("engine ingested %d after replay, want 3 (counted once)", got)
	}
	if f, u := s.wire.streamFrames.Load(), s.wire.streamUpdates.Load(); f != 2 || u != 3 {
		t.Fatalf("wire frames=%d updates=%d after replay, want 2/3", f, u)
	}
	if d := s.wire.streamDeduped.Load(); d != 2 {
		t.Fatalf("deduped counter = %d, want 2", d)
	}

	// Same key, extended stream: the old prefix skips, the new frame
	// applies — the resume-after-partial-apply shape.
	f3 := []engine.Update{{Instance: 1, Key: 4, Weight: 5}}
	resp, out = postStreamKeyed(t, ts, "retry-1", streamBody(f1, f2, f3))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("extended replay: %d: %s", resp.StatusCode, out)
	}
	if err := json.Unmarshal(out, &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Frames != 1 || sum.Updates != 1 || sum.SkippedFrames != 2 {
		t.Fatalf("extended replay summary %+v, want 1 new frame applied over 2 skips", sum)
	}

	// Same position and key but different content (a colliding key):
	// digest mismatch, applies normally.
	alt := []engine.Update{{Instance: 0, Key: 99, Weight: 9}}
	resp, out = postStreamKeyed(t, ts, "retry-2", streamBody(alt))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh key: %d: %s", resp.StatusCode, out)
	}
	if err := json.Unmarshal(out, &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Frames != 1 || sum.SkippedFrames != 0 {
		t.Fatalf("fresh key summary %+v, want a normal apply", sum)
	}
}

func TestReadyz(t *testing.T) {
	t.Run("plain node is ready once serving", func(t *testing.T) {
		_, ts, _ := subTestServer(t, Config{})
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("readyz = %d, want 200", resp.StatusCode)
		}
	})
	t.Run("failing readiness check answers 503", func(t *testing.T) {
		ready := errors.New("read-policy floor unmet: 1/3 nodes reachable")
		var on bool
		_, ts, _ := subTestServer(t, Config{Ready: func(context.Context) error {
			if on {
				return nil
			}
			return ready
		}})
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("readyz with failing check = %d, want 503", resp.StatusCode)
		}
		if !bytes.Contains(body, []byte("floor unmet")) {
			t.Fatalf("readyz 503 does not surface the cause: %s", body)
		}
		// Liveness is NOT readiness: /healthz stays 200 throughout.
		resp, err = http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz = %d while unready, want 200", resp.StatusCode)
		}
		on = true
		resp, err = http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("readyz after recovery = %d, want 200", resp.StatusCode)
		}
	})
	t.Run("draining answers 503", func(t *testing.T) {
		s, ts, _ := subTestServer(t, Config{})
		s.Drain()
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("readyz while draining = %d, want 503", resp.StatusCode)
		}
	})
}

// degradedSource is a SnapshotSource that serves a plain engine view
// labeled with a fixed degraded block — the server-side seam the cluster
// coordinator plugs into.
type degradedSource struct {
	eng *engine.Engine
	deg *cluster.Degraded
}

func (d degradedSource) AcquireSnapshot(ctx context.Context) (engine.SnapshotView, error) {
	return d.eng.FreshView(), nil
}

func (d degradedSource) AcquireSnapshotDegraded(ctx context.Context) (engine.SnapshotView, *cluster.Degraded, error) {
	return d.eng.FreshView(), d.deg, nil
}

// TestDegradedBlockOnResponses verifies every snapshot-backed response
// shape names the missing node when the source serves a partial view:
// the query batch endpoint, the estimate alias, and the SSE push.
func TestDegradedBlockOnResponses(t *testing.T) {
	eng, err := engine.New(engine.Config{Instances: 2, K: 16, Shards: 4, Hash: sampling.NewSeedHash(1)})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Ingest(0, 1, 2.5); err != nil {
		t.Fatal(err)
	}
	deg := &cluster.Degraded{
		Policy:    "quorum=2",
		Reachable: 2,
		Total:     3,
		Missing: []cluster.MissingNode{{
			Node:  "http://node2:8080",
			Error: "connection refused",
		}},
	}
	s := NewWith(eng, Config{
		Snapshots:         degradedSource{eng: eng, deg: deg},
		SubscribeDebounce: 5 * time.Millisecond,
	})
	ts := httptest.NewServer(s)
	// Cleanup, not defer: the SSE connection's body-close cleanup (LIFO,
	// registered later) must run before the server shuts down.
	t.Cleanup(ts.Close)

	assertDegraded := func(label string, raw []byte) {
		t.Helper()
		var body struct {
			Degraded *cluster.Degraded `json:"degraded"`
		}
		if err := json.Unmarshal(raw, &body); err != nil {
			t.Fatalf("%s: %v in %s", label, err, raw)
		}
		if body.Degraded == nil || len(body.Degraded.Missing) != 1 ||
			body.Degraded.Missing[0].Node != "http://node2:8080" {
			t.Fatalf("%s: degraded block = %+v, want missing http://node2:8080", label, body.Degraded)
		}
	}

	resp, out := postRawJSON(t, ts.URL+"/v1/query", map[string]any{
		"queries": []map[string]any{{"statistic": "sum"}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %d: %s", resp.StatusCode, out)
	}
	assertDegraded("query", out)

	hresp, err := http.Get(ts.URL + "/v1/estimate/sum?func=rg&p=1")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("estimate: %d: %s", hresp.StatusCode, raw)
	}
	assertDegraded("estimate", raw)

	c := subscribeSSE(t, context.Background(), ts.URL, "")
	for {
		typ, data := c.next(t)
		if typ != "estimate" {
			continue
		}
		assertDegraded("subscribe push", data)
		break
	}
}

// TestStrictSourceOmitsDegraded is the inverse: a plain engine-backed
// server must never emit the field.
func TestStrictSourceOmitsDegraded(t *testing.T) {
	_, ts, eng := subTestServer(t, Config{})
	if err := eng.Ingest(0, 1, 2.5); err != nil {
		t.Fatal(err)
	}
	resp, out := postRawJSON(t, ts.URL+"/v1/query", map[string]any{
		"queries": []map[string]any{{"statistic": "sum"}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %d: %s", resp.StatusCode, out)
	}
	if bytes.Contains(out, []byte(`"degraded"`)) {
		t.Fatalf("single-node response carries a degraded block: %s", out)
	}
}
