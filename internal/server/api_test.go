package server

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/estreg"
	"repro/internal/funcs"
	"repro/internal/sampling"
)

// These tests pin the /v1 response contract introduced with the
// partitioned snapshot pipeline: a top-level snapshot version on every
// read endpoint, one structured error envelope for everything (including
// requests that never reach a handler), the snapshot maintenance counters
// in /v1/stats and /metrics, and — the acceptance property — that serving
// through the incremental per-partition path stays bit-identical to the
// batch pipeline under single-key mutations.

// TestResponseVersionField: every snapshot-backed endpoint reports the
// same top-level version while the engine is unchanged, and the version
// advances after an ingest.
func TestResponseVersionField(t *testing.T) {
	ts, _ := newTestServer(t)
	ingestDataset(t, ts.URL, ladderDataset(t, 24))

	read := func(path string, post bool) float64 {
		t.Helper()
		var resp *http.Response
		var body map[string]any
		if post {
			resp, body = postJSON(t, ts.URL+path, map[string]any{
				"queries": []map[string]any{{"statistic": "sum"}},
			})
		} else {
			resp, body = getJSON(t, ts.URL+path)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d body %v", path, resp.StatusCode, body)
		}
		v, ok := body["version"].(float64)
		if !ok {
			t.Fatalf("%s: no numeric top-level version in %v", path, body)
		}
		return v
	}

	paths := []struct {
		path string
		post bool
	}{
		{"/v1/estimate/sum?func=rg&p=1&estimator=lstar", false},
		{"/v1/estimate/jaccard", false},
		{"/v1/stats", false},
		{"/v1/query", true},
	}
	first := read(paths[0].path, paths[0].post)
	if first == 0 {
		t.Fatal("version 0 after ingest")
	}
	for _, p := range paths[1:] {
		if v := read(p.path, p.post); v != first {
			t.Fatalf("%s: version %v, want %v (engine unchanged)", p.path, v, first)
		}
	}

	resp, body := postJSON(t, ts.URL+"/v1/ingest", map[string]any{
		"updates": []map[string]any{{"instance": 0, "key": "fresh", "weight": 1}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: status %d body %v", resp.StatusCode, body)
	}
	for _, p := range paths {
		if v := read(p.path, p.post); v <= first {
			t.Fatalf("%s: version %v did not advance past %v after ingest", p.path, v, first)
		}
	}
}

// TestUnroutedRequestsUseErrorEnvelope: the mux-level fallbacks — unknown
// path and wrong method — answer with the same JSON error envelope as
// handler errors, with the 405 keeping its Allow header.
func TestUnroutedRequestsUseErrorEnvelope(t *testing.T) {
	ts, _ := newTestServer(t)

	resp, body := getJSON(t, ts.URL+"/v1/nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path: status %d, want 404", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("unknown path: Content-Type %q, want application/json", ct)
	}
	errObj, ok := body["error"].(map[string]any)
	if !ok || errObj["code"] != "not_found" {
		t.Fatalf("unknown path: body %v, want error.code not_found", body)
	}

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/stats", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body = decodeBody(t, resp)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("wrong method: status %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); !strings.Contains(allow, http.MethodGet) {
		t.Fatalf("wrong method: Allow %q, want it to offer GET", allow)
	}
	errObj, ok = body["error"].(map[string]any)
	if !ok || errObj["code"] != "method_not_allowed" {
		t.Fatalf("wrong method: body %v, want error.code method_not_allowed", body)
	}
}

// TestStatsSnapshotCounters: /v1/stats exposes the snapshot maintenance
// counters and the per-shard breakdown, and they are mutually consistent
// — per-shard mutations sum to the version, per-shard keys sum to the
// key count, and single-key churn shows up as partition reuse.
func TestStatsSnapshotCounters(t *testing.T) {
	ts, _ := newTestServer(t)
	ingestDataset(t, ts.URL, ladderDataset(t, 48))

	// Churn one key, snapshotting in between, so rebuilds reuse the three
	// clean shards (Shards=4 in newTestServer).
	for round := 0; round < 4; round++ {
		resp, body := postJSON(t, ts.URL+"/v1/ingest", map[string]any{
			"updates": []map[string]any{{"instance": 0, "id": 0, "weight": float64(100 + round)}},
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest: status %d body %v", resp.StatusCode, body)
		}
		if resp, body := getJSON(t, ts.URL+"/v1/estimate/sum?estimator=lstar"); resp.StatusCode != http.StatusOK {
			t.Fatalf("estimate: status %d body %v", resp.StatusCode, body)
		}
	}

	resp, body := getJSON(t, ts.URL+"/v1/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: status %d body %v", resp.StatusCode, body)
	}
	eng := body["engine"].(map[string]any)
	snap, ok := eng["snapshot"].(map[string]any)
	if !ok {
		t.Fatalf("stats: no engine.snapshot in %v", eng)
	}
	if snap["rebuilds"].(float64) == 0 {
		t.Fatalf("stats: zero snapshot rebuilds: %v", snap)
	}
	if snap["partitions_reused"].(float64) == 0 {
		t.Fatalf("stats: zero partitions reused under single-key churn: %v", snap)
	}
	if snap["partitions_rebuilt"].(float64) == 0 {
		t.Fatalf("stats: zero partitions rebuilt: %v", snap)
	}

	perShard, ok := eng["per_shard"].([]any)
	if !ok || len(perShard) != int(eng["shards"].(float64)) {
		t.Fatalf("stats: per_shard %v, want one entry per shard", eng["per_shard"])
	}
	var muts, keys, rebuilds float64
	for _, raw := range perShard {
		sh := raw.(map[string]any)
		muts += sh["mutations"].(float64)
		keys += sh["keys"].(float64)
		rebuilds += sh["partition_rebuilds"].(float64)
	}
	if muts != body["version"].(float64) {
		t.Fatalf("per-shard mutations sum %v != version %v", muts, body["version"])
	}
	if keys != eng["keys"].(float64) {
		t.Fatalf("per-shard keys sum %v != engine keys %v", keys, eng["keys"])
	}
	if rebuilds != snap["partitions_rebuilt"].(float64) {
		t.Fatalf("per-shard partition_rebuilds sum %v != snapshot partitions_rebuilt %v", rebuilds, snap["partitions_rebuilt"])
	}
}

// TestMetricsSnapshotSeries: /metrics carries the snapshot counters and
// the per-shard labeled series.
func TestMetricsSnapshotSeries(t *testing.T) {
	ts, _ := newTestServer(t)
	ingestDataset(t, ts.URL, ladderDataset(t, 24))
	if resp, body := getJSON(t, ts.URL+"/v1/estimate/sum?estimator=lstar"); resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate: status %d body %v", resp.StatusCode, body)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"monest_snapshot_rebuilds_total",
		"monest_snapshot_partitions_rebuilt_total",
		"monest_snapshot_partitions_reused_total",
		"monest_snapshot_threshold_refreshes_total",
		"monest_snapshot_plan_rebuilds_total",
		`monest_shard_mutations_total{shard="0"}`,
		`monest_shard_partition_rebuilds_total{shard="0"}`,
		`monest_shard_keys{shard="3"}`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}

// TestIncrementalServingStaysExact is the HTTP-level half of the
// incremental-maintenance acceptance test: under a stream of single-key
// mutations, /v1/query answers — served through partition reuse and the
// per-partition estimate cache — stay bit-identical to the batch pipeline
// (dataset.SampleBottomK + estreg.Sum) on the engine's current contents,
// for the full SumResult (estimate, second moment, max item) and for the
// Jaccard ratio.
func TestIncrementalServingStaysExact(t *testing.T) {
	ts, hash := newTestServer(t)
	const n = 48
	d := ladderDataset(t, n)
	ingestDataset(t, ts.URL, d)

	f, err := funcs.NewRG(1)
	if err != nil {
		t.Fatal(err)
	}
	reg := estreg.Default()
	sumEst, _, err := reg.Build("lstar", f, 2)
	if err != nil {
		t.Fatal(err)
	}
	andEst, _, err := reg.Build("lstar", funcs.AndTuple{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	orEst, _, err := reg.Build("lstar", funcs.OrTuple{}, 2)
	if err != nil {
		t.Fatal(err)
	}

	// w mirrors the engine's max-folded contents across mutations.
	w := make([][]float64, d.R())
	for i := range w {
		w[i] = append([]float64(nil), d.W[i]...)
	}

	lastVersion := -1.0
	for round := 0; round < 24; round++ {
		if round > 0 {
			key := (round * 7) % n
			weight := float64(10 + round) // above the ladder: always a real mutation
			resp, body := postJSON(t, ts.URL+"/v1/ingest", map[string]any{
				"updates": []map[string]any{{"instance": round % 2, "id": key, "weight": weight}},
			})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("round %d: ingest status %d body %v", round, resp.StatusCode, body)
			}
			w[round%2][key] = weight
		}

		cur, err := dataset.New(nil, w)
		if err != nil {
			t.Fatal(err)
		}
		batch, err := dataset.SampleBottomK(cur, 8, hash)
		if err != nil {
			t.Fatal(err)
		}
		wantSum, err := estreg.Sum(sumEst, batch.Outcomes, nil)
		if err != nil {
			t.Fatal(err)
		}
		wantAnd, err := estreg.Sum(andEst, batch.Outcomes, nil)
		if err != nil {
			t.Fatal(err)
		}
		wantOr, err := estreg.Sum(orEst, batch.Outcomes, nil)
		if err != nil {
			t.Fatal(err)
		}
		wantJac := 0.0
		if wantOr.Estimate != 0 {
			wantJac = wantAnd.Estimate / wantOr.Estimate
		}

		resp, body := postJSON(t, ts.URL+"/v1/query", map[string]any{
			"queries": []map[string]any{
				{"statistic": "sum", "func": "rg", "p": 1, "estimator": "lstar"},
				{"statistic": "jaccard", "estimator": "lstar"},
			},
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("round %d: query status %d body %v", round, resp.StatusCode, body)
		}
		version := body["version"].(float64)
		if version <= lastVersion {
			t.Fatalf("round %d: version %v did not advance past %v", round, version, lastVersion)
		}
		lastVersion = version

		results := body["results"].([]any)
		sumRes := results[0].(map[string]any)
		if sumRes["error"] != nil {
			t.Fatalf("round %d: sum error %v", round, sumRes["error"])
		}
		for field, want := range map[string]float64{
			"estimate":          wantSum.Estimate,
			"second_moment":     wantSum.SecondMoment,
			"max_item_estimate": wantSum.MaxItem,
			"items":             float64(wantSum.Items),
		} {
			if got := sumRes[field].(float64); got != want {
				t.Fatalf("round %d: sum %s = %v, want %v (drift on the incremental path)", round, field, got, want)
			}
		}
		jacRes := results[1].(map[string]any)
		if jacRes["error"] != nil {
			t.Fatalf("round %d: jaccard error %v", round, jacRes["error"])
		}
		if got := jacRes["estimate"].(float64); got != wantJac {
			t.Fatalf("round %d: jaccard %v, want %v", round, got, wantJac)
		}
	}

	// The churn above must have actually exercised partition reuse — the
	// counters prove the exact answers came via the incremental path.
	_, body := getJSON(t, ts.URL+"/v1/stats")
	snap := body["engine"].(map[string]any)["snapshot"].(map[string]any)
	if snap["partitions_reused"].(float64) == 0 {
		t.Fatalf("no partitions reused across %d single-key rounds: %v", 24, snap)
	}
}

// TestEstimateAliasesMatchQuery: GET /v1/estimate/sum and
// /v1/estimate/jaccard are thin aliases of the corresponding single-query
// POST /v1/query — same snapshot version, same numbers, field for field.
func TestEstimateAliasesMatchQuery(t *testing.T) {
	ts, _ := newTestServer(t)
	ingestDataset(t, ts.URL, ladderDataset(t, 32))

	resp, queryBody := postJSON(t, ts.URL+"/v1/query", map[string]any{
		"queries": []map[string]any{
			{"statistic": "sum", "func": "rgplus", "p": 2, "estimator": "ustar"},
			{"statistic": "jaccard"},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: status %d body %v", resp.StatusCode, queryBody)
	}
	results := queryBody["results"].([]any)
	sumRes := results[0].(map[string]any)
	jacRes := results[1].(map[string]any)

	resp, sumAlias := getJSON(t, ts.URL+"/v1/estimate/sum?func=rgplus&p=2&estimator=ustar")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sum alias: status %d body %v", resp.StatusCode, sumAlias)
	}
	resp, jacAlias := getJSON(t, ts.URL+"/v1/estimate/jaccard")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("jaccard alias: status %d body %v", resp.StatusCode, jacAlias)
	}

	if sumAlias["version"] != queryBody["version"] || jacAlias["version"] != queryBody["version"] {
		t.Fatalf("alias versions %v/%v != query version %v", sumAlias["version"], jacAlias["version"], queryBody["version"])
	}
	if sumAlias["estimate"] != sumRes["estimate"] {
		t.Fatalf("sum alias estimate %v != query estimate %v", sumAlias["estimate"], sumRes["estimate"])
	}
	if sumAlias["estimator"] != sumRes["estimator"] {
		t.Fatalf("sum alias estimator %v != query estimator %v", sumAlias["estimator"], sumRes["estimator"])
	}
	if jacAlias["jaccard"] != jacRes["estimate"] {
		t.Fatalf("jaccard alias %v != query estimate %v", jacAlias["jaccard"], jacRes["estimate"])
	}
	snapInfo := queryBody["snapshot"].(map[string]any)
	for _, field := range []string{"keys", "sampled_entries", "total_entries"} {
		if sumAlias[field] != snapInfo[field] {
			t.Fatalf("sum alias %s %v != query snapshot %v", field, sumAlias[field], snapInfo[field])
		}
	}
}

// TestPartialCacheSubsetAndErrorParity: subset selections bypass the
// per-partition cache and must agree with a locally computed estreg.Sum
// over the same items; a failing estimator surfaces estreg.Sum's exact
// merged-index error message through the fallback path.
func TestPartialCacheSubsetAndErrorParity(t *testing.T) {
	hash := sampling.NewSeedHash(7)
	eng, err := engine.New(engine.Config{Instances: 2, K: 8, Shards: 4, Hash: hash})
	if err != nil {
		t.Fatal(err)
	}
	reg := estreg.Default()
	if err := reg.Register("alwaysfail", func(string, funcs.F, int) (estreg.Estimator, estreg.Meta, error) {
		return alwaysFailEstimator{}, estreg.Meta{Estimator: "alwaysfail"}, nil
	}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewWith(eng, Config{Registry: reg}))
	t.Cleanup(ts.Close)
	d := ladderDataset(t, 32)
	ingestDataset(t, ts.URL, d)

	// Full-dataset first, so the partial cache is warm when the subset
	// query arrives (the subset must not be answered from it).
	if resp, body := getJSON(t, ts.URL+"/v1/estimate/sum?estimator=lstar"); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm-up: status %d body %v", resp.StatusCode, body)
	}

	batch, err := dataset.SampleBottomK(d, 8, hash)
	if err != nil {
		t.Fatal(err)
	}
	f, err := funcs.NewRG(1)
	if err != nil {
		t.Fatal(err)
	}
	est, _, err := estreg.Default().Build("lstar", f, 2)
	if err != nil {
		t.Fatal(err)
	}
	items := []int{2, 3, 5, 7}
	want, err := estreg.Sum(est, batch.Outcomes, items)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]any, len(items))
	for i, it := range items {
		ids[i] = it
	}
	resp, body := postJSON(t, ts.URL+"/v1/query", map[string]any{
		"queries": []map[string]any{{"statistic": "sum", "estimator": "lstar", "ids": ids}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("subset query: status %d body %v", resp.StatusCode, body)
	}
	res := body["results"].([]any)[0].(map[string]any)
	if res["error"] != nil {
		t.Fatalf("subset query error: %v", res["error"])
	}
	if got := res["estimate"].(float64); got != want.Estimate {
		t.Fatalf("subset estimate %v, want %v", got, want.Estimate)
	}

	// The always-failing estimator: the partial path cannot serve it, and
	// the fallback must reproduce estreg.Sum's merged-index error.
	resp, body = postJSON(t, ts.URL+"/v1/query", map[string]any{
		"queries": []map[string]any{{"statistic": "sum", "estimator": "alwaysfail"}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failing query: status %d body %v", resp.StatusCode, body)
	}
	res = body["results"].([]any)[0].(map[string]any)
	errObj, ok := res["error"].(map[string]any)
	if !ok {
		t.Fatalf("failing estimator produced no error: %v", res)
	}
	wantMsg := fmt.Sprintf("estreg: item %d: %s", 0, "alwaysfail: no estimate")
	if errObj["message"] != wantMsg {
		t.Fatalf("error message %q, want %q (estreg.Sum parity)", errObj["message"], wantMsg)
	}
}

// TestConcurrentQueriesDuringIngest churns single-key writes while many
// readers hit the snapshot-backed endpoints — under -race this exercises
// the partial-estimate cache, the result memo and the lazy snapshot
// materialization against concurrent partition rebuilds. Readers only
// sanity-check shape (finite estimate, version present); exactness under
// churn is covered deterministically above.
func TestConcurrentQueriesDuringIngest(t *testing.T) {
	ts, _ := newTestServer(t)
	ingestDataset(t, ts.URL, ladderDataset(t, 64))

	stop := make(chan struct{})
	var writer, readers sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			resp, body := postJSON(t, ts.URL+"/v1/ingest", map[string]any{
				"updates": []map[string]any{{"instance": i % 2, "id": (i * 11) % 64, "weight": float64(100 + i)}},
			})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("writer: status %d body %v", resp.StatusCode, body)
				return
			}
		}
	}()
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 50; i++ {
				resp, body := postJSON(t, ts.URL+"/v1/query", map[string]any{
					"queries": []map[string]any{
						{"statistic": "sum", "estimator": "lstar"},
						{"statistic": "jaccard"},
					},
				})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("reader: status %d body %v", resp.StatusCode, body)
					return
				}
				if _, ok := body["version"].(float64); !ok {
					t.Errorf("reader: no version in %v", body)
					return
				}
				for _, raw := range body["results"].([]any) {
					res := raw.(map[string]any)
					if res["error"] != nil {
						t.Errorf("reader: query error %v", res["error"])
						return
					}
					if est := res["estimate"].(float64); math.IsNaN(est) || math.IsInf(est, 0) {
						t.Errorf("reader: non-finite estimate %v", est)
						return
					}
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	writer.Wait()
}

// alwaysFailEstimator rejects every outcome — it exists to pin the error
// path of the per-partition cache to estreg.Sum's behavior.
type alwaysFailEstimator struct{}

func (alwaysFailEstimator) Name() string { return "alwaysfail" }

func (alwaysFailEstimator) Estimate(sampling.TupleOutcome) (float64, error) {
	return 0, fmt.Errorf("alwaysfail: no estimate")
}
