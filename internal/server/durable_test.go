package server

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/sampling"
	"repro/internal/store"
)

func newDurableServer(t *testing.T, dir string) (*httptest.Server, *engine.Engine, *store.Persistence) {
	t.Helper()
	eng, err := engine.New(engine.Config{Instances: 2, K: 8, Shards: 4, Hash: sampling.NewSeedHash(7)})
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(dir, store.Options{Fsync: store.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	p, _, err := store.Attach(eng, st)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewWith(eng, Config{Persist: p}))
	t.Cleanup(ts.Close)
	return ts, eng, p
}

func ingestSome(t *testing.T, url string) {
	t.Helper()
	resp, _ := postJSON(t, url+"/v1/ingest", map[string]any{
		"updates": []map[string]any{
			{"instance": 0, "key": "alpha", "weight": 2.5},
			{"instance": 1, "key": "alpha", "weight": 1.0},
			{"instance": 0, "key": "beta", "weight": 4.0},
			{"instance": 1, "key": "gamma", "weight": 0.5},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
}

func TestCheckpointEndpoint(t *testing.T) {
	ts, _, _ := newDurableServer(t, t.TempDir())
	ingestSome(t, ts.URL)
	resp, body := postJSON(t, ts.URL+"/v1/checkpoint", map[string]any{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint status %d: %v", resp.StatusCode, body)
	}
	cp, ok := body["checkpoint"].(map[string]any)
	if !ok {
		t.Fatalf("checkpoint body %v", body)
	}
	if cp["keys"].(float64) != 3 {
		t.Fatalf("checkpointed keys = %v, want 3", cp["keys"])
	}
	if _, ok := body["duration_ms"].(float64); !ok {
		t.Fatalf("missing duration_ms: %v", body)
	}
}

func TestCheckpointWithoutPersistenceIs503(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/checkpoint", map[string]any{})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if errBody, ok := body["error"].(map[string]any); !ok || errBody["code"] != "unavailable" {
		t.Fatalf("error body %v", body)
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	src, _ := newTestServer(t)
	ingestSome(t, src.URL)

	resp, err := http.Get(src.URL + "/v1/export")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("export status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("export content type %q", ct)
	}
	artifact, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.DecodeState(artifact)
	if err != nil {
		t.Fatalf("export is not a valid state artifact: %v", err)
	}
	if len(st.Keys) != 3 {
		t.Fatalf("exported %d keys, want 3", len(st.Keys))
	}

	// Import into a fresh server: its snapshot must equal the source's.
	dstEng, err := engine.New(engine.Config{Instances: 2, K: 8, Shards: 4, Hash: sampling.NewSeedHash(7)})
	if err != nil {
		t.Fatal(err)
	}
	dst := httptest.NewServer(New(dstEng))
	defer dst.Close()
	iresp, err := http.Post(dst.URL+"/v1/import", "application/octet-stream", bytes.NewReader(artifact))
	if err != nil {
		t.Fatal(err)
	}
	ibody := decodeBody(t, iresp)
	if iresp.StatusCode != http.StatusOK {
		t.Fatalf("import status %d: %v", iresp.StatusCode, ibody)
	}
	if ibody["merged_keys"].(float64) != 3 {
		t.Fatalf("merged_keys = %v", ibody["merged_keys"])
	}

	// Bit-identical estimates: the same sum query answers the same.
	_, srcEst := getJSON(t, src.URL+"/v1/estimate/sum?func=max")
	_, dstEst := getJSON(t, dst.URL+"/v1/estimate/sum?func=max")
	if srcEst["estimate"] != dstEst["estimate"] {
		t.Fatalf("imported estimate %v differs from source %v", dstEst["estimate"], srcEst["estimate"])
	}
}

func TestImportRejectsGarbageAndMismatch(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Post(ts.URL+"/v1/import", "application/octet-stream", strings.NewReader("not an artifact"))
	if err != nil {
		t.Fatal(err)
	}
	if body := decodeBody(t, resp); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage import status %d: %v", resp.StatusCode, body)
	}

	// A valid artifact from an incompatible engine (different salt) must
	// be rejected by the seed fingerprint, not merged wrongly.
	other, err := engine.New(engine.Config{Instances: 2, K: 8, Shards: 4, Hash: sampling.NewSeedHash(99)})
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Ingest(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	artifact := store.EncodeState(other.DumpState())
	resp, err = http.Post(ts.URL+"/v1/import", "application/octet-stream", bytes.NewReader(artifact))
	if err != nil {
		t.Fatal(err)
	}
	if body := decodeBody(t, resp); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mismatched-salt import status %d: %v", resp.StatusCode, body)
	}
}

func TestImportWithPersistenceCheckpoints(t *testing.T) {
	dir := t.TempDir()
	ts, eng, _ := newDurableServer(t, dir)
	src, err := engine.New(engine.Config{Instances: 2, K: 8, Shards: 4, Hash: sampling.NewSeedHash(7)})
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Ingest(0, 42, 3.5); err != nil {
		t.Fatal(err)
	}
	artifact := store.EncodeState(src.DumpState())
	resp, err := http.Post(ts.URL+"/v1/import", "application/octet-stream", bytes.NewReader(artifact))
	if err != nil {
		t.Fatal(err)
	}
	body := decodeBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("import status %d: %v", resp.StatusCode, body)
	}
	if _, ok := body["checkpoint"].(map[string]any); !ok {
		t.Fatalf("import with persistence did not checkpoint: %v", body)
	}
	want := eng.Snapshot()

	// The imported state survives a crash (no clean close) because the
	// import checkpointed: recover from disk and compare.
	r, err := engine.New(engine.Config{Instances: 2, K: 8, Shards: 4, Hash: sampling.NewSeedHash(7)})
	if err != nil {
		t.Fatal(err)
	}
	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p2, _, err := store.Attach(r, st2)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if !reflect.DeepEqual(r.Snapshot(), want) {
		t.Fatal("imported state did not survive crash recovery")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts, _, _ := newDurableServer(t, t.TempDir())
	ingestSome(t, ts.URL)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"monest_engine_keys 3",
		"monest_engine_ingests_total 4",
		"# TYPE monest_engine_ingests_total counter",
		`monest_http_requests_total{endpoint="POST /v1/ingest"} 1`,
		"monest_uptime_seconds",
		"monest_http_latency_seconds_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}

	// Unknown query params are a structured 400, like every endpoint.
	resp2, err := http.Get(ts.URL + "/metrics?bogus=1")
	if err != nil {
		t.Fatal(err)
	}
	if body := decodeBody(t, resp2); resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("metrics with unknown param: %d %v", resp2.StatusCode, body)
	}
}

func TestDurableIngestSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	ts, eng, _ := newDurableServer(t, dir)
	ingestSome(t, ts.URL)
	want := eng.Snapshot()
	ts.Close() // crash: no checkpoint, no store close — the WAL is all there is

	r, err := engine.New(engine.Config{Instances: 2, K: 8, Shards: 4, Hash: sampling.NewSeedHash(7)})
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, stats, err := store.Attach(r, st)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if stats.Updates != 4 {
		t.Fatalf("replayed %d updates, want 4", stats.Updates)
	}
	if !reflect.DeepEqual(r.Snapshot(), want) {
		t.Fatal("HTTP-ingested updates did not survive crash recovery")
	}
}
