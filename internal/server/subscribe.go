package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
)

// GET /v1/subscribe is the push-based read path: a client registers one
// or more (statistic, estimator, selection) queries — the same triples
// POST /v1/query answers — and holds the connection open; the server
// pushes re-evaluated results as Server-Sent Events whenever the engine's
// mutation version changes. Pushes are debounced and coalesced: a burst
// of writes yields one re-estimate round, evaluated once per distinct
// query set from the shared snapshot view (the per-version result memo
// and per-partition estimate cache make each round proportional to the
// mutated partitions, not the subscriber count times the key count).
//
// Queries come from the URL: either the single-query parameters of
// /v1/estimate/sum (statistic, func, p, c, estimator, plus comma-lists
// keys and ids), or ?queries=<JSON array of /v1/query specs> for a batch.
//
// Event schema (versioned exactly like /v1/query — the top-level
// "version" is the engine mutation version the results reflect):
//
//	event: estimate
//	id: <version>
//	data: {"version": N, "results": [<queryResult>, ...]}
//
// The first estimate event is pushed immediately on subscribe (the
// current state), comment lines (": ping") keep idle connections alive,
// and a final "event: drain" announces a server shutdown. A subscriber
// that reads too slowly has its oldest undelivered events dropped — the
// buffer is bounded and ingest never blocks on a slow consumer; each
// delivered event always carries the newest evaluated results.

// subscriberBuffer bounds each subscriber's undelivered-event queue.
// When it is full the broadcaster drops the oldest event: estimates are
// snapshots, not deltas, so the newest event supersedes everything queued
// before it.
const subscriberBuffer = 8

// maxSubscribeQueries caps the queries one subscription registers.
const maxSubscribeQueries = maxBatchQueries

// pushEvent is one encoded estimate push.
type pushEvent struct {
	version uint64
	data    []byte // the JSON data line: {"version": N, "results": [...]}
}

// subscriber is one /v1/subscribe connection's registration.
type subscriber struct {
	queries []*plannedQuery
	// shareKey identifies the query set; subscribers with equal keys share
	// one evaluation and one encoded payload per push round.
	shareKey string
	// events is the bounded undelivered-event queue: the broadcaster
	// sends, the connection handler receives, and on overflow the
	// broadcaster drops the oldest (see deliver).
	events chan pushEvent
	// lastVersion is the newest version delivered into events (sentinel
	// ^0 = nothing yet). The broadcaster skips subscribers already at the
	// round's version, and advance() keeps delivered versions monotone
	// even when the initial push races a broadcast round.
	lastVersion atomic.Uint64
}

// advance claims version v for delivery: it returns false when v is not
// newer than what was already delivered.
func (sub *subscriber) advance(v uint64) bool {
	for {
		old := sub.lastVersion.Load()
		if old != subVersionNone && v <= old {
			return false
		}
		if sub.lastVersion.CompareAndSwap(old, v) {
			return true
		}
	}
}

const subVersionNone = ^uint64(0)

// deliver queues ev without ever blocking: when the buffer is full the
// oldest undelivered event is discarded (counted as dropped) to make
// room. Only the broadcaster and the subscribing handler's initial push
// call deliver; the connection handler is the only receiver.
func (sub *subscriber) deliver(ev pushEvent, w *wireStats) {
	for {
		select {
		case sub.events <- ev:
			w.pushed.Add(1)
			return
		default:
		}
		select {
		case <-sub.events:
			w.dropped.Add(1)
		default:
		}
	}
}

// broadcaster owns the subscriber registry and the push loop. The loop
// runs only while subscribers exist: it wakes on the engine's coalesced
// mutation signal, absorbs the burst for one debounce window, evaluates
// each distinct query set once against one shared snapshot view, and
// delivers to every subscriber the round reaches.
type broadcaster struct {
	s        *Server
	debounce time.Duration

	mu      sync.Mutex
	subs    map[*subscriber]struct{}
	running bool
	// kick wakes the loop outside mutation traffic — in particular when
	// the last subscriber leaves, so the loop can park itself.
	kick chan struct{}
}

func newBroadcaster(s *Server, debounce time.Duration) *broadcaster {
	return &broadcaster{
		s:        s,
		debounce: debounce,
		subs:     make(map[*subscriber]struct{}),
		kick:     make(chan struct{}, 1),
	}
}

// register adds the subscriber and ensures the push loop is running.
func (b *broadcaster) register(sub *subscriber, max int) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if max > 0 && len(b.subs) >= max {
		return fmt.Errorf("subscriber limit %d reached", max)
	}
	b.subs[sub] = struct{}{}
	if !b.running {
		b.running = true
		go b.loop()
	}
	return nil
}

func (b *broadcaster) unregister(sub *subscriber) {
	b.mu.Lock()
	delete(b.subs, sub)
	empty := len(b.subs) == 0
	b.mu.Unlock()
	if empty {
		select {
		case b.kick <- struct{}{}:
		default:
		}
	}
}

// snapshotSubs copies the current subscriber set (the round must not hold
// b.mu while evaluating estimators).
func (b *broadcaster) snapshotSubs() []*subscriber {
	b.mu.Lock()
	defer b.mu.Unlock()
	subs := make([]*subscriber, 0, len(b.subs))
	for sub := range b.subs {
		subs = append(subs, sub)
	}
	return subs
}

// loop is the push loop: wake, debounce, evaluate, deliver — parking
// itself when the subscriber set empties and exiting on drain.
func (b *broadcaster) loop() {
	sig := b.s.eng.MutationSignal()
	for {
		select {
		case <-sig:
		case <-b.kick:
		case <-b.s.drainCh:
			b.park()
			return
		}
		b.mu.Lock()
		n := len(b.subs)
		b.mu.Unlock()
		if n == 0 {
			b.park()
			return
		}
		if !b.debounceWait(sig) {
			b.park()
			return
		}
		b.round()
	}
}

// park stops the loop; a later register restarts it.
func (b *broadcaster) park() {
	b.mu.Lock()
	b.running = false
	b.mu.Unlock()
}

// debounceWait absorbs mutation signals for one debounce window so a
// write burst becomes one push round; it returns false when the server
// started draining mid-window.
func (b *broadcaster) debounceWait(sig <-chan struct{}) bool {
	if b.debounce <= 0 {
		return true
	}
	timer := time.NewTimer(b.debounce)
	defer timer.Stop()
	for {
		select {
		case <-sig:
			b.s.wire.coalesced.Add(1)
		case <-timer.C:
			return true
		case <-b.s.drainCh:
			return false
		}
	}
}

// round evaluates one push round: one shared snapshot view, one
// evaluation and one encoded payload per distinct query set, one deliver
// per subscriber not already at the round's version. A source failure
// (cluster degraded) skips the round — the next mutation signal retries,
// and subscribers keep their connections rather than seeing a push gap
// dressed up as data.
func (b *broadcaster) round() {
	// No request context covers the push loop; the drain context cancels
	// a round's in-flight cluster scatter-gather on shutdown.
	view, degraded, err := b.s.acquire(b.s.drainCtx)
	if err != nil {
		return
	}
	memo := b.s.memoFor(view.Version)
	encoded := make(map[string][]byte)
	for _, sub := range b.snapshotSubs() {
		if sub.lastVersion.Load() >= view.Version && sub.lastVersion.Load() != subVersionNone {
			continue
		}
		data, ok := encoded[sub.shareKey]
		if !ok {
			data = b.s.encodePush(sub.queries, view, memo, degraded)
			encoded[sub.shareKey] = data
		}
		if sub.advance(view.Version) {
			sub.deliver(pushEvent{version: view.Version, data: data}, &b.s.wire)
		}
	}
}

// encodePush evaluates the queries against the view and encodes the SSE
// data payload — the exact result objects POST /v1/query returns for the
// same specs at the same version, including the degraded block when the
// view was assembled without every cluster node.
func (s *Server) encodePush(queries []*plannedQuery, view engine.SnapshotView, memo *resultMemo, degraded *cluster.Degraded) []byte {
	results := make([]queryResult, len(queries))
	for i, q := range queries {
		results[i] = s.evalMemoized(q, view, memo)
	}
	data, err := json.Marshal(struct {
		Version  uint64            `json:"version"`
		Results  []queryResult     `json:"results"`
		Degraded *cluster.Degraded `json:"degraded,omitempty"`
	}{view.Version, results, degraded})
	if err != nil {
		// queryResult always marshals; a failure here is a programming
		// error surfaced to the subscriber rather than a silent stall.
		data = fmt.Appendf(nil, `{"version":%d,"error":%q}`, view.Version, err.Error())
	}
	return data
}

// parseSubscribeQueries reads the subscription's query set from the URL.
func (s *Server) parseSubscribeQueries(r *http.Request) ([]querySpec, error) {
	q := r.URL.Query()
	if err := checkParams(q, "statistic", "func", "p", "c", "estimator", "keys", "ids", "queries"); err != nil {
		return nil, err
	}
	if raw := q.Get("queries"); raw != "" {
		for _, p := range []string{"statistic", "func", "p", "c", "estimator", "keys", "ids"} {
			if q.Get(p) != "" {
				return nil, fmt.Errorf("parameter %q conflicts with queries (put it inside the JSON array)", p)
			}
		}
		dec := json.NewDecoder(strings.NewReader(raw))
		dec.DisallowUnknownFields()
		var specs []querySpec
		if err := dec.Decode(&specs); err != nil {
			return nil, fmt.Errorf("decoding queries: %w", err)
		}
		if dec.More() {
			return nil, errors.New("decoding queries: trailing data after JSON array")
		}
		if len(specs) == 0 {
			return nil, errors.New("queries names no queries")
		}
		if len(specs) > maxSubscribeQueries {
			return nil, fmt.Errorf("%d queries exceeds %d", len(specs), maxSubscribeQueries)
		}
		return specs, nil
	}
	sp, err := parseStatistic(q)
	if err != nil {
		return nil, err
	}
	spec := querySpec{
		Statistic: q.Get("statistic"),
		Func:      sp.Func,
		P:         sp.P,
		C:         sp.C,
		Estimator: q.Get("estimator"),
	}
	if raw := q.Get("keys"); raw != "" {
		spec.Keys = strings.Split(raw, ",")
	}
	if raw := q.Get("ids"); raw != "" {
		for _, part := range strings.Split(raw, ",") {
			id, err := strconv.ParseUint(strings.TrimSpace(part), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("parameter ids: %w", err)
			}
			spec.IDs = append(spec.IDs, id)
		}
	}
	return []querySpec{spec}, nil
}

func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) (int, error) {
	if s.draining() {
		return http.StatusServiceUnavailable, errDraining
	}
	specs, err := s.parseSubscribeQueries(r)
	if err != nil {
		return http.StatusBadRequest, err
	}
	pl := s.newPlanner()
	queries := make([]*plannedQuery, len(specs))
	var shareKey strings.Builder
	for i, spec := range specs {
		q, err := pl.plan(spec)
		if err != nil {
			return http.StatusBadRequest, fmt.Errorf("query %d: %w", i, err)
		}
		// The planner caches by (statistic, estimator, func); selections
		// are per-query, so rebind (exactly as handleQuery does).
		bound := *q
		bound.spec = spec
		queries[i] = &bound
		shareKey.WriteString(bound.memoKey())
		shareKey.WriteByte(0x1f)
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		return http.StatusInternalServerError, errors.New("response writer cannot stream (no http.Flusher)")
	}

	sub := &subscriber{
		queries:  queries,
		shareKey: shareKey.String(),
		events:   make(chan pushEvent, subscriberBuffer),
	}
	sub.lastVersion.Store(subVersionNone)
	// SSE resume: a reconnecting client replays the last `id:` line it saw
	// as Last-Event-ID. Seeding lastVersion with it makes the initial push
	// conditional — a client behind the current version gets the current
	// estimate immediately (advance succeeds), while a client already at
	// it skips the redundant re-send and waits for the next mutation.
	// Versions are process-local and reset on restart, so an id ABOVE the
	// current engine version can only come from another server incarnation
	// (or a buggy client) — honoring it would suppress pushes until the
	// version caught up, a silent gap; such ids degrade to fresh-subscriber
	// semantics (immediate initial push), as does an unparsable header.
	// Never a 400: resume is an optimization, not a contract.
	if raw := r.Header.Get("Last-Event-ID"); raw != "" {
		if v, err := strconv.ParseUint(raw, 10, 64); err == nil && v != subVersionNone && v <= s.eng.Version() {
			sub.lastVersion.Store(v)
			s.wire.resumes.Add(1)
		}
	}
	if err := s.broadcast.register(sub, s.maxSubscribers); err != nil {
		return http.StatusServiceUnavailable, err
	}
	defer s.broadcast.unregister(sub)
	s.wire.subsActive.Add(1)
	defer s.wire.subsActive.Add(-1)

	// Registration precedes the initial push, so a mutation landing in
	// between reaches this subscriber through the broadcaster; advance()
	// keeps the two paths from reordering versions on the wire.
	view, degraded, err := s.acquire(r.Context())
	if err != nil {
		return acquireStatus(err), err // deferred unregister cleans up
	}
	if sub.advance(view.Version) {
		sub.deliver(pushEvent{
			version: view.Version,
			data:    s.encodePush(queries, view, s.memoFor(view.Version), degraded),
		}, &s.wire)
	}

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // proxies must not buffer the push path
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	heartbeat := time.NewTicker(s.heartbeat)
	defer heartbeat.Stop()
	ctx := r.Context()
	for {
		select {
		case ev := <-sub.events:
			if _, err := fmt.Fprintf(w, "event: estimate\nid: %d\ndata: %s\n\n", ev.version, ev.data); err != nil {
				return http.StatusOK, nil // client went away mid-write
			}
		case <-heartbeat.C:
			if _, err := io.WriteString(w, ": ping\n\n"); err != nil {
				return http.StatusOK, nil
			}
			s.wire.heartbeats.Add(1)
		case <-ctx.Done():
			return http.StatusOK, nil
		case <-s.drainCh:
			_, _ = io.WriteString(w, "event: drain\ndata: {}\n\n")
			flusher.Flush()
			return http.StatusOK, nil
		}
		flusher.Flush()
	}
}
