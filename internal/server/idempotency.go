package server

import (
	"math"
	"sync"
	"time"

	"repro/internal/engine"
)

// Stream idempotency: a /v1/stream request carrying an Idempotency-Key
// header registers per-frame digests as frames apply. When the SAME key
// replays the stream — the cluster coordinator retrying a routed batch
// whose response was lost in flight — frames whose (position, digest)
// pair is already recorded are skipped: not re-applied, not charged to
// the rate limiter, not counted by Ingests or the wire counters. That
// makes retried routed batches exact in the COUNTERS, not just the
// estimates (which max-weight union always kept exact). The digest
// check also makes key collisions harmless: a colliding key with
// different frame content simply fails the digest match and applies
// normally.

// maxIdemKeys bounds the remembered keys (LRU eviction); maxIdemFrames
// bounds the digests per key — frames beyond it always re-apply (safe:
// folds are idempotent; only counter exactness degrades).
const (
	maxIdemKeys   = 1024
	maxIdemFrames = 1024
)

// idemRecord is one key's applied-frame digests.
type idemRecord struct {
	mu       sync.Mutex
	digests  []uint64
	lastUsed time.Time // guarded by idemStore.mu
}

// seen reports whether frame seq with digest d is already applied.
func (r *idemRecord) seen(seq int, d uint64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return seq < len(r.digests) && r.digests[seq] == d
}

// applied records frame seq's digest after a successful apply. seq never
// exceeds len(digests): skips only happen below it and each apply
// extends it by at most one.
func (r *idemRecord) applied(seq int, d uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch {
	case seq < len(r.digests):
		r.digests[seq] = d
	case seq == len(r.digests) && seq < maxIdemFrames:
		r.digests = append(r.digests, d)
	}
}

// idemStore maps idempotency keys to their records, bounded by LRU.
type idemStore struct {
	mu   sync.Mutex
	recs map[string]*idemRecord
}

func newIdemStore() *idemStore {
	return &idemStore{recs: make(map[string]*idemRecord)}
}

// get returns (creating if needed) the record for key.
func (s *idemStore) get(key string) *idemRecord {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	r := s.recs[key]
	if r == nil {
		if len(s.recs) >= maxIdemKeys {
			s.evictOldest()
		}
		r = &idemRecord{}
		s.recs[key] = r
	}
	r.lastUsed = now
	return r
}

// evictOldest drops the least-recently-used record (caller holds mu).
func (s *idemStore) evictOldest() {
	var oldestKey string
	var oldest time.Time
	for k, r := range s.recs {
		if oldestKey == "" || r.lastUsed.Before(oldest) {
			oldestKey, oldest = k, r.lastUsed
		}
	}
	delete(s.recs, oldestKey)
}

// frameDigest fingerprints one decoded frame (FNV-1a over the update
// tuples). Position + digest identifies a replayed frame; it is not a
// cryptographic commitment — the threat model is a coordinator retry,
// not an adversary forging frames.
func frameDigest(batch []engine.Update) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	mix(uint64(len(batch)))
	for _, u := range batch {
		mix(uint64(u.Instance))
		mix(u.Key)
		mix(math.Float64bits(u.Weight))
	}
	return h
}
