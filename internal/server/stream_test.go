package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/store"
)

func streamBody(batches ...[]engine.Update) []byte {
	b := store.AppendStreamHeader(nil)
	for _, batch := range batches {
		b = store.AppendFrame(b, batch)
	}
	return b
}

func postStream(t *testing.T, ts *httptest.Server, body []byte) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", store.StreamContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp, out
}

func TestStreamAppliesFramesAndCounts(t *testing.T) {
	s, ts, eng := subTestServer(t, Config{})
	body := streamBody(
		[]engine.Update{{Instance: 0, Key: 1, Weight: 2}, {Instance: 1, Key: 1, Weight: 3}},
		[]engine.Update{{Instance: 0, Key: 2, Weight: 1}},
	)
	resp, out := postStream(t, ts, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	var sum struct {
		Frames   int  `json:"frames"`
		Updates  int  `json:"updates"`
		Draining bool `json:"draining"`
	}
	if err := json.Unmarshal(out, &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Frames != 2 || sum.Updates != 3 || sum.Draining {
		t.Fatalf("summary %+v, want 2 frames / 3 updates", sum)
	}
	if got := eng.Stats().Ingests; got != 3 {
		t.Fatalf("engine ingested %d, want 3", got)
	}
	if f, u := s.wire.streamFrames.Load(), s.wire.streamUpdates.Load(); f != 2 || u != 3 {
		t.Fatalf("wire counters frames=%d updates=%d, want 2/3", f, u)
	}
}

func TestStreamRejectsWrongContentType(t *testing.T) {
	_, ts, _ := subTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/v1/stream", "application/json", bytes.NewReader(streamBody()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("status %d, want 415", resp.StatusCode)
	}
}

func TestStreamCorruptFrameAbortsKeepingApplied(t *testing.T) {
	_, ts, eng := subTestServer(t, Config{})
	body := streamBody([]engine.Update{{Instance: 0, Key: 7, Weight: 1}})
	body = append(body, 0xde, 0xad, 0xbe) // torn header after a good frame
	resp, out := postStream(t, ts, body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	if !strings.Contains(string(out), "1 frames already applied") {
		t.Fatalf("error does not report applied progress: %s", out)
	}
	if got := eng.Stats().Ingests; got != 1 {
		t.Fatalf("engine ingested %d, want the pre-corruption frame kept", got)
	}
}

func TestStreamDuringDrainStopsAtBoundary(t *testing.T) {
	s, ts, _ := subTestServer(t, Config{})
	s.Drain()
	resp, out := postStream(t, ts, streamBody([]engine.Update{{Instance: 0, Key: 1, Weight: 1}}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	var sum struct {
		Frames   int  `json:"frames"`
		Draining bool `json:"draining"`
	}
	if err := json.Unmarshal(out, &sum); err != nil {
		t.Fatal(err)
	}
	if !sum.Draining || sum.Frames != 0 {
		t.Fatalf("summary %+v, want draining with 0 frames applied", sum)
	}
}

// The wire counters must surface through both observability endpoints.
func TestStatsAndMetricsExposeWireCounters(t *testing.T) {
	_, ts, _ := subTestServer(t, Config{})
	postStream(t, ts, streamBody([]engine.Update{{Instance: 0, Key: 1, Weight: 2}}))
	c := subscribeSSE(t, context.Background(), ts.URL, "")
	_ = c.nextPush(t)

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Wire WireStats `json:"wire"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Wire.StreamFrames != 1 || stats.Wire.StreamUpdates != 1 {
		t.Fatalf("stats wire %+v, want 1 frame / 1 update", stats.Wire)
	}
	if stats.Wire.ActiveSubscribers != 1 || stats.Wire.PushedEvents == 0 {
		t.Fatalf("stats wire %+v, want 1 active subscriber with a push", stats.Wire)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	raw, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{
		"monest_stream_frames_total 1",
		"monest_stream_updates_total 1",
		"monest_subscribers_active 1",
		"monest_subscribe_pushed_events_total",
		"monest_subscribe_heartbeats_total",
	} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// A second Drain call must be a no-op, and draining() must report state.
func TestDrainIdempotent(t *testing.T) {
	s, _, _ := subTestServer(t, Config{SubscribeDebounce: time.Millisecond})
	if s.draining() {
		t.Fatal("fresh server reports draining")
	}
	s.Drain()
	s.Drain()
	if !s.draining() {
		t.Fatal("drained server reports not draining")
	}
}
