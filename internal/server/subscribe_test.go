package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/sampling"
)

func subTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *engine.Engine) {
	t.Helper()
	eng, err := engine.New(engine.Config{Instances: 2, K: 16, Shards: 4, Hash: sampling.NewSeedHash(1)})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.SubscribeDebounce == 0 {
		cfg.SubscribeDebounce = 5 * time.Millisecond
	}
	s := NewWith(eng, cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts, eng
}

// sseConn is a minimal SSE reader over one /v1/subscribe response.
// lastID tracks the most recent `id:` line — what a real SSE client
// would replay as Last-Event-ID on reconnect.
type sseConn struct {
	resp   *http.Response
	sc     *bufio.Scanner
	lastID string
}

func subscribeSSE(t *testing.T, ctx context.Context, url, rawQuery string) *sseConn {
	t.Helper()
	full := url + "/v1/subscribe"
	if rawQuery != "" {
		full += "?" + rawQuery
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, full, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("subscribe status %d: %s", resp.StatusCode, body)
	}
	c := &sseConn{resp: resp, sc: bufio.NewScanner(resp.Body)}
	t.Cleanup(func() { resp.Body.Close() })
	return c
}

// next returns the next event's (type, data), skipping heartbeats.
func (c *sseConn) next(t *testing.T) (string, []byte) {
	t.Helper()
	typ, data := "", []byte(nil)
	for c.sc.Scan() {
		line := c.sc.Bytes()
		switch {
		case len(line) == 0:
			if typ != "" {
				return typ, data
			}
		case line[0] == ':':
		case bytes.HasPrefix(line, []byte("event: ")):
			typ = string(line[len("event: "):])
		case bytes.HasPrefix(line, []byte("id: ")):
			c.lastID = string(line[len("id: "):])
		case bytes.HasPrefix(line, []byte("data: ")):
			data = append(data, line[len("data: "):]...)
		}
	}
	t.Fatalf("SSE stream ended: %v", c.sc.Err())
	return "", nil
}

type pushPayload struct {
	Version uint64        `json:"version"`
	Results []queryResult `json:"results"`
}

func (c *sseConn) nextPush(t *testing.T) pushPayload {
	t.Helper()
	for {
		typ, data := c.next(t)
		if typ != "estimate" {
			continue
		}
		var p pushPayload
		if err := json.Unmarshal(data, &p); err != nil {
			t.Fatalf("push %q: %v", data, err)
		}
		return p
	}
}

func ingestJSON(t *testing.T, url string, updates string) {
	t.Helper()
	resp, err := http.Post(url+"/v1/ingest", "application/json", strings.NewReader(`{"updates":[`+updates+`]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("ingest status %d: %s", resp.StatusCode, body)
	}
}

func TestSubscribeInitialPushThenVersionedPushes(t *testing.T) {
	_, ts, eng := subTestServer(t, Config{})
	ingestJSON(t, ts.URL, `{"instance":0,"key":"alpha","weight":2},{"instance":1,"key":"alpha","weight":1}`)

	c := subscribeSSE(t, context.Background(), ts.URL, "func=max&estimator=lstar")
	initial := c.nextPush(t)
	if initial.Version != eng.Version() {
		t.Fatalf("initial push version %d, engine %d", initial.Version, eng.Version())
	}
	if len(initial.Results) != 1 || initial.Results[0].Estimate == nil {
		t.Fatalf("initial push results %+v", initial.Results)
	}

	ingestJSON(t, ts.URL, `{"instance":0,"key":"beta","weight":5}`)
	push := c.nextPush(t)
	if push.Version <= initial.Version {
		t.Fatalf("push version %d did not advance past %d", push.Version, initial.Version)
	}
	if *push.Results[0].Estimate <= *initial.Results[0].Estimate {
		t.Fatalf("estimate did not grow: %g -> %g", *initial.Results[0].Estimate, *push.Results[0].Estimate)
	}
}

// A burst of writes inside one debounce window must yield ONE push whose
// version reflects the whole burst — not one event per write.
func TestSubscribeCoalescesWriteBursts(t *testing.T) {
	s, ts, eng := subTestServer(t, Config{SubscribeDebounce: 80 * time.Millisecond})
	c := subscribeSSE(t, context.Background(), ts.URL, "")
	_ = c.nextPush(t) // initial, version 0

	const burst = 20
	for i := 0; i < burst; i++ {
		ingestJSON(t, ts.URL, fmt.Sprintf(`{"instance":0,"key":"k%d","weight":%d}`, i, i+1))
	}
	push := c.nextPush(t)
	if push.Version != eng.Version() {
		// The debounce window may have closed mid-burst; at most one more
		// push finishes the burst.
		push = c.nextPush(t)
	}
	if push.Version != eng.Version() {
		t.Fatalf("burst push version %d, engine %d", push.Version, eng.Version())
	}
	if co := s.wire.coalesced.Load(); co == 0 {
		t.Fatal("no wakeups coalesced across a 20-write burst inside one debounce window")
	}
	if pushed := s.wire.pushed.Load(); pushed > 4 {
		t.Fatalf("%d events pushed for one burst; want coalescing to a handful", pushed)
	}
}

// A subscriber that never reads must not block ingest or the broadcaster;
// its oldest events are dropped and the last delivered event is the
// newest state.
func TestSubscribeSlowConsumerDropsOldest(t *testing.T) {
	s, _, eng := subTestServer(t, Config{SubscribeDebounce: time.Millisecond})
	sub := &subscriber{
		shareKey: "k",
		events:   make(chan pushEvent, subscriberBuffer),
	}
	sub.lastVersion.Store(subVersionNone)
	pl := s.newPlanner()
	q, err := pl.plan(querySpec{})
	if err != nil {
		t.Fatal(err)
	}
	sub.queries = []*plannedQuery{q}
	if err := s.broadcast.register(sub, 0); err != nil {
		t.Fatal(err)
	}
	defer s.broadcast.unregister(sub)

	// Overflow the buffer: each round delivers one event; nobody reads.
	rounds := subscriberBuffer + 5
	for i := 0; i < rounds; i++ {
		if err := eng.Ingest(0, uint64(i), float64(i+1)); err != nil {
			t.Fatal(err)
		}
		s.broadcast.round() // deterministic: drive rounds directly
	}
	if dropped := s.wire.dropped.Load(); dropped == 0 {
		t.Fatal("overflowing a never-reading subscriber dropped nothing")
	}
	// Drain the buffer: the newest queued event must carry the newest
	// version, and the queue length never exceeds its bound.
	var last pushEvent
	n := 0
	for {
		select {
		case last = <-sub.events:
			n++
			continue
		default:
		}
		break
	}
	if n > subscriberBuffer {
		t.Fatalf("queue held %d events, bound is %d", n, subscriberBuffer)
	}
	if last.version != eng.Version() {
		t.Fatalf("newest queued event has version %d, engine %d", last.version, eng.Version())
	}
}

func TestSubscribeClientDisconnectUnregisters(t *testing.T) {
	s, ts, _ := subTestServer(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	c := subscribeSSE(t, ctx, ts.URL, "")
	_ = c.nextPush(t)
	if n := s.wire.subsActive.Load(); n != 1 {
		t.Fatalf("active subscribers %d, want 1", n)
	}
	cancel() // client vanishes mid-connection
	deadline := time.Now().Add(5 * time.Second)
	for s.wire.subsActive.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscriber never unregistered after disconnect")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The broadcaster parks once the registry empties: a later mutation
	// must not panic or leak (nothing to push to).
	ingestJSON(t, ts.URL, `{"instance":0,"key":"after","weight":1}`)
}

func TestSubscribeDrainSendsFinalEventAndRefusesNew(t *testing.T) {
	s, ts, _ := subTestServer(t, Config{})
	c := subscribeSSE(t, context.Background(), ts.URL, "")
	_ = c.nextPush(t)
	s.Drain()
	for {
		typ, _ := c.next(t)
		if typ == "drain" {
			break
		}
	}
	resp, err := http.Get(ts.URL + "/v1/subscribe")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("subscribe while draining: %d, want 503", resp.StatusCode)
	}
}

func TestSubscribeLimitAndBadRequests(t *testing.T) {
	_, ts, _ := subTestServer(t, Config{MaxSubscribers: 1})
	c := subscribeSSE(t, context.Background(), ts.URL, "")
	_ = c.nextPush(t)

	get := func(raw string) (int, string) {
		resp, err := http.Get(ts.URL + "/v1/subscribe?" + raw)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if code, body := get("func=rg"); code != http.StatusServiceUnavailable {
		t.Fatalf("over-limit subscribe: %d %s, want 503", code, body)
	}
	cases := []string{
		"bogus=1",
		"estimator=nope",
		"statistic=unknown",
		"queries=[]",
		"queries=notjson",
		"queries=" + `[{"statistic":"sum"}]` + "&func=rg", // conflict
		"ids=12x",
	}
	// Free the slot so bad requests hit validation, not the limit.
	c.resp.Body.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, _ := get("bogus=1")
		if code == http.StatusBadRequest {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slot never freed after close")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, raw := range cases {
		if code, body := get(raw); code != http.StatusBadRequest {
			t.Fatalf("%q: status %d %s, want 400", raw, code, body)
		}
	}
}

func TestSubscribeMultiQueryMatchesBatchedQuery(t *testing.T) {
	_, ts, _ := subTestServer(t, Config{})
	ingestJSON(t, ts.URL, `{"instance":0,"key":"a","weight":2},{"instance":1,"key":"a","weight":3},{"instance":0,"key":"b","weight":1}`)

	specs := `[{"statistic":"sum","func":"rg","p":1,"estimator":"lstar"},{"statistic":"jaccard"},{"statistic":"sum","func":"max","keys":["a"]}]`
	c := subscribeSSE(t, context.Background(), ts.URL, "queries="+strings.ReplaceAll(specs, "\"", "%22"))
	push := c.nextPush(t)
	if len(push.Results) != 3 {
		t.Fatalf("%d results, want 3", len(push.Results))
	}

	resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(`{"queries":`+specs+`}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr queryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if qr.Version != push.Version {
		t.Fatalf("versions differ: query %d, push %d", qr.Version, push.Version)
	}
	for i := range qr.Results {
		if *qr.Results[i].Estimate != *push.Results[i].Estimate {
			t.Fatalf("result %d: query %g != push %g", i, *qr.Results[i].Estimate, *push.Results[i].Estimate)
		}
	}
}

func TestSubscribeHeartbeat(t *testing.T) {
	_, ts, _ := subTestServer(t, Config{SubscribeHeartbeat: 20 * time.Millisecond})
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/subscribe", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	deadline := time.Now().Add(5 * time.Second)
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), ": ping") {
			return
		}
		if time.Now().After(deadline) {
			break
		}
	}
	t.Fatal("no heartbeat comment observed")
}

// Concurrent subscribe/ingest/query churn; run under -race in CI.
func TestSubscribeConcurrentChurn(t *testing.T) {
	_, ts, _ := subTestServer(t, Config{SubscribeDebounce: time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				ingestJSON(t, ts.URL, fmt.Sprintf(`{"instance":%d,"key":"w%d-%d","weight":%d}`, w%2, w, i, i+1))
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				resp, err := http.Post(ts.URL+"/v1/query", "application/json",
					strings.NewReader(`{"queries":[{"statistic":"sum"}]}`))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	for s := 0; s < 8; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sctx, scancel := context.WithTimeout(ctx, 2*time.Second)
			defer scancel()
			req, err := http.NewRequestWithContext(sctx, http.MethodGet, ts.URL+"/v1/subscribe", nil)
			if err != nil {
				t.Error(err)
				return
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				return
			}
			// Read a few events then vanish mid-stream.
			sc := bufio.NewScanner(resp.Body)
			for i := 0; i < 6 && sc.Scan(); i++ {
			}
			resp.Body.Close()
		}()
	}
	wg.Wait()
}

// resumeSSE is subscribeSSE with a Last-Event-ID header — the SSE
// reconnect protocol (the browser EventSource replays the last id: line
// it saw).
func resumeSSE(t *testing.T, ctx context.Context, url, rawQuery, lastEventID string) *sseConn {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/v1/subscribe?"+rawQuery, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", lastEventID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("resume subscribe status %d: %s", resp.StatusCode, body)
	}
	c := &sseConn{resp: resp, sc: bufio.NewScanner(resp.Body)}
	t.Cleanup(func() { resp.Body.Close() })
	return c
}

// TestSubscribeLastEventIDResume pins SSE reconnect semantics: a client
// replaying an id BEHIND the engine gets the current estimate pushed
// immediately; a client already AT the engine's version gets nothing
// until the next real mutation (no redundant re-send of state it
// acknowledged); and a garbage header degrades to fresh-subscriber
// behavior, never an error.
func TestSubscribeLastEventIDResume(t *testing.T) {
	_, ts, eng := subTestServer(t, Config{})
	ingestJSON(t, ts.URL, `{"instance":0,"key":"alpha","weight":2},{"instance":1,"key":"alpha","weight":1}`)

	// First connection: note the id the server labels the current state
	// with, then drop the connection (scoped context).
	ctx1, cancel1 := context.WithCancel(context.Background())
	c1 := subscribeSSE(t, ctx1, ts.URL, "func=max&estimator=lstar")
	first := c1.nextPush(t)
	firstID := c1.lastID
	if firstID == "" {
		t.Fatal("initial push carried no id: line")
	}
	cancel1()

	// The cluster advances while the client is gone.
	ingestJSON(t, ts.URL, `{"instance":0,"key":"beta","weight":5}`)
	v2 := eng.Version()
	if v2 <= first.Version {
		t.Fatalf("engine version %d did not advance past %d", v2, first.Version)
	}

	// Behind-client resume: immediate catch-up push at the current
	// version.
	c2 := resumeSSE(t, context.Background(), ts.URL, "func=max&estimator=lstar", firstID)
	caught := c2.nextPush(t)
	if caught.Version != v2 {
		t.Fatalf("resume catch-up version %d, want %d", caught.Version, v2)
	}
	if *caught.Results[0].Estimate <= *first.Results[0].Estimate {
		t.Fatalf("resumed estimate did not grow: %g -> %g",
			*first.Results[0].Estimate, *caught.Results[0].Estimate)
	}

	// Caught-up client: no initial re-send; the first event it ever sees
	// is the push for the NEXT mutation.
	c3 := resumeSSE(t, context.Background(), ts.URL, "func=max&estimator=lstar", c2.lastID)
	ingestJSON(t, ts.URL, `{"instance":1,"key":"gamma","weight":7}`)
	next := c3.nextPush(t)
	if next.Version <= v2 {
		t.Fatalf("caught-up resume got version %d, want > %d (a redundant initial re-send)", next.Version, v2)
	}

	// Unparsable header: fresh-subscriber semantics, current state pushed.
	c4 := resumeSSE(t, context.Background(), ts.URL, "func=max&estimator=lstar", "not-a-version")
	fresh := c4.nextPush(t)
	if fresh.Version != eng.Version() {
		t.Fatalf("garbage Last-Event-ID: push version %d, want current %d", fresh.Version, eng.Version())
	}

	// The wire counters saw exactly the three parseable resume headers.
	_, stats := getJSON(t, ts.URL+"/v1/stats")
	wire, ok := stats["wire"].(map[string]any)
	if !ok {
		t.Fatalf("/v1/stats has no wire section: %v", stats)
	}
	if got := wire["resumes"]; got != float64(2) {
		t.Fatalf("wire.resumes = %v, want 2", got)
	}
}

// TestSubscribeLastEventIDAboveCurrentIsFresh pins the restart-safety
// half of resume: versions are process-local and reset when the server
// restarts, so a reconnecting client can replay an id far ABOVE the
// current version (its id came from the previous incarnation — or from a
// buggy client). Honoring it would suppress every push until the version
// caught up, a silent gap despite changed state; instead it degrades to
// fresh-subscriber semantics — an immediate initial push at the current
// version — and does not count as a resume.
func TestSubscribeLastEventIDAboveCurrentIsFresh(t *testing.T) {
	_, ts, eng := subTestServer(t, Config{})
	ingestJSON(t, ts.URL, `{"instance":0,"key":"alpha","weight":2}`)

	c := resumeSSE(t, context.Background(), ts.URL, "func=max&estimator=lstar",
		fmt.Sprintf("%d", eng.Version()+1000000))
	fresh := c.nextPush(t)
	if fresh.Version != eng.Version() {
		t.Fatalf("future Last-Event-ID: push version %d, want immediate push at current %d",
			fresh.Version, eng.Version())
	}

	_, stats := getJSON(t, ts.URL+"/v1/stats")
	wire, ok := stats["wire"].(map[string]any)
	if !ok {
		t.Fatalf("/v1/stats has no wire section: %v", stats)
	}
	if got := wire["resumes"]; got != float64(0) {
		t.Fatalf("wire.resumes = %v, want 0 (a clamped id is not a resume)", got)
	}
}
