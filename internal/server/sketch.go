package server

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/store"
)

// This file is the cluster sketch-exchange face of the API — the binary
// scatter-gather wire a coordinator speaks to its nodes:
//
//	GET  /v1/sketch  the engine state as the same store.EncodeState
//	                 artifact /v1/export serves, plus an ETag carrying the
//	                 engine mutation version. If-None-Match with the
//	                 current version answers 304 without cutting or
//	                 encoding anything — the per-node version-vector cache
//	                 that makes steady-state coordinator queries transfer
//	                 zero state bytes.
//	POST /v1/merge   fold an artifact into the live engine (lossless
//	                 coordinated-sketch merge, exactly /v1/import's
//	                 semantics) WITHOUT checkpointing: peers exchanging
//	                 transient reduced states must not force a disk write
//	                 per gather. Durability stays the receiver's own
//	                 checkpoint policy.
//
// One-codec discipline: both endpoints move store.EncodeState bytes, so
// wire == disk == export — corruption checking (CRC), seed fingerprints
// and bounds validation all come from the single decoder, and a hostile
// peer's bytes fail closed with a structured 400 before the engine is
// touched (DecodeState never partially applies; MergeState validates
// before mutating).

// etagFor renders the engine mutation version as a strong ETag.
func etagFor(version uint64) string {
	return `"` + strconv.FormatUint(version, 10) + `"`
}

// matchETag reports whether an If-None-Match header names the version.
// Weak validators (W/ prefix) match too: the payload is a deterministic
// function of the version, so weak and strong agree here.
func matchETag(header string, version uint64) bool {
	want := strconv.FormatUint(version, 10)
	for _, part := range strings.Split(header, ",") {
		tag := strings.TrimSpace(part)
		tag = strings.TrimPrefix(tag, "W/")
		if tag == `"`+want+`"` || tag == "*" {
			return true
		}
	}
	return false
}

// handleSketch serves the binary state artifact with version-vector
// caching: ETag is the engine mutation version, and a matching
// If-None-Match answers 304 from one lock-free atomic load — no cut, no
// encoding, no body.
func (s *Server) handleSketch(w http.ResponseWriter, r *http.Request) (int, error) {
	if err := checkParams(r.URL.Query()); err != nil {
		return http.StatusBadRequest, err
	}
	if inm := r.Header.Get("If-None-Match"); inm != "" {
		if v := s.eng.Version(); matchETag(inm, v) {
			w.Header().Set("ETag", etagFor(v))
			w.WriteHeader(http.StatusNotModified)
			return http.StatusNotModified, nil
		}
	}
	// The cut's own version (not a separate Version() call) labels the
	// bytes: a write racing this request must not let a pre-write artifact
	// carry a post-write ETag, or the caller's cache would pin stale state.
	st := s.eng.DumpState()
	data := store.EncodeState(st)
	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set("ETag", etagFor(st.Version))
	h.Set("Content-Length", fmt.Sprint(len(data)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data) // header is out; a client hang-up is not our error
	return http.StatusOK, nil
}

// handleMerge folds a peer's binary artifact into the engine. Unlike
// /v1/import it never checkpoints — the cluster gather path calls this at
// query frequency. Responds with the post-merge engine version so the
// sender can confirm visibility.
func (s *Server) handleMerge(r *http.Request) (int, any, error) {
	if err := checkParams(r.URL.Query()); err != nil {
		return http.StatusBadRequest, nil, err
	}
	data, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, maxImportBody))
	if err != nil {
		return http.StatusBadRequest, nil, fmt.Errorf("reading artifact: %w", err)
	}
	st, err := store.DecodeState(data)
	if err != nil {
		return http.StatusBadRequest, nil, err
	}
	if err := s.eng.MergeState(st); err != nil {
		return http.StatusBadRequest, nil, err
	}
	return http.StatusOK, map[string]any{
		"merged_keys":    len(st.Keys),
		"merged_ingests": st.Ingests,
		"version":        s.eng.Version(),
	}, nil
}
