package server

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/estreg"
	"repro/internal/funcs"
	"repro/internal/sampling"
)

// POST /v1/query evaluates a batch of (statistic, estimator, selection)
// triples over ONE shared engine snapshot: the consistent cut and its
// conditional-threshold reduction (the expensive part of the read path)
// are paid once per batch, estimator instances are shared across queries
// naming the same (estimator, statistic) pair, and every query then reads
// the same outcomes — so a batch is both cheaper and more consistent than
// the equivalent sequence of /v1/estimate/* calls.
//
// Request:
//
//	{"queries": [
//	  {"statistic": "sum", "func": "rg", "p": 1, "estimator": "lstar"},
//	  {"statistic": "sum", "func": "rg", "p": 1, "estimator": "ustar",
//	   "keys": ["alpha", "beta"]},
//	  {"statistic": "jaccard"},
//	  {"statistic": "sum", "func": "and",
//	   "estimator": "order:vals=0.25,0.5,1;by=desc"}
//	]}
//
// Response: {"version": N, "snapshot": {...}, "results": [...]} with one
// result per query in request order. A query that fails (unknown estimator, arity
// mismatch, unknown key) carries its own {"error": {...}} and does not
// fail the batch; the request as a whole is 400 only when malformed.

// maxQueryBody caps /v1/query request bodies (1 MiB).
const maxQueryBody = 1 << 20

// maxBatchQueries caps the queries per batch.
const maxBatchQueries = 64

// querySpec is one (statistic, estimator, selection) triple.
type querySpec struct {
	// Statistic is "sum" (default) or "jaccard".
	Statistic string `json:"statistic,omitempty"`
	// Func, P, C name the item function for sum queries (as the
	// /v1/estimate/sum query parameters; default rg with p=1).
	Func string    `json:"func,omitempty"`
	P    *float64  `json:"p,omitempty"`
	C    []float64 `json:"c,omitempty"`
	// Estimator is a registry name; empty uses the server default.
	Estimator string `json:"estimator,omitempty"`
	// Keys/IDs select a subset of items (string keys are hashed with
	// sampling.StringKey, IDs are raw). Empty selects every item.
	Keys []string `json:"keys,omitempty"`
	IDs  []uint64 `json:"ids,omitempty"`
}

// queryResult is one query's answer.
type queryResult struct {
	Statistic    string       `json:"statistic"`
	Estimator    string       `json:"estimator,omitempty"`
	Estimate     *float64     `json:"estimate,omitempty"`
	Items        int          `json:"items,omitempty"`
	SecondMoment *float64     `json:"second_moment,omitempty"`
	MaxItem      *float64     `json:"max_item_estimate,omitempty"`
	Meta         *estreg.Meta `json:"meta,omitempty"`
	Error        *apiError    `json:"error,omitempty"`

	status int // HTTP status the error maps to on the alias endpoints
}

type queryRequest struct {
	Queries []querySpec `json:"queries"`
}

type queryResponse struct {
	Version  uint64        `json:"version"`
	Snapshot snapshotInfo  `json:"snapshot"`
	Results  []queryResult `json:"results"`
	// Degraded is present when the snapshot was assembled without every
	// cluster node (partial/quorum read policy): the results are
	// well-defined lower-bound estimates over the reachable subset.
	Degraded *cluster.Degraded `json:"degraded,omitempty"`
}

// snapshotInfo summarizes the shared snapshot a batch was answered from.
type snapshotInfo struct {
	Keys           int `json:"keys"`
	SampledEntries int `json:"sampled_entries"`
	TotalEntries   int `json:"total_entries"`
}

// plannedQuery is a parsed, estimator-resolved query awaiting a snapshot.
type plannedQuery struct {
	spec      querySpec
	statistic string
	planKey   string  // the planner cache key: statistic + estimator + func
	f         funcs.F // sum only
	est       estreg.Estimator
	meta      estreg.Meta
	orEst     estreg.Estimator // jaccard: est estimates AND, orEst OR
}

// memoKey canonicalizes the full query — plan plus selection — for the
// per-version result memo. Key strings are quoted so no item name can
// collide with the separators.
func (q *plannedQuery) memoKey() string {
	if len(q.spec.Keys) == 0 && len(q.spec.IDs) == 0 {
		return q.planKey
	}
	var b strings.Builder
	b.WriteString(q.planKey)
	b.WriteString("\x00keys=")
	for _, k := range q.spec.Keys {
		b.WriteString(strconv.Quote(k))
		b.WriteByte(',')
	}
	b.WriteString("\x00ids=")
	for _, id := range q.spec.IDs {
		b.WriteString(strconv.FormatUint(id, 10))
		b.WriteByte(',')
	}
	return b.String()
}

// planner resolves query specs against the server's registry, sharing
// built estimator instances across queries of one batch (order estimators
// carry a per-instance memo, so sharing is a real win).
type planner struct {
	s     *Server
	cache map[string]*plannedQuery
}

func (s *Server) newPlanner() *planner {
	return &planner{s: s, cache: make(map[string]*plannedQuery)}
}

// planOne resolves a single spec outside a batch (the alias endpoints).
func (s *Server) planOne(spec querySpec) (*plannedQuery, error) {
	return s.newPlanner().plan(spec)
}

func (p *planner) plan(spec querySpec) (*plannedQuery, error) {
	estName := spec.Estimator
	if estName == "" {
		estName = p.s.defaultEst
	}
	statistic := spec.Statistic
	if statistic == "" {
		statistic = "sum"
	}
	sp := statisticSpec{Func: spec.Func, P: spec.P, C: spec.C}
	key := statistic + "\x00" + estName + "\x00" + sp.key()
	if q, ok := p.cache[key]; ok {
		return q, nil
	}
	q := &plannedQuery{spec: spec, statistic: statistic, planKey: key}
	switch statistic {
	case "sum":
		f, err := sp.build()
		if err != nil {
			return nil, err
		}
		if a := f.Arity(); a != 0 && a != p.s.eng.Config().Instances {
			return nil, fmt.Errorf("func %s needs %d instances, engine has %d", f.Name(), a, p.s.eng.Config().Instances)
		}
		q.f = f
		q.est, q.meta, err = p.s.reg.Build(estName, f, p.s.eng.Config().Instances)
		if err != nil {
			return nil, err
		}
	case "jaccard":
		if spec.Func != "" || spec.P != nil || len(spec.C) != 0 {
			return nil, errors.New("statistic jaccard takes no func/p/c (it is the AND/OR sum ratio)")
		}
		var err error
		q.est, q.meta, err = p.s.reg.Build(estName, funcs.AndTuple{}, p.s.eng.Config().Instances)
		if err != nil {
			return nil, err
		}
		q.orEst, _, err = p.s.reg.Build(estName, funcs.OrTuple{}, p.s.eng.Config().Instances)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("unknown statistic %q (have sum, jaccard)", statistic)
	}
	p.cache[key] = q
	return q, nil
}

// failure marks a per-query error on the result.
func (q *plannedQuery) failure(status int, err error) queryResult {
	return queryResult{
		Statistic: q.statistic,
		Estimator: q.meta.Estimator,
		Error:     &apiError{Code: errCode(status), Message: err.Error()},
		status:    status,
	}
}

// items resolves the spec's selection against the snapshot view (nil =
// all). The selection is a set: a key named twice, or once as a string and
// once as its raw id, counts once — never double-counting the sum.
func (q *plannedQuery) items(snap engine.SnapshotView) ([]int, error) {
	if len(q.spec.Keys) == 0 && len(q.spec.IDs) == 0 {
		return nil, nil
	}
	items := make([]int, 0, len(q.spec.Keys)+len(q.spec.IDs))
	seen := make(map[int]bool, cap(items))
	add := func(j int) {
		if !seen[j] {
			seen[j] = true
			items = append(items, j)
		}
	}
	for _, name := range q.spec.Keys {
		j, ok := snap.Index(sampling.StringKey(name))
		if !ok {
			return nil, fmt.Errorf("unknown key %q (never ingested)", name)
		}
		add(j)
	}
	for _, id := range q.spec.IDs {
		j, ok := snap.Index(id)
		if !ok {
			return nil, fmt.Errorf("unknown id %d (never ingested)", id)
		}
		add(j)
	}
	return items, nil
}

// eval answers the query from the shared snapshot view. Whole-dataset
// sums go through the per-partition estimate cache when one is supplied:
// only partitions whose epoch moved re-run the estimator, and the merged
// outcome array is never materialized. Subset selections and cache
// misses (or estimator errors, which must surface with estreg.Sum's
// exact message) fall back to estreg.Sum over the materialized snapshot
// — the two paths are bit-identical by construction.
func (q *plannedQuery) eval(view engine.SnapshotView, partials *partialEstimates) queryResult {
	items, err := q.items(view)
	if err != nil {
		return q.failure(http.StatusBadRequest, err)
	}
	sum := func(est estreg.Estimator, variant string) (estreg.SumResult, error) {
		if items == nil && partials != nil {
			if res, ok := partials.sum(q.planKey+variant, est, view); ok {
				return res, nil
			}
		}
		return estreg.Sum(est, view.Snapshot().Sample.Outcomes, items)
	}
	switch q.statistic {
	case "jaccard":
		and, err := sum(q.est, "\x00and")
		if err != nil {
			return q.failure(http.StatusBadRequest, err)
		}
		or, err := sum(q.orEst, "\x00or")
		if err != nil {
			return q.failure(http.StatusBadRequest, err)
		}
		jac := 0.0
		if or.Estimate != 0 {
			jac = and.Estimate / or.Estimate
		}
		if err := finite(jac); err != nil {
			return q.failure(http.StatusInternalServerError, err)
		}
		return queryResult{
			Statistic: "jaccard",
			Estimator: q.meta.Estimator,
			Estimate:  &jac,
			Items:     and.Items,
		}
	default: // "sum"; plan admits nothing else
		res, err := sum(q.est, "")
		if err != nil {
			return q.failure(http.StatusBadRequest, err)
		}
		if err := finite(res.Estimate); err != nil {
			return q.failure(http.StatusInternalServerError, err)
		}
		meta := q.meta
		return queryResult{
			Statistic:    "sum",
			Estimator:    meta.Estimator,
			Estimate:     &res.Estimate,
			Items:        res.Items,
			SecondMoment: &res.SecondMoment,
			MaxItem:      &res.MaxItem,
			Meta:         &meta,
		}
	}
}

func (s *Server) handleQuery(r *http.Request) (int, any, error) {
	var req queryRequest
	if err := decodeStrict(r, maxQueryBody, &req); err != nil {
		return http.StatusBadRequest, nil, err
	}
	if len(req.Queries) == 0 {
		return http.StatusBadRequest, nil, errors.New("empty query batch")
	}
	if len(req.Queries) > maxBatchQueries {
		return http.StatusBadRequest, nil, fmt.Errorf("batch of %d queries exceeds %d", len(req.Queries), maxBatchQueries)
	}

	// Plan every query before touching the engine, so malformed queries
	// cost nothing and well-formed ones share built estimators.
	pl := s.newPlanner()
	planned := make([]*plannedQuery, len(req.Queries))
	results := make([]queryResult, len(req.Queries))
	for i, spec := range req.Queries {
		q, err := pl.plan(spec)
		if err != nil {
			statistic := spec.Statistic
			if statistic == "" {
				statistic = "sum"
			}
			results[i] = queryResult{
				Statistic: statistic,
				Error:     &apiError{Code: errCode(http.StatusBadRequest), Message: err.Error()},
			}
			continue
		}
		// The planner caches by (statistic, estimator, func); the
		// selection is per-query, so rebind it.
		bound := *q
		bound.spec = spec
		planned[i] = &bound
	}

	// One shared snapshot for the whole batch — served from the versioned
	// cache, so a batch against an unchanged engine takes no shard locks
	// and does no reduction work; repeated queries additionally resolve
	// from the per-version result memo without re-running estimators.
	view, degraded, err := s.acquire(r.Context())
	if err != nil {
		return acquireStatus(err), nil, err
	}
	memo := s.memoFor(view.Version)
	for i, q := range planned {
		if q == nil {
			continue // planning error already recorded
		}
		results[i] = s.evalMemoized(q, view, memo)
	}
	return http.StatusOK, queryResponse{
		Version: view.Version,
		Snapshot: snapshotInfo{
			Keys:           len(view.Keys),
			SampledEntries: view.SampledEntries(),
			TotalEntries:   view.TotalEntries(),
		},
		Results:  results,
		Degraded: degraded,
	}, nil
}
