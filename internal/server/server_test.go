package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/estreg"
	"repro/internal/funcs"
	"repro/internal/sampling"
)

func newTestServer(t *testing.T) (*httptest.Server, sampling.SeedHash) {
	t.Helper()
	hash := sampling.NewSeedHash(7)
	eng, err := engine.New(engine.Config{Instances: 2, K: 8, Shards: 4, Hash: hash})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(eng))
	t.Cleanup(ts.Close)
	return ts, hash
}

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp, decodeBody(t, resp)
}

func getJSON(t *testing.T, url string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp, decodeBody(t, resp)
}

func decodeBody(t *testing.T, resp *http.Response) map[string]any {
	t.Helper()
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("decoding %q: %v", raw, err)
	}
	return m
}

// ingestExample1 streams the paper's Example 1 first two instances via the
// HTTP API, keyed by item id.
func ingestExample1(t *testing.T, url string) dataset.Dataset {
	t.Helper()
	full := dataset.Example1()
	d, err := dataset.New(nil, full.W[:2])
	if err != nil {
		t.Fatal(err)
	}
	var updates []map[string]any
	for i := 0; i < d.R(); i++ {
		for k := 0; k < d.N(); k++ {
			if d.W[i][k] > 0 {
				updates = append(updates, map[string]any{"instance": i, "id": k, "weight": d.W[i][k]})
			}
		}
	}
	resp, body := postJSON(t, url+"/v1/ingest", map[string]any{"updates": updates})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d: %v", resp.StatusCode, body)
	}
	if got := int(body["ingested"].(float64)); got != len(updates) {
		t.Fatalf("ingested %d, want %d", got, len(updates))
	}
	return d
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, body := getJSON(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz: status %d body %v", resp.StatusCode, body)
	}
}

func TestIngestAndEstimateSum(t *testing.T) {
	ts, hash := newTestServer(t)
	d := ingestExample1(t, ts.URL)

	batch, err := dataset.SampleBottomK(d, 8, hash)
	if err != nil {
		t.Fatal(err)
	}
	f, err := funcs.NewRG(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, est := range []struct {
		name string
		kind dataset.EstimatorKind
	}{{"lstar", dataset.KindLStar}, {"ustar", dataset.KindUStar}, {"ht", dataset.KindHT}} {
		resp, body := getJSON(t, ts.URL+"/v1/estimate/sum?func=rg&p=1&estimator="+est.name)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d body %v", est.name, resp.StatusCode, body)
		}
		want, err := batch.EstimateSum(f, est.kind, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := body["estimate"].(float64); got != want {
			t.Errorf("%s estimate = %v, want %v (batch)", est.name, got, want)
		}
	}
}

func TestEstimateSumFuncs(t *testing.T) {
	ts, _ := newTestServer(t)
	ingestExample1(t, ts.URL)
	for _, query := range []string{
		"func=rgplus&p=2",
		"func=max",
		"func=or",
		"func=and",
		"func=lincomb&c=1,-1&p=1",
	} {
		resp, body := getJSON(t, ts.URL+"/v1/estimate/sum?"+query)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d body %v", query, resp.StatusCode, body)
			continue
		}
		if est := body["estimate"].(float64); est < 0 || math.IsNaN(est) {
			t.Errorf("%s: estimate %v not nonnegative", query, est)
		}
	}
}

func TestEstimateJaccard(t *testing.T) {
	ts, hash := newTestServer(t)
	d := ingestExample1(t, ts.URL)
	resp, body := getJSON(t, ts.URL+"/v1/estimate/jaccard")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("jaccard: status %d body %v", resp.StatusCode, body)
	}
	batch, err := dataset.SampleBottomK(d, 8, hash)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := body["jaccard"].(float64), funcs.JaccardEstimate(batch.Outcomes); got != want {
		t.Errorf("jaccard = %v, want %v (batch)", got, want)
	}
}

func TestStringKeysCoordinate(t *testing.T) {
	// Two servers with the same salt must agree on estimates when fed the
	// same named items, even via different key spellings of the batch.
	ts, _ := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/ingest", map[string]any{
		"updates": []map[string]any{
			{"instance": 0, "key": "alpha", "weight": 0.9},
			{"instance": 1, "key": "alpha", "weight": 0.4},
			{"instance": 0, "key": "beta", "weight": 0.2},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d: %v", resp.StatusCode, body)
	}
	resp, body = getJSON(t, ts.URL+"/v1/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d: %v", resp.StatusCode, body)
	}
	eng := body["engine"].(map[string]any)
	if got := int(eng["keys"].(float64)); got != 2 {
		t.Errorf("engine keys = %d, want 2", got)
	}
	if got := int(eng["active_entries"].(float64)); got != 3 {
		t.Errorf("active entries = %d, want 3", got)
	}
}

func TestIngestKeyHandling(t *testing.T) {
	ts, _ := newTestServer(t)
	// An explicit empty-string key is a real key (StringKey("")), distinct
	// from raw id 0; zero weights are accepted no-ops reported as skipped.
	resp, body := postJSON(t, ts.URL+"/v1/ingest", map[string]any{
		"updates": []map[string]any{
			{"instance": 0, "key": "", "weight": 1.0},
			{"instance": 0, "id": 0, "weight": 2.0},
			{"instance": 0, "key": "zeroed", "weight": 0.0},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d: %v", resp.StatusCode, body)
	}
	if got := int(body["ingested"].(float64)); got != 2 {
		t.Errorf("ingested = %d, want 2", got)
	}
	if got := int(body["skipped"].(float64)); got != 1 {
		t.Errorf("skipped = %d, want 1", got)
	}
	resp, body = getJSON(t, ts.URL+"/v1/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d: %v", resp.StatusCode, body)
	}
	eng := body["engine"].(map[string]any)
	if got := int(eng["keys"].(float64)); got != 2 {
		t.Errorf("engine keys = %d, want 2 (empty-string key distinct from id 0)", got)
	}
	if got := int(eng["ingests"].(float64)); got != 2 {
		t.Errorf("engine ingests = %d, want 2 (matches response's ingested)", got)
	}
}

func TestStatsCounters(t *testing.T) {
	ts, _ := newTestServer(t)
	ingestExample1(t, ts.URL)
	getJSON(t, ts.URL+"/v1/estimate/jaccard")
	getJSON(t, ts.URL+"/v1/estimate/sum?func=nope") // one error

	resp, body := getJSON(t, ts.URL+"/v1/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d: %v", resp.StatusCode, body)
	}
	endpoints := body["endpoints"].(map[string]any)
	jac := endpoints["GET /v1/estimate/jaccard"].(map[string]any)
	if got := jac["requests"].(float64); got != 1 {
		t.Errorf("jaccard requests = %v, want 1", got)
	}
	sum := endpoints["GET /v1/estimate/sum"].(map[string]any)
	if got := sum["errors"].(float64); got != 1 {
		t.Errorf("sum errors = %v, want 1", got)
	}
	if up := body["uptime_seconds"].(float64); up < 0 {
		t.Errorf("uptime %v negative", up)
	}
}

func TestErrorPaths(t *testing.T) {
	ts, _ := newTestServer(t)
	for _, tc := range []struct {
		name string
		do   func() (*http.Response, map[string]any)
		code int
	}{
		{"ingest bad json", func() (*http.Response, map[string]any) {
			resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", bytes.NewReader([]byte("{nope")))
			if err != nil {
				t.Fatal(err)
			}
			return resp, decodeBody(t, resp)
		}, http.StatusBadRequest},
		{"ingest unknown field", func() (*http.Response, map[string]any) {
			return postJSON(t, ts.URL+"/v1/ingest", map[string]any{"rows": []int{1}})
		}, http.StatusBadRequest},
		{"ingest empty batch", func() (*http.Response, map[string]any) {
			return postJSON(t, ts.URL+"/v1/ingest", map[string]any{"updates": []any{}})
		}, http.StatusBadRequest},
		{"ingest bad instance", func() (*http.Response, map[string]any) {
			return postJSON(t, ts.URL+"/v1/ingest", map[string]any{
				"updates": []map[string]any{{"instance": 9, "key": "x", "weight": 1}},
			})
		}, http.StatusBadRequest},
		{"ingest negative weight", func() (*http.Response, map[string]any) {
			return postJSON(t, ts.URL+"/v1/ingest", map[string]any{
				"updates": []map[string]any{{"instance": 0, "key": "x", "weight": -1}},
			})
		}, http.StatusBadRequest},
		{"sum unknown func", func() (*http.Response, map[string]any) {
			return getJSON(t, ts.URL+"/v1/estimate/sum?func=nope")
		}, http.StatusBadRequest},
		{"sum unknown estimator", func() (*http.Response, map[string]any) {
			return getJSON(t, ts.URL+"/v1/estimate/sum?estimator=nope")
		}, http.StatusBadRequest},
		{"sum bad p", func() (*http.Response, map[string]any) {
			return getJSON(t, ts.URL+"/v1/estimate/sum?func=rg&p=zzz")
		}, http.StatusBadRequest},
		{"sum lincomb missing c", func() (*http.Response, map[string]any) {
			return getJSON(t, ts.URL+"/v1/estimate/sum?func=lincomb")
		}, http.StatusBadRequest},
		{"sum lincomb bad c", func() (*http.Response, map[string]any) {
			return getJSON(t, ts.URL+"/v1/estimate/sum?func=lincomb&c=1,x")
		}, http.StatusBadRequest},
		{"sum arity mismatch", func() (*http.Response, map[string]any) {
			// lincomb with 3 coefficients on a 2-instance engine.
			return getJSON(t, ts.URL+"/v1/estimate/sum?func=lincomb&c=1,2,3")
		}, http.StatusBadRequest},
	} {
		resp, body := tc.do()
		if resp.StatusCode != tc.code {
			t.Errorf("%s: status %d, want %d (body %v)", tc.name, resp.StatusCode, tc.code, body)
			continue
		}
		if _, ok := body["error"]; !ok {
			t.Errorf("%s: error body missing: %v", tc.name, body)
		}
	}

	// Wrong methods hit the mux's method matching.
	resp, err := http.Get(ts.URL + "/v1/ingest")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/ingest status %d, want 405", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/estimate/sum", "application/json", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/estimate/sum status %d, want 405", resp.StatusCode)
	}
}

func TestNonFiniteEstimateIsAnError(t *testing.T) {
	// A sum of near-MaxFloat64 weights overflows to +Inf, which JSON
	// cannot carry; the server must answer 500 with an error body, not
	// an empty 200.
	ts, _ := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/ingest", map[string]any{
		"updates": []map[string]any{
			{"instance": 0, "id": 0, "weight": 1e308},
			{"instance": 0, "id": 1, "weight": 1e308},
			{"instance": 0, "id": 2, "weight": 1e308},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d: %v", resp.StatusCode, body)
	}
	resp, body = getJSON(t, ts.URL+"/v1/estimate/sum?func=max")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500 (body %v)", resp.StatusCode, body)
	}
	if _, ok := body["error"]; !ok {
		t.Fatalf("error body missing: %v", body)
	}
}

func TestRGPlusArityGuard(t *testing.T) {
	// rgplus needs exactly 2 instances; a 3-instance engine must reject it
	// with 400 rather than panic.
	hash := sampling.NewSeedHash(1)
	eng, err := engine.New(engine.Config{Instances: 3, K: 4, Hash: hash})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(eng))
	defer ts.Close()
	resp, body := getJSON(t, ts.URL+"/v1/estimate/sum?func=rgplus")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 (body %v)", resp.StatusCode, body)
	}
}

func TestConcurrentTraffic(t *testing.T) {
	// Parallel ingest + query traffic must stay consistent (run with
	// -race in CI).
	ts, _ := newTestServer(t)
	done := make(chan error, 8)
	for g := 0; g < 4; g++ {
		go func(g int) {
			for j := 0; j < 20; j++ {
				key := fmt.Sprintf("item-%d-%d", g, j%10)
				raw, _ := json.Marshal(map[string]any{
					"updates": []map[string]any{{"instance": g % 2, "key": key, "weight": float64(j + 1)}},
				})
				resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", bytes.NewReader(raw))
				if err != nil {
					done <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			done <- nil
		}(g)
		go func() {
			for j := 0; j < 10; j++ {
				resp, err := http.Get(ts.URL + "/v1/estimate/jaccard")
				if err != nil {
					done <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			done <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	resp, body := getJSON(t, ts.URL+"/v1/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d: %v", resp.StatusCode, body)
	}
	eng := body["engine"].(map[string]any)
	if got := int(eng["keys"].(float64)); got != 40 {
		t.Errorf("engine keys = %d, want 40", got)
	}
}

// ---- /v1/query: batched multi-statistic queries over one snapshot ----

// ladderDataset builds a deterministic 2-instance weight matrix whose
// positive values lie on the {0.25, 0.5, 1} ladder, so every registered
// estimator — including the discrete order-optimal family — applies.
func ladderDataset(t *testing.T, n int) dataset.Dataset {
	t.Helper()
	ladder := []float64{0.25, 0.5, 1, 0} // index 3 = absent entry
	w := make([][]float64, 2)
	for i := range w {
		w[i] = make([]float64, n)
		for k := 0; k < n; k++ {
			w[i][k] = ladder[(k+3*i)%4]
		}
	}
	d, err := dataset.New(nil, w)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func ingestDataset(t *testing.T, url string, d dataset.Dataset) {
	t.Helper()
	var updates []map[string]any
	for i := 0; i < d.R(); i++ {
		for k := 0; k < d.N(); k++ {
			if d.W[i][k] > 0 {
				updates = append(updates, map[string]any{"instance": i, "id": k, "weight": d.W[i][k]})
			}
		}
	}
	resp, body := postJSON(t, url+"/v1/ingest", map[string]any{"updates": updates})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d: %v", resp.StatusCode, body)
	}
}

// TestQueryRoundTripsAllEstimators is the acceptance check for the
// estimator registry: every registered estimator name round-trips through
// POST /v1/query and matches its batch counterpart bit-for-bit on the
// same snapshot (the engine's outcomes are bit-identical to
// dataset.SampleBottomK, and estreg.Sum accumulates like the batch
// pipeline, so serving must introduce no drift at all).
func TestQueryRoundTripsAllEstimators(t *testing.T) {
	ts, hash := newTestServer(t)
	d := ladderDataset(t, 40)
	ingestDataset(t, ts.URL, d)
	batch, err := dataset.SampleBottomK(d, 8, hash)
	if err != nil {
		t.Fatal(err)
	}
	f, err := funcs.NewRG(1)
	if err != nil {
		t.Fatal(err)
	}
	reg := estreg.Default()
	names := []string{
		"lstar",
		"ustar",
		"ht",
		"voptimal",
		"order:vals=0.25,0.5,1;by=asc",
		"order:vals=0.25,0.5,1;by=desc",
		"order:vals=0.25,0.5,1;by=near:0.5",
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			est, meta, err := reg.Build(name, f, d.R())
			if err != nil {
				t.Fatal(err)
			}
			want, wantErr := estreg.Sum(est, batch.Outcomes, nil)
			resp, body := postJSON(t, ts.URL+"/v1/query", map[string]any{
				"queries": []map[string]any{{"func": "rg", "p": 1, "estimator": name}},
			})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %v", resp.StatusCode, body)
			}
			res := body["results"].([]any)[0].(map[string]any)
			if wantErr != nil {
				if _, ok := res["error"]; !ok {
					t.Fatalf("batch errored (%v) but serving succeeded: %v", wantErr, res)
				}
				return
			}
			if e, ok := res["error"]; ok {
				t.Fatalf("query error: %v", e)
			}
			if got := res["estimate"].(float64); got != want.Estimate {
				t.Errorf("estimate = %v, want %v (batch)", got, want.Estimate)
			}
			if got := res["second_moment"].(float64); got != want.SecondMoment {
				t.Errorf("second_moment = %v, want %v", got, want.SecondMoment)
			}
			if got := int(res["items"].(float64)); got != want.Items {
				t.Errorf("items = %d, want %d", got, want.Items)
			}
			gotMeta := res["meta"].(map[string]any)
			if gotMeta["estimator"] != meta.Estimator {
				t.Errorf("meta.estimator = %v, want %v", gotMeta["estimator"], meta.Estimator)
			}
			snap := body["snapshot"].(map[string]any)
			if got := int(snap["total_entries"].(float64)); got != batch.TotalEntries {
				t.Errorf("snapshot total_entries = %d, want %d", got, batch.TotalEntries)
			}
		})
	}
}

// TestQueryBatchSharedSnapshot exercises one batch mixing statistics,
// estimators and selections: results must agree with the alias endpoints
// and with per-item batch estimates resolved through the same snapshot.
func TestQueryBatchSharedSnapshot(t *testing.T) {
	ts, hash := newTestServer(t)
	d := ingestExample1(t, ts.URL)
	batch, err := dataset.SampleBottomK(d, 8, hash)
	if err != nil {
		t.Fatal(err)
	}
	f, err := funcs.NewRG(1)
	if err != nil {
		t.Fatal(err)
	}
	reg := estreg.Default()
	lstar, _, err := reg.Build("lstar", f, d.R())
	if err != nil {
		t.Fatal(err)
	}
	wantAll, err := estreg.Sum(lstar, batch.Outcomes, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantSel, err := estreg.Sum(lstar, batch.Outcomes, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts.URL+"/v1/query", map[string]any{
		"queries": []map[string]any{
			{"statistic": "sum", "func": "rg", "p": 1, "estimator": "lstar"},
			{"statistic": "sum", "func": "rg", "p": 1, "estimator": "lstar", "ids": []int{1, 3}},
			{"statistic": "jaccard"},
			{"estimator": "nope"},                  // per-query failure
			{"ids": []int{999}},                    // unknown id
			{"statistic": "jaccard", "func": "rg"}, // jaccard takes no func
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, body)
	}
	results := body["results"].([]any)
	if len(results) != 6 {
		t.Fatalf("got %d results, want 6", len(results))
	}
	r0 := results[0].(map[string]any)
	if got := r0["estimate"].(float64); got != wantAll.Estimate {
		t.Errorf("full sum = %v, want %v", got, wantAll.Estimate)
	}
	r1 := results[1].(map[string]any)
	if got := r1["estimate"].(float64); got != wantSel.Estimate {
		t.Errorf("selected sum = %v, want %v", got, wantSel.Estimate)
	}
	if got := int(r1["items"].(float64)); got != 2 {
		t.Errorf("selected items = %d, want 2", got)
	}
	r2 := results[2].(map[string]any)
	if got, want := r2["estimate"].(float64), funcs.JaccardEstimate(batch.Outcomes); got != want {
		t.Errorf("jaccard = %v, want %v", got, want)
	}
	for i := 3; i < 6; i++ {
		res := results[i].(map[string]any)
		errBody, ok := res["error"].(map[string]any)
		if !ok {
			t.Errorf("result %d should carry an error: %v", i, res)
			continue
		}
		if errBody["code"] != "bad_request" || errBody["message"] == "" {
			t.Errorf("result %d error = %v", i, errBody)
		}
	}
}

// TestQuerySelectionByStringKey: string keys resolve through the same
// hash as ingest, so a key-addressed estimate equals the id-addressed one.
func TestQuerySelectionByStringKey(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/ingest", map[string]any{
		"updates": []map[string]any{
			{"instance": 0, "key": "alpha", "weight": 0.9},
			{"instance": 1, "key": "alpha", "weight": 0.4},
			{"instance": 0, "key": "beta", "weight": 0.2},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d: %v", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/v1/query", map[string]any{
		"queries": []map[string]any{
			{"func": "rg", "keys": []string{"alpha"}},
			{"func": "rg", "keys": []string{"gamma"}}, // never ingested
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, body)
	}
	results := body["results"].([]any)
	r0 := results[0].(map[string]any)
	if got := int(r0["items"].(float64)); got != 1 {
		t.Errorf("items = %d, want 1", got)
	}
	if est := r0["estimate"].(float64); est < 0 || math.IsNaN(est) {
		t.Errorf("estimate %v not nonnegative", est)
	}
	if _, ok := results[1].(map[string]any)["error"]; !ok {
		t.Errorf("unknown key should fail per-query: %v", results[1])
	}
}

func TestQueryRequestErrors(t *testing.T) {
	ts, _ := newTestServer(t)
	for _, tc := range []struct {
		name string
		body string
	}{
		{"malformed", `{nope`},
		{"unknown top-level field", `{"batch": []}`},
		{"unknown query field", `{"queries": [{"estimtor": "lstar"}]}`},
		{"empty batch", `{"queries": []}`},
		{"trailing data", `{"queries": [{}]} {}`},
	} {
		resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader([]byte(tc.body)))
		if err != nil {
			t.Fatal(err)
		}
		body := decodeBody(t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %v)", tc.name, resp.StatusCode, body)
			continue
		}
		errBody, ok := body["error"].(map[string]any)
		if !ok || errBody["code"] != "bad_request" {
			t.Errorf("%s: structured error missing: %v", tc.name, body)
		}
	}
	// Oversized batches are rejected up front.
	queries := make([]map[string]any, 65)
	for i := range queries {
		queries[i] = map[string]any{"func": "rg"}
	}
	resp, body := postJSON(t, ts.URL+"/v1/query", map[string]any{"queries": queries})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized batch: status %d (body %v)", resp.StatusCode, body)
	}
}

// TestUnknownQueryParamsRejected: a typo like "estimtor" must be a 400
// with a structured error, never a silently applied default.
func TestUnknownQueryParamsRejected(t *testing.T) {
	ts, _ := newTestServer(t)
	for _, path := range []string{
		"/v1/estimate/sum?estimtor=lstar",
		"/v1/estimate/sum?func=rg&bogus=1",
		"/v1/estimate/jaccard?func=rg",
		"/v1/stats?verbose=1",
	} {
		resp, body := getJSON(t, ts.URL+path)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %v)", path, resp.StatusCode, body)
			continue
		}
		errBody, ok := body["error"].(map[string]any)
		if !ok {
			t.Errorf("%s: structured error missing: %v", path, body)
			continue
		}
		if errBody["code"] != "bad_request" || errBody["message"] == "" {
			t.Errorf("%s: error = %v", path, errBody)
		}
	}
}

// TestHealthzIgnoresParams: liveness probes may append cache-busting
// parameters; strictness there would flip orchestrator health checks.
func TestHealthzIgnoresParams(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, body := getJSON(t, ts.URL+"/healthz?ts=123&probe=lb")
	if resp.StatusCode != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz with params: status %d body %v", resp.StatusCode, body)
	}
}

// TestQuerySelectionDeduplicates: a key named twice, or once as a string
// and once as its raw id, counts once — selections are sets.
func TestQuerySelectionDeduplicates(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/ingest", map[string]any{
		"updates": []map[string]any{
			{"instance": 0, "key": "alpha", "weight": 0.9},
			{"instance": 1, "key": "alpha", "weight": 0.4},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d: %v", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/v1/query", map[string]any{
		"queries": []map[string]any{
			{"func": "rg", "keys": []string{"alpha"}},
			{"func": "rg", "keys": []string{"alpha", "alpha"},
				"ids": []uint64{sampling.StringKey("alpha")}},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d: %v", resp.StatusCode, body)
	}
	results := body["results"].([]any)
	once := results[0].(map[string]any)
	thrice := results[1].(map[string]any)
	if got := int(thrice["items"].(float64)); got != 1 {
		t.Errorf("deduplicated items = %d, want 1", got)
	}
	if got, want := thrice["estimate"].(float64), once["estimate"].(float64); got != want {
		t.Errorf("deduplicated estimate %v != single-selector estimate %v", got, want)
	}
}

// TestAliasEndpointsAreRegistryBacked: the legacy sum/jaccard endpoints
// accept every registry name and agree with /v1/query exactly.
func TestAliasEndpointsAreRegistryBacked(t *testing.T) {
	ts, _ := newTestServer(t)
	d := ladderDataset(t, 24)
	ingestDataset(t, ts.URL, d)
	name := "order:vals=0.25,0.5,1;by=desc"
	resp, body := getJSON(t, ts.URL+"/v1/estimate/sum?func=rg&p=1&estimator="+url.QueryEscape(name))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("alias status %d: %v", resp.StatusCode, body)
	}
	resp, qbody := postJSON(t, ts.URL+"/v1/query", map[string]any{
		"queries": []map[string]any{{"func": "rg", "p": 1, "estimator": name}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d: %v", resp.StatusCode, qbody)
	}
	qres := qbody["results"].([]any)[0].(map[string]any)
	if got, want := body["estimate"].(float64), qres["estimate"].(float64); got != want {
		t.Errorf("alias estimate %v != query estimate %v", got, want)
	}
	if body["estimator"] != name {
		t.Errorf("alias estimator = %v, want %v", body["estimator"], name)
	}
	// Jaccard with a non-default estimator kind.
	resp, body = getJSON(t, ts.URL+"/v1/estimate/jaccard?estimator=ht")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("jaccard ht status %d: %v", resp.StatusCode, body)
	}
	if jac := body["jaccard"].(float64); jac < 0 || jac > 1+1e-9 || math.IsNaN(jac) {
		t.Errorf("jaccard ht = %v outside [0,1]", jac)
	}
}

// TestServerAllowlistAndDefault: NewWith wires a restricted registry and a
// different default estimator (the -estimators / -default-estimator
// flags of cmd/monestd).
func TestServerAllowlistAndDefault(t *testing.T) {
	hash := sampling.NewSeedHash(7)
	eng, err := engine.New(engine.Config{Instances: 2, K: 8, Shards: 4, Hash: hash})
	if err != nil {
		t.Fatal(err)
	}
	reg := estreg.Default()
	if err := reg.Allow([]string{"ustar", "ht"}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewWith(eng, Config{Registry: reg, DefaultEstimator: "ustar"}))
	defer ts.Close()
	ingestDataset(t, ts.URL, ladderDataset(t, 12))

	// The default estimator is applied when none is named.
	resp, body := getJSON(t, ts.URL+"/v1/estimate/sum?func=rg")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("default estimator status %d: %v", resp.StatusCode, body)
	}
	if body["estimator"] != "ustar" {
		t.Errorf("default estimator = %v, want ustar", body["estimator"])
	}
	// Disallowed names are rejected.
	resp, body = getJSON(t, ts.URL+"/v1/estimate/sum?func=rg&estimator=lstar")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("disallowed estimator status %d: %v", resp.StatusCode, body)
	}
	// /v1/stats advertises the allowed estimators.
	resp, body = getJSON(t, ts.URL+"/v1/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d: %v", resp.StatusCode, body)
	}
	names := body["estimators"].([]any)
	if len(names) != 2 || names[0] != "ht" || names[1] != "ustar" {
		t.Errorf("stats estimators = %v, want [ht ustar]", names)
	}
}
