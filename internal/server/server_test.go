package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/funcs"
	"repro/internal/sampling"
)

func newTestServer(t *testing.T) (*httptest.Server, sampling.SeedHash) {
	t.Helper()
	hash := sampling.NewSeedHash(7)
	eng, err := engine.New(engine.Config{Instances: 2, K: 8, Shards: 4, Hash: hash})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(eng))
	t.Cleanup(ts.Close)
	return ts, hash
}

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp, decodeBody(t, resp)
}

func getJSON(t *testing.T, url string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp, decodeBody(t, resp)
}

func decodeBody(t *testing.T, resp *http.Response) map[string]any {
	t.Helper()
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("decoding %q: %v", raw, err)
	}
	return m
}

// ingestExample1 streams the paper's Example 1 first two instances via the
// HTTP API, keyed by item id.
func ingestExample1(t *testing.T, url string) dataset.Dataset {
	t.Helper()
	full := dataset.Example1()
	d, err := dataset.New(nil, full.W[:2])
	if err != nil {
		t.Fatal(err)
	}
	var updates []map[string]any
	for i := 0; i < d.R(); i++ {
		for k := 0; k < d.N(); k++ {
			if d.W[i][k] > 0 {
				updates = append(updates, map[string]any{"instance": i, "id": k, "weight": d.W[i][k]})
			}
		}
	}
	resp, body := postJSON(t, url+"/v1/ingest", map[string]any{"updates": updates})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d: %v", resp.StatusCode, body)
	}
	if got := int(body["ingested"].(float64)); got != len(updates) {
		t.Fatalf("ingested %d, want %d", got, len(updates))
	}
	return d
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, body := getJSON(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz: status %d body %v", resp.StatusCode, body)
	}
}

func TestIngestAndEstimateSum(t *testing.T) {
	ts, hash := newTestServer(t)
	d := ingestExample1(t, ts.URL)

	batch, err := dataset.SampleBottomK(d, 8, hash)
	if err != nil {
		t.Fatal(err)
	}
	f, err := funcs.NewRG(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, est := range []struct {
		name string
		kind dataset.EstimatorKind
	}{{"lstar", dataset.KindLStar}, {"ustar", dataset.KindUStar}, {"ht", dataset.KindHT}} {
		resp, body := getJSON(t, ts.URL+"/v1/estimate/sum?func=rg&p=1&estimator="+est.name)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d body %v", est.name, resp.StatusCode, body)
		}
		want, err := batch.EstimateSum(f, est.kind, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := body["estimate"].(float64); got != want {
			t.Errorf("%s estimate = %v, want %v (batch)", est.name, got, want)
		}
	}
}

func TestEstimateSumFuncs(t *testing.T) {
	ts, _ := newTestServer(t)
	ingestExample1(t, ts.URL)
	for _, query := range []string{
		"func=rgplus&p=2",
		"func=max",
		"func=or",
		"func=and",
		"func=lincomb&c=1,-1&p=1",
	} {
		resp, body := getJSON(t, ts.URL+"/v1/estimate/sum?"+query)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d body %v", query, resp.StatusCode, body)
			continue
		}
		if est := body["estimate"].(float64); est < 0 || math.IsNaN(est) {
			t.Errorf("%s: estimate %v not nonnegative", query, est)
		}
	}
}

func TestEstimateJaccard(t *testing.T) {
	ts, hash := newTestServer(t)
	d := ingestExample1(t, ts.URL)
	resp, body := getJSON(t, ts.URL+"/v1/estimate/jaccard")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("jaccard: status %d body %v", resp.StatusCode, body)
	}
	batch, err := dataset.SampleBottomK(d, 8, hash)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := body["jaccard"].(float64), funcs.JaccardEstimate(batch.Outcomes); got != want {
		t.Errorf("jaccard = %v, want %v (batch)", got, want)
	}
}

func TestStringKeysCoordinate(t *testing.T) {
	// Two servers with the same salt must agree on estimates when fed the
	// same named items, even via different key spellings of the batch.
	ts, _ := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/ingest", map[string]any{
		"updates": []map[string]any{
			{"instance": 0, "key": "alpha", "weight": 0.9},
			{"instance": 1, "key": "alpha", "weight": 0.4},
			{"instance": 0, "key": "beta", "weight": 0.2},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d: %v", resp.StatusCode, body)
	}
	resp, body = getJSON(t, ts.URL+"/v1/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d: %v", resp.StatusCode, body)
	}
	eng := body["engine"].(map[string]any)
	if got := int(eng["keys"].(float64)); got != 2 {
		t.Errorf("engine keys = %d, want 2", got)
	}
	if got := int(eng["active_entries"].(float64)); got != 3 {
		t.Errorf("active entries = %d, want 3", got)
	}
}

func TestIngestKeyHandling(t *testing.T) {
	ts, _ := newTestServer(t)
	// An explicit empty-string key is a real key (StringKey("")), distinct
	// from raw id 0; zero weights are accepted no-ops reported as skipped.
	resp, body := postJSON(t, ts.URL+"/v1/ingest", map[string]any{
		"updates": []map[string]any{
			{"instance": 0, "key": "", "weight": 1.0},
			{"instance": 0, "id": 0, "weight": 2.0},
			{"instance": 0, "key": "zeroed", "weight": 0.0},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d: %v", resp.StatusCode, body)
	}
	if got := int(body["ingested"].(float64)); got != 2 {
		t.Errorf("ingested = %d, want 2", got)
	}
	if got := int(body["skipped"].(float64)); got != 1 {
		t.Errorf("skipped = %d, want 1", got)
	}
	resp, body = getJSON(t, ts.URL+"/v1/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d: %v", resp.StatusCode, body)
	}
	eng := body["engine"].(map[string]any)
	if got := int(eng["keys"].(float64)); got != 2 {
		t.Errorf("engine keys = %d, want 2 (empty-string key distinct from id 0)", got)
	}
	if got := int(eng["ingests"].(float64)); got != 2 {
		t.Errorf("engine ingests = %d, want 2 (matches response's ingested)", got)
	}
}

func TestStatsCounters(t *testing.T) {
	ts, _ := newTestServer(t)
	ingestExample1(t, ts.URL)
	getJSON(t, ts.URL+"/v1/estimate/jaccard")
	getJSON(t, ts.URL+"/v1/estimate/sum?func=nope") // one error

	resp, body := getJSON(t, ts.URL+"/v1/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d: %v", resp.StatusCode, body)
	}
	endpoints := body["endpoints"].(map[string]any)
	jac := endpoints["GET /v1/estimate/jaccard"].(map[string]any)
	if got := jac["requests"].(float64); got != 1 {
		t.Errorf("jaccard requests = %v, want 1", got)
	}
	sum := endpoints["GET /v1/estimate/sum"].(map[string]any)
	if got := sum["errors"].(float64); got != 1 {
		t.Errorf("sum errors = %v, want 1", got)
	}
	if up := body["uptime_seconds"].(float64); up < 0 {
		t.Errorf("uptime %v negative", up)
	}
}

func TestErrorPaths(t *testing.T) {
	ts, _ := newTestServer(t)
	for _, tc := range []struct {
		name string
		do   func() (*http.Response, map[string]any)
		code int
	}{
		{"ingest bad json", func() (*http.Response, map[string]any) {
			resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", bytes.NewReader([]byte("{nope")))
			if err != nil {
				t.Fatal(err)
			}
			return resp, decodeBody(t, resp)
		}, http.StatusBadRequest},
		{"ingest unknown field", func() (*http.Response, map[string]any) {
			return postJSON(t, ts.URL+"/v1/ingest", map[string]any{"rows": []int{1}})
		}, http.StatusBadRequest},
		{"ingest empty batch", func() (*http.Response, map[string]any) {
			return postJSON(t, ts.URL+"/v1/ingest", map[string]any{"updates": []any{}})
		}, http.StatusBadRequest},
		{"ingest bad instance", func() (*http.Response, map[string]any) {
			return postJSON(t, ts.URL+"/v1/ingest", map[string]any{
				"updates": []map[string]any{{"instance": 9, "key": "x", "weight": 1}},
			})
		}, http.StatusBadRequest},
		{"ingest negative weight", func() (*http.Response, map[string]any) {
			return postJSON(t, ts.URL+"/v1/ingest", map[string]any{
				"updates": []map[string]any{{"instance": 0, "key": "x", "weight": -1}},
			})
		}, http.StatusBadRequest},
		{"sum unknown func", func() (*http.Response, map[string]any) {
			return getJSON(t, ts.URL+"/v1/estimate/sum?func=nope")
		}, http.StatusBadRequest},
		{"sum unknown estimator", func() (*http.Response, map[string]any) {
			return getJSON(t, ts.URL+"/v1/estimate/sum?estimator=nope")
		}, http.StatusBadRequest},
		{"sum bad p", func() (*http.Response, map[string]any) {
			return getJSON(t, ts.URL+"/v1/estimate/sum?func=rg&p=zzz")
		}, http.StatusBadRequest},
		{"sum lincomb missing c", func() (*http.Response, map[string]any) {
			return getJSON(t, ts.URL+"/v1/estimate/sum?func=lincomb")
		}, http.StatusBadRequest},
		{"sum lincomb bad c", func() (*http.Response, map[string]any) {
			return getJSON(t, ts.URL+"/v1/estimate/sum?func=lincomb&c=1,x")
		}, http.StatusBadRequest},
		{"sum arity mismatch", func() (*http.Response, map[string]any) {
			// lincomb with 3 coefficients on a 2-instance engine.
			return getJSON(t, ts.URL+"/v1/estimate/sum?func=lincomb&c=1,2,3")
		}, http.StatusBadRequest},
	} {
		resp, body := tc.do()
		if resp.StatusCode != tc.code {
			t.Errorf("%s: status %d, want %d (body %v)", tc.name, resp.StatusCode, tc.code, body)
			continue
		}
		if _, ok := body["error"]; !ok {
			t.Errorf("%s: error body missing: %v", tc.name, body)
		}
	}

	// Wrong methods hit the mux's method matching.
	resp, err := http.Get(ts.URL + "/v1/ingest")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/ingest status %d, want 405", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/estimate/sum", "application/json", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/estimate/sum status %d, want 405", resp.StatusCode)
	}
}

func TestNonFiniteEstimateIsAnError(t *testing.T) {
	// A sum of near-MaxFloat64 weights overflows to +Inf, which JSON
	// cannot carry; the server must answer 500 with an error body, not
	// an empty 200.
	ts, _ := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/ingest", map[string]any{
		"updates": []map[string]any{
			{"instance": 0, "id": 0, "weight": 1e308},
			{"instance": 0, "id": 1, "weight": 1e308},
			{"instance": 0, "id": 2, "weight": 1e308},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d: %v", resp.StatusCode, body)
	}
	resp, body = getJSON(t, ts.URL+"/v1/estimate/sum?func=max")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500 (body %v)", resp.StatusCode, body)
	}
	if _, ok := body["error"]; !ok {
		t.Fatalf("error body missing: %v", body)
	}
}

func TestRGPlusArityGuard(t *testing.T) {
	// rgplus needs exactly 2 instances; a 3-instance engine must reject it
	// with 400 rather than panic.
	hash := sampling.NewSeedHash(1)
	eng, err := engine.New(engine.Config{Instances: 3, K: 4, Hash: hash})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(eng))
	defer ts.Close()
	resp, body := getJSON(t, ts.URL+"/v1/estimate/sum?func=rgplus")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 (body %v)", resp.StatusCode, body)
	}
}

func TestConcurrentTraffic(t *testing.T) {
	// Parallel ingest + query traffic must stay consistent (run with
	// -race in CI).
	ts, _ := newTestServer(t)
	done := make(chan error, 8)
	for g := 0; g < 4; g++ {
		go func(g int) {
			for j := 0; j < 20; j++ {
				key := fmt.Sprintf("item-%d-%d", g, j%10)
				raw, _ := json.Marshal(map[string]any{
					"updates": []map[string]any{{"instance": g % 2, "key": key, "weight": float64(j + 1)}},
				})
				resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", bytes.NewReader(raw))
				if err != nil {
					done <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			done <- nil
		}(g)
		go func() {
			for j := 0; j < 10; j++ {
				resp, err := http.Get(ts.URL + "/v1/estimate/jaccard")
				if err != nil {
					done <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			done <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	resp, body := getJSON(t, ts.URL+"/v1/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d: %v", resp.StatusCode, body)
	}
	eng := body["engine"].(map[string]any)
	if got := int(eng["keys"].(float64)); got != 40 {
		t.Errorf("engine keys = %d, want 40", got)
	}
}
