package server

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/funcs"
	"repro/internal/sampling"
)

// scaleDataset returns d with every weight multiplied by c — re-ingesting
// it over the original exercises max-weight overwrites that change every
// estimate deterministically.
func scaleDataset(t *testing.T, d dataset.Dataset, c float64) dataset.Dataset {
	t.Helper()
	w := make([][]float64, d.R())
	for i := range w {
		w[i] = make([]float64, d.N())
		for k := range w[i] {
			w[i][k] = c * d.W[i][k]
		}
	}
	scaled, err := dataset.New(nil, w)
	if err != nil {
		t.Fatal(err)
	}
	return scaled
}

func lstarSumOf(t *testing.T, d dataset.Dataset, hash sampling.SeedHash) float64 {
	t.Helper()
	batch, err := dataset.SampleBottomK(d, 8, hash)
	if err != nil {
		t.Fatal(err)
	}
	f, err := funcs.NewRG(1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := batch.EstimateSum(f, dataset.KindLStar, nil)
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// TestCachedServingStaysExact: with the default (exact) snapshot cache,
// repeat queries reuse the cached snapshot and memoized results, and any
// real ingest invalidates both — estimates always match the batch
// pipeline bit-for-bit on the engine's current contents.
func TestCachedServingStaysExact(t *testing.T) {
	ts, hash := newTestServer(t)
	d := ladderDataset(t, 40)
	ingestDataset(t, ts.URL, d)

	want1 := lstarSumOf(t, d, hash)
	for rep := 0; rep < 3; rep++ {
		resp, body := getJSON(t, ts.URL+"/v1/estimate/sum?func=rg&p=1&estimator=lstar")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("rep %d: status %d body %v", rep, resp.StatusCode, body)
		}
		if got := body["estimate"].(float64); got != want1 {
			t.Fatalf("rep %d: estimate %v, want %v", rep, got, want1)
		}
	}

	// Mutate: double every weight (max semantics fold the overwrite in).
	d2 := scaleDataset(t, d, 2)
	ingestDataset(t, ts.URL, d2)
	want2 := lstarSumOf(t, d2, hash)
	if want1 == want2 {
		t.Fatal("test is vacuous: scaled dataset gives the same estimate")
	}
	resp, body := getJSON(t, ts.URL+"/v1/estimate/sum?func=rg&p=1&estimator=lstar")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d body %v", resp.StatusCode, body)
	}
	if got := body["estimate"].(float64); got != want2 {
		t.Fatalf("post-ingest estimate %v, want %v (cache not invalidated?)", got, want2)
	}
}

// TestSnapshotMaxStaleServesBoundedStale: with SnapshotMaxStale set, a
// read after an ingest may serve the previous cut (within the bound) —
// and an identically-fed exact server proves the data really changed.
func TestSnapshotMaxStaleServesBoundedStale(t *testing.T) {
	hash := sampling.NewSeedHash(7)
	newSrv := func(maxStale time.Duration) *httptest.Server {
		eng, err := engine.New(engine.Config{Instances: 2, K: 8, Shards: 4, Hash: hash})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(NewWith(eng, Config{SnapshotMaxStale: maxStale}))
		t.Cleanup(ts.Close)
		return ts
	}
	stale, exact := newSrv(time.Hour), newSrv(0)
	d := ladderDataset(t, 24)
	d2 := scaleDataset(t, d, 3)

	query := func(ts *httptest.Server) float64 {
		resp, body := getJSON(t, ts.URL+"/v1/estimate/sum?func=rg&p=1&estimator=lstar")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d body %v", resp.StatusCode, body)
		}
		return body["estimate"].(float64)
	}

	for _, ts := range []*httptest.Server{stale, exact} {
		ingestDataset(t, ts.URL, d)
	}
	first := query(stale)
	if got := query(exact); got != first {
		t.Fatalf("servers disagree before mutation: %v != %v", got, first)
	}
	for _, ts := range []*httptest.Server{stale, exact} {
		ingestDataset(t, ts.URL, d2)
	}
	// The exact server reflects the write immediately; the bounded-
	// staleness server keeps serving the cut from moments ago.
	exactAfter := query(exact)
	if exactAfter == first {
		t.Fatal("test is vacuous: mutation did not change the estimate")
	}
	if got := query(stale); got != first {
		t.Fatalf("bounded-staleness read %v, want stale %v", got, first)
	}
}

// TestFreshSourceBypassesSnapshotCache: Config.Snapshots swaps the
// serving source; FreshSource re-reduces per acquisition and must agree
// with the cached source bit-for-bit (it is the uncached benchmark
// baseline).
func TestFreshSourceBypassesSnapshotCache(t *testing.T) {
	hash := sampling.NewSeedHash(7)
	eng, err := engine.New(engine.Config{Instances: 2, K: 8, Shards: 4, Hash: hash})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewWith(eng, Config{Snapshots: FreshSource(eng)}))
	t.Cleanup(ts.Close)
	d := ladderDataset(t, 24)
	ingestDataset(t, ts.URL, d)
	want := lstarSumOf(t, d, hash)
	resp, body := getJSON(t, ts.URL+"/v1/estimate/sum?func=rg&p=1&estimator=lstar")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d body %v", resp.StatusCode, body)
	}
	if got := body["estimate"].(float64); got != want {
		t.Fatalf("fresh-source estimate %v, want %v", got, want)
	}
}
