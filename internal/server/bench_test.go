package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/sampling"
)

// newBenchServer returns a server over an engine pre-loaded with a
// heavy-tailed two-instance workload of n keys.
func newBenchServer(b *testing.B, n int) *Server {
	b.Helper()
	eng, err := engine.New(engine.Config{Instances: 2, K: 64, Shards: 16, Hash: sampling.NewSeedHash(1)})
	if err != nil {
		b.Fatal(err)
	}
	d := dataset.Flows(dataset.FlowsConfig{N: n, Seed: 1})
	var updates []engine.Update
	for i := 0; i < d.R(); i++ {
		for k := 0; k < d.N(); k++ {
			if d.W[i][k] > 0 {
				updates = append(updates, engine.Update{Instance: i, Key: uint64(k), Weight: d.W[i][k]})
			}
		}
	}
	if err := eng.IngestBatch(updates); err != nil {
		b.Fatal(err)
	}
	return New(eng)
}

// do drives one request through the handler without network overhead.
func do(b *testing.B, s *Server, method, target string, body []byte) {
	b.Helper()
	var r *http.Request
	if body != nil {
		r = httptest.NewRequest(method, target, bytes.NewReader(body))
	} else {
		r = httptest.NewRequest(method, target, nil)
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		b.Fatalf("%s %s: status %d body %s", method, target, w.Code, w.Body.String())
	}
}

// BenchmarkEstimateSumEndpoint measures the single-estimate alias path
// under the default serving config (versioned snapshot cache + result
// memo): repeat requests against an unchanged engine are pure lookups.
func BenchmarkEstimateSumEndpoint(b *testing.B) {
	s := newBenchServer(b, 1<<14)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		do(b, s, http.MethodGet, "/v1/estimate/sum?func=rg&p=1&estimator=lstar", nil)
	}
}

// BenchmarkQueryCached is the acceptance benchmark for the versioned
// snapshot cache: the steady-state cached read path (no intervening
// ingest) takes no shard locks, re-reduces nothing and re-runs no
// estimators — compare against the engine-level BenchmarkQuerySum, which
// pays a fresh reduction plus a full L* sum per query.
func BenchmarkQueryCached(b *testing.B) {
	s := newBenchServer(b, 1<<14)
	body := benchBatch(b)
	b.Run("estimate_sum", func(b *testing.B) {
		// Prime snapshot cache and memo: the measurement is the steady
		// state, not the one-off reduction.
		do(b, s, http.MethodGet, "/v1/estimate/sum?func=rg&p=1&estimator=lstar", nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			do(b, s, http.MethodGet, "/v1/estimate/sum?func=rg&p=1&estimator=lstar", nil)
		}
	})
	b.Run("batched4", func(b *testing.B) {
		do(b, s, http.MethodPost, "/v1/query", body)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			do(b, s, http.MethodPost, "/v1/query", body)
		}
		b.ReportMetric(4, "queries/op")
	})
}

// BenchmarkQueryInvalidated measures the write-invalidated read path:
// every iteration lands one real ingest, so each query pays a rebuild
// and estimate — the regime the -snapshot-max-stale bound is for. With
// per-shard partitions the rebuild re-reduces only the hot key's shard
// and the estimate re-runs only over it (per-partition estimate cache),
// so this sits close to the cached path rather than the cold reduction.
func BenchmarkQueryInvalidated(b *testing.B) {
	s := newBenchServer(b, 1<<14)
	// Prime partitions, plan and estimate vectors: the measurement is
	// steady-state invalidation, not the one-off cold reduction.
	do(b, s, http.MethodGet, "/v1/estimate/sum?func=rg&p=1&estimator=lstar", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Strictly growing weight on one hot key: always a real mutation.
		ingest, err := json.Marshal(map[string]any{
			"updates": []map[string]any{{"instance": 0, "key": "hot", "weight": float64(i + 1)}},
		})
		if err != nil {
			b.Fatal(err)
		}
		do(b, s, http.MethodPost, "/v1/ingest", ingest)
		do(b, s, http.MethodGet, "/v1/estimate/sum?func=rg&p=1&estimator=lstar", nil)
	}
}

// benchBatch is the 4-query batched request the contrast benchmarks share:
// two sum estimators, a selected sum, and a Jaccard — one snapshot total.
func benchBatch(b *testing.B) []byte {
	b.Helper()
	body, err := json.Marshal(map[string]any{
		"queries": []map[string]any{
			{"func": "rg", "p": 1, "estimator": "lstar"},
			{"func": "rg", "p": 1, "estimator": "ht"},
			{"func": "max", "estimator": "lstar"},
			{"statistic": "jaccard"},
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	return body
}

// BenchmarkQueryBatched4 measures four statistics answered from ONE shared
// snapshot via POST /v1/query.
func BenchmarkQueryBatched4(b *testing.B) {
	s := newBenchServer(b, 1<<14)
	body := benchBatch(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		do(b, s, http.MethodPost, "/v1/query", body)
	}
	b.ReportMetric(4, "queries/op")
}

// BenchmarkQuerySequential4 measures the same four statistics as separate
// alias requests — four snapshots — to quantify what batching saves.
func BenchmarkQuerySequential4(b *testing.B) {
	s := newBenchServer(b, 1<<14)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		do(b, s, http.MethodGet, "/v1/estimate/sum?func=rg&p=1&estimator=lstar", nil)
		do(b, s, http.MethodGet, "/v1/estimate/sum?func=rg&p=1&estimator=ht", nil)
		do(b, s, http.MethodGet, "/v1/estimate/sum?func=max&estimator=lstar", nil)
		do(b, s, http.MethodGet, "/v1/estimate/jaccard", nil)
	}
	b.ReportMetric(4, "queries/op")
}

// BenchmarkIngestEndpoint measures the HTTP ingest path end to end.
func BenchmarkIngestEndpoint(b *testing.B) {
	s := newBenchServer(b, 1<<10)
	body, err := json.Marshal(map[string]any{
		"updates": []map[string]any{
			{"instance": 0, "key": "alpha", "weight": 0.9},
			{"instance": 1, "key": "alpha", "weight": 0.5},
			{"instance": 0, "key": "beta", "weight": 0.2},
			{"instance": 1, "key": "gamma", "weight": 1.4},
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		do(b, s, http.MethodPost, "/v1/ingest", body)
	}
}
