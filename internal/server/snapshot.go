package server

import (
	"sync"
	"time"

	"repro/internal/engine"
)

// This file is the serving side of the engine's versioned snapshot cache:
// one SnapshotSource feeds every endpoint, and a per-version result memo
// turns repeat queries against an unchanged engine into pure lookups —
// the steady-state read path takes no shard locks, does no snapshot
// reduction and re-runs no estimators.

// SnapshotSource yields the snapshot a request is answered from together
// with the engine version the snapshot was cut at. All endpoints of a
// Server share one source; the version keys the server's per-version
// result memo, so a source must return versions that change whenever the
// returned snapshot's contents do.
type SnapshotSource interface {
	AcquireSnapshot() (engine.Snapshot, uint64)
}

// cachedSource is the default source: the engine's lock-free versioned
// snapshot cache, optionally serving a bounded-staleness snapshot under
// sustained write load (the monestd -snapshot-max-stale flag).
type cachedSource struct {
	eng      *engine.Engine
	maxStale time.Duration
}

func (c cachedSource) AcquireSnapshot() (engine.Snapshot, uint64) {
	return c.eng.CachedSnapshot(c.maxStale)
}

// FreshSource returns a SnapshotSource that re-reduces a fresh snapshot
// on every acquisition — the pre-cache behavior, kept for benchmarks and
// tests that need an uncached baseline. The snapshot and version come
// from one consistent cut (engine.FreshSnapshot); a separate Version()
// call racing a writer could mislabel a pre-write snapshot with a
// post-write version and poison the result memo.
func FreshSource(eng *engine.Engine) SnapshotSource { return freshSource{eng} }

type freshSource struct{ eng *engine.Engine }

func (f freshSource) AcquireSnapshot() (engine.Snapshot, uint64) {
	return f.eng.FreshSnapshot()
}

// maxMemoEntries caps one version's memo so an adversarial query stream
// (unbounded distinct selections) cannot grow memory without bound;
// beyond the cap, queries still evaluate — they just stop being recorded.
const maxMemoEntries = 4096

// resultMemo caches evaluated query results for ONE snapshot version.
// Estimators are deterministic functions of the snapshot, so a (version,
// query) pair fully determines the result; the memo is dropped wholesale
// the first time a request is served from a newer version.
type resultMemo struct {
	version uint64
	mu      sync.RWMutex
	m       map[string]queryResult
}

func (mm *resultMemo) get(key string) (queryResult, bool) {
	mm.mu.RLock()
	r, ok := mm.m[key]
	mm.mu.RUnlock()
	return r, ok
}

func (mm *resultMemo) put(key string, r queryResult) {
	mm.mu.Lock()
	if len(mm.m) < maxMemoEntries {
		mm.m[key] = r
	}
	mm.mu.Unlock()
}

// memoFor returns the memo for the given snapshot version, rotating the
// server's current one when the version moved. Under bounded-staleness
// serving, two versions can briefly alternate; the memo then degrades to
// misses rather than ever serving a result across versions.
func (s *Server) memoFor(version uint64) *resultMemo {
	for {
		m := s.memo.Load()
		if m != nil && m.version == version {
			return m
		}
		fresh := &resultMemo{version: version, m: make(map[string]queryResult)}
		if s.memo.CompareAndSwap(m, fresh) {
			return fresh
		}
	}
}

// evalMemoized answers q from the memo when the same (version, query) was
// evaluated before, evaluating and recording it otherwise.
func (s *Server) evalMemoized(q *plannedQuery, snap engine.Snapshot, memo *resultMemo) queryResult {
	key := q.memoKey()
	if r, ok := memo.get(key); ok {
		return r
	}
	r := q.eval(snap)
	memo.put(key, r)
	return r
}
