package server

import (
	"context"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/estreg"
)

// This file is the serving side of the engine's versioned snapshot cache:
// one SnapshotSource feeds every endpoint, a per-version result memo
// turns repeat queries against an unchanged engine into pure lookups, and
// a per-partition estimate cache makes whole-dataset sums proportional to
// the partitions that actually changed — the steady-state read path takes
// no shard locks, does no snapshot reduction and re-runs estimators only
// over mutated shards.

// SnapshotSource yields the snapshot view a request is answered from. All
// endpoints of a Server share one source; the view's Version keys the
// server's per-version result memo, so a source must return versions that
// change whenever the returned view's contents do. A source backed by
// remote state (a cluster coordinator scatter-gathering node sketches)
// may fail; an error implementing `Unavailable() bool` reporting true
// maps to 503, anything else to 500 (see acquireStatus). ctx is the
// serving request's context (or the server's drain context for the push
// loop): remote-backed sources must honor it so an aborted request or a
// shutdown cancels in-flight node traffic; local sources ignore it.
type SnapshotSource interface {
	AcquireSnapshot(ctx context.Context) (engine.SnapshotView, error)
}

// DegradedSource is the optional refinement a cluster-backed source
// implements: acquisition also reports whether the view is missing
// node contributions (a coordinator serving under a partial/quorum
// read policy). Snapshot-backed responses attach the non-nil block
// verbatim, so a consumer can always tell a complete answer from a
// lower-bound one. *cluster.Coordinator implements it.
type DegradedSource interface {
	AcquireSnapshotDegraded(ctx context.Context) (engine.SnapshotView, *cluster.Degraded, error)
}

// acquire is how every snapshot-consuming endpoint obtains its view:
// through the source's degraded-aware path when it has one, with a nil
// degraded block (a complete view) otherwise.
func (s *Server) acquire(ctx context.Context) (engine.SnapshotView, *cluster.Degraded, error) {
	if ds, ok := s.snaps.(DegradedSource); ok {
		return ds.AcquireSnapshotDegraded(ctx)
	}
	view, err := s.snaps.AcquireSnapshot(ctx)
	return view, nil, err
}

// cachedSource is the default source: the engine's lock-free versioned
// snapshot cache, optionally serving a bounded-staleness snapshot under
// sustained write load (the monestd -snapshot-max-stale flag).
type cachedSource struct {
	eng      *engine.Engine
	maxStale time.Duration
}

func (c cachedSource) AcquireSnapshot(context.Context) (engine.SnapshotView, error) {
	return c.eng.CachedView(c.maxStale), nil
}

// FreshSource returns a SnapshotSource that performs an exact cut on
// every acquisition — for benchmarks and tests that must never observe a
// bounded-staleness view. The view and version come from one consistent
// cut (engine.FreshView); a separate Version() call racing a writer could
// mislabel a pre-write snapshot with a post-write version and poison the
// result memo.
func FreshSource(eng *engine.Engine) SnapshotSource { return freshSource{eng} }

type freshSource struct{ eng *engine.Engine }

func (f freshSource) AcquireSnapshot(context.Context) (engine.SnapshotView, error) {
	return f.eng.FreshView(), nil
}

// maxMemoEntries caps one version's memo so an adversarial query stream
// (unbounded distinct selections) cannot grow memory without bound;
// beyond the cap, queries still evaluate — they just stop being recorded.
const maxMemoEntries = 4096

// resultMemo caches evaluated query results for ONE snapshot version.
// Estimators are deterministic functions of the snapshot, so a (version,
// query) pair fully determines the result; the memo is dropped wholesale
// the first time a request is served from a newer version.
type resultMemo struct {
	version uint64
	mu      sync.RWMutex
	m       map[string]queryResult
}

func (mm *resultMemo) get(key string) (queryResult, bool) {
	mm.mu.RLock()
	r, ok := mm.m[key]
	mm.mu.RUnlock()
	return r, ok
}

func (mm *resultMemo) put(key string, r queryResult) {
	mm.mu.Lock()
	if len(mm.m) < maxMemoEntries {
		mm.m[key] = r
	}
	mm.mu.Unlock()
}

// memoFor returns the memo for the given snapshot version, rotating the
// server's current one when the version moved. Under bounded-staleness
// serving, two versions can briefly alternate; the memo then degrades to
// misses rather than ever serving a result across versions.
func (s *Server) memoFor(version uint64) *resultMemo {
	for {
		m := s.memo.Load()
		if m != nil && m.version == version {
			return m
		}
		fresh := &resultMemo{version: version, m: make(map[string]queryResult)}
		if s.memo.CompareAndSwap(m, fresh) {
			return fresh
		}
	}
}

// evalMemoized answers q from the memo when the same (version, query) was
// evaluated before, evaluating and recording it otherwise.
func (s *Server) evalMemoized(q *plannedQuery, view engine.SnapshotView, memo *resultMemo) queryResult {
	key := q.memoKey()
	if r, ok := memo.get(key); ok {
		return r
	}
	r := q.eval(view, s.partials)
	memo.put(key, r)
	return r
}

// maxPartialPlans caps how many distinct plans keep per-partition
// estimate vectors; beyond it, new plans compute without caching
// (adversarial distinct-estimator streams stay bounded at roughly
// 8·keys·maxPartialPlans bytes).
const maxPartialPlans = 32

// partialVec is one plan's cached per-item estimates for one partition,
// valid exactly while the partition's epoch holds (an unchanged epoch
// guarantees byte-identical outcomes, and estimators are deterministic).
type partialVec struct {
	epoch uint64
	ests  []float64
}

// partialEstimates caches per-partition estimate vectors keyed by plan.
// A full-dataset sum then re-runs the estimator only over partitions
// whose epoch moved since the last evaluation — under single-shard churn
// that is 1/Shards of the items — while remaining bit-identical to
// estreg.Sum over the merged outcomes (the same values are accumulated in
// the same ascending-key order).
type partialEstimates struct {
	mu sync.Mutex
	m  map[string]map[int]partialVec // plan key → shard → vector
}

func newPartialEstimates() *partialEstimates {
	return &partialEstimates{m: make(map[string]map[int]partialVec)}
}

// sum evaluates a whole-dataset estreg.Sum against the view using cached
// per-partition vectors. ok=false means the caller must fall back to
// estreg.Sum over the materialized snapshot — either an estimator error
// (the fallback reproduces estreg.Sum's exact merged-index error) or a
// view without partition metadata.
func (pe *partialEstimates) sum(planKey string, est estreg.Estimator, view engine.SnapshotView) (estreg.SumResult, bool) {
	n := len(view.Keys)
	if len(view.Parts) == 0 && n > 0 {
		return estreg.SumResult{}, false
	}
	vecs := make([][]float64, len(view.Parts))
	pe.mu.Lock()
	plan := pe.m[planKey]
	for s := range view.Parts {
		if pv, ok := plan[s]; ok && pv.epoch == view.Parts[s].Epoch {
			vecs[s] = pv.ests
		}
	}
	pe.mu.Unlock()

	// Scatter every partition's vector (cached or freshly computed) into
	// merged-key positions, then accumulate in ascending order — the exact
	// float operation sequence of estreg.Sum over the merged outcomes.
	full := make([]float64, n)
	covered := 0
	var freshShards []int
	for s, part := range view.Parts {
		vec := vecs[s]
		if vec == nil {
			if len(vec) != len(part.Outcomes) {
				vec = make([]float64, len(part.Outcomes))
			}
			for t, o := range part.Outcomes {
				x, err := est.Estimate(o)
				if err != nil {
					return estreg.SumResult{}, false
				}
				vec[t] = x
			}
			vecs[s] = vec
			freshShards = append(freshShards, s)
		}
		if len(vec) != len(part.Index) {
			return estreg.SumResult{}, false // stale cache shape: bail out
		}
		for t, x := range vec {
			full[part.Index[t]] = x
		}
		covered += len(vec)
	}
	if covered != n {
		return estreg.SumResult{}, false
	}

	var res estreg.SumResult
	for k := 0; k < n; k++ {
		x := full[k]
		res.Estimate += x
		res.SecondMoment += x * x
		if res.Items == 0 || x > res.MaxItem {
			res.MaxItem = x
		}
		res.Items++
	}

	if len(freshShards) > 0 {
		pe.mu.Lock()
		plan = pe.m[planKey]
		if plan == nil {
			if len(pe.m) < maxPartialPlans {
				plan = make(map[int]partialVec, len(view.Parts))
				pe.m[planKey] = plan
			}
		}
		if plan != nil {
			for _, s := range freshShards {
				plan[s] = partialVec{epoch: view.Parts[s].Epoch, ests: vecs[s]}
			}
		}
		pe.mu.Unlock()
	}
	return res, true
}
