package server

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/engine"
	"repro/internal/sampling"
	"repro/internal/store"
)

// sketchTestServer is newTestServer plus the engine handle, which the
// sketch-exchange tests need to ingest out-of-band and read versions.
func sketchTestServer(t *testing.T) (*httptest.Server, *engine.Engine) {
	t.Helper()
	eng, err := engine.New(engine.Config{Instances: 2, K: 8, Shards: 4, Hash: sampling.NewSeedHash(7)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(eng))
	t.Cleanup(ts.Close)
	return ts, eng
}

func getSketch(t *testing.T, url, ifNoneMatch string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url+"/v1/sketch", nil)
	if err != nil {
		t.Fatal(err)
	}
	if ifNoneMatch != "" {
		req.Header.Set("If-None-Match", ifNoneMatch)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestSketchETagCycle pins the version-vector cache protocol on
// /v1/sketch: the ETag is the artifact's own cut version, a matching
// If-None-Match (strong, weak or wildcard) answers 304 with no body,
// and a write invalidates the tag.
func TestSketchETagCycle(t *testing.T) {
	ts, eng := sketchTestServer(t)
	for i := 0; i < 20; i++ {
		if err := eng.Ingest(i%2, uint64(i), 1+float64(i)); err != nil {
			t.Fatal(err)
		}
	}

	resp := getSketch(t, ts.URL, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("200 response carries no ETag")
	}
	st, err := store.DecodeState(readAll(t, resp))
	if err != nil {
		t.Fatalf("body is not a state artifact: %v", err)
	}
	if want := etagFor(st.Version); etag != want {
		t.Fatalf("ETag %s does not label the artifact's cut version (%s)", etag, want)
	}
	if len(st.Keys) != 20 {
		t.Fatalf("artifact holds %d keys, want 20", len(st.Keys))
	}

	for _, inm := range []string{etag, "W/" + etag, "*", `"junk", ` + etag} {
		resp := getSketch(t, ts.URL, inm)
		if resp.StatusCode != http.StatusNotModified {
			t.Fatalf("If-None-Match %q: status %d, want 304", inm, resp.StatusCode)
		}
		if body := readAll(t, resp); len(body) != 0 {
			t.Fatalf("If-None-Match %q: 304 carried %d body bytes", inm, len(body))
		}
	}

	if err := eng.Ingest(0, 99, 123); err != nil {
		t.Fatal(err)
	}
	resp = getSketch(t, ts.URL, etag)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stale tag after write: status %d, want 200", resp.StatusCode)
	}
	if fresh := resp.Header.Get("ETag"); fresh == etag {
		t.Fatalf("ETag %s unchanged across a mutation", fresh)
	}
	readAll(t, resp)
}

func postMerge(t *testing.T, url string, artifact []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/v1/merge", "application/octet-stream", bytes.NewReader(artifact))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// peerArtifact encodes the state of a fresh peer engine fed the given
// updates under the given salt.
func peerArtifact(t *testing.T, cfg engine.Config, updates []engine.Update) []byte {
	t.Helper()
	peer, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := peer.IngestBatch(updates); err != nil {
		t.Fatal(err)
	}
	return store.EncodeState(peer.DumpState())
}

// TestMergeFoldsPeerState: the happy path — a peer artifact under the
// same salt folds in, the response reports the merge, and the engine now
// serves the union.
func TestMergeFoldsPeerState(t *testing.T) {
	ts, eng := sketchTestServer(t)
	if err := eng.Ingest(0, 1, 10); err != nil {
		t.Fatal(err)
	}
	artifact := peerArtifact(t,
		engine.Config{Instances: 2, K: 8, Shards: 2, Hash: sampling.NewSeedHash(7)},
		[]engine.Update{{Instance: 1, Key: 2, Weight: 20}, {Instance: 0, Key: 3, Weight: 30}})

	resp := postMerge(t, ts.URL, artifact)
	body := decodeBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d body %v, want 200", resp.StatusCode, body)
	}
	if got := body["merged_keys"]; got != float64(2) {
		t.Fatalf("merged_keys = %v, want 2", got)
	}
	st := eng.DumpState()
	if len(st.Keys) != 3 {
		t.Fatalf("engine holds %d keys after merge, want 3", len(st.Keys))
	}
}

// TestMergeCorruptionMatrix drives /v1/merge with every corruption class
// the binary wire can see — truncation, checksum damage, header lies,
// garbage, and a well-formed artifact from an incompatible peer (wrong
// salt, wrong k). Each must fail closed: structured 400 envelope, and
// the engine byte-for-byte untouched (verified against /v1/sketch
// before/after, version included).
func TestMergeCorruptionMatrix(t *testing.T) {
	ts, eng := sketchTestServer(t)
	for i := 0; i < 10; i++ {
		if err := eng.Ingest(i%2, uint64(i), 2+float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	sameCfg := engine.Config{Instances: 2, K: 8, Shards: 2, Hash: sampling.NewSeedHash(7)}
	peerUpd := []engine.Update{{Instance: 0, Key: 100, Weight: 5}}
	valid := peerArtifact(t, sameCfg, peerUpd)

	crcFlip := append([]byte(nil), valid...)
	crcFlip[len(crcFlip)-1] ^= 0x01
	lenLie := append([]byte(nil), valid...)
	lenLie[8] ^= 0xFF

	saltCfg := sameCfg
	saltCfg.Hash = sampling.NewSeedHash(99)
	kCfg := sameCfg
	kCfg.K = 16
	instCfg := sameCfg
	instCfg.Instances = 3
	instUpd := []engine.Update{{Instance: 2, Key: 100, Weight: 5}}

	cases := []struct {
		name     string
		artifact []byte
	}{
		{"truncated", valid[:len(valid)-9]},
		{"crc-flipped", crcFlip},
		{"length-lie", lenLie},
		{"not-an-artifact", []byte("POST me something real")},
		{"empty", nil},
		{"seed-mismatch", peerArtifact(t, saltCfg, peerUpd)},
		{"k-mismatch", peerArtifact(t, kCfg, peerUpd)},
		{"instances-mismatch", peerArtifact(t, instCfg, instUpd)},
	}

	before := readAll(t, getSketch(t, ts.URL, ""))
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postMerge(t, ts.URL, tc.artifact)
			body := decodeBody(t, resp)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d body %v, want 400", resp.StatusCode, body)
			}
			errObj, ok := body["error"].(map[string]any)
			if !ok || errObj["code"] != "bad_request" {
				t.Fatalf("body %v, want error.code bad_request", body)
			}
			after := readAll(t, getSketch(t, ts.URL, ""))
			if !bytes.Equal(before, after) {
				t.Fatal("rejected merge changed the engine state artifact")
			}
		})
	}

	// The matrix would be vacuous if the valid artifact also bounced.
	resp := postMerge(t, ts.URL, valid)
	if body := decodeBody(t, resp); resp.StatusCode != http.StatusOK {
		t.Fatalf("valid artifact: status %d body %v, want 200", resp.StatusCode, body)
	}
}
