package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/engine"
	"repro/internal/store"
)

// wireBatch is the 256-update batch the ingest-throughput contrast pair
// shares: spread over both instances with distinct keys so the decode,
// shard routing and dominance checks all do real work.
func wireBatch() []engine.Update {
	batch := make([]engine.Update, 256)
	for i := range batch {
		batch[i] = engine.Update{Instance: i % 2, Key: uint64(i), Weight: float64(i%7) + 0.5}
	}
	return batch
}

// repeatingReader replays one encoded frame n times without materializing
// n copies — the request body for an arbitrarily long benchmark stream.
type repeatingReader struct {
	data []byte
	n    int
	off  int
}

func (r *repeatingReader) Read(p []byte) (int, error) {
	if r.n <= 0 {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	if r.off == len(r.data) {
		r.off = 0
		r.n--
	}
	return n, nil
}

// BenchmarkStreamIngest256 measures the binary streaming ingest path:
// one POST /v1/stream connection carrying b.N frames of 256 updates
// each. One op = one frame decoded and applied. The acceptance bar is
// >=5x BenchmarkIngestJSON256 — same batch, same engine work, so the
// gap is pure wire overhead (JSON decode + per-request routing).
func BenchmarkStreamIngest256(b *testing.B) {
	s := newBenchServer(b, 1<<10)
	frame := store.AppendFrame(nil, wireBatch())
	body := io.MultiReader(
		&repeatingReader{data: store.AppendStreamHeader(nil), n: 1},
		&repeatingReader{data: frame, n: b.N},
	)
	r := httptest.NewRequest(http.MethodPost, "/v1/stream", body)
	r.Header.Set("Content-Type", store.StreamContentType)
	w := httptest.NewRecorder()
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	s.ServeHTTP(w, r)
	b.StopTimer()
	if w.Code != http.StatusOK {
		b.Fatalf("stream: status %d body %s", w.Code, w.Body.String())
	}
	var sum struct {
		Frames  int `json:"frames"`
		Updates int `json:"updates"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &sum); err != nil {
		b.Fatal(err)
	}
	if sum.Frames != b.N || sum.Updates != b.N*256 {
		b.Fatalf("server applied %d frames / %d updates, want %d / %d", sum.Frames, sum.Updates, b.N, b.N*256)
	}
}

// BenchmarkIngestJSON256 is the JSON contrast: the same 256-update batch
// through POST /v1/ingest, one request per op.
func BenchmarkIngestJSON256(b *testing.B) {
	s := newBenchServer(b, 1<<10)
	updates := make([]map[string]any, 0, 256)
	for _, u := range wireBatch() {
		updates = append(updates, map[string]any{
			"instance": u.Instance, "key": fmt.Sprint(u.Key), "weight": u.Weight,
		})
	}
	body, err := json.Marshal(map[string]any{"updates": updates})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(body)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		do(b, s, http.MethodPost, "/v1/ingest", body)
	}
}

// BenchmarkSubscribeFanout measures one broadcast round — evaluate,
// encode, deliver — against n registered subscribers split over two
// distinct query shapes (so the round pays two evaluations and two
// encodings, then n channel deliveries). The acceptance bar: the 1000-
// subscriber round must fit within one default debounce window (100ms).
func BenchmarkSubscribeFanout(b *testing.B) {
	for _, n := range []int{10, 1000} {
		b.Run(fmt.Sprint(n), func(b *testing.B) {
			s := newBenchServer(b, 1<<12)
			pl := s.newPlanner()
			p1 := 1.0
			specs := []querySpec{
				{},
				{Func: "rg", P: &p1, Estimator: "lstar"},
			}
			subs := make([]*subscriber, n)
			for i := range subs {
				q, err := pl.plan(specs[i%len(specs)])
				if err != nil {
					b.Fatal(err)
				}
				sub := &subscriber{
					queries:  []*plannedQuery{q},
					shareKey: q.memoKey(),
					events:   make(chan pushEvent, subscriberBuffer),
				}
				sub.lastVersion.Store(subVersionNone)
				if err := s.broadcast.register(sub, 0); err != nil {
					b.Fatal(err)
				}
				subs[i] = sub
			}
			b.Cleanup(func() {
				for _, sub := range subs {
					s.broadcast.unregister(sub)
				}
			})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// A real mutation so the round re-evaluates rather than
				// deduping on version.
				if err := s.eng.Ingest(0, uint64(i)%64, float64(i+1)); err != nil {
					b.Fatal(err)
				}
				s.broadcast.round()
				b.StopTimer()
				// Drain on the consumer side so delivery never degrades
				// into drop-oldest churn — the measurement is the round.
				for _, sub := range subs {
					select {
					case <-sub.events:
					default:
					}
				}
				b.StartTimer()
			}
		})
	}
}
