package server

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"repro/internal/store"
)

// This file is the durability face of the API:
//
//	POST /v1/checkpoint  cut + persist the sketch state, truncate the WAL
//	GET  /v1/export      the engine state as a portable binary artifact
//	POST /v1/import      merge an exported artifact into the live engine
//	GET  /metrics        Prometheus text exposition of engine + endpoint
//	                     counters
//
// Export/import work with or without a configured store: the artifact is
// store.EncodeState's integrity-checked binary format, so a sketch can be
// carried between monestd instances (sharing the seed salt) or parked in
// object storage. Checkpointing requires Config.Persist.

// maxImportBody caps /v1/import request bodies (64 MiB — a 1M-key,
// 2-instance artifact is ~40 MiB).
const maxImportBody = 64 << 20

func (s *Server) handleCheckpoint(r *http.Request) (int, any, error) {
	if err := checkParams(r.URL.Query()); err != nil {
		return http.StatusBadRequest, nil, err
	}
	if s.persist == nil {
		return http.StatusServiceUnavailable, nil, errors.New("no persistence configured (start monestd with -data-dir)")
	}
	start := time.Now()
	stats, err := s.persist.Checkpoint()
	if err != nil {
		return http.StatusInternalServerError, nil, err
	}
	return http.StatusOK, map[string]any{
		"checkpoint":  stats,
		"duration_ms": float64(time.Since(start).Nanoseconds()) / 1e6,
	}, nil
}

// handleExport streams the current sketch state as a binary artifact. A
// raw (non-JSON) endpoint: the artifact is the exact byte format
// checkpoints use, so equal states export equal bytes — the comparison
// the recovery tests rest on.
func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) (int, error) {
	if err := checkParams(r.URL.Query()); err != nil {
		return http.StatusBadRequest, err
	}
	data := store.EncodeState(s.eng.DumpState())
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", fmt.Sprint(len(data)))
	w.Header().Set("Content-Disposition", `attachment; filename="monest-sketch.bin"`)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data) // header is out; a client hang-up is not our error
	return http.StatusOK, nil
}

func (s *Server) handleImport(r *http.Request) (int, any, error) {
	if err := checkParams(r.URL.Query()); err != nil {
		return http.StatusBadRequest, nil, err
	}
	data, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, maxImportBody))
	if err != nil {
		return http.StatusBadRequest, nil, fmt.Errorf("reading artifact: %w", err)
	}
	st, err := store.DecodeState(data)
	if err != nil {
		return http.StatusBadRequest, nil, err
	}
	if err := s.eng.MergeState(st); err != nil {
		return http.StatusBadRequest, nil, err
	}
	resp := map[string]any{
		"merged_keys":    len(st.Keys),
		"merged_ingests": st.Ingests,
		"engine":         s.eng.Stats(),
	}
	// Merging bypasses the WAL (activity masks have no per-update form),
	// so the new state is volatile until checkpointed; do it now rather
	// than leaving a window where a crash silently undoes the import.
	if s.persist != nil {
		cs, err := s.persist.Checkpoint()
		if err != nil {
			return http.StatusInternalServerError, nil, fmt.Errorf("import applied but checkpoint failed: %w", err)
		}
		resp["checkpoint"] = cs
	}
	return http.StatusOK, resp, nil
}

// handleMetrics exposes the counters /v1/stats reports, in Prometheus
// text exposition format (no client library — the format is lines of
// `name{labels} value`). Counter names follow prometheus conventions:
// monotone counters end in _total, gauges are bare.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) (int, error) {
	if err := checkParams(r.URL.Query()); err != nil {
		return http.StatusBadRequest, err
	}
	st := s.eng.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)

	var b []byte
	gauge := func(name, help string, v float64) {
		b = fmt.Appendf(b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter := func(name, help string, v float64) {
		b = fmt.Appendf(b, "# HELP %s %s\n# TYPE %s counter\n%s %g\n", name, help, name, name, v)
	}
	gauge("monest_engine_keys", "Distinct item keys ever ingested.", float64(st.Keys))
	gauge("monest_engine_active_entries", "Distinct (instance, key) pairs with positive weight.", float64(st.ActiveEntries))
	gauge("monest_engine_retained_entries", "Sketch entries currently held in bottom-k heaps.", float64(st.RetainedEntries))
	gauge("monest_engine_instances", "Configured coordinated instances.", float64(st.Instances))
	gauge("monest_engine_k", "Configured bottom-k sketch size.", float64(st.K))
	gauge("monest_engine_shards", "Configured lock-striped shards.", float64(st.Shards))
	counter("monest_engine_ingests_total", "Accepted non-zero ingest operations.", float64(st.Ingests))
	counter("monest_engine_version", "Engine mutation version (snapshot-visible state changes).", float64(st.Version))
	gauge("monest_uptime_seconds", "Seconds since the server started.", time.Since(s.started).Seconds())

	counter("monest_snapshot_rebuilds_total", "Snapshot rebuilds (any partition re-reduced or cut verified).", float64(st.Snapshot.Rebuilds))
	counter("monest_snapshot_partitions_rebuilt_total", "Per-shard partitions re-reduced during rebuilds.", float64(st.Snapshot.PartitionsRebuilt))
	counter("monest_snapshot_partitions_reused_total", "Per-shard partitions reused verbatim during rebuilds.", float64(st.Snapshot.PartitionsReused))
	counter("monest_snapshot_threshold_refreshes_total", "Rebuilds where the global thresholds moved (all partitions re-reduced).", float64(st.Snapshot.ThresholdRefreshes))
	counter("monest_snapshot_threshold_skips_total", "Rebuilds that skipped the global threshold re-gather (per-partition k+1 smallest ranks unchanged).", float64(st.Snapshot.ThresholdSkips))
	counter("monest_snapshot_plan_rebuilds_total", "Merge-plan rebuilds (key set changed).", float64(st.Snapshot.PlanRebuilds))

	wire := s.wire.view()
	gauge("monest_stream_connections_active", "Open /v1/stream binary ingest connections.", float64(wire.ActiveStreams))
	counter("monest_stream_frames_total", "Binary ingest frames decoded and applied.", float64(wire.StreamFrames))
	counter("monest_stream_updates_total", "Updates ingested over binary streams.", float64(wire.StreamUpdates))
	gauge("monest_subscribers_active", "Open /v1/subscribe connections.", float64(wire.ActiveSubscribers))
	counter("monest_subscribe_pushed_events_total", "Estimate events delivered into subscriber buffers.", float64(wire.PushedEvents))
	counter("monest_subscribe_coalesced_events_total", "Version-change wakeups absorbed by the debounce window.", float64(wire.CoalescedEvents))
	counter("monest_subscribe_dropped_events_total", "Events dropped because a slow consumer's buffer was full.", float64(wire.DroppedEvents))
	counter("monest_subscribe_heartbeats_total", "SSE keepalive comments written.", float64(wire.Heartbeats))
	counter("monest_subscribe_resumes_total", "Subscriptions that resumed from a Last-Event-ID version.", float64(wire.Resumes))
	counter("monest_stream_frames_deduped_total", "Stream frames skipped as idempotent replays.", float64(wire.StreamFramesDeduped))

	if s.gate != nil {
		gauge("monest_ingest_rate_limit", "Per-client ingest rate limit (updates/sec; 0 = unlimited).", s.gate.rate)
		gauge("monest_ingest_inflight_active", "Ingest requests and streams currently holding an in-flight slot.", float64(s.gate.inflight.Load()))
		counter("monest_ingest_rate_limited_total", "Ingest charges refused by a client's token bucket.", float64(s.gate.rateLimited.Load()))
		counter("monest_ingest_inflight_rejected_total", "Ingest requests refused by the in-flight budget.", float64(s.gate.inflightRejected.Load()))
	}

	if s.clusterRep != nil {
		cs := s.clusterRep.Stats()
		counter("monest_cluster_syncs_total", "Completed cluster sync rounds.", float64(cs.Syncs))
		counter("monest_cluster_degraded_syncs_total", "Sync rounds that served without every node (partial/quorum policy).", float64(cs.DegradedSyncs))
		counter("monest_cluster_fetches_total", "Node sketch fetches that returned state (200).", float64(cs.Fetches))
		counter("monest_cluster_not_modified_total", "Node sketch fetches answered 304 by the version vector.", float64(cs.NotModified))
		counter("monest_cluster_state_bytes_total", "Sketch state bytes fetched from nodes.", float64(cs.StateBytes))
		counter("monest_cluster_routed_updates_total", "Updates routed to owner nodes through /v1/ingest.", float64(cs.RoutedUpdates))
		degradedNow := 0.0
		if s.clusterRep.Degraded() != nil {
			degradedNow = 1
		}
		gauge("monest_cluster_degraded", "Whether the latest merged view is missing nodes (1 = degraded).", degradedNow)
		b = fmt.Appendf(b, "# HELP monest_cluster_node_breaker_state Circuit breaker state per node (0 closed, 1 half-open, 2 open).\n# TYPE monest_cluster_node_breaker_state gauge\n")
		for _, n := range cs.Nodes {
			v := map[string]int{"closed": 0, "half-open": 1, "open": 2}[n.Breaker]
			b = fmt.Appendf(b, "monest_cluster_node_breaker_state{node=%q} %d\n", n.Node, v)
		}
		b = fmt.Appendf(b, "# HELP monest_cluster_node_breaker_opens_total Times each node's breaker opened.\n# TYPE monest_cluster_node_breaker_opens_total counter\n")
		for _, n := range cs.Nodes {
			b = fmt.Appendf(b, "monest_cluster_node_breaker_opens_total{node=%q} %d\n", n.Node, n.BreakerOpens)
		}
		b = fmt.Appendf(b, "# HELP monest_cluster_node_short_circuits_total Node requests skipped while the breaker was open.\n# TYPE monest_cluster_node_short_circuits_total counter\n")
		for _, n := range cs.Nodes {
			b = fmt.Appendf(b, "monest_cluster_node_short_circuits_total{node=%q} %d\n", n.Node, n.ShortCircuits)
		}
	}

	b = fmt.Appendf(b, "# HELP monest_shard_mutations_total Snapshot-visible mutations per shard.\n# TYPE monest_shard_mutations_total counter\n")
	for i, sh := range st.PerShard {
		b = fmt.Appendf(b, "monest_shard_mutations_total{shard=\"%d\"} %d\n", i, sh.Mutations)
	}
	b = fmt.Appendf(b, "# HELP monest_shard_partition_rebuilds_total Partition re-reductions per shard.\n# TYPE monest_shard_partition_rebuilds_total counter\n")
	for i, sh := range st.PerShard {
		b = fmt.Appendf(b, "monest_shard_partition_rebuilds_total{shard=\"%d\"} %d\n", i, sh.PartitionRebuilds)
	}
	b = fmt.Appendf(b, "# HELP monest_shard_keys Distinct item keys per shard.\n# TYPE monest_shard_keys gauge\n")
	for i, sh := range st.PerShard {
		b = fmt.Appendf(b, "monest_shard_keys{shard=\"%d\"} %d\n", i, sh.Keys)
	}

	patterns := make([]string, 0, len(s.metrics))
	for p := range s.metrics {
		patterns = append(patterns, p)
	}
	sort.Strings(patterns)
	b = fmt.Appendf(b, "# HELP monest_http_requests_total Requests served per endpoint.\n# TYPE monest_http_requests_total counter\n")
	for _, p := range patterns {
		b = fmt.Appendf(b, "monest_http_requests_total{endpoint=%q} %d\n", p, s.metrics[p].requests.Load())
	}
	b = fmt.Appendf(b, "# HELP monest_http_errors_total Error responses per endpoint.\n# TYPE monest_http_errors_total counter\n")
	for _, p := range patterns {
		b = fmt.Appendf(b, "monest_http_errors_total{endpoint=%q} %d\n", p, s.metrics[p].errors.Load())
	}
	b = fmt.Appendf(b, "# HELP monest_http_latency_seconds_total Cumulative handler latency per endpoint.\n# TYPE monest_http_latency_seconds_total counter\n")
	for _, p := range patterns {
		b = fmt.Appendf(b, "monest_http_latency_seconds_total{endpoint=%q} %g\n", p, float64(s.metrics[p].latencyNS.Load())/1e9)
	}
	_, _ = w.Write(b)
	return http.StatusOK, nil
}
