// Package server exposes a streaming engine over a small JSON HTTP API —
// the serving layer of the monestd daemon.
//
// Endpoints:
//
//	POST /v1/ingest           batch of {instance, key|id, weight} updates
//	POST /v1/stream           long-lived binary streaming ingest: framed
//	                          update batches in the WAL record encoding
//	                          (see stream.go)
//	POST /v1/query            batched multi-statistic queries over one
//	                          shared snapshot (see query.go)
//	GET  /v1/subscribe        Server-Sent Events push: registered queries
//	                          are re-evaluated and pushed on version
//	                          change, debounced (see subscribe.go)
//	GET  /v1/estimate/sum     sum estimate: ?func=rg&p=1&estimator=lstar
//	GET  /v1/estimate/jaccard Jaccard of the instances' positive supports
//	GET  /v1/stats            engine contents + per-endpoint counters
//	POST /v1/checkpoint       persist a sketch checkpoint, truncate the WAL
//	GET  /v1/export           portable binary sketch artifact (octet-stream)
//	POST /v1/import           merge an exported artifact into the engine
//	GET  /v1/sketch           the same binary artifact with ETag = engine
//	                          version; If-None-Match short-circuits to 304
//	                          (the cluster scatter-gather fetch, sketch.go)
//	POST /v1/merge            fold a binary artifact into the engine
//	                          without checkpointing (the cluster sketch-
//	                          exchange ingress, sketch.go)
//	GET  /metrics             Prometheus text exposition
//	GET  /healthz             liveness probe (process up; always 200)
//	GET  /readyz              readiness probe: 503 while draining or
//	                          while Config.Ready reports the serving
//	                          floor unmet (cluster read policy)
//
// Item functions: rg (param p), rgplus (p), max, or, and, lincomb (comma
// list c plus p). Estimators resolve through the estreg registry
// ("lstar", "ustar", "ht", "voptimal", "order:<spec>", plus anything the
// operator registered); /v1/estimate/* are registry-backed aliases of the
// corresponding single-query /v1/query request. String item keys are
// hashed with sampling.StringKey, so external writers using the same salt
// stay coordinated with the server's sketches.
//
// Requests are strict: JSON bodies reject unknown fields and GET
// endpoints reject unknown query parameters, both with a structured
// {"error": {"code", "message"}} body — a typo like "estimtor" is a 400,
// never a silently ignored default. The same envelope covers requests
// that never reach a handler: unknown paths (404, code "not_found") and
// wrong methods (405, code "method_not_allowed", Allow header preserved)
// answer in JSON too, so clients parse exactly one error shape.
//
// Every snapshot-backed JSON response (/v1/query, /v1/estimate/*,
// /v1/stats) carries a top-level "version": the engine mutation version
// the answer reflects. Equal versions across responses mean they were
// computed from identical engine contents; the version is also the key
// of the server's result memo.
//
// Every read endpoint answers from ONE SnapshotSource — by default the
// engine's versioned snapshot cache — and a per-version result memo
// (snapshot.go): while no ingest intervenes, repeat queries take no shard
// locks, re-reduce nothing, and re-run no estimators. The Config's
// SnapshotMaxStale bounds how stale a served snapshot may be under
// sustained write load (0 = always exact).
//
// When the snapshot source serves partial cluster views (non-strict read
// policies), every snapshot-backed response and SSE push carries an
// explicit "degraded" block naming the missing nodes — a partial answer
// is never presented as exact. The write path can apply backpressure
// (Config.IngestRate/IngestBurst/IngestInflight): refused work answers a
// structured 429 with Retry-After, and a refused stream frame reports
// the applied progress exactly like the torn-frame contract.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/estreg"
	"repro/internal/funcs"
	"repro/internal/sampling"
	"repro/internal/store"
)

// maxIngestBody caps ingest request bodies (16 MiB) against unbounded
// memory use by a misbehaving client.
const maxIngestBody = 16 << 20

// Server routes the API onto one engine. Create with New or NewWith; the
// zero value is not usable.
type Server struct {
	eng        *engine.Engine
	reg        *estreg.Registry
	defaultEst string
	mux        *http.ServeMux
	started    time.Time
	metrics    map[string]*endpointMetrics
	// snaps is the one snapshot source every read endpoint answers from;
	// memo caches evaluated results per snapshot version, and partials
	// caches per-partition estimate vectors across versions (snapshot.go).
	snaps    SnapshotSource
	memo     atomic.Pointer[resultMemo]
	partials *partialEstimates
	// ingest is where /v1/ingest and /v1/stream updates land — the local
	// engine by default, a cluster coordinator's routed scatter when
	// Config.Ingest overrides it.
	ingest Ingestor
	// persist, when set, backs /v1/checkpoint and makes /v1/import
	// durable (see durable.go).
	persist *store.Persistence
	// wire counts streaming-ingest and subscription traffic (stream.go);
	// broadcast owns the /v1/subscribe registry and push loop
	// (subscribe.go); drainCh gates both on shutdown (Server.Drain), and
	// drainCtx is its context form — the broadcaster's snapshot
	// acquisitions run under it so a draining server cancels in-flight
	// cluster scatter-gathers that no request context covers.
	wire           wireStats
	broadcast      *broadcaster
	drainCh        chan struct{}
	drainCtx       context.Context
	drainCancel    context.CancelFunc
	drainOnce      sync.Once
	heartbeat      time.Duration
	maxSubscribers int
	// gate applies ingest backpressure (nil = unlimited); idem recognizes
	// replayed /v1/stream batches by Idempotency-Key so retried routed
	// ingest never double-counts.
	gate *ingestGate
	idem *idemStore
	// ready backs /readyz (nil = ready whenever serving); clusterRep,
	// when set, feeds the "cluster" sections of /v1/stats and /metrics.
	ready      func(context.Context) error
	clusterRep ClusterReporter
}

// ClusterReporter exposes coordinator state to /v1/stats and /metrics —
// satisfied by *cluster.Coordinator.
type ClusterReporter interface {
	Stats() cluster.Stats
	Degraded() *cluster.Degraded
}

// Config customizes a server beyond its engine.
type Config struct {
	// Registry resolves estimator names; nil means estreg.Default().
	Registry *estreg.Registry
	// DefaultEstimator is used when a request names none. Default "lstar".
	DefaultEstimator string
	// Snapshots overrides the snapshot source feeding every read
	// endpoint; nil means the engine's versioned snapshot cache bounded
	// by SnapshotMaxStale.
	Snapshots SnapshotSource
	// SnapshotMaxStale bounds how old a cached snapshot may be served
	// while writes are arriving (see engine.CachedSnapshot); 0 means
	// every read reflects all completed ingests. Ignored when Snapshots
	// is set.
	SnapshotMaxStale time.Duration
	// Ingest overrides where /v1/ingest and /v1/stream updates land; nil
	// means the engine itself. A cluster coordinator supplies its routed
	// scatter here so write traffic forwards to the owning nodes.
	Ingest Ingestor
	// Persist, when set, is the engine's attached persistence layer:
	// POST /v1/checkpoint cuts through it, and /v1/import checkpoints
	// after merging. Nil leaves the engine in-memory only; /v1/checkpoint
	// then answers 503.
	Persist *store.Persistence
	// SubscribeDebounce is how long the push loop absorbs a write burst
	// before re-evaluating subscriptions (default 100ms); 0 pushes per
	// mutation wakeup.
	SubscribeDebounce time.Duration
	// SubscribeHeartbeat is the SSE keepalive comment period (default 15s).
	SubscribeHeartbeat time.Duration
	// MaxSubscribers caps concurrent /v1/subscribe connections (default
	// 4096); beyond it new subscriptions answer 503.
	MaxSubscribers int
	// IngestRate caps each client's ingest throughput (updates/sec,
	// token bucket keyed by client IP; 0 = unlimited) with IngestBurst
	// capacity (0 = max(IngestRate, 1)). Refused work answers 429 +
	// Retry-After.
	IngestRate  float64
	IngestBurst float64
	// IngestInflight bounds concurrently-served ingest requests plus
	// open streams (0 = unlimited); beyond it new work answers 429.
	IngestInflight int
	// Ready, when set, backs GET /readyz: a non-nil error answers 503.
	// The cluster coordinator supplies its read-policy satisfiability
	// check here; a plain node is ready once it serves (recovery
	// completes before the listener opens).
	Ready func(context.Context) error
	// Cluster, when set, adds coordinator scatter-gather, breaker and
	// degraded-read state to /v1/stats and /metrics.
	Cluster ClusterReporter
}

// endpointMetrics counts one endpoint's traffic. Fields are atomics so
// handlers never contend.
type endpointMetrics struct {
	requests  atomic.Uint64
	errors    atomic.Uint64
	latencyNS atomic.Uint64
}

// EndpointStats is the JSON view of one endpoint's counters.
type EndpointStats struct {
	Requests     uint64  `json:"requests"`
	Errors       uint64  `json:"errors"`
	AvgLatencyMS float64 `json:"avg_latency_ms"`
}

// apiError is the structured error body: {"error": {"code", "message"}}.
// 429 responses add the retry hint, and a refused stream frame adds the
// applied progress (the torn-frame contract in error form).
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// RetryAfterSeconds mirrors the Retry-After header (429 only).
	RetryAfterSeconds float64 `json:"retry_after_seconds,omitempty"`
	// AppliedFrames/AppliedUpdates report how much of a refused stream
	// was applied before the 429 (stream rejections only).
	AppliedFrames  *int `json:"applied_frames,omitempty"`
	AppliedUpdates *int `json:"applied_updates,omitempty"`
}

func errCode(status int) string {
	switch {
	case status == http.StatusNotFound:
		return "not_found"
	case status == http.StatusMethodNotAllowed:
		return "method_not_allowed"
	case status == http.StatusTooManyRequests:
		return "rate_limited"
	case status >= 400 && status < 500:
		return "bad_request"
	case status == http.StatusServiceUnavailable:
		return "unavailable"
	default:
		return "internal"
	}
}

// writeError emits the structured error envelope, decorating rate-limit
// errors with the Retry-After header and their envelope fields.
func writeError(w http.ResponseWriter, code int, err error) {
	body := apiError{Code: errCode(code), Message: err.Error()}
	var rl *rateLimitError
	if errors.As(err, &rl) {
		setRetryHeaders(w, rl)
		body.RetryAfterSeconds = rl.retryAfter.Seconds()
		if rl.appliedFrames >= 0 {
			body.AppliedFrames = &rl.appliedFrames
			body.AppliedUpdates = &rl.appliedUpdates
		}
	}
	writeJSON(w, code, map[string]apiError{"error": body})
}

// Ingestor receives the update batches /v1/ingest and /v1/stream decode.
// The local engine is adapted by engineIngestor; a cluster coordinator
// satisfies it by scatter-forwarding each batch to the ring-owning
// nodes. ctx is the serving request's context: remote-backed ingestors
// must honor it so an aborted request cancels in-flight forwards; local
// folds ignore it.
type Ingestor interface {
	IngestBatch(ctx context.Context, batch []engine.Update) error
}

// engineIngestor adapts *engine.Engine to the context-aware Ingestor.
// Local folds are lock-bounded and never block on the network, so the
// context is ignored.
type engineIngestor struct{ eng *engine.Engine }

func (e engineIngestor) IngestBatch(_ context.Context, batch []engine.Update) error {
	return e.eng.IngestBatch(batch)
}

// acquireStatus maps a SnapshotSource failure to an HTTP status: errors
// advertising Unavailable() (a cluster node down, degraded mode) are 503
// so clients and orchestrators can tell "backend gone" from "bad query";
// everything else is a 500.
func acquireStatus(err error) int {
	var u interface{ Unavailable() bool }
	if errors.As(err, &u) && u.Unavailable() {
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// ingestStatus maps an Ingestor failure: an unavailable backend (routed
// cluster ingest whose owner node is down) is 503; anything else is the
// request's fault (bad instance index, non-finite weight) — 400.
func ingestStatus(err error) int {
	var u interface{ Unavailable() bool }
	if errors.As(err, &u) && u.Unavailable() {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

// New returns a server wired to the engine with the default registry.
func New(eng *engine.Engine) *Server { return NewWith(eng, Config{}) }

// NewWith returns a server wired to the engine with a custom estimator
// registry and default estimator. The default estimator must build for
// the registry (checked lazily per request; cmd/monestd validates it at
// startup).
func NewWith(eng *engine.Engine, cfg Config) *Server {
	if cfg.Registry == nil {
		cfg.Registry = estreg.Default()
	}
	if cfg.DefaultEstimator == "" {
		cfg.DefaultEstimator = "lstar"
	}
	if cfg.Snapshots == nil {
		cfg.Snapshots = cachedSource{eng: eng, maxStale: cfg.SnapshotMaxStale}
	}
	if cfg.SubscribeDebounce == 0 {
		cfg.SubscribeDebounce = 100 * time.Millisecond
	}
	if cfg.SubscribeHeartbeat == 0 {
		cfg.SubscribeHeartbeat = 15 * time.Second
	}
	if cfg.MaxSubscribers == 0 {
		cfg.MaxSubscribers = 4096
	}
	if cfg.Ingest == nil {
		cfg.Ingest = engineIngestor{eng}
	}
	drainCtx, drainCancel := context.WithCancel(context.Background())
	s := &Server{
		eng:            eng,
		reg:            cfg.Registry,
		defaultEst:     cfg.DefaultEstimator,
		mux:            http.NewServeMux(),
		started:        time.Now(),
		metrics:        make(map[string]*endpointMetrics),
		snaps:          cfg.Snapshots,
		partials:       newPartialEstimates(),
		ingest:         cfg.Ingest,
		persist:        cfg.Persist,
		drainCh:        make(chan struct{}),
		drainCtx:       drainCtx,
		drainCancel:    drainCancel,
		heartbeat:      cfg.SubscribeHeartbeat,
		maxSubscribers: cfg.MaxSubscribers,
		gate:           newIngestGate(cfg.IngestRate, cfg.IngestBurst, cfg.IngestInflight),
		idem:           newIdemStore(),
		ready:          cfg.Ready,
		clusterRep:     cfg.Cluster,
	}
	s.broadcast = newBroadcaster(s, cfg.SubscribeDebounce)
	s.route("POST /v1/ingest", s.handleIngest)
	s.route("POST /v1/stream", s.handleStream)
	s.route("POST /v1/query", s.handleQuery)
	s.routeRaw("GET /v1/subscribe", s.handleSubscribe)
	s.route("GET /v1/estimate/sum", s.handleEstimateSum)
	s.route("GET /v1/estimate/jaccard", s.handleEstimateJaccard)
	s.route("GET /v1/stats", s.handleStats)
	s.route("POST /v1/checkpoint", s.handleCheckpoint)
	s.route("POST /v1/import", s.handleImport)
	s.route("POST /v1/merge", s.handleMerge)
	s.routeRaw("GET /v1/export", s.handleExport)
	s.routeRaw("GET /v1/sketch", s.handleSketch)
	s.routeRaw("GET /metrics", s.handleMetrics)
	s.route("GET /healthz", s.handleHealthz)
	s.route("GET /readyz", s.handleReadyz)
	return s
}

// ServeHTTP implements http.Handler. Requests that match no route — an
// unknown path (404) or a known path with the wrong method (405) — get
// the same structured {"error": {"code", "message"}} body every
// registered endpoint uses, instead of the mux's plain-text defaults.
// The mux still decides the status and the 405 Allow header; only the
// body is replaced. Pattern-matched requests (including the mux's
// path-cleaning redirects, which carry a pattern) pass through untouched.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if _, pattern := s.mux.Handler(r); pattern == "" {
		probe := errorProbe{header: make(http.Header)}
		s.mux.ServeHTTP(&probe, r)
		code := probe.code
		if code == 0 {
			code = http.StatusNotFound
		}
		if allow := probe.header.Get("Allow"); allow != "" {
			w.Header().Set("Allow", allow)
		}
		msg := fmt.Sprintf("no endpoint %s %s", r.Method, r.URL.Path)
		if code == http.StatusMethodNotAllowed {
			msg = fmt.Sprintf("method %s not allowed for %s (Allow: %s)", r.Method, r.URL.Path, probe.header.Get("Allow"))
		}
		writeJSON(w, code, map[string]apiError{"error": {Code: errCode(code), Message: msg}})
		return
	}
	s.mux.ServeHTTP(w, r)
}

// errorProbe captures the status and headers the mux's fallback handlers
// (NotFoundHandler, the 405 responder) would have written, so ServeHTTP
// can keep their routing decision while replacing the plain-text body.
type errorProbe struct {
	header http.Header
	code   int
}

func (p *errorProbe) Header() http.Header { return p.header }

func (p *errorProbe) WriteHeader(code int) {
	if p.code == 0 {
		p.code = code
	}
}

func (p *errorProbe) Write(b []byte) (int, error) {
	if p.code == 0 {
		p.code = http.StatusOK
	}
	return len(b), nil
}

// route registers an instrumented handler. Handlers return a status code
// and either a JSON-marshalable body or an error.
func (s *Server) route(pattern string, h func(*http.Request) (int, any, error)) {
	m := &endpointMetrics{}
	s.metrics[pattern] = m
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		code, body, err := h(r)
		m.requests.Add(1)
		m.latencyNS.Add(uint64(time.Since(start).Nanoseconds()))
		if err != nil {
			m.errors.Add(1)
			writeError(w, code, err)
			return
		}
		writeJSON(w, code, body)
	})
}

// routeRaw registers an instrumented handler that writes its own success
// response (non-JSON endpoints: /v1/export, /metrics). On error the
// handler must NOT have written headers yet; the structured JSON error
// body is emitted here, as in route.
func (s *Server) routeRaw(pattern string, h func(http.ResponseWriter, *http.Request) (int, error)) {
	m := &endpointMetrics{}
	s.metrics[pattern] = m
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		code, err := h(w, r)
		m.requests.Add(1)
		m.latencyNS.Add(uint64(time.Since(start).Nanoseconds()))
		if err != nil {
			m.errors.Add(1)
			writeError(w, code, err)
		}
	})
}

func writeJSON(w http.ResponseWriter, code int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(body) // headers are out; nothing useful to do on error
}

// checkParams rejects query parameters outside the endpoint's contract, so
// client typos fail loudly instead of silently falling back to defaults.
func checkParams(q url.Values, allowed ...string) error {
	for name := range q {
		ok := false
		for _, a := range allowed {
			if name == a {
				ok = true
				break
			}
		}
		if !ok {
			sort.Strings(allowed)
			return fmt.Errorf("unknown query parameter %q (have %s)", name, strings.Join(allowed, ", "))
		}
	}
	return nil
}

// decodeStrict decodes a JSON body rejecting unknown fields and trailing
// garbage.
func decodeStrict(r *http.Request, maxBytes int64, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("decoding body: %w", err)
	}
	if dec.More() {
		return errors.New("decoding body: trailing data after JSON value")
	}
	return nil
}

// ingestRequest is the POST /v1/ingest body.
type ingestRequest struct {
	Updates []ingestUpdate `json:"updates"`
}

// ingestUpdate is one observation; a present Key (string, hashed with
// sampling.StringKey, empty allowed) takes precedence over the raw ID.
type ingestUpdate struct {
	Instance int     `json:"instance"`
	Key      *string `json:"key,omitempty"`
	ID       uint64  `json:"id,omitempty"`
	Weight   float64 `json:"weight"`
}

func (s *Server) handleIngest(r *http.Request) (int, any, error) {
	if s.gate != nil {
		if !s.gate.acquire() {
			return http.StatusTooManyRequests, nil, s.gate.limited(time.Second, -1, -1,
				fmt.Sprintf("ingest in-flight budget (%d) exhausted", s.gate.maxInflight))
		}
		defer s.gate.release()
	}
	var req ingestRequest
	if err := decodeStrict(r, maxIngestBody, &req); err != nil {
		return http.StatusBadRequest, nil, err
	}
	if len(req.Updates) == 0 {
		return http.StatusBadRequest, nil, errors.New("empty update batch")
	}
	if s.gate != nil {
		if ok, wait := s.gate.admit(clientKey(r), len(req.Updates)); !ok {
			return http.StatusTooManyRequests, nil, s.gate.limited(wait, -1, -1,
				fmt.Sprintf("rate limit: %d updates exceed the client budget", len(req.Updates)))
		}
	}
	batch := make([]engine.Update, len(req.Updates))
	ingested := 0
	for i, u := range req.Updates {
		key := u.ID
		if u.Key != nil {
			key = sampling.StringKey(*u.Key)
		}
		batch[i] = engine.Update{Instance: u.Instance, Key: key, Weight: u.Weight}
		if u.Weight != 0 {
			ingested++
		}
	}
	if err := s.ingest.IngestBatch(r.Context(), batch); err != nil {
		return ingestStatus(err), nil, err
	}
	// ingested counts folded-in observations, matching the engine's
	// Ingests stat; zero weights are accepted no-ops reported as skipped.
	return http.StatusOK, map[string]int{"ingested": ingested, "skipped": len(batch) - ingested}, nil
}

// statisticSpec names an item function with its parameters — the common
// form behind the ?func=… query parameters and the /v1/query JSON fields.
type statisticSpec struct {
	Func string
	P    *float64
	C    []float64
}

// key canonicalizes the spec for the batch planner's estimator cache.
func (sp statisticSpec) key() string {
	p := ""
	if sp.P != nil {
		p = strconv.FormatFloat(*sp.P, 'g', -1, 64)
	}
	cs := make([]string, len(sp.C))
	for i, c := range sp.C {
		cs[i] = strconv.FormatFloat(c, 'g', -1, 64)
	}
	return sp.Func + "|p=" + p + "|c=" + strings.Join(cs, ",")
}

// build constructs the item function.
func (sp statisticSpec) build() (funcs.F, error) {
	p := 1.0
	if sp.P != nil {
		p = *sp.P
	}
	name := sp.Func
	if name == "" {
		name = "rg"
	}
	switch name {
	case "rg":
		return funcs.NewRG(p)
	case "rgplus":
		return funcs.NewRGPlus(p)
	case "max":
		return funcs.MaxTuple{}, nil
	case "or":
		return funcs.OrTuple{}, nil
	case "and":
		return funcs.AndTuple{}, nil
	case "lincomb":
		if len(sp.C) == 0 {
			return nil, errors.New("func lincomb needs coefficients c")
		}
		return funcs.NewLinComb(sp.C, p)
	default:
		return nil, fmt.Errorf("unknown func %q (have rg, rgplus, max, or, and, lincomb)", name)
	}
}

// parseStatistic reads the ?func=, ?p= and ?c= query parameters.
func parseStatistic(q url.Values) (statisticSpec, error) {
	sp := statisticSpec{Func: q.Get("func")}
	if raw := q.Get("p"); raw != "" {
		p, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return sp, fmt.Errorf("parameter p: %w", err)
		}
		sp.P = &p
	}
	if raw := q.Get("c"); raw != "" {
		parts := strings.Split(raw, ",")
		sp.C = make([]float64, len(parts))
		for i, part := range parts {
			c, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				return sp, fmt.Errorf("parameter c[%d]: %w", i, err)
			}
			sp.C[i] = c
		}
	}
	return sp, nil
}

func (s *Server) handleEstimateSum(r *http.Request) (int, any, error) {
	q := r.URL.Query()
	if err := checkParams(q, "func", "p", "c", "estimator"); err != nil {
		return http.StatusBadRequest, nil, err
	}
	sp, err := parseStatistic(q)
	if err != nil {
		return http.StatusBadRequest, nil, err
	}
	plan, err := s.planOne(querySpec{Statistic: "sum", Func: sp.Func, P: sp.P, C: sp.C, Estimator: q.Get("estimator")})
	if err != nil {
		return http.StatusBadRequest, nil, err
	}
	view, degraded, err := s.acquire(r.Context())
	if err != nil {
		return acquireStatus(err), nil, err
	}
	res := s.evalMemoized(plan, view, s.memoFor(view.Version))
	if res.Error != nil {
		return res.status, nil, errors.New(res.Error.Message)
	}
	body := map[string]any{
		"version":         view.Version,
		"estimate":        *res.Estimate,
		"estimator":       res.Estimator,
		"func":            plan.f.Name(),
		"meta":            res.Meta,
		"keys":            len(view.Keys),
		"sampled_entries": view.SampledEntries(),
		"total_entries":   view.TotalEntries(),
	}
	if degraded != nil {
		body["degraded"] = degraded
	}
	return http.StatusOK, body, nil
}

func (s *Server) handleEstimateJaccard(r *http.Request) (int, any, error) {
	q := r.URL.Query()
	if err := checkParams(q, "estimator"); err != nil {
		return http.StatusBadRequest, nil, err
	}
	plan, err := s.planOne(querySpec{Statistic: "jaccard", Estimator: q.Get("estimator")})
	if err != nil {
		return http.StatusBadRequest, nil, err
	}
	view, degraded, err := s.acquire(r.Context())
	if err != nil {
		return acquireStatus(err), nil, err
	}
	res := s.evalMemoized(plan, view, s.memoFor(view.Version))
	if res.Error != nil {
		return res.status, nil, errors.New(res.Error.Message)
	}
	body := map[string]any{
		"version":   view.Version,
		"jaccard":   *res.Estimate,
		"estimator": res.Estimator,
		"keys":      len(view.Keys),
	}
	if degraded != nil {
		body["degraded"] = degraded
	}
	return http.StatusOK, body, nil
}

func (s *Server) handleStats(r *http.Request) (int, any, error) {
	if err := checkParams(r.URL.Query()); err != nil {
		return http.StatusBadRequest, nil, err
	}
	endpoints := make(map[string]EndpointStats, len(s.metrics))
	for pattern, m := range s.metrics {
		n := m.requests.Load()
		es := EndpointStats{Requests: n, Errors: m.errors.Load()}
		if n > 0 {
			es.AvgLatencyMS = float64(m.latencyNS.Load()) / float64(n) / 1e6
		}
		endpoints[pattern] = es
	}
	st := s.eng.Stats()
	body := map[string]any{
		"version":        st.Version,
		"engine":         st,
		"estimators":     s.reg.Names(),
		"endpoints":      endpoints,
		"wire":           s.wire.view(),
		"uptime_seconds": time.Since(s.started).Seconds(),
	}
	if s.gate != nil {
		body["ingest_limits"] = map[string]any{
			"rate":                    s.gate.rate,
			"burst":                   s.gate.burst,
			"inflight_max":            s.gate.maxInflight,
			"inflight_active":         s.gate.inflight.Load(),
			"rate_limited_total":      s.gate.rateLimited.Load(),
			"inflight_rejected_total": s.gate.inflightRejected.Load(),
		}
	}
	if s.clusterRep != nil {
		cl := map[string]any{"stats": s.clusterRep.Stats()}
		if d := s.clusterRep.Degraded(); d != nil {
			cl["degraded"] = d
		}
		body["cluster"] = cl
	}
	return http.StatusOK, body, nil
}

// handleHealthz deliberately skips checkParams: liveness probes may
// append cache-busting or tagging parameters, and a 400 here would flip
// an orchestrator's view of a healthy instance. It answers 200 for the
// whole process lifetime, drain included — liveness means "do not
// restart me", not "send me traffic"; that is /readyz.
func (s *Server) handleHealthz(*http.Request) (int, any, error) {
	return http.StatusOK, map[string]string{"status": "ok"}, nil
}

// handleReadyz is the readiness probe: 503 while draining or while the
// configured readiness check fails (a cluster coordinator that cannot
// meet its read-policy floor). Like /healthz it skips checkParams.
func (s *Server) handleReadyz(r *http.Request) (int, any, error) {
	if s.draining() {
		return http.StatusServiceUnavailable, nil, errDraining
	}
	if s.ready != nil {
		if err := s.ready(r.Context()); err != nil {
			return http.StatusServiceUnavailable, nil, fmt.Errorf("not ready: %w", err)
		}
	}
	return http.StatusOK, map[string]string{"status": "ready"}, nil
}

func finite(x float64) error {
	if math.IsInf(x, 0) || math.IsNaN(x) {
		// JSON cannot carry Inf/NaN; without this guard the encoder fails
		// after the 200 header is out and the body arrives empty.
		return fmt.Errorf("estimate %g is not finite (weights near the float range overflow the sum)", x)
	}
	return nil
}
