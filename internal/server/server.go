// Package server exposes a streaming engine over a small JSON HTTP API —
// the serving layer of the monestd daemon.
//
// Endpoints:
//
//	POST /v1/ingest           batch of {instance, key|id, weight} updates
//	GET  /v1/estimate/sum     sum estimate: ?func=rg&p=1&estimator=lstar
//	GET  /v1/estimate/jaccard Jaccard of the instances' positive supports
//	GET  /v1/stats            engine contents + per-endpoint counters
//	GET  /healthz             liveness probe
//
// Item functions: rg (param p), rgplus (p), max, or, and, lincomb (comma
// list c plus p). Estimators: lstar (default), ustar, ht. String item keys
// are hashed with sampling.StringKey, so external writers using the same
// salt stay coordinated with the server's sketches.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/funcs"
	"repro/internal/sampling"
)

// maxIngestBody caps ingest request bodies (16 MiB) against unbounded
// memory use by a misbehaving client.
const maxIngestBody = 16 << 20

// Server routes the API onto one engine. Create with New; the zero value
// is not usable.
type Server struct {
	eng     *engine.Engine
	mux     *http.ServeMux
	started time.Time
	metrics map[string]*endpointMetrics
}

// endpointMetrics counts one endpoint's traffic. Fields are atomics so
// handlers never contend.
type endpointMetrics struct {
	requests  atomic.Uint64
	errors    atomic.Uint64
	latencyNS atomic.Uint64
}

// EndpointStats is the JSON view of one endpoint's counters.
type EndpointStats struct {
	Requests     uint64  `json:"requests"`
	Errors       uint64  `json:"errors"`
	AvgLatencyMS float64 `json:"avg_latency_ms"`
}

// New returns a server wired to the engine.
func New(eng *engine.Engine) *Server {
	s := &Server{
		eng:     eng,
		mux:     http.NewServeMux(),
		started: time.Now(),
		metrics: make(map[string]*endpointMetrics),
	}
	s.route("POST /v1/ingest", s.handleIngest)
	s.route("GET /v1/estimate/sum", s.handleEstimateSum)
	s.route("GET /v1/estimate/jaccard", s.handleEstimateJaccard)
	s.route("GET /v1/stats", s.handleStats)
	s.route("GET /healthz", s.handleHealthz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// route registers an instrumented handler. Handlers return a status code
// and either a JSON-marshalable body or an error.
func (s *Server) route(pattern string, h func(*http.Request) (int, any, error)) {
	m := &endpointMetrics{}
	s.metrics[pattern] = m
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		code, body, err := h(r)
		m.requests.Add(1)
		m.latencyNS.Add(uint64(time.Since(start).Nanoseconds()))
		if err != nil {
			m.errors.Add(1)
			writeJSON(w, code, map[string]string{"error": err.Error()})
			return
		}
		writeJSON(w, code, body)
	})
}

func writeJSON(w http.ResponseWriter, code int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(body) // headers are out; nothing useful to do on error
}

// ingestRequest is the POST /v1/ingest body.
type ingestRequest struct {
	Updates []ingestUpdate `json:"updates"`
}

// ingestUpdate is one observation; a present Key (string, hashed with
// sampling.StringKey, empty allowed) takes precedence over the raw ID.
type ingestUpdate struct {
	Instance int     `json:"instance"`
	Key      *string `json:"key,omitempty"`
	ID       uint64  `json:"id,omitempty"`
	Weight   float64 `json:"weight"`
}

func (s *Server) handleIngest(r *http.Request) (int, any, error) {
	var req ingestRequest
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxIngestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return http.StatusBadRequest, nil, fmt.Errorf("decoding body: %w", err)
	}
	if len(req.Updates) == 0 {
		return http.StatusBadRequest, nil, errors.New("empty update batch")
	}
	batch := make([]engine.Update, len(req.Updates))
	ingested := 0
	for i, u := range req.Updates {
		key := u.ID
		if u.Key != nil {
			key = sampling.StringKey(*u.Key)
		}
		batch[i] = engine.Update{Instance: u.Instance, Key: key, Weight: u.Weight}
		if u.Weight != 0 {
			ingested++
		}
	}
	if err := s.eng.IngestBatch(batch); err != nil {
		return http.StatusBadRequest, nil, err
	}
	// ingested counts folded-in observations, matching the engine's
	// Ingests stat; zero weights are accepted no-ops reported as skipped.
	return http.StatusOK, map[string]int{"ingested": ingested, "skipped": len(batch) - ingested}, nil
}

// parseF builds the item function named by the query (?func=, with ?p=
// and ?c= parameters where applicable).
func parseF(q map[string][]string) (funcs.F, error) {
	get := func(name, def string) string {
		if v, ok := q[name]; ok && len(v) > 0 && v[0] != "" {
			return v[0]
		}
		return def
	}
	p, err := strconv.ParseFloat(get("p", "1"), 64)
	if err != nil {
		return nil, fmt.Errorf("parameter p: %w", err)
	}
	switch name := get("func", "rg"); name {
	case "rg":
		return funcs.NewRG(p)
	case "rgplus":
		return funcs.NewRGPlus(p)
	case "max":
		return funcs.MaxTuple{}, nil
	case "or":
		return funcs.OrTuple{}, nil
	case "and":
		return funcs.AndTuple{}, nil
	case "lincomb":
		raw := get("c", "")
		if raw == "" {
			return nil, errors.New("func lincomb needs ?c=c1,c2,...")
		}
		parts := strings.Split(raw, ",")
		c := make([]float64, len(parts))
		for i, part := range parts {
			c[i], err = strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				return nil, fmt.Errorf("parameter c[%d]: %w", i, err)
			}
		}
		return funcs.NewLinComb(c, p)
	default:
		return nil, fmt.Errorf("unknown func %q (have rg, rgplus, max, or, and, lincomb)", name)
	}
}

func parseEstimator(q map[string][]string) (dataset.EstimatorKind, error) {
	name := "lstar"
	if v, ok := q["estimator"]; ok && len(v) > 0 && v[0] != "" {
		name = v[0]
	}
	switch name {
	case "lstar":
		return dataset.KindLStar, nil
	case "ustar":
		return dataset.KindUStar, nil
	case "ht":
		return dataset.KindHT, nil
	default:
		return 0, fmt.Errorf("unknown estimator %q (have lstar, ustar, ht)", name)
	}
}

func (s *Server) handleEstimateSum(r *http.Request) (int, any, error) {
	q := r.URL.Query()
	f, err := parseF(q)
	if err != nil {
		return http.StatusBadRequest, nil, err
	}
	kind, err := parseEstimator(q)
	if err != nil {
		return http.StatusBadRequest, nil, err
	}
	if a := f.Arity(); a != 0 && a != s.eng.Config().Instances {
		return http.StatusBadRequest, nil, fmt.Errorf("func %s needs %d instances, engine has %d", f.Name(), a, s.eng.Config().Instances)
	}
	snap := s.eng.Snapshot()
	est, err := snap.Sample.EstimateSum(f, kind, nil)
	if err != nil {
		return http.StatusInternalServerError, nil, err
	}
	if math.IsInf(est, 0) || math.IsNaN(est) {
		// JSON cannot carry Inf/NaN; without this guard the encoder
		// fails after the 200 header is out and the body arrives empty.
		return http.StatusInternalServerError, nil, fmt.Errorf("estimate %g is not finite (weights near the float range overflow the sum)", est)
	}
	return http.StatusOK, map[string]any{
		"estimate":        est,
		"estimator":       kind.String(),
		"func":            f.Name(),
		"keys":            len(snap.Keys),
		"sampled_entries": snap.Sample.SampledEntries,
		"total_entries":   snap.Sample.TotalEntries,
	}, nil
}

func (s *Server) handleEstimateJaccard(r *http.Request) (int, any, error) {
	snap := s.eng.Snapshot()
	jac := funcs.JaccardEstimate(snap.Sample.Outcomes)
	if math.IsInf(jac, 0) || math.IsNaN(jac) {
		return http.StatusInternalServerError, nil, fmt.Errorf("jaccard estimate %g is not finite", jac)
	}
	return http.StatusOK, map[string]any{
		"jaccard": jac,
		"keys":    len(snap.Keys),
	}, nil
}

func (s *Server) handleStats(r *http.Request) (int, any, error) {
	endpoints := make(map[string]EndpointStats, len(s.metrics))
	for pattern, m := range s.metrics {
		n := m.requests.Load()
		es := EndpointStats{Requests: n, Errors: m.errors.Load()}
		if n > 0 {
			es.AvgLatencyMS = float64(m.latencyNS.Load()) / float64(n) / 1e6
		}
		endpoints[pattern] = es
	}
	return http.StatusOK, map[string]any{
		"engine":         s.eng.Stats(),
		"endpoints":      endpoints,
		"uptime_seconds": time.Since(s.started).Seconds(),
	}, nil
}

func (s *Server) handleHealthz(*http.Request) (int, any, error) {
	return http.StatusOK, map[string]string{"status": "ok"}, nil
}
