package server

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/store"
)

// POST /v1/stream is the binary ingest path: one long-lived request whose
// chunked body is a stream of length-prefixed, CRC-framed update batches
// in the WAL's record encoding (store.AppendFrame / store.FrameScanner).
// Each decoded frame feeds Engine.IngestBatch directly — no JSON, no
// per-batch request round-trip, no per-frame allocations (the scanner and
// the engine's batch pool both reuse scratch). Backpressure is the
// transport's: the server reads a frame only after ingesting the previous
// one, so a sender can never run ahead of the engine by more than the
// socket and bufio windows.
//
// The stream ends when the client closes the request body (clean EOF on a
// frame boundary) or when the server starts draining; the response then
// reports what was applied:
//
//	{"frames": N, "updates": M, "draining": bool}
//
// A torn frame, checksum mismatch or invalid update aborts the stream
// with a 400 whose message counts the frames already applied — applied
// frames stay applied (the stream is not transactional, exactly like
// sequential /v1/ingest batches). A rate-limited frame aborts the same
// way with a 429 carrying Retry-After plus applied_frames /
// applied_updates in the envelope, so a client resumes from exact
// progress instead of guessing.
//
// A request may carry an Idempotency-Key header: frames the server
// already applied under that key (same position, same content digest)
// are skipped — not re-applied, not rate-charged, not re-counted — so a
// coordinator retrying a routed batch whose response was lost keeps the
// node's counters exact (see idempotency.go).

// wireStats counts streaming-ingest and subscription traffic; all fields
// are atomics shared by handlers, the broadcaster and /v1/stats.
type wireStats struct {
	streamsActive atomic.Int64
	streamFrames  atomic.Uint64
	streamUpdates atomic.Uint64
	streamDeduped atomic.Uint64

	subsActive atomic.Int64
	pushed     atomic.Uint64
	coalesced  atomic.Uint64
	dropped    atomic.Uint64
	heartbeats atomic.Uint64
	resumes    atomic.Uint64
}

// WireStats is the JSON view of the wire counters in /v1/stats.
type WireStats struct {
	// ActiveStreams gauges open /v1/stream connections.
	ActiveStreams int64 `json:"active_streams"`
	// StreamFrames and StreamUpdates count decoded-and-applied binary
	// frames and the updates they carried.
	StreamFrames  uint64 `json:"stream_frames"`
	StreamUpdates uint64 `json:"stream_updates"`
	// StreamFramesDeduped counts frames skipped because an earlier
	// request with the same Idempotency-Key already applied them.
	StreamFramesDeduped uint64 `json:"stream_frames_deduped"`
	// ActiveSubscribers gauges open /v1/subscribe connections.
	ActiveSubscribers int64 `json:"active_subscribers"`
	// PushedEvents counts estimate events delivered into subscriber
	// buffers (initial pushes included).
	PushedEvents uint64 `json:"pushed_events"`
	// CoalescedEvents counts version-change wakeups absorbed into an
	// already-pending push round by the debounce window.
	CoalescedEvents uint64 `json:"coalesced_events"`
	// DroppedEvents counts undelivered events discarded because a slow
	// consumer's buffer was full (the consumer's next event supersedes
	// them; ingest never blocks).
	DroppedEvents uint64 `json:"dropped_events"`
	// Heartbeats counts SSE keepalive comments written.
	Heartbeats uint64 `json:"heartbeats"`
	// Resumes counts subscriptions that arrived with a valid
	// Last-Event-ID header (SSE reconnects resuming from a known version).
	Resumes uint64 `json:"resumes"`
}

func (w *wireStats) view() WireStats {
	return WireStats{
		ActiveStreams:       w.streamsActive.Load(),
		StreamFrames:        w.streamFrames.Load(),
		StreamUpdates:       w.streamUpdates.Load(),
		StreamFramesDeduped: w.streamDeduped.Load(),
		ActiveSubscribers:   w.subsActive.Load(),
		PushedEvents:        w.pushed.Load(),
		CoalescedEvents:     w.coalesced.Load(),
		DroppedEvents:       w.dropped.Load(),
		Heartbeats:          w.heartbeats.Load(),
		Resumes:             w.resumes.Load(),
	}
}

func (s *Server) handleStream(r *http.Request) (int, any, error) {
	if err := checkParams(r.URL.Query()); err != nil {
		return http.StatusBadRequest, nil, err
	}
	if ct := r.Header.Get("Content-Type"); ct != "" && ct != store.StreamContentType {
		return http.StatusUnsupportedMediaType, nil,
			fmt.Errorf("content type %q (want %s)", ct, store.StreamContentType)
	}
	if s.gate != nil {
		if !s.gate.acquire() {
			return http.StatusTooManyRequests, nil,
				s.gate.limited(time.Second, 0, 0,
					fmt.Sprintf("ingest in-flight budget (%d) exhausted", s.gate.maxInflight))
		}
		defer s.gate.release()
	}
	// An Idempotency-Key makes replayed frames (same position, same
	// digest) no-ops; the coordinator's routed retries rely on this.
	var rec *idemRecord
	if key := r.Header.Get("Idempotency-Key"); key != "" {
		rec = s.idem.get(key)
	}
	client := clientKey(r)

	s.wire.streamsActive.Add(1)
	defer s.wire.streamsActive.Add(-1)

	sc := store.NewFrameScanner(r.Body)
	frames, updates := 0, 0
	skippedFrames, skippedUpdates := 0, 0
	seq := 0 // frame position in the stream, skipped frames included
	draining := false
	for {
		// Check the drain gate between frames (never mid-frame): on
		// shutdown the connection finishes its current batch and answers
		// with what it applied, instead of being cut mid-record.
		select {
		case <-s.drainCh:
			draining = true
		default:
		}
		if draining {
			break
		}
		batch, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return http.StatusBadRequest, nil,
				fmt.Errorf("frame %d: %w (%d updates from %d frames already applied)", seq, err, updates, frames)
		}
		var digest uint64
		if rec != nil {
			digest = frameDigest(batch)
			if rec.seen(seq, digest) {
				// Already applied by an earlier attempt under this key:
				// skip — no engine apply, no counters, no token charge.
				seq++
				skippedFrames++
				skippedUpdates += len(batch)
				s.wire.streamDeduped.Add(1)
				continue
			}
		}
		if s.gate != nil {
			if ok, retryAfter := s.gate.admit(client, len(batch)); !ok {
				return http.StatusTooManyRequests, nil,
					s.gate.limited(retryAfter, frames, updates,
						fmt.Sprintf("frame %d: rate limit: %d updates exceed the client budget (%d updates from %d frames already applied)",
							seq, len(batch), updates, frames))
			}
		}
		if err := s.ingest.IngestBatch(r.Context(), batch); err != nil {
			return ingestStatus(err), nil,
				fmt.Errorf("frame %d: %w (%d updates from %d frames already applied)", seq, err, updates, frames)
		}
		if rec != nil {
			rec.applied(seq, digest)
		}
		seq++
		frames++
		updates += len(batch)
		s.wire.streamFrames.Add(1)
		s.wire.streamUpdates.Add(uint64(len(batch)))
	}
	return http.StatusOK, map[string]any{
		"frames":          frames,
		"updates":         updates,
		"skipped_frames":  skippedFrames,
		"skipped_updates": skippedUpdates,
		"draining":        draining,
	}, nil
}

// Drain moves the server into connection-draining mode: open /v1/stream
// requests finish their current frame and respond, open /v1/subscribe
// connections receive a final "drain" event and close, and new frames or
// subscriptions are refused. Idempotent; monestd calls it before
// http.Server.Shutdown so long-lived connections do not hold shutdown
// open until the timeout kills them.
func (s *Server) Drain() {
	s.drainOnce.Do(func() {
		close(s.drainCh)
		// Cancel the broadcaster's drain context too, so a push round's
		// in-flight cluster scatter-gather aborts instead of riding out
		// its full per-node timeout and retry budget.
		s.drainCancel()
	})
}

// draining reports whether Drain was called.
func (s *Server) draining() bool {
	select {
	case <-s.drainCh:
		return true
	default:
		return false
	}
}

var errDraining = errors.New("server is draining (shutting down)")
