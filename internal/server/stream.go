package server

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"

	"repro/internal/store"
)

// POST /v1/stream is the binary ingest path: one long-lived request whose
// chunked body is a stream of length-prefixed, CRC-framed update batches
// in the WAL's record encoding (store.AppendFrame / store.FrameScanner).
// Each decoded frame feeds Engine.IngestBatch directly — no JSON, no
// per-batch request round-trip, no per-frame allocations (the scanner and
// the engine's batch pool both reuse scratch). Backpressure is the
// transport's: the server reads a frame only after ingesting the previous
// one, so a sender can never run ahead of the engine by more than the
// socket and bufio windows.
//
// The stream ends when the client closes the request body (clean EOF on a
// frame boundary) or when the server starts draining; the response then
// reports what was applied:
//
//	{"frames": N, "updates": M, "draining": bool}
//
// A torn frame, checksum mismatch or invalid update aborts the stream
// with a 400 whose message counts the frames already applied — applied
// frames stay applied (the stream is not transactional, exactly like
// sequential /v1/ingest batches).

// wireStats counts streaming-ingest and subscription traffic; all fields
// are atomics shared by handlers, the broadcaster and /v1/stats.
type wireStats struct {
	streamsActive atomic.Int64
	streamFrames  atomic.Uint64
	streamUpdates atomic.Uint64

	subsActive atomic.Int64
	pushed     atomic.Uint64
	coalesced  atomic.Uint64
	dropped    atomic.Uint64
	heartbeats atomic.Uint64
	resumes    atomic.Uint64
}

// WireStats is the JSON view of the wire counters in /v1/stats.
type WireStats struct {
	// ActiveStreams gauges open /v1/stream connections.
	ActiveStreams int64 `json:"active_streams"`
	// StreamFrames and StreamUpdates count decoded-and-applied binary
	// frames and the updates they carried.
	StreamFrames  uint64 `json:"stream_frames"`
	StreamUpdates uint64 `json:"stream_updates"`
	// ActiveSubscribers gauges open /v1/subscribe connections.
	ActiveSubscribers int64 `json:"active_subscribers"`
	// PushedEvents counts estimate events delivered into subscriber
	// buffers (initial pushes included).
	PushedEvents uint64 `json:"pushed_events"`
	// CoalescedEvents counts version-change wakeups absorbed into an
	// already-pending push round by the debounce window.
	CoalescedEvents uint64 `json:"coalesced_events"`
	// DroppedEvents counts undelivered events discarded because a slow
	// consumer's buffer was full (the consumer's next event supersedes
	// them; ingest never blocks).
	DroppedEvents uint64 `json:"dropped_events"`
	// Heartbeats counts SSE keepalive comments written.
	Heartbeats uint64 `json:"heartbeats"`
	// Resumes counts subscriptions that arrived with a valid
	// Last-Event-ID header (SSE reconnects resuming from a known version).
	Resumes uint64 `json:"resumes"`
}

func (w *wireStats) view() WireStats {
	return WireStats{
		ActiveStreams:     w.streamsActive.Load(),
		StreamFrames:      w.streamFrames.Load(),
		StreamUpdates:     w.streamUpdates.Load(),
		ActiveSubscribers: w.subsActive.Load(),
		PushedEvents:      w.pushed.Load(),
		CoalescedEvents:   w.coalesced.Load(),
		DroppedEvents:     w.dropped.Load(),
		Heartbeats:        w.heartbeats.Load(),
		Resumes:           w.resumes.Load(),
	}
}

func (s *Server) handleStream(r *http.Request) (int, any, error) {
	if err := checkParams(r.URL.Query()); err != nil {
		return http.StatusBadRequest, nil, err
	}
	if ct := r.Header.Get("Content-Type"); ct != "" && ct != store.StreamContentType {
		return http.StatusUnsupportedMediaType, nil,
			fmt.Errorf("content type %q (want %s)", ct, store.StreamContentType)
	}
	s.wire.streamsActive.Add(1)
	defer s.wire.streamsActive.Add(-1)

	sc := store.NewFrameScanner(r.Body)
	frames, updates := 0, 0
	draining := false
	for {
		// Check the drain gate between frames (never mid-frame): on
		// shutdown the connection finishes its current batch and answers
		// with what it applied, instead of being cut mid-record.
		select {
		case <-s.drainCh:
			draining = true
		default:
		}
		if draining {
			break
		}
		batch, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return http.StatusBadRequest, nil,
				fmt.Errorf("frame %d: %w (%d updates from %d frames already applied)", frames, err, updates, frames)
		}
		if err := s.ingest.IngestBatch(r.Context(), batch); err != nil {
			return ingestStatus(err), nil,
				fmt.Errorf("frame %d: %w (%d updates from %d frames already applied)", frames, err, updates, frames)
		}
		frames++
		updates += len(batch)
		s.wire.streamFrames.Add(1)
		s.wire.streamUpdates.Add(uint64(len(batch)))
	}
	return http.StatusOK, map[string]any{
		"frames":   frames,
		"updates":  updates,
		"draining": draining,
	}, nil
}

// Drain moves the server into connection-draining mode: open /v1/stream
// requests finish their current frame and respond, open /v1/subscribe
// connections receive a final "drain" event and close, and new frames or
// subscriptions are refused. Idempotent; monestd calls it before
// http.Server.Shutdown so long-lived connections do not hold shutdown
// open until the timeout kills them.
func (s *Server) Drain() {
	s.drainOnce.Do(func() {
		close(s.drainCh)
		// Cancel the broadcaster's drain context too, so a push round's
		// in-flight cluster scatter-gather aborts instead of riding out
		// its full per-node timeout and retry budget.
		s.drainCancel()
	})
}

// draining reports whether Drain was called.
func (s *Server) draining() bool {
	select {
	case <-s.drainCh:
		return true
	default:
		return false
	}
}

var errDraining = errors.New("server is draining (shutting down)")
