package server

import (
	"math"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Ingest backpressure: the write path (/v1/ingest + /v1/stream) can be
// bounded two ways, composable and both off by default —
//
//   - per-client token buckets (Config.IngestRate updates/sec with
//     Config.IngestBurst capacity), keyed by client IP;
//   - a global in-flight budget (Config.IngestInflight) counting ingest
//     requests and open streams.
//
// Exceeding either answers a structured 429 with a Retry-After header
// and a retry_after_seconds field in the error envelope; a mid-stream
// rejection additionally reports applied_frames/applied_updates —
// exactly the torn-frame contract, so clients resume instead of
// guessing. internal/streamclient's Pump honors all of it.

// maxClientBuckets bounds the per-client bucket map; beyond it the
// least-recently-refilled bucket is evicted (a returning client starts
// with a full bucket again — backpressure, not accounting).
const maxClientBuckets = 4096

// rateLimitError carries the 429 contract through the route() error
// path: the retry hint and, for streams, the applied progress.
type rateLimitError struct {
	retryAfter time.Duration
	// appliedFrames/appliedUpdates report stream progress (-1: not a
	// stream — the envelope omits the fields).
	appliedFrames  int
	appliedUpdates int
	msg            string
}

func (e *rateLimitError) Error() string { return e.msg }

// bucket is one client's token bucket (updates are the token unit).
type bucket struct {
	tokens float64
	last   time.Time
}

// ingestGate enforces the backpressure contract. A nil *ingestGate is
// inert (both limits off).
type ingestGate struct {
	rate        float64 // updates/sec per client; 0 = unlimited
	burst       float64
	maxInflight int64 // 0 = unlimited

	inflight atomic.Int64
	mu       sync.Mutex
	buckets  map[string]*bucket

	rateLimited      atomic.Uint64
	inflightRejected atomic.Uint64
}

func newIngestGate(rate, burst float64, inflight int) *ingestGate {
	if rate <= 0 && inflight <= 0 {
		return nil
	}
	if burst <= 0 {
		burst = math.Max(rate, 1)
	}
	return &ingestGate{
		rate:        rate,
		burst:       burst,
		maxInflight: int64(inflight),
		buckets:     make(map[string]*bucket),
	}
}

// acquire claims an in-flight slot; the caller must release() when done.
func (g *ingestGate) acquire() bool {
	if g.maxInflight <= 0 {
		return true
	}
	if g.inflight.Add(1) > g.maxInflight {
		g.inflight.Add(-1)
		g.inflightRejected.Add(1)
		return false
	}
	return true
}

func (g *ingestGate) release() {
	if g.maxInflight > 0 {
		g.inflight.Add(-1)
	}
}

// admit charges n updates against client's bucket. A batch larger than
// the burst is admitted whenever the bucket is full (charging the whole
// bucket) — the gate paces throughput, it must not deadlock a legal
// batch size. On refusal it returns how long until the charge would
// clear.
func (g *ingestGate) admit(client string, n int) (ok bool, retryAfter time.Duration) {
	if g.rate <= 0 {
		return true, 0
	}
	need := math.Min(float64(n), g.burst)
	now := time.Now()
	g.mu.Lock()
	defer g.mu.Unlock()
	b := g.buckets[client]
	if b == nil {
		b = &bucket{tokens: g.burst, last: now}
		if len(g.buckets) >= maxClientBuckets {
			g.evictOldest()
		}
		g.buckets[client] = b
	}
	b.tokens = math.Min(g.burst, b.tokens+now.Sub(b.last).Seconds()*g.rate)
	b.last = now
	if b.tokens >= need {
		b.tokens -= need
		return true, 0
	}
	g.rateLimited.Add(1)
	return false, time.Duration((need - b.tokens) / g.rate * float64(time.Second))
}

// evictOldest drops the bucket refilled longest ago (caller holds mu).
func (g *ingestGate) evictOldest() {
	var oldestKey string
	var oldest time.Time
	for k, b := range g.buckets {
		if oldestKey == "" || b.last.Before(oldest) {
			oldestKey, oldest = k, b.last
		}
	}
	delete(g.buckets, oldestKey)
}

// limited builds the 429 error for a refused charge. Stream handlers
// pass their applied progress; /v1/ingest passes -1, -1.
func (g *ingestGate) limited(retryAfter time.Duration, appliedFrames, appliedUpdates int, msg string) *rateLimitError {
	if retryAfter <= 0 {
		retryAfter = time.Second
	}
	return &rateLimitError{
		retryAfter:     retryAfter,
		appliedFrames:  appliedFrames,
		appliedUpdates: appliedUpdates,
		msg:            msg,
	}
}

// clientKey identifies the requesting client for per-client buckets:
// the IP of the peer (ports churn per connection).
func clientKey(r *http.Request) string {
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// setRetryHeaders mirrors a rateLimitError onto the response: the
// Retry-After header (whole seconds, at least 1) next to the precise
// retry_after_seconds JSON field.
func setRetryHeaders(w http.ResponseWriter, rl *rateLimitError) {
	secs := int(math.Ceil(rl.retryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}
