// Package cluster is monestd's horizontal scale-out layer: a consistent-
// hash ring partitioning item keys across N nodes, and a coordinator that
// routes ingest to the owning node while scatter-gathering the nodes'
// binary sketch states into one local merge engine for serving.
//
// The whole design leans on the same property the engine already uses
// across shards (the paper's footnote-1 coordination): bottom-k sketches
// sharing a seed hash merge losslessly (merge = per-key max-weight
// union), so "N nodes each sketching a key range, merged at a
// coordinator" is snapshot-equivalent to "one node sketching the union
// stream" — bit-identical estimates, not approximately-equal ones. The
// cluster_test.go equivalence test pins exactly that.
package cluster

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/sampling"
)

// DefaultVirtualNodes is the per-node vnode count when a Config leaves it
// zero: enough points that key ownership splits within a few percent of
// evenly for small clusters, cheap enough to rebuild instantly.
const DefaultVirtualNodes = 64

// Ring is a consistent-hash ring over node addresses. Placement is
// deterministic from the engine's seed hash alone: every router built
// with the same salt, node list and vnode count maps every key to the
// same owner, with no coordination protocol. Keys map to the unit
// interval through the SAME hash.U the sketches use for seeds, and each
// node claims the arc below each of its virtual points — so adding a
// node moves only the keys landing on its new arcs (the consistent-
// hashing property ring_test.go pins).
type Ring struct {
	hash  sampling.SeedHash
	nodes []string
	pos   []float64 // virtual point positions, ascending
	owner []int32   // node index owning each point, parallel to pos
}

// NewRing builds the ring. Nodes must be non-empty and distinct (the
// address IS the ring identity; a duplicate would silently double a
// node's share). vnodes <= 0 means DefaultVirtualNodes.
func NewRing(hash sampling.SeedHash, nodes []string, vnodes int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty node address")
		}
		if seen[n] {
			return nil, fmt.Errorf("cluster: duplicate node address %q", n)
		}
		seen[n] = true
	}
	r := &Ring{
		hash:  hash,
		nodes: append([]string(nil), nodes...),
		pos:   make([]float64, 0, len(nodes)*vnodes),
		owner: make([]int32, 0, len(nodes)*vnodes),
	}
	type point struct {
		pos  float64
		node int32
	}
	pts := make([]point, 0, len(nodes)*vnodes)
	for i, n := range nodes {
		for v := 0; v < vnodes; v++ {
			// The vnode key is a string so two nodes' points can never
			// collide by construction ("a#12" != "b#12"); hash.U then
			// places it exactly as it would seed an item key.
			p := r.hash.U(sampling.StringKey(n + "#" + strconv.Itoa(v)))
			pts = append(pts, point{pos: p, node: int32(i)})
		}
	}
	// Sort by (pos, node): the tie-break makes the ring a pure function of
	// its inputs even in the astronomically-unlikely event of equal
	// positions.
	sort.Slice(pts, func(a, b int) bool {
		if pts[a].pos != pts[b].pos {
			return pts[a].pos < pts[b].pos
		}
		return pts[a].node < pts[b].node
	})
	for _, p := range pts {
		r.pos = append(r.pos, p.pos)
		r.owner = append(r.owner, p.node)
	}
	return r, nil
}

// Owner returns the index (into Nodes) of the node owning the key: the
// first virtual point at or clockwise of the key's position, wrapping to
// the smallest point past the top of the unit interval.
func (r *Ring) Owner(key uint64) int {
	p := r.hash.U(key)
	i := sort.SearchFloat64s(r.pos, p)
	if i == len(r.pos) {
		i = 0
	}
	return int(r.owner[i])
}

// OwnerAddr returns the owning node's address.
func (r *Ring) OwnerAddr(key uint64) string { return r.nodes[r.Owner(key)] }

// Nodes returns the ring's node addresses in construction order. The
// slice is shared; callers must not mutate it.
func (r *Ring) Nodes() []string { return r.nodes }
