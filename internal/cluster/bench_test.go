package cluster_test

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/sampling"
	"repro/internal/server"
)

// benchCluster is an in-process cluster without persistence: n nodes
// behind real HTTP, totalKeys spread by ring ownership, one initial
// sync so the coordinator's version vector is warm. Returned mutKey is
// a key owned by node 0 — the benchmark's single-node write target.
type benchCluster struct {
	coord *cluster.Coordinator
	engs  []*engine.Engine
	srvs  []*httptest.Server
	mut   uint64
}

func newBenchCluster(tb testing.TB, nodeCount, totalKeys int) *benchCluster {
	tb.Helper()
	cfg := engine.Config{Instances: 2, K: 16, Shards: 4, Hash: sampling.NewSeedHash(3)}
	c := &benchCluster{}
	urls := make([]string, nodeCount)
	for i := 0; i < nodeCount; i++ {
		eng, err := engine.New(cfg)
		if err != nil {
			tb.Fatal(err)
		}
		srv := httptest.NewServer(server.New(eng))
		c.engs = append(c.engs, eng)
		c.srvs = append(c.srvs, srv)
		urls[i] = srv.URL
	}
	coord, err := cluster.New(cluster.Config{Nodes: urls, Engine: cfg, Timeout: 10 * time.Second})
	if err != nil {
		tb.Fatal(err)
	}
	c.coord = coord

	ring := coord.Ring()
	per := make([][]engine.Update, nodeCount)
	for key := 0; key < totalKeys; key++ {
		u := engine.Update{Instance: key % 2, Key: uint64(key), Weight: 1 + float64(key%97)}
		per[ring.Owner(u.Key)] = append(per[ring.Owner(u.Key)], u)
		if ring.Owner(u.Key) == 0 {
			c.mut = u.Key
		}
	}
	for i, batch := range per {
		if err := c.engs[i].IngestBatch(batch); err != nil {
			tb.Fatal(err)
		}
	}
	if err := coord.Sync(context.Background()); err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() {
		coord.Close()
		for _, s := range c.srvs {
			s.Close()
		}
	})
	return c
}

// mutateAndSync is one coordinator read after one single-key write: the
// write bumps node 0's version, so the sync re-fetches exactly that
// node's reduced state (the others answer 304) and folds it in.
func (c *benchCluster) mutateAndSync(tb testing.TB, round int) {
	if err := c.engs[0].Ingest(0, c.mut, 1e6+float64(round)); err != nil {
		tb.Fatal(err)
	}
	if err := c.coord.Sync(context.Background()); err != nil {
		tb.Fatal(err)
	}
}

// BenchmarkScatterGather pins the cluster scaling claim: a coordinator
// query after a single-node write costs one PER-NODE reduced sketch
// (fetch + decode + fold), not the cluster's total key count. The
// cluster case holds 64k keys on 3 nodes (~21k keys per fetched
// artifact); the single case 16k keys on 1 node — if cost scaled with
// total keys the ratio would be 4x, with per-node state ~1.3x.
func BenchmarkScatterGather(b *testing.B) {
	for _, bc := range []struct {
		name             string
		nodes, totalKeys int
	}{
		{"cluster-64k-3nodes", 3, 64 << 10},
		{"single-16k", 1, 16 << 10},
	} {
		b.Run(bc.name, func(b *testing.B) {
			c := newBenchCluster(b, bc.nodes, bc.totalKeys)
			before := c.coord.Stats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.mutateAndSync(b, i)
			}
			b.StopTimer()
			after := c.coord.Stats()
			b.ReportMetric(float64(after.StateBytes-before.StateBytes)/float64(b.N), "stateB/op")
			if got, want := after.Fetches-before.Fetches, uint64(b.N); got != want {
				b.Fatalf("fetches = %d, want %d (one node per sync)", got, want)
			}
		})
	}
}

// BenchmarkClusterQuery is the steady state: coordinator reads with no
// node writes in between. Every node answers 304 off one atomic load,
// no state moves, and the merge engine serves its published snapshot —
// the version-vector cache at work.
func BenchmarkClusterQuery(b *testing.B) {
	c := newBenchCluster(b, 3, 64<<10)
	if _, err := c.coord.AcquireSnapshot(context.Background()); err != nil {
		b.Fatal(err)
	}
	before := c.coord.Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.coord.AcquireSnapshot(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	after := c.coord.Stats()
	if got := after.Fetches - before.Fetches; got != 0 {
		b.Fatalf("steady-state queries fetched %d states, want 0", got)
	}
	if got := after.StateBytes - before.StateBytes; got != 0 {
		b.Fatalf("steady-state queries moved %d bytes, want 0", got)
	}
}

// TestScatterGatherTransfersPerNodeState is the deterministic half of
// the BenchmarkScatterGather claim, free of timing: after a single-node
// write, the sync's wire traffic is that node's artifact — for 64k keys
// on 3 nodes, well under 2x the single-node-16k artifact (~1.3x), where
// total-key scaling would make it 4x.
func TestScatterGatherTransfersPerNodeState(t *testing.T) {
	perSync := func(nodes, totalKeys int) uint64 {
		c := newBenchCluster(t, nodes, totalKeys)
		const rounds = 4
		before := c.coord.Stats()
		for i := 0; i < rounds; i++ {
			c.mutateAndSync(t, i)
		}
		after := c.coord.Stats()
		if got, want := after.Fetches-before.Fetches, uint64(rounds); got != want {
			t.Fatalf("fetches = %d, want %d (one node per sync)", got, want)
		}
		return (after.StateBytes - before.StateBytes) / rounds
	}
	clusterBytes := perSync(3, 64<<10)
	singleBytes := perSync(1, 16<<10)
	if clusterBytes >= 2*singleBytes {
		t.Fatalf("per-sync transfer %d B for 64k/3-node cluster vs %d B for single-16k: not within 2x",
			clusterBytes, singleBytes)
	}
	t.Logf("per-sync transfer: cluster-64k-3nodes %d B, single-16k %d B (%.2fx)",
		clusterBytes, singleBytes, float64(clusterBytes)/float64(singleBytes))
}
