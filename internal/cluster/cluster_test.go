package cluster_test

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/estreg"
	"repro/internal/funcs"
	"repro/internal/sampling"
	"repro/internal/server"
	"repro/internal/store"
)

// node is one in-process monestd member: an engine with file-backed
// persistence behind the real HTTP API, on an address that SURVIVES
// restarts (the listener is created explicitly so a restarted node can
// rebind the same port — the coordinator's node list never changes).
type node struct {
	t    *testing.T
	dir  string
	addr string
	cfg  engine.Config
	eng  *engine.Engine
	per  *store.Persistence
	srv  *httptest.Server
}

func startNode(t *testing.T, dir, addr string, cfg engine.Config) *node {
	t.Helper()
	eng, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// FsyncNever: the restart scenario is a clean stop/reopen in one
	// process, where page-cache writes survive regardless — crash-level
	// durability is the store package's own test territory.
	st, err := store.Open(dir, store.Options{Fsync: store.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	per, _, err := store.Attach(eng, st)
	if err != nil {
		t.Fatal(err)
	}
	// A freshly-released port can lag a beat on some kernels; retry
	// briefly so restart-on-same-address is not flaky.
	var l net.Listener
	for attempt := 0; ; attempt++ {
		l, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if attempt >= 50 {
			t.Fatalf("listening on %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	srv := httptest.NewUnstartedServer(server.NewWith(eng, server.Config{Persist: per}))
	srv.Listener.Close()
	srv.Listener = l
	srv.Start()
	return &node{t: t, dir: dir, addr: l.Addr().String(), cfg: cfg, eng: eng, per: per, srv: srv}
}

// stop shuts the node down cleanly (final checkpoint through the
// persistence layer) and frees its port.
func (n *node) stop() {
	n.t.Helper()
	n.srv.Close()
	if err := n.per.Close(); err != nil {
		n.t.Fatal(err)
	}
}

// restart brings the node back on the SAME address from its own data
// directory — the cluster acceptance scenario: membership is stable,
// state comes back from disk.
func (n *node) restart() *node {
	return startNode(n.t, n.dir, n.addr, n.cfg)
}

func (n *node) url() string { return "http://" + n.addr }

// sumEstimators builds estimators over RG(1) for bit-identity
// comparisons. names defaults to the cheap pair lstar+ht; ustar's
// numeric quadrature costs seconds per 400-outcome sweep, so the full
// trio runs once per test, not per checkpoint (outcome-for-outcome
// equality is asserted first, and every estimator is a deterministic
// function of the outcome — per-checkpoint re-evaluation adds nothing).
func sumEstimators(t *testing.T, instances int, names ...string) map[string]estreg.Estimator {
	t.Helper()
	if len(names) == 0 {
		names = []string{"lstar", "ht"}
	}
	f, err := funcs.NewRG(1)
	if err != nil {
		t.Fatal(err)
	}
	reg := estreg.Default()
	ests := make(map[string]estreg.Estimator)
	for _, name := range names {
		est, _, err := reg.Build(name, f, instances)
		if err != nil {
			t.Fatal(err)
		}
		ests[name] = est
	}
	return ests
}

// requireSameSnapshot asserts the two views describe byte-for-byte the
// same sample: same keys, same per-item outcomes (seed, knowledge,
// values, thresholds), same storage accounting, and — the acceptance
// bar — identical full SumResult structs (estimate, second moment, max
// item, item count) for every estimator. No tolerances anywhere.
func requireSameSnapshot(t *testing.T, label string, got, want engine.SnapshotView, ests map[string]estreg.Estimator) {
	t.Helper()
	gs, ws := got.Snapshot(), want.Snapshot()
	if len(gs.Keys) != len(ws.Keys) {
		t.Fatalf("%s: %d keys, want %d", label, len(gs.Keys), len(ws.Keys))
	}
	for j := range gs.Keys {
		if gs.Keys[j] != ws.Keys[j] {
			t.Fatalf("%s: key[%d] = %d, want %d", label, j, gs.Keys[j], ws.Keys[j])
		}
		o, w := gs.Sample.Outcomes[j], ws.Sample.Outcomes[j]
		if !o.Same(w) {
			t.Fatalf("%s: item %d: outcome %+v != %+v", label, j, o, w)
		}
		for i := range o.Scheme.Tau {
			if o.Scheme.Tau[i] != w.Scheme.Tau[i] {
				t.Fatalf("%s: item %d instance %d: tau %g != %g", label, j, i, o.Scheme.Tau[i], w.Scheme.Tau[i])
			}
		}
	}
	if gs.Sample.SampledEntries != ws.Sample.SampledEntries {
		t.Fatalf("%s: SampledEntries %d, want %d", label, gs.Sample.SampledEntries, ws.Sample.SampledEntries)
	}
	if gs.Sample.TotalEntries != ws.Sample.TotalEntries {
		t.Fatalf("%s: TotalEntries %d, want %d", label, gs.Sample.TotalEntries, ws.Sample.TotalEntries)
	}
	for name, est := range ests {
		gr, err := estreg.Sum(est, gs.Sample.Outcomes, nil)
		if err != nil {
			t.Fatalf("%s: %s over merged: %v", label, name, err)
		}
		wr, err := estreg.Sum(est, ws.Sample.Outcomes, nil)
		if err != nil {
			t.Fatalf("%s: %s over union: %v", label, name, err)
		}
		if gr != wr {
			t.Fatalf("%s: %s SumResult %+v != union %+v", label, name, gr, wr)
		}
	}
}

// TestClusterMatchesUnionEngine is the cluster acceptance test: three
// nodes (each persisting to its own data dir) behind a coordinator,
// ingest routed through the coordinator, versus ONE single-node engine
// fed the identical union stream. After every batch the coordinator's
// merged snapshot must be bit-identical to the union engine's — full
// SumResult structs for lstar/ustar/ht, outcome by outcome — including
// after every node is restarted from its own data directory. The union
// engine deliberately uses a different shard count: the equivalence is
// layout-independent.
func TestClusterMatchesUnionEngine(t *testing.T) {
	hash := sampling.NewSeedHash(77)
	nodeCfg := engine.Config{Instances: 2, K: 16, Shards: 4, Hash: hash}

	base := t.TempDir()
	nodes := make([]*node, 3)
	urls := make([]string, 3)
	for i := range nodes {
		nodes[i] = startNode(t, filepath.Join(base, "node"+string(rune('0'+i))), "127.0.0.1:0", nodeCfg)
		urls[i] = nodes[i].url()
	}
	defer func() {
		for _, n := range nodes {
			n.srv.Close()
		}
	}()

	coord, err := cluster.New(cluster.Config{
		Nodes:   urls,
		Engine:  engine.Config{Instances: 2, K: 16, Shards: 4, Hash: hash},
		Timeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	union, err := engine.New(engine.Config{Instances: 2, K: 16, Shards: 8, Hash: hash})
	if err != nil {
		t.Fatal(err)
	}
	ests := sumEstimators(t, 2)

	// A weight stream with repeats (max-folds), both instances, enough
	// keys that all three nodes own some.
	rng := rand.New(rand.NewSource(9))
	nextBatch := func(size int) []engine.Update {
		batch := make([]engine.Update, size)
		for i := range batch {
			batch[i] = engine.Update{
				Instance: rng.Intn(2),
				Key:      uint64(rng.Intn(400)),
				Weight:   1 + rng.Float64()*99,
			}
		}
		return batch
	}
	feed := func(batch []engine.Update) {
		t.Helper()
		if err := coord.IngestBatch(context.Background(), batch); err != nil {
			t.Fatalf("routed ingest: %v", err)
		}
		if err := union.IngestBatch(batch); err != nil {
			t.Fatalf("union ingest: %v", err)
		}
	}
	check := func(label string) {
		t.Helper()
		view, err := coord.AcquireSnapshot(context.Background())
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		requireSameSnapshot(t, label, view, union.FreshView(), ests)
	}

	total := 0
	for round := 0; round < 6; round++ {
		batch := nextBatch(300)
		feed(batch)
		total += len(batch)
		check("round " + string(rune('0'+round)))
	}

	// Routing actually spread the keys: every node holds a share.
	for i, n := range nodes {
		if got := len(n.eng.DumpState().Keys); got == 0 {
			t.Errorf("node %d holds no keys after %d routed updates", i, total)
		}
	}
	if got := coord.Stats().RoutedUpdates; got != uint64(total) {
		t.Errorf("RoutedUpdates = %d, want %d", got, total)
	}

	// Version-vector caching: re-querying with no node writes re-fetches
	// NOTHING — no 200s, no state bytes, only 304s.
	if _, err := coord.AcquireSnapshot(context.Background()); err != nil {
		t.Fatal(err)
	}
	before := coord.Stats()
	for i := 0; i < 2; i++ {
		if _, err := coord.AcquireSnapshot(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	after := coord.Stats()
	if after.Fetches != before.Fetches {
		t.Errorf("idle re-queries fetched state: %d -> %d fetches", before.Fetches, after.Fetches)
	}
	if after.StateBytes != before.StateBytes {
		t.Errorf("idle re-queries moved %d state bytes", after.StateBytes-before.StateBytes)
	}
	if want := before.NotModified + uint64(2*len(nodes)); after.NotModified != want {
		t.Errorf("NotModified = %d, want %d", after.NotModified, want)
	}
	if want := before.Syncs + 2; after.Syncs != want {
		t.Errorf("Syncs = %d, want %d", after.Syncs, want)
	}

	// Restart every node from its own data directory, one at a time.
	// While a node is down the coordinator refuses to serve (degraded
	// mode, not silent under-counting); once it is back, ingest keeps
	// routing and the merged snapshot is again bit-identical.
	for i := range nodes {
		nodes[i].stop()
		if _, err := coord.AcquireSnapshot(context.Background()); err == nil {
			t.Fatalf("query succeeded with node %d down", i)
		} else {
			var ne *cluster.NodeError
			if !errors.As(err, &ne) || !ne.Unavailable() {
				t.Fatalf("node %d down: error %v is not an unavailable NodeError", i, err)
			}
		}
		nodes[i] = nodes[i].restart()
		feed(nextBatch(200))
		check("after restart of node " + string(rune('0'+i)))
	}

	// Final full-trio sweep: the same bit-identity, now including
	// ustar's quadrature path, over the post-restart state.
	view, err := coord.AcquireSnapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	requireSameSnapshot(t, "final full trio", view, union.FreshView(),
		sumEstimators(t, 2, "lstar", "ustar", "ht"))
}

// TestClusterDegradedWrites pins the write-path half of degraded mode:
// with one node down, updates owned by the dead node fail with an
// unavailable NodeError while updates owned by live nodes still land.
func TestClusterDegradedWrites(t *testing.T) {
	hash := sampling.NewSeedHash(13)
	cfg := engine.Config{Instances: 1, K: 8, Shards: 2, Hash: hash}
	base := t.TempDir()
	a := startNode(t, filepath.Join(base, "a"), "127.0.0.1:0", cfg)
	defer a.srv.Close()
	b := startNode(t, filepath.Join(base, "b"), "127.0.0.1:0", cfg)

	coord, err := cluster.New(cluster.Config{
		Nodes:   []string{a.url(), b.url()},
		Engine:  cfg,
		Timeout: 2 * time.Second,
		Retries: -1, // fail fast; the retry path is exercised implicitly elsewhere
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	// Find keys owned by each node.
	ring := coord.Ring()
	ownedBy := func(idx int) uint64 {
		for key := uint64(0); ; key++ {
			if ring.Owner(key) == idx {
				return key
			}
		}
	}
	keyA, keyB := ownedBy(0), ownedBy(1)

	b.stop()
	if err := coord.IngestBatch(context.Background(), []engine.Update{{Key: keyB, Weight: 1}}); err == nil {
		t.Fatal("ingest for dead node's key succeeded")
	} else {
		var ne *cluster.NodeError
		if !errors.As(err, &ne) || !ne.Unavailable() {
			t.Fatalf("dead-owner ingest error %v is not an unavailable NodeError", err)
		}
	}
	if err := coord.IngestBatch(context.Background(), []engine.Update{{Key: keyA, Weight: 2}}); err != nil {
		t.Fatalf("live-owner ingest failed: %v", err)
	}
	if got := len(a.eng.DumpState().Keys); got != 1 {
		t.Fatalf("live node holds %d keys, want 1", got)
	}
}

// TestSyncPartialFailureKeepsSuccessfulFetch pins the version-vector
// commit discipline behind strict reads: a vector entry advances only
// when the fetched state is actually MERGED. In a degraded round (one
// node down) the live node's fetch still succeeds; if its version were
// cached at decode time while the round bailed before merging it, the
// node would answer 304 on every later sync and its updates would be
// silently missing from the merged view — exactly the under-counting
// strict reads exist to prevent. Both kill orders run because Sync folds
// results in node order, so only the dead-node-first order can strand a
// later node's fetch.
func TestSyncPartialFailureKeepsSuccessfulFetch(t *testing.T) {
	hash := sampling.NewSeedHash(21)
	cfg := engine.Config{Instances: 1, K: 64, Shards: 2, Hash: hash}
	base := t.TempDir()
	nodes := []*node{
		startNode(t, filepath.Join(base, "a"), "127.0.0.1:0", cfg),
		startNode(t, filepath.Join(base, "b"), "127.0.0.1:0", cfg),
	}
	defer func() {
		for _, n := range nodes {
			n.srv.Close()
		}
	}()

	coord, err := cluster.New(cluster.Config{
		Nodes:   []string{nodes[0].url(), nodes[1].url()},
		Engine:  cfg,
		Timeout: 2 * time.Second,
		Retries: -1, // fail fast: the dead node should not stall the round
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	if _, err := coord.AcquireSnapshot(context.Background()); err != nil {
		t.Fatal(err)
	}

	for i := range nodes {
		live := 1 - i
		nodes[i].stop()
		// The live node advances while its peer is down (written directly:
		// routing is not under test, merge completeness is).
		key := uint64(1000 + i)
		if err := nodes[live].eng.Ingest(0, key, 42); err != nil {
			t.Fatal(err)
		}
		// Strict reads: the degraded sync fails — but the live node's
		// fetched state must either merge now or stay fetchable later.
		if _, err := coord.AcquireSnapshot(context.Background()); err == nil {
			t.Fatalf("sync succeeded with node %d down", i)
		}
		nodes[i] = nodes[i].restart()
		view, err := coord.AcquireSnapshot(context.Background())
		if err != nil {
			t.Fatalf("sync after restart of node %d: %v", i, err)
		}
		found := false
		for _, k := range view.Keys {
			if k == key {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("key %d (written to live node %d during node %d's outage) missing from merged view: "+
				"the degraded round cached the live node's version without merging its state", key, live, i)
		}
	}
}

// TestClusterSeedMismatch: a node sketching under a different salt must
// be rejected at merge time (the artifact's seed fingerprint), surfaced
// as a non-unavailable NodeError — operator error, not an outage.
func TestClusterSeedMismatch(t *testing.T) {
	nodeCfg := engine.Config{Instances: 1, K: 8, Shards: 2, Hash: sampling.NewSeedHash(1)}
	n := startNode(t, t.TempDir(), "127.0.0.1:0", nodeCfg)
	defer n.srv.Close()
	if err := n.eng.Ingest(0, 7, 1.5); err != nil {
		t.Fatal(err)
	}

	coord, err := cluster.New(cluster.Config{
		Nodes:  []string{n.url()},
		Engine: engine.Config{Instances: 1, K: 8, Shards: 2, Hash: sampling.NewSeedHash(2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	_, err = coord.AcquireSnapshot(context.Background())
	if err == nil {
		t.Fatal("seed-mismatched node merged cleanly")
	}
	var ne *cluster.NodeError
	if !errors.As(err, &ne) {
		t.Fatalf("error %v is not a NodeError", err)
	}
	if ne.Unavailable() {
		t.Fatalf("seed mismatch reported as unavailable: %v", err)
	}
}
