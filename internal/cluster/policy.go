package cluster

import (
	"fmt"
	"strconv"
	"strings"
)

// ReadMode selects how many nodes a scatter-gather round must reach
// before the coordinator serves the merged view.
type ReadMode int

const (
	// ReadStrict (default): every node, every read. Any unreachable
	// node fails the read 503 — estimates are always the full union.
	ReadStrict ReadMode = iota
	// ReadPartial: serve whenever at least one node is reachable,
	// labeling the response with an explicit degraded block.
	ReadPartial
	// ReadQuorum: serve when at least Quorum nodes are reachable.
	ReadQuorum
)

// ReadPolicy is a parsed -cluster-read value.
type ReadPolicy struct {
	Mode   ReadMode
	Quorum int // meaningful for ReadQuorum only
}

// ParseReadPolicy parses "strict", "partial" or "quorum=<n>".
func ParseReadPolicy(s string) (ReadPolicy, error) {
	switch {
	case s == "" || s == "strict":
		return ReadPolicy{Mode: ReadStrict}, nil
	case s == "partial":
		return ReadPolicy{Mode: ReadPartial}, nil
	case strings.HasPrefix(s, "quorum="):
		n, err := strconv.Atoi(strings.TrimPrefix(s, "quorum="))
		if err != nil || n < 1 {
			return ReadPolicy{}, fmt.Errorf("cluster read policy: quorum must be a positive integer, got %q", s)
		}
		return ReadPolicy{Mode: ReadQuorum, Quorum: n}, nil
	default:
		return ReadPolicy{}, fmt.Errorf("cluster read policy: %q (want strict, partial or quorum=<n>)", s)
	}
}

func (p ReadPolicy) String() string {
	switch p.Mode {
	case ReadPartial:
		return "partial"
	case ReadQuorum:
		return fmt.Sprintf("quorum=%d", p.Quorum)
	default:
		return "strict"
	}
}

// floor is the minimum reachable-node count for a round to serve.
func (p ReadPolicy) floor(total int) int {
	switch p.Mode {
	case ReadPartial:
		return 1
	case ReadQuorum:
		return p.Quorum
	default:
		return total
	}
}

// Degraded labels a partial read: which policy allowed it, how many
// nodes answered, and — per missing node — how stale its last-merged
// contribution (still present in the served view; folds are monotone)
// is. A response carrying this block is an explicit lower bound on the
// full-union estimate, per the monotone-estimation license: estimates
// from a subset of the coordinated samples stay well-defined, they just
// cover less. Absent block = exact full union.
type Degraded struct {
	Policy    string        `json:"policy"`
	Reachable int           `json:"reachable"`
	Total     int           `json:"total"`
	Missing   []MissingNode `json:"missing"`
}

// MissingNode names one node a degraded round could not reach.
type MissingNode struct {
	Node  string `json:"node"`
	Error string `json:"error"`
	// LastMergedVersion is the node's engine version at its last merged
	// fetch — the staleness of its surviving contribution to the view.
	LastMergedVersion uint64 `json:"last_merged_version"`
	// StaleSeconds is how long ago that merge happened (-1: this node's
	// state has never been merged, so the view holds nothing from it).
	StaleSeconds float64 `json:"stale_seconds"`
	NeverMerged  bool    `json:"never_merged,omitempty"`
}
