package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/store"
)

// This file is the coordinator's client side of the node wire: binary
// sketch fetches (GET /v1/sketch with If-None-Match) and synchronous
// routed ingest (one-shot POST /v1/stream bodies). Both move the same
// binary formats the node persists and exports — wire == disk == export.

// maxSketchBody caps a fetched node artifact (matches the server's
// /v1/import bound: a 1M-key 2-instance artifact is ~40 MiB).
const maxSketchBody = 64 << 20

// ingestFrameUpdates chunks one routed batch into stream frames. Well
// under store.MaxStreamFrameBytes at ~17 B/update encoded.
const ingestFrameUpdates = 4096

// NodeError is a failure to reach or use one cluster node. It carries
// the HTTP status when the node answered (0 for transport failures), and
// reports Unavailable() for the cases where the node is effectively gone
// — the signal internal/server turns into a 503 degraded-mode response.
type NodeError struct {
	Addr   string
	Status int // 0 = no HTTP response (dial/timeout/transport)
	Err    error
}

func (e *NodeError) Error() string {
	if e.Status != 0 {
		return fmt.Sprintf("cluster node %s: status %d: %v", e.Addr, e.Status, e.Err)
	}
	return fmt.Sprintf("cluster node %s: %v", e.Addr, e.Err)
}

func (e *NodeError) Unwrap() error { return e.Err }

// Unavailable reports whether the failure means the node is unreachable
// or broken (transport error or 5xx), as opposed to rejecting the
// request itself (4xx — a config mismatch the operator must fix).
func (e *NodeError) Unavailable() bool { return e.Status == 0 || e.Status >= 500 }

// nodeClient speaks the sketch-exchange wire to one node.
type nodeClient struct {
	addr    string // base URL, e.g. "http://127.0.0.1:9001"
	hc      *http.Client
	timeout time.Duration
	retries int
	// br short-circuits requests while the node looks dead (nil =
	// breaker disabled); backoffBase/backoffMax shape the full-jitter
	// retry pauses drawn from jitter. Fetches and routed sends share all
	// of it — availability is a property of the node, not of the verb.
	br          *breaker
	backoffBase time.Duration
	backoffMax  time.Duration
	jitter      *jitterSource
	// lastMergeAt is when commit last ran (unix nanos; 0 = never) — the
	// staleness label degraded blocks carry for this node.
	lastMergeAt atomic.Int64
	// version is the node's engine version at the last fetch whose state
	// was MERGED (the /v1/sketch ETag) — the coordinator's version-vector
	// entry for this node. have flags that version holds a real merge.
	// Only Coordinator.Sync writes these, via commit, and only after
	// MergeState succeeded: a fetch whose state never reached the merge
	// engine must not advance the vector, or the node's next conditional
	// fetch answers 304 and the unmerged updates silently vanish from the
	// merged view.
	version atomic.Uint64
	have    atomic.Bool
}

// commit records that the node's state at version v is folded into the
// merge engine — the node's vector entry for future conditional fetches.
func (n *nodeClient) commit(v uint64) {
	n.version.Store(v)
	n.have.Store(true)
	n.lastMergeAt.Store(time.Now().UnixNano())
}

// missingEntry labels this node for a degraded block: the failure that
// excluded it this round, and how stale its surviving (already-merged)
// contribution to the view is.
func (n *nodeClient) missingEntry(err error, now time.Time) MissingNode {
	m := MissingNode{Node: n.addr, Error: err.Error(), StaleSeconds: -1}
	if at := n.lastMergeAt.Load(); at > 0 && n.have.Load() {
		m.LastMergedVersion = n.version.Load()
		m.StaleSeconds = now.Sub(time.Unix(0, at)).Seconds()
	} else {
		m.NeverMerged = true
	}
	return m
}

// retrying runs op up to 1+retries times, retrying only failures that
// might be transient (transport errors and 5xx) with capped
// exponential backoff and full jitter, all behind the node's circuit
// breaker: while the breaker is open, the call short-circuits with
// ErrBreakerOpen without touching the wire, so a dead node costs the
// cluster ~nothing per round instead of timeout×(1+retries). Breaker
// outcomes are recorded on Unavailable-class results only — a 4xx
// proves the node reachable and counts as contact.
func (n *nodeClient) retrying(ctx context.Context, op func(context.Context) error) error {
	var err error
	for attempt := 0; ; attempt++ {
		if n.br != nil && !n.br.allow(time.Now()) {
			return &NodeError{Addr: n.addr, Err: ErrBreakerOpen}
		}
		actx, cancel := context.WithTimeout(ctx, n.timeout)
		err = op(actx)
		cancel()
		if err == nil {
			if n.br != nil {
				n.br.success()
			}
			return nil
		}
		ne, ok := err.(*NodeError)
		unavailable := ok && ne.Unavailable()
		if n.br != nil {
			if unavailable {
				n.br.failure(time.Now())
			} else {
				n.br.success()
			}
		}
		if !unavailable || attempt >= n.retries {
			return err
		}
		select {
		case <-time.After(backoffDelay(n.jitter, n.backoffBase, n.backoffMax, attempt)):
		case <-ctx.Done():
			return err
		}
	}
}

// fetchSketch GETs the node's binary state. When the coordinator already
// holds the node's current version, the conditional request answers 304
// and a nil state comes back without a byte of state on the wire; a 200
// decodes and returns the artifact WITHOUT touching the version vector —
// the caller commits the entry (commit) only after the state is actually
// merged, so a sync that fails on another node cannot strand this node's
// updates behind a cached version. size reports the state bytes
// transferred.
func (n *nodeClient) fetchSketch(ctx context.Context) (st *engine.State, size int, err error) {
	err = n.retrying(ctx, func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.addr+"/v1/sketch", nil)
		if err != nil {
			return &NodeError{Addr: n.addr, Err: err}
		}
		if n.have.Load() {
			req.Header.Set("If-None-Match", `"`+strconv.FormatUint(n.version.Load(), 10)+`"`)
		}
		resp, err := n.hc.Do(req)
		if err != nil {
			return &NodeError{Addr: n.addr, Err: err}
		}
		defer resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusNotModified:
			st = nil
			return nil
		case http.StatusOK:
			data, err := io.ReadAll(io.LimitReader(resp.Body, maxSketchBody+1))
			if err != nil {
				return &NodeError{Addr: n.addr, Err: fmt.Errorf("reading sketch: %w", err)}
			}
			if len(data) > maxSketchBody {
				return &NodeError{Addr: n.addr, Status: resp.StatusCode,
					Err: fmt.Errorf("sketch exceeds %d bytes", maxSketchBody)}
			}
			decoded, err := store.DecodeState(data)
			if err != nil {
				return &NodeError{Addr: n.addr, Status: resp.StatusCode, Err: err}
			}
			st, size = decoded, len(data)
			// The artifact's own cut version IS the ETag (sketch.go labels
			// the bytes, not the moment); the caller commits it alongside
			// the merge, keeping vector entry and merged contents atomic.
			return nil
		default:
			return nodeHTTPError(n.addr, resp)
		}
	})
	return st, size, err
}

// sendBatch streams one routed update batch to the node as a one-shot
// binary /v1/stream request, SYNCHRONOUSLY: the 200 arrives only after
// the node applied every frame, so a coordinator 200 on /v1/ingest means
// the owner nodes have the updates — read-your-writes through the
// coordinator holds. Correctness-safe to retry: sketch folds are
// idempotent under max-weight union, so estimates never double-count.
// Every attempt carries the same per-batch Idempotency-Key, so a retry
// after a transport error that raced the node's apply (e.g. the
// response was lost) replays frames the node recognizes and skips —
// node-side Ingests and wire stream counters stay exact, not just the
// estimates.
func (n *nodeClient) sendBatch(ctx context.Context, key string, batch []engine.Update) error {
	return n.retrying(ctx, func(ctx context.Context) error {
		buf := store.AppendStreamHeader(nil)
		for lo := 0; lo < len(batch); lo += ingestFrameUpdates {
			buf = store.AppendFrame(buf, batch[lo:min(lo+ingestFrameUpdates, len(batch))])
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, n.addr+"/v1/stream", bytes.NewReader(buf))
		if err != nil {
			return &NodeError{Addr: n.addr, Err: err}
		}
		req.Header.Set("Content-Type", store.StreamContentType)
		if key != "" {
			req.Header.Set("Idempotency-Key", key)
		}
		resp, err := n.hc.Do(req)
		if err != nil {
			return &NodeError{Addr: n.addr, Err: err}
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nodeHTTPError(n.addr, resp)
		}
		_, _ = io.Copy(io.Discard, resp.Body) // keep the connection reusable
		return nil
	})
}

// nodeHTTPError wraps a non-success node response, carrying (a prefix
// of) the body — the node's structured error envelope — as the message.
func nodeHTTPError(addr string, resp *http.Response) *NodeError {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
	msg := strings.TrimSpace(string(body))
	if msg == "" {
		msg = resp.Status
	}
	return &NodeError{Addr: addr, Status: resp.StatusCode, Err: fmt.Errorf("%s", msg)}
}
