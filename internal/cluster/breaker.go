package cluster

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrBreakerOpen is the error a node request short-circuits with while
// the node's circuit breaker is open: the node was not contacted at
// all. It surfaces as a NodeError with Status 0, so it is
// Unavailable-class — read policies and degraded writes treat a
// breaker-skipped node exactly like an unreachable one.
var ErrBreakerOpen = errors.New("circuit breaker open (node not contacted)")

// breakerState is the classic three-state machine.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is a per-node circuit breaker over Unavailable-class failures
// only (transport errors and 5xx — a 4xx proves the node is reachable
// and counts as contact success). threshold consecutive failures open
// it; while open, requests short-circuit without touching the wire;
// after cooldown a single half-open probe is let through — success
// closes the breaker, failure re-opens it for another cooldown. This is
// what makes a dead node cost ~0 per sync instead of timeout×retries.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu       sync.Mutex
	state    breakerState
	failures int
	openedAt time.Time
	probing  bool

	opens         atomic.Uint64
	shortCircuits atomic.Uint64
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether a request may proceed now. A false return is a
// short-circuit: the caller must fail with ErrBreakerOpen and must NOT
// report an outcome back. A true return from the open state is the
// half-open probe — exactly one in flight at a time.
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Sub(b.openedAt) < b.cooldown {
			b.shortCircuits.Add(1)
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			b.shortCircuits.Add(1)
			return false
		}
		b.probing = true
		return true
	}
}

// success records a contact that reached the node (2xx or even 4xx).
func (b *breaker) success() {
	b.mu.Lock()
	b.state = breakerClosed
	b.failures = 0
	b.probing = false
	b.mu.Unlock()
}

// failure records an Unavailable-class outcome.
func (b *breaker) failure(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.state = breakerOpen
		b.openedAt = now
		b.probing = false
		b.opens.Add(1)
	case breakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.state = breakerOpen
			b.openedAt = now
			b.opens.Add(1)
		}
	}
}

// current returns the state for stats (open stays "open" until a probe
// actually goes out, even past the cooldown).
func (b *breaker) current() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// jitterSource is a lock-free splitmix64 stream for backoff jitter —
// deterministic per seed, safe for concurrent callers (each Add claims
// a distinct point in the sequence).
type jitterSource struct{ state atomic.Uint64 }

func (j *jitterSource) next() uint64 {
	z := j.state.Add(0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// backoff returns the full-jitter delay for a retry: uniform in
// [0, min(max, base<<attempt)). Full jitter decorrelates a fleet of
// retriers hammering a recovering node (the AWS architecture-blog
// result: same utilization, far fewer collision rounds).
func backoffDelay(j *jitterSource, base, max time.Duration, attempt int) time.Duration {
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	if d <= 0 {
		return 0
	}
	return time.Duration(j.next() % uint64(d))
}
