package cluster_test

// Failure-domain tests: degraded read policies, circuit breakers over
// injected network faults, and the routed-retry idempotency contract.
// The injected faults come from internal/fault — a TCP proxy for
// partition/blackhole shapes and an http.RoundTripper for the
// response-lost-in-flight ambiguity.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/sampling"
	"repro/internal/server"
)

func TestParseReadPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want cluster.ReadPolicy
		ok   bool
	}{
		{"", cluster.ReadPolicy{Mode: cluster.ReadStrict}, true},
		{"strict", cluster.ReadPolicy{Mode: cluster.ReadStrict}, true},
		{"partial", cluster.ReadPolicy{Mode: cluster.ReadPartial}, true},
		{"quorum=1", cluster.ReadPolicy{Mode: cluster.ReadQuorum, Quorum: 1}, true},
		{"quorum=3", cluster.ReadPolicy{Mode: cluster.ReadQuorum, Quorum: 3}, true},
		{"quorum=0", cluster.ReadPolicy{}, false},
		{"quorum=-2", cluster.ReadPolicy{}, false},
		{"quorum=x", cluster.ReadPolicy{}, false},
		{"QUORUM=2", cluster.ReadPolicy{}, false},
		{"bogus", cluster.ReadPolicy{}, false},
	} {
		got, err := cluster.ParseReadPolicy(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("ParseReadPolicy(%q) error = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("ParseReadPolicy(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
		if tc.ok {
			back, err := cluster.ParseReadPolicy(got.String())
			if err != nil || back != got {
				t.Errorf("ParseReadPolicy(%q).String() = %q does not round-trip", tc.in, got.String())
			}
		}
	}
}

func TestNewRejectsOversizedQuorum(t *testing.T) {
	cfg := engine.Config{Instances: 2, K: 8, Shards: 2, Hash: sampling.NewSeedHash(5)}
	_, err := cluster.New(cluster.Config{
		Nodes:      []string{"http://a:1", "http://b:2"},
		Engine:     cfg,
		ReadPolicy: cluster.ReadPolicy{Mode: cluster.ReadQuorum, Quorum: 3},
	})
	if err == nil {
		t.Fatal("quorum=3 over 2 nodes accepted")
	}
}

// TestClusterDegradedReads is the degraded-mode acceptance scenario: a
// three-node cluster under quorum=2 loses one node and keeps serving —
// every response labeled with a Degraded block naming the missing node —
// and the served view is bit-identical to the union of the live nodes'
// state plus the dead node's last-merged contribution (folds are
// monotone, so nothing already merged is lost). Losing a second node
// breaches the floor and fails the read. Healing clears the label and
// restores strict full-union equivalence.
func TestClusterDegradedReads(t *testing.T) {
	hash := sampling.NewSeedHash(41)
	nodeCfg := engine.Config{Instances: 2, K: 16, Shards: 4, Hash: hash}

	base := t.TempDir()
	nodes := make([]*node, 3)
	urls := make([]string, 3)
	for i := range nodes {
		nodes[i] = startNode(t, filepath.Join(base, fmt.Sprintf("node%d", i)), "127.0.0.1:0", nodeCfg)
		urls[i] = nodes[i].url()
	}
	defer func() {
		for _, n := range nodes {
			n.srv.Close()
		}
	}()

	coord, err := cluster.New(cluster.Config{
		Nodes:  urls,
		Engine: engine.Config{Instances: 2, K: 16, Shards: 4, Hash: hash},
		// Fail fast and deterministically: no retries, no breakers — the
		// breaker lifecycle has its own test below.
		Timeout:          2 * time.Second,
		Retries:          -1,
		BreakerThreshold: -1,
		ReadPolicy:       cluster.ReadPolicy{Mode: cluster.ReadQuorum, Quorum: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	// The union oracle sees every update any node ever accepted. A
	// different shard count pins layout independence, same as the main
	// acceptance test.
	union, err := engine.New(engine.Config{Instances: 2, K: 16, Shards: 8, Hash: hash})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	feed := func(n *node, count int) {
		t.Helper()
		batch := make([]engine.Update, count)
		for i := range batch {
			batch[i] = engine.Update{
				Instance: rng.Intn(2),
				Key:      uint64(rng.Intn(300)),
				Weight:   1 + rng.Float64()*99,
			}
		}
		if err := n.eng.IngestBatch(batch); err != nil {
			t.Fatal(err)
		}
		if err := union.IngestBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	ests := sumEstimators(t, 2)

	for _, n := range nodes {
		feed(n, 200)
	}
	view, deg, err := coord.AcquireSnapshotDegraded(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if deg != nil {
		t.Fatalf("healthy cluster reported degraded: %+v", deg)
	}
	requireSameSnapshot(t, "healthy", view, union.FreshView(), ests)

	// Kill node 2 AFTER its state was merged; keep writing to the
	// survivors. The quorum=2 read must keep serving, labeled.
	nodes[2].stop()
	feed(nodes[0], 150)
	feed(nodes[1], 150)
	view, deg, err = coord.AcquireSnapshotDegraded(ctx)
	if err != nil {
		t.Fatalf("quorum=2 read with 2/3 nodes up failed: %v", err)
	}
	if deg == nil {
		t.Fatal("read with a node down carried no degraded block")
	}
	if deg.Policy != "quorum=2" || deg.Reachable != 2 || deg.Total != 3 {
		t.Fatalf("degraded block = %+v, want policy quorum=2 reachable 2/3", deg)
	}
	if len(deg.Missing) != 1 || deg.Missing[0].Node != nodes[2].url() {
		t.Fatalf("degraded block names %+v, want exactly %s", deg.Missing, nodes[2].url())
	}
	m := deg.Missing[0]
	if m.Error == "" {
		t.Fatal("missing node carries no error")
	}
	if m.NeverMerged || m.LastMergedVersion == 0 || m.StaleSeconds < 0 {
		t.Fatalf("missing node staleness = %+v, want a merged version with nonnegative staleness", m)
	}
	// The monotone license: the view is live survivors + the dead node's
	// last-merged state — exactly the union oracle, bit for bit.
	requireSameSnapshot(t, "degraded", view, union.FreshView(), ests)
	if st := coord.Stats(); st.DegradedSyncs == 0 {
		t.Fatalf("stats counted no degraded syncs: %+v", st)
	}
	if coord.Degraded() == nil {
		t.Fatal("Degraded() cleared while a node is still down")
	}

	// Second node down: 1 < quorum floor 2 — the read must fail, with an
	// Unavailable-class NodeError, not serve a silent partial.
	nodes[1].stop()
	if _, _, err := coord.AcquireSnapshotDegraded(ctx); err == nil {
		t.Fatal("read served below the quorum floor")
	} else {
		var ne *cluster.NodeError
		if !errors.As(err, &ne) || !ne.Unavailable() {
			t.Fatalf("floor breach error = %v, want an Unavailable NodeError", err)
		}
	}

	// Heal both nodes from their own data dirs: the label clears and the
	// full-union strict equivalence returns, including post-heal writes.
	nodes[1] = nodes[1].restart()
	nodes[2] = nodes[2].restart()
	feed(nodes[2], 100)
	view, deg, err = coord.AcquireSnapshotDegraded(ctx)
	if err != nil {
		t.Fatalf("read after heal: %v", err)
	}
	if deg != nil {
		t.Fatalf("healed cluster still degraded: %+v", deg)
	}
	requireSameSnapshot(t, "healed", view, union.FreshView(), ests)
}

// faultCluster is an in-process cluster without persistence for
// breaker/idempotency tests: engines behind real HTTP, optionally with
// a fault proxy in front of one node.
type faultCluster struct {
	engs []*engine.Engine
	srvs []*httptest.Server
	urls []string
}

func newFaultCluster(tb testing.TB, nodeCount int, cfg engine.Config) *faultCluster {
	tb.Helper()
	c := &faultCluster{}
	for i := 0; i < nodeCount; i++ {
		eng, err := engine.New(cfg)
		if err != nil {
			tb.Fatal(err)
		}
		srv := httptest.NewServer(server.New(eng))
		c.engs = append(c.engs, eng)
		c.srvs = append(c.srvs, srv)
		c.urls = append(c.urls, srv.URL)
	}
	tb.Cleanup(func() {
		for _, s := range c.srvs {
			s.Close()
		}
	})
	return c
}

func nodeStatsFor(tb testing.TB, coord *cluster.Coordinator, url string) cluster.NodeStats {
	tb.Helper()
	for _, ns := range coord.Stats().Nodes {
		if ns.Node == url {
			return ns
		}
	}
	tb.Fatalf("no node stats for %s", url)
	return cluster.NodeStats{}
}

// TestBreakerLifecycle drives the per-node circuit breaker through its
// full closed → open → half-open → closed cycle with a blackhole proxy
// (the failure shape that costs a full timeout per contact): three
// timeout-class failures open the breaker, open syncs short-circuit the
// dead node in well under the timeout, and after the proxy heals the
// cooldown probe closes the breaker and clears the degraded label.
func TestBreakerLifecycle(t *testing.T) {
	cfg := engine.Config{Instances: 2, K: 16, Shards: 4, Hash: sampling.NewSeedHash(61)}
	fc := newFaultCluster(t, 2, cfg)

	proxy, err := fault.NewProxy(fc.srvs[1].Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	proxied := proxy.URL()

	const timeout = 500 * time.Millisecond
	coord, err := cluster.New(cluster.Config{
		Nodes:            []string{fc.urls[0], proxied},
		Engine:           cfg,
		Timeout:          timeout,
		Retries:          -1,
		BreakerThreshold: 3,
		BreakerCooldown:  100 * time.Millisecond,
		ReadPolicy:       cluster.ReadPolicy{Mode: cluster.ReadPartial},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	ctx := context.Background()

	if err := fc.engs[0].Ingest(0, 1, 2.5); err != nil {
		t.Fatal(err)
	}
	if err := fc.engs[1].Ingest(1, 2, 7.5); err != nil {
		t.Fatal(err)
	}
	if err := coord.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if ns := nodeStatsFor(t, coord, proxied); ns.Breaker != "closed" {
		t.Fatalf("healthy breaker = %s, want closed", ns.Breaker)
	}

	// Blackhole: each contact now hangs for the full timeout. Partial
	// policy keeps the rounds serving off node 0 while failures accrue.
	proxy.Blackhole(true)
	for i := 0; i < 3; i++ {
		if err := coord.Sync(ctx); err != nil {
			t.Fatalf("partial sync %d with blackholed node failed: %v", i, err)
		}
	}
	if ns := nodeStatsFor(t, coord, proxied); ns.Breaker != "open" || ns.BreakerOpens != 1 {
		t.Fatalf("after 3 timeout failures: breaker %s opens %d, want open/1", ns.Breaker, ns.BreakerOpens)
	}

	// Open breaker: the dead node is skipped without touching the wire,
	// so the sync costs nowhere near the timeout.
	start := time.Now()
	if err := coord.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed >= timeout/2 {
		t.Fatalf("open-breaker sync took %v — dead node was not short-circuited (timeout %v)", elapsed, timeout)
	}
	if ns := nodeStatsFor(t, coord, proxied); ns.ShortCircuits == 0 {
		t.Fatal("open breaker recorded no short circuits")
	}
	deg := coord.Degraded()
	if deg == nil || len(deg.Missing) != 1 || deg.Missing[0].Node != proxied {
		t.Fatalf("short-circuited round's degraded block = %+v, want missing %s", deg, proxied)
	}

	// Heal and wait out the cooldown: the half-open probe reaches the
	// node, closes the breaker and clears the label.
	proxy.Blackhole(false)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := coord.Sync(ctx); err != nil {
			t.Fatal(err)
		}
		if coord.Degraded() == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("degraded label never cleared after heal; node stats %+v",
				nodeStatsFor(t, coord, proxied))
		}
		time.Sleep(25 * time.Millisecond)
	}
	if ns := nodeStatsFor(t, coord, proxied); ns.Breaker != "closed" {
		t.Fatalf("healed breaker = %s, want closed", ns.Breaker)
	}
}

// TestRoutedRetryAppliesOnce is the regression test for the routed-write
// retry ambiguity: the node applies a forwarded /v1/stream batch but the
// coordinator loses the response, retries under the same
// Idempotency-Key, and the node must recognize the replayed frames and
// count the batch exactly once — engine ingests and wire counters both.
func TestRoutedRetryAppliesOnce(t *testing.T) {
	cfg := engine.Config{Instances: 2, K: 16, Shards: 4, Hash: sampling.NewSeedHash(19)}
	fc := newFaultCluster(t, 1, cfg)

	ft := fault.NewTransport(fault.Profile{}, nil)
	coord, err := cluster.New(cluster.Config{
		Nodes:   fc.urls,
		Engine:  cfg,
		Timeout: 5 * time.Second,
		Client:  &http.Client{Transport: ft},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	batch := make([]engine.Update, 10)
	oracle, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range batch {
		batch[i] = engine.Update{Instance: i % 2, Key: uint64(100 + i), Weight: float64(i + 1)}
	}
	if err := oracle.IngestBatch(batch); err != nil {
		t.Fatal(err)
	}

	// The node processes the request; the response dies on the way back.
	// The default one retry replays the stream under the same key.
	ft.DropNextResponses(1)
	if err := coord.IngestBatch(context.Background(), batch); err != nil {
		t.Fatalf("routed batch with dropped response failed: %v", err)
	}
	if st := ft.Stats(); st.Dropped != 1 {
		t.Fatalf("transport dropped %d responses, want 1", st.Dropped)
	}

	if got, want := fc.engs[0].Stats().Ingests, uint64(len(batch)); got != want {
		t.Fatalf("node ingested %d updates, want %d — retried routed batch double-counted", got, want)
	}
	ests := sumEstimators(t, 2)
	requireSameSnapshot(t, "routed-retry", fc.engs[0].FreshView(), oracle.FreshView(), ests)

	// The node's wire counters tell the same story: the replay was
	// recognized and skipped, not re-applied.
	resp, err := http.Get(fc.urls[0] + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Wire struct {
			StreamFramesDeduped uint64 `json:"stream_frames_deduped"`
		} `json:"wire"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Wire.StreamFramesDeduped == 0 {
		t.Fatal("node deduped no stream frames — the replay was re-applied")
	}
}

// TestSyncDeadNodeShortCircuits is the deterministic half of
// BenchmarkSyncDeadNode: once the breaker is open, a sync round with a
// blackholed node completes in a small fraction of the node timeout and
// still labels the view.
func TestSyncDeadNodeShortCircuits(t *testing.T) {
	coord, proxied, _ := deadNodeCluster(t, 500*time.Millisecond)
	start := time.Now()
	for i := 0; i < 5; i++ {
		if err := coord.Sync(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	if elapsed >= 500*time.Millisecond {
		t.Fatalf("5 open-breaker syncs took %v — dead node still costs the timeout", elapsed)
	}
	deg := coord.Degraded()
	if deg == nil || len(deg.Missing) != 1 || deg.Missing[0].Node != proxied {
		t.Fatalf("degraded block = %+v, want missing %s", deg, proxied)
	}
	t.Logf("5 syncs with a dead node in %v (%v per sync)", elapsed, elapsed/5)
}

// deadNodeCluster builds a 3-node cluster under quorum=2 with node 2
// behind a blackholed proxy and the breaker already tripped (cooldown
// effectively infinite, so no half-open probes pay the timeout
// mid-measurement).
func deadNodeCluster(tb testing.TB, timeout time.Duration) (*cluster.Coordinator, string, *faultCluster) {
	tb.Helper()
	cfg := engine.Config{Instances: 2, K: 16, Shards: 4, Hash: sampling.NewSeedHash(3)}
	fc := newFaultCluster(tb, 3, cfg)

	proxy, err := fault.NewProxy(fc.srvs[2].Listener.Addr().String())
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { proxy.Close() })

	coord, err := cluster.New(cluster.Config{
		Nodes:            []string{fc.urls[0], fc.urls[1], proxy.URL()},
		Engine:           cfg,
		Timeout:          timeout,
		Retries:          -1,
		BreakerThreshold: 3,
		BreakerCooldown:  time.Hour,
		ReadPolicy:       cluster.ReadPolicy{Mode: cluster.ReadQuorum, Quorum: 2},
	})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(coord.Close)

	for key := 0; key < 1024; key++ {
		u := engine.Update{Instance: key % 2, Key: uint64(key), Weight: 1 + float64(key%97)}
		if err := fc.engs[key%2].IngestBatch([]engine.Update{u}); err != nil {
			tb.Fatal(err)
		}
	}
	ctx := context.Background()
	if err := coord.Sync(ctx); err != nil {
		tb.Fatal(err)
	}
	proxy.Blackhole(true)
	for i := 0; i < 3; i++ {
		if err := coord.Sync(ctx); err != nil {
			tb.Fatal(err)
		}
	}
	ns := nodeStatsFor(tb, coord, proxy.URL())
	if ns.Breaker != "open" {
		tb.Fatalf("setup did not open the breaker: %+v", ns)
	}
	return coord, proxy.URL(), fc
}

// BenchmarkSyncDeadNode pins the breaker's perf claim: with one node
// blackholed and its breaker open, the steady-state sync is two local
// 304 rounds plus a wire-free short-circuit — the dead node adds
// effectively nothing, instead of timeout×(1+retries) per read.
func BenchmarkSyncDeadNode(b *testing.B) {
	coord, _, _ := deadNodeCluster(b, 250*time.Millisecond)
	ctx := context.Background()
	before := nodeStatsForBench(coord)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := coord.Sync(ctx); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	after := nodeStatsForBench(coord)
	if got, want := after-before, uint64(b.N); got < want {
		b.Fatalf("short circuits grew %d, want ≥ %d (one per sync)", got, want)
	}
}

// nodeStatsForBench sums short-circuits across nodes (only the dead one
// accrues them).
func nodeStatsForBench(coord *cluster.Coordinator) uint64 {
	var total uint64
	for _, ns := range coord.Stats().Nodes {
		total += ns.ShortCircuits
	}
	return total
}
