package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
)

// Coordinator fronts a cluster of monestd nodes with the full single-node
// serving surface. It satisfies internal/server's SnapshotSource (reads:
// scatter-gather the nodes' reduced sketch states, fold them into a local
// merge engine, serve its snapshot) and Ingestor (writes: partition each
// batch by ring owner and forward synchronously over the binary stream
// wire). Correctness rests on lossless coordinated-sketch merging: the
// merge engine's snapshot is bit-identical to a single engine fed the
// union stream, so every estimator, cache and push layer above works
// unchanged.
//
// Consistency model: reads are strict, not best-effort. A query triggers
// one version-vector sync — each node answers a conditional /v1/sketch
// fetch, transferring state only when its version advanced (steady state:
// N tiny 304s, zero state bytes, no merge) — and any unreachable node
// fails the read with a degraded-mode error (HTTP 503 through
// internal/server) rather than silently serving estimates missing a key
// range. SyncMaxStale optionally bounds how often the vector is polled
// under read load, trading staleness for N-fold fewer round trips.
type Coordinator struct {
	ring  *Ring
	merge *engine.Engine
	nodes []*nodeClient
	cfg   Config

	// syncMu single-flights scatter-gather rounds; concurrent readers
	// piggyback on the round in flight instead of stampeding the nodes.
	syncMu   sync.Mutex
	lastSync time.Time

	stats coordStats

	// stopCtx cancels in-flight node traffic on Close (the poll loop's
	// sync runs under it); stopped parks the poll loop itself.
	stopCtx  context.Context
	stop     context.CancelFunc
	stopOnce sync.Once
	stopped  chan struct{}
}

// Config configures a Coordinator.
type Config struct {
	// Nodes are the member base URLs (e.g. "http://10.0.0.1:8080"), the
	// ring identity: every coordinator configured with the same list and
	// salt routes identically.
	Nodes []string
	// VirtualNodes is the per-node vnode count (0 = DefaultVirtualNodes).
	VirtualNodes int
	// Engine configures the local merge engine; Instances, K and the seed
	// hash must match the nodes' or merges are rejected (seed-fingerprint
	// check in the artifact decoder).
	Engine engine.Config
	// Timeout bounds each node request attempt (0 = 2s).
	Timeout time.Duration
	// Retries is how many extra attempts transiently-failing node
	// requests get (default 1; negative = none).
	Retries int
	// SyncMaxStale skips the version-vector round when the last sync is
	// at most this old (0 = every read syncs — strict read-your-writes
	// through the coordinator).
	SyncMaxStale time.Duration
	// Poll, when positive, runs a background sync loop so /v1/subscribe
	// pushes fire on node-side mutations even with no query traffic.
	Poll time.Duration
	// Client is the HTTP client for node traffic (nil = a dedicated
	// client with keep-alives, suitable for the 304-heavy steady state).
	Client *http.Client
}

// coordStats counts scatter-gather traffic (atomics; read via Stats).
type coordStats struct {
	syncs       atomic.Uint64
	fetches     atomic.Uint64
	notModified atomic.Uint64
	stateBytes  atomic.Uint64
	routed      atomic.Uint64
}

// Stats is a snapshot of the coordinator's scatter-gather counters.
type Stats struct {
	// Syncs counts completed scatter-gather rounds.
	Syncs uint64 `json:"syncs"`
	// Fetches counts 200 sketch responses (node state actually
	// transferred and merged); NotModified counts 304s (version vector
	// hit — nothing re-fetched).
	Fetches     uint64 `json:"fetches"`
	NotModified uint64 `json:"not_modified"`
	// StateBytes totals artifact bytes fetched from nodes.
	StateBytes uint64 `json:"state_bytes"`
	// RoutedUpdates counts updates forwarded to owner nodes.
	RoutedUpdates uint64 `json:"routed_updates"`
}

// New builds a coordinator and its empty merge engine. It performs no
// I/O; the first read or poll tick populates the merge engine.
func New(cfg Config) (*Coordinator, error) {
	ring, err := NewRing(cfg.Engine.Hash, cfg.Nodes, cfg.VirtualNodes)
	if err != nil {
		return nil, err
	}
	merge, err := engine.New(cfg.Engine)
	if err != nil {
		return nil, fmt.Errorf("cluster: merge engine: %w", err)
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	if cfg.Retries == 0 {
		cfg.Retries = 1
	} else if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	hc := cfg.Client
	if hc == nil {
		hc = &http.Client{}
	}
	stopCtx, stop := context.WithCancel(context.Background())
	c := &Coordinator{
		ring:    ring,
		merge:   merge,
		cfg:     cfg,
		stopCtx: stopCtx,
		stop:    stop,
		stopped: make(chan struct{}),
	}
	for _, addr := range ring.Nodes() {
		c.nodes = append(c.nodes, &nodeClient{
			addr:    addr,
			hc:      hc,
			timeout: cfg.Timeout,
			retries: cfg.Retries,
		})
	}
	if cfg.Poll > 0 {
		go c.pollLoop()
	}
	return c, nil
}

// Engine exposes the merge engine — the engine a server in cluster mode
// is constructed over, so /v1/stats, /v1/export and the subscription
// mutation signal all describe the merged cluster state.
func (c *Coordinator) Engine() *engine.Engine { return c.merge }

// Ring exposes the routing ring (tests and diagnostics).
func (c *Coordinator) Ring() *Ring { return c.ring }

// Stats returns the scatter-gather counters.
func (c *Coordinator) Stats() Stats {
	return Stats{
		Syncs:         c.stats.syncs.Load(),
		Fetches:       c.stats.fetches.Load(),
		NotModified:   c.stats.notModified.Load(),
		StateBytes:    c.stats.stateBytes.Load(),
		RoutedUpdates: c.stats.routed.Load(),
	}
}

// Close stops the background poll loop and cancels its in-flight node
// traffic. Idempotent.
func (c *Coordinator) Close() {
	c.stopOnce.Do(func() {
		close(c.stopped)
		c.stop()
	})
}

func (c *Coordinator) pollLoop() {
	t := time.NewTicker(c.cfg.Poll)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			// A poll failure is not actionable here: reads surface it as
			// 503 and the next tick retries.
			_ = c.Sync(c.stopCtx)
		case <-c.stopped:
			return
		}
	}
}

// Sync runs one scatter-gather round: every node is asked for its state
// conditionally on the version vector, concurrently; changed states fold
// into the merge engine in node order (order only affects mutation
// accounting — max-union is commutative). Rounds are single-flighted and
// optionally rate-bounded by SyncMaxStale. Any node failure fails the
// round with the first failing node's error, but only AFTER every
// successful fetch has been merged and had its vector entry committed:
// merge-then-commit per node keeps a transient failure elsewhere from
// caching a version whose state was never folded in (which would turn
// that node's next fetch into a 304 and silently drop its updates from
// the merged view). State merged in a failed round stays — folds are
// monotone, and a later successful round completes the picture.
func (c *Coordinator) Sync(ctx context.Context) error {
	c.syncMu.Lock()
	defer c.syncMu.Unlock()
	if c.cfg.SyncMaxStale > 0 && time.Since(c.lastSync) < c.cfg.SyncMaxStale {
		return nil
	}
	type fetched struct {
		st   *engine.State
		size int
		err  error
	}
	results := make([]fetched, len(c.nodes))
	var wg sync.WaitGroup
	for i, n := range c.nodes {
		wg.Add(1)
		go func(i int, n *nodeClient) {
			defer wg.Done()
			st, size, err := n.fetchSketch(ctx)
			results[i] = fetched{st: st, size: size, err: err}
		}(i, n)
	}
	wg.Wait()
	var firstErr error
	for i, res := range results {
		switch {
		case res.err != nil:
			if firstErr == nil {
				firstErr = res.err
			}
		case res.st == nil:
			c.stats.notModified.Add(1)
		default:
			if err := c.merge.MergeState(res.st); err != nil {
				if firstErr == nil {
					firstErr = &NodeError{Addr: c.nodes[i].addr, Status: http.StatusOK,
						Err: fmt.Errorf("merging sketch: %w", err)}
				}
				continue
			}
			c.nodes[i].commit(res.st.Version)
			c.stats.fetches.Add(1)
			c.stats.stateBytes.Add(uint64(res.size))
		}
	}
	if firstErr != nil {
		return firstErr
	}
	c.stats.syncs.Add(1)
	c.lastSync = time.Now()
	return nil
}

// AcquireSnapshot implements internal/server's SnapshotSource: sync the
// version vector, then cut the merge engine. The returned view's version
// is the merge engine's mutation version — it advances exactly when some
// node's folded-in state changed the merged contents, so the server's
// per-version memo and the SSE id lines work across the cluster
// unchanged. ctx (the serving request's context) cancels in-flight node
// fetches, so a disconnected client or a draining server does not hold
// the sync for timeout×(1+retries) per node.
func (c *Coordinator) AcquireSnapshot(ctx context.Context) (engine.SnapshotView, error) {
	if err := c.Sync(ctx); err != nil {
		return engine.SnapshotView{}, err
	}
	return c.merge.FreshView(), nil
}

// IngestBatch implements internal/server's Ingestor: partition the batch
// by ring owner and forward each node's share concurrently as one
// synchronous binary stream request. The call returns only when every
// owner applied its share, so a 200 from the coordinator's /v1/ingest or
// /v1/stream means the cluster has the updates. A failed owner fails the
// batch (other nodes' shares stay applied — same non-transactional
// semantics as sequential /v1/ingest batches on one node). ctx (the
// serving request's context) cancels in-flight forwards, so an aborted
// client request does not pin the coordinator for the full per-node
// timeout and retry budget.
func (c *Coordinator) IngestBatch(ctx context.Context, batch []engine.Update) error {
	if len(batch) == 0 {
		return nil
	}
	per := make([][]engine.Update, len(c.nodes))
	for _, u := range batch {
		i := c.ring.Owner(u.Key)
		per[i] = append(per[i], u)
	}
	errs := make([]error, len(c.nodes))
	var wg sync.WaitGroup
	for i, part := range per {
		if len(part) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, part []engine.Update) {
			defer wg.Done()
			errs[i] = c.nodes[i].sendBatch(ctx, part)
		}(i, part)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	c.stats.routed.Add(uint64(len(batch)))
	return nil
}
