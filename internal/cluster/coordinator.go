package cluster

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
	"fmt"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
)

// Coordinator fronts a cluster of monestd nodes with the full single-node
// serving surface. It satisfies internal/server's SnapshotSource (reads:
// scatter-gather the nodes' reduced sketch states, fold them into a local
// merge engine, serve its snapshot) and Ingestor (writes: partition each
// batch by ring owner and forward synchronously over the binary stream
// wire). Correctness rests on lossless coordinated-sketch merging: the
// merge engine's snapshot is bit-identical to a single engine fed the
// union stream, so every estimator, cache and push layer above works
// unchanged.
//
// Consistency model: governed by Config.ReadPolicy. Strict (default):
// a query triggers one version-vector sync — each node answers a
// conditional /v1/sketch fetch, transferring state only when its
// version advanced (steady state: N tiny 304s, zero state bytes, no
// merge) — and any unreachable node fails the read with a degraded-mode
// error (HTTP 503 through internal/server) rather than silently serving
// estimates missing a key range. Partial/quorum policies instead serve
// the merged view from the reachable subset when the policy floor is
// met, attaching an explicit Degraded block (never a silent partial
// answer); only Unavailable-class failures are maskable — a seed
// mismatch or merge failure always fails the round. SyncMaxStale
// optionally bounds how often the vector is polled under read load,
// trading staleness for N-fold fewer round trips.
type Coordinator struct {
	ring  *Ring
	merge *engine.Engine
	nodes []*nodeClient
	cfg   Config

	// syncMu single-flights scatter-gather rounds; concurrent readers
	// piggyback on the round in flight instead of stampeding the nodes.
	syncMu   sync.Mutex
	lastSync time.Time

	// degraded labels the last completed round: nil when every node was
	// reached, else the missing-node block responses must carry.
	degraded atomic.Pointer[Degraded]

	// idemBase + idemSeq mint per-routed-batch Idempotency-Keys. The
	// base is random per coordinator instance so a restarted
	// coordinator's keys cannot collide with its predecessor's (and the
	// node's frame digests make even a collision harmless).
	idemBase string
	idemSeq  atomic.Uint64

	stats coordStats

	// stopCtx cancels in-flight node traffic on Close (the poll loop's
	// sync runs under it); stopped parks the poll loop itself.
	stopCtx  context.Context
	stop     context.CancelFunc
	stopOnce sync.Once
	stopped  chan struct{}
}

// Config configures a Coordinator.
type Config struct {
	// Nodes are the member base URLs (e.g. "http://10.0.0.1:8080"), the
	// ring identity: every coordinator configured with the same list and
	// salt routes identically.
	Nodes []string
	// VirtualNodes is the per-node vnode count (0 = DefaultVirtualNodes).
	VirtualNodes int
	// Engine configures the local merge engine; Instances, K and the seed
	// hash must match the nodes' or merges are rejected (seed-fingerprint
	// check in the artifact decoder).
	Engine engine.Config
	// Timeout bounds each node request attempt (0 = 2s).
	Timeout time.Duration
	// Retries is how many extra attempts transiently-failing node
	// requests get (default 1; negative = none).
	Retries int
	// ReadPolicy selects strict, partial or quorum reads (zero value =
	// strict). Quorum must not exceed len(Nodes).
	ReadPolicy ReadPolicy
	// BackoffBase/BackoffMax shape retry pauses: full jitter in
	// [0, min(BackoffMax, BackoffBase<<attempt)). Defaults 25ms / 1s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// BreakerThreshold consecutive Unavailable-class failures open a
	// node's circuit breaker (default 3; negative disables breakers).
	// BreakerCooldown is how long an open breaker short-circuits before
	// letting one half-open probe through (default 250ms).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// SyncMaxStale skips the version-vector round when the last sync is
	// at most this old (0 = every read syncs — strict read-your-writes
	// through the coordinator).
	SyncMaxStale time.Duration
	// Poll, when positive, runs a background sync loop so /v1/subscribe
	// pushes fire on node-side mutations even with no query traffic.
	Poll time.Duration
	// Client is the HTTP client for node traffic (nil = a dedicated
	// client with keep-alives, suitable for the 304-heavy steady state).
	Client *http.Client
}

// coordStats counts scatter-gather traffic (atomics; read via Stats).
type coordStats struct {
	syncs       atomic.Uint64
	fetches     atomic.Uint64
	notModified atomic.Uint64
	stateBytes  atomic.Uint64
	routed      atomic.Uint64
	degraded    atomic.Uint64
}

// Stats is a snapshot of the coordinator's scatter-gather counters.
type Stats struct {
	// Syncs counts completed scatter-gather rounds (degraded ones
	// included; DegradedSyncs counts just those).
	Syncs         uint64 `json:"syncs"`
	DegradedSyncs uint64 `json:"degraded_syncs"`
	// Fetches counts 200 sketch responses (node state actually
	// transferred and merged); NotModified counts 304s (version vector
	// hit — nothing re-fetched).
	Fetches     uint64 `json:"fetches"`
	NotModified uint64 `json:"not_modified"`
	// StateBytes totals artifact bytes fetched from nodes.
	StateBytes uint64 `json:"state_bytes"`
	// RoutedUpdates counts updates forwarded to owner nodes.
	RoutedUpdates uint64 `json:"routed_updates"`
	// Policy is the configured read policy; Nodes is per-node breaker
	// and version-vector state.
	Policy string      `json:"policy"`
	Nodes  []NodeStats `json:"nodes"`
}

// NodeStats is one node's availability state as the coordinator sees it.
type NodeStats struct {
	Node    string `json:"node"`
	Breaker string `json:"breaker"` // closed | open | half-open
	// BreakerOpens counts closed/half-open → open transitions;
	// ShortCircuits counts requests skipped without touching the wire.
	BreakerOpens  uint64 `json:"breaker_opens"`
	ShortCircuits uint64 `json:"short_circuits"`
	// LastMergedVersion/StaleSeconds mirror the degraded-block labels
	// (StaleSeconds -1 = never merged).
	LastMergedVersion uint64  `json:"last_merged_version"`
	StaleSeconds      float64 `json:"stale_seconds"`
}

// New builds a coordinator and its empty merge engine. It performs no
// I/O; the first read or poll tick populates the merge engine.
func New(cfg Config) (*Coordinator, error) {
	ring, err := NewRing(cfg.Engine.Hash, cfg.Nodes, cfg.VirtualNodes)
	if err != nil {
		return nil, err
	}
	merge, err := engine.New(cfg.Engine)
	if err != nil {
		return nil, fmt.Errorf("cluster: merge engine: %w", err)
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	if cfg.Retries == 0 {
		cfg.Retries = 1
	} else if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	if cfg.ReadPolicy.Mode == ReadQuorum && cfg.ReadPolicy.Quorum > len(cfg.Nodes) {
		return nil, fmt.Errorf("cluster: read quorum %d exceeds %d nodes",
			cfg.ReadPolicy.Quorum, len(cfg.Nodes))
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 25 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = time.Second
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 250 * time.Millisecond
	}
	hc := cfg.Client
	if hc == nil {
		hc = &http.Client{}
	}
	stopCtx, stop := context.WithCancel(context.Background())
	c := &Coordinator{
		ring:     ring,
		merge:    merge,
		cfg:      cfg,
		idemBase: idempotencyBase(),
		stopCtx:  stopCtx,
		stop:     stop,
		stopped:  make(chan struct{}),
	}
	// Backoff jitter is seeded from the engine hash so a chaos run's
	// retry schedule replays from the cluster's own configuration.
	jitterSeed := math.Float64bits(cfg.Engine.Hash.U(0x6661756c74))
	for i, addr := range ring.Nodes() {
		n := &nodeClient{
			addr:        addr,
			hc:          hc,
			timeout:     cfg.Timeout,
			retries:     cfg.Retries,
			backoffBase: cfg.BackoffBase,
			backoffMax:  cfg.BackoffMax,
			jitter:      &jitterSource{},
		}
		n.jitter.state.Store(jitterSeed + uint64(i)*0x9e3779b97f4a7c15)
		if cfg.BreakerThreshold > 0 {
			n.br = newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown)
		}
		c.nodes = append(c.nodes, n)
	}
	if cfg.Poll > 0 {
		go c.pollLoop()
	}
	return c, nil
}

// Engine exposes the merge engine — the engine a server in cluster mode
// is constructed over, so /v1/stats, /v1/export and the subscription
// mutation signal all describe the merged cluster state.
func (c *Coordinator) Engine() *engine.Engine { return c.merge }

// Ring exposes the routing ring (tests and diagnostics).
func (c *Coordinator) Ring() *Ring { return c.ring }

// Stats returns the scatter-gather counters and per-node availability
// state.
func (c *Coordinator) Stats() Stats {
	s := Stats{
		Syncs:         c.stats.syncs.Load(),
		DegradedSyncs: c.stats.degraded.Load(),
		Fetches:       c.stats.fetches.Load(),
		NotModified:   c.stats.notModified.Load(),
		StateBytes:    c.stats.stateBytes.Load(),
		RoutedUpdates: c.stats.routed.Load(),
		Policy:        c.cfg.ReadPolicy.String(),
	}
	now := time.Now()
	for _, n := range c.nodes {
		ns := NodeStats{Node: n.addr, Breaker: breakerClosed.String(), StaleSeconds: -1}
		if n.br != nil {
			ns.Breaker = n.br.current().String()
			ns.BreakerOpens = n.br.opens.Load()
			ns.ShortCircuits = n.br.shortCircuits.Load()
		}
		if at := n.lastMergeAt.Load(); at > 0 && n.have.Load() {
			ns.LastMergedVersion = n.version.Load()
			ns.StaleSeconds = now.Sub(time.Unix(0, at)).Seconds()
		}
		s.Nodes = append(s.Nodes, ns)
	}
	return s
}

// Degraded returns the degraded block of the last completed round (nil
// = the last round reached every node). The label pairs with the merge
// engine's current view: a concurrent round can only make the view
// fresher than the label claims, never staler.
func (c *Coordinator) Degraded() *Degraded { return c.degraded.Load() }

// Ready reports read-policy satisfiability — the coordinator's /readyz:
// nil when a scatter-gather round can currently meet the policy floor.
func (c *Coordinator) Ready(ctx context.Context) error {
	return c.Sync(ctx)
}

// idempotencyBase mints the per-instance key prefix.
func idempotencyBase() string {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		// Non-cryptographic fallback; frame digests keep collisions safe.
		return fmt.Sprintf("coord-%x", time.Now().UnixNano())
	}
	return "coord-" + hex.EncodeToString(b[:])
}

// Close stops the background poll loop and cancels its in-flight node
// traffic. Idempotent.
func (c *Coordinator) Close() {
	c.stopOnce.Do(func() {
		close(c.stopped)
		c.stop()
	})
}

func (c *Coordinator) pollLoop() {
	t := time.NewTicker(c.cfg.Poll)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			// A poll failure is not actionable here: reads surface it as
			// 503 and the next tick retries.
			_ = c.Sync(c.stopCtx)
		case <-c.stopped:
			return
		}
	}
}

// Sync runs one scatter-gather round: every node is asked for its state
// conditionally on the version vector, concurrently; changed states fold
// into the merge engine in node order (order only affects mutation
// accounting — max-union is commutative). Rounds are single-flighted and
// optionally rate-bounded by SyncMaxStale.
//
// Failure handling is policy-aware, but merges always come first: every
// successful fetch is merged and has its vector entry committed BEFORE
// any error is returned — merge-then-commit per node keeps a transient
// failure elsewhere from caching a version whose state was never folded
// in (which would turn that node's next fetch into a 304 and silently
// drop its updates from the merged view). Then:
//
//   - Non-Unavailable failures (4xx config mismatches, merge rejects)
//     always fail the round — no policy masks a correctness problem.
//   - Unavailable-class failures fail the round only when the count of
//     reached nodes falls below the read policy's floor; otherwise the
//     round completes as DEGRADED, recording the missing nodes (with
//     last-merged staleness) for responses to carry. State merged from
//     missing nodes in earlier rounds stays in the view — folds are
//     monotone — so a degraded answer is the union of live state from
//     reachable nodes and the last-merged state of missing ones.
func (c *Coordinator) Sync(ctx context.Context) error {
	c.syncMu.Lock()
	defer c.syncMu.Unlock()
	if c.cfg.SyncMaxStale > 0 && time.Since(c.lastSync) < c.cfg.SyncMaxStale {
		return nil
	}
	type fetched struct {
		st   *engine.State
		size int
		err  error
	}
	results := make([]fetched, len(c.nodes))
	var wg sync.WaitGroup
	for i, n := range c.nodes {
		wg.Add(1)
		go func(i int, n *nodeClient) {
			defer wg.Done()
			st, size, err := n.fetchSketch(ctx)
			results[i] = fetched{st: st, size: size, err: err}
		}(i, n)
	}
	wg.Wait()
	var firstErr, firstUnavail error
	reached := 0
	var missing []MissingNode
	now := time.Now()
	for i, res := range results {
		switch {
		case res.err != nil:
			if ne, ok := res.err.(*NodeError); ok && ne.Unavailable() {
				if firstUnavail == nil {
					firstUnavail = res.err
				}
				missing = append(missing, c.nodes[i].missingEntry(res.err, now))
			} else if firstErr == nil {
				firstErr = res.err
			}
		case res.st == nil:
			c.stats.notModified.Add(1)
			reached++
		default:
			if err := c.merge.MergeState(res.st); err != nil {
				if firstErr == nil {
					firstErr = &NodeError{Addr: c.nodes[i].addr, Status: http.StatusOK,
						Err: fmt.Errorf("merging sketch: %w", err)}
				}
				continue
			}
			c.nodes[i].commit(res.st.Version)
			c.stats.fetches.Add(1)
			c.stats.stateBytes.Add(uint64(res.size))
			reached++
		}
	}
	if firstErr != nil {
		return firstErr
	}
	if reached < c.cfg.ReadPolicy.floor(len(c.nodes)) {
		return firstUnavail
	}
	if len(missing) > 0 {
		c.stats.degraded.Add(1)
		c.degraded.Store(&Degraded{
			Policy:    c.cfg.ReadPolicy.String(),
			Reachable: reached,
			Total:     len(c.nodes),
			Missing:   missing,
		})
	} else {
		c.degraded.Store(nil)
	}
	c.stats.syncs.Add(1)
	c.lastSync = time.Now()
	return nil
}

// AcquireSnapshot implements internal/server's SnapshotSource: sync the
// version vector, then cut the merge engine. The returned view's version
// is the merge engine's mutation version — it advances exactly when some
// node's folded-in state changed the merged contents, so the server's
// per-version memo and the SSE id lines work across the cluster
// unchanged. ctx (the serving request's context) cancels in-flight node
// fetches, so a disconnected client or a draining server does not hold
// the sync for timeout×(1+retries) per node.
func (c *Coordinator) AcquireSnapshot(ctx context.Context) (engine.SnapshotView, error) {
	view, _, err := c.AcquireSnapshotDegraded(ctx)
	return view, err
}

// AcquireSnapshotDegraded is AcquireSnapshot plus the degraded label of
// the round that produced the view (nil = exact full union). It is the
// method internal/server's degraded-aware acquisition path looks for.
func (c *Coordinator) AcquireSnapshotDegraded(ctx context.Context) (engine.SnapshotView, *Degraded, error) {
	if err := c.Sync(ctx); err != nil {
		return engine.SnapshotView{}, nil, err
	}
	return c.merge.FreshView(), c.degraded.Load(), nil
}

// IngestBatch implements internal/server's Ingestor: partition the batch
// by ring owner and forward each node's share concurrently as one
// synchronous binary stream request. The call returns only when every
// owner applied its share, so a 200 from the coordinator's /v1/ingest or
// /v1/stream means the cluster has the updates. A failed owner fails the
// batch (other nodes' shares stay applied — same non-transactional
// semantics as sequential /v1/ingest batches on one node). ctx (the
// serving request's context) cancels in-flight forwards, so an aborted
// client request does not pin the coordinator for the full per-node
// timeout and retry budget.
func (c *Coordinator) IngestBatch(ctx context.Context, batch []engine.Update) error {
	if len(batch) == 0 {
		return nil
	}
	per := make([][]engine.Update, len(c.nodes))
	for _, u := range batch {
		i := c.ring.Owner(u.Key)
		per[i] = append(per[i], u)
	}
	errs := make([]error, len(c.nodes))
	var wg sync.WaitGroup
	for i, part := range per {
		if len(part) == 0 {
			continue
		}
		// One key per node share, stable across that share's retries, so
		// the node recognizes and skips replayed frames.
		key := fmt.Sprintf("%s-%d", c.idemBase, c.idemSeq.Add(1))
		wg.Add(1)
		go func(i int, key string, part []engine.Update) {
			defer wg.Done()
			errs[i] = c.nodes[i].sendBatch(ctx, key, part)
		}(i, key, part)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	c.stats.routed.Add(uint64(len(batch)))
	return nil
}
