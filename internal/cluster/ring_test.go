package cluster

import (
	"testing"

	"repro/internal/sampling"
)

// TestRingDeterministic pins the routing contract: every router built
// from the same salt, node list and vnode count maps every key to the
// same owner — coordinators need no coordination protocol to agree.
func TestRingDeterministic(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1"}
	r1, err := NewRing(sampling.NewSeedHash(11), nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing(sampling.NewSeedHash(11), nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	for key := uint64(0); key < 10000; key++ {
		if r1.Owner(key) != r2.Owner(key) {
			t.Fatalf("key %d: ring 1 owner %d != ring 2 owner %d", key, r1.Owner(key), r2.Owner(key))
		}
	}
	if r1.OwnerAddr(42) != nodes[r1.Owner(42)] {
		t.Fatalf("OwnerAddr(42) = %q, want %q", r1.OwnerAddr(42), nodes[r1.Owner(42)])
	}
}

// TestRingSaltChangesPlacement guards against a ring that ignores its
// hash: different salts must place keys differently (else the "derived
// from the engine's seed hash" claim is vacuous).
func TestRingSaltChangesPlacement(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1"}
	r1, err := NewRing(sampling.NewSeedHash(1), nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing(sampling.NewSeedHash(2), nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for key := uint64(0); key < 10000; key++ {
		if r1.Owner(key) != r2.Owner(key) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("rings with different salts agreed on all 10000 keys")
	}
}

// TestRingBalance checks that DefaultVirtualNodes spreads ownership
// usefully: with 3 nodes every node owns a non-trivial share. The bound
// is deliberately loose (vnode placement is hash-random); the point is
// to catch a ring that starves a member, not to pin the distribution.
func TestRingBalance(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1"}
	r, err := NewRing(sampling.NewSeedHash(7), nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 30000
	counts := make([]int, len(nodes))
	for key := uint64(0); key < keys; key++ {
		counts[r.Owner(key)]++
	}
	for i, c := range counts {
		if c < keys/10 {
			t.Errorf("node %d owns %d of %d keys (< 10%%)", i, c, keys)
		}
	}
}

// TestRingConsistentGrowth pins the consistent-hashing property the
// vnode construction exists for: adding a node may move keys only TO
// the new node — no key changes hands between surviving members.
func TestRingConsistentGrowth(t *testing.T) {
	hash := sampling.NewSeedHash(5)
	old3 := []string{"http://a:1", "http://b:1", "http://c:1"}
	new4 := append(append([]string(nil), old3...), "http://d:1")
	r3, err := NewRing(hash, old3, 0)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := NewRing(hash, new4, 0)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for key := uint64(0); key < 20000; key++ {
		before, after := r3.Owner(key), r4.Owner(key)
		if before == after {
			continue
		}
		if got := r4.Nodes()[after]; got != "http://d:1" {
			t.Fatalf("key %d moved from %s to %s, not to the new node",
				key, old3[before], got)
		}
		moved++
	}
	if moved == 0 {
		t.Fatal("adding a fourth node moved no keys at all")
	}
	if moved > 20000/2 {
		t.Fatalf("adding a fourth node moved %d of 20000 keys (expected roughly a quarter)", moved)
	}
}

// TestRingValidation covers the constructor's rejection paths.
func TestRingValidation(t *testing.T) {
	hash := sampling.NewSeedHash(1)
	if _, err := NewRing(hash, nil, 0); err == nil {
		t.Error("empty node list accepted")
	}
	if _, err := NewRing(hash, []string{"http://a:1", "http://a:1"}, 0); err == nil {
		t.Error("duplicate node address accepted")
	}
	if _, err := NewRing(hash, []string{"http://a:1", ""}, 0); err == nil {
		t.Error("blank node address accepted")
	}
	r, err := NewRing(hash, []string{"solo"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for key := uint64(0); key < 100; key++ {
		if r.Owner(key) != 0 {
			t.Fatalf("single-node ring routed key %d to node %d", key, r.Owner(key))
		}
	}
}
