package cluster

import (
	"testing"
	"time"
)

func TestBreakerStateMachine(t *testing.T) {
	start := time.Unix(1000, 0)
	b := newBreaker(3, 100*time.Millisecond)

	// Closed: everything flows; sub-threshold failures stay closed.
	for i := 0; i < 2; i++ {
		if !b.allow(start) {
			t.Fatalf("closed breaker refused request %d", i)
		}
		b.failure(start)
	}
	if b.current() != breakerClosed {
		t.Fatalf("state after 2/3 failures = %v, want closed", b.current())
	}

	// Third consecutive failure opens; within cooldown everything
	// short-circuits.
	b.allow(start)
	b.failure(start)
	if b.current() != breakerOpen || b.opens.Load() != 1 {
		t.Fatalf("state after 3 failures = %v (opens %d), want open/1", b.current(), b.opens.Load())
	}
	for i := 0; i < 4; i++ {
		if b.allow(start.Add(50 * time.Millisecond)) {
			t.Fatal("open breaker let a request through inside the cooldown")
		}
	}
	if b.shortCircuits.Load() != 4 {
		t.Fatalf("short circuits = %d, want 4", b.shortCircuits.Load())
	}

	// Past the cooldown exactly ONE half-open probe goes out; concurrent
	// requests keep short-circuiting until it reports.
	probeAt := start.Add(150 * time.Millisecond)
	if !b.allow(probeAt) {
		t.Fatal("cooldown elapsed but no probe was allowed")
	}
	if b.allow(probeAt) {
		t.Fatal("two concurrent half-open probes")
	}

	// Probe failure re-opens for another full cooldown.
	b.failure(probeAt)
	if b.current() != breakerOpen || b.opens.Load() != 2 {
		t.Fatalf("state after failed probe = %v (opens %d), want open/2", b.current(), b.opens.Load())
	}
	if b.allow(probeAt.Add(50 * time.Millisecond)) {
		t.Fatal("re-opened breaker let a request through inside the new cooldown")
	}

	// Next probe succeeds: fully closed, failure count reset (three new
	// failures needed to open again).
	probe2 := probeAt.Add(150 * time.Millisecond)
	if !b.allow(probe2) {
		t.Fatal("second probe refused")
	}
	b.success()
	if b.current() != breakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", b.current())
	}
	b.allow(probe2)
	b.failure(probe2)
	b.allow(probe2)
	b.failure(probe2)
	if b.current() != breakerClosed {
		t.Fatal("failure count was not reset by the successful probe")
	}
}

func TestBackoffDelayBounds(t *testing.T) {
	j := &jitterSource{}
	j.state.Store(42)
	base, max := 25*time.Millisecond, time.Second
	for attempt := 0; attempt < 12; attempt++ {
		cap := base << attempt
		if attempt > 10 || cap > max || cap <= 0 {
			cap = max
		}
		for i := 0; i < 100; i++ {
			d := backoffDelay(j, base, max, attempt)
			if d < 0 || d >= cap {
				t.Fatalf("attempt %d: delay %v outside [0, %v)", attempt, d, cap)
			}
		}
	}
	if d := backoffDelay(j, 0, 0, 3); d != 0 {
		t.Fatalf("zero base/max delay = %v, want 0", d)
	}
}

func TestBackoffDelayJitterSpreads(t *testing.T) {
	// Full jitter exists to decorrelate retriers: distinct jitter streams
	// seeded like the coordinator seeds per-node sources must not produce
	// identical delay sequences.
	a, b := &jitterSource{}, &jitterSource{}
	a.state.Store(7)
	b.state.Store(7 + 0x9e3779b97f4a7c15)
	same := 0
	for i := 0; i < 50; i++ {
		if backoffDelay(a, 25*time.Millisecond, time.Second, 4) ==
			backoffDelay(b, 25*time.Millisecond, time.Second, 4) {
			same++
		}
	}
	if same == 50 {
		t.Fatal("two differently-seeded jitter streams produced identical delays")
	}
}
