package order

import (
	"fmt"
	"math"
)

// EstimateOutcome evaluates the ≺+-optimal estimator on a sampled outcome
// given only the estimator-visible information: which entries are known,
// their (ladder) values, and the seed u. It is the honest counterpart of
// Estimate(v, u) for the serving path, where the true data vector is never
// available: the outcome chain above u is reconstructed from the outcome
// alone — an entry known at u with value x stays known on the coarser
// interval (lo, hi] iff π(x) ≥ hi, and an entry unknown at u is unknown on
// every coarser interval. Both methods agree exactly on outcomes the
// scheme can produce (asserted in the tests); estimates are memoized in
// the same per-outcome table as Estimate.
//
// The estimator is not safe for concurrent use: callers that share one
// across goroutines (e.g. the estimator registry) must serialize access.
func (e *Estimator) EstimateOutcome(known []bool, vals []float64, u float64) (float64, error) {
	if len(known) != e.r || len(vals) != e.r {
		return 0, fmt.Errorf("order: outcome arity %d/%d, estimator wants %d", len(known), len(vals), e.r)
	}
	if u <= 0 || u > 1 || math.IsNaN(u) {
		return 0, fmt.Errorf("order: seed %g outside (0,1]", u)
	}
	for i := range known {
		if !known[i] {
			continue
		}
		pi, err := e.p.Scheme.Pi(vals[i])
		if err != nil {
			return 0, err
		}
		if pi < u {
			return 0, fmt.Errorf("order: entry %d value %g (π=%g) cannot be known at seed %g", i, vals[i], pi, u)
		}
	}
	bounds := e.p.Scheme.Boundaries()
	mass := 0.0
	for i := len(bounds) - 1; i >= 1; i-- {
		lo, hi := bounds[i-1], bounds[i]
		k := knowledge{lo: lo, hi: hi, known: make([]bool, e.r), vals: make([]float64, e.r)}
		for j := range known {
			if !known[j] {
				continue
			}
			if pi, _ := e.p.Scheme.Pi(vals[j]); pi >= hi {
				k.known[j] = true
				k.vals[j] = vals[j]
			}
		}
		key := k.key()
		est, ok := e.memo[key]
		if !ok {
			// Only memo misses pay the O(|Domain|·r) consistency scan —
			// repeated outcomes (the snapshot common case) stay O(1). A
			// restricted custom Domain may fail here; Estimate's
			// representative() would panic, EstimateOutcome errors.
			if !e.hasConsistent(k) {
				return 0, fmt.Errorf("order: outcome on (%g, %g] has no consistent domain vector", lo, hi)
			}
			est = e.extendOptimally(k, hi, mass)
			e.memo[key] = est
		}
		if u > lo {
			return est, nil
		}
		mass += est * (hi - lo)
	}
	return 0, fmt.Errorf("order: seed %g below every boundary", u)
}

// hasConsistent reports whether any domain vector could have produced the
// outcome.
func (e *Estimator) hasConsistent(k knowledge) bool {
	for _, z := range e.p.Domain {
		if e.consistent(k, z) {
			return true
		}
	}
	return false
}
