// Package order constructs ≺+-optimal (order-optimal) estimators on
// discrete monotone estimation problems, following Section 5 and Example 5
// of the paper (Cohen, PODC 2014).
//
// A ≺+-optimal estimator minimizes variance with priorities given by a
// partial order ≺ on the data domain: no other unbiased nonnegative
// estimator can do better on some vector without doing worse on a preceding
// one. The construction processes, along each data vector's outcome chain,
// the ≺-minimal consistent vector of every outcome and extends the
// partially-specified estimator v-optimally (Theorem 2.1): the estimate on
// an outcome interval is the negated slope of the greatest convex minorant
// of the representative's lower-bound function anchored at the mass already
// committed by less-informative outcomes.
//
// Order-optimality customizes estimators to expected data patterns: the
// order "smaller f first" reproduces the L* estimator and the order
// "larger f first" reproduces U* (both verified in the tests), while
// custom orders such as Example 5's "difference 2 first" interpolate.
package order

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/hull"
)

// Scheme is a discrete monotone sampling scheme: every entry takes values
// in {0} ∪ Vals, and a value is sampled iff the shared seed u satisfies
// u ≤ Pi(value). Pi is increasing in the value (larger values are sampled
// more aggressively), mirroring Example 5's thresholds π1 < π2 < π3.
type Scheme struct {
	vals []float64
	pis  []float64
}

// NewScheme validates the level/probability ladder: vals strictly
// increasing and positive, pis strictly increasing within (0, 1].
func NewScheme(vals, pis []float64) (Scheme, error) {
	if len(vals) == 0 || len(vals) != len(pis) {
		return Scheme{}, fmt.Errorf("order: need equal-length nonempty value/probability ladders, got %d/%d", len(vals), len(pis))
	}
	for i := range vals {
		if vals[i] <= 0 || (i > 0 && vals[i] <= vals[i-1]) {
			return Scheme{}, fmt.Errorf("order: values must be positive and strictly increasing at %d", i)
		}
		if pis[i] <= 0 || pis[i] > 1 || (i > 0 && pis[i] <= pis[i-1]) {
			return Scheme{}, fmt.Errorf("order: probabilities must be strictly increasing within (0,1] at %d", i)
		}
	}
	s := Scheme{vals: append([]float64(nil), vals...), pis: append([]float64(nil), pis...)}
	return s, nil
}

// Pi returns the inclusion probability of a value (0 for value 0).
func (s Scheme) Pi(value float64) (float64, error) {
	if value == 0 {
		return 0, nil
	}
	for i, v := range s.vals {
		if v == value {
			return s.pis[i], nil
		}
	}
	return 0, fmt.Errorf("order: value %g not on the scheme's ladder", value)
}

// Boundaries returns the outcome-interval boundaries 0, π1, …, πk, 1
// ascending (deduplicated if πk = 1): estimators over this scheme are
// constant on each (b_i, b_{i+1}].
func (s Scheme) Boundaries() []float64 {
	b := []float64{0}
	b = append(b, s.pis...)
	if b[len(b)-1] != 1 {
		b = append(b, 1)
	}
	return b
}

// Problem bundles a discrete monotone estimation problem with a priority
// order.
type Problem struct {
	// Scheme is the per-entry sampling ladder (shared by all entries).
	Scheme Scheme
	// F is the estimated function; must be nonnegative on the domain.
	F func(v []float64) float64
	// Domain enumerates the data vectors (all must have equal length and
	// values on the ladder or zero).
	Domain [][]float64
	// Less is the strict partial order ≺ ("a precedes b" = prioritize a).
	// It must order any two vectors consistent with a shared outcome on
	// which f is not identically determined (Example 5 shows this is the
	// only requirement); ties are broken lexicographically.
	Less func(a, b []float64) bool
}

// Estimator is a ≺+-optimal estimator constructed lazily: outcome estimates
// are memoized as data-vector chains are walked.
type Estimator struct {
	p    Problem
	r    int
	memo map[string]float64
}

// ErrBadDomain reports an invalid problem domain.
var ErrBadDomain = errors.New("order: invalid domain")

// New validates the problem and returns an estimator.
func New(p Problem) (*Estimator, error) {
	if len(p.Domain) == 0 {
		return nil, fmt.Errorf("empty domain: %w", ErrBadDomain)
	}
	r := len(p.Domain[0])
	if r == 0 {
		return nil, fmt.Errorf("zero-arity vectors: %w", ErrBadDomain)
	}
	for _, v := range p.Domain {
		if len(v) != r {
			return nil, fmt.Errorf("ragged domain vectors: %w", ErrBadDomain)
		}
		for _, x := range v {
			if _, err := p.Scheme.Pi(x); err != nil {
				return nil, fmt.Errorf("%v: %w", err, ErrBadDomain)
			}
		}
		if p.F(v) < 0 {
			return nil, fmt.Errorf("negative f on %v: %w", v, ErrBadDomain)
		}
	}
	if p.F == nil || p.Less == nil {
		return nil, fmt.Errorf("nil F or Less: %w", ErrBadDomain)
	}
	return &Estimator{p: p, r: r, memo: make(map[string]float64)}, nil
}

// GridDomain builds the full product domain ({0} ∪ vals)^r.
func GridDomain(s Scheme, r int) [][]float64 {
	alphabet := append([]float64{0}, s.vals...)
	var out [][]float64
	v := make([]float64, r)
	var rec func(i int)
	rec = func(i int) {
		if i == r {
			out = append(out, append([]float64(nil), v...))
			return
		}
		for _, x := range alphabet {
			v[i] = x
			rec(i + 1)
		}
	}
	rec(0)
	return out
}

// knowledge describes one outcome: the interval (lo, hi] and per-entry
// information. Known entries carry their value; unknown entries are bounded
// by the level ladder (value's π ≤ lo).
type knowledge struct {
	lo, hi float64
	known  []bool
	vals   []float64
}

// outcomeOf computes the outcome of v on the boundary interval (lo, hi]:
// entry i is known iff π(v_i) ≥ hi.
func (e *Estimator) outcomeOf(v []float64, lo, hi float64) knowledge {
	k := knowledge{lo: lo, hi: hi, known: make([]bool, e.r), vals: make([]float64, e.r)}
	for i, x := range v {
		pi, err := e.p.Scheme.Pi(x)
		if err != nil {
			panic(fmt.Sprintf("order: %v", err)) // validated in New
		}
		if pi >= hi {
			k.known[i] = true
			k.vals[i] = x
		}
	}
	return k
}

func (k knowledge) key() string {
	var b strings.Builder
	b.WriteString(strconv.FormatFloat(k.hi, 'g', -1, 64))
	for i := range k.known {
		if k.known[i] {
			b.WriteString("|k")
			b.WriteString(strconv.FormatFloat(k.vals[i], 'g', -1, 64))
		} else {
			b.WriteString("|u")
		}
	}
	return b.String()
}

// consistent reports whether domain vector z could have produced the
// outcome: known entries match exactly, unknown entries have π(z_i) ≤ lo.
func (e *Estimator) consistent(k knowledge, z []float64) bool {
	for i := range z {
		pi, _ := e.p.Scheme.Pi(z[i])
		if k.known[i] {
			if z[i] != k.vals[i] {
				return false
			}
		} else if pi > k.lo {
			return false
		}
	}
	return true
}

// representative returns the ≺-minimal consistent domain vector (ties
// broken lexicographically); outcome sets over a validated domain are
// never empty because the true data vector is consistent.
func (e *Estimator) representative(k knowledge) []float64 {
	var minimal [][]float64
	for _, z := range e.p.Domain {
		if e.consistent(k, z) {
			minimal = append(minimal, z)
		}
	}
	if len(minimal) == 0 {
		panic("order: outcome with no consistent domain vector")
	}
	// Keep only ≺-minimal elements, then pick the lexicographic smallest.
	var mins [][]float64
	for _, z := range minimal {
		dominated := false
		for _, w := range minimal {
			if e.p.Less(w, z) {
				dominated = true
				break
			}
		}
		if !dominated {
			mins = append(mins, z)
		}
	}
	sort.Slice(mins, func(i, j int) bool {
		for t := range mins[i] {
			if mins[i][t] != mins[j][t] {
				return mins[i][t] < mins[j][t]
			}
		}
		return false
	})
	return mins[0]
}

// lowerBound computes f^(z)(x) for x in the interval (lo, hi]: the minimum
// of f over domain vectors consistent with z's outcome there.
func (e *Estimator) lowerBound(z []float64, lo, hi float64) float64 {
	k := e.outcomeOf(z, lo, hi)
	best := math.Inf(1)
	for _, w := range e.p.Domain {
		if e.consistent(k, w) {
			best = math.Min(best, e.p.F(w))
		}
	}
	return best
}

// Estimate returns the estimator's value on the outcome S(v, u). It walks
// v's outcome chain from u = 1 down to u, accumulating the committed mass
// and deriving each interval's estimate from the ≺-minimal representative's
// v-optimal extension; results are memoized per outcome.
func (e *Estimator) Estimate(v []float64, u float64) float64 {
	if u <= 0 || u > 1 {
		panic(fmt.Sprintf("order: seed %g outside (0,1]", u))
	}
	bounds := e.p.Scheme.Boundaries() // ascending, starts at 0, ends at 1
	mass := 0.0
	for i := len(bounds) - 1; i >= 1; i-- {
		lo, hi := bounds[i-1], bounds[i]
		k := e.outcomeOf(v, lo, hi)
		key := k.key()
		est, ok := e.memo[key]
		if !ok {
			est = e.extendOptimally(k, hi, mass)
			e.memo[key] = est
		}
		if u > lo { // u falls inside this interval
			return est
		}
		mass += est * (hi - lo)
	}
	panic("order: unreachable: boundary walk exhausted")
}

// extendOptimally computes the estimate on the interval just below anchor,
// for the ≺-minimal representative z of outcome k, given the mass already
// committed above the anchor: the negated slope of the rightmost segment of
// the greatest convex minorant of f^(z) anchored at (anchor, mass).
func (e *Estimator) extendOptimally(k knowledge, anchor, mass float64) float64 {
	z := e.representative(k)
	bounds := e.p.Scheme.Boundaries()
	pts := []hull.Point{{X: 0, Y: e.p.F(z)}}
	for i := 1; i < len(bounds); i++ {
		lo, hi := bounds[i-1], bounds[i]
		if lo >= anchor {
			break
		}
		// Constraint binds at the left end of each interval: the lower
		// bound on (lo, hi] caps the cumulative estimate from lo upward.
		pts = append(pts, hull.Point{X: lo, Y: e.lowerBound(z, lo, hi)})
	}
	// The anchor is below every remaining constraint (inductively
	// mass ≤ f^(z)(anchor)); clamp float noise to keep the hull sane.
	anchorY := math.Min(mass, e.lowerBound(z, prevBoundary(bounds, anchor), anchor))
	pts = append(pts, hull.Point{X: anchor, Y: anchorY})
	h, err := hull.Lower(pts)
	if err != nil {
		panic(fmt.Sprintf("order: hull construction failed: %v", err))
	}
	n := h.Len()
	a, b := h.Breakpoint(n-2), h.Breakpoint(n-1)
	slope := (b.Y - a.Y) / (b.X - a.X)
	return math.Max(0, -slope)
}

func prevBoundary(bounds []float64, x float64) float64 {
	prev := 0.0
	for _, b := range bounds {
		if b < x {
			prev = b
		}
	}
	return prev
}

// Mean returns E[f̂ | v]: the chain-weighted sum of interval estimates.
// An exact unbiasedness check for tests and audits.
func (e *Estimator) Mean(v []float64) float64 {
	bounds := e.p.Scheme.Boundaries()
	total := 0.0
	for i := len(bounds) - 1; i >= 1; i-- {
		lo, hi := bounds[i-1], bounds[i]
		mid := lo + (hi-lo)/2
		if mid <= 0 {
			mid = hi
		}
		total += e.Estimate(v, mid) * (hi - lo)
	}
	return total
}

// Square returns E[f̂² | v], the expectation of the squared estimate.
func (e *Estimator) Square(v []float64) float64 {
	bounds := e.p.Scheme.Boundaries()
	total := 0.0
	for i := len(bounds) - 1; i >= 1; i-- {
		lo, hi := bounds[i-1], bounds[i]
		mid := lo + (hi-lo)/2
		if mid <= 0 {
			mid = hi
		}
		est := e.Estimate(v, mid)
		total += est * est * (hi - lo)
	}
	return total
}

// Variance returns Var[f̂ | v] assuming unbiasedness.
func (e *Estimator) Variance(v []float64) float64 {
	return e.Square(v) - e.p.F(v)*e.p.F(v)
}

// LessByF orders vectors by increasing f — the order whose ≺+-optimal
// estimator is L* (Theorem 4.3).
func LessByF(f func([]float64) float64) func(a, b []float64) bool {
	return func(a, b []float64) bool { return f(a) < f(b) }
}

// LessByFDesc orders vectors by decreasing f — the order whose ≺+-optimal
// estimator is U* (Lemma 6.1).
func LessByFDesc(f func([]float64) float64) func(a, b []float64) bool {
	return func(a, b []float64) bool { return f(a) > f(b) }
}
