package order

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/numeric"
)

// TestOrderOptimalThreeInstances exercises the construction beyond
// Example 5's two-entry domain: RG1 (symmetric range) over {0,1,2}³.
func TestOrderOptimalThreeInstances(t *testing.T) {
	s, err := NewScheme([]float64{1, 2}, []float64{0.3, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	f := func(v []float64) float64 {
		mn, mx := v[0], v[0]
		for _, x := range v[1:] {
			mn = math.Min(mn, x)
			mx = math.Max(mx, x)
		}
		return mx - mn
	}
	dom := GridDomain(s, 3) // 27 vectors
	for _, less := range []func(a, b []float64) bool{LessByF(f), LessByFDesc(f)} {
		e, err := New(Problem{Scheme: s, F: f, Domain: dom, Less: less})
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range dom {
			if got, want := e.Mean(v), f(v); !numeric.EqualWithin(got, want, 1e-9) {
				t.Errorf("E[f̂|%v] = %g, want %g", v, got, want)
			}
			for _, u := range []float64{0.1, 0.5, 0.9} {
				if est := e.Estimate(v, u); est < 0 {
					t.Errorf("negative estimate %g on %v at %g", est, v, u)
				}
			}
		}
	}
}

// TestOrderOptimalRandomRestrictedDomains: the construction must stay
// unbiased on arbitrary sub-domains (the data vector itself is always
// consistent, so outcomes never empty out).
func TestOrderOptimalRandomRestrictedDomains(t *testing.T) {
	s, err := NewScheme([]float64{1, 2, 3}, []float64{0.2, 0.5, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	f := func(v []float64) float64 { return math.Max(0, v[0]-v[1]) }
	full := GridDomain(s, 2)
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		var dom [][]float64
		for _, v := range full {
			if rng.Float64() < 0.6 {
				dom = append(dom, v)
			}
		}
		if len(dom) == 0 {
			continue
		}
		e, err := New(Problem{Scheme: s, F: f, Domain: dom, Less: LessByF(f)})
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range dom {
			if got, want := e.Mean(v), f(v); !numeric.EqualWithin(got, want, 1e-9) {
				t.Errorf("trial %d: E[f̂|%v] = %g, want %g", trial, v, got, want)
			}
		}
	}
}

// TestRestrictedDomainChangesEstimates: shrinking the domain adds
// information (fewer consistent vectors), so estimates may differ from the
// full-domain ones — and e.g. a domain without f = 0 vectors need not
// assign 0 to "nothing sampled" outcomes.
func TestRestrictedDomainChangesEstimates(t *testing.T) {
	s, err := NewScheme([]float64{1, 2}, []float64{0.4, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	f := func(v []float64) float64 { return math.Max(0, v[0]-v[1]) }
	// Only difference-positive vectors: every outcome implies f ≥ 1 is
	// possible... in fact f ∈ {1, 2} throughout, so even the all-unknown
	// outcome carries mass.
	dom := [][]float64{{1, 0}, {2, 0}, {2, 1}}
	e, err := New(Problem{Scheme: s, F: f, Domain: dom, Less: LessByF(f)})
	if err != nil {
		t.Fatal(err)
	}
	if est := e.Estimate([]float64{2, 0}, 0.95); est <= 0 {
		t.Errorf("all-unknown estimate = %g, want positive (domain minimum f = 1)", est)
	}
	for _, v := range dom {
		if got, want := e.Mean(v), f(v); !numeric.EqualWithin(got, want, 1e-9) {
			t.Errorf("E[f̂|%v] = %g, want %g", v, got, want)
		}
	}
}
