package order

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/hull"
	"repro/internal/numeric"
)

// example5 builds the Example 5 setting: V = {0,1,2,3}², RG1+, thresholds
// π1 < π2 < π3.
func example5(t *testing.T) (Scheme, func([]float64) float64, [][]float64) {
	t.Helper()
	s, err := NewScheme([]float64{1, 2, 3}, []float64{0.2, 0.5, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	f := func(v []float64) float64 { return math.Max(0, v[0]-v[1]) }
	return s, f, GridDomain(s, 2)
}

// diff2Less is Example 5's custom order: difference-2 vectors first, i.e.
// (3,1) ≺ (3,2) ≺ (3,0) and (2,0) ≺ (2,1). Vectors with f = 0 come last.
func diff2Less(a, b []float64) bool {
	key := func(v []float64) [2]float64 {
		d := v[0] - v[1]
		if d <= 0 {
			return [2]float64{math.Inf(1), 0}
		}
		return [2]float64{math.Abs(d - 2), d}
	}
	ka, kb := key(a), key(b)
	if ka[0] != kb[0] {
		return ka[0] < kb[0]
	}
	return ka[1] < kb[1]
}

func TestSchemeValidation(t *testing.T) {
	if _, err := NewScheme(nil, nil); err == nil {
		t.Error("empty ladder should fail")
	}
	if _, err := NewScheme([]float64{1, 1}, []float64{0.1, 0.2}); err == nil {
		t.Error("non-increasing values should fail")
	}
	if _, err := NewScheme([]float64{1, 2}, []float64{0.5, 0.2}); err == nil {
		t.Error("non-increasing probabilities should fail")
	}
	if _, err := NewScheme([]float64{1}, []float64{1.5}); err == nil {
		t.Error("probability above 1 should fail")
	}
}

func TestGridDomainSize(t *testing.T) {
	s, _, dom := example5(t)
	if len(dom) != 16 {
		t.Fatalf("domain size %d, want 16", len(dom))
	}
	if got := len(GridDomain(s, 3)); got != 64 {
		t.Fatalf("3-ary domain size %d, want 64", got)
	}
}

func TestLowerBoundTableExample5(t *testing.T) {
	// The paper's lower-bound table: RG1+^(v)(u) per interval for all v
	// with positive f.
	s, f, dom := example5(t)
	e, err := New(Problem{Scheme: s, F: f, Domain: dom, Less: LessByF(f)})
	if err != nil {
		t.Fatal(err)
	}
	// Rows: intervals (0,π1], (π1,π2], (π2,π3]; columns as in the paper.
	want := map[[2]float64][3]float64{
		{1, 0}: {1, 0, 0},
		{2, 1}: {1, 1, 0},
		{2, 0}: {2, 1, 0},
		{3, 2}: {1, 1, 1},
		{3, 1}: {2, 2, 1},
		{3, 0}: {3, 2, 1},
	}
	intervals := [][2]float64{{0, 0.2}, {0.2, 0.5}, {0.5, 0.9}}
	for v, rows := range want {
		for i, iv := range intervals {
			got := e.lowerBound([]float64{v[0], v[1]}, iv[0], iv[1])
			if got != rows[i] {
				t.Errorf("LB_(%g,%g) on (%g,%g] = %g, want %g", v[0], v[1], iv[0], iv[1], got, rows[i])
			}
		}
	}
}

func TestOrderOptimalUnbiasedAllOrders(t *testing.T) {
	s, f, dom := example5(t)
	orders := map[string]func(a, b []float64) bool{
		"LStar(f asc)":  LessByF(f),
		"UStar(f desc)": LessByFDesc(f),
		"diff2 first":   diff2Less,
	}
	for name, less := range orders {
		e, err := New(Problem{Scheme: s, F: f, Domain: dom, Less: less})
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range dom {
			if got, want := e.Mean(v), f(v); !numeric.EqualWithin(got, want, 1e-9) {
				t.Errorf("%s: E[f̂|%v] = %g, want %g", name, v, got, want)
			}
		}
	}
}

func TestOrderOptimalNonnegative(t *testing.T) {
	s, f, dom := example5(t)
	e, err := New(Problem{Scheme: s, F: f, Domain: dom, Less: diff2Less})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range dom {
		for _, u := range []float64{0.1, 0.3, 0.7, 0.95} {
			if est := e.Estimate(v, u); est < 0 {
				t.Errorf("negative estimate %g on v=%v u=%g", est, v, u)
			}
		}
	}
}

func TestLStarOrderMatchesStepFormula(t *testing.T) {
	// Theorem 4.3: the ≺+-optimal estimator for "smaller f first" is L*,
	// whose discrete form is base + Σ_{jumps b ≥ ρ} Δ/b.
	s, f, dom := example5(t)
	e, err := New(Problem{Scheme: s, F: f, Domain: dom, Less: LessByF(f)})
	if err != nil {
		t.Fatal(err)
	}
	bounds := s.Boundaries()
	for _, v := range dom {
		// Assemble the exact step lower bound of v.
		var steps []core.Step
		prev := 0.0
		for i := len(bounds) - 1; i >= 1; i-- {
			lo, hi := bounds[i-1], bounds[i]
			lb := e.lowerBound(v, lo, hi)
			if lb > prev {
				steps = append(steps, core.Step{At: hi, Delta: lb - prev})
				prev = lb
			}
		}
		for _, u := range []float64{0.1, 0.3, 0.6, 0.95} {
			want := core.LStarStep(0, steps, u)
			got := e.Estimate(v, u)
			if !numeric.EqualWithin(got, want, 1e-9) {
				t.Errorf("v=%v u=%g: order-optimal %g, L* step formula %g", v, u, got, want)
			}
		}
	}
}

// optimalSquare computes the v-optimal E[f̂²] for a vector via the greatest
// convex minorant of its discrete lower-bound function.
func optimalSquare(t *testing.T, e *Estimator, v []float64, f func([]float64) float64) float64 {
	t.Helper()
	bounds := e.p.Scheme.Boundaries()
	pts := []hull.Point{{X: 0, Y: f(v)}}
	for i := 1; i < len(bounds); i++ {
		pts = append(pts, hull.Point{X: bounds[i-1], Y: e.lowerBound(v, bounds[i-1], bounds[i])})
	}
	pts = append(pts, hull.Point{X: 1, Y: e.lowerBound(v, bounds[len(bounds)-2], 1)})
	h, err := hull.Lower(pts)
	if err != nil {
		t.Fatal(err)
	}
	return h.IntegralSquaredSlope(0, 1)
}

func TestVOptimalityPerOrderExample5(t *testing.T) {
	// The paper: the f-ascending order is v-optimal for (1,0), (2,1), (3,2);
	// the f-descending order for (1,0), (2,0), (3,0); the custom order for
	// (1,0), (2,0), (3,1).
	s, f, dom := example5(t)
	cases := []struct {
		name    string
		less    func(a, b []float64) bool
		optimal [][]float64
	}{
		{"LStar", LessByF(f), [][]float64{{1, 0}, {2, 1}, {3, 2}}},
		{"UStar", LessByFDesc(f), [][]float64{{1, 0}, {2, 0}, {3, 0}}},
		{"diff2", diff2Less, [][]float64{{1, 0}, {2, 0}, {3, 1}}},
	}
	for _, tc := range cases {
		e, err := New(Problem{Scheme: s, F: f, Domain: dom, Less: tc.less})
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range tc.optimal {
			got := e.Square(v)
			want := optimalSquare(t, e, v, f)
			if !numeric.EqualWithin(got, want, 1e-9) {
				t.Errorf("%s: E[f̂²|%v] = %g, v-optimal = %g", tc.name, v, got, want)
			}
		}
	}
}

func TestExample5DisplayedFormulas(t *testing.T) {
	// The two walkthrough formulas that pin single-interval outcomes:
	//   f̂(2,1)  = (1 − (π2−π1)·f̂(2,≤1)) / π1            on (0,π1]
	//   f̂(3,≤0) = (3 − (π3−π2)·f̂(3,≤2) − (π2−π1)·f̂(3,≤1)) / π1
	// (The paper's third display anchors f̂(3,2) at π1, but outcome (3,2)
	// spans (0, π2] and Theorem 2.1's extension spreads the remaining mass
	// evenly over it; see EXPERIMENTS.md for the discrepancy note.)
	s, f, dom := example5(t)
	pi1, pi2, pi3 := 0.2, 0.5, 0.9
	e, err := New(Problem{Scheme: s, F: f, Domain: dom, Less: diff2Less})
	if err != nil {
		t.Fatal(err)
	}
	est2le1 := e.Estimate([]float64{2, 0}, 0.3) // outcome (2,≤1) on (π1,π2]
	est21 := e.Estimate([]float64{2, 1}, 0.1)   // outcome (2,1) on (0,π1]
	if want := (1 - (pi2-pi1)*est2le1) / pi1; !numeric.EqualWithin(est21, want, 1e-9) {
		t.Errorf("f̂(2,1) = %g, want %g", est21, want)
	}
	est3le2 := e.Estimate([]float64{3, 0}, 0.7) // outcome (3,≤2) on (π2,π3]
	est3le1 := e.Estimate([]float64{3, 0}, 0.3) // outcome (3,≤1) on (π1,π2]
	est30 := e.Estimate([]float64{3, 0}, 0.1)   // outcome (3,≤0) on (0,π1]
	if want := (3 - (pi3-pi2)*est3le2 - (pi2-pi1)*est3le1) / pi1; !numeric.EqualWithin(est30, want, 1e-9) {
		t.Errorf("f̂(3,0) = %g, want %g", est30, want)
	}
	// The v-optimal-table values for the (3,1)-representative outcomes:
	// est(3,≤2) = min{2/π3, 1/(π3−π2)}.
	if want := math.Min(2/pi3, 1/(pi3-pi2)); !numeric.EqualWithin(est3le2, want, 1e-9) {
		t.Errorf("f̂(3,≤2) = %g, want %g", est3le2, want)
	}
	// est(2,≤1) under diff2 order is the (2,0)-optimal min{2/π2, 1/(π2−π1)}.
	if want := math.Min(2/pi2, 1/(pi2-pi1)); !numeric.EqualWithin(est2le1, want, 1e-9) {
		t.Errorf("f̂(2,≤1) = %g, want %g", est2le1, want)
	}
}

func TestExample5Vector32Extension(t *testing.T) {
	// Outcome (3,2) spans (π1,π2] and (0,π1]; the Theorem 2.1 extension
	// from anchor (π2, M) is the chord of the convex minorant — constant —
	// so both intervals carry (f(3,2) − M)/π2 = (1 − M)/π2 where
	// M = (π3−π2)·f̂(3,≤2). (The paper's walkthrough displays
	// "(2 − (π3−π2)f̂(3,≤2))/π1" for this outcome, which cannot satisfy
	// unbiasedness for (3,2) with f(3,2)=1; see EXPERIMENTS.md.)
	s, f, dom := example5(t)
	pi2, pi3 := 0.5, 0.9
	e, err := New(Problem{Scheme: s, F: f, Domain: dom, Less: diff2Less})
	if err != nil {
		t.Fatal(err)
	}
	m := (pi3 - pi2) * e.Estimate([]float64{3, 2}, 0.7)
	want := (1 - m) / pi2
	for _, u := range []float64{0.1, 0.3} {
		if got := e.Estimate([]float64{3, 2}, u); !numeric.EqualWithin(got, want, 1e-9) {
			t.Errorf("f̂(3,2) at u=%g = %g, want %g", u, got, want)
		}
	}
}

func TestUStarOrderBoundedEstimates(t *testing.T) {
	// The f-descending order should produce the U*-style estimator; its
	// largest estimate is pinned by the most-informative outcomes rather
	// than small inclusion probabilities, hence bounded by f_max/π1.
	s, f, dom := example5(t)
	e, err := New(Problem{Scheme: s, F: f, Domain: dom, Less: LessByFDesc(f)})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range dom {
		for _, u := range []float64{0.1, 0.3, 0.7, 0.95} {
			if est := e.Estimate(v, u); est > 3/0.2+1e-9 {
				t.Errorf("estimate %g on v=%v u=%g exceeds f_max/π1", est, v, u)
			}
		}
	}
}

func TestEstimatesZeroOnZeroConsistentOutcomes(t *testing.T) {
	// Any outcome consistent with an f=0 vector forces estimate 0
	// (unbiasedness + nonnegativity), for every order.
	s, f, dom := example5(t)
	for _, less := range []func(a, b []float64) bool{LessByF(f), LessByFDesc(f), diff2Less} {
		e, err := New(Problem{Scheme: s, F: f, Domain: dom, Less: less})
		if err != nil {
			t.Fatal(err)
		}
		// u > π2: nothing about v=(2,0) is known, outcome consistent with 0.
		if est := e.Estimate([]float64{2, 0}, 0.7); est != 0 {
			t.Errorf("estimate %g on zero-consistent outcome, want 0", est)
		}
		// v=(2,2): f = 0 everywhere on its chain.
		for _, u := range []float64{0.1, 0.4, 0.8} {
			if est := e.Estimate([]float64{2, 2}, u); est != 0 {
				t.Errorf("estimate %g on v=(2,2) u=%g, want 0", est, u)
			}
		}
	}
}

func TestNewValidation(t *testing.T) {
	s, f, dom := example5(t)
	if _, err := New(Problem{Scheme: s, F: f, Domain: nil, Less: diff2Less}); err == nil {
		t.Error("empty domain should fail")
	}
	bad := append([][]float64{}, dom...)
	bad = append(bad, []float64{1, 7}) // 7 not on ladder
	if _, err := New(Problem{Scheme: s, F: f, Domain: bad, Less: diff2Less}); err == nil {
		t.Error("off-ladder value should fail")
	}
	ragged := [][]float64{{1, 2}, {1}}
	if _, err := New(Problem{Scheme: s, F: f, Domain: ragged, Less: diff2Less}); err == nil {
		t.Error("ragged domain should fail")
	}
}

func TestEstimatePanicsOutsideDomain(t *testing.T) {
	s, f, dom := example5(t)
	e, err := New(Problem{Scheme: s, F: f, Domain: dom, Less: diff2Less})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for seed 0")
		}
	}()
	e.Estimate([]float64{1, 0}, 0)
}
