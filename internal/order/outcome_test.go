package order

import (
	"math"
	"testing"
)

// outcomeOfVector computes the estimator-visible outcome of v at seed u
// under the scheme: entry i is known iff π(v_i) ≥ u.
func outcomeOfVector(t *testing.T, s Scheme, v []float64, u float64) ([]bool, []float64) {
	t.Helper()
	known := make([]bool, len(v))
	vals := make([]float64, len(v))
	for i, x := range v {
		pi, err := s.Pi(x)
		if err != nil {
			t.Fatal(err)
		}
		if pi >= u {
			known[i] = true
			vals[i] = x
		}
	}
	return known, vals
}

// TestEstimateOutcomeMatchesEstimate walks every Example 5 domain vector
// through every outcome interval under all three orders and asserts the
// outcome-only evaluation agrees exactly with the data-vector evaluation —
// the serving path (which never sees v) must reproduce the batch
// estimator's numbers bit-for-bit.
func TestEstimateOutcomeMatchesEstimate(t *testing.T) {
	s, f, dom := example5(t)
	for _, tc := range []struct {
		name string
		less func(a, b []float64) bool
	}{
		{"asc", LessByF(f)},
		{"desc", LessByFDesc(f)},
		{"diff2", diff2Less},
	} {
		t.Run(tc.name, func(t *testing.T) {
			est, err := New(Problem{Scheme: s, F: f, Domain: dom, Less: tc.less})
			if err != nil {
				t.Fatal(err)
			}
			bounds := s.Boundaries()
			for _, v := range dom {
				for i := 1; i < len(bounds); i++ {
					// One seed strictly inside the interval and one at its
					// top boundary.
					for _, u := range []float64{bounds[i-1] + (bounds[i]-bounds[i-1])/3, bounds[i]} {
						want := est.Estimate(v, u)
						known, vals := outcomeOfVector(t, s, v, u)
						got, err := est.EstimateOutcome(known, vals, u)
						if err != nil {
							t.Fatalf("v=%v u=%g: %v", v, u, err)
						}
						if got != want {
							t.Errorf("v=%v u=%g: EstimateOutcome=%v, Estimate=%v", v, u, got, want)
						}
					}
				}
			}
		})
	}
}

// TestEstimateOutcomeSharedMemo interleaves data-vector and outcome-only
// evaluations on one estimator: the shared memo must stay consistent.
func TestEstimateOutcomeSharedMemo(t *testing.T) {
	s, f, dom := example5(t)
	est, err := New(Problem{Scheme: s, F: f, Domain: dom, Less: diff2Less})
	if err != nil {
		t.Fatal(err)
	}
	v := []float64{3, 1}
	u := 0.3
	want := est.Estimate(v, u) // primes the memo
	known, vals := outcomeOfVector(t, s, v, u)
	got, err := est.EstimateOutcome(known, vals, u)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("memoized EstimateOutcome=%v, Estimate=%v", got, want)
	}
}

func TestEstimateOutcomeRejectsBadInputs(t *testing.T) {
	s, f, dom := example5(t)
	est, err := New(Problem{Scheme: s, F: f, Domain: dom, Less: LessByF(f)})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name  string
		known []bool
		vals  []float64
		u     float64
	}{
		{"arity", []bool{true}, []float64{1}, 0.5},
		{"seed zero", []bool{false, false}, []float64{0, 0}, 0},
		{"seed above one", []bool{false, false}, []float64{0, 0}, 1.5},
		{"seed nan", []bool{false, false}, []float64{0, 0}, math.NaN()},
		{"off-ladder value", []bool{true, false}, []float64{1.5, 0}, 0.1},
		// π(1) = 0.2 < 0.5: value 1 cannot be known at seed 0.5.
		{"unknowable value", []bool{true, false}, []float64{1, 0}, 0.5},
	} {
		if _, err := est.EstimateOutcome(tc.known, tc.vals, tc.u); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
}
