package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/numeric"
)

func TestHTUnbiasedAndVariance(t *testing.T) {
	// v=(0.6,0.2), RG1+: f(v)=0.4 revealed iff both sampled, i.e. u ≤ 0.2.
	est, err := HT(0.4, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if got := MeanOf(est); !numeric.EqualWithin(got, 0.4, 1e-8) {
		t.Errorf("E[HT] = %g, want 0.4", got)
	}
	if got, want := SquareOf(est), HTSquare(0.4, 0.2); !numeric.EqualWithin(got, want, 1e-8) {
		t.Errorf("E[HT²] = %g, want %g", got, want)
	}
	if got := est(0.2); got != 2 {
		t.Errorf("HT(0.2) = %g, want 2", got)
	}
	if got := est(0.21); got != 0 {
		t.Errorf("HT(0.21) = %g, want 0", got)
	}
}

func TestHTInapplicableOnZeroReveal(t *testing.T) {
	// Paper Section 1: estimating the range of (0.5, 0) under PPS has zero
	// probability of revealing f(v); HT does not exist.
	if _, err := HT(0.5, 0); !errors.Is(err, ErrHTInapplicable) {
		t.Errorf("HT(0.5, 0) error = %v, want ErrHTInapplicable", err)
	}
	if math.IsInf(HTSquare(0.5, 0), 1) == false {
		t.Error("HTSquare with zero reveal should be +Inf")
	}
	// Zero value is fine: the all-zero estimator.
	est, err := HT(0, 0)
	if err != nil {
		t.Fatalf("HT(0,0) error: %v", err)
	}
	if est(0.5) != 0 {
		t.Error("HT(0,0) should be identically zero")
	}
}

func TestLStarDominatesHT(t *testing.T) {
	// Theorem 4.2 corollary: L* dominates every monotone estimator,
	// including HT. Compare E[f̂²] on a grid of data vectors.
	for _, v := range [][2]float64{{0.6, 0.2}, {0.9, 0.5}, {0.4, 0.1}, {0.99, 0.01}} {
		v1, v2 := v[0], v[1]
		lb := rg1pLB(v1, v2)
		lsq := SquareOf(LStarSeed(lb))
		hsq := HTSquare(v1-v2, v2) // reveal prob = v2 under PPS τ*=1
		if lsq > hsq+1e-6 {
			t.Errorf("v=(%g,%g): E[L*²]=%g > E[HT²]=%g", v1, v2, lsq, hsq)
		}
	}
}

func TestDyadicUnbiasedOnSmoothLB(t *testing.T) {
	tests := []struct {
		name  string
		lb    LowerBoundFunc
		value float64
	}{
		{"rg1p (0.6,0)", rg1pLB(0.6, 0), 0.6},
		{"linear", func(u float64) float64 { return 1 - u }, 1},
		{"convex power", func(u float64) float64 { return (1 - math.Sqrt(u)) * 2 }, 2},
		{"constant base", func(u float64) float64 { return 0.5 }, 0.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			est := Dyadic(tt.lb)
			if got := MeanOf(est); !numeric.EqualWithin(got, tt.value, 1e-3) {
				t.Errorf("E[dyadic] = %g, want %g", got, tt.value)
			}
			for _, u := range []float64{0.01, 0.1, 0.4, 0.9} {
				if est(u) < 0 {
					t.Errorf("dyadic(%g) negative", u)
				}
			}
		})
	}
}

func TestDyadicBoundedOnLipschitzLB(t *testing.T) {
	// lb with slope bounded by 1 ⇒ dyadic estimates bounded by 2 + base.
	est := Dyadic(func(u float64) float64 { return 1 - u })
	for _, u := range numeric.Linspace(0.001, 1, 200) {
		if e := est(u); e > 2+1e-6 {
			t.Errorf("dyadic(%g) = %g exceeds Lipschitz bound 2", u, e)
		}
	}
}

func TestDyadicCompetitiveOnConvexLB(t *testing.T) {
	// On a convex lower bound the dyadic baseline should be O(1)
	// competitive; we assert a loose factor (it is far worse than L*'s 4 in
	// general, matching the paper's remark about the J estimator's 84).
	lb := rg1pLB(0.6, 0)
	opt, err := OptimalSquare(lb, 0.6, Grid{Breaks: []float64{0.6}})
	if err != nil {
		t.Fatal(err)
	}
	sq := SquareOf(Dyadic(lb))
	if ratio := sq / opt; ratio > 90 {
		t.Errorf("dyadic ratio = %g, want O(1) (≤ 90)", ratio)
	}
}

func TestVOptimalHullExample3(t *testing.T) {
	// Example 3 (p=1): for v=(0.6,0.2) the v-optimal estimate is constant
	// 2/3 on (0, 0.6] (hull is the chord from (0, 0.4) to (0.6, 0)); for
	// v=(0.6,0) the lower bound equals its hull and the estimate is 1.
	vopt1, sq1, err := VOptimal(rg1pLB(0.6, 0.2), 0.4, Grid{Breaks: []float64{0.2, 0.6}})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []float64{0.1, 0.3, 0.55} {
		if got := vopt1(u); !numeric.EqualWithin(got, 2.0/3, 1e-3) {
			t.Errorf("vopt(0.6,0.2)(%g) = %g, want 2/3", u, got)
		}
	}
	if want := 4.0 / 15; !numeric.EqualWithin(sq1, want, 1e-3) {
		t.Errorf("optimal square = %g, want %g", sq1, want)
	}

	vopt2, sq2, err := VOptimal(rg1pLB(0.6, 0), 0.6, Grid{Breaks: []float64{0.6}})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []float64{0.1, 0.3, 0.55} {
		if got := vopt2(u); !numeric.EqualWithin(got, 1, 1e-3) {
			t.Errorf("vopt(0.6,0)(%g) = %g, want 1", u, got)
		}
	}
	if !numeric.EqualWithin(sq2, 0.6, 1e-3) {
		t.Errorf("optimal square = %g, want 0.6", sq2)
	}
}

func TestVOptimalDiffersAcrossConsistentVectors(t *testing.T) {
	// Example 3's point: for u ∈ (0.2, 0.6] the outcomes of (0.6,0.2) and
	// (0.6,0) coincide but their v-optimal estimates differ (2/3 vs 1), so
	// no estimator minimizes variance on both simultaneously.
	voptA, _, _ := VOptimal(rg1pLB(0.6, 0.2), 0.4, Grid{Breaks: []float64{0.2, 0.6}})
	voptB, _, _ := VOptimal(rg1pLB(0.6, 0), 0.6, Grid{Breaks: []float64{0.6}})
	if a, b := voptA(0.4), voptB(0.4); math.Abs(a-b) < 0.1 {
		t.Errorf("v-optimal estimates should differ at u=0.4: %g vs %g", a, b)
	}
}

func TestCompetitiveRatioAtLStarUnderFour(t *testing.T) {
	// Theorem 4.1: the L* ratio is at most 4 for any instance.
	for _, v := range [][2]float64{{0.6, 0.2}, {0.6, 0}, {0.9, 0.85}, {1, 0}} {
		lb := rg1pLB(v[0], v[1])
		r, err := CompetitiveRatioAt(LStarSeed(lb), lb, v[0]-v[1], Grid{Breaks: []float64{v[1], v[0]}})
		if err != nil {
			t.Fatal(err)
		}
		if ratio := r.Value(); ratio > 4+1e-3 || ratio < 1-1e-3 {
			t.Errorf("v=%v: L* ratio = %g, want in [1, 4]", v, ratio)
		}
	}
}

func TestCheckEstimable(t *testing.T) {
	if err := CheckEstimable(rg1pLB(0.6, 0.2), 0.4); err != nil {
		t.Errorf("estimable instance flagged: %v", err)
	}
	// A lower bound stuck at 0 cannot support an unbiased nonnegative
	// estimator of a positive value (condition (9) fails).
	if err := CheckEstimable(func(u float64) float64 { return 0 }, 1); !errors.Is(err, ErrNotEstimable) {
		t.Errorf("want ErrNotEstimable, got %v", err)
	}
	if err := CheckEstimable(func(u float64) float64 { return 0 }, 0); err != nil {
		t.Errorf("zero value is always estimable: %v", err)
	}
}

func TestRatioValueEdgeCases(t *testing.T) {
	if got := (Ratio{Square: 0, OptSquare: 0}).Value(); got != 1 {
		t.Errorf("0/0 ratio = %g, want 1", got)
	}
	if got := (Ratio{Square: 1, OptSquare: 0}).Value(); !math.IsInf(got, 1) {
		t.Errorf("1/0 ratio = %g, want +Inf", got)
	}
	if got := (Ratio{Square: 2, OptSquare: 1}).Value(); got != 2 {
		t.Errorf("ratio = %g, want 2", got)
	}
}
