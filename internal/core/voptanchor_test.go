package core

import (
	"testing"

	"repro/internal/numeric"
)

func TestVOptimalAnchorsAtZeroMass(t *testing.T) {
	// Two-point domain {a, b} under PPS, f(v) = v: the lower bound of data
	// b is a on (b, 1] and b on (0, b]. The v-optimal estimator must anchor
	// at (1, 0) — not at (1, lb(1)) — so its mean is f(b), and its square
	// is (b−a)²/b + a²/(1−b) from the two hull chords.
	// Two regimes: when a ≥ b(1−b) the chord from (0,b) to (1,0) stays
	// below the (b, a) constraint and the optimum is the constant b
	// (square b²); when a < b(1−b) the constraint binds and the hull has
	// two chords with square (b−a)²/b + a²/(1−b).
	for _, tc := range []struct{ a, b float64 }{{0.3, 0.6}, {0.15, 0.6}} {
		a, b := tc.a, tc.b
		lb := func(u float64) float64 {
			if u > b {
				return a
			}
			return b
		}
		vopt, sq, err := VOptimal(lb, b, Grid{Breaks: []float64{b}})
		if err != nil {
			t.Fatal(err)
		}
		if got := MeanOf(vopt); !numeric.EqualWithin(got, b, 1e-3) {
			t.Errorf("a=%g b=%g: E[vopt] = %g, want %g", a, b, got, b)
		}
		want := b * b
		if a < b*(1-b) {
			want = (b-a)*(b-a)/b + a*a/(1-b)
		}
		if !numeric.EqualWithin(sq, want, 1e-3) {
			t.Errorf("a=%g b=%g: optimal square = %g, want %g", a, b, sq, want)
		}
	}
}
