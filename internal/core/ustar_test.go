package core

import (
	"math"
	"testing"

	"repro/internal/numeric"
)

// rg1pFamily hand-rolls the ConsistentFamily for RG1+ under coordinated PPS
// with τ*=1 and data vector (v1, v2), v1 ≥ v2. Consistent vectors at seed ρ:
//   - ρ ≤ v2: both entries known, z = v.
//   - v2 < ρ ≤ v1: z = (v1, z2) with z2 ∈ [0, ρ).
//   - ρ > v1: z = (z1, z2) with z1, z2 ∈ [0, ρ).
//
// The family sweeps the unknown entries over a small grid including the
// f-extremal assignments (z2 = 0 maximizes f; z1 small minimizes it).
func rg1pFamily(v1, v2 float64) ConsistentFamily {
	const sweep = 9
	return func(rho float64) []LowerBoundFunc {
		var fams []LowerBoundFunc
		add := func(z1, z2 float64) {
			fams = append(fams, rg1pLB(z1, z2))
		}
		switch {
		case rho <= v2:
			add(v1, v2)
		case rho <= v1:
			for i := 0; i < sweep; i++ {
				add(v1, rho*float64(i)/sweep)
			}
		default:
			// z1 sweeps toward ρ but stays clear of the 2^-48 sliver the
			// inner minimizer cannot resolve; λ is continuous in z1 here.
			for i := 0; i <= sweep; i++ {
				add(rho*(1-1e-9)*float64(i)/sweep, 0)
			}
		}
		return fams
	}
}

func TestUStarMatchesClosedFormRG1Plus(t *testing.T) {
	// Example 4 (p=1 ≥ 1): U* = p·(v1−u)^{p−1} = 1 on (v2, v1], and 0 for
	// u ≤ v2 < v1 as well as u > v1.
	tests := []struct {
		name   string
		v1, v2 float64
	}{
		{"v2 positive", 0.6, 0.2},
		{"v2 zero", 0.6, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			fam := rg1pFamily(tt.v1, tt.v2)
			ustar := UStarCurve(fam, Grid{N: 800, Breaks: []float64{tt.v2, tt.v1}})
			for _, u := range []float64{0.65, 0.8, 1} {
				if got := ustar(u); math.Abs(got) > 2e-2 {
					t.Errorf("U*(%g) = %g, want 0", u, got)
				}
			}
			for _, u := range []float64{tt.v2 + 0.05, 0.4, 0.55} {
				if got := ustar(u); math.Abs(got-1) > 5e-2 {
					t.Errorf("U*(%g) = %g, want 1", u, got)
				}
			}
			if tt.v2 > 0 {
				for _, u := range []float64{0.05, 0.15} {
					if got := ustar(u); math.Abs(got) > 5e-2 {
						t.Errorf("U*(%g) = %g, want 0 (u ≤ v2)", u, got)
					}
				}
			}
		})
	}
}

func TestUStarUnbiasedRG1Plus(t *testing.T) {
	tests := []struct {
		v1, v2 float64
	}{
		{0.6, 0.2}, {0.6, 0}, {0.9, 0.5},
	}
	for _, tt := range tests {
		fam := rg1pFamily(tt.v1, tt.v2)
		ustar := UStarCurve(fam, Grid{N: 1200, Breaks: []float64{tt.v2, tt.v1}})
		got := numeric.Integrate(numeric.Func1(ustar), 1e-7, 1)
		want := tt.v1 - tt.v2
		if math.Abs(got-want) > 2e-2 {
			t.Errorf("v=(%g,%g): E[U*] = %g, want %g", tt.v1, tt.v2, got, want)
		}
	}
}

func TestUStarIsVOptimalOnZeroSecondEntry(t *testing.T) {
	// Example 4: when v2 = 0, the U* estimates are v-optimal. For p=1 the
	// v-optimal estimator for (v1, 0) is constant 1 on (0, v1].
	v1 := 0.6
	fam := rg1pFamily(v1, 0)
	ustar := UStarCurve(fam, Grid{N: 800, Breaks: []float64{v1}})
	vopt, optSq, err := VOptimal(rg1pLB(v1, 0), v1, Grid{Breaks: []float64{v1}})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []float64{0.05, 0.2, 0.4, 0.55} {
		if got, want := ustar(u), vopt(u); math.Abs(got-want) > 5e-2 {
			t.Errorf("U*(%g) = %g, v-optimal = %g", u, got, want)
		}
	}
	if got := SquareOf(ustar); math.Abs(got-optSq) > 3e-2 {
		t.Errorf("E[(U*)²] = %g, optimal = %g", got, optSq)
	}
}

func TestLambdaLAndRangeOrdering(t *testing.T) {
	// λL ≤ λU at every outcome, with M from the L* estimator.
	lb := rg1pLB(0.6, 0.2)
	fam := rg1pFamily(0.6, 0.2)
	for _, rho := range []float64{0.05, 0.15, 0.3, 0.5, 0.7} {
		m := LStarCumulative(lb, rho)
		lo := LambdaL(lb, rho, m)
		hi := LambdaU(fam, rho, m)
		if lo > hi+1e-6 {
			t.Errorf("rho=%g: λL=%g > λU=%g", rho, lo, hi)
		}
	}
}

func TestLStarIsInRange(t *testing.T) {
	// Section 3: L* solves (21a) with equality, so it must lie in the
	// optimal range everywhere.
	lb := rg1pLB(0.6, 0.2)
	fam := rg1pFamily(0.6, 0.2)
	est := LStarSeed(lb)
	rep := CheckInRange(est, lb, fam, []float64{0.05, 0.15, 0.3, 0.45, 0.55, 0.7, 0.9})
	if !rep.OK(1e-4) {
		t.Errorf("L* out of optimal range: %+v", rep)
	}
}

func TestUStarIsInRange(t *testing.T) {
	// Seeds stay ≥ 0.25: λL = (lb−M)/ρ amplifies the solver's O(Δu²) mass
	// error by 1/ρ, so tiny seeds test the discretization, not the math.
	fam := rg1pFamily(0.6, 0.2)
	lb := rg1pLB(0.6, 0.2)
	ustar := UStarCurve(fam, Grid{N: 1200, Breaks: []float64{0.2, 0.6}})
	rep := CheckInRange(ustar, lb, fam, []float64{0.25, 0.3, 0.45, 0.55, 0.7})
	if !rep.OK(5e-2) {
		t.Errorf("U* out of optimal range: %+v", rep)
	}
}
