package core

import (
	"fmt"
	"math"

	"repro/internal/hull"
	"repro/internal/numeric"
)

// LStarAt evaluates the L* estimator on the outcome with seed rho, given the
// lower-bound function of the data vector (formula (31) of the paper):
//
//	fˆ(L)(ρ) = f^(v)(ρ)/ρ − ∫_ρ^1 f^(v)(x)/x² dx.
//
// Only lb values at arguments ≥ rho are consulted, which is exactly the
// information the outcome provides. The result is computed with adaptive
// quadrature; use funcs' closed forms when exactness matters.
func LStarAt(lb LowerBoundFunc, rho float64) float64 {
	if rho <= 0 || rho > 1 {
		panic(fmt.Sprintf("core: LStarAt seed %g outside (0,1]", rho))
	}
	head := lb(rho) / rho
	if head == 0 {
		// lb is nonnegative and non-increasing, so lb ≡ 0 on [rho, 1].
		return 0
	}
	tail := numeric.Integrate(func(x float64) float64 { return lb(x) / (x * x) }, rho, 1)
	// Nonnegativity holds analytically (Section 4); clamp quadrature noise.
	return math.Max(0, head-tail)
}

// LStarStep evaluates L* exactly for a step-shaped lower-bound function:
// each jump of height Δ at position b ≥ ρ contributes Δ/b, and the base
// value lb(1) contributes itself (footnote 3 of the paper):
//
//	fˆ(L)(ρ) = base + Σ_{b_j ≥ ρ} Δ_j / b_j.
//
// This is the workhorse for discrete schemes (HIP-threshold sampling in the
// similarity application, discrete domains in the order package).
func LStarStep(base float64, steps []Step, rho float64) float64 {
	est := base
	for _, s := range steps {
		if s.At >= rho {
			est += s.Delta / s.At
		}
	}
	return est
}

// LStarCurve tabulates the L* estimator on the grid and returns it as a
// piecewise-linear SeedFunc for cheap repeated evaluation (variance and
// ratio integrals). The cumulative integral ∫_u^1 lb(x)/x² dx is accumulated
// segment-by-segment to avoid re-integration per point.
func LStarCurve(lb LowerBoundFunc, g Grid) SeedFunc {
	us := g.Points()
	n := len(us)
	ys := make([]float64, n)
	// tail[i] = ∫_{us[i]}^1 lb/x²; accumulate from the right.
	tail := 0.0
	for i := n - 1; i >= 0; i-- {
		if i < n-1 {
			seg, _ := numeric.IntegrateOpt(func(x float64) float64 { return lb(x) / (x * x) },
				us[i], us[i+1], numeric.QuadOptions{AbsTol: 1e-12, RelTol: 1e-10, MaxDepth: 24})
			tail += seg
		}
		ys[i] = math.Max(0, lb(us[i])/us[i]-tail)
	}
	pl, err := hull.FromBreakpoints(us, ys)
	if err != nil {
		// Grid points are strictly increasing by construction.
		panic(fmt.Sprintf("core: internal grid error: %v", err))
	}
	eps := us[0]
	return func(u float64) float64 {
		switch {
		case u <= 0 || u > 1:
			return 0
		case u < eps:
			// Extrapolate with the exact formula below the grid: rare path.
			return LStarAt(lb, u)
		default:
			return math.Max(0, pl.Eval(u))
		}
	}
}

// LStarSeed returns the L* estimator as an exact SeedFunc: each evaluation
// performs one adaptive quadrature. Prefer LStarCurve when the estimator is
// evaluated many times and interpolation accuracy suffices; prefer LStarSeed
// inside variance/ratio integrals that probe u → 0 where tabulation cannot
// reach.
func LStarSeed(lb LowerBoundFunc) SeedFunc {
	return func(u float64) float64 {
		if u <= 0 || u > 1 {
			return 0
		}
		return LStarAt(lb, u)
	}
}

// LStarCumulative returns M(ρ) = ∫_ρ^1 fˆ(L)(x) dx in closed form. By the
// defining equation (30), ρ·fˆ(L)(ρ) + M(ρ) = f^(v)(ρ), so
// M(ρ) = f^(v)(ρ) − ρ·fˆ(L)(ρ). Useful for in-range checks.
func LStarCumulative(lb LowerBoundFunc, rho float64) float64 {
	return lb(rho) - rho*LStarAt(lb, rho)
}
