package core

import (
	"fmt"
	"math"

	"repro/internal/hull"
	"repro/internal/numeric"
)

// ConsistentFamily returns representative lower-bound functions f^(z) of
// data vectors z consistent with the outcome at seed rho (i.e. z ∈ S*).
//
// The U* estimator (Section 6) solves equation (48):
//
//	fˆ(U)(ρ) = sup_{z∈S*} inf_{0≤η<ρ} ( f^(z)(η) − M(ρ) ) / (ρ − η),
//
// with M(ρ) = ∫_ρ^1 fˆ(U). The inner infimum is the z-optimal estimate at ρ
// anchored at (ρ, M) — the negated slope of z's anchored lower hull — and
// the outer supremum ranges over consistent vectors. Note the order: the
// sup of infima is NOT the infimum of the upper envelope; they differ on
// outcomes consistent with vectors of smaller f whose lower-bound functions
// collapse before ρ (Example 4's u > v1 outcomes, where U* must be 0).
//
// Implementations should include (a) the f-minimal consistent vector, which
// pins the solution to the optimal range, and (b) the f-maximal vectors (or
// a parameter sweep approaching them), which realize the supremum under the
// paper's condition (49). Families are finite; for tuple functions a small
// per-unknown-entry parameter grid suffices.
type ConsistentFamily func(rho float64) []LowerBoundFunc

// UStarCurve solves the U* integral equation by backward integration from
// u = 1 on the grid, returning the estimator as a SeedFunc. Nonnegativity
// is enforced (the analytic solution is nonnegative whenever the family
// contains the f-minimal vector; clamping removes discretization noise).
func UStarCurve(fam ConsistentFamily, g Grid) SeedFunc {
	us := g.Points()
	ys := solveUStar(fam, us)
	pl, err := hull.FromBreakpoints(us, ys)
	if err != nil {
		panic(fmt.Sprintf("core: internal grid error: %v", err))
	}
	eps := us[0]
	firstY := ys[0]
	return func(u float64) float64 {
		switch {
		case u <= 0 || u > 1:
			return 0
		case u < eps:
			// U* is bounded under the paper's conditions; hold the last value.
			return firstY
		default:
			return math.Max(0, pl.Eval(u))
		}
	}
}

// UStarAt solves the U* equation over [rho, 1] only and returns the
// estimate at rho — the per-outcome evaluation path, where the mass M(ρ)
// accumulates over the chain of less-informative outcomes of the same
// sample.
func UStarAt(fam ConsistentFamily, rho float64, g Grid) float64 {
	if rho >= 1 {
		return uStarPoint(fam, 1, 0)
	}
	pts := g.Points()
	us := make([]float64, 0, len(pts)+1)
	us = append(us, rho)
	for _, u := range pts {
		if u > rho {
			us = append(us, u)
		}
	}
	ys := solveUStar(fam, us)
	return ys[0]
}

// solveUStar integrates the defining equation backward from us[len-1]
// (which should be 1) down to us[0], returning the estimate at each grid
// point. M(1) = 0.
//
// The accumulated mass is capped at the outcome lower bound (the minimum of
// the family members' lower bounds): constraint (7) requires
// M(x) ≤ f^(z)(x) for every consistent z, and on domains extending above
// the sampling threshold the raw equation (48) would overdraw (see
// funcs.RGPlus.UStarClosed). While the cap binds, the effective estimate is
// the boundary slope rather than the equation's value.
func solveUStar(fam ConsistentFamily, us []float64) []float64 {
	lbAt := func(u float64) float64 {
		best := math.Inf(1)
		for _, lbz := range fam(u) {
			if v := lbz(u); v < best {
				best = v
			}
		}
		return best
	}
	// point evaluates the equation with the mass clamped to the outcome
	// lower bound. While the mass rides the bound (M(x) = lb(x), which the
	// analytic solution does on whole stretches, and which overdrawing
	// instances are forced onto), the sup-inf with the clamped mass
	// automatically returns the boundary derivative — λ(ρ, z, lb(ρ)) is
	// the tangent slope of z's lower bound at ρ.
	point := func(u, m float64) float64 {
		if limit := lbAt(u); m > limit {
			m = limit
		}
		return uStarPoint(fam, u, m)
	}
	n := len(us)
	ys := make([]float64, n)
	m := 0.0 // M(u) accumulated from 1 downward
	for i := n - 1; i >= 0; i-- {
		u := us[i]
		ys[i] = point(u, m)
		if i > 0 {
			// Accumulate the mass over [us[i-1], us[i]] in trapezoid
			// sub-steps: the estimator feeds back into its own defining
			// equation through M, so integration bias compounds and the
			// extra resolution pays for itself (λL amplifies M error by
			// 1/ρ at small seeds).
			const sub = 4
			h := (u - us[i-1]) / sub
			prev := ys[i]
			for k := 1; k <= sub; k++ {
				x := u - float64(k)*h
				next := point(x, m)
				m += 0.5 * (prev + next) * h
				// Constraint (7): clamp to the outcome lower bound; the
				// analytic solution satisfies this, so the clamp only
				// removes integration drift or the equation's overdraw
				// above the sampling threshold.
				if limit := lbAt(x); m > limit {
					m = limit
				}
				prev = next
			}
		}
	}
	return ys
}

// uStarPoint computes sup_z inf_η (f^(z)(η) − M)/(ρ−η) over the family,
// clamped to 0.
func uStarPoint(fam ConsistentFamily, rho, m float64) float64 {
	best := 0.0
	for _, lbz := range fam(rho) {
		if lam := lambdaOf(lbz, rho, m); lam > best {
			best = lam
		}
	}
	return best
}

// lambdaOf computes λ(ρ, z, M) = inf_{0≤η<ρ} (f^(z)(η) − M)/(ρ−η): the
// z-optimal estimate at ρ given mass M (equation (17)). Two numerical
// defenses keep it robust:
//
//   - M is clamped to f^(z)(ρ). Analytically M(ρ) ≤ f^(z)(ρ) for every
//     consistent z (constraint (7) applied to z), so the clamp only removes
//     integration drift — drift that would otherwise be amplified by
//     1/(ρ−η) near the anchor and make the backward solver chatter. For
//     members whose true λ is negative the clamp floors it at ~0, which is
//     harmless: U* and λU take a maximum with 0 anyway.
//   - The infimum is often attained in a narrow window just below ρ (where
//     f^(z) collapses for vectors barely consistent with the outcome), so a
//     geometric approach to ρ down to an absolute gap of ~1e-12 is scanned
//     in addition to a golden-section search over the interior. Family
//     discontinuities within ~1e-11 of ρ are below that resolution;
//     implementations should keep parameter sweeps away from the sliver
//     (the sup is continuous in the parameters, so nothing is lost).
func lambdaOf(lbz LowerBoundFunc, rho, m float64) float64 {
	atRho := lbz(rho)
	if m > atRho {
		m = atRho
	}
	obj := func(eta float64) float64 {
		return (lbz(eta) - m) / (rho - eta)
	}
	// Chord gaps below ~1e-12 drown in the cancellation noise of the
	// numerator (lbz values are O(1), so their difference carries ~1e-16 of
	// ulp error); stop the approach there.
	minGap := math.Max(rho*1e-14, 1e-12)
	best := obj(0)
	for gap := rho / 2; gap >= minGap; gap /= 2 {
		if v := obj(rho - gap); v < best {
			best = v
		}
	}
	if hi := rho - math.Max(rho*1e-9, minGap); hi > 0 {
		if _, fx := numeric.MinimizeGolden(obj, 0, hi, rho*1e-10); fx < best {
			best = fx
		}
	}
	return best
}

// LambdaL returns the lower end of the optimal range at an outcome with
// seed rho, given the mass M committed on less-informative outcomes
// (equation (19)): λL = (f^(v)(ρ) − M)/ρ.
func LambdaL(lb LowerBoundFunc, rho, m float64) float64 {
	return (lb(rho) - m) / rho
}

// LambdaU returns the upper end of the optimal range at an outcome with
// seed rho (equation (18)): sup over consistent vectors of their optimal
// estimates given M.
func LambdaU(fam ConsistentFamily, rho, m float64) float64 {
	best := math.Inf(-1)
	for _, lbz := range fam(rho) {
		if lam := lambdaOf(lbz, rho, m); lam > best {
			best = lam
		}
	}
	return best
}

// InRangeReport holds the worst violations found by CheckInRange.
type InRangeReport struct {
	// MaxBelow is the largest amount by which the estimate fell below λL.
	MaxBelow float64
	// MaxAbove is the largest amount by which the estimate exceeded λU.
	MaxAbove float64
}

// OK reports whether the estimator stayed within the optimal range up to
// tolerance tol.
func (r InRangeReport) OK(tol float64) bool {
	return r.MaxBelow <= tol && r.MaxAbove <= tol
}

// CheckInRange samples seeds and verifies the in-range condition (20):
// λL(S) ≤ f̂(S) ≤ λU(S), which Section 3 proves necessary for admissibility
// and sufficient for unbiasedness+nonnegativity. M(ρ) is computed from the
// estimator itself by quadrature.
func CheckInRange(est SeedFunc, lb LowerBoundFunc, fam ConsistentFamily, seeds []float64) InRangeReport {
	var rep InRangeReport
	for _, rho := range seeds {
		if rho <= 0 || rho > 1 {
			continue
		}
		m := numeric.Integrate(numeric.Func1(est), rho, 1)
		lo := LambdaL(lb, rho, m)
		hi := LambdaU(fam, rho, m)
		e := est(rho)
		if d := lo - e; d > rep.MaxBelow {
			rep.MaxBelow = d
		}
		if d := e - hi; d > rep.MaxAbove {
			rep.MaxAbove = d
		}
	}
	return rep
}
