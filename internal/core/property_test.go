package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/numeric"
)

// randomInstance draws a random step lower-bound function — an arbitrary
// discrete monotone estimation instance.
func randomInstance(rng *rand.Rand) ([]Step, LowerBoundFunc, float64) {
	n := 1 + rng.Intn(6)
	steps := make([]Step, n)
	for i := range steps {
		steps[i] = Step{At: 0.02 + 0.98*rng.Float64(), Delta: 0.05 + rng.Float64()}
	}
	base := 0.0
	if rng.Intn(2) == 0 {
		base = rng.Float64()
	}
	lb := StepLB(base, steps)
	value := lb(1e-15)
	return steps, lb, value
}

func TestLStarPropertyUnbiasedOnRandomInstances(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		steps, lb, value := randomInstance(rng)
		base := lb(1)
		est := func(u float64) float64 {
			if u <= 0 || u > 1 {
				return 0
			}
			return LStarStep(base, filterBelowOne(steps), u)
		}
		mean := MeanOf(est)
		return numeric.EqualWithin(mean, value, 1e-6)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// filterBelowOne drops steps at exactly 1 (they merge into the base value).
func filterBelowOne(steps []Step) []Step {
	out := make([]Step, 0, len(steps))
	for _, s := range steps {
		if s.At < 1 {
			out = append(out, s)
		}
	}
	return out
}

func TestLStarPropertyMonotoneOnRandomInstances(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		steps, lb, _ := randomInstance(rng)
		base := lb(1)
		prev := math.Inf(1)
		for _, u := range numeric.Linspace(0.01, 1, 80) {
			e := LStarStep(base, filterBelowOne(steps), u)
			if e > prev+1e-9 {
				return false
			}
			prev = e
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLStarPropertyCompetitiveOnRandomInstances(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		steps, lb, value := randomInstance(rng)
		base := lb(1)
		est := func(u float64) float64 {
			if u <= 0 || u > 1 {
				return 0
			}
			return LStarStep(base, filterBelowOne(steps), u)
		}
		breaks := make([]float64, 0, len(steps))
		for _, s := range steps {
			breaks = append(breaks, s.At)
		}
		r, err := CompetitiveRatioAt(est, lb, value, Grid{Breaks: breaks})
		if err != nil {
			return false
		}
		ratio := r.Value()
		return ratio >= 1-1e-3 && ratio <= 4+1e-2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestLStarPropertySatisfiesCumulativeConstraint(t *testing.T) {
	// Constraint (7): ∫_u^1 f̂ ≤ f^(v)(u) for all u — necessary for any
	// nonnegative unbiased estimator, and tight for L* at every point
	// (equation (30)).
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		steps, lb, _ := randomInstance(rng)
		base := lb(1)
		for _, u := range []float64{0.05, 0.2, 0.5, 0.8} {
			m := numeric.Integrate(func(x float64) float64 {
				return LStarStep(base, filterBelowOne(steps), x)
			}, u, 1)
			if m > lb(u)+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestVOptimalHullBelowLBProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		steps, lb, value := randomInstance(rng)
		breaks := make([]float64, 0, len(steps))
		for _, s := range steps {
			breaks = append(breaks, s.At)
		}
		h, err := VOptimalHull(lb, value, Grid{N: 200, Breaks: breaks})
		if err != nil {
			return false
		}
		if !h.IsConvex(1e-9) {
			return false
		}
		for _, u := range numeric.Linspace(0.01, 0.999, 60) {
			if h.Eval(u) > lb(u)+1e-9*(1+value) {
				return false
			}
		}
		// Anchored at (0, value) and (1, 0).
		return numeric.EqualWithin(h.Eval(0), value, 1e-9) && math.Abs(h.Eval(1)) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDyadicPropertyUnbiasedOnSmoothInstances(t *testing.T) {
	// Random smooth lower bounds lb(u) = c·(1 − u^q) with q ≥ 1: the
	// dyadic estimator differentiates lb numerically, so exponents below 1
	// (unbounded derivative at 0) would drown the evaluation quadrature in
	// finite-difference noise — a limitation of the baseline, not of the
	// paper's estimators.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := 0.2 + 2*rng.Float64()
		q := 1 + 2*rng.Float64()
		lb := func(u float64) float64 { return c * (1 - math.Pow(u, q)) }
		est := Dyadic(lb)
		return numeric.EqualWithin(MeanOf(est), c, 5e-3)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
