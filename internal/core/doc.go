// Package core implements the estimator constructions of
//
//	Edith Cohen, "Estimation for Monotone Sampling: Competitiveness and
//	Customization", PODC 2014 (arXiv:1212.0243).
//
// A monotone estimation problem presents an estimator with an outcome
// S(v, u): the data vector v was sampled with seed u ~ U(0,1], and smaller
// seeds give more information. Everything an unbiased nonnegative estimator
// may use is captured by the lower-bound function
//
//	f^(v)(x) = inf { f(z) : z consistent with the outcome at seed x },
//
// which the outcome at seed u determines for all x ≥ u. Estimators here are
// therefore functions of (lb, u) where lb is the lower-bound function; they
// only evaluate lb at arguments ≥ u, which keeps them honest (computable
// from the outcome alone).
//
// Implemented estimators:
//
//   - L* (Section 4): fˆ(ρ) = f^(v)(ρ)/ρ − ∫_ρ^1 f^(v)(x)/x² dx. Unbiased,
//     nonnegative, 4-competitive (tight), monotone, the unique admissible
//     monotone estimator, dominates Horvitz–Thompson, and ≺+-optimal for
//     the order "smaller f first".
//   - U* (Section 6): the upper extreme of the optimal range, computed by
//     backward integration of its defining integral equation using the
//     upper envelope sup_{z∈S*} f^(z)(η). ≺+-optimal for "larger f first"
//     under the paper's condition (49).
//   - v-optimal oracle (Theorem 2.1): negated slopes of the greatest convex
//     minorant of f^(v); gives the per-data variance optimum that defines
//     competitiveness.
//   - Horvitz–Thompson: inverse-probability on revealing outcomes.
//   - Dyadic: a J-style O(1)-competitive bounded baseline (see DESIGN.md
//     §4.2 for the substitution note).
//
// The optimal range [λL, λU] of Section 3 is exposed for admissibility
// checks, and evaluation helpers compute expectations, variances and
// competitive ratios by quadrature over the seed.
package core
