package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/hull"
	"repro/internal/numeric"
)

// LowerBoundFunc is the lower-bound function f^(v) of a monotone estimation
// problem for a fixed data vector: non-increasing, left-continuous on (0,1],
// nonnegative, with lim_{u→0+} f^(v)(u) = f(v) whenever an unbiased
// nonnegative estimator exists (condition (9) of the paper).
type LowerBoundFunc func(u float64) float64

// SeedFunc is an estimator evaluated for a fixed data vector as a function
// of the seed: u ↦ f̂(S(v,u)). All statistical evaluation (unbiasedness,
// variance, competitiveness) integrates SeedFuncs over u ∈ (0,1].
type SeedFunc func(u float64) float64

// ErrNotEstimable reports that no unbiased nonnegative estimator exists for
// the data vector: the lower bound does not converge to the target value
// (condition (9) fails).
var ErrNotEstimable = errors.New("core: no unbiased nonnegative estimator exists (condition (9) fails)")

// CheckEstimable verifies condition (9) numerically: lb(u) → value as
// u → 0+. It returns ErrNotEstimable (wrapped) when the limit falls short.
func CheckEstimable(lb LowerBoundFunc, value float64) error {
	if value == 0 {
		return nil
	}
	u := 1e-3
	for i := 0; i < 60; i++ {
		if lb(u) >= value*(1-1e-9)-1e-12 {
			return nil
		}
		u /= 4
	}
	return fmt.Errorf("lb(%g)=%g short of f(v)=%g: %w", u, lb(u), value, ErrNotEstimable)
}

// Step describes one jump of a step-shaped lower-bound function: moving the
// seed downward across At, the lower bound increases by Delta (> 0).
type Step struct {
	At    float64
	Delta float64
}

// StepLB builds the lower-bound function with the given jumps and base value
// lb(1). Steps may be in any order; At must lie in (0, 1].
func StepLB(base float64, steps []Step) LowerBoundFunc {
	ss := make([]Step, len(steps))
	copy(ss, steps)
	sort.Slice(ss, func(i, j int) bool { return ss[i].At < ss[j].At })
	return func(u float64) float64 {
		v := base
		for _, s := range ss {
			if u <= s.At {
				v += s.Delta
			}
		}
		return v
	}
}

// DefaultGrid is the serving-path grid shared by every U*/v-optimal
// evaluation that aggregates over many outcomes (dataset sums, the
// estimator registry): coarse enough to keep per-item cost low, and
// justified against finer grids by ablation_test.go. Single-outcome
// analyses that need the full resolution pass Grid{} instead.
func DefaultGrid() Grid { return Grid{N: 200} }

// Grid controls the discretization used by curve builders and hull-based
// optima. The zero value selects sensible defaults.
type Grid struct {
	// Eps is the smallest seed represented; mass below Eps is extrapolated.
	// Default 1e-7.
	Eps float64
	// N is the number of geometrically spaced points. Default 1600.
	N int
	// Breaks are exact discontinuity/kink locations of the lower-bound
	// function, added to the grid together with points just above them so
	// that jumps are resolved exactly.
	Breaks []float64
}

func (g Grid) withDefaults() Grid {
	if g.Eps <= 0 {
		g.Eps = 1e-7
	}
	if g.N < 16 {
		g.N = 1600
	}
	return g
}

// Points materializes the grid on (0,1]: geometric spacing plus breakpoints
// and their right neighbors, sorted ascending, deduplicated, ending at 1.
func (g Grid) Points() []float64 {
	g = g.withDefaults()
	pts := numeric.Geomspace(g.Eps, 1, g.N)
	for _, b := range g.Breaks {
		if b > g.Eps && b < 1 {
			pts = append(pts, b, math.Nextafter(b, 2), b*(1+1e-9))
		}
	}
	sort.Float64s(pts)
	uniq := pts[:1]
	for _, x := range pts[1:] {
		if x != uniq[len(uniq)-1] {
			uniq = append(uniq, x)
		}
	}
	return uniq
}

// VOptimalHull returns the greatest convex minorant of the lower-bound
// function on [0,1], pinned at (0, value) where value = f(v). Its negated
// left-slope at u is the v-optimal estimate (Theorem 2.1), and its
// IntegralSquaredSlope(0,1) is the minimum attainable E[f̂²|v].
func VOptimalHull(lb LowerBoundFunc, value float64, g Grid) (hull.PiecewiseLinear, error) {
	us := g.Points()
	pts := make([]hull.Point, 0, len(us)+2)
	pts = append(pts, hull.Point{X: 0, Y: value})
	for _, u := range us {
		pts = append(pts, hull.Point{X: u, Y: lb(u)})
	}
	// Theorem 2.1 anchors the hull at (ρv, M) = (1, 0): when lb(1) > 0 the
	// anchor sits strictly below the constraint there (hull.Lower keeps the
	// lower of duplicate-x points).
	pts = append(pts, hull.Point{X: 1, Y: 0})
	h, err := hull.Lower(pts)
	if err != nil {
		return hull.PiecewiseLinear{}, fmt.Errorf("v-optimal hull: %w", err)
	}
	return h, nil
}

// VOptimal returns the v-optimal oracle estimator (minimum variance for this
// particular data vector among unbiased nonnegative estimators) as a
// SeedFunc, together with its E[f̂²].
func VOptimal(lb LowerBoundFunc, value float64, g Grid) (SeedFunc, float64, error) {
	h, err := VOptimalHull(lb, value, g)
	if err != nil {
		return nil, 0, err
	}
	est := func(u float64) float64 {
		if u <= 0 || u > 1 {
			return 0
		}
		return math.Max(0, -h.SlopeLeft(u))
	}
	return est, h.IntegralSquaredSlope(0, 1), nil
}

// OptimalSquare returns the minimum attainable E[f̂²|v] over unbiased
// nonnegative estimators — the denominator of the competitive ratio.
func OptimalSquare(lb LowerBoundFunc, value float64, g Grid) (float64, error) {
	h, err := VOptimalHull(lb, value, g)
	if err != nil {
		return 0, err
	}
	return h.IntegralSquaredSlope(0, 1), nil
}
