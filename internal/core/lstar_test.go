package core

import (
	"math"
	"testing"

	"repro/internal/numeric"
)

// rg1pLB returns the lower-bound function for RG1+(v1,v2)=max(0,v1-v2)
// under coordinated PPS with τ* = 1 (Example 3 of the paper):
// f^(v)(u) = max(0, v1·1[v1≥u] − max(v2, u)).
func rg1pLB(v1, v2 float64) LowerBoundFunc {
	return func(u float64) float64 {
		known := v1
		if v1 < u {
			known = 0
		}
		return math.Max(0, known-math.Max(v2, u))
	}
}

// rg1pLStarClosed is the paper's closed-form L* estimate for RG1+ under PPS
// τ*=1 (Example 4, specialized to p=1): ln(v1/max(v2,u)) for u ≤ v1.
func rg1pLStarClosed(v1, v2, u float64) float64 {
	if u > v1 {
		return 0
	}
	return math.Log(v1 / math.Max(v2, u))
}

func TestLStarMatchesClosedFormRG1Plus(t *testing.T) {
	tests := []struct {
		name   string
		v1, v2 float64
	}{
		{"both positive", 0.6, 0.2},
		{"zero second entry", 0.6, 0},
		{"near equal", 0.5, 0.45},
		{"full range", 1.0, 0.1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			lb := rg1pLB(tt.v1, tt.v2)
			for _, u := range []float64{0.01, 0.05, 0.15, 0.25, 0.5, 0.61, 0.8, 1} {
				got := LStarAt(lb, u)
				want := rg1pLStarClosed(tt.v1, tt.v2, u)
				if !numeric.EqualWithin(got, want, 1e-6) {
					t.Errorf("LStarAt(u=%g) = %g, want %g", u, got, want)
				}
			}
		})
	}
}

func TestLStarUnbiasedRG1Plus(t *testing.T) {
	tests := []struct {
		v1, v2 float64
	}{
		{0.6, 0.2}, {0.6, 0}, {0.9, 0.5}, {0.3, 0.29}, {1, 0},
	}
	for _, tt := range tests {
		lb := rg1pLB(tt.v1, tt.v2)
		got := MeanOf(LStarSeed(lb))
		want := tt.v1 - tt.v2
		if !numeric.EqualWithin(got, want, 1e-4) {
			t.Errorf("v=(%g,%g): E[L*] = %g, want %g", tt.v1, tt.v2, got, want)
		}
	}
}

func TestLStarMonotoneInSeed(t *testing.T) {
	// Theorem 4.2: fixing the data, the L* estimate is non-increasing in u.
	lb := rg1pLB(0.6, 0.2)
	prev := math.Inf(1)
	for _, u := range numeric.Geomspace(1e-4, 1, 60) {
		e := LStarAt(lb, u)
		if e > prev+1e-9 {
			t.Fatalf("L* increased with u at %g: %g > %g", u, e, prev)
		}
		prev = e
	}
}

func TestLStarNonnegativeAndZeroOnZeroConsistentOutcomes(t *testing.T) {
	lb := rg1pLB(0.6, 0.2)
	for _, u := range []float64{0.61, 0.7, 0.9, 1} {
		if e := LStarAt(lb, u); e != 0 {
			t.Errorf("L*(%g) = %g, want 0 (outcome consistent with f=0)", u, e)
		}
	}
	for _, u := range []float64{0.001, 0.1, 0.3, 0.59} {
		if e := LStarAt(lb, u); e < 0 {
			t.Errorf("L*(%g) = %g, negative", u, e)
		}
	}
}

func TestLStarCurveAgreesWithPointEvaluation(t *testing.T) {
	lb := rg1pLB(0.6, 0.2)
	curve := LStarCurve(lb, Grid{Breaks: []float64{0.2, 0.6}})
	for _, u := range []float64{0.01, 0.1, 0.2, 0.3, 0.45, 0.6, 0.75, 1} {
		if got, want := curve(u), LStarAt(lb, u); !numeric.EqualWithin(got, want, 1e-4) {
			t.Errorf("curve(%g) = %g, want %g", u, got, want)
		}
	}
}

func TestLStarSquareClosedForm(t *testing.T) {
	// For v = (0.6, 0.2): E[(L*)²] = 0.8 − 0.4·ln3 (derived by hand from
	// the closed form ln(v1/max(v2,u))).
	lb := rg1pLB(0.6, 0.2)
	want := 0.8 - 0.4*math.Log(3)
	got := SquareOf(LStarSeed(lb))
	if !numeric.EqualWithin(got, want, 1e-4) {
		t.Errorf("E[(L*)²] = %g, want %g", got, want)
	}
}

func TestLStarCumulativeIdentity(t *testing.T) {
	// (30): ρ·fˆ(ρ) + M(ρ) = f^(v)(ρ).
	lb := rg1pLB(0.6, 0.2)
	for _, rho := range []float64{0.1, 0.2, 0.35, 0.6, 0.9} {
		m := LStarCumulative(lb, rho)
		direct := numeric.Integrate(func(u float64) float64 { return LStarAt(lb, u) }, rho, 1)
		if !numeric.EqualWithin(m, direct, 1e-4) {
			t.Errorf("rho=%g: closed-form M = %g, quadrature M = %g", rho, m, direct)
		}
	}
}

func TestLStarStepAgainstGenericFormula(t *testing.T) {
	steps := []Step{{At: 0.5, Delta: 1}, {At: 0.25, Delta: 0.5}, {At: 0.1, Delta: 2}}
	lb := StepLB(0.2, steps)
	for _, rho := range []float64{0.05, 0.1, 0.2, 0.3, 0.6, 1} {
		exact := LStarStep(0.2, steps, rho)
		quad := LStarAt(lb, rho)
		if !numeric.EqualWithin(exact, quad, 1e-5) {
			t.Errorf("rho=%g: LStarStep = %g, LStarAt = %g", rho, exact, quad)
		}
	}
	// Unbiasedness of the exact step form: Σ over jumps of Δ·(b/b) + base.
	est := func(u float64) float64 { return LStarStep(0.2, steps, u) }
	if got, want := MeanOf(est), 0.2+1+0.5+2; !numeric.EqualWithin(got, want, 1e-6) {
		t.Errorf("E[step L*] = %g, want %g", got, want)
	}
}

func TestLStarBaseValueHandledWithoutStepAtOne(t *testing.T) {
	// lb(1) > 0 (footnote 3 of the paper): formula (31) handles the base
	// value without special-casing. lb ≡ c gives fˆ ≡ c.
	lb := func(u float64) float64 { return 0.7 }
	for _, u := range []float64{0.1, 0.5, 1} {
		if got := LStarAt(lb, u); !numeric.EqualWithin(got, 0.7, 1e-8) {
			t.Errorf("constant lb: L*(%g) = %g, want 0.7", u, got)
		}
	}
}

func TestLStarTightnessFamilyClosedForm(t *testing.T) {
	// Theorem 4.1 family: f(v) = (1−v^{1−p})/(1−p), PPS τ(u)=u, data v=0.
	// lb(u) = (1−u^{1−p})/(1−p); closed form L*(x) = (1/p)(x^{−p} − 1).
	for _, p := range []float64{0.1, 0.25, 0.4, 0.45} {
		lb := func(u float64) float64 { return (1 - math.Pow(u, 1-p)) / (1 - p) }
		for _, x := range []float64{0.01, 0.1, 0.5, 0.9} {
			got := LStarAt(lb, x)
			want := (math.Pow(x, -p) - 1) / p
			if !numeric.EqualWithin(got, want, 1e-5) {
				t.Errorf("p=%g x=%g: L* = %g, want %g", p, x, got, want)
			}
		}
	}
}

func TestLStarCompetitiveRatioTightnessFamily(t *testing.T) {
	// Ratio should equal 2/(1−p) exactly for this family and approach 4.
	for _, p := range []float64{0.1, 0.25, 0.4, 0.45} {
		lstar := func(x float64) float64 {
			if x <= 0 || x > 1 {
				return 0
			}
			return (math.Pow(x, -p) - 1) / p
		}
		vopt := func(x float64) float64 {
			if x <= 0 || x > 1 {
				return 0
			}
			return math.Pow(x, -p)
		}
		ratio := SquareOf(lstar) / SquareOf(vopt)
		want := 2 / (1 - p)
		if !numeric.EqualWithin(ratio, want, 1e-3) {
			t.Errorf("p=%g: ratio = %g, want %g", p, ratio, want)
		}
		if ratio > 4+1e-6 {
			t.Errorf("p=%g: ratio %g exceeds 4", p, ratio)
		}
	}
}

func TestLStarAtPanicsOutsideDomain(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for seed outside (0,1]")
		}
	}()
	LStarAt(func(u float64) float64 { return 0 }, 0)
}
