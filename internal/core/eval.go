package core

import (
	"math"

	"repro/internal/numeric"
)

// MeanOf computes E[f̂|v] = ∫_0^1 est(u) du by quadrature. For an unbiased
// estimator this equals f(v).
func MeanOf(est SeedFunc) float64 {
	v, _ := numeric.IntegrateToZero(numeric.Func1(est), 1, numeric.QuadOptions{AbsTol: 1e-11})
	return v
}

// SquareOf computes E[f̂²|v] = ∫_0^1 est(u)² du by quadrature, tolerating
// integrable blow-ups near u = 0 (the L* estimator is unbounded on some
// inputs yet has finite variance).
func SquareOf(est SeedFunc) float64 {
	v, _ := numeric.IntegrateToZero(func(u float64) float64 {
		e := est(u)
		return e * e
	}, 1, numeric.QuadOptions{AbsTol: 1e-11})
	return v
}

// VarianceOf computes Var[f̂|v] for an unbiased estimator of value:
// E[f̂²] − value² (equation (16)).
func VarianceOf(est SeedFunc, value float64) float64 {
	return SquareOf(est) - value*value
}

// CumulativeFrom computes M(ρ) = ∫_ρ^1 est(u) du.
func CumulativeFrom(est SeedFunc, rho float64) float64 {
	return numeric.Integrate(numeric.Func1(est), rho, 1)
}

// Ratio holds a competitive-ratio measurement for one data vector.
type Ratio struct {
	// Square is E[f̂²] of the measured estimator.
	Square float64
	// OptSquare is the v-optimal minimum of E[f̂²].
	OptSquare float64
}

// Value returns Square/OptSquare, the per-data competitive ratio. It is
// +Inf when the optimum is 0 but the estimator's square is positive, and 1
// when both vanish.
func (r Ratio) Value() float64 {
	if r.OptSquare <= 0 {
		if r.Square <= 1e-12 {
			return 1
		}
		return math.Inf(1)
	}
	return r.Square / r.OptSquare
}

// CompetitiveRatioAt measures the ratio of the estimator's E[f̂²] to the
// v-optimal minimum for the data vector whose lower-bound function is lb
// and whose true value is value.
func CompetitiveRatioAt(est SeedFunc, lb LowerBoundFunc, value float64, g Grid) (Ratio, error) {
	opt, err := OptimalSquare(lb, value, g)
	if err != nil {
		return Ratio{}, err
	}
	return Ratio{Square: SquareOf(est), OptSquare: opt}, nil
}
