package core

import (
	"errors"
	"math"
)

// ErrHTInapplicable reports that the Horvitz–Thompson estimator does not
// exist for the data vector: the probability of an outcome revealing f(v)
// is zero (for example v = (0.5, 0) when estimating the range under
// coordinated PPS — the paper's Section 1 example).
var ErrHTInapplicable = errors.New("core: Horvitz-Thompson inapplicable (zero revelation probability)")

// HT returns the Horvitz–Thompson estimator as a SeedFunc for a problem
// where the outcome at seed u reveals f(v) exactly iff u ≤ reveal: the
// estimate is f(v)/reveal on revealing outcomes and 0 otherwise.
//
// HT is unbiased, nonnegative, and monotone, but it discards partial
// information; Theorem 4.2 implies it is dominated by L*.
func HT(value, reveal float64) (SeedFunc, error) {
	if reveal <= 0 {
		if value == 0 {
			// f(v)=0 forces the all-zero estimator, which is fine.
			return func(float64) float64 { return 0 }, nil
		}
		return nil, ErrHTInapplicable
	}
	inv := value / reveal
	return func(u float64) float64 {
		if u > 0 && u <= reveal {
			return inv
		}
		return 0
	}, nil
}

// HTSquare returns E[f̂²] of the HT estimator: value²/reveal.
func HTSquare(value, reveal float64) float64 {
	if reveal <= 0 {
		if value == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return value * value / reveal
}

// Dyadic returns the dyadic-delay baseline estimator: the cumulative
// estimate at seed ρ equals lb(2ρ) − lb(1), i.e. the estimator "pays out"
// the lower bound learned one octave ago, plus the constant lb(1) which is
// known with certainty (footnote 3 of the paper). Differentiating,
//
//	fˆ(ρ) = −2·lb'(2ρ) + lb(1)   (lb extended by lb(1) above u = 1).
//
// It is unbiased and nonnegative for any lower-bound function, bounded
// whenever lb has bounded one-sided derivatives, and O(1)-competitive on
// convex lower bounds. It stands in for the J estimator of [15]; see
// DESIGN.md §4.2. The derivative is taken numerically, so lb should be
// continuous (use the estimator only on continuous-domain problems).
func Dyadic(lb LowerBoundFunc) SeedFunc {
	base := lb(1)
	ext := func(x float64) float64 {
		if x >= 1 {
			return base
		}
		return lb(x)
	}
	return func(u float64) float64 {
		if u <= 0 || u > 1 {
			return 0
		}
		x := 2 * u
		h := math.Min(math.Max(1e-9, x*1e-7), x/2)
		// One-sided difference from the left keeps lb evaluations at
		// arguments ≥ x − h ≥ u for small h, preserving honesty up to the
		// numeric step; capping h at x/2 keeps arguments positive.
		d := (ext(x-h) - ext(x)) / h
		return math.Max(0, 2*d+base)
	}
}
