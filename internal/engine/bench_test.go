package engine

import (
	"fmt"
	"testing"

	"repro/internal/dataset"
	"repro/internal/estreg"
	"repro/internal/funcs"
	"repro/internal/sampling"
)

// benchUpdates precomputes a deterministic heavy-tailed update stream so
// the benchmarks measure the engine, not the generator.
func benchUpdates(n int) []Update {
	d := dataset.Flows(dataset.FlowsConfig{N: n, Seed: 1})
	updates := make([]Update, 0, 2*n)
	for i := 0; i < d.R(); i++ {
		for k := 0; k < d.N(); k++ {
			if d.W[i][k] > 0 {
				updates = append(updates, Update{Instance: i, Key: uint64(k), Weight: d.W[i][k]})
			}
		}
	}
	return updates
}

func newBenchEngine(b *testing.B, k int) *Engine {
	b.Helper()
	e, err := New(Config{Instances: 2, K: k, Shards: 16, Hash: sampling.NewSeedHash(1)})
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// BenchmarkIngest measures single-update throughput on one goroutine.
func BenchmarkIngest(b *testing.B) {
	updates := benchUpdates(1 << 16)
	e := newBenchEngine(b, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := updates[i%len(updates)]
		if err := e.Ingest(u.Instance, u.Key, u.Weight); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIngestParallel measures lock-striped throughput under parallel
// writers (the server's ingest path).
func BenchmarkIngestParallel(b *testing.B) {
	updates := benchUpdates(1 << 16)
	e := newBenchEngine(b, 64)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			u := updates[i%len(updates)]
			i++
			if err := e.Ingest(u.Instance, u.Key, u.Weight); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkIngestBatch measures the batched path (one lock per shard per
// batch of 256).
func BenchmarkIngestBatch(b *testing.B) {
	updates := benchUpdates(1 << 16)
	e := newBenchEngine(b, 64)
	const batch = 256
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := (i * batch) % len(updates)
		hi := lo + batch
		if hi > len(updates) {
			hi = len(updates)
		}
		if err := e.IngestBatch(updates[lo:hi]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(batch), "updates/op")
}

// BenchmarkSnapshot measures the cold sketch → outcomes reduction: the
// partition state is dropped every iteration, so each Snapshot() pays the
// full cut + reduce + merge (the incremental path is benchmarked
// separately by BenchmarkSnapshotIncremental).
func BenchmarkSnapshot(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 16} {
		b.Run(fmt.Sprintf("keys=%d", n), func(b *testing.B) {
			e := newBenchEngine(b, 64)
			if err := e.IngestBatch(benchUpdates(n)); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.resetSnapshotState()
				_ = e.Snapshot()
			}
		})
	}
}

// BenchmarkSnapshotIncremental measures the tentpole path: one key in one
// shard mutates between snapshots, so a rebuild re-reduces a single
// partition and reuses the other 15. The base variant takes the serving
// path (FreshView — no merged-array materialization, what the HTTP layer
// consumes); "merged" additionally materializes the full Snapshot;
// "newkey" ingests a never-seen key instead, forcing a merge-plan rebuild
// on top.
func BenchmarkSnapshotIncremental(b *testing.B) {
	for _, n := range []int{1 << 14, 1 << 16} {
		// Strictly growing weight on a fixed key: every ingest is a real
		// mutation confined to one shard.
		b.Run(fmt.Sprintf("keys=%d", n), func(b *testing.B) {
			e := newBenchEngine(b, 64)
			if err := e.IngestBatch(benchUpdates(n)); err != nil {
				b.Fatal(err)
			}
			_ = e.FreshView()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := e.Ingest(0, 12345, 1e6+float64(i)); err != nil {
					b.Fatal(err)
				}
				_ = e.FreshView()
			}
		})
		b.Run(fmt.Sprintf("keys=%d-merged", n), func(b *testing.B) {
			e := newBenchEngine(b, 64)
			if err := e.IngestBatch(benchUpdates(n)); err != nil {
				b.Fatal(err)
			}
			_ = e.Snapshot()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := e.Ingest(0, 12345, 1e6+float64(i)); err != nil {
					b.Fatal(err)
				}
				_ = e.Snapshot()
			}
		})
		b.Run(fmt.Sprintf("keys=%d-newkey", n), func(b *testing.B) {
			e := newBenchEngine(b, 64)
			if err := e.IngestBatch(benchUpdates(n)); err != nil {
				b.Fatal(err)
			}
			_ = e.FreshView()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := e.Ingest(0, uint64(n+i), 1); err != nil {
					b.Fatal(err)
				}
				_ = e.FreshView()
			}
		})
	}
}

// BenchmarkSnapshotArena measures one fresh arena reduction at the query
// benchmarks' scale (16k keys): the floor a cache-missing read pays. The
// arena pipeline backs all outcome slices with two shared arrays and
// interns the repeated tau-vectors, so allocs/op stays O(1) in the item
// count.
func BenchmarkSnapshotArena(b *testing.B) {
	e := newBenchEngine(b, 64)
	if err := e.IngestBatch(benchUpdates(1 << 14)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.resetSnapshotState()
		_ = e.Snapshot()
	}
}

// BenchmarkSnapshotCached measures the steady-state read path: no ingest
// intervenes, so every call is an atomic cache load plus a lock-free
// version check — zero shard locks, zero reduction, zero allocations.
func BenchmarkSnapshotCached(b *testing.B) {
	e := newBenchEngine(b, 64)
	if err := e.IngestBatch(benchUpdates(1 << 14)); err != nil {
		b.Fatal(err)
	}
	if snap, _ := e.CachedSnapshot(0); len(snap.Keys) == 0 {
		b.Fatal("empty snapshot")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if snap, _ := e.CachedSnapshot(0); len(snap.Keys) == 0 {
			b.Fatal("empty snapshot")
		}
	}
}

// BenchmarkQuerySum measures end-to-end query latency: snapshot plus an
// L* sum estimate, the hot path of GET /v1/estimate/sum.
func BenchmarkQuerySum(b *testing.B) {
	e := newBenchEngine(b, 64)
	if err := e.IngestBatch(benchUpdates(1 << 14)); err != nil {
		b.Fatal(err)
	}
	f, err := funcs.NewRG(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.resetSnapshotState()
		snap := e.Snapshot()
		if _, err := snap.Sample.EstimateSum(f, dataset.KindLStar, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotSharedByEstimators measures the batched-query engine
// pattern: ONE snapshot (consistent cut + conditional-threshold reduction)
// reused by several registry estimators, versus re-snapshotting per
// estimator as the sequential alias endpoints would.
func BenchmarkSnapshotSharedByEstimators(b *testing.B) {
	e := newBenchEngine(b, 64)
	if err := e.IngestBatch(benchUpdates(1 << 14)); err != nil {
		b.Fatal(err)
	}
	f, err := funcs.NewRG(1)
	if err != nil {
		b.Fatal(err)
	}
	reg := estreg.Default()
	var ests []estreg.Estimator
	for _, name := range []string{"lstar", "ht"} {
		est, _, err := reg.Build(name, f, 2)
		if err != nil {
			b.Fatal(err)
		}
		ests = append(ests, est)
	}
	// Both variants reset the partition state before each Snapshot() so the
	// comparison keeps its original meaning (full reductions, shared vs
	// per-estimator) now that an unchanged engine serves snapshots from
	// cache.
	b.Run("shared", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.resetSnapshotState()
			snap := e.Snapshot()
			for _, est := range ests {
				if _, err := estreg.Sum(est, snap.Sample.Outcomes, nil); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("resnapshot", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, est := range ests {
				e.resetSnapshotState()
				snap := e.Snapshot()
				if _, err := estreg.Sum(est, snap.Sample.Outcomes, nil); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkQueryJaccard measures snapshot plus the Jaccard ratio estimate.
func BenchmarkQueryJaccard(b *testing.B) {
	e := newBenchEngine(b, 64)
	if err := e.IngestBatch(benchUpdates(1 << 14)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.resetSnapshotState()
		snap := e.Snapshot()
		_ = funcs.JaccardEstimate(snap.Sample.Outcomes)
	}
}
