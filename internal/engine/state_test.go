package engine

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/sampling"
)

func testConfig(shards int) Config {
	return Config{Instances: 3, K: 8, Shards: shards, Hash: sampling.NewSeedHash(7)}
}

func randomUpdates(rng *rand.Rand, n, instances, keyspace int) []Update {
	ups := make([]Update, n)
	for i := range ups {
		ups[i] = Update{
			Instance: rng.Intn(instances),
			Key:      uint64(rng.Intn(keyspace)),
			Weight:   rng.Float64() * 10,
		}
	}
	return ups
}

func fillRandom(t *testing.T, e *Engine, seed int64, n int) []Update {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ups := randomUpdates(rng, n, e.Config().Instances, 200)
	if err := e.IngestBatch(ups); err != nil {
		t.Fatal(err)
	}
	return ups
}

func TestDumpRestoreRoundTrip(t *testing.T) {
	src, err := New(testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	fillRandom(t, src, 1, 5000)
	st := src.DumpState()

	dst, err := New(testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dst.Snapshot(), src.Snapshot()) {
		t.Fatal("restored snapshot differs from source")
	}
	// A re-dump must be byte-equal in every field: same sorted keys and
	// masks, same retained entries, preserved counters — the property the
	// /v1/export comparison across a clean restart rests on.
	if !reflect.DeepEqual(dst.DumpState(), st) {
		t.Fatal("re-dumped state differs from the original dump")
	}
	ss, ds := src.Stats(), dst.Stats()
	if ds.Ingests != ss.Ingests || ds.Version != ss.Version {
		t.Fatalf("counters not preserved: src ingests=%d version=%d, dst ingests=%d version=%d",
			ss.Ingests, ss.Version, ds.Ingests, ds.Version)
	}
	if ds.Keys != ss.Keys || ds.ActiveEntries != ss.ActiveEntries || ds.RetainedEntries != ss.RetainedEntries {
		t.Fatalf("contents not preserved: src %+v dst %+v", ss, ds)
	}
}

func TestRestoreAcrossShardCounts(t *testing.T) {
	src, err := New(testConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	fillRandom(t, src, 2, 5000)
	st := src.DumpState()

	dst, err := New(testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	// Snapshot semantics survive re-sharding: the global bottom-(k+1) per
	// instance is retained in every layout.
	if !reflect.DeepEqual(dst.Snapshot(), src.Snapshot()) {
		t.Fatal("snapshot differs after restore into a different shard count")
	}
}

func TestRestoreRequiresEmptyAndCompatible(t *testing.T) {
	src, _ := New(testConfig(2))
	fillRandom(t, src, 3, 100)
	st := src.DumpState()

	dirty, _ := New(testConfig(2))
	fillRandom(t, dirty, 4, 10)
	if err := dirty.RestoreState(st); err == nil {
		t.Error("restore into a non-empty engine must fail")
	}

	wrongK, _ := New(Config{Instances: 3, K: 9, Shards: 2, Hash: sampling.NewSeedHash(7)})
	if err := wrongK.RestoreState(st); err == nil {
		t.Error("restore with mismatched k must fail")
	}
	wrongInst, _ := New(Config{Instances: 2, K: 8, Shards: 2, Hash: sampling.NewSeedHash(7)})
	if err := wrongInst.RestoreState(st); err == nil {
		t.Error("restore with mismatched instances must fail")
	}
	wrongSalt, _ := New(Config{Instances: 3, K: 8, Shards: 2, Hash: sampling.NewSeedHash(8)})
	if err := wrongSalt.RestoreState(st); err == nil {
		t.Error("restore with a different salt must fail (seed fingerprint)")
	}
}

func TestMergeStateMatchesUnionStream(t *testing.T) {
	a, _ := New(testConfig(4))
	b, _ := New(testConfig(8))
	upsA := fillRandom(t, a, 5, 3000)
	upsB := fillRandom(t, b, 6, 3000)

	union, _ := New(testConfig(4))
	if err := union.IngestBatch(upsA); err != nil {
		t.Fatal(err)
	}
	if err := union.IngestBatch(upsB); err != nil {
		t.Fatal(err)
	}

	if err := a.MergeState(b.DumpState()); err != nil {
		t.Fatal(err)
	}
	// Lossless mergeability: merging b's sketch into a is bit-identical
	// to one engine having ingested both streams.
	if !reflect.DeepEqual(a.Snapshot(), union.Snapshot()) {
		t.Fatal("merged snapshot differs from the union-stream snapshot")
	}
	if got, want := a.Stats().Ingests, union.Stats().Ingests; got != want {
		t.Fatalf("merged ingest counter %d, union stream %d", got, want)
	}
}

func TestMergeStateBumpsVersion(t *testing.T) {
	a, _ := New(testConfig(2))
	b, _ := New(testConfig(2))
	fillRandom(t, b, 7, 500)
	v0 := a.Version()
	if err := a.MergeState(b.DumpState()); err != nil {
		t.Fatal(err)
	}
	if a.Version() == v0 {
		t.Fatal("merge that changed state did not bump the version")
	}
	// Re-merging the same state is a pure no-op: every mask bit and entry
	// is dominated, so cached snapshots stay valid.
	snap, v1 := a.CachedSnapshot(0)
	if err := a.MergeState(b.DumpState()); err != nil {
		t.Fatal(err)
	}
	snap2, v2 := a.CachedSnapshot(0)
	if v2 != v1 {
		t.Fatalf("idempotent re-merge moved the version %d -> %d", v1, v2)
	}
	if !reflect.DeepEqual(snap, snap2) {
		t.Fatal("idempotent re-merge changed the snapshot")
	}
}

// journalRecorder captures journaled batches and can inject failures.
type journalRecorder struct {
	batches [][]Update
	fail    error
}

func (j *journalRecorder) Append(batch []Update) error {
	if j.fail != nil {
		return j.fail
	}
	cp := make([]Update, len(batch))
	copy(cp, batch)
	j.batches = append(j.batches, cp)
	return nil
}

func TestJournalReceivesAcceptedUpdates(t *testing.T) {
	e, _ := New(testConfig(4))
	j := &journalRecorder{}
	e.SetJournal(j)

	if err := e.Ingest(0, 42, 1.5); err != nil {
		t.Fatal(err)
	}
	if err := e.Ingest(0, 43, 0); err != nil { // zero-weight no-op: not journaled
		t.Fatal(err)
	}
	if err := e.IngestBatch([]Update{
		{Instance: 1, Key: 1, Weight: 2},
		{Instance: 1, Key: 2, Weight: 0}, // filtered
		{Instance: 2, Key: 3, Weight: 4},
	}); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, b := range j.batches {
		total += len(b)
	}
	if total != 3 {
		t.Fatalf("journaled %d updates, want 3 (zero weights excluded)", total)
	}
	// Replaying the journal into a fresh engine reproduces the state —
	// the property WAL recovery is built on.
	r, _ := New(testConfig(4))
	for _, b := range j.batches {
		if err := r.IngestBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(r.Snapshot(), e.Snapshot()) {
		t.Fatal("journal replay does not reproduce the engine state")
	}
}

func TestJournalErrorRejectsUpdate(t *testing.T) {
	e, _ := New(testConfig(2))
	boom := errors.New("disk full")
	e.SetJournal(&journalRecorder{fail: boom})

	if err := e.Ingest(0, 1, 1); !errors.Is(err, boom) {
		t.Fatalf("Ingest error %v, want wrapped journal error", err)
	}
	if err := e.IngestBatch([]Update{{Instance: 0, Key: 2, Weight: 1}}); !errors.Is(err, boom) {
		t.Fatalf("IngestBatch error %v, want wrapped journal error", err)
	}
	if st := e.Stats(); st.Keys != 0 || st.Ingests != 0 || st.Version != 0 {
		t.Fatalf("journal-rejected updates left state behind: %+v", st)
	}
}
