package engine

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/funcs"
	"repro/internal/sampling"
)

// ingestDataset feeds every positive entry of d into the engine in the
// order produced by perm (nil = natural order), optionally preceded by a
// dominated duplicate (half weight) to exercise max-weight semantics.
func ingestDataset(t *testing.T, e *Engine, d dataset.Dataset, perm []int, dominated bool) {
	t.Helper()
	type upd struct {
		i, k int
	}
	var all []upd
	for i := 0; i < d.R(); i++ {
		for k := 0; k < d.N(); k++ {
			if d.W[i][k] > 0 {
				all = append(all, upd{i, k})
			}
		}
	}
	order := perm
	if order == nil {
		order = make([]int, len(all))
		for j := range order {
			order[j] = j
		}
	}
	for _, j := range order {
		u := all[j]
		w := d.W[u.i][u.k]
		if dominated {
			if err := e.Ingest(u.i, uint64(u.k), w/2); err != nil {
				t.Fatalf("Ingest(dominated): %v", err)
			}
		}
		if err := e.Ingest(u.i, uint64(u.k), w); err != nil {
			t.Fatalf("Ingest: %v", err)
		}
		if dominated {
			// A late dominated update must also be a no-op.
			if err := e.Ingest(u.i, uint64(u.k), w*0.9); err != nil {
				t.Fatalf("Ingest(late dominated): %v", err)
			}
		}
	}
}

// requireEqualSamples asserts outcome-level equality between a snapshot
// and a batch coordinated sample over items 0..n-1.
func requireEqualSamples(t *testing.T, snap Snapshot, batch dataset.CoordinatedSample) {
	t.Helper()
	if got, want := len(snap.Sample.Outcomes), len(batch.Outcomes); got != want {
		t.Fatalf("snapshot has %d outcomes, batch has %d", got, want)
	}
	for j, o := range snap.Sample.Outcomes {
		if snap.Keys[j] != uint64(j) {
			t.Fatalf("snapshot key[%d] = %d, want %d", j, snap.Keys[j], j)
		}
		b := batch.Outcomes[j]
		if !o.Same(b) {
			t.Fatalf("item %d: snapshot outcome %+v != batch outcome %+v", j, o, b)
		}
		for i := range o.Scheme.Tau {
			if o.Scheme.Tau[i] != b.Scheme.Tau[i] {
				t.Fatalf("item %d instance %d: tau %g != batch tau %g", j, i, o.Scheme.Tau[i], b.Scheme.Tau[i])
			}
		}
	}
	if snap.Sample.SampledEntries != batch.SampledEntries {
		t.Errorf("SampledEntries = %d, batch %d", snap.Sample.SampledEntries, batch.SampledEntries)
	}
	if snap.Sample.TotalEntries != batch.TotalEntries {
		t.Errorf("TotalEntries = %d, batch %d", snap.Sample.TotalEntries, batch.TotalEntries)
	}
}

// requireEqualEstimates asserts bit-identical L*/U*/HT sums and Jaccard.
func requireEqualEstimates(t *testing.T, snap Snapshot, batch dataset.CoordinatedSample) {
	t.Helper()
	f, err := funcs.NewRG(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []dataset.EstimatorKind{dataset.KindLStar, dataset.KindUStar, dataset.KindHT} {
		got, err := snap.Sample.EstimateSum(f, kind, nil)
		if err != nil {
			t.Fatalf("snapshot EstimateSum(%v): %v", kind, err)
		}
		want, err := batch.EstimateSum(f, kind, nil)
		if err != nil {
			t.Fatalf("batch EstimateSum(%v): %v", kind, err)
		}
		if got != want {
			t.Errorf("%v sum: snapshot %v != batch %v", kind, got, want)
		}
	}
	if got, want := funcs.JaccardEstimate(snap.Sample.Outcomes), funcs.JaccardEstimate(batch.Outcomes); got != want {
		t.Errorf("Jaccard: snapshot %v != batch %v", got, want)
	}
}

func testDatasets(t *testing.T) map[string]dataset.Dataset {
	t.Helper()
	return map[string]dataset.Dataset{
		"example1": dataset.Example1(),
		"stable":   dataset.Stable(dataset.StableConfig{N: 200, Churn: 0.1, Seed: 7}),
		"flows":    dataset.Flows(dataset.FlowsConfig{N: 300, Seed: 11}),
	}
}

func TestSnapshotMatchesBatchBottomK(t *testing.T) {
	for _, d := range testDatasets(t) {
		for _, k := range []int{1, 2, 5, 64, 1000} {
			for _, shards := range []int{1, 3, 16} {
				hash := sampling.NewSeedHash(uint64(42 + k))
				e, err := New(Config{Instances: d.R(), K: k, Shards: shards, Hash: hash})
				if err != nil {
					t.Fatal(err)
				}
				ingestDataset(t, e, d, nil, false)
				batch, err := dataset.SampleBottomK(d, k, hash)
				if err != nil {
					t.Fatal(err)
				}
				snap := e.Snapshot()
				requireEqualSamples(t, snap, batch)
				// The U* solver dominates runtime; check estimate-level
				// equality on one configuration per dataset.
				if k == 5 && shards == 16 {
					requireEqualEstimates(t, snap, batch)
				}
			}
		}
	}
}

func TestSnapshotOrderAndDuplicateInvariance(t *testing.T) {
	d := dataset.Flows(dataset.FlowsConfig{N: 250, Seed: 3})
	hash := sampling.NewSeedHash(99)
	batch, err := dataset.SampleBottomK(d, 8, hash)
	if err != nil {
		t.Fatal(err)
	}
	entries := 0
	for i := 0; i < d.R(); i++ {
		for k := 0; k < d.N(); k++ {
			if d.W[i][k] > 0 {
				entries++
			}
		}
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 3; trial++ {
		e, err := New(Config{Instances: d.R(), K: 8, Shards: 4, Hash: hash})
		if err != nil {
			t.Fatal(err)
		}
		ingestDataset(t, e, d, rng.Perm(entries), true)
		requireEqualSamples(t, e.Snapshot(), batch)
	}
}

func TestIngestBatchMatchesSingle(t *testing.T) {
	d := dataset.Stable(dataset.StableConfig{N: 150, Churn: 0.2, Seed: 13})
	hash := sampling.NewSeedHash(7)
	var updates []Update
	for i := 0; i < d.R(); i++ {
		for k := 0; k < d.N(); k++ {
			updates = append(updates, Update{Instance: i, Key: uint64(k), Weight: d.W[i][k]})
		}
	}
	e, err := New(Config{Instances: d.R(), K: 12, Shards: 8, Hash: hash})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.IngestBatch(updates); err != nil {
		t.Fatal(err)
	}
	batch, err := dataset.SampleBottomK(d, 12, hash)
	if err != nil {
		t.Fatal(err)
	}
	requireEqualSamples(t, e.Snapshot(), batch)
	if got := e.Stats().Ingests; got == 0 {
		t.Error("Stats().Ingests = 0 after batch ingest")
	}
}

func TestConcurrentIngest(t *testing.T) {
	d := dataset.Flows(dataset.FlowsConfig{N: 400, Seed: 21})
	hash := sampling.NewSeedHash(17)
	e, err := New(Config{Instances: d.R(), K: 10, Shards: 8, Hash: hash})
	if err != nil {
		t.Fatal(err)
	}
	const writers = 8
	var wg sync.WaitGroup
	for wID := 0; wID < writers; wID++ {
		wg.Add(1)
		go func(wID int) {
			defer wg.Done()
			// Each writer replays the whole dataset in a different order;
			// max-weight semantics make the replays idempotent.
			rng := rand.New(rand.NewSource(int64(wID)))
			for _, j := range rng.Perm(d.R() * d.N()) {
				i, k := j/d.N(), j%d.N()
				if w := d.W[i][k]; w > 0 {
					if err := e.Ingest(i, uint64(k), w*(0.5+0.5*rng.Float64())); err != nil {
						t.Error(err)
						return
					}
					if err := e.Ingest(i, uint64(k), w); err != nil {
						t.Error(err)
						return
					}
				}
			}
			// Interleave snapshots with writes to exercise the locking.
			_ = e.Snapshot()
		}(wID)
	}
	wg.Wait()
	batch, err := dataset.SampleBottomK(d, 10, hash)
	if err != nil {
		t.Fatal(err)
	}
	requireEqualSamples(t, e.Snapshot(), batch)
}

func TestIngestValidation(t *testing.T) {
	e, err := New(Config{Instances: 2, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name     string
		instance int
		weight   float64
	}{
		{"negative instance", -1, 1},
		{"instance too large", 2, 1},
		{"negative weight", 0, -0.5},
		{"nan weight", 0, math.NaN()},
		{"inf weight", 0, math.Inf(1)},
	} {
		if err := e.Ingest(tc.instance, 1, tc.weight); err == nil {
			t.Errorf("%s: Ingest accepted invalid input", tc.name)
		}
		if err := e.IngestBatch([]Update{{Instance: tc.instance, Key: 1, Weight: tc.weight}}); err == nil {
			t.Errorf("%s: IngestBatch accepted invalid input", tc.name)
		}
	}
	if err := e.Ingest(0, 1, 0); err != nil {
		t.Errorf("zero weight should be an accepted no-op, got %v", err)
	}
	if got := e.Stats().Keys; got != 0 {
		t.Errorf("zero-weight ingest created %d keys", got)
	}
}

func TestNewValidation(t *testing.T) {
	for _, cfg := range []Config{
		{Instances: 0, K: 1},
		{Instances: 1, K: 0},
		{Instances: 1, K: 1, Shards: -1},
	} {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) accepted invalid config", cfg)
		}
	}
	e, err := New(Config{Instances: 1, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Config().Shards; got != 16 {
		t.Errorf("default shards = %d, want 16", got)
	}
}

func TestStats(t *testing.T) {
	d := dataset.Example1()
	hash := sampling.NewSeedHash(1)
	e, err := New(Config{Instances: d.R(), K: 2, Shards: 2, Hash: hash})
	if err != nil {
		t.Fatal(err)
	}
	ingestDataset(t, e, d, nil, false)
	st := e.Stats()
	if st.Keys != d.N() {
		t.Errorf("Stats().Keys = %d, want %d", st.Keys, d.N())
	}
	batch, err := dataset.SampleBottomK(d, 2, hash)
	if err != nil {
		t.Fatal(err)
	}
	if st.ActiveEntries != batch.TotalEntries {
		t.Errorf("Stats().ActiveEntries = %d, want %d", st.ActiveEntries, batch.TotalEntries)
	}
	if st.RetainedEntries == 0 || st.RetainedEntries > st.Instances*(st.K+1)*st.Shards {
		t.Errorf("Stats().RetainedEntries = %d outside sketch bounds", st.RetainedEntries)
	}
	if st.Ingests == 0 {
		t.Error("Stats().Ingests = 0")
	}
}

func TestSnapshotExtremeWeights(t *testing.T) {
	// Near-overflow weights push ranks into the subnormal range where
	// 1/t overflows; both reduction paths must clamp identically instead
	// of panicking (engine) or erroring (batch).
	hash := sampling.NewSeedHash(2)
	e, err := New(Config{Instances: 1, K: 1, Shards: 2, Hash: hash})
	if err != nil {
		t.Fatal(err)
	}
	w := [][]float64{{1e308, 1e308, 1e308}}
	for k, x := range w[0] {
		if err := e.Ingest(0, uint64(k), x); err != nil {
			t.Fatal(err)
		}
	}
	snap := e.Snapshot() // must not panic
	d, err := dataset.New(nil, w)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := dataset.SampleBottomK(d, 1, hash)
	if err != nil {
		t.Fatal(err)
	}
	requireEqualSamples(t, snap, batch)
}

func TestStringKeyCoordination(t *testing.T) {
	// The HTTP layer addresses items by name; string keys must hash to
	// the same seeds UString produces so sketches stay coordinated with
	// any other consumer of the same salt.
	h := sampling.NewSeedHash(5)
	for _, s := range []string{"", "a", "flow:10.0.0.1", "surname/Smith"} {
		if got, want := h.U(sampling.StringKey(s)), h.UString(s); got != want {
			t.Errorf("U(StringKey(%q)) = %g, UString = %g", s, got, want)
		}
	}
}
