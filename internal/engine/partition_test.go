package engine

import (
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/sampling"
)

// rebuildEngine builds an engine over the dense weight matrix w (keys are
// column indices) and returns it.
func rebuildEngine(t *testing.T, w [][]float64, k, shards int, hash sampling.SeedHash) *Engine {
	t.Helper()
	e, err := New(Config{Instances: len(w), K: k, Shards: shards, Hash: hash})
	if err != nil {
		t.Fatal(err)
	}
	for i := range w {
		for j, x := range w[i] {
			if x > 0 {
				if err := e.Ingest(i, uint64(j), x); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return e
}

// requireMatchesMatrix asserts the engine's snapshot is bit-identical to
// the batch reduction of the dense weight matrix w.
func requireMatchesMatrix(t *testing.T, e *Engine, w [][]float64, k int, hash sampling.SeedHash) {
	t.Helper()
	d, err := dataset.New(nil, w)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := dataset.SampleBottomK(d, k, hash)
	if err != nil {
		t.Fatal(err)
	}
	requireEqualSamples(t, e.Snapshot(), batch)
}

// TestIncrementalSingleKeyMutations drives the incremental rebuild path
// through randomized single-key mutations — the workload the partitioned
// snapshot exists for — asserting after every round that Snapshot() stays
// bit-identical to a from-scratch dataset.SampleBottomK over the same
// aggregated matrix. Occasional brand-new keys force merge-plan rebuilds
// alongside the weight-only fast path.
func TestIncrementalSingleKeyMutations(t *testing.T) {
	const (
		n0     = 400
		k      = 16
		shards = 8
		rounds = 60
	)
	hash := sampling.NewSeedHash(31)
	rng := rand.New(rand.NewSource(77))
	w := make([][]float64, 2)
	for i := range w {
		w[i] = make([]float64, n0)
		for j := range w[i] {
			w[i][j] = 0.1 + 10*rng.Float64()
		}
	}
	e := rebuildEngine(t, w, k, shards, hash)
	requireMatchesMatrix(t, e, w, k, hash)

	for round := 0; round < rounds; round++ {
		if round%10 == 4 {
			// Registry-only mutation: a fresh key with a weight so small its
			// rank cannot enter any bottom-(k+1) heap. The mask bit still
			// flips (snapshot-visible), but no retained rank moves, so the
			// rebuild must take the threshold-stable skip.
			for i := range w {
				w[i] = append(w[i], 0)
			}
			j := len(w[0]) - 1
			w[0][j] = 1e-9
			if err := e.Ingest(0, uint64(j), w[0][j]); err != nil {
				t.Fatal(err)
			}
		} else if round%10 == 9 {
			// Grow the key space: a fresh column makes exactly one shard's
			// key set change, so the merge plan must be rebuilt.
			for i := range w {
				w[i] = append(w[i], 0.1+10*rng.Float64())
			}
			j := len(w[0]) - 1
			for i := range w {
				if err := e.Ingest(i, uint64(j), w[i][j]); err != nil {
					t.Fatal(err)
				}
			}
		} else {
			// Weight-only mutation of a single existing key: strictly above
			// the folded maximum so the ingest is snapshot-visible.
			i, j := rng.Intn(len(w)), rng.Intn(len(w[0]))
			w[i][j] = w[i][j]*1.25 + 0.01
			if err := e.Ingest(i, uint64(j), w[i][j]); err != nil {
				t.Fatal(err)
			}
		}
		requireMatchesMatrix(t, e, w, k, hash)
	}
	st := e.Stats()
	if st.Snapshot.Rebuilds == 0 || st.Snapshot.PartitionsReused == 0 {
		t.Errorf("incremental path unused: %+v", st.Snapshot)
	}
	if st.Snapshot.PlanRebuilds < 2 {
		t.Errorf("PlanRebuilds = %d, want ≥ 2 (new keys appeared)", st.Snapshot.PlanRebuilds)
	}
	if st.Snapshot.ThresholdSkips < uint64(rounds/10) {
		t.Errorf("ThresholdSkips = %d, want ≥ %d (registry-only rounds)", st.Snapshot.ThresholdSkips, rounds/10)
	}
}

// TestThresholdStableSkip pins the skip accounting deterministically: with
// every bottom-(k+1) heap full of weight-~1 keys, a new key at weight 1e-9
// (rank ≥ 1e9·u, far above every boundary) is a registry-only mutation —
// the rebuild touches exactly one partition, skips the global threshold
// re-gather, and stays bit-identical to the batch reduction.
func TestThresholdStableSkip(t *testing.T) {
	const (
		n      = 256
		k      = 4
		shards = 4
	)
	hash := sampling.NewSeedHash(21)
	w := [][]float64{make([]float64, n), make([]float64, n)}
	rng := rand.New(rand.NewSource(3))
	for i := range w {
		for j := range w[i] {
			w[i][j] = 1 + rng.Float64()
		}
	}
	e := rebuildEngine(t, w, k, shards, hash)
	requireMatchesMatrix(t, e, w, k, hash)
	st0 := e.Stats().Snapshot

	for i := range w {
		w[i] = append(w[i], 0)
	}
	j := len(w[0]) - 1
	w[0][j] = 1e-9
	if err := e.Ingest(0, uint64(j), w[0][j]); err != nil {
		t.Fatal(err)
	}
	requireMatchesMatrix(t, e, w, k, hash)
	st1 := e.Stats().Snapshot

	if got := st1.Rebuilds - st0.Rebuilds; got != 1 {
		t.Fatalf("Rebuilds advanced by %d, want 1", got)
	}
	if got := st1.ThresholdSkips - st0.ThresholdSkips; got != 1 {
		t.Errorf("ThresholdSkips advanced by %d, want 1", got)
	}
	if got := st1.ThresholdRefreshes - st0.ThresholdRefreshes; got != 0 {
		t.Errorf("ThresholdRefreshes advanced by %d, want 0", got)
	}
	if got := st1.PartitionsRebuilt - st0.PartitionsRebuilt; got != 1 {
		t.Errorf("PartitionsRebuilt advanced by %d, want 1 (single dirty shard)", got)
	}
	if got := st1.PartitionsReused - st0.PartitionsReused; got != shards-1 {
		t.Errorf("PartitionsReused advanced by %d, want %d", got, shards-1)
	}
}

// TestSinglePartitionRebuild pins the tentpole invariant deterministically:
// with K ≥ n the global thresholds cannot move (fewer than k retained
// ranks per instance keeps every item unconditionally included), so a
// single-key weight bump must re-reduce exactly one partition, reuse the
// other shards' verbatim, and keep the merge plan.
func TestSinglePartitionRebuild(t *testing.T) {
	const (
		n      = 64
		k      = 128
		shards = 8
	)
	hash := sampling.NewSeedHash(5)
	w := [][]float64{make([]float64, n), make([]float64, n)}
	rng := rand.New(rand.NewSource(9))
	for i := range w {
		for j := range w[i] {
			w[i][j] = 1 + rng.Float64()
		}
	}
	e := rebuildEngine(t, w, k, shards, hash)
	before := e.FreshView()
	st0 := e.Stats().Snapshot

	const hot = 17
	w[0][hot] *= 3
	if err := e.Ingest(0, hot, w[0][hot]); err != nil {
		t.Fatal(err)
	}
	after := e.FreshView()
	st1 := e.Stats().Snapshot

	if got := st1.Rebuilds - st0.Rebuilds; got != 1 {
		t.Fatalf("Rebuilds advanced by %d, want 1", got)
	}
	if got := st1.PartitionsRebuilt - st0.PartitionsRebuilt; got != 1 {
		t.Errorf("PartitionsRebuilt advanced by %d, want 1 (single dirty shard)", got)
	}
	if got := st1.PartitionsReused - st0.PartitionsReused; got != shards-1 {
		t.Errorf("PartitionsReused advanced by %d, want %d", got, shards-1)
	}
	if got := st1.ThresholdRefreshes - st0.ThresholdRefreshes; got != 0 {
		t.Errorf("ThresholdRefreshes advanced by %d, want 0 (K ≥ n)", got)
	}
	if got := st1.PlanRebuilds - st0.PlanRebuilds; got != 0 {
		t.Errorf("PlanRebuilds advanced by %d, want 0 (key set unchanged)", got)
	}

	// Exactly the hot key's shard epoch moved; every other partition is
	// the same reduction.
	hotShard := e.shardOf(hot)
	for s := range after.Parts {
		same := after.Parts[s].Epoch == before.Parts[s].Epoch
		if s == hotShard && same {
			t.Errorf("shard %d (hot) epoch unchanged across rebuild", s)
		}
		if s != hotShard && !same {
			t.Errorf("shard %d epoch changed (%d → %d) without a mutation",
				s, before.Parts[s].Epoch, after.Parts[s].Epoch)
		}
	}
	requireMatchesMatrix(t, e, w, k, hash)

	// Per-shard stats agree with the rebuild accounting.
	st := e.Stats()
	var mutSum uint64
	keySum := 0
	for _, ps := range st.PerShard {
		mutSum += ps.Mutations
		keySum += ps.Keys
	}
	if mutSum != st.Version {
		t.Errorf("per-shard mutations sum %d != version %d", mutSum, st.Version)
	}
	if keySum != st.Keys {
		t.Errorf("per-shard keys sum %d != keys %d", keySum, st.Keys)
	}
	if got := st.PerShard[hotShard].PartitionRebuilds; got < 2 {
		t.Errorf("hot shard PartitionRebuilds = %d, want ≥ 2", got)
	}
}

// TestSnapshotViewParts checks the advisory partition metadata: the part
// indexes partition 0..n-1 exactly, each part's positions are ascending,
// and every indexed key routes to the part's shard.
func TestSnapshotViewParts(t *testing.T) {
	d := dataset.Flows(dataset.FlowsConfig{N: 300, Seed: 11})
	hash := sampling.NewSeedHash(3)
	e, err := New(Config{Instances: d.R(), K: 8, Shards: 4, Hash: hash})
	if err != nil {
		t.Fatal(err)
	}
	ingestDataset(t, e, d, nil, false)
	view := e.FreshView()
	if len(view.Parts) != 4 {
		t.Fatalf("got %d parts, want 4", len(view.Parts))
	}
	seen := make([]bool, len(view.Keys))
	for s, part := range view.Parts {
		for t2 := 0; t2 < len(part.Index); t2++ {
			j := int(part.Index[t2])
			if t2 > 0 && j <= int(part.Index[t2-1]) {
				t.Fatalf("part %d positions not ascending at %d", s, t2)
			}
			if seen[j] {
				t.Fatalf("merged position %d indexed twice", j)
			}
			seen[j] = true
			if got := e.shardOf(view.Keys[j]); got != s {
				t.Fatalf("part %d item %d: key %d routes to shard %d", s, t2, view.Keys[j], got)
			}
		}
	}
	for j, ok := range seen {
		if !ok {
			t.Fatalf("merged position %d not covered by any part", j)
		}
	}
	if view.Version != e.Version() {
		t.Errorf("view version %d != engine version %d", view.Version, e.Version())
	}
}

// TestRestoreStateResetsPartitions guards the restore/partition interplay:
// RestoreState parks the dumped version on shard 0, so partitions cut
// BEFORE the restore (when the engine was empty) would match shards
// 1..N-1's untouched mutation counters and be wrongly reused if restore
// didn't drop them.
func TestRestoreStateResetsPartitions(t *testing.T) {
	d := dataset.Flows(dataset.FlowsConfig{N: 200, Seed: 23})
	hash := sampling.NewSeedHash(8)
	src, err := New(Config{Instances: d.R(), K: 10, Shards: 8, Hash: hash})
	if err != nil {
		t.Fatal(err)
	}
	ingestDataset(t, src, d, nil, false)
	want := src.Snapshot()

	dst, err := New(Config{Instances: d.R(), K: 10, Shards: 8, Hash: hash})
	if err != nil {
		t.Fatal(err)
	}
	// Seed stale empty partitions before the restore.
	if got := dst.Snapshot(); len(got.Keys) != 0 {
		t.Fatalf("empty engine snapshot has %d keys", len(got.Keys))
	}
	if err := dst.RestoreState(src.DumpState()); err != nil {
		t.Fatal(err)
	}
	if got := dst.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Fatal("post-restore snapshot differs from source (stale partitions reused?)")
	}
}

// TestMergeStateRebuildsDirtyPartitions: merging advances per-shard
// mutation counters, so a snapshot taken before the merge must be
// invalidated partition-by-partition and the result must equal the batch
// reduction of the union.
func TestMergeStateRebuildsDirtyPartitions(t *testing.T) {
	hash := sampling.NewSeedHash(44)
	rng := rand.New(rand.NewSource(12))
	const n = 120
	whole := [][]float64{make([]float64, n), make([]float64, n)}
	for i := range whole {
		for j := range whole[i] {
			whole[i][j] = 0.5 + rng.Float64()
		}
	}
	// Keys n/2..n-1 are unknown to the engine pre-merge, so the pre-merge
	// comparison matrix is the truncated prefix, not a zero-padded one
	// (the batch sampler emits outcomes even for all-zero columns).
	half := [][]float64{whole[0][:n/2], whole[1][:n/2]}
	other, err := New(Config{Instances: 2, K: 12, Shards: 4, Hash: hash})
	if err != nil {
		t.Fatal(err)
	}
	for i := range whole {
		for j := n / 2; j < n; j++ {
			if err := other.Ingest(i, uint64(j), whole[i][j]); err != nil {
				t.Fatal(err)
			}
		}
	}
	e := rebuildEngine(t, half, 12, 4, hash)
	requireMatchesMatrix(t, e, half, 12, hash) // populate partitions pre-merge
	if err := e.MergeState(other.DumpState()); err != nil {
		t.Fatal(err)
	}
	requireMatchesMatrix(t, e, whole, 12, hash)
}

// TestConcurrentReadsDuringPartitionRebuilds races cached readers (exact
// and bounded-stale) against a single-key mutator, under -race: readers
// must always observe internally consistent views (version-monotone per
// reader, parts bijective into the key space) while partitions are being
// re-reduced and reused underneath them.
func TestConcurrentReadsDuringPartitionRebuilds(t *testing.T) {
	d := dataset.Flows(dataset.FlowsConfig{N: 500, Seed: 6})
	hash := sampling.NewSeedHash(13)
	e, err := New(Config{Instances: d.R(), K: 16, Shards: 8, Hash: hash})
	if err != nil {
		t.Fatal(err)
	}
	ingestDataset(t, e, d, nil, false)

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		w := 100.0
		for !stop.Load() {
			w *= 1.0001
			if err := e.Ingest(rng.Intn(d.R()), uint64(rng.Intn(d.N())), w); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for reader := 0; reader < 4; reader++ {
		wg.Add(1)
		go func(reader int) {
			defer wg.Done()
			maxStale := time.Duration(0)
			if reader%2 == 1 {
				maxStale = time.Millisecond
			}
			var last uint64
			for iter := 0; iter < 400; iter++ {
				view := e.CachedView(maxStale)
				if view.Version < last {
					t.Errorf("reader %d: version went backwards %d → %d", reader, last, view.Version)
					return
				}
				last = view.Version
				// Materializing races other readers of the same view cell
				// and the writer's rebuilds — exactly what -race is here
				// to watch.
				snap := view.Snapshot()
				if len(snap.Keys) != len(snap.Sample.Outcomes) {
					t.Errorf("reader %d: %d keys vs %d outcomes", reader, len(snap.Keys), len(snap.Sample.Outcomes))
					return
				}
				if iter%16 == 0 {
					total := 0
					for s, part := range view.Parts {
						total += len(part.Index)
						for _, j := range part.Index {
							if e.shardOf(view.Keys[j]) != s {
								t.Errorf("reader %d: part %d indexes foreign key", reader, s)
								return
							}
						}
					}
					if total != len(view.Keys) {
						t.Errorf("reader %d: parts cover %d of %d keys", reader, total, len(view.Keys))
						return
					}
				}
			}
		}(reader)
	}
	// Let the readers run against live churn for a while, then stop the
	// writer and join everyone.
	time.Sleep(50 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	// Post-race exactness: an exact view now must carry the final version.
	if view := e.CachedView(0); view.Version != e.Version() {
		t.Errorf("final exact view at version %d, engine at %d", view.Version, e.Version())
	}
}
