// Package engine is a sharded, concurrent, incrementally maintained store
// of coordinated bottom-k sketches — the streaming counterpart of
// dataset.SampleBottomK.
//
// An Engine tracks r instances over a universe of uint64 item keys. Each
// update Ingest(instance, key, weight) folds a weighted observation into
// the instance's bottom-k sketch under max-weight semantics: the effective
// weight of (instance, key) is the maximum over all updates, so replaying
// any permutation (or any superset with dominated duplicates) of a
// dataset's entries reproduces the batch sample of that dataset exactly.
//
// Coordination falls out of determinism: every instance ranks item key by
// rank = u/w with the same hashed seed u = hash.U(key) (priority sampling,
// "permanent random numbers"), so the sketches of all instances select
// similar items for similar data, which is what makes multi-instance
// functions (distances, Jaccard, max/or/and aggregates) estimable from
// per-instance summaries of size O(k).
//
// Why eviction loses nothing. A shard's per-instance heap keeps the k+1
// smallest-rank items it has seen. Ranks only decrease as weights grow, so
// once k+1 items of a shard outrank item x, they do so forever; x can then
// never re-enter the final bottom-k+1 unless a later update raises x's own
// weight — in which case x re-enters carrying that weight, which is then
// its maximum. Retained weights therefore always equal the true (max)
// weight, and Snapshot is exact, not approximate: it reduces the sketches
// to per-item TupleOutcomes via the same conditional-threshold reduction
// (sampling.CondThreshold, the paper's footnote 1) as the batch sampler,
// and the outcomes agree bit-for-bit, so every estimator built on outcomes
// (L*, U*, HT, Jaccard) serves live traffic unmodified.
//
// Concurrency: shards are selected by a hash of the item key and guarded by
// per-shard mutexes (lock striping), so writers on different shards never
// contend. Snapshot briefly locks all shards for a consistent cut.
package engine
