package engine

import (
	"cmp"
	"fmt"
	"math"
	"runtime"
	"slices"
	"sort"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/sampling"
)

// This file is the snapshot pipeline: the all-shard consistent cut, the
// allocation-lean arena reduction of the cut to per-item monotone
// outcomes, and the versioned snapshot cache that lets repeat reads skip
// both. The reduction is bit-identical to dataset.SampleBottomK (the
// equivalence tests enforce it), so everything here is pure mechanics —
// no estimation semantics.

// Snapshot is a consistent cut of the engine reduced to per-item monotone
// outcomes — the streaming equivalent of dataset.SampleBottomK's result.
//
// A snapshot may be shared between concurrent readers (CachedSnapshot
// returns the same value to everyone until the engine mutates), and its
// outcome Known/Vals slices are sub-slices of two shared arena arrays:
// treat the whole structure as immutable.
type Snapshot struct {
	// Keys holds every ingested item key in ascending order, parallel to
	// Sample.Outcomes.
	Keys []uint64
	// Sample carries the outcomes and the storage bookkeeping; every
	// outcome estimator (L*, U*, HT, Jaccard) applies to it unmodified.
	Sample dataset.CoordinatedSample
}

// Index returns the position of key in Keys (and hence in
// Sample.Outcomes), or false when the key was never ingested. Keys is
// sorted ascending, so this is a binary search — the query layer resolves
// per-query item selections against one shared snapshot with it.
func (s Snapshot) Index(key uint64) (int, bool) {
	i := sort.Search(len(s.Keys), func(i int) bool { return s.Keys[i] >= key })
	if i < len(s.Keys) && s.Keys[i] == key {
		return i, true
	}
	return 0, false
}

// snapshotCacheEntry is one published reduction: the snapshot, the
// version it was cut at, and when the cut was taken (for bounded-staleness
// serving).
type snapshotCacheEntry struct {
	version uint64
	built   time.Time
	snap    Snapshot
}

// Snapshot reduces the live sketches to per-item outcomes via the shared
// conditional-threshold reduction (footnote 1). For any arrival order and
// any max-dominated duplicates, the result is bit-identical to
// dataset.SampleBottomK on the aggregated weight matrix — provided the
// item keys are the matrix's column indices 0..n-1, since the batch
// sampler seeds item k with hash.U(uint64(k)). Sparse or string-hashed
// keys yield the same reduction over their own seed set.
//
// All shards are locked only while the sketch contents are copied out (a
// consistent cut proportional to the sketch size); the reduction itself
// runs lock-free on the copy, so writers stall for the copy, not the
// math. The result is also published to the snapshot cache.
func (e *Engine) Snapshot() Snapshot {
	snap, _ := e.FreshSnapshot()
	return snap
}

// FreshSnapshot is Snapshot plus the version the cut was taken at, read
// under the same all-shard lock — the pair is always consistent, unlike a
// Snapshot() followed by a separate Version() racing concurrent writers.
// Callers keying memoized results by version must use this (or
// CachedSnapshot), never the two-call sequence.
func (e *Engine) FreshSnapshot() (Snapshot, uint64) {
	return e.freshSnapshot()
}

// CachedSnapshot returns the engine's current snapshot, reusing the last
// reduced one bit-identically when no mutation intervened: the fast path
// is one atomic pointer load plus a lock-free version check — zero shard
// locks, zero reduction work, zero allocations.
//
// maxStale > 0 relaxes exactness under sustained write load: a cached
// snapshot whose cut is at most maxStale old is served even if the
// version moved on, bounding how often writers force a re-reduction.
// maxStale = 0 always serves an exact cut.
//
// The returned version identifies the cut the snapshot was taken at
// (Engine.Version at cut time); callers memoizing derived results key
// them by it. The snapshot is shared — treat it as immutable.
func (e *Engine) CachedSnapshot(maxStale time.Duration) (Snapshot, uint64) {
	if snap, version, ok := e.cachedHit(maxStale); ok {
		return snap, version
	}
	// Single-flight the rebuild: when one mutation invalidates the cache
	// under many concurrent readers, exactly one pays the reduction and
	// the rest wait for its published result instead of each re-cutting
	// the shards (which would also serialize writers N times over).
	e.rebuildMu.Lock()
	defer e.rebuildMu.Unlock()
	if snap, version, ok := e.cachedHit(maxStale); ok {
		return snap, version
	}
	return e.freshSnapshot()
}

// cachedHit returns the cached snapshot when it is current (or within the
// staleness bound).
func (e *Engine) cachedHit(maxStale time.Duration) (Snapshot, uint64, bool) {
	c := e.cache.Load()
	if c == nil {
		return Snapshot{}, 0, false
	}
	if c.version == e.Version() {
		return c.snap, c.version, true
	}
	if maxStale > 0 && time.Since(c.built) <= maxStale {
		return c.snap, c.version, true
	}
	return Snapshot{}, 0, false
}

// freshSnapshot cuts, reduces and publishes a new snapshot.
func (e *Engine) freshSnapshot() (Snapshot, uint64) {
	cut := e.collect()
	snap := cut.reduce(&e.cfg)
	e.publish(&snapshotCacheEntry{version: cut.version, built: cut.at, snap: snap})
	return snap, cut.version
}

// publish installs the entry unless a newer version is already cached.
// Concurrent builders may finish out of order; keeping the highest
// version means the cache only moves forward.
func (e *Engine) publish(en *snapshotCacheEntry) {
	for {
		old := e.cache.Load()
		if old != nil && old.version >= en.version {
			return
		}
		if e.cache.CompareAndSwap(old, en) {
			return
		}
	}
}

// engineCut is the raw data copied out of the shards under the all-shard
// lock: everything reduce needs, nothing aliasing live engine state.
// Seeds are not copied — they are pure functions of the key
// (Config.Hash.U), recomputed during the reduction.
type engineCut struct {
	version       uint64
	at            time.Time
	activeEntries int
	keys          []uint64    // unsorted item keys
	retained      [][]bkEntry // per instance, all shards' heap entries, unsorted
}

// collect takes the consistent cut: all shard locks in index order, copy
// out items and heap entries, read the version, release.
func (e *Engine) collect() engineCut {
	for _, sh := range e.shards {
		sh.mu.Lock()
	}
	cut := engineCut{at: time.Now(), retained: make([][]bkEntry, e.cfg.Instances)}
	total := 0
	for _, sh := range e.shards {
		total += len(sh.items)
	}
	cut.keys = make([]uint64, 0, total)
	for _, sh := range e.shards {
		cut.version += sh.muts.Load()
		cut.activeEntries += sh.activeEntries
		for key := range sh.items {
			cut.keys = append(cut.keys, key)
		}
	}
	for i := range cut.retained {
		n := 0
		for _, sh := range e.shards {
			n += len(sh.heaps[i].es)
		}
		ents := make([]bkEntry, 0, n)
		for _, sh := range e.shards {
			ents = append(ents, sh.heaps[i].es...)
		}
		cut.retained[i] = ents
	}
	for _, sh := range e.shards {
		sh.mu.Unlock()
	}
	return cut
}

// instThresholds is one instance's precomputed conditional-threshold
// branch: per item the PPS threshold τ* takes one of exactly two values,
// chosen by whether the item's rank is among the instance's k smallest
// (rank ≤ boundary). Precomputing both collapses the per-item
// KSmallest/CondThreshold/TauFromThreshold chain to a comparison, and
// makes scheme interning a per-instance bit.
type instThresholds struct {
	hasK     bool    // at least k ranks retained; otherwise every item is always included
	boundary float64 // smallest[k-1]: the inclusion boundary rank
	tauIn    float64 // τ* for rank ≤ boundary
	tauOut   float64 // τ* for rank > boundary
}

func newInstThresholds(smallest []float64, k int) instThresholds {
	// The two branch values come from the real reduction chain: rank 0 is
	// always ≤ smallest[k-1] (ranks are positive) and +Inf never is, so
	// these two probes exhaust CondThreshold's per-item behavior and
	// bit-identity with the batch sampler holds by construction.
	th := instThresholds{
		tauIn:  sampling.TauFromThreshold(sampling.CondThreshold(smallest, k, 0)),
		tauOut: sampling.TauFromThreshold(sampling.CondThreshold(smallest, k, math.Inf(1))),
	}
	if len(smallest) >= k {
		th.hasK, th.boundary = true, smallest[k-1]
	}
	return th
}

// reduceParallelMin is the snapshot size (items × instances) below which
// the reduction stays single-threaded — goroutine fan-out costs more than
// it saves on small cuts.
const reduceParallelMin = 1 << 13

// reduceWorkers picks the reduction fan-out for a cut of cells = items ×
// instances. A variable so tests can force multi-chunk reductions (and
// their chunk-boundary cursor seeding) on single-CPU machines.
var reduceWorkers = func(cells int) int {
	w := runtime.GOMAXPROCS(0)
	if cells < reduceParallelMin || w < 2 {
		return 1
	}
	return w
}

// reduce turns the cut into outcomes. Layout over maps: keys and seeds
// are parallel sorted slices, each instance's retained entries are a
// key-sorted slice consumed by a merge walk, every outcome's Known/Vals
// are sub-slices of two shared arena arrays (one []bool, one []float64,
// each n·r), the few distinct τ*-vectors are interned so outcomes share
// TupleScheme backing, and the per-item loop fans out across workers on
// disjoint key ranges.
func (cut *engineCut) reduce(cfg *Config) Snapshot {
	r, k := cfg.Instances, cfg.K
	n := len(cut.keys)
	keys := cut.keys
	slices.Sort(keys)

	insts := make([]instThresholds, r)
	var ranks []float64
	for i := 0; i < r; i++ {
		ents := cut.retained[i]
		ranks = ranks[:0]
		for _, en := range ents {
			ranks = append(ranks, en.rank)
		}
		slices.SortFunc(ents, func(a, b bkEntry) int { return cmp.Compare(a.key, b.key) })
		insts[i] = newInstThresholds(sampling.KSmallest(ranks, k+1), k)
	}

	snap := Snapshot{
		Keys: keys,
		Sample: dataset.CoordinatedSample{
			Outcomes:     make([]sampling.TupleOutcome, n),
			TotalEntries: cut.activeEntries,
		},
	}
	if n == 0 {
		return snap
	}
	knownArena := make([]bool, n*r)
	valsArena := make([]float64, n*r)

	workers := reduceWorkers(n * r)
	chunk := (n + workers - 1) / workers
	sampled := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, n)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			sampled[w] = cut.reduceRange(cfg.Hash, insts, keys, snap.Sample.Outcomes, knownArena, valsArena, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, s := range sampled {
		snap.Sample.SampledEntries += s
	}
	return snap
}

// reduceRange fills outcomes[lo:hi] and returns the number of sampled
// entries in the range. Workers touch disjoint outcome and arena ranges,
// so no synchronization is needed beyond the final join. Seeds are
// recomputed from the keys (hash.U is the splitmix64 finalizer — cheaper
// than carrying a second sorted array through the cut).
func (cut *engineCut) reduceRange(hash sampling.SeedHash, insts []instThresholds, keys []uint64, outcomes []sampling.TupleOutcome, knownArena []bool, valsArena []float64, lo, hi int) int {
	r := len(insts)
	// cur[i] walks instance i's key-sorted retained entries in lockstep
	// with the ascending key loop — the merge walk replacing per-item map
	// lookups.
	cur := make([]int, r)
	for i := range cur {
		ents := cut.retained[i]
		first := keys[lo]
		cur[i] = sort.Search(len(ents), func(x int) bool { return ents[x].key >= first })
	}
	tuple := make([]float64, r)
	// branch[i] records which τ* branch item j takes in instance i; it is
	// the intern key, so the (few, repeated) identical τ*-vectors share
	// one TupleScheme allocation each.
	branch := make([]byte, r)
	schemes := make(map[string]sampling.TupleScheme, 4)
	sampled := 0
	for j := lo; j < hi; j++ {
		key := keys[j]
		for i := 0; i < r; i++ {
			ents := cut.retained[i]
			c := cur[i]
			for c < len(ents) && ents[c].key < key {
				c++
			}
			rank := math.Inf(1)
			tuple[i] = 0
			if c < len(ents) && ents[c].key == key {
				rank = ents[c].rank
				tuple[i] = ents[c].weight
				c++
			}
			cur[i] = c
			if insts[i].hasK && rank > insts[i].boundary {
				branch[i] = 1
			} else {
				branch[i] = 0
			}
		}
		scheme, ok := schemes[string(branch)]
		if !ok {
			tau := make([]float64, r)
			for i := range tau {
				if branch[i] == 1 {
					tau[i] = insts[i].tauOut
				} else {
					tau[i] = insts[i].tauIn
				}
			}
			var err error
			scheme, err = sampling.NewTupleScheme(tau)
			if err != nil {
				// Unreachable: ranks are positive, so every tau is
				// positive and finite.
				panic(fmt.Sprintf("engine: item %d scheme: %v", key, err))
			}
			schemes[string(branch)] = scheme
		}
		base := j * r
		o := scheme.SampleInto(tuple, hash.U(key), knownArena[base:base+r:base+r], valsArena[base:base+r:base+r])
		outcomes[j] = o
		sampled += o.NumKnown()
	}
	return sampled
}
