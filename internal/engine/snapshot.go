package engine

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/sampling"
)

// This file is the snapshot pipeline's public surface and shared reduction
// mechanics: the Snapshot/SnapshotView types, the versioned snapshot cache
// that lets repeat reads skip all work, the conditional-threshold branch
// precomputation, and the per-range merge-walk reduction. The incremental
// per-shard partition maintenance that feeds it lives in partition.go. The
// result is bit-identical to dataset.SampleBottomK (the equivalence tests
// enforce it), so everything here is pure mechanics — no estimation
// semantics.

// Snapshot is a consistent cut of the engine reduced to per-item monotone
// outcomes — the streaming equivalent of dataset.SampleBottomK's result.
//
// A snapshot may be shared between concurrent readers (CachedSnapshot
// returns the same value to everyone until the engine mutates), and its
// outcome Known/Vals slices are sub-slices of shared arena arrays: treat
// the whole structure as immutable.
type Snapshot struct {
	// Keys holds every ingested item key in ascending order, parallel to
	// Sample.Outcomes.
	Keys []uint64
	// Sample carries the outcomes and the storage bookkeeping; every
	// outcome estimator (L*, U*, HT, Jaccard) applies to it unmodified.
	Sample dataset.CoordinatedSample
}

// Index returns the position of key in Keys (and hence in
// Sample.Outcomes), or false when the key was never ingested. Keys is
// sorted ascending, so this is a binary search — the query layer resolves
// per-query item selections against one shared snapshot with it.
func (s Snapshot) Index(key uint64) (int, bool) {
	i := sort.Search(len(s.Keys), func(i int) bool { return s.Keys[i] >= key })
	if i < len(s.Keys) && s.Keys[i] == key {
		return i, true
	}
	return 0, false
}

// SnapshotPart describes one shard's partition inside a SnapshotView.
type SnapshotPart struct {
	// Epoch identifies the partition's reduction. It changes exactly when
	// the partition's outcome bytes change (shard mutated, or the global
	// thresholds moved), so derived per-item results cached under an epoch
	// can be reused bit-identically while it holds.
	Epoch uint64
	// Index maps the partition's t-th item (ascending key order within the
	// shard) to its position in Keys (and in the materialized
	// Snapshot().Sample.Outcomes).
	Index []int32
	// Outcomes holds the partition's reduced outcomes, parallel to Index.
	// Consumers that aggregate per item (the server's estimate caches) can
	// work from these directly and skip materializing the merged snapshot.
	Outcomes []sampling.TupleOutcome
}

// SnapshotView is the engine's serving handle on a cut: the version, the
// merged ascending key slice, and the per-shard reduced partitions. The
// merged outcome array — the only O(total keys) artifact left in the
// incremental pipeline — is NOT built up front: Snapshot() materializes
// it on first call and caches it in the view's shared cell, so view-only
// consumers (the server fast path) never pay for it. Views are shared
// between readers and immutable.
type SnapshotView struct {
	// Version is the engine's mutation version as of the cut.
	Version uint64
	// Keys holds every ingested item key in ascending order.
	Keys []uint64
	// Parts has one entry per shard, in shard order. The Index slices form
	// a partition of [0, len(Keys)).
	Parts []SnapshotPart

	// src is the merge plan's per-position owning shard — the gather order
	// for materialization. sampled/total are the cut's storage accounting.
	src            []uint16
	sampled, total int
	// cell caches the materialized merged sample; shared by every copy of
	// this view, built at most once.
	cell *viewCell
}

// viewCell is the lazily-materialized merged sample shared by all copies
// of one SnapshotView.
type viewCell struct {
	once   sync.Once
	sample dataset.CoordinatedSample
}

// Snapshot materializes the merged Snapshot for this view: outcomes in
// ascending key order, bit-identical to dataset.SampleBottomK. The first
// call per view pays one O(total keys) gather; repeat calls (and calls on
// other copies of the same view) return the same cached value.
func (v SnapshotView) Snapshot() Snapshot {
	if v.cell == nil {
		return Snapshot{}
	}
	v.cell.once.Do(func() {
		outcomes := make([]sampling.TupleOutcome, len(v.Keys))
		cur := make([]int, len(v.Parts))
		for j, s := range v.src {
			outcomes[j] = v.Parts[s].Outcomes[cur[s]]
			cur[s]++
		}
		v.cell.sample = dataset.CoordinatedSample{
			Outcomes:       outcomes,
			SampledEntries: v.sampled,
			TotalEntries:   v.total,
		}
	})
	return Snapshot{Keys: v.Keys, Sample: v.cell.sample}
}

// Index is Snapshot.Index against the view's merged key order, without
// materializing the outcomes.
func (v SnapshotView) Index(key uint64) (int, bool) {
	return Snapshot{Keys: v.Keys}.Index(key)
}

// SampledEntries reports the cut's retained sketch entry count (the
// materialized sample's SampledEntries) without materializing it.
func (v SnapshotView) SampledEntries() int { return v.sampled }

// TotalEntries reports the cut's active entry count (the materialized
// sample's TotalEntries) without materializing it.
func (v SnapshotView) TotalEntries() int { return v.total }

// snapshotCacheEntry is one published reduction: the view, the version it
// was cut at, and when the cut was taken (for bounded-staleness serving).
type snapshotCacheEntry struct {
	version uint64
	built   time.Time
	view    SnapshotView
}

// Snapshot reduces the live sketches to per-item outcomes via the shared
// conditional-threshold reduction (footnote 1). For any arrival order and
// any max-dominated duplicates, the result is bit-identical to
// dataset.SampleBottomK on the aggregated weight matrix — provided the
// item keys are the matrix's column indices 0..n-1, since the batch
// sampler seeds item k with hash.U(uint64(k)). Sparse or string-hashed
// keys yield the same reduction over their own seed set.
//
// The rebuild is incremental: shards whose mutation counter is unchanged
// since the last snapshot keep their reduced partition verbatim, so the
// cost is proportional to the touched shards plus the final merge — not
// the total key count (see partition.go). All shards are locked only
// while dirty sketch contents are copied out; the reduction runs
// lock-free on the copies. The result is published to the snapshot cache.
func (e *Engine) Snapshot() Snapshot {
	return e.FreshView().Snapshot()
}

// FreshSnapshot is Snapshot plus the version the cut was taken at, read
// under the same all-shard lock — the pair is always consistent, unlike a
// Snapshot() followed by a separate Version() racing concurrent writers.
// Callers keying memoized results by version must use this (or
// CachedSnapshot), never the two-call sequence.
func (e *Engine) FreshSnapshot() (Snapshot, uint64) {
	v := e.FreshView()
	return v.Snapshot(), v.Version
}

// FreshView returns an exact-cut SnapshotView. "Fresh" means exact, not
// recomputed: the cut itself verifies which cached partitions (and
// possibly the whole published snapshot) are still byte-identical to a
// from-scratch reduction, and reuses them.
func (e *Engine) FreshView() SnapshotView {
	e.rebuildMu.Lock()
	defer e.rebuildMu.Unlock()
	return e.rebuildLocked()
}

// CachedSnapshot returns the engine's current snapshot, reusing the last
// reduced one bit-identically when no mutation intervened: the fast path
// is one atomic pointer load plus a lock-free version check — zero shard
// locks, zero reduction work, zero allocations.
//
// maxStale > 0 relaxes exactness under sustained write load: a cached
// snapshot whose cut is at most maxStale old is served even if the
// version moved on, bounding how often writers force a re-reduction.
// maxStale = 0 always serves an exact cut.
//
// The returned version identifies the cut the snapshot was taken at
// (Engine.Version at cut time); callers memoizing derived results key
// them by it. The snapshot is shared — treat it as immutable.
func (e *Engine) CachedSnapshot(maxStale time.Duration) (Snapshot, uint64) {
	v := e.CachedView(maxStale)
	return v.Snapshot(), v.Version
}

// CachedView is CachedSnapshot returning the full SnapshotView.
func (e *Engine) CachedView(maxStale time.Duration) SnapshotView {
	if v, ok := e.cachedHit(maxStale); ok {
		return v
	}
	// Single-flight the rebuild: when one mutation invalidates the cache
	// under many concurrent readers, exactly one pays the (incremental)
	// rebuild and the rest wait for its published result instead of each
	// re-cutting the shards (which would also serialize writers N times
	// over).
	e.rebuildMu.Lock()
	defer e.rebuildMu.Unlock()
	if v, ok := e.cachedHit(maxStale); ok {
		return v
	}
	return e.rebuildLocked()
}

// cachedHit returns the cached view when it is current (or within the
// staleness bound).
func (e *Engine) cachedHit(maxStale time.Duration) (SnapshotView, bool) {
	c := e.cache.Load()
	if c == nil {
		return SnapshotView{}, false
	}
	if c.version == e.Version() {
		return c.view, true
	}
	if maxStale > 0 && time.Since(c.built) <= maxStale {
		return c.view, true
	}
	return SnapshotView{}, false
}

// publish installs the entry unless a newer version is already cached.
// Concurrent builders may finish out of order; keeping the highest
// version means the cache only moves forward.
func (e *Engine) publish(en *snapshotCacheEntry) {
	for {
		old := e.cache.Load()
		if old != nil && old.version >= en.version {
			return
		}
		if e.cache.CompareAndSwap(old, en) {
			return
		}
	}
}

// instThresholds is one instance's precomputed conditional-threshold
// branch: per item the PPS threshold τ* takes one of exactly two values,
// chosen by whether the item's rank is among the instance's k smallest
// (rank ≤ boundary). Precomputing both collapses the per-item
// KSmallest/CondThreshold/TauFromThreshold chain to a comparison, and
// makes scheme interning a per-instance bit.
type instThresholds struct {
	hasK     bool    // at least k ranks retained; otherwise every item is always included
	boundary float64 // smallest[k-1]: the inclusion boundary rank
	tauIn    float64 // τ* for rank ≤ boundary
	tauOut   float64 // τ* for rank > boundary
}

func newInstThresholds(smallest []float64, k int) instThresholds {
	// The two branch values come from the real reduction chain: rank 0 is
	// always ≤ smallest[k-1] (ranks are positive) and +Inf never is, so
	// these two probes exhaust CondThreshold's per-item behavior and
	// bit-identity with the batch sampler holds by construction.
	th := instThresholds{
		tauIn:  sampling.TauFromThreshold(sampling.CondThreshold(smallest, k, 0)),
		tauOut: sampling.TauFromThreshold(sampling.CondThreshold(smallest, k, math.Inf(1))),
	}
	if len(smallest) >= k {
		th.hasK, th.boundary = true, smallest[k-1]
	}
	return th
}

// reduceParallelMin is the partition size (items × instances) below which
// the reduction stays single-threaded — goroutine fan-out costs more than
// it saves on small cuts.
const reduceParallelMin = 1 << 13

// reduceWorkers picks the reduction fan-out for a partition of cells =
// items × instances. A variable so tests can force multi-chunk reductions
// (and their chunk-boundary cursor seeding) on single-CPU machines.
var reduceWorkers = func(cells int) int {
	w := runtime.GOMAXPROCS(0)
	if cells < reduceParallelMin || w < 2 {
		return 1
	}
	return w
}

// reduceRange fills outcomes[lo:hi] from the key-sorted retained entries
// and returns the number of sampled entries in the range. Workers touch
// disjoint outcome and arena ranges, so no synchronization is needed
// beyond the final join. Seeds are recomputed from the keys (hash.U is
// the splitmix64 finalizer — cheaper than carrying a second sorted array
// through the cut).
func reduceRange(hash sampling.SeedHash, insts []instThresholds, keys []uint64, retained [][]bkEntry, outcomes []sampling.TupleOutcome, knownArena []bool, valsArena []float64, lo, hi int) int {
	r := len(insts)
	// cur[i] walks instance i's key-sorted retained entries in lockstep
	// with the ascending key loop — the merge walk replacing per-item map
	// lookups.
	cur := make([]int, r)
	for i := range cur {
		ents := retained[i]
		first := keys[lo]
		cur[i] = sort.Search(len(ents), func(x int) bool { return ents[x].key >= first })
	}
	tuple := make([]float64, r)
	// branch[i] records which τ* branch item j takes in instance i; it is
	// the intern key, so the (few, repeated) identical τ*-vectors share
	// one TupleScheme allocation each.
	branch := make([]byte, r)
	schemes := make(map[string]sampling.TupleScheme, 4)
	sampled := 0
	for j := lo; j < hi; j++ {
		key := keys[j]
		for i := 0; i < r; i++ {
			ents := retained[i]
			c := cur[i]
			for c < len(ents) && ents[c].key < key {
				c++
			}
			rank := math.Inf(1)
			tuple[i] = 0
			if c < len(ents) && ents[c].key == key {
				rank = ents[c].rank
				tuple[i] = ents[c].weight
				c++
			}
			cur[i] = c
			if insts[i].hasK && rank > insts[i].boundary {
				branch[i] = 1
			} else {
				branch[i] = 0
			}
		}
		scheme, ok := schemes[string(branch)]
		if !ok {
			tau := make([]float64, r)
			for i := range tau {
				if branch[i] == 1 {
					tau[i] = insts[i].tauOut
				} else {
					tau[i] = insts[i].tauIn
				}
			}
			var err error
			scheme, err = sampling.NewTupleScheme(tau)
			if err != nil {
				// Unreachable: ranks are positive, so every tau is
				// positive and finite.
				panic(fmt.Sprintf("engine: item %d scheme: %v", key, err))
			}
			schemes[string(branch)] = scheme
		}
		base := j * r
		o := scheme.SampleInto(tuple, hash.U(key), knownArena[base:base+r:base+r], valsArena[base:base+r:base+r])
		outcomes[j] = o
		sampled += o.NumKnown()
	}
	return sampled
}
