package engine

import (
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/sampling"
)

// equalSnapshots asserts two snapshots carry identical information:
// same keys, bit-identical outcomes (seed, knowledge, values, tau) and
// the same bookkeeping.
func equalSnapshots(t *testing.T, a, b Snapshot) {
	t.Helper()
	if len(a.Keys) != len(b.Keys) {
		t.Fatalf("key counts %d != %d", len(a.Keys), len(b.Keys))
	}
	for j := range a.Keys {
		if a.Keys[j] != b.Keys[j] {
			t.Fatalf("key[%d] = %d != %d", j, a.Keys[j], b.Keys[j])
		}
		if !a.Sample.Outcomes[j].Same(b.Sample.Outcomes[j]) {
			t.Fatalf("item %d: outcome %+v != %+v", j, a.Sample.Outcomes[j], b.Sample.Outcomes[j])
		}
	}
	if a.Sample.SampledEntries != b.Sample.SampledEntries {
		t.Errorf("SampledEntries %d != %d", a.Sample.SampledEntries, b.Sample.SampledEntries)
	}
	if a.Sample.TotalEntries != b.Sample.TotalEntries {
		t.Errorf("TotalEntries %d != %d", a.Sample.TotalEntries, b.Sample.TotalEntries)
	}
}

// sharedBacking reports whether two snapshots are the same reduction (the
// cache handed out one value twice) by comparing backing array pointers.
func sharedBacking(a, b Snapshot) bool {
	if len(a.Keys) == 0 || len(b.Keys) == 0 {
		return len(a.Keys) == len(b.Keys)
	}
	return &a.Keys[0] == &b.Keys[0] && &a.Sample.Outcomes[0].Known[0] == &b.Sample.Outcomes[0].Known[0]
}

func TestVersionCounting(t *testing.T) {
	e, err := New(Config{Instances: 2, K: 4, Shards: 4, Hash: sampling.NewSeedHash(3)})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Version(); got != 0 {
		t.Fatalf("fresh engine version = %d, want 0", got)
	}
	if err := e.Ingest(0, 7, 1.5); err != nil {
		t.Fatal(err)
	}
	if got := e.Version(); got != 1 {
		t.Fatalf("version after one ingest = %d, want 1", got)
	}
	// Zero weights and rejected updates must NOT bump the version.
	if err := e.Ingest(0, 8, 0); err != nil {
		t.Fatal(err)
	}
	if err := e.Ingest(-1, 8, 1); err == nil {
		t.Fatal("invalid instance accepted")
	}
	if got := e.Version(); got != 1 {
		t.Fatalf("version after no-ops = %d, want 1", got)
	}
	// IngestBatch bumps by the number of non-zero updates.
	if err := e.IngestBatch([]Update{
		{Instance: 0, Key: 9, Weight: 2},
		{Instance: 1, Key: 9, Weight: 0}, // zero: skipped
		{Instance: 1, Key: 10, Weight: 3},
	}); err != nil {
		t.Fatal(err)
	}
	if got := e.Version(); got != 3 {
		t.Fatalf("version after batch = %d, want 3", got)
	}
	// An all-zero batch is a complete no-op.
	if err := e.IngestBatch([]Update{{Instance: 0, Key: 11, Weight: 0}}); err != nil {
		t.Fatal(err)
	}
	if got := e.Version(); got != 3 {
		t.Fatalf("version after all-zero batch = %d, want 3", got)
	}
	// A dominated duplicate (max semantics: weight ≤ the retained one)
	// changes no snapshot-visible state, so it counts as traffic but NOT
	// as a mutation — the cached snapshot survives duplicate-heavy
	// streams.
	snapBefore, _ := e.CachedSnapshot(0)
	if err := e.Ingest(0, 7, 0.1); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Version != 3 || st.Ingests != 4 {
		t.Fatalf("Stats version/ingests = %d/%d, want 3/4", st.Version, st.Ingests)
	}
	snapAfter, _ := e.CachedSnapshot(0)
	if !sharedBacking(snapBefore, snapAfter) {
		t.Fatal("dominated duplicate invalidated the cache")
	}
	// A weight increase on the same entry IS a mutation.
	if err := e.Ingest(0, 7, 5); err != nil {
		t.Fatal(err)
	}
	if got := e.Version(); got != 4 {
		t.Fatalf("version after weight increase = %d, want 4", got)
	}
}

func TestCachedSnapshotReuseAndInvalidation(t *testing.T) {
	d := dataset.Flows(dataset.FlowsConfig{N: 300, Seed: 11})
	hash := sampling.NewSeedHash(42)
	e, err := New(Config{Instances: d.R(), K: 8, Shards: 8, Hash: hash})
	if err != nil {
		t.Fatal(err)
	}
	ingestDataset(t, e, d, nil, false)

	c1, v1 := e.CachedSnapshot(0)
	c2, v2 := e.CachedSnapshot(0)
	if v1 != v2 {
		t.Fatalf("versions differ without mutation: %d != %d", v1, v2)
	}
	if !sharedBacking(c1, c2) {
		t.Fatal("repeat CachedSnapshot rebuilt instead of reusing")
	}
	// A zero-weight ingest must not invalidate the cache.
	if err := e.Ingest(0, 12345, 0); err != nil {
		t.Fatal(err)
	}
	c3, v3 := e.CachedSnapshot(0)
	if v3 != v1 || !sharedBacking(c1, c3) {
		t.Fatal("zero-weight no-op invalidated the cache")
	}
	// The cached snapshot is bit-identical to a fresh reduction and to
	// the batch sampler.
	batch, err := dataset.SampleBottomK(d, 8, hash)
	if err != nil {
		t.Fatal(err)
	}
	requireEqualSamples(t, c1, batch)

	// A real mutation invalidates: new version, new reduction, and the
	// new cut is again bit-identical to batch on the mutated data.
	d2 := dataset.Flows(dataset.FlowsConfig{N: 300, Seed: 12})
	ingestDataset(t, e, d2, nil, false)
	c4, v4 := e.CachedSnapshot(0)
	if v4 <= v1 {
		t.Fatalf("version did not advance: %d <= %d", v4, v1)
	}
	if sharedBacking(c1, c4) {
		t.Fatal("mutated engine served the stale snapshot at maxStale=0")
	}
	equalSnapshots(t, c4, e.Snapshot())
}

func TestSnapshotPublishesToCache(t *testing.T) {
	e, err := New(Config{Instances: 2, K: 4, Shards: 2, Hash: sampling.NewSeedHash(1)})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Ingest(0, 1, 2.5); err != nil {
		t.Fatal(err)
	}
	fresh := e.Snapshot()
	cached, _ := e.CachedSnapshot(0)
	if !sharedBacking(fresh, cached) {
		t.Fatal("Snapshot() did not publish its reduction to the cache")
	}
}

func TestCachedSnapshotMaxStale(t *testing.T) {
	e, err := New(Config{Instances: 2, K: 4, Shards: 4, Hash: sampling.NewSeedHash(9)})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Ingest(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	old, vOld := e.CachedSnapshot(0)
	if err := e.Ingest(1, 2, 3); err != nil {
		t.Fatal(err)
	}
	// Within the staleness bound the old cut is served even though the
	// version moved on.
	stale, vStale := e.CachedSnapshot(time.Hour)
	if vStale != vOld || !sharedBacking(old, stale) {
		t.Fatal("bounded-staleness read did not reuse the recent snapshot")
	}
	// An exact read re-reduces and refreshes the cache for everyone.
	exact, vExact := e.CachedSnapshot(0)
	if vExact <= vOld || sharedBacking(old, exact) {
		t.Fatal("exact read served a stale snapshot")
	}
	after, vAfter := e.CachedSnapshot(time.Hour)
	if vAfter != vExact || !sharedBacking(exact, after) {
		t.Fatal("staleness-bounded read ignored the refreshed cache")
	}
}

// TestCachedSnapshotConcurrent exercises the lock-free read path under
// concurrent ingest with -race: readers must always observe internally
// consistent snapshots and monotone versions.
func TestCachedSnapshotConcurrent(t *testing.T) {
	d := dataset.Flows(dataset.FlowsConfig{N: 400, Seed: 21})
	hash := sampling.NewSeedHash(17)
	e, err := New(Config{Instances: d.R(), K: 10, Shards: 8, Hash: hash})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < d.R(); i++ {
				for k := 0; k < d.N(); k++ {
					if wt := d.W[i][k]; wt > 0 {
						if err := e.Ingest(i, uint64(k), wt); err != nil {
							t.Error(err)
							return
						}
					}
				}
			}
		}(w)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var last uint64
			maxStale := time.Duration(0)
			if g%2 == 1 {
				maxStale = time.Millisecond
			}
			for i := 0; i < 50; i++ {
				snap, v := e.CachedSnapshot(maxStale)
				if v < last {
					t.Errorf("version went backwards: %d after %d", v, last)
					return
				}
				last = v
				if len(snap.Keys) != len(snap.Sample.Outcomes) {
					t.Errorf("snapshot keys/outcomes mismatch: %d != %d", len(snap.Keys), len(snap.Sample.Outcomes))
					return
				}
			}
		}(g)
	}
	wg.Wait()
	batch, err := dataset.SampleBottomK(d, 10, hash)
	if err != nil {
		t.Fatal(err)
	}
	final, v := e.CachedSnapshot(0)
	if v != e.Version() {
		t.Fatalf("quiescent cached version %d != engine version %d", v, e.Version())
	}
	requireEqualSamples(t, final, batch)
}

// TestStatsConsistentCutUnderIngest asserts Stats is a true point-in-time
// cut while writers run: the invariants that tie its counters together
// can never be observed violated (run with -race in CI).
func TestStatsConsistentCutUnderIngest(t *testing.T) {
	e, err := New(Config{Instances: 2, K: 6, Shards: 8, Hash: sampling.NewSeedHash(5)})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := uint64(0); ; k++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := e.Ingest(int(k%2), k*4+uint64(w), float64(k%97+1)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	var prev Stats
	for i := 0; i < 200; i++ {
		st := e.Stats()
		if st.Keys > st.ActiveEntries || st.ActiveEntries > st.Keys*st.Instances {
			t.Fatalf("inconsistent cut: keys=%d active=%d instances=%d", st.Keys, st.ActiveEntries, st.Instances)
		}
		if st.RetainedEntries > st.Instances*(st.K+1)*st.Shards {
			t.Fatalf("retained %d above sketch bound", st.RetainedEntries)
		}
		// Every writer key is distinct, so accepted ingests == keys and
		// a consistent cut must agree exactly; versions count the same
		// events, so they match too.
		if st.Ingests != uint64(st.Keys) {
			t.Fatalf("torn cut: ingests=%d keys=%d", st.Ingests, st.Keys)
		}
		if st.Version != st.Ingests {
			t.Fatalf("version %d != ingests %d", st.Version, st.Ingests)
		}
		if st.Keys < prev.Keys || st.Version < prev.Version {
			t.Fatalf("counts went backwards: %+v after %+v", st, prev)
		}
		prev = st
	}
	close(stop)
	wg.Wait()
}

// TestReduceWorkersChunking forces multi-worker reductions (this also
// covers single-CPU CI, where GOMAXPROCS would keep the fan-out at 1) and
// asserts chunk-boundary cursor seeding changes nothing: the reduction is
// bit-identical to the batch sampler for every worker count.
func TestReduceWorkersChunking(t *testing.T) {
	orig := reduceWorkers
	defer func() { reduceWorkers = orig }()

	d := dataset.Flows(dataset.FlowsConfig{N: 500, Seed: 31})
	hash := sampling.NewSeedHash(23)
	batch, err := dataset.SampleBottomK(d, 16, hash)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 7, 16} {
		reduceWorkers = func(int) int { return workers }
		e, err := New(Config{Instances: d.R(), K: 16, Shards: 4, Hash: hash})
		if err != nil {
			t.Fatal(err)
		}
		ingestDataset(t, e, d, nil, false)
		requireEqualSamples(t, e.Snapshot(), batch)
	}
}

// TestIngestBatchScratchReuse checks the two-pass bucketing survives pool
// reuse across differently-sized batches and concurrent callers.
func TestIngestBatchScratchReuse(t *testing.T) {
	d := dataset.Stable(dataset.StableConfig{N: 120, Churn: 0.3, Seed: 2})
	hash := sampling.NewSeedHash(8)
	e, err := New(Config{Instances: d.R(), K: 12, Shards: 8, Hash: hash})
	if err != nil {
		t.Fatal(err)
	}
	var updates []Update
	for i := 0; i < d.R(); i++ {
		for k := 0; k < d.N(); k++ {
			if d.W[i][k] > 0 {
				updates = append(updates, Update{Instance: i, Key: uint64(k), Weight: d.W[i][k]})
			}
		}
	}
	// Concurrent variously-sized sub-batches (idempotent under max
	// semantics), then the whole batch again in one call.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for lo := 0; lo < len(updates); lo += 7 + w {
				hi := min(lo+7+w, len(updates))
				if err := e.IngestBatch(updates[lo:hi]); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := e.IngestBatch(updates); err != nil {
		t.Fatal(err)
	}
	batch, err := dataset.SampleBottomK(d, 12, hash)
	if err != nil {
		t.Fatal(err)
	}
	requireEqualSamples(t, e.Snapshot(), batch)
}
