package engine

// bkHeap keeps the cap smallest-rank entries seen so far: a max-heap on
// rank (root = largest retained rank, the eviction candidate) with a
// position index so that a max-weight update can decrease an entry's rank
// in place. A hand-rolled heap avoids container/heap's interface
// allocations on the ingest hot path.
type bkHeap struct {
	cap int
	es  []bkEntry
	pos map[uint64]int
}

// bkEntry is one retained (key, weight, rank) triple.
type bkEntry struct {
	key    uint64
	weight float64
	rank   float64
}

func newBKHeap(cap int) bkHeap {
	return bkHeap{cap: cap, pos: make(map[uint64]int, cap)}
}

// update folds an observation in under max-weight semantics: a retained
// key keeps its largest weight (= smallest rank); a new key is admitted if
// there is room or it outranks the current eviction candidate. Ranks only
// decrease over an entry's lifetime, so eviction is permanent unless the
// key itself later arrives with a larger weight. It reports whether the
// heap changed — dominated duplicates and non-admitted keys are no-ops
// that must not invalidate cached snapshots.
func (h *bkHeap) update(key uint64, w, rank float64) bool {
	if i, ok := h.pos[key]; ok {
		if w <= h.es[i].weight {
			return false
		}
		h.es[i].weight = w
		h.es[i].rank = rank
		h.down(i) // rank decreased: sink in the max-heap
		return true
	}
	if len(h.es) < h.cap {
		h.es = append(h.es, bkEntry{key: key, weight: w, rank: rank})
		h.pos[key] = len(h.es) - 1
		h.up(len(h.es) - 1)
		return true
	}
	if rank >= h.es[0].rank {
		return false
	}
	delete(h.pos, h.es[0].key)
	h.es[0] = bkEntry{key: key, weight: w, rank: rank}
	h.pos[key] = 0
	h.down(0)
	return true
}

func (h *bkHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if h.es[p].rank >= h.es[i].rank {
			return
		}
		h.swap(p, i)
		i = p
	}
}

func (h *bkHeap) down(i int) {
	for {
		m := i
		if l := 2*i + 1; l < len(h.es) && h.es[l].rank > h.es[m].rank {
			m = l
		}
		if r := 2*i + 2; r < len(h.es) && h.es[r].rank > h.es[m].rank {
			m = r
		}
		if m == i {
			return
		}
		h.swap(i, m)
		i = m
	}
}

func (h *bkHeap) swap(i, j int) {
	h.es[i], h.es[j] = h.es[j], h.es[i]
	h.pos[h.es[i].key] = i
	h.pos[h.es[j].key] = j
}
