package engine

import (
	"testing"
	"time"

	"repro/internal/sampling"
)

func notifyEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := New(Config{Instances: 2, K: 4, Shards: 4, Hash: sampling.NewSeedHash(1)})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func drained(ch <-chan struct{}) bool {
	select {
	case <-ch:
		return false
	default:
		return true
	}
}

func TestMutationSignalFiresOnMutation(t *testing.T) {
	e := notifyEngine(t)
	sig := e.MutationSignal()
	if !drained(sig) {
		t.Fatal("fresh engine has a pending signal")
	}
	if err := e.Ingest(0, 1, 1.0); err != nil {
		t.Fatal(err)
	}
	select {
	case <-sig:
	case <-time.After(time.Second):
		t.Fatal("no signal after a mutating ingest")
	}
	if !drained(sig) {
		t.Fatal("one mutation queued more than one signal")
	}
}

func TestMutationSignalSkipsNoOps(t *testing.T) {
	e := notifyEngine(t)
	if err := e.Ingest(0, 1, 2.0); err != nil {
		t.Fatal(err)
	}
	sig := e.MutationSignal()
	<-sig
	// Zero weight, dominated duplicate, rejected update: none bump the
	// version, none may signal.
	if err := e.Ingest(0, 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := e.Ingest(0, 1, 1.5); err != nil {
		t.Fatal(err)
	}
	if err := e.Ingest(-1, 1, 1.0); err == nil {
		t.Fatal("invalid instance accepted")
	}
	if err := e.IngestBatch([]Update{{Instance: 0, Key: 1, Weight: 0.5}, {Instance: 0, Key: 1, Weight: 0}}); err != nil {
		t.Fatal(err)
	}
	if !drained(sig) {
		t.Fatal("non-mutating traffic signaled")
	}
}

func TestMutationSignalCoalescesBursts(t *testing.T) {
	e := notifyEngine(t)
	batch := make([]Update, 64)
	for i := range batch {
		batch[i] = Update{Instance: 0, Key: uint64(i), Weight: float64(i + 1)}
	}
	if err := e.IngestBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := e.Ingest(1, 7, 3.0); err != nil {
		t.Fatal(err)
	}
	sig := e.MutationSignal()
	<-sig
	if !drained(sig) {
		t.Fatal("burst left more than one pending signal")
	}
	// The consumer loop pattern: after draining, a new mutation must wake
	// the consumer again.
	if err := e.Ingest(1, 999, 1.0); err != nil {
		t.Fatal(err)
	}
	select {
	case <-sig:
	case <-time.After(time.Second):
		t.Fatal("signal lost after drain")
	}
}

func TestMutationSignalFiresOnRestoreAndMerge(t *testing.T) {
	src := notifyEngine(t)
	if err := src.Ingest(0, 42, 2.5); err != nil {
		t.Fatal(err)
	}
	st := src.DumpState()

	fresh := notifyEngine(t)
	if err := fresh.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	select {
	case <-fresh.MutationSignal():
	case <-time.After(time.Second):
		t.Fatal("no signal after RestoreState")
	}

	other := notifyEngine(t)
	if err := other.MergeState(st); err != nil {
		t.Fatal(err)
	}
	select {
	case <-other.MutationSignal():
	case <-time.After(time.Second):
		t.Fatal("no signal after MergeState")
	}
}
