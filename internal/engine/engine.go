package engine

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/dataset"
	"repro/internal/sampling"
)

// Config parameterizes an Engine.
type Config struct {
	// Instances is the number of coordinated instances r. Required.
	Instances int
	// K is the per-instance bottom-k sketch size. Required.
	K int
	// Shards is the number of lock-striped shards. Default 16.
	Shards int
	// Hash derives the shared per-item seeds; pass the same hasher to
	// dataset.SampleBottomK to reproduce a batch sample exactly.
	Hash sampling.SeedHash
}

// Update is one weighted observation for batched ingest.
type Update struct {
	// Instance is the target instance in [0, Instances).
	Instance int `json:"instance"`
	// Key identifies the item (sampling.StringKey maps names here).
	Key uint64 `json:"key"`
	// Weight folds in under max semantics; zero is a no-op.
	Weight float64 `json:"weight"`
}

// Engine is a sharded streaming store of coordinated bottom-k sketches.
// Methods are safe for concurrent use.
type Engine struct {
	cfg       Config
	maskWords int
	shards    []*shard
	ingests   atomic.Uint64
}

// New validates the configuration and returns an empty engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Instances < 1 {
		return nil, fmt.Errorf("engine: instances %d must be positive", cfg.Instances)
	}
	if cfg.K < 1 {
		return nil, fmt.Errorf("engine: bottom-k size %d must be positive", cfg.K)
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("engine: shard count %d must be nonnegative", cfg.Shards)
	}
	if cfg.Shards == 0 {
		cfg.Shards = 16
	}
	e := &Engine{
		cfg:       cfg,
		maskWords: (cfg.Instances + 63) / 64,
		shards:    make([]*shard, cfg.Shards),
	}
	for s := range e.shards {
		heaps := make([]bkHeap, cfg.Instances)
		for i := range heaps {
			// k+1 entries per instance: Snapshot needs the k+1 globally
			// smallest ranks, and the union of shard heaps covers them.
			heaps[i] = newBKHeap(cfg.K + 1)
		}
		e.shards[s] = &shard{items: make(map[uint64]*item), heaps: heaps}
	}
	return e, nil
}

// Config returns the engine's (defaulted) configuration.
func (e *Engine) Config() Config { return e.cfg }

// Ingest folds one observation into the sketches under max-weight
// semantics. Negative, NaN or infinite weights are rejected; zero weights
// are accepted no-ops (a zero entry is never sampled).
func (e *Engine) Ingest(instance int, key uint64, weight float64) error {
	if err := e.check(instance, weight); err != nil {
		return err
	}
	if weight == 0 {
		return nil
	}
	sh := e.shards[e.shardOf(key)]
	sh.mu.Lock()
	sh.ingest(e, instance, key, weight)
	sh.mu.Unlock()
	e.ingests.Add(1)
	return nil
}

// IngestBatch folds a batch of observations, taking each shard lock at
// most once. The batch is validated up front and applied atomically per
// shard (not across shards).
func (e *Engine) IngestBatch(updates []Update) error {
	for j, u := range updates {
		if err := e.check(u.Instance, u.Weight); err != nil {
			return fmt.Errorf("engine: update %d: %w", j, err)
		}
	}
	byShard := make(map[int][]Update, len(e.shards))
	for _, u := range updates {
		if u.Weight == 0 {
			continue
		}
		s := e.shardOf(u.Key)
		byShard[s] = append(byShard[s], u)
	}
	for s, batch := range byShard {
		sh := e.shards[s]
		sh.mu.Lock()
		for _, u := range batch {
			sh.ingest(e, u.Instance, u.Key, u.Weight)
		}
		sh.mu.Unlock()
		e.ingests.Add(uint64(len(batch)))
	}
	return nil
}

func (e *Engine) check(instance int, weight float64) error {
	if instance < 0 || instance >= e.cfg.Instances {
		return fmt.Errorf("engine: instance %d outside [0, %d)", instance, e.cfg.Instances)
	}
	if weight < 0 || math.IsNaN(weight) || math.IsInf(weight, 0) {
		return fmt.Errorf("engine: weight %g must be finite and nonnegative", weight)
	}
	return nil
}

// shardOf mixes the key (independently of the seed hash) and maps it to a
// shard index.
func (e *Engine) shardOf(key uint64) int {
	x := key
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return int(x % uint64(len(e.shards)))
}

// Snapshot is a consistent cut of the engine reduced to per-item monotone
// outcomes — the streaming equivalent of dataset.SampleBottomK's result.
type Snapshot struct {
	// Keys holds every ingested item key in ascending order, parallel to
	// Sample.Outcomes.
	Keys []uint64
	// Sample carries the outcomes and the storage bookkeeping; every
	// outcome estimator (L*, U*, HT, Jaccard) applies to it unmodified.
	Sample dataset.CoordinatedSample
}

// Snapshot reduces the live sketches to per-item outcomes via the shared
// conditional-threshold reduction (footnote 1). For any arrival order and
// any max-dominated duplicates, the result is bit-identical to
// dataset.SampleBottomK on the aggregated weight matrix — provided the
// item keys are the matrix's column indices 0..n-1, since the batch
// sampler seeds item k with hash.U(uint64(k)). Sparse or string-hashed
// keys yield the same reduction over their own seed set. All shards are
// locked for the duration, giving writers a brief pause but an exactly
// consistent cut.
func (e *Engine) Snapshot() Snapshot {
	for _, sh := range e.shards {
		sh.mu.Lock()
	}
	defer func() {
		for _, sh := range e.shards {
			sh.mu.Unlock()
		}
	}()

	r, k := e.cfg.Instances, e.cfg.K
	total := 0
	for _, sh := range e.shards {
		total += len(sh.items)
	}
	keys := make([]uint64, 0, total)
	seeds := make(map[uint64]float64, total)
	activeEntries := 0
	for _, sh := range e.shards {
		for key, it := range sh.items {
			keys = append(keys, key)
			seeds[key] = it.seed
		}
		activeEntries += sh.activeEntries
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	// Per instance: the k+1 smallest ranks over all shards, and the
	// retained (rank, weight) of each sketched item.
	smallest := make([][]float64, r)
	retained := make([]map[uint64]bkEntry, r)
	for i := 0; i < r; i++ {
		var ranks []float64
		retained[i] = make(map[uint64]bkEntry)
		for _, sh := range e.shards {
			for _, en := range sh.heaps[i].es {
				ranks = append(ranks, en.rank)
				retained[i][en.key] = en
			}
		}
		smallest[i] = sampling.KSmallest(ranks, k+1)
	}

	snap := Snapshot{
		Keys:   keys,
		Sample: dataset.CoordinatedSample{Outcomes: make([]sampling.TupleOutcome, len(keys))},
	}
	snap.Sample.TotalEntries = activeEntries
	tuple := make([]float64, r)
	for j, key := range keys {
		tau := make([]float64, r)
		for i := 0; i < r; i++ {
			rank := math.Inf(1)
			tuple[i] = 0
			if en, ok := retained[i][key]; ok {
				rank = en.rank
				tuple[i] = en.weight
			}
			tau[i] = sampling.TauFromThreshold(sampling.CondThreshold(smallest[i], k, rank))
		}
		scheme, err := sampling.NewTupleScheme(tau)
		if err != nil {
			// Unreachable: ranks are positive, so every tau is positive
			// and finite.
			panic(fmt.Sprintf("engine: item %d scheme: %v", key, err))
		}
		o := scheme.Sample(tuple, seeds[key])
		snap.Sample.Outcomes[j] = o
		snap.Sample.SampledEntries += o.NumKnown()
	}
	return snap
}

// Index returns the position of key in Keys (and hence in
// Sample.Outcomes), or false when the key was never ingested. Keys is
// sorted ascending, so this is a binary search — the query layer resolves
// per-query item selections against one shared snapshot with it.
func (s Snapshot) Index(key uint64) (int, bool) {
	i := sort.Search(len(s.Keys), func(i int) bool { return s.Keys[i] >= key })
	if i < len(s.Keys) && s.Keys[i] == key {
		return i, true
	}
	return 0, false
}

// Stats summarizes the engine's contents and traffic.
type Stats struct {
	// Instances, K and Shards echo the configuration.
	Instances int `json:"instances"`
	K         int `json:"k"`
	Shards    int `json:"shards"`
	// Keys counts distinct item keys ever ingested.
	Keys int `json:"keys"`
	// ActiveEntries counts distinct (instance, key) pairs with positive
	// ingested weight — the batch sampler's TotalEntries.
	ActiveEntries int `json:"active_entries"`
	// RetainedEntries counts (instance, key) pairs currently held in
	// sketch heaps — the sketch's actual storage.
	RetainedEntries int `json:"retained_entries"`
	// Ingests counts accepted non-zero ingest operations.
	Ingests uint64 `json:"ingests"`
}

// Stats returns a point-in-time summary.
func (e *Engine) Stats() Stats {
	st := Stats{
		Instances: e.cfg.Instances,
		K:         e.cfg.K,
		Shards:    e.cfg.Shards,
		Ingests:   e.ingests.Load(),
	}
	for _, sh := range e.shards {
		sh.mu.Lock()
		st.Keys += len(sh.items)
		st.ActiveEntries += sh.activeEntries
		for i := range sh.heaps {
			st.RetainedEntries += len(sh.heaps[i].es)
		}
		sh.mu.Unlock()
	}
	return st
}

// shard is one lock stripe: the items routed to it and its slice of every
// instance's bottom-(k+1) heap.
type shard struct {
	mu            sync.Mutex
	items         map[uint64]*item
	heaps         []bkHeap
	activeEntries int
}

// item is the per-key registry entry: the hashed seed plus which instances
// have seen a positive weight (for exact TotalEntries bookkeeping). It
// costs O(1) words per key — the registry lets Snapshot emit outcomes for
// unsketched items too, matching the batch sampler's full outcome list.
type item struct {
	seed float64
	mask []uint64
}

func (sh *shard) ingest(e *Engine, instance int, key uint64, w float64) {
	it, ok := sh.items[key]
	if !ok {
		it = &item{seed: e.cfg.Hash.U(key), mask: make([]uint64, e.maskWords)}
		sh.items[key] = it
	}
	word, bit := instance/64, uint64(1)<<(instance%64)
	if it.mask[word]&bit == 0 {
		it.mask[word] |= bit
		sh.activeEntries++
	}
	rank := sampling.Rank(sampling.RankPriority, it.seed, w)
	sh.heaps[instance].update(key, w, rank)
}
