package engine

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/sampling"
)

// Config parameterizes an Engine.
type Config struct {
	// Instances is the number of coordinated instances r. Required.
	Instances int
	// K is the per-instance bottom-k sketch size. Required.
	K int
	// Shards is the number of lock-striped shards. Default 16.
	Shards int
	// Hash derives the shared per-item seeds; pass the same hasher to
	// dataset.SampleBottomK to reproduce a batch sample exactly.
	Hash sampling.SeedHash
}

// Update is one weighted observation for batched ingest.
type Update struct {
	// Instance is the target instance in [0, Instances).
	Instance int `json:"instance"`
	// Key identifies the item (sampling.StringKey maps names here).
	Key uint64 `json:"key"`
	// Weight folds in under max semantics; zero is a no-op.
	Weight float64 `json:"weight"`
}

// Journal durably records accepted updates — the engine's write-ahead
// hook. Append is called with batches of validated, non-zero-weight
// updates UNDER THE OWNING SHARD'S LOCK, immediately before they are
// applied in the same critical section. That placement is what makes
// checkpoints sound: any consistent cut (which acquires every shard lock)
// observes the application of every batch journaled before it, so a
// store that rotates its WAL before cutting can prune the closed tail
// without losing an update. Replay may observe batches in a different
// interleaving than they were applied in: the sketch fold is commutative
// and idempotent under max semantics (the batch-equivalence tests prove
// order-independence), so any replay order reproduces the same state.
// Implementations must be safe for concurrent use, must not retain the
// batch slice past the call, and must never call back into the engine.
type Journal interface {
	Append(batch []Update) error
}

// Engine is a sharded streaming store of coordinated bottom-k sketches.
// Methods are safe for concurrent use.
type Engine struct {
	cfg       Config
	maskWords int
	shards    []*shard
	ingests   atomic.Uint64
	// journal, when set, receives every accepted update batch before it is
	// applied (write-ahead). Set via SetJournal before concurrent use.
	journal Journal
	// cache is the last reduced snapshot with the version it was cut at;
	// CachedSnapshot serves it lock-free while the version holds, and
	// rebuildMu single-flights cache-miss rebuilds.
	cache     atomic.Pointer[snapshotCacheEntry]
	rebuildMu sync.Mutex
	// Incremental snapshot state (see partition.go), all guarded by
	// rebuildMu: the per-shard reduced partitions, the global thresholds
	// they were reduced under, the cached key-merge plan, and the epoch
	// sequence stamping each partition reduction.
	parts    []*partition
	insts    []instThresholds
	plan     *mergePlan
	epochSeq uint64
	// snapCtr observes the incremental rebuild path; counters are atomics
	// only so Stats can read them without rebuildMu.
	snapCtr snapshotCounters
	// notifyCh is the coalesced mutation signal behind MutationSignal: a
	// cap-1 channel poked (non-blocking) after every operation that bumped
	// the version, so a consumer wakes at least once per mutation burst.
	notifyCh chan struct{}
	// batch pools IngestBatch's shard-bucketing scratch (counts + reordered
	// updates) so steady-state batches allocate nothing.
	batch sync.Pool
}

// New validates the configuration and returns an empty engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Instances < 1 {
		return nil, fmt.Errorf("engine: instances %d must be positive", cfg.Instances)
	}
	if cfg.K < 1 {
		return nil, fmt.Errorf("engine: bottom-k size %d must be positive", cfg.K)
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("engine: shard count %d must be nonnegative", cfg.Shards)
	}
	if cfg.Shards > 65536 {
		// The merge plan stores the owning shard per item as a uint16.
		return nil, fmt.Errorf("engine: shard count %d exceeds 65536", cfg.Shards)
	}
	if cfg.Shards == 0 {
		cfg.Shards = 16
	}
	e := &Engine{
		cfg:       cfg,
		maskWords: (cfg.Instances + 63) / 64,
		shards:    make([]*shard, cfg.Shards),
		notifyCh:  make(chan struct{}, 1),
	}
	for s := range e.shards {
		heaps := make([]bkHeap, cfg.Instances)
		for i := range heaps {
			// k+1 entries per instance: Snapshot needs the k+1 globally
			// smallest ranks, and the union of shard heaps covers them.
			heaps[i] = newBKHeap(cfg.K + 1)
		}
		e.shards[s] = &shard{items: make(map[uint64]*item), heaps: heaps}
	}
	return e, nil
}

// Config returns the engine's (defaulted) configuration.
func (e *Engine) Config() Config { return e.cfg }

// SetJournal attaches the write-ahead journal. It must be called before
// the engine sees concurrent traffic (internal/store attaches it after
// recovery, before the server starts); a nil journal disables journaling.
func (e *Engine) SetJournal(j Journal) { e.journal = j }

// Ingest folds one observation into the sketches under max-weight
// semantics. Negative, NaN or infinite weights are rejected; zero weights
// are accepted no-ops (a zero entry is never sampled) that leave the
// engine version unchanged, so cached snapshots stay valid.
func (e *Engine) Ingest(instance int, key uint64, weight float64) error {
	if err := e.check(instance, weight); err != nil {
		return err
	}
	if weight == 0 {
		return nil
	}
	sh := e.shards[e.shardOf(key)]
	sh.mu.Lock()
	// Write-ahead under the shard lock: journaled-then-applied is one
	// critical section, so a checkpoint cut never misses a journaled
	// update (see Journal). A journal error rejects the update unapplied.
	if e.journal != nil {
		one := [1]Update{{Instance: instance, Key: key, Weight: weight}}
		if err := e.journal.Append(one[:]); err != nil {
			sh.mu.Unlock()
			return fmt.Errorf("engine: journal: %w", err)
		}
	}
	// Counters bump under the shard lock so a consistent cut (Snapshot,
	// Stats) reads version and traffic exactly as of the cut. Version
	// counts mutations only; Ingests counts accepted operations.
	mutated := sh.ingest(e, instance, key, weight)
	if mutated {
		sh.muts.Add(1)
	}
	e.ingests.Add(1)
	sh.mu.Unlock()
	if mutated {
		e.notifyMutation()
	}
	return nil
}

// batchScratch is IngestBatch's reusable bucketing state: per-shard counts
// doubling as fill cursors, and the shard-ordered copy of the batch.
type batchScratch struct {
	counts []int
	buf    []Update
}

// IngestBatch folds a batch of observations, taking each shard lock at
// most once. The batch is validated up front and applied atomically per
// shard (not across shards). Bucketing is a two-pass slice scheme (count
// per shard, then fill a shard-ordered copy) over pooled scratch, so the
// steady state allocates nothing.
func (e *Engine) IngestBatch(updates []Update) error {
	for j, u := range updates {
		if err := e.check(u.Instance, u.Weight); err != nil {
			return fmt.Errorf("engine: update %d: %w", j, err)
		}
	}
	sc, _ := e.batch.Get().(*batchScratch)
	if sc == nil {
		sc = &batchScratch{}
	}
	defer e.batch.Put(sc)
	ns := len(e.shards)
	if cap(sc.counts) < ns {
		sc.counts = make([]int, ns)
	}
	counts := sc.counts[:ns]
	clear(counts)

	nonzero := 0
	for _, u := range updates {
		if u.Weight == 0 {
			continue
		}
		counts[e.shardOf(u.Key)]++
		nonzero++
	}
	if nonzero == 0 {
		return nil
	}
	if cap(sc.buf) < nonzero {
		sc.buf = make([]Update, nonzero)
	}
	buf := sc.buf[:nonzero]
	// counts[s] becomes shard s's segment start, then serves as the fill
	// cursor; after the fill pass it is the segment end (= next start).
	start := 0
	for s, c := range counts {
		counts[s] = start
		start += c
	}
	for _, u := range updates {
		if u.Weight == 0 {
			continue
		}
		s := e.shardOf(u.Key)
		buf[counts[s]] = u
		counts[s]++
	}
	lo := 0
	batchMuts := uint64(0)
	for s := 0; s < ns; s++ {
		hi := counts[s]
		if hi == lo {
			continue
		}
		sh := e.shards[s]
		sh.mu.Lock()
		// Write-ahead per shard, inside the shard's critical section (see
		// Journal): each shard's sub-batch is one WAL record. A journal
		// error aborts the batch mid-way — shards already walked keep
		// their (journaled) updates, later shards see nothing, matching
		// the documented per-shard (not cross-shard) atomicity.
		if e.journal != nil {
			if err := e.journal.Append(buf[lo:hi]); err != nil {
				sh.mu.Unlock()
				return fmt.Errorf("engine: journal (batch partially applied): %w", err)
			}
		}
		muts := uint64(0)
		for _, u := range buf[lo:hi] {
			if sh.ingest(e, u.Instance, u.Key, u.Weight) {
				muts++
			}
		}
		sh.muts.Add(muts)
		batchMuts += muts
		e.ingests.Add(uint64(hi - lo))
		sh.mu.Unlock()
		lo = hi
	}
	if batchMuts > 0 {
		e.notifyMutation()
	}
	return nil
}

// MutationSignal returns the engine's coalesced mutation wakeup: the
// channel receives at least one value after any operation that advanced
// Version (ingest, batch, state restore/merge), with bursts collapsed
// into one pending signal. It is the hook push-based readers build on:
// wake, debounce, read Version, re-serve. The channel is never closed,
// and is intended for a single consumer — concurrent receivers split the
// signals between them.
func (e *Engine) MutationSignal() <-chan struct{} { return e.notifyCh }

// notifyMutation pokes the mutation signal without blocking: if a wakeup
// is already pending, the burst coalesces into it.
func (e *Engine) notifyMutation() {
	select {
	case e.notifyCh <- struct{}{}:
	default:
	}
}

// Version is the engine's mutation version: the total count of ingest
// operations that changed snapshot-visible state, summed from per-shard
// counters that bump under their shard lock. It is monotone, and equal
// versions across two reads guarantee no mutation completed in between —
// the invariant the snapshot cache rests on. Zero-weight no-ops, rejected
// updates and dominated duplicates (max semantics: a weight at or below
// the retained one) never bump it, so such traffic keeps serving the
// cached snapshot.
func (e *Engine) Version() uint64 {
	var v uint64
	for _, sh := range e.shards {
		v += sh.muts.Load()
	}
	return v
}

func (e *Engine) check(instance int, weight float64) error {
	if instance < 0 || instance >= e.cfg.Instances {
		return fmt.Errorf("engine: instance %d outside [0, %d)", instance, e.cfg.Instances)
	}
	if weight < 0 || math.IsNaN(weight) || math.IsInf(weight, 0) {
		return fmt.Errorf("engine: weight %g must be finite and nonnegative", weight)
	}
	return nil
}

// shardOf mixes the key (independently of the seed hash) and maps it to a
// shard index.
func (e *Engine) shardOf(key uint64) int {
	x := key
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return int(x % uint64(len(e.shards)))
}

// Stats summarizes the engine's contents and traffic. It is a consistent
// cut: Stats takes the same all-shard lock cut as Snapshot, so the counts
// describe one engine state (Keys, ActiveEntries, RetainedEntries,
// Ingests and Version all agree with each other).
type Stats struct {
	// Instances, K and Shards echo the configuration.
	Instances int `json:"instances"`
	K         int `json:"k"`
	Shards    int `json:"shards"`
	// Keys counts distinct item keys ever ingested.
	Keys int `json:"keys"`
	// ActiveEntries counts distinct (instance, key) pairs with positive
	// ingested weight — the batch sampler's TotalEntries.
	ActiveEntries int `json:"active_entries"`
	// RetainedEntries counts (instance, key) pairs currently held in
	// sketch heaps — the sketch's actual storage.
	RetainedEntries int `json:"retained_entries"`
	// Ingests counts accepted non-zero ingest operations.
	Ingests uint64 `json:"ingests"`
	// Version is the engine's mutation version as of the cut (see
	// Engine.Version).
	Version uint64 `json:"version"`
	// Snapshot observes the incremental rebuild path (see partition.go).
	Snapshot SnapshotStats `json:"snapshot"`
	// PerShard breaks mutation/rebuild/key counts down by shard, in shard
	// order — the observability handle for shard skew and dirty-shard
	// churn.
	PerShard []ShardStats `json:"per_shard"`
}

// SnapshotStats counts incremental snapshot rebuild work since engine
// start.
type SnapshotStats struct {
	// Rebuilds counts snapshot rebuilds that produced a view (cache
	// misses; cache hits are free and uncounted).
	Rebuilds uint64 `json:"rebuilds"`
	// PartitionsRebuilt and PartitionsReused split, across all rebuilds,
	// how many per-shard partitions were re-reduced vs reused verbatim.
	PartitionsRebuilt uint64 `json:"partitions_rebuilt"`
	PartitionsReused  uint64 `json:"partitions_reused"`
	// ThresholdRefreshes counts rebuilds where the global thresholds moved,
	// forcing every partition to re-reduce despite clean shards.
	ThresholdRefreshes uint64 `json:"threshold_refreshes"`
	// ThresholdSkips counts rebuilds that skipped the global threshold
	// re-gather entirely because every dirty partition's k+1 smallest
	// retained ranks were unchanged (the cached thresholds are provably
	// still exact).
	ThresholdSkips uint64 `json:"threshold_skips"`
	// PlanRebuilds counts key-merge-plan reconstructions (new keys
	// appeared; weight-only churn reuses the plan).
	PlanRebuilds uint64 `json:"plan_rebuilds"`
}

// ShardStats is one shard's row in Stats.PerShard.
type ShardStats struct {
	// Mutations is the shard's mutation counter (these sum to Version).
	Mutations uint64 `json:"mutations"`
	// Keys counts distinct item keys routed to the shard.
	Keys int `json:"keys"`
	// PartitionRebuilds counts how often the shard's partition was
	// re-reduced.
	PartitionRebuilds uint64 `json:"partition_rebuilds"`
}

// snapshotCounters backs Stats.Snapshot; fields mirror SnapshotStats.
type snapshotCounters struct {
	rebuilds        atomic.Uint64
	partsRebuilt    atomic.Uint64
	partsReused     atomic.Uint64
	threshRefreshes atomic.Uint64
	threshSkips     atomic.Uint64
	planRebuilds    atomic.Uint64
}

// Stats returns a point-in-time summary. All shard locks are held while
// the counters are read, so the summary is one exactly consistent cut —
// never, say, a key counted in one shard while its entries are missed in
// another.
func (e *Engine) Stats() Stats {
	st := Stats{
		Instances: e.cfg.Instances,
		K:         e.cfg.K,
		Shards:    e.cfg.Shards,
	}
	for _, sh := range e.shards {
		sh.mu.Lock()
	}
	// Ingests and the version counters bump under shard locks, so reading
	// them inside the cut keeps them consistent with the content counts.
	st.Ingests = e.ingests.Load()
	st.PerShard = make([]ShardStats, len(e.shards))
	for s, sh := range e.shards {
		m := sh.muts.Load()
		st.Version += m
		st.Keys += len(sh.items)
		st.ActiveEntries += sh.activeEntries
		for i := range sh.heaps {
			st.RetainedEntries += len(sh.heaps[i].es)
		}
		st.PerShard[s] = ShardStats{
			Mutations:         m,
			Keys:              len(sh.items),
			PartitionRebuilds: sh.rebuilds.Load(),
		}
	}
	// Rebuild counters bump under rebuildMu, not shard locks; they are
	// advisory observability, not part of the consistent cut.
	st.Snapshot = SnapshotStats{
		Rebuilds:           e.snapCtr.rebuilds.Load(),
		PartitionsRebuilt:  e.snapCtr.partsRebuilt.Load(),
		PartitionsReused:   e.snapCtr.partsReused.Load(),
		ThresholdRefreshes: e.snapCtr.threshRefreshes.Load(),
		ThresholdSkips:     e.snapCtr.threshSkips.Load(),
		PlanRebuilds:       e.snapCtr.planRebuilds.Load(),
	}
	for _, sh := range e.shards {
		sh.mu.Unlock()
	}
	return st
}

// shard is one lock stripe: the items routed to it and its slice of every
// instance's bottom-(k+1) heap. muts counts the shard's accepted non-zero
// ingests; it bumps under mu so that consistent cuts read it exactly, and
// is summed lock-free by Engine.Version.
type shard struct {
	mu   sync.Mutex
	muts atomic.Uint64
	// rebuilds counts re-reductions of this shard's snapshot partition; it
	// bumps under rebuildMu (not mu) and is read lock-free by Stats.
	rebuilds      atomic.Uint64
	items         map[uint64]*item
	heaps         []bkHeap
	activeEntries int
}

// item is the per-key registry entry: the hashed seed plus which instances
// have seen a positive weight (for exact TotalEntries bookkeeping). It
// costs O(1) words per key — the registry lets Snapshot emit outcomes for
// unsketched items too, matching the batch sampler's full outcome list.
type item struct {
	seed float64
	mask []uint64
}

// ingest folds one observation into the shard and reports whether any
// snapshot-visible state changed (registry bitmask or sketch heap). A
// dominated duplicate changes nothing and must not bump the mutation
// counter, so cached snapshots survive duplicate-heavy streams.
func (sh *shard) ingest(e *Engine, instance int, key uint64, w float64) bool {
	it, ok := sh.items[key]
	if !ok {
		it = &item{seed: e.cfg.Hash.U(key), mask: make([]uint64, e.maskWords)}
		sh.items[key] = it
	}
	mutated := false
	word, bit := instance/64, uint64(1)<<(instance%64)
	if it.mask[word]&bit == 0 {
		it.mask[word] |= bit
		sh.activeEntries++
		mutated = true
	}
	rank := sampling.Rank(sampling.RankPriority, it.seed, w)
	if sh.heaps[instance].update(key, w, rank) {
		mutated = true
	}
	return mutated
}
