package engine

import (
	"cmp"
	"fmt"
	"math"
	"math/bits"
	"slices"

	"repro/internal/sampling"
)

// This file is the engine's durable-state boundary: DumpState serializes
// a consistent cut of the sketch store into a State, RestoreState rebuilds
// an empty engine from one bit-identically, and MergeState folds one into
// a live engine under the lossless sketch-merge semantics (shared seeds ⇒
// merge = per-key max-union). internal/store encodes States to disk as
// checkpoints and export artifacts; the engine itself stays free of any
// I/O or encoding concerns.

// seedProbeKeys are the fixed keys whose seeds fingerprint a Config.Hash.
// The salt is private to sampling.SeedHash, so state compatibility is
// checked by comparing the seeds these keys hash to: two engines agreeing
// on both (post-finalizer 64-bit mixes of distant inputs) share the salt
// for every practical purpose.
var seedProbeKeys = [2]uint64{0, 0x9e3779b97f4a7c15}

// StateEntry is one retained sketch entry: an item key with its folded
// (max) weight. The rank is not stored — it is a pure function of the
// seed (itself a function of the key) and the weight.
type StateEntry struct {
	Key    uint64
	Weight float64
}

// State is a self-contained, deterministic serialization of an engine's
// sketch contents: the key registry with its per-instance activity masks
// plus every instance's retained bottom-k entries. Equal engine contents
// produce byte-for-byte equal States (all slices are key-sorted), so
// encoded states double as comparison artifacts. A State is independent
// of the shard layout it was cut from: restoring into an engine with a
// different shard count preserves snapshot semantics (the global
// bottom-(k+1) per instance survives re-routing), though per-shard
// retained counts may then differ.
type State struct {
	// Instances and K echo the configuration; both must match the target
	// engine exactly on restore/merge (heap caps and τ semantics depend on
	// them).
	Instances int
	K         int
	// Shards records the source layout (informational).
	Shards int
	// Version and Ingests are the source engine's counters at the cut.
	// RestoreState preserves both; MergeState folds Ingests in and lets
	// the mutation version advance naturally.
	Version uint64
	Ingests uint64
	// SeedCheck fingerprints the seed hash (seeds of seedProbeKeys); a
	// mismatch on restore/merge means a different salt, i.e. sketches that
	// must not be combined.
	SeedCheck [2]float64
	// Keys holds every ingested item key, ascending.
	Keys []uint64
	// Masks holds the per-key instance-activity bitmasks, maskWords words
	// per key, parallel to Keys.
	Masks []uint64
	// Entries holds each instance's retained (key, weight) pairs,
	// key-ascending.
	Entries [][]StateEntry
}

// maskWordsFor mirrors Engine.maskWords for a given instance count.
func maskWordsFor(instances int) int { return (instances + 63) / 64 }

// seedCheck computes the hash fingerprint stored in State.SeedCheck.
func seedCheck(h sampling.SeedHash) [2]float64 {
	return [2]float64{h.U(seedProbeKeys[0]), h.U(seedProbeKeys[1])}
}

// DumpState serializes the engine's contents as one consistent cut: all
// shard locks are held while keys, masks, heap entries and counters are
// copied out, then the copy is sorted lock-free. The result shares no
// memory with the engine.
func (e *Engine) DumpState() *State {
	mw := e.maskWords
	st := &State{
		Instances: e.cfg.Instances,
		K:         e.cfg.K,
		Shards:    e.cfg.Shards,
		SeedCheck: seedCheck(e.cfg.Hash),
		Entries:   make([][]StateEntry, e.cfg.Instances),
	}
	for _, sh := range e.shards {
		sh.mu.Lock()
	}
	total := 0
	for _, sh := range e.shards {
		total += len(sh.items)
	}
	st.Keys = make([]uint64, 0, total)
	st.Masks = make([]uint64, 0, total*mw)
	st.Ingests = e.ingests.Load()
	for _, sh := range e.shards {
		st.Version += sh.muts.Load()
		for key, it := range sh.items {
			st.Keys = append(st.Keys, key)
			st.Masks = append(st.Masks, it.mask...)
		}
	}
	for i := range st.Entries {
		n := 0
		for _, sh := range e.shards {
			n += len(sh.heaps[i].es)
		}
		ents := make([]StateEntry, 0, n)
		for _, sh := range e.shards {
			for _, en := range sh.heaps[i].es {
				ents = append(ents, StateEntry{Key: en.key, Weight: en.weight})
			}
		}
		st.Entries[i] = ents
	}
	for _, sh := range e.shards {
		sh.mu.Unlock()
	}

	// Sort keys ascending, permuting the masks alongside; map iteration
	// order must not leak into the serialized form.
	perm := make([]int, len(st.Keys))
	for i := range perm {
		perm[i] = i
	}
	slices.SortFunc(perm, func(a, b int) int { return cmp.Compare(st.Keys[a], st.Keys[b]) })
	keys := make([]uint64, len(st.Keys))
	masks := make([]uint64, len(st.Masks))
	for to, from := range perm {
		keys[to] = st.Keys[from]
		copy(masks[to*mw:(to+1)*mw], st.Masks[from*mw:(from+1)*mw])
	}
	st.Keys, st.Masks = keys, masks
	for i := range st.Entries {
		slices.SortFunc(st.Entries[i], func(a, b StateEntry) int { return cmp.Compare(a.Key, b.Key) })
	}
	return st
}

// validateState checks that st can be combined with the engine at all.
func (e *Engine) validateState(st *State) error {
	if st.Instances != e.cfg.Instances {
		return fmt.Errorf("engine: state has %d instances, engine %d", st.Instances, e.cfg.Instances)
	}
	if st.K != e.cfg.K {
		return fmt.Errorf("engine: state has k=%d, engine k=%d", st.K, e.cfg.K)
	}
	if sc := seedCheck(e.cfg.Hash); sc != st.SeedCheck {
		return fmt.Errorf("engine: state seed fingerprint %v does not match engine %v (different salt)", st.SeedCheck, sc)
	}
	mw := maskWordsFor(st.Instances)
	if len(st.Masks) != len(st.Keys)*mw {
		return fmt.Errorf("engine: state has %d mask words for %d keys (want %d)", len(st.Masks), len(st.Keys), len(st.Keys)*mw)
	}
	if len(st.Entries) != st.Instances {
		return fmt.Errorf("engine: state has %d entry lists for %d instances", len(st.Entries), st.Instances)
	}
	for i, ents := range st.Entries {
		for _, en := range ents {
			if en.Weight <= 0 || math.IsNaN(en.Weight) || math.IsInf(en.Weight, 0) {
				return fmt.Errorf("engine: state instance %d key %d weight %g must be finite and positive", i, en.Key, en.Weight)
			}
		}
	}
	return nil
}

// RestoreState rebuilds an empty engine from a dumped state. The engine
// must be freshly constructed (no prior ingests) and agree with the state
// on Instances, K and the seed hash; the shard count may differ. After a
// restore, Snapshot() is bit-identical to the source engine's at the cut,
// and the Ingests and Version counters continue from the dumped values —
// a clean-shutdown checkpoint round-trips byte-for-byte through
// DumpState/RestoreState.
func (e *Engine) RestoreState(st *State) error {
	if s := e.Stats(); s.Keys != 0 || s.Ingests != 0 {
		return fmt.Errorf("engine: restore into non-empty engine (%d keys, %d ingests)", s.Keys, s.Ingests)
	}
	if err := e.validateState(st); err != nil {
		return err
	}
	e.applyState(st, false)
	e.ingests.Store(st.Ingests)
	// Park the whole dumped version on shard 0 so Version() continues from
	// the cut; applyState deliberately skipped per-mutation bumps. That
	// parking bypasses per-shard mutation accounting, so any snapshot
	// partitions cut before the restore (shards 1..N-1 still read muts=0)
	// would wrongly pass the cleanliness check — drop them all.
	e.shards[0].muts.Store(st.Version)
	e.resetSnapshotState()
	e.notifyMutation()
	return nil
}

// MergeState folds a dumped state into a live engine: activity masks OR
// in (an instance that ever saw a key positive stays counted exactly
// once) and retained entries fold under max-weight semantics — the
// lossless coordinated-sketch merge, usable for import of portable sketch
// artifacts from other processes sharing the salt. The state's Ingests
// add to the engine's traffic counter and the mutation version advances
// per actual state change, so cached snapshots invalidate as usual.
func (e *Engine) MergeState(st *State) error {
	if err := e.validateState(st); err != nil {
		return err
	}
	e.applyState(st, true)
	e.ingests.Add(st.Ingests)
	// A merge may be a pure no-op (every mask bit and entry dominated),
	// but signaling spuriously is harmless: consumers re-read Version and
	// see nothing moved.
	e.notifyMutation()
	return nil
}

// applyState is the shared restore/merge walk. With countMuts, every
// snapshot-visible change bumps the owning shard's mutation counter under
// its lock (merge); without, counters are left for the caller (restore).
func (e *Engine) applyState(st *State, countMuts bool) {
	mw := maskWordsFor(st.Instances)
	for j, key := range st.Keys {
		sh := e.shards[e.shardOf(key)]
		sh.mu.Lock()
		it, ok := sh.items[key]
		if !ok {
			it = &item{seed: e.cfg.Hash.U(key), mask: make([]uint64, e.maskWords)}
			sh.items[key] = it
		}
		muts := uint64(0)
		for w := 0; w < mw; w++ {
			added := st.Masks[j*mw+w] &^ it.mask[w]
			if added != 0 {
				it.mask[w] |= added
				n := bits.OnesCount64(added)
				sh.activeEntries += n
				muts += uint64(n)
			}
		}
		if countMuts {
			sh.muts.Add(muts)
		}
		sh.mu.Unlock()
	}
	for i, ents := range st.Entries {
		for _, en := range ents {
			sh := e.shards[e.shardOf(en.Key)]
			seed := e.cfg.Hash.U(en.Key)
			rank := sampling.Rank(sampling.RankPriority, seed, en.Weight)
			sh.mu.Lock()
			if sh.heaps[i].update(en.Key, en.Weight, rank) && countMuts {
				sh.muts.Add(1)
			}
			sh.mu.Unlock()
		}
	}
}
