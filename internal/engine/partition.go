package engine

import (
	"cmp"
	"slices"
	"sync"
	"time"

	"repro/internal/sampling"
)

// This file is the incremental snapshot maintenance layer: each shard
// keeps its own reduced partition keyed by the shard's mutation counter,
// and a rebuild re-reduces only the partitions whose shard changed,
// merging them with the cached remainder. Because the footnote-1
// reduction is per-key given the global thresholds, and because a shard's
// mutation counter bumps under its lock on every snapshot-visible change,
// a partition whose counter is unchanged is provably byte-identical to
// what a from-scratch reduction would produce — so rebuild cost is
// O(touched shards + merge), not O(total keys), while Snapshot() stays
// bit-identical to dataset.SampleBottomK.
//
// Invariants (all partition state is guarded by rebuildMu):
//
//  1. partition.muts equals the owning shard's muts at the cut that
//     produced it; equal counters across cuts mean no snapshot-visible
//     change happened in between (the counter bumps under the shard lock).
//  2. Keys are never removed from a shard, so an unchanged key COUNT
//     means an unchanged key SET — the sorted keys slice can be reused
//     and the merge plan stays valid.
//  3. Outcomes depend on the partition's own (keys, retained entries)
//     plus the GLOBAL per-instance thresholds. A rebuild recomputes the
//     thresholds from every partition's retained ranks; if they moved,
//     every partition's outcomes are re-reduced (keys/entries reused),
//     otherwise only dirty partitions are.
//  4. Published snapshots alias partition arenas, so a re-reduction
//     always writes fresh outcome/arena storage and bumps the partition
//     epoch; an unchanged epoch guarantees unchanged outcome bytes
//     (servers key per-partition derived results by it).
type partition struct {
	// muts is the owning shard's mutation counter at the cut.
	muts uint64
	// epoch identifies this reduction of the partition; it changes iff the
	// outcomes were re-reduced (shard dirty or thresholds moved).
	epoch uint64
	// keys holds the shard's item keys, ascending.
	keys []uint64
	// retained holds, per instance, the shard's sketch heap entries sorted
	// by key — the partition-local merge-walk input.
	retained [][]bkEntry
	// outcomes are the reduced per-item outcomes, parallel to keys, backed
	// by partition-private arenas.
	outcomes []sampling.TupleOutcome
	// ranks holds, per instance, the k+1 smallest retained ranks of THIS
	// partition (sorted ascending). It serves double duty: the global
	// threshold gather works from these short lists instead of every
	// retained entry (the k+1 smallest of a union are each among their own
	// partition's k+1 smallest), and an unchanged ranks cache across a
	// rebuild proves the partition's threshold contribution is unchanged —
	// the threshold-stable skip's evidence.
	ranks [][]float64
	// sampled and active are the partition's contributions to the sample's
	// SampledEntries / TotalEntries bookkeeping.
	sampled int
	active  int
	// reduced records that outcomes were ever produced (a zero-key
	// partition has a non-nil empty outcomes slice either way).
	reduced bool
}

// mergePlan is the cached key-merge of all partitions: the globally sorted
// key slice, the owning shard per merged position, and per shard the
// merged position of each of its items. It depends only on the key sets,
// so it survives weight-only mutations unchanged. src is uint16 (New caps
// Shards at 65536) and pos is int32 (snapshots are bounded far below 2^31
// items in practice).
type mergePlan struct {
	keys []uint64
	src  []uint16
	pos  [][]int32
}

// rebuildLocked cuts the engine, re-reduces exactly the stale partitions
// and assembles the merged snapshot. The caller must hold rebuildMu.
func (e *Engine) rebuildLocked() SnapshotView {
	r, k := e.cfg.Instances, e.cfg.K
	ns := len(e.shards)
	if e.parts == nil {
		e.parts = make([]*partition, ns)
	}
	dirty := make([]bool, ns)
	sortKeys := make([]bool, ns)
	keysChanged := false
	anyDirty := false
	var version uint64

	// Consistent cut: all shard locks in index order; dirty shards have
	// their keys and heap entries copied out, clean shards cost one atomic
	// load — their cached partition is provably identical (invariant 1).
	prev := make([]*partition, ns)
	for _, sh := range e.shards {
		sh.mu.Lock()
	}
	at := time.Now()
	for s, sh := range e.shards {
		m := sh.muts.Load()
		version += m
		old := e.parts[s]
		if old != nil && old.reduced && old.muts == m {
			continue
		}
		anyDirty = true
		dirty[s] = true
		prev[s] = old
		p := &partition{muts: m, active: sh.activeEntries, retained: make([][]bkEntry, r)}
		if old != nil && len(old.keys) == len(sh.items) {
			p.keys = old.keys // invariant 2: same count ⇒ same sorted set
		} else {
			p.keys = make([]uint64, 0, len(sh.items))
			for key := range sh.items {
				p.keys = append(p.keys, key)
			}
			sortKeys[s] = true
			keysChanged = true
		}
		for i := 0; i < r; i++ {
			p.retained[i] = slices.Clone(sh.heaps[i].es)
		}
		e.parts[s] = p
	}
	for _, sh := range e.shards {
		sh.mu.Unlock()
	}

	// Nothing moved since the published snapshot: the cut just verified the
	// cache is exact, so serve it (FreshSnapshot stays an exact read).
	if !anyDirty {
		if c := e.cache.Load(); c != nil && c.version == version {
			return c.view
		}
	}

	// Lock-free: sort the freshly cut partitions.
	for s, p := range e.parts {
		if !dirty[s] {
			continue
		}
		if sortKeys[s] {
			slices.Sort(p.keys)
		}
		for i := range p.retained {
			slices.SortFunc(p.retained[i], func(a, b bkEntry) int { return cmp.Compare(a.key, b.key) })
		}
	}

	// Refresh each dirty partition's per-instance k+1 smallest rank cache.
	// When every dirty partition's cache comes out unchanged, no partition's
	// threshold contribution moved (clean partitions are unchanged by
	// invariant 1), so the global thresholds provably equal the cached
	// e.insts — the whole re-gather is skipped. This is the common case for
	// registry-only churn: new (instance, key) activity whose rank never
	// makes the shard's bottom-(k+1) heap still flips a mask bit (a visible
	// mutation, so a rebuild runs) without moving any retained rank.
	var ranks []float64
	ranksStable := e.insts != nil
	for s, p := range e.parts {
		if !dirty[s] {
			continue
		}
		p.ranks = make([][]float64, r)
		for i := 0; i < r; i++ {
			ranks = ranks[:0]
			for _, en := range p.retained[i] {
				ranks = append(ranks, en.rank)
			}
			p.ranks[i] = sampling.KSmallest(ranks, k+1)
		}
		if old := prev[s]; old == nil || !old.reduced || !rankCachesEqual(old.ranks, p.ranks) {
			ranksStable = false
		}
	}

	// Global thresholds from every partition's rank cache. The k+1 smallest
	// ranks of the union are each among their own partition's k+1 smallest,
	// so gathering the short cached lists reproduces the monolithic
	// reduction's thresholds exactly in O(shards·k) instead of O(retained).
	var insts []instThresholds
	threshChanged := false
	if ranksStable {
		insts = e.insts
		e.snapCtr.threshSkips.Add(1)
	} else {
		insts = make([]instThresholds, r)
		for i := 0; i < r; i++ {
			ranks = ranks[:0]
			for _, p := range e.parts {
				ranks = append(ranks, p.ranks[i]...)
			}
			insts[i] = newInstThresholds(sampling.KSmallest(ranks, k+1), k)
		}
		threshChanged = !slices.Equal(insts, e.insts)
		if threshChanged && e.insts != nil {
			e.snapCtr.threshRefreshes.Add(1)
		}
	}

	// Re-reduce stale partitions in ascending shard order, so epoch
	// assignment is deterministic for a given mutation history. A clean
	// partition under moved thresholds reuses its keys and entries but
	// gets fresh outcome arenas (invariant 4).
	for s, p := range e.parts {
		if p.reduced && !dirty[s] && !threshChanged {
			e.snapCtr.partsReused.Add(1)
			continue
		}
		e.reducePartition(p, insts)
		e.epochSeq++
		p.epoch = e.epochSeq
		e.shards[s].rebuilds.Add(1)
		e.snapCtr.partsRebuilt.Add(1)
	}

	// The merge plan survives any weight-only rebuild (invariant 2).
	if e.plan == nil || keysChanged {
		e.plan = buildMergePlan(e.parts)
		e.snapCtr.planRebuilds.Add(1)
	}
	e.insts = insts
	view := e.buildView(version)
	e.snapCtr.rebuilds.Add(1)
	e.publish(&snapshotCacheEntry{version: version, built: at, view: view})
	return view
}

// rankCachesEqual reports whether two per-instance rank caches hold
// identical values (ranks are finite positives, so == is exact).
func rankCachesEqual(a, b [][]float64) bool {
	return slices.EqualFunc(a, b, slices.Equal)
}

// reducePartition re-reduces one partition into fresh outcome arenas,
// fanning out across reduceWorkers chunks of the partition's key range.
func (e *Engine) reducePartition(p *partition, insts []instThresholds) {
	r := len(insts)
	n := len(p.keys)
	p.outcomes = make([]sampling.TupleOutcome, n)
	p.sampled = 0
	p.reduced = true
	if n == 0 {
		return
	}
	knownArena := make([]bool, n*r)
	valsArena := make([]float64, n*r)
	workers := reduceWorkers(n * r)
	chunk := (n + workers - 1) / workers
	sampled := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, n)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			sampled[w] = reduceRange(e.cfg.Hash, insts, p.keys, p.retained, p.outcomes, knownArena, valsArena, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, s := range sampled {
		p.sampled += s
	}
}

// buildMergePlan merges the partitions' sorted, disjoint key slices with a
// small min-heap of stream heads: O(n log shards), allocation-proportional
// to the output.
func buildMergePlan(parts []*partition) *mergePlan {
	n := 0
	for _, p := range parts {
		n += len(p.keys)
	}
	pl := &mergePlan{
		keys: make([]uint64, 0, n),
		src:  make([]uint16, 0, n),
		pos:  make([][]int32, len(parts)),
	}
	cur := make([]int, len(parts))
	type head struct {
		key   uint64
		shard uint16
	}
	heads := make([]head, 0, len(parts))
	for s, p := range parts {
		pl.pos[s] = make([]int32, len(p.keys))
		if len(p.keys) > 0 {
			heads = append(heads, head{key: p.keys[0], shard: uint16(s)})
		}
	}
	down := func(i int) {
		for {
			m := i
			if l := 2*i + 1; l < len(heads) && heads[l].key < heads[m].key {
				m = l
			}
			if r := 2*i + 2; r < len(heads) && heads[r].key < heads[m].key {
				m = r
			}
			if m == i {
				return
			}
			heads[i], heads[m] = heads[m], heads[i]
			i = m
		}
	}
	for i := len(heads)/2 - 1; i >= 0; i-- {
		down(i)
	}
	for len(heads) > 0 {
		h := heads[0]
		s := int(h.shard)
		pl.pos[s][cur[s]] = int32(len(pl.keys))
		pl.keys = append(pl.keys, h.key)
		pl.src = append(pl.src, h.shard)
		cur[s]++
		if c := cur[s]; c < len(parts[s].keys) {
			heads[0].key = parts[s].keys[c]
		} else {
			heads[0] = heads[len(heads)-1]
			heads = heads[:len(heads)-1]
		}
		down(0)
	}
	return pl
}

// buildView wraps the current partitions and plan as an immutable
// SnapshotView. No O(total keys) work happens here — the merged outcome
// array is materialized lazily by SnapshotView.Snapshot, and everything
// the view references (plan slices, partition outcomes) is never mutated
// after publication (re-reductions write fresh storage). The caller must
// hold rebuildMu.
func (e *Engine) buildView(version uint64) SnapshotView {
	pl := e.plan
	parts := make([]SnapshotPart, len(e.parts))
	view := SnapshotView{
		Version: version,
		Keys:    pl.keys,
		Parts:   parts,
		src:     pl.src,
		cell:    &viewCell{},
	}
	for s, p := range e.parts {
		view.sampled += p.sampled
		view.total += p.active
		parts[s] = SnapshotPart{Epoch: p.epoch, Index: pl.pos[s], Outcomes: p.outcomes}
	}
	return view
}

// resetSnapshotState drops every cached reduction artifact: partitions,
// thresholds, merge plan and the published snapshot. Required when engine
// content changes without per-shard mutation accounting — RestoreState
// parks the dumped version on shard 0, which would otherwise let a
// pre-restore partition match its shard's (untouched) counter and be
// wrongly reused.
func (e *Engine) resetSnapshotState() {
	e.rebuildMu.Lock()
	e.parts, e.insts, e.plan = nil, nil, nil
	e.cache.Store(nil)
	e.rebuildMu.Unlock()
}
