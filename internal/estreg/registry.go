// Package estreg is the pluggable estimator registry of the serving path:
// it maps estimator names to constructors over internal/core,
// internal/order and internal/funcs, so that every estimator of the batch
// reproduction — L*, U*, Horvitz–Thompson, the v-optimal benchmark and the
// ≺-customized order-optimal family — is servable from a streaming
// snapshot by name.
//
// Names resolve as "<base>" or "<base>:<spec>"; the base selects the
// builder and the spec parameterizes it. Built-in names:
//
//	lstar           L* (Section 4) — the competitive default
//	ustar           U* (Section 6) — customized for large values
//	ht              Horvitz–Thompson — the baseline L* dominates
//	voptimal        plug-in v-optimal (Theorem 2.1 benchmark, diagnostic)
//	order:<spec>    ≺+-optimal estimator on a discrete ladder (Section 5),
//	                spec = "vals=…;pis=…;by=asc|desc|near:<t>"
//
// A built Estimator is bound to one item function f and evaluates per-item
// outcomes; Sum aggregates it over a snapshot exactly like
// dataset.CoordinatedSample.EstimateSum (bit-identical accumulation order,
// asserted in the tests), which is what lets the HTTP serving path answer
// with the batch pipeline's numbers.
package estreg

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/funcs"
	"repro/internal/sampling"
)

// Estimator evaluates one per-item estimate on a sampled outcome. A built
// estimator is bound to its item function; implementations must be safe
// for concurrent use (the server evaluates batched queries over a shared
// snapshot).
type Estimator interface {
	// Name returns the canonical registry name, including any spec.
	Name() string
	// Estimate returns the per-item estimate on the outcome.
	Estimate(o sampling.TupleOutcome) (float64, error)
}

// Meta describes a built estimator's paper-level guarantees — the
// competitiveness/customization metadata the query API returns alongside
// estimates.
type Meta struct {
	// Estimator is the canonical name the build resolved to.
	Estimator string `json:"estimator"`
	// Func names the bound item function.
	Func string `json:"func"`
	// Unbiased reports E[f̂] = f(v) for every data vector.
	Unbiased bool `json:"unbiased"`
	// Nonnegative reports f̂ ≥ 0 on every outcome.
	Nonnegative bool `json:"nonnegative"`
	// Monotone reports that more-informative outcomes never decrease the
	// estimate.
	Monotone bool `json:"monotone"`
	// CompetitiveRatio is a universal bound on E[f̂²]/min_est E[f̂²] when
	// one is known; 0 means no universal bound holds or none is proved.
	CompetitiveRatio float64 `json:"competitive_ratio,omitempty"`
	// Note cites the construction.
	Note string `json:"note,omitempty"`
}

// Builder constructs an estimator for item function f over r-instance
// outcomes from the spec following the registered name's colon (empty when
// the name has no colon).
type Builder func(spec string, f funcs.F, r int) (Estimator, Meta, error)

// Registry maps base names to builders. The zero value is empty; New and
// Default construct usable registries. Methods are safe for concurrent
// use.
type Registry struct {
	mu       sync.RWMutex
	builders map[string]Builder
	allow    map[string]bool // nil = every registered name allowed
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{builders: make(map[string]Builder)}
}

// Default returns a registry with every built-in estimator registered.
func Default() *Registry {
	r := New()
	for name, b := range builtins() {
		if err := r.Register(name, b); err != nil {
			panic(fmt.Sprintf("estreg: built-in %q: %v", name, err))
		}
	}
	return r
}

// Register adds a builder under a base name (lowercase letters, digits,
// '_', no colon — the colon separates the spec at lookup).
func (r *Registry) Register(name string, b Builder) error {
	if name == "" || strings.ContainsFunc(name, func(c rune) bool {
		return !(c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '_')
	}) {
		return fmt.Errorf("estreg: invalid estimator name %q", name)
	}
	if b == nil {
		return fmt.Errorf("estreg: nil builder for %q", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.builders[name]; dup {
		return fmt.Errorf("estreg: estimator %q already registered", name)
	}
	r.builders[name] = b
	return nil
}

// Allow restricts Build to the given base names (an operator allowlist;
// cmd/monestd exposes it as -estimators). Every name must be registered.
// An empty list clears the restriction.
func (r *Registry) Allow(names []string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(names) == 0 {
		r.allow = nil
		return nil
	}
	allow := make(map[string]bool, len(names))
	for _, n := range names {
		if _, ok := r.builders[n]; !ok {
			return fmt.Errorf("estreg: cannot allow unregistered estimator %q", n)
		}
		allow[n] = true
	}
	r.allow = allow
	return nil
}

// Names returns the base names Build accepts, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.builders))
	for n := range r.builders {
		if r.allow == nil || r.allow[n] {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// Build resolves "<base>" or "<base>:<spec>" and constructs the estimator
// for item function f over r-instance outcomes.
func (r *Registry) Build(name string, f funcs.F, instances int) (Estimator, Meta, error) {
	if f == nil {
		return nil, Meta{}, fmt.Errorf("estreg: nil item function")
	}
	if instances < 1 {
		return nil, Meta{}, fmt.Errorf("estreg: instance count %d must be positive", instances)
	}
	base, spec := name, ""
	if i := strings.IndexByte(name, ':'); i >= 0 {
		base, spec = name[:i], name[i+1:]
	}
	r.mu.RLock()
	b, ok := r.builders[base]
	allowed := ok && (r.allow == nil || r.allow[base])
	r.mu.RUnlock()
	if !ok {
		return nil, Meta{}, fmt.Errorf("estreg: unknown estimator %q (have %s)", base, strings.Join(r.Names(), ", "))
	}
	if !allowed {
		return nil, Meta{}, fmt.Errorf("estreg: estimator %q is not allowed on this server (have %s)", base, strings.Join(r.Names(), ", "))
	}
	est, meta, err := b(spec, f, instances)
	if err != nil {
		return nil, Meta{}, fmt.Errorf("estreg: building %q: %w", name, err)
	}
	meta.Func = f.Name()
	return est, meta, nil
}

// funcEstimator adapts a per-outcome closure; the closures below are
// stateless, hence trivially concurrency-safe.
type funcEstimator struct {
	name string
	eval func(o sampling.TupleOutcome) (float64, error)
}

func (e funcEstimator) Name() string { return e.name }
func (e funcEstimator) Estimate(o sampling.TupleOutcome) (float64, error) {
	return e.eval(o)
}

// builtins returns the built-in builders.
func builtins() map[string]Builder {
	return map[string]Builder{
		"lstar": func(spec string, f funcs.F, _ int) (Estimator, Meta, error) {
			if spec != "" {
				return nil, Meta{}, fmt.Errorf("lstar takes no spec, got %q", spec)
			}
			est := funcEstimator{name: "lstar", eval: func(o sampling.TupleOutcome) (float64, error) {
				return funcs.EstimateLStar(f, o), nil
			}}
			return est, Meta{
				Estimator:        "lstar",
				Unbiased:         true,
				Nonnegative:      true,
				Monotone:         true,
				CompetitiveRatio: 4,
				Note:             "L* (Section 4): order-optimal for 'smaller f first'; 4-competitive (Thm 4.1), dominates HT (Thm 4.3)",
			}, nil
		},
		"ustar": func(spec string, f funcs.F, _ int) (Estimator, Meta, error) {
			if spec != "" {
				return nil, Meta{}, fmt.Errorf("ustar takes no spec, got %q", spec)
			}
			est := funcEstimator{name: "ustar", eval: func(o sampling.TupleOutcome) (float64, error) {
				return funcs.EstimateUStar(f, o, core.DefaultGrid()), nil
			}}
			return est, Meta{
				Estimator:   "ustar",
				Unbiased:    true,
				Nonnegative: true,
				Note:        "U* (Section 6): order-optimal for 'larger f first' (Lemma 6.1); customized for dissimilar data",
			}, nil
		},
		"ht": func(spec string, f funcs.F, _ int) (Estimator, Meta, error) {
			if spec != "" {
				return nil, Meta{}, fmt.Errorf("ht takes no spec, got %q", spec)
			}
			est := funcEstimator{name: "ht", eval: func(o sampling.TupleOutcome) (float64, error) {
				return funcs.EstimateHT(f, o), nil
			}}
			return est, Meta{
				Estimator:   "ht",
				Unbiased:    true,
				Nonnegative: true,
				Note:        "Horvitz–Thompson baseline: f(v)/p on revealing outcomes, 0 otherwise; dominated by L*",
			}, nil
		},
		"voptimal": func(spec string, f funcs.F, _ int) (Estimator, Meta, error) {
			if spec != "" {
				return nil, Meta{}, fmt.Errorf("voptimal takes no spec, got %q", spec)
			}
			est := funcEstimator{name: "voptimal", eval: func(o sampling.TupleOutcome) (float64, error) {
				// Customize the Theorem 2.1 oracle to the outcome's
				// pointwise-minimal consistent vector. On fully revealed
				// outcomes this is the per-data optimum; elsewhere it is a
				// plug-in diagnostic, not an unbiased estimator.
				return funcs.EstimateVOptimal(f, o.Scheme, o.LowerVector(), o.Rho, core.DefaultGrid())
			}}
			return est, Meta{
				Estimator:   "voptimal",
				Nonnegative: true,
				Note:        "plug-in v-optimal (Thm 2.1 benchmark) customized to the minimal consistent vector; diagnostic — unbiased only where the outcome reveals v",
			}, nil
		},
		"order": buildOrder,
	}
}

// SumResult aggregates per-item estimates over a snapshot.
type SumResult struct {
	// Estimate is the sum of per-item estimates — unbiased for
	// Σ_k f(v^(k)) whenever the per-item estimator is.
	Estimate float64 `json:"estimate"`
	// SecondMoment is Σ_k f̂_k², a dispersion diagnostic: with pairwise
	// independent seeds the sum estimator's variance is Σ_k Var[f̂_k] ≤
	// SecondMoment.
	SecondMoment float64 `json:"second_moment"`
	// MaxItem is the largest per-item estimate.
	MaxItem float64 `json:"max_item_estimate"`
	// Items counts the aggregated items.
	Items int `json:"items"`
}

// Sum applies the estimator to the selected outcomes (nil = all) and
// aggregates. The accumulation order over items matches
// dataset.CoordinatedSample.EstimateSum, so for the built-in lstar/ustar/ht
// the Estimate field is bit-identical to the batch pipeline's sum on the
// same outcomes.
func Sum(est Estimator, outcomes []sampling.TupleOutcome, items []int) (SumResult, error) {
	var res SumResult
	add := func(k int) error {
		if k < 0 || k >= len(outcomes) {
			return fmt.Errorf("estreg: item %d outside [0, %d)", k, len(outcomes))
		}
		x, err := est.Estimate(outcomes[k])
		if err != nil {
			return fmt.Errorf("estreg: item %d: %w", k, err)
		}
		res.Estimate += x
		res.SecondMoment += x * x
		// First item seeds the max: custom estimators may go negative,
		// and a zero-initialized max would report a value no item produced.
		if res.Items == 0 || x > res.MaxItem {
			res.MaxItem = x
		}
		res.Items++
		return nil
	}
	if items == nil {
		for k := range outcomes {
			if err := add(k); err != nil {
				return SumResult{}, err
			}
		}
		return res, nil
	}
	for _, k := range items {
		if err := add(k); err != nil {
			return SumResult{}, err
		}
	}
	return res, nil
}
