package estreg

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"

	"repro/internal/funcs"
	"repro/internal/order"
	"repro/internal/sampling"
)

// maxOrderDomain caps the enumerated discrete domain (|vals|+1)^r so a
// query cannot make the server materialize an exponential table.
const maxOrderDomain = 4096

// orderSpec is the parsed "order:<spec>" parameterization.
type orderSpec struct {
	vals []float64
	pis  []float64
	by   string  // "asc", "desc" or "near"
	near float64 // target for by=near:<t>
}

// parseOrderSpec parses "vals=…;pis=…;by=asc|desc|near:<t>". pis defaults
// to vals (the canonical PPS ladder π(x)=x, valid when every value lies in
// (0,1]); by defaults to asc.
func parseOrderSpec(spec string) (orderSpec, error) {
	s := orderSpec{by: "asc"}
	if strings.TrimSpace(spec) == "" {
		return s, fmt.Errorf(`empty order spec; want "vals=…;pis=…;by=asc|desc|near:<t>"`)
	}
	for _, kv := range strings.Split(spec, ";") {
		key, val, found := strings.Cut(kv, "=")
		if !found {
			return s, fmt.Errorf("order spec field %q is not key=value", kv)
		}
		switch key {
		case "vals", "pis":
			xs, err := parseFloats(val)
			if err != nil {
				return s, fmt.Errorf("order spec %s: %w", key, err)
			}
			if key == "vals" {
				s.vals = xs
			} else {
				s.pis = xs
			}
		case "by":
			switch {
			case val == "asc" || val == "desc":
				s.by = val
			case strings.HasPrefix(val, "near:"):
				t, err := strconv.ParseFloat(val[len("near:"):], 64)
				if err != nil || math.IsNaN(t) || math.IsInf(t, 0) {
					return s, fmt.Errorf("order spec by=near: bad target %q", val[len("near:"):])
				}
				s.by, s.near = "near", t
			default:
				return s, fmt.Errorf("order spec by=%q; want asc, desc or near:<t>", val)
			}
		default:
			return s, fmt.Errorf("order spec has unknown field %q (have vals, pis, by)", key)
		}
	}
	if len(s.vals) == 0 {
		return s, fmt.Errorf("order spec needs vals=v1,v2,…")
	}
	if len(s.pis) == 0 {
		s.pis = s.vals
	}
	return s, nil
}

func parseFloats(raw string) ([]float64, error) {
	parts := strings.Split(raw, ",")
	xs := make([]float64, len(parts))
	for i, p := range parts {
		x, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("entry %d: %w", i, err)
		}
		xs[i] = x
	}
	return xs, nil
}

// buildOrder is the Builder for "order:<spec>": a ≺+-optimal estimator on
// the spec's discrete ladder with priorities by increasing f (asc — which
// reproduces L*, Thm 4.3), decreasing f (desc — which reproduces U*,
// Lemma 6.1), or proximity of f to a target (near:<t> — Example 5's
// "expected pattern first" customization, which prioritizes data with
// f ≈ t).
func buildOrder(spec string, f funcs.F, instances int) (Estimator, Meta, error) {
	s, err := parseOrderSpec(spec)
	if err != nil {
		return nil, Meta{}, err
	}
	scheme, err := order.NewScheme(s.vals, s.pis)
	if err != nil {
		return nil, Meta{}, err
	}
	if a := f.Arity(); a != 0 && a != instances {
		return nil, Meta{}, fmt.Errorf("func %s needs %d instances, order estimator built for %d", f.Name(), a, instances)
	}
	if size := math.Pow(float64(len(s.vals)+1), float64(instances)); size > maxOrderDomain {
		return nil, Meta{}, fmt.Errorf("order domain (%d+1)^%d exceeds %d vectors", len(s.vals), instances, maxOrderDomain)
	}
	var less func(a, b []float64) bool
	switch s.by {
	case "asc":
		less = order.LessByF(f.Value)
	case "desc":
		less = order.LessByFDesc(f.Value)
	case "near":
		t := s.near
		less = func(a, b []float64) bool {
			return math.Abs(f.Value(a)-t) < math.Abs(f.Value(b)-t)
		}
	}
	est, err := order.New(order.Problem{
		Scheme: scheme,
		F:      f.Value,
		Domain: order.GridDomain(scheme, instances),
		Less:   less,
	})
	if err != nil {
		return nil, Meta{}, err
	}
	name := "order:" + spec
	return &orderEstimator{name: name, scheme: scheme, est: est}, Meta{
		Estimator:   name,
		Unbiased:    true,
		Nonnegative: true,
		Note:        "≺+-optimal on the declared ladder (Section 5); outcomes are coarsened to the ladder before estimation",
	}, nil
}

// orderEstimator adapts an order.Estimator to streaming outcomes. The
// wrapped estimator memoizes per-outcome estimates and is not
// concurrency-safe, so evaluations are serialized; the memo then makes
// repeated outcomes (the common case on a snapshot, where an outcome is
// determined by its knowledge pattern) O(1) after the first.
type orderEstimator struct {
	name   string
	scheme order.Scheme
	mu     sync.Mutex
	est    *order.Estimator
}

func (e *orderEstimator) Name() string { return e.name }

// Estimate coarsens the outcome to the declared discrete scheme and
// evaluates the ≺+-optimal estimator on it. Coarsening is the honest
// direction: a known entry whose ladder probability π(value) is below the
// outcome's seed is information the discrete scheme could not have
// produced, so it is dropped to unknown (exactly TupleOutcome.At's
// semantics transposed to the ladder). Known values off the ladder are
// outside the estimator's domain and rejected. The coarsened estimate
// keeps the discrete problem's unbiasedness whenever the streaming
// thresholds are at least as permissive as the ladder (e.g. sketches with
// k at least the instance support), since the discrete scheme is then the
// binding revelation threshold.
func (e *orderEstimator) Estimate(o sampling.TupleOutcome) (float64, error) {
	known := make([]bool, len(o.Known))
	vals := make([]float64, len(o.Vals))
	for i, k := range o.Known {
		if !k {
			continue
		}
		pi, err := e.scheme.Pi(o.Vals[i])
		if err != nil {
			return 0, fmt.Errorf("entry %d: %w", i, err)
		}
		if pi >= o.Rho {
			known[i] = true
			vals[i] = o.Vals[i]
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.est.EstimateOutcome(known, vals, o.Rho)
}
