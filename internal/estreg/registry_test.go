package estreg

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/funcs"
	"repro/internal/order"
	"repro/internal/sampling"
)

func rg1(t *testing.T) funcs.F {
	t.Helper()
	f, err := funcs.NewRG(1)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestDefaultNames(t *testing.T) {
	got := Default().Names()
	want := []string{"ht", "lstar", "order", "ustar", "voptimal"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
}

// TestSumBitIdenticalToBatch asserts the registry's lstar/ustar/ht sums
// reproduce dataset.CoordinatedSample.EstimateSum bit-for-bit on the same
// bottom-k sample — the property that lets the serving path answer with
// the batch pipeline's numbers.
func TestSumBitIdenticalToBatch(t *testing.T) {
	d := dataset.Flows(dataset.FlowsConfig{N: 300, Seed: 3})
	cs, err := dataset.SampleBottomK(d, 16, sampling.NewSeedHash(9))
	if err != nil {
		t.Fatal(err)
	}
	f := rg1(t)
	reg := Default()
	for _, tc := range []struct {
		name string
		kind dataset.EstimatorKind
	}{
		{"lstar", dataset.KindLStar},
		{"ustar", dataset.KindUStar},
		{"ht", dataset.KindHT},
	} {
		est, meta, err := reg.Build(tc.name, f, d.R())
		if err != nil {
			t.Fatal(err)
		}
		if meta.Estimator != tc.name || meta.Func != f.Name() {
			t.Errorf("%s meta = %+v", tc.name, meta)
		}
		for _, items := range [][]int{nil, {0, 5, 17, 100}} {
			want, err := cs.EstimateSum(f, tc.kind, items)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Sum(est, cs.Outcomes, items)
			if err != nil {
				t.Fatal(err)
			}
			if got.Estimate != want {
				t.Errorf("%s items=%v: Sum = %v, batch EstimateSum = %v", tc.name, items, got.Estimate, want)
			}
			wantItems := len(cs.Outcomes)
			if items != nil {
				wantItems = len(items)
			}
			if got.Items != wantItems {
				t.Errorf("%s: Items = %d, want %d", tc.name, got.Items, wantItems)
			}
			if got.SecondMoment < 0 || got.MaxItem < 0 {
				t.Errorf("%s: negative diagnostics %+v", tc.name, got)
			}
		}
	}
}

// TestVOptimalOracleOnRevealedOutcome: where the outcome reveals the full
// tuple, the plug-in v-optimal equals the Theorem 2.1 oracle customized to
// the true data.
func TestVOptimalOracleOnRevealedOutcome(t *testing.T) {
	f := rg1(t)
	est, meta, err := Default().Build("voptimal", f, 2)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Unbiased {
		t.Error("voptimal must not claim unbiasedness")
	}
	scheme := sampling.UniformTuple(2)
	v := []float64{0.9, 0.4}
	o := scheme.Sample(v, 0.3) // both entries ≥ 0.3: fully revealed
	if o.NumKnown() != 2 {
		t.Fatalf("outcome not fully revealed: %+v", o)
	}
	got, err := est.Estimate(o)
	if err != nil {
		t.Fatal(err)
	}
	want, err := funcs.EstimateVOptimal(f, scheme, v, 0.3, core.DefaultGrid())
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("voptimal on revealed outcome = %v, want oracle %v", got, want)
	}
}

// TestOrderEstimatorMatchesOrderPackage: on a ladder workload sampled with
// the matching PPS scheme (τ* ≡ 1, π(x) = x) the registry's order
// estimator reproduces order.Estimator.Estimate exactly, for all three
// priority orders.
func TestOrderEstimatorMatchesOrderPackage(t *testing.T) {
	f := rg1(t)
	ladder := []float64{0.25, 0.5, 1}
	scheme, err := order.NewScheme(ladder, ladder)
	if err != nil {
		t.Fatal(err)
	}
	dom := order.GridDomain(scheme, 2)
	pps := sampling.UniformTuple(2)
	for _, tc := range []struct {
		spec string
		less func(a, b []float64) bool
	}{
		{"vals=0.25,0.5,1;by=asc", order.LessByF(f.Value)},
		{"vals=0.25,0.5,1;by=desc", order.LessByFDesc(f.Value)},
		{"vals=0.25,0.5,1;by=near:0.25", func(a, b []float64) bool {
			return math.Abs(f.Value(a)-0.25) < math.Abs(f.Value(b)-0.25)
		}},
	} {
		est, meta, err := Default().Build("order:"+tc.spec, f, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !meta.Unbiased || !meta.Nonnegative {
			t.Errorf("%s meta = %+v", tc.spec, meta)
		}
		if est.Name() != "order:"+tc.spec {
			t.Errorf("Name() = %q", est.Name())
		}
		ref, err := order.New(order.Problem{Scheme: scheme, F: f.Value, Domain: dom, Less: tc.less})
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range dom {
			for _, u := range []float64{0.1, 0.25, 0.4, 0.5, 0.8, 1} {
				got, err := est.Estimate(pps.Sample(v, u))
				if err != nil {
					t.Fatalf("%s v=%v u=%g: %v", tc.spec, v, u, err)
				}
				if want := ref.Estimate(v, u); got != want {
					t.Errorf("%s v=%v u=%g: registry %v, order pkg %v", tc.spec, v, u, got, want)
				}
			}
		}
	}
}

// TestOrderEstimatorCoarsens: an outcome more informative than the ladder
// (permissive streaming thresholds) is coarsened, not rejected: a known
// value whose ladder probability is below the seed drops to unknown.
func TestOrderEstimatorCoarsens(t *testing.T) {
	f := rg1(t)
	est, _, err := Default().Build("order:vals=0.25,0.5,1;by=asc", f, 2)
	if err != nil {
		t.Fatal(err)
	}
	// τ* = 1e-12: everything positive is known at any seed — the engine's
	// always-included regime.
	permissive, err := sampling.NewTupleScheme([]float64{1e-12, 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	o := permissive.Sample([]float64{0.25, 1}, 0.9)
	if o.NumKnown() != 2 {
		t.Fatalf("outcome not fully known: %+v", o)
	}
	got, err := est.Estimate(o)
	if err != nil {
		t.Fatal(err)
	}
	// Under the ladder at seed 0.9 only the value-1 entry is visible
	// (π(0.25) = 0.25 < 0.9), so the estimate must match the discrete
	// outcome {unknown, 1}.
	ladder := []float64{0.25, 0.5, 1}
	scheme, _ := order.NewScheme(ladder, ladder)
	ref, err := order.New(order.Problem{
		Scheme: scheme, F: f.Value, Domain: order.GridDomain(scheme, 2),
		Less: order.LessByF(f.Value),
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.EstimateOutcome([]bool{false, true}, []float64{0, 1}, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("coarsened estimate %v, want %v", got, want)
	}
	// Off-ladder known values have no discrete counterpart: reject.
	if _, err := est.Estimate(permissive.Sample([]float64{0.3, 1}, 0.9)); err == nil {
		t.Error("off-ladder value should fail")
	}
}

func TestBuildErrors(t *testing.T) {
	f := rg1(t)
	reg := Default()
	for _, name := range []string{
		"",
		"nope",
		"lstar:spec",
		"ustar:spec",
		"ht:spec",
		"voptimal:spec",
		"order",                         // missing spec
		"order:vals=1;by=sideways",      // bad order
		"order:vals=1;pis=2",            // π > 1
		"order:nope=1",                  // unknown field
		"order:vals=0.5;pis=0.5;by",     // not key=value
		"order:vals=0.1;by=near:x",      // bad target
		"order:vals=1,2,3,4,5,6,7,8,9",  // values above 1 need explicit pis
		"order:vals=0.25,0.5;pis=0.5,1", // ok ladder, but f arity below
	} {
		arity := 2
		if name == "order:vals=0.25,0.5;pis=0.5,1" {
			arity = 3 // rgplus-style arity mismatch via f.Arity
		}
		var fn funcs.F = f
		if arity == 3 {
			var err error
			fn, err = funcs.NewRGPlus(1) // arity 2
			if err != nil {
				t.Fatal(err)
			}
		}
		if _, _, err := reg.Build(name, fn, arity); err == nil {
			t.Errorf("Build(%q) should fail", name)
		}
	}
	if _, _, err := reg.Build("lstar", nil, 2); err == nil {
		t.Error("nil func should fail")
	}
	if _, _, err := reg.Build("lstar", f, 0); err == nil {
		t.Error("zero instances should fail")
	}
	// Domain blow-up guard: (9+1)^5 = 100000 > 4096.
	big, err := funcs.NewLinComb([]float64{1, 1, 1, 1, 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := reg.Build("order:vals=0.1,0.2,0.3,0.4,0.5,0.6,0.7,0.8,0.9;by=asc", big, 5); err == nil {
		t.Error("huge order domain should fail")
	}
}

func TestRegisterAndAllow(t *testing.T) {
	reg := Default()
	f := rg1(t)
	// Custom registration under a fresh name.
	err := reg.Register("half_ht", func(spec string, f funcs.F, _ int) (Estimator, Meta, error) {
		est := funcEstimator{name: "half_ht", eval: func(o sampling.TupleOutcome) (float64, error) {
			return funcs.EstimateHT(f, o) / 2, nil
		}}
		return est, Meta{Estimator: "half_ht"}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := reg.Build("half_ht", f, 2); err != nil {
		t.Fatal(err)
	}
	// Duplicate and malformed registrations fail.
	if err := reg.Register("half_ht", nil); err == nil {
		t.Error("nil builder should fail")
	}
	if err := reg.Register("lstar", func(string, funcs.F, int) (Estimator, Meta, error) { return nil, Meta{}, nil }); err == nil {
		t.Error("duplicate name should fail")
	}
	for _, bad := range []string{"", "has:colon", "Upper", "sp ace"} {
		if err := reg.Register(bad, func(string, funcs.F, int) (Estimator, Meta, error) { return nil, Meta{}, nil }); err == nil {
			t.Errorf("Register(%q) should fail", bad)
		}
	}
	// Allowlist restricts Build and Names.
	if err := reg.Allow([]string{"lstar", "ht"}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Names(); strings.Join(got, ",") != "ht,lstar" {
		t.Errorf("allowed Names() = %v", got)
	}
	if _, _, err := reg.Build("ustar", f, 2); err == nil {
		t.Error("disallowed estimator should fail")
	}
	if _, _, err := reg.Build("lstar", f, 2); err != nil {
		t.Errorf("allowed estimator failed: %v", err)
	}
	if err := reg.Allow([]string{"nope"}); err == nil {
		t.Error("allowing an unregistered name should fail")
	}
	// Clearing the allowlist restores everything.
	if err := reg.Allow(nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := reg.Build("ustar", f, 2); err != nil {
		t.Errorf("cleared allowlist: %v", err)
	}
}

func TestSumErrors(t *testing.T) {
	f := rg1(t)
	est, _, err := Default().Build("lstar", f, 2)
	if err != nil {
		t.Fatal(err)
	}
	outcomes := []sampling.TupleOutcome{sampling.UniformTuple(2).Sample([]float64{0.5, 0.2}, 0.4)}
	if _, err := Sum(est, outcomes, []int{3}); err == nil {
		t.Error("out-of-range item should fail")
	}
	if _, err := Sum(est, outcomes, []int{-1}); err == nil {
		t.Error("negative item should fail")
	}
}
