package fault

import (
	"io"
	"net"
	"sync"
	"time"
)

// proxyMode is the Proxy's current failure posture.
type proxyMode int

const (
	proxyPass      proxyMode = iota // forward bidirectionally
	proxyPartition                  // refuse new conns, kill active ones
	proxyBlackhole                  // accept and swallow — timeout-shaped
)

// Proxy is a TCP proxy for whole-process fault tests: a daemon under
// test is addressed through the proxy, and the test flips the proxy
// into partition or blackhole mode to simulate network failure without
// touching the daemon. The zero modes forward transparently, with an
// optional per-connection latency.
type Proxy struct {
	target string
	ln     net.Listener

	mu      sync.Mutex
	mode    proxyMode
	latency time.Duration
	conns   map[net.Conn]struct{}
	closed  bool
}

// NewProxy listens on 127.0.0.1:0 and forwards to target ("host:port").
func NewProxy(target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{target: target, ln: ln, conns: make(map[net.Conn]struct{})}
	go p.serve()
	return p, nil
}

// Addr is the proxy's listen address ("host:port").
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// URL is the proxy's base URL for HTTP clients.
func (p *Proxy) URL() string { return "http://" + p.Addr() }

// Partition cuts the proxy: active connections are closed and new ones
// are accepted then immediately closed (clients see a transport error,
// not a timeout). Lifting it restores forwarding for NEW connections.
func (p *Proxy) Partition(on bool) {
	p.setMode(on, proxyPartition)
}

// Blackhole makes the proxy accept and swallow traffic without ever
// answering — the failure mode that costs clients their full timeout.
func (p *Proxy) Blackhole(on bool) {
	p.setMode(on, proxyBlackhole)
}

func (p *Proxy) setMode(on bool, m proxyMode) {
	p.mu.Lock()
	if on {
		p.mode = m
	} else if p.mode == m {
		p.mode = proxyPass
	}
	for c := range p.conns {
		c.Close()
	}
	p.conns = make(map[net.Conn]struct{})
	p.mu.Unlock()
}

// SetLatency delays each new connection's forwarding by d.
func (p *Proxy) SetLatency(d time.Duration) {
	p.mu.Lock()
	p.latency = d
	p.mu.Unlock()
}

// Close stops the proxy and closes every tracked connection.
func (p *Proxy) Close() error {
	p.mu.Lock()
	p.closed = true
	for c := range p.conns {
		c.Close()
	}
	p.conns = make(map[net.Conn]struct{})
	p.mu.Unlock()
	return p.ln.Close()
}

func (p *Proxy) serve() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		go p.handle(conn)
	}
}

func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *Proxy) handle(down net.Conn) {
	p.mu.Lock()
	mode, latency, closed := p.mode, p.latency, p.closed
	p.mu.Unlock()
	if closed || mode == proxyPartition {
		down.Close()
		return
	}
	if !p.track(down) {
		down.Close()
		return
	}
	defer p.untrack(down)
	if latency > 0 {
		time.Sleep(latency)
	}
	if mode == proxyBlackhole {
		// Swallow until the client gives up or Partition/Close kills us.
		io.Copy(io.Discard, down)
		down.Close()
		return
	}
	up, err := net.Dial("tcp", p.target)
	if err != nil {
		down.Close()
		return
	}
	if !p.track(up) {
		up.Close()
		down.Close()
		return
	}
	defer p.untrack(up)
	done := make(chan struct{})
	go func() {
		io.Copy(up, down)
		up.Close()
		down.Close()
		close(done)
	}()
	io.Copy(down, up)
	up.Close()
	down.Close()
	<-done
}
