package fault

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/store"
)

// StoreFaults is a fault schedule for a wrapped store.Store. Rates are
// probabilities in [0, 1], drawn per call in a fixed order so a seed
// replays the same schedule.
type StoreFaults struct {
	// AppendFailRate fails Append BEFORE the inner write: nothing
	// reaches the WAL and the engine rejects the update unapplied.
	AppendFailRate float64
	// AppendTornRate fails Append AFTER the inner write landed — the
	// ambiguous torn write: the engine rejects the update, but recovery
	// will replay it from the WAL. Callers tracking an exact oracle must
	// treat these as durable (errors.Is(err, ErrTorn)).
	AppendTornRate float64
	// AppendDelay stalls each Append (slow-disk simulation).
	AppendDelay time.Duration
	// SyncFailRate fails Sync before the inner fsync runs.
	SyncFailRate float64
	// CheckpointFailRate fails Checkpoint before the inner cut runs (the
	// previous checkpoint and the WAL stay authoritative).
	CheckpointFailRate float64
}

// StoreStats counts injected store faults.
type StoreStats struct {
	AppendFails     uint64
	TornAppends     uint64
	SyncFails       uint64
	CheckpointFails uint64
}

// Store wraps an inner store.Store with StoreFaults. It satisfies
// store.Store, so it drops into store.Attach unchanged; Recover and
// Close always pass through (recovery itself is the system under test).
type Store struct {
	inner store.Store
	rng   *Rand
	f     StoreFaults

	appendFails     atomic.Uint64
	tornAppends     atomic.Uint64
	syncFails       atomic.Uint64
	checkpointFails atomic.Uint64
}

// WrapStore wraps inner with schedule f, seeded by seed.
func WrapStore(inner store.Store, seed uint64, f StoreFaults) *Store {
	return &Store{inner: inner, rng: NewRand(seed), f: f}
}

// Stats returns the injected-fault counters.
func (s *Store) Stats() StoreStats {
	return StoreStats{
		AppendFails:     s.appendFails.Load(),
		TornAppends:     s.tornAppends.Load(),
		SyncFails:       s.syncFails.Load(),
		CheckpointFails: s.checkpointFails.Load(),
	}
}

func (s *Store) Append(batch []engine.Update) error {
	if s.f.AppendDelay > 0 {
		time.Sleep(s.f.AppendDelay)
	}
	fail := s.f.AppendFailRate > 0 && s.rng.Float64() < s.f.AppendFailRate
	torn := s.f.AppendTornRate > 0 && s.rng.Float64() < s.f.AppendTornRate
	if fail {
		s.appendFails.Add(1)
		return fmt.Errorf("fault: append: %w", ErrInjected)
	}
	if err := s.inner.Append(batch); err != nil {
		return err
	}
	if torn {
		s.tornAppends.Add(1)
		return fmt.Errorf("fault: append: %w", ErrTorn)
	}
	return nil
}

func (s *Store) Sync() error {
	if s.f.SyncFailRate > 0 && s.rng.Float64() < s.f.SyncFailRate {
		s.syncFails.Add(1)
		return fmt.Errorf("fault: sync: %w", ErrInjected)
	}
	return s.inner.Sync()
}

func (s *Store) Checkpoint(cut func() *engine.State) (store.CheckpointStats, error) {
	if s.f.CheckpointFailRate > 0 && s.rng.Float64() < s.f.CheckpointFailRate {
		s.checkpointFails.Add(1)
		return store.CheckpointStats{}, fmt.Errorf("fault: checkpoint: %w", ErrInjected)
	}
	return s.inner.Checkpoint(cut)
}

func (s *Store) Recover(h store.RecoveryHandler) (store.RecoveryStats, error) {
	return s.inner.Recover(h)
}

func (s *Store) Close() error { return s.inner.Close() }
