package fault

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestParseProfile(t *testing.T) {
	p, err := ParseProfile("latency=2ms,jitter=5ms,reset=0.25,drop-response=0.5,cut-body=0.75,seed=9")
	if err != nil {
		t.Fatal(err)
	}
	want := Profile{Latency: 2 * time.Millisecond, Jitter: 5 * time.Millisecond,
		ResetRate: 0.25, DropRate: 0.5, CutRate: 0.75, Seed: 9}
	if p != want {
		t.Fatalf("profile = %+v, want %+v", p, want)
	}
	if p, err := ParseProfile(""); err != nil || p != (Profile{}) {
		t.Fatalf("empty spec = %+v, %v; want zero profile", p, err)
	}
	for _, bad := range []string{"latency", "wat=1", "reset=2", "reset=-0.1", "latency=-2ms"} {
		if _, err := ParseProfile(bad); err == nil {
			t.Errorf("ParseProfile(%q) accepted", bad)
		}
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 100; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d diverged: %d vs %d", i, av, bv)
		}
	}
	if NewRand(7).Uint64() == NewRand(8).Uint64() {
		t.Fatal("different seeds produced the same first draw")
	}
}

func TestTransportFaults(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "0123456789abcdef0123456789abcdef")
	}))
	defer srv.Close()

	// Deterministic response drop: the request reaches the server, the
	// client sees a transport error carrying ErrTorn.
	tr := NewTransport(Profile{}, nil)
	hc := &http.Client{Transport: tr}
	tr.DropNextResponses(1)
	if _, err := hc.Get(srv.URL); err == nil {
		t.Fatal("dropped response returned no error")
	} else if !errors.Is(err, ErrTorn) {
		t.Fatalf("dropped response error = %v, want ErrTorn", err)
	}
	if resp, err := hc.Get(srv.URL); err != nil {
		t.Fatalf("after drop budget spent: %v", err)
	} else {
		resp.Body.Close()
	}

	// Partition: fails before the wire, lifts cleanly.
	u, _ := hc.Get(srv.URL)
	u.Body.Close()
	host := u.Request.URL.Host
	tr.Partition(host, true)
	if _, err := hc.Get(srv.URL); err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("partitioned request error = %v, want ErrInjected", err)
	}
	if got := tr.PartitionedHosts(); len(got) != 1 || got[0] != host {
		t.Fatalf("PartitionedHosts = %v", got)
	}
	tr.Partition(host, false)
	if resp, err := hc.Get(srv.URL); err != nil {
		t.Fatalf("after heal: %v", err)
	} else {
		resp.Body.Close()
	}

	// Reset rate 1: always fails before sending.
	always := NewTransport(Profile{ResetRate: 1}, nil)
	if _, err := (&http.Client{Transport: always}).Get(srv.URL); err == nil {
		t.Fatal("reset-rate-1 request succeeded")
	}

	// Cut rate 1: body read fails partway.
	cutter := NewTransport(Profile{CutRate: 1}, nil)
	resp, err := (&http.Client{Transport: cutter}).Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	_, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("cut body read error = %v, want ErrInjected", err)
	}
	st := tr.Stats()
	if st.Dropped != 1 || st.Refused != 1 {
		t.Fatalf("stats = %+v, want 1 drop and 1 refusal", st)
	}
}

func TestProxyModes(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	}))
	defer srv.Close()
	target := srv.Listener.Addr().String()
	p, err := NewProxy(target)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Fresh client per phase: keep-alive pools would otherwise reuse a
	// connection the proxy already killed.
	get := func() (string, error) {
		hc := &http.Client{Timeout: 2 * time.Second,
			Transport: &http.Transport{DisableKeepAlives: true}}
		resp, err := hc.Get(p.URL())
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		return string(b), err
	}

	if body, err := get(); err != nil || body != "ok" {
		t.Fatalf("passthrough = %q, %v", body, err)
	}
	p.Partition(true)
	if _, err := get(); err == nil {
		t.Fatal("request through partitioned proxy succeeded")
	}
	p.Partition(false)
	if body, err := get(); err != nil || body != "ok" {
		t.Fatalf("after heal = %q, %v", body, err)
	}

	p.Blackhole(true)
	hc := &http.Client{Timeout: 100 * time.Millisecond,
		Transport: &http.Transport{DisableKeepAlives: true}}
	if _, err := hc.Get(p.URL()); err == nil {
		t.Fatal("blackholed request returned")
	} else if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
		t.Fatalf("blackholed request error = %v, want timeout", err)
	}
	p.Blackhole(false)
	if body, err := get(); err != nil || body != "ok" {
		t.Fatalf("after blackhole lift = %q, %v", body, err)
	}
}

func TestTransportScheduleIsReproducible(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	}))
	defer srv.Close()
	outcomes := func(seed uint64) []bool {
		tr := NewTransport(Profile{ResetRate: 0.5, Seed: seed}, nil)
		hc := &http.Client{Transport: tr}
		var out []bool
		for i := 0; i < 32; i++ {
			resp, err := hc.Get(srv.URL)
			if err == nil {
				resp.Body.Close()
			}
			out = append(out, err == nil)
		}
		return out
	}
	a, b := outcomes(42), outcomes(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d outcome diverged across same-seed runs", i)
		}
	}
}
