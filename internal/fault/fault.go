// Package fault is a deterministic fault-injection toolkit for the
// repo's robustness tests and chaos runs. It provides three injectors:
//
//   - Transport: an http.RoundTripper wrapper adding latency, connection
//     resets, dropped responses (the request WAS processed — the retry
//     ambiguity), mid-body cuts, and per-host partitions.
//   - Proxy: a TCP listener proxy for whole-process tests, with
//     partition (refuse + kill connections) and blackhole (accept,
//     swallow, never answer — the timeout-shaped failure) modes.
//   - Store: a store.Store wrapper injecting delayed, failed and torn
//     WAL appends, fsync errors, and checkpoint failures.
//
// Every probabilistic decision draws from a splitmix64 sequence seeded
// by the caller (conventionally derived from the engine hash salt), so
// a chaos run's fault schedule is reproducible from its seed alone.
package fault

import (
	"errors"
	"sync"
)

// ErrInjected is the sentinel wrapped by every injected failure that
// happened INSTEAD of the real operation (nothing reached the wrapped
// layer).
var ErrInjected = errors.New("fault: injected error")

// ErrTorn is the sentinel for injected failures reported AFTER the real
// operation landed — the ambiguous outcome: the caller sees an error,
// but the write (or request) took effect underneath.
var ErrTorn = errors.New("fault: torn (operation landed, then failed)")

// Rand is a mutex-guarded splitmix64 sequence: cheap, deterministic,
// and safe for concurrent injectors sharing one schedule.
type Rand struct {
	mu    sync.Mutex
	state uint64
}

// NewRand seeds a sequence. Equal seeds yield equal draw sequences.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next draw.
func (r *Rand) Uint64() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next()
}

// Float64 returns the next draw mapped to [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

func (r *Rand) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
