package fault

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Profile is a fault schedule for a Transport. Rates are probabilities
// in [0, 1], drawn per request in a fixed order (jitter, reset, drop,
// cut) so a given seed replays the same schedule.
type Profile struct {
	// Latency is added to every request; Jitter adds uniform [0, Jitter)
	// on top.
	Latency time.Duration
	Jitter  time.Duration
	// ResetRate fails the request before it is sent (connection reset:
	// the server never saw it).
	ResetRate float64
	// DropRate performs the request, discards the response, and reports
	// a transport error — the server-applied-but-client-unsure outcome
	// that makes naive retries double-count.
	DropRate float64
	// CutRate truncates the response body partway through.
	CutRate float64
	// Seed seeds the draw sequence (used by ParseProfile/NewTransport
	// callers; 0 is a valid seed).
	Seed uint64
}

// ParseProfile parses the comma-separated k=v spec used by loadgen's
// -fault-profile flag, e.g.
//
//	latency=2ms,jitter=5ms,reset=0.01,drop-response=0.005,cut-body=0.01,seed=7
func ParseProfile(spec string) (Profile, error) {
	var p Profile
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			return Profile{}, fmt.Errorf("fault profile: %q is not k=v", field)
		}
		var err error
		switch k {
		case "latency":
			p.Latency, err = time.ParseDuration(v)
		case "jitter":
			p.Jitter, err = time.ParseDuration(v)
		case "reset":
			p.ResetRate, err = parseRate(v)
		case "drop-response":
			p.DropRate, err = parseRate(v)
		case "cut-body":
			p.CutRate, err = parseRate(v)
		case "seed":
			p.Seed, err = strconv.ParseUint(v, 10, 64)
		default:
			return Profile{}, fmt.Errorf("fault profile: unknown key %q", k)
		}
		if err != nil {
			return Profile{}, fmt.Errorf("fault profile: %s: %w", k, err)
		}
		if p.Latency < 0 || p.Jitter < 0 {
			return Profile{}, fmt.Errorf("fault profile: %s must not be negative", k)
		}
	}
	return p, nil
}

func parseRate(v string) (float64, error) {
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, err
	}
	if f < 0 || f > 1 {
		return 0, fmt.Errorf("rate %v outside [0, 1]", f)
	}
	return f, nil
}

// TransportStats counts injected faults (and clean requests).
type TransportStats struct {
	Requests  uint64 `json:"requests"`
	Resets    uint64 `json:"resets"`
	Dropped   uint64 `json:"dropped_responses"`
	Cut       uint64 `json:"cut_bodies"`
	Refused   uint64 `json:"partition_refusals"`
	DelayedBy string `json:"-"`
}

// Transport injects the Profile's faults around a base RoundTripper.
// Partition(host, true) additionally fails every request to that host
// before it is sent, until lifted.
type Transport struct {
	base http.RoundTripper
	rng  *Rand

	mu          sync.Mutex
	profile     Profile
	partitioned map[string]bool
	dropNext    int

	requests atomic.Uint64
	resets   atomic.Uint64
	dropped  atomic.Uint64
	cut      atomic.Uint64
	refused  atomic.Uint64
}

// NewTransport wraps base (nil = http.DefaultTransport) with profile's
// schedule, seeded by profile.Seed.
func NewTransport(profile Profile, base http.RoundTripper) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{
		base:        base,
		rng:         NewRand(profile.Seed),
		profile:     profile,
		partitioned: make(map[string]bool),
	}
}

// Partition fails all requests to host ("host:port" as it appears in
// request URLs) with a transport error until lifted.
func (t *Transport) Partition(host string, on bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if on {
		t.partitioned[host] = true
	} else {
		delete(t.partitioned, host)
	}
}

// DropNextResponses makes the next n requests (any host) perform but
// lose their responses — the deterministic knob for retry-ambiguity
// tests, independent of the probabilistic schedule.
func (t *Transport) DropNextResponses(n int) {
	t.mu.Lock()
	t.dropNext = n
	t.mu.Unlock()
}

// Stats returns the fault counters.
func (t *Transport) Stats() TransportStats {
	return TransportStats{
		Requests: t.requests.Load(),
		Resets:   t.resets.Load(),
		Dropped:  t.dropped.Load(),
		Cut:      t.cut.Load(),
		Refused:  t.refused.Load(),
	}
}

// PartitionedHosts lists currently partitioned hosts (diagnostics).
func (t *Transport) PartitionedHosts() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	hosts := make([]string, 0, len(t.partitioned))
	for h := range t.partitioned {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	return hosts
}

func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.requests.Add(1)
	t.mu.Lock()
	if t.partitioned[req.URL.Host] {
		t.mu.Unlock()
		t.refused.Add(1)
		return nil, fmt.Errorf("fault: host %s partitioned: %w", req.URL.Host, ErrInjected)
	}
	p := t.profile
	delay := p.Latency
	if p.Jitter > 0 {
		delay += time.Duration(t.rng.Uint64() % uint64(p.Jitter))
	}
	reset := p.ResetRate > 0 && t.rng.Float64() < p.ResetRate
	drop := p.DropRate > 0 && t.rng.Float64() < p.DropRate
	cut := p.CutRate > 0 && t.rng.Float64() < p.CutRate
	if t.dropNext > 0 {
		t.dropNext--
		drop = true
	}
	t.mu.Unlock()

	if delay > 0 {
		select {
		case <-time.After(delay):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	if reset {
		t.resets.Add(1)
		return nil, fmt.Errorf("fault: connection reset: %w", ErrInjected)
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if drop {
		// Close WITHOUT draining: a streaming response (SSE) never ends,
		// so draining would block for the caller's full deadline. The
		// torn connection this leaves behind is the fault being modeled.
		resp.Body.Close()
		t.dropped.Add(1)
		return nil, fmt.Errorf("fault: response dropped: %w", ErrTorn)
	}
	if cut {
		t.cut.Add(1)
		n := int64(t.rng.Uint64() % 512)
		if resp.ContentLength > 1 {
			n = int64(t.rng.Uint64() % uint64(resp.ContentLength))
		}
		resp.Body = &cutBody{rc: resp.Body, remain: n}
	}
	return resp, nil
}

// cutBody truncates a response body after remain bytes with an error
// (not a clean EOF — the peer "died" mid-body).
type cutBody struct {
	rc     io.ReadCloser
	remain int64
}

func (c *cutBody) Read(p []byte) (int, error) {
	if c.remain <= 0 {
		return 0, fmt.Errorf("fault: body cut: %w", ErrInjected)
	}
	if int64(len(p)) > c.remain {
		p = p[:c.remain]
	}
	n, err := c.rc.Read(p)
	c.remain -= int64(n)
	if err == nil && c.remain <= 0 {
		err = fmt.Errorf("fault: body cut: %w", ErrInjected)
	}
	return n, err
}

func (c *cutBody) Close() error { return c.rc.Close() }
