//go:build e2e

package e2e

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
)

// queryResults answers the standard verify query over POST /v1/query and
// returns the decoded results plus the raw degraded block (nil when the
// response carried none).
func queryResults(t *testing.T, base string) ([]any, json.RawMessage) {
	t.Helper()
	body := `{"queries":[{"statistic":"sum","func":"rg","p":1,"estimator":"lstar"}]}`
	resp, err := http.Post(base+"/v1/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query on %s: %d: %s", base, resp.StatusCode, raw)
	}
	var out struct {
		Results  []any           `json:"results"`
		Degraded json.RawMessage `json:"degraded"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("query on %s: %v in %s", base, err, raw)
	}
	if len(out.Degraded) > 0 && string(out.Degraded) != "null" {
		return out.Results, out.Degraded
	}
	return out.Results, nil
}

func getStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestChaos is the failure-domain acceptance scenario: a 3-node cluster
// under -cluster-read=quorum=2 with one node behind a fault proxy.
//
//  1. Healthy phase: loadgen -verify passes THROUGH client-side injected
//     faults (latency, resets, dropped responses) — the idempotency-keyed
//     stream replays make the run exact anyway.
//  2. Partition phase: the proxied node is cut. The coordinator keeps
//     serving 200s whose bodies carry a degraded block naming the missing
//     node; a read-only loadgen -verify passes against the reachable
//     subset; direct writes to a live node advance the served estimate
//     while still degraded; /readyz stays ready (the floor is met).
//  3. Heal phase: the partition lifts, the degraded label clears.
//  4. Bit-identity: a fresh strict coordinator over the same nodes
//     answers exactly the same results as the quorum coordinator that
//     lived through the partition.
func TestChaos(t *testing.T) {
	seed := os.Getenv("CHAOS_SEED")
	if seed == "" {
		seed = "1"
	}
	t.Logf("chaos seed: %s (override with CHAOS_SEED)", seed)
	monestd, loadgen := buildBinaries(t)

	nodeAddrs := make([]string, 3)
	nodeURLs := make([]string, 3)
	for i := range nodeAddrs {
		nodeAddrs[i] = freeAddr(t)
		startClusterDaemon(t, monestd, nodeAddrs[i],
			"-data-dir", t.TempDir(), "-checkpoint-interval", "0")
		nodeURLs[i] = "http://" + nodeAddrs[i]
	}

	// Node 1 is addressed through the fault proxy; the other two direct.
	proxy, err := fault.NewProxy(nodeAddrs[1])
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	memberURLs := []string{nodeURLs[0], proxy.URL(), nodeURLs[2]}

	coordAddr := freeAddr(t)
	startClusterDaemon(t, monestd, coordAddr,
		"-cluster", strings.Join(memberURLs, ","),
		"-cluster-read", "quorum=2",
		"-cluster-poll", "50ms")
	coordBase := "http://" + coordAddr

	// Phase 1 — healthy, under injected client-side chaos. cut-body is
	// left out: it would sever established SSE subscriptions, which have
	// no replay story (by design — subscribers reconnect with
	// Last-Event-ID; loadgen holds one connection).
	// Rates are high because loadgen makes FEW requests (each stream is
	// one connection): this draws a handful of faults per run, not a
	// storm. Every fault class here is retried — resets and dropped
	// responses by Pump/subscribeRetry/queryRetry.
	profile := fmt.Sprintf("latency=1ms,jitter=2ms,reset=0.15,drop-response=0.15,seed=%s", seed)
	lg := exec.Command(loadgen,
		"-addr", coordBase,
		"-updates", "4000", "-batch", "64", "-streams", "4",
		"-instances", "2", "-subscribers", "3",
		"-query", "func=rg&p=1&estimator=lstar",
		"-fault-profile", profile,
		"-verify",
	)
	out, err := lg.CombinedOutput()
	t.Logf("loadgen (healthy, faults injected):\n%s", out)
	if err != nil {
		t.Fatalf("loadgen -verify under fault profile %q failed: %v", profile, err)
	}
	if !strings.Contains(string(out), "verified") {
		t.Fatalf("loadgen did not report verification:\n%s", out)
	}
	healthyResults, deg := queryResults(t, coordBase)
	if deg != nil {
		t.Fatalf("healthy cluster answered degraded: %s", deg)
	}

	// Phase 2 — partition the proxied node. The quorum=2 coordinator must
	// keep answering 200 with an explicit degraded block naming it.
	proxy.Partition(true)
	deadline := time.Now().Add(15 * time.Second)
	var degBlock json.RawMessage
	for {
		_, degBlock = queryResults(t, coordBase)
		if degBlock != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("coordinator never reported degraded after the partition")
		}
		time.Sleep(50 * time.Millisecond)
	}
	var parsed struct {
		Policy  string `json:"policy"`
		Missing []struct {
			Node string `json:"node"`
		} `json:"missing"`
	}
	if err := json.Unmarshal(degBlock, &parsed); err != nil {
		t.Fatalf("degraded block %s: %v", degBlock, err)
	}
	if parsed.Policy != "quorum=2" || len(parsed.Missing) != 1 || parsed.Missing[0].Node != proxy.URL() {
		t.Fatalf("degraded block = %s, want policy quorum=2 missing exactly %s", degBlock, proxy.URL())
	}
	// The floor is met, so the coordinator is degraded but READY; and
	// liveness never wavers.
	if s := getStatus(t, coordBase+"/readyz"); s != http.StatusOK {
		t.Errorf("degraded coordinator /readyz = %d, want 200 (quorum floor met)", s)
	}
	if s := getStatus(t, coordBase+"/healthz"); s != http.StatusOK {
		t.Errorf("degraded coordinator /healthz = %d, want 200", s)
	}

	// Read-only verified load against the reachable subset.
	lg = exec.Command(loadgen,
		"-addr", coordBase,
		"-updates", "0", "-subscribers", "2",
		"-query", "func=rg&p=1&estimator=lstar",
		"-verify",
	)
	out, err = lg.CombinedOutput()
	t.Logf("loadgen (read-only, degraded):\n%s", out)
	if err != nil {
		t.Fatalf("read-only loadgen -verify against degraded cluster failed: %v", err)
	}
	if !strings.Contains(string(out), "verified") {
		t.Fatalf("degraded read-only run did not verify:\n%s", out)
	}
	if !strings.Contains(string(out), "1 queries") {
		t.Fatalf("degraded run did not count the degraded query:\n%s", out)
	}

	// Writes to a LIVE node keep flowing and the degraded view advances.
	ingest := `{"updates":[{"instance":0,"id":900001,"weight":123.5},{"instance":1,"id":900002,"weight":77.25}]}`
	resp, err := http.Post(nodeURLs[0]+"/v1/ingest", "application/json", strings.NewReader(ingest))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("direct ingest to live node: %d", resp.StatusCode)
	}
	deadline = time.Now().Add(15 * time.Second)
	for {
		results, deg := queryResults(t, coordBase)
		if deg != nil && !reflect.DeepEqual(results, healthyResults) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("degraded view never folded in the live node's new writes (deg=%s)", deg)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Phase 3 — heal. The breaker's half-open probe reconnects and the
	// label clears.
	proxy.Partition(false)
	deadline = time.Now().Add(15 * time.Second)
	for {
		if _, deg := queryResults(t, coordBase); deg == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("degraded label never cleared after the partition lifted")
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Phase 4 — bit-identity with a never-partitioned strict view: a
	// fresh strict coordinator over the same members (direct URLs, no
	// proxy) must answer exactly the same results.
	strictAddr := freeAddr(t)
	startClusterDaemon(t, monestd, strictAddr,
		"-cluster", strings.Join(nodeURLs, ","),
		"-cluster-poll", "0")
	healedResults, deg := queryResults(t, coordBase)
	if deg != nil {
		t.Fatalf("healed coordinator still degraded: %s", deg)
	}
	strictResults, deg := queryResults(t, "http://"+strictAddr)
	if deg != nil {
		t.Fatalf("strict coordinator answered degraded: %s", deg)
	}
	ja, _ := json.Marshal(healedResults)
	jb, _ := json.Marshal(strictResults)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("healed quorum view != never-partitioned strict view:\n%s\nvs\n%s", ja, jb)
	}
}
