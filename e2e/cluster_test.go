//go:build e2e

package e2e

import (
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"
)

// startClusterDaemon boots one monestd process with explicit extra
// flags (node or coordinator role) and waits for readiness.
func startClusterDaemon(t *testing.T, bin, addr string, extra ...string) *exec.Cmd {
	t.Helper()
	args := append([]string{
		"-addr", addr,
		"-instances", "2", "-k", "64", "-shards", "8", "-salt", "5",
		"-subscribe-debounce", "20ms",
	}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	deadline := time.Now().Add(15 * time.Second)
	url := "http://" + addr + "/healthz"
	for {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon on %s never became ready: %v", addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func getStats(t *testing.T, base string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decoding /v1/stats: %v", err)
	}
	return resp.StatusCode, m
}

// TestCluster boots a real 3-node cluster — three monestd nodes with
// their own data dirs plus a coordinator — drives verified load through
// the coordinator (binary streaming ingest routed to owner nodes, SSE
// pushes equal to /v1/query), then SIGKILLs one node to confirm the
// coordinator degrades to 503 instead of under-counting, and restarts
// the node from its data dir to confirm recovery.
func TestCluster(t *testing.T) {
	monestd, loadgen := buildBinaries(t)

	nodeAddrs := make([]string, 3)
	nodeDirs := make([]string, 3)
	nodeCmds := make([]*exec.Cmd, 3)
	nodeURLs := make([]string, 3)
	for i := range nodeAddrs {
		nodeAddrs[i] = freeAddr(t)
		nodeDirs[i] = t.TempDir()
		nodeCmds[i] = startClusterDaemon(t, monestd, nodeAddrs[i],
			"-data-dir", nodeDirs[i], "-checkpoint-interval", "0", "-fsync", "always")
		nodeURLs[i] = "http://" + nodeAddrs[i]
	}
	coordAddr := freeAddr(t)
	startClusterDaemon(t, monestd, coordAddr,
		"-cluster", strings.Join(nodeURLs, ","),
		"-cluster-poll", "50ms")
	coordBase := "http://" + coordAddr

	// Verified load THROUGH the coordinator: binary streams in, SSE
	// pushes out, pushed estimates byte-equal to /v1/query at the same
	// version — all over merged cluster state.
	lg := exec.Command(loadgen,
		"-addr", coordBase,
		"-updates", "6000", "-batch", "128", "-streams", "2",
		"-instances", "2", "-subscribers", "2",
		"-query", "func=rg&p=1&estimator=lstar",
		"-verify",
	)
	out, err := lg.CombinedOutput()
	t.Logf("loadgen:\n%s", out)
	if err != nil {
		t.Fatalf("loadgen -verify through coordinator failed: %v", err)
	}
	if !strings.Contains(string(out), "verified") {
		t.Fatalf("loadgen did not report verification:\n%s", out)
	}

	// The ring spread the keys: every node holds a non-empty share, and
	// the coordinator serves the full merged key count.
	var nodeKeys, coordKeys float64
	for i, u := range nodeURLs {
		_, stats := getStats(t, u)
		eng, _ := stats["engine"].(map[string]any)
		keys, _ := eng["keys"].(float64)
		if keys == 0 {
			t.Errorf("node %d holds no keys", i)
		}
		nodeKeys += keys
	}
	_, coordStats := getStats(t, coordBase)
	if eng, ok := coordStats["engine"].(map[string]any); ok {
		coordKeys, _ = eng["keys"].(float64)
	}
	if coordKeys != nodeKeys {
		t.Errorf("coordinator serves %v keys, nodes hold %v", coordKeys, nodeKeys)
	}

	// Degraded mode: SIGKILL one node (no graceful WAL flush — the WAL
	// is the durability story) and the coordinator must answer 503, not
	// partial estimates.
	killed := 1
	if err := nodeCmds[killed].Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	nodeCmds[killed].Wait()
	deadline := time.Now().Add(15 * time.Second)
	for {
		status, _ := getStats(t, coordBase) // stats still work (local merge engine)
		if status != http.StatusOK {
			t.Fatalf("/v1/stats on coordinator: %d", status)
		}
		resp, err := http.Get(coordBase + "/v1/estimate/sum?func=rg&p=1&estimator=lstar")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("coordinator query answered %d with a node down, want 503", resp.StatusCode)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Recovery: the node comes back on the SAME address from its own
	// data dir (WAL replay) and the coordinator serves full queries
	// again with all keys present.
	startClusterDaemon(t, monestd, nodeAddrs[killed],
		"-data-dir", nodeDirs[killed], "-checkpoint-interval", "0", "-fsync", "always")
	deadline = time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(coordBase + "/v1/estimate/sum?func=rg&p=1&estimator=lstar")
		if err != nil {
			t.Fatal(err)
		}
		ok := resp.StatusCode == http.StatusOK
		resp.Body.Close()
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("coordinator never recovered after node restart (last status %d)", resp.StatusCode)
		}
		time.Sleep(50 * time.Millisecond)
	}
	_, coordStats = getStats(t, coordBase)
	if eng, ok := coordStats["engine"].(map[string]any); ok {
		if got, _ := eng["keys"].(float64); got != nodeKeys {
			t.Errorf("after recovery coordinator serves %v keys, want %v", got, nodeKeys)
		}
	}
}
