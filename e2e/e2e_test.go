//go:build e2e

// Package e2e exercises the daemon over the real wire: it builds the
// monestd and loadgen binaries, boots the daemon with a data dir, drives
// binary streaming ingest plus SSE subscribers through loadgen -verify
// (which asserts the pushed estimate equals POST /v1/query at the same
// version), and checks graceful shutdown delivers the final drain event.
// Build-tagged so `go test ./...` skips it; CI and `make e2e` run
// `go test -tags e2e ./e2e/`.
package e2e

import (
	"context"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/streamclient"
)

// buildBinaries compiles monestd and loadgen into a temp dir once per run.
func buildBinaries(t *testing.T) (monestd, loadgen string) {
	t.Helper()
	dir := t.TempDir()
	monestd = filepath.Join(dir, "monestd")
	loadgen = filepath.Join(dir, "loadgen")
	for bin, pkg := range map[string]string{monestd: "./cmd/monestd", loadgen: "./cmd/loadgen"} {
		cmd := exec.Command("go", "build", "-o", bin, pkg)
		cmd.Dir = ".." // module root
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
	}
	return monestd, loadgen
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return l.Addr().String()
}

// startDaemon boots monestd and waits until /v1/stats answers.
func startDaemon(t *testing.T, bin, addr, dataDir string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", addr,
		"-data-dir", dataDir,
		"-instances", "2", "-k", "64", "-shards", "8",
		"-subscribe-debounce", "20ms",
		"-checkpoint-interval", "0",
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	deadline := time.Now().Add(15 * time.Second)
	url := "http://" + addr + "/v1/stats"
	for {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon on %s never became ready: %v", addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestFullWire(t *testing.T) {
	monestd, loadgen := buildBinaries(t)
	addr := freeAddr(t)
	daemon := startDaemon(t, monestd, addr, t.TempDir())
	base := "http://" + addr

	// loadgen -verify is the end-to-end assertion: binary streaming
	// ingest over concurrent connections, SSE subscribers catching up to
	// the final version, pushed estimates byte-equal to POST /v1/query.
	lg := exec.Command(loadgen,
		"-addr", base,
		"-updates", "20000", "-batch", "256", "-streams", "2",
		"-instances", "2", "-subscribers", "4",
		"-query", "func=rg&p=1&estimator=lstar",
		"-verify",
	)
	out, err := lg.CombinedOutput()
	t.Logf("loadgen:\n%s", out)
	if err != nil {
		t.Fatalf("loadgen -verify failed: %v", err)
	}
	if !strings.Contains(string(out), "verified") {
		t.Fatalf("loadgen did not report verification:\n%s", out)
	}

	// The stream counters must have moved (the wire really was binary).
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{"monest_stream_updates_total 20000", "monest_subscribe_pushed_events_total"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Graceful shutdown: an open subscriber gets the final drain event,
	// and the daemon exits 0 (WAL flushed, final checkpoint written).
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	sub, err := streamclient.Subscribe(ctx, nil, base, "")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if _, err := sub.NextPush(); err != nil {
		t.Fatalf("initial push: %v", err)
	}
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	for {
		ev, err := sub.Next()
		if err != nil {
			t.Fatalf("connection died before drain event: %v", err)
		}
		if ev.Type == "drain" {
			break
		}
	}
	if err := daemon.Wait(); err != nil {
		t.Fatalf("daemon exit: %v", err)
	}
}
