# Single source of truth for build/test/bench/lint invocations: CI jobs
# (.github/workflows/ci.yml) and local runs call the same targets.

GO        ?= go
BENCH_OUT ?= BENCH_local.json

.PHONY: build test race bench lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration per benchmark, emitted as test2json lines: cheap enough
# for every push, structured enough to accumulate a perf trajectory from
# the uploaded BENCH_<sha>.json artifacts.
bench:
	$(GO) test -json -run xxx -bench . -benchtime 1x ./internal/engine/ ./internal/server/ > $(BENCH_OUT)
	@echo "benchmark results written to $(BENCH_OUT)"

lint:
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then \
		echo "gofmt -l found unformatted files:"; echo "$$fmt_out"; exit 1; fi
	$(GO) vet ./...
