# Single source of truth for build/test/bench/lint invocations: CI jobs
# (.github/workflows/ci.yml) and local runs call the same targets.

GO             ?= go
BENCH_OUT      ?= BENCH_local.json
BENCH_BASELINE ?= BENCH_baseline.json
BENCH_HEAD     ?= BENCH_head.json
BENCH_GATE     ?= BENCH_gate.json

# The hot-path allowlist the benchmark gate enforces (everything else
# stays advisory via benchcmp). Names are post-GOMAXPROCS-strip; the $$
# doubling is Makefile escaping for a literal $.
GATE_ALLOW     ?= ^(BenchmarkIngestBatch|BenchmarkQueryInvalidated|BenchmarkStreamIngest256|BenchmarkSnapshotIncremental/keys=16384|BenchmarkClusterQuery|BenchmarkScatterGather/cluster-64k-3nodes|BenchmarkScatterGather/single-16k|BenchmarkSyncDeadNode)$$
# The matching `go test -bench` selectors. Two because go's slash-
# segmented pattern treats a two-segment regex as sub-benchmark-only: a
# leaf benchmark (no b.Run) never reports under it. The cluster pair
# runs separately: its package boots in-process HTTP clusters, so its
# benchmarks stay out of the engine/server/store selector.
GATE_BENCH     ?= ^(BenchmarkIngestBatch|BenchmarkQueryInvalidated|BenchmarkStreamIngest256)$$
GATE_BENCH_SUB ?= ^BenchmarkSnapshotIncremental$$/^keys=16384$$
GATE_BENCH_CLUSTER ?= ^(BenchmarkClusterQuery|BenchmarkScatterGather|BenchmarkSyncDeadNode)$$
GATE_MAX       ?= 1.30

.PHONY: build test race bench bench-baseline benchcmp benchgate e2e chaos lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration per benchmark, emitted as test2json lines: cheap enough
# for every push, structured enough to accumulate a perf trajectory from
# the uploaded BENCH_<sha>.json artifacts.
bench:
	$(GO) test -json -run xxx -bench . -benchtime 1x ./internal/engine/ ./internal/server/ ./internal/store/ ./internal/cluster/ > $(BENCH_OUT)
	@echo "benchmark results written to $(BENCH_OUT)"

# Regenerates the committed baseline: the full 1-iteration sweep plus
# stable (100x, 3-count) samples of the gated hot paths appended to the
# same artifact — benchtext takes the per-name minimum across all
# samples, so the gate compares against the stable ones.
bench-baseline:
	$(MAKE) bench BENCH_OUT=$(BENCH_BASELINE)
	$(GO) test -json -run xxx -bench '$(GATE_BENCH)' -benchtime 100x -count 3 ./internal/engine/ ./internal/server/ >> $(BENCH_BASELINE)
	$(GO) test -json -run xxx -bench '$(GATE_BENCH_SUB)' -benchtime 100x -count 3 ./internal/engine/ >> $(BENCH_BASELINE)
	$(GO) test -json -run xxx -bench '$(GATE_BENCH_CLUSTER)' -benchtime 100x -count 3 ./internal/cluster/ >> $(BENCH_BASELINE)
	@echo "baseline regenerated in $(BENCH_BASELINE)"

# Compares a bench run against the committed baseline
# (BENCH_baseline.json), so the BENCH_* trajectory is comparable
# PR-over-PR. Runs the suite unless BENCH_HEAD points at an existing
# artifact (CI passes the BENCH_<sha>.json it just produced, avoiding a
# duplicate run and making the comparison describe the uploaded
# artifact). Uses benchstat when installed
# (go install golang.org/x/perf/cmd/benchstat@latest); falls back to a
# plain diff otherwise. cmd/benchtext converts the test2json artifacts
# into the text format benchstat reads. Advisory: nothing fails here.
benchcmp:
ifeq ($(BENCH_HEAD),BENCH_head.json)
	$(MAKE) bench BENCH_OUT=$(BENCH_HEAD)
endif
	$(GO) run ./cmd/benchtext $(BENCH_BASELINE) > BENCH_baseline.txt
	$(GO) run ./cmd/benchtext $(BENCH_HEAD) > BENCH_head.txt
	@if command -v benchstat >/dev/null 2>&1; then \
		benchstat BENCH_baseline.txt BENCH_head.txt; \
	else \
		echo "benchstat not found; install with: go install golang.org/x/perf/cmd/benchstat@latest"; \
		echo "--- baseline vs head (plain diff) ---"; \
		diff -u BENCH_baseline.txt BENCH_head.txt || true; \
	fi

# The gated comparison: reruns the allowlisted hot-path benchmarks with
# enough iterations to be stable (100x, 3 counts; benchtext -gate takes
# the per-name minimum) and FAILS when any regresses beyond GATE_MAX
# against the committed baseline.
benchgate:
	$(GO) test -json -run xxx -bench '$(GATE_BENCH)' -benchtime 100x -count 3 ./internal/engine/ ./internal/server/ > $(BENCH_GATE)
	$(GO) test -json -run xxx -bench '$(GATE_BENCH_SUB)' -benchtime 100x -count 3 ./internal/engine/ >> $(BENCH_GATE)
	$(GO) test -json -run xxx -bench '$(GATE_BENCH_CLUSTER)' -benchtime 100x -count 3 ./internal/cluster/ >> $(BENCH_GATE)
	$(GO) run ./cmd/benchtext -gate -allow '$(GATE_ALLOW)' -max-regress $(GATE_MAX) $(BENCH_BASELINE) $(BENCH_GATE)

# Full-wire end-to-end: builds monestd + loadgen, boots the daemon with a
# data dir, streams binary ingest, verifies SSE pushes against /v1/query,
# and exercises graceful drain. Build-tagged so plain `make test` skips it.
e2e:
	$(GO) test -tags e2e -count=1 -v ./e2e/

# Failure-domain end-to-end: a 3-node cluster under quorum=2 with a
# fault proxy in front of one node — verified load through injected
# client faults, a partition served as labeled degraded reads, heal, and
# a bit-identity check against a never-partitioned strict coordinator.
# CHAOS_SEED=<n> replays a specific fault schedule.
chaos:
	$(GO) test -tags e2e -race -count=1 -run TestChaos -v ./e2e/

# gofmt + vet always; staticcheck and govulncheck when installed (CI
# installs both, so they gate there; locally they are skipped with a
# note rather than forcing an install).
lint:
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then \
		echo "gofmt -l found unformatted files:"; echo "$$fmt_out"; exit 1; fi
	$(GO) vet ./...
	$(GO) vet -tags e2e ./e2e/
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not found; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not found; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi
