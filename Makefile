# Single source of truth for build/test/bench/lint invocations: CI jobs
# (.github/workflows/ci.yml) and local runs call the same targets.

GO             ?= go
BENCH_OUT      ?= BENCH_local.json
BENCH_BASELINE ?= BENCH_baseline.json
BENCH_HEAD     ?= BENCH_head.json

.PHONY: build test race bench benchcmp lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration per benchmark, emitted as test2json lines: cheap enough
# for every push, structured enough to accumulate a perf trajectory from
# the uploaded BENCH_<sha>.json artifacts.
bench:
	$(GO) test -json -run xxx -bench . -benchtime 1x ./internal/engine/ ./internal/server/ ./internal/store/ > $(BENCH_OUT)
	@echo "benchmark results written to $(BENCH_OUT)"

# Compares a bench run against the committed baseline
# (BENCH_baseline.json), so the BENCH_* trajectory is comparable
# PR-over-PR. Runs the suite unless BENCH_HEAD points at an existing
# artifact (CI passes the BENCH_<sha>.json it just produced, avoiding a
# duplicate run and making the comparison describe the uploaded
# artifact). Uses benchstat when installed
# (go install golang.org/x/perf/cmd/benchstat@latest); falls back to a
# plain diff otherwise. cmd/benchtext converts the test2json artifacts
# into the text format benchstat reads.
benchcmp:
ifeq ($(BENCH_HEAD),BENCH_head.json)
	$(MAKE) bench BENCH_OUT=$(BENCH_HEAD)
endif
	$(GO) run ./cmd/benchtext $(BENCH_BASELINE) > BENCH_baseline.txt
	$(GO) run ./cmd/benchtext $(BENCH_HEAD) > BENCH_head.txt
	@if command -v benchstat >/dev/null 2>&1; then \
		benchstat BENCH_baseline.txt BENCH_head.txt; \
	else \
		echo "benchstat not found; install with: go install golang.org/x/perf/cmd/benchstat@latest"; \
		echo "--- baseline vs head (plain diff) ---"; \
		diff -u BENCH_baseline.txt BENCH_head.txt || true; \
	fi

lint:
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then \
		echo "gofmt -l found unformatted files:"; echo "$$fmt_out"; exit 1; fi
	$(GO) vet ./...
