// Package repro is the public facade of a from-scratch reproduction of
//
//	Edith Cohen, "Estimation for Monotone Sampling: Competitiveness and
//	Customization", PODC 2014 (arXiv:1212.0243).
//
// It re-exports the curated API of the internal packages: coordinated
// (shared-seed) sampling schemes, the item functions of the paper's
// examples, and the L*, U*, Horvitz–Thompson and order-optimal estimators,
// together with the evaluation machinery (variance, competitive ratios) and
// the applications (Lp-difference estimation over samples, all-distances
// sketch similarity).
//
// Quick start: sample a tuple and estimate its range with L*.
//
//	scheme := repro.UniformTuple(2)              // coordinated PPS, τ*=1
//	f, _ := repro.NewRG(1)                       // |v1 − v2|
//	outcome := scheme.Sample([]float64{0.6, 0.2}, seed)
//	estimate := repro.EstimateLStar(f, outcome)  // unbiased, nonnegative,
//	                                             // 4-competitive
//
// See the examples/ directory for end-to-end programs and DESIGN.md for the
// architecture and the paper-reproduction index.
package repro

import (
	"repro/internal/ads"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/estreg"
	"repro/internal/funcs"
	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/sampling"
	"repro/internal/store"
)

// Sampling substrate.
type (
	// SeedHash derives coordinated per-item uniform seeds from item keys.
	SeedHash = sampling.SeedHash
	// TupleScheme is coordinated PPS sampling of one item's tuple: entry i
	// is observed iff v_i ≥ u·τ*_i for the shared seed u.
	TupleScheme = sampling.TupleScheme
	// TupleOutcome is the information a sample carries about one tuple.
	TupleOutcome = sampling.TupleOutcome
)

// NewSeedHash returns a deterministic seed hasher with the given salt.
func NewSeedHash(salt uint64) SeedHash { return sampling.NewSeedHash(salt) }

// NewTupleScheme validates per-instance PPS thresholds τ*.
func NewTupleScheme(tau []float64) (TupleScheme, error) { return sampling.NewTupleScheme(tau) }

// UniformTuple is the τ* ≡ 1 scheme of the paper's examples.
func UniformTuple(r int) TupleScheme { return sampling.UniformTuple(r) }

// Item functions.
type (
	// F is an item function with the outcome-level machinery estimators
	// consume (values, lower/upper bounds, consistent families).
	F = funcs.F
	// RG is the symmetric exponentiated range (max−min)^p.
	RG = funcs.RG
	// RGPlus is the one-sided range max(0, v1−v2)^p.
	RGPlus = funcs.RGPlus
	// MaxTuple is max(v) — the sketch-similarity building block.
	MaxTuple = funcs.MaxTuple
	// OrTuple is the distinct-count summand 1[∃ v_i > 0].
	OrTuple = funcs.OrTuple
	// AndTuple is the intersection summand 1[∀ v_i > 0].
	AndTuple = funcs.AndTuple
	// LinComb is |Σ c_i·v_i|^p.
	LinComb = funcs.LinComb
)

// NewRG returns the RG_p function.
func NewRG(p float64) (RG, error) { return funcs.NewRG(p) }

// NewRGPlus returns the RG_{p+} function.
func NewRGPlus(p float64) (RGPlus, error) { return funcs.NewRGPlus(p) }

// NewLinComb returns |Σ c_i·v_i|^p.
func NewLinComb(c []float64, p float64) (LinComb, error) { return funcs.NewLinComb(c, p) }

// Estimators. All are unbiased and nonnegative; L* is additionally
// 4-competitive, monotone, and dominates HT (Theorems 4.1–4.3).
var (
	// ErrHTInapplicable reports a zero revelation probability.
	ErrHTInapplicable = core.ErrHTInapplicable
	// ErrNotEstimable reports that condition (9) fails.
	ErrNotEstimable = core.ErrNotEstimable
)

// Grid tunes the numeric solvers (zero value = sensible defaults).
type Grid = core.Grid

// EstimateLStar evaluates the L* estimator on a concrete outcome.
func EstimateLStar(f F, o TupleOutcome) float64 { return funcs.EstimateLStar(f, o) }

// EstimateUStar evaluates the U* estimator on a concrete outcome.
func EstimateUStar(f F, o TupleOutcome, g Grid) float64 { return funcs.EstimateUStar(f, o, g) }

// EstimateHT evaluates the Horvitz–Thompson estimator on a concrete
// outcome (0 on outcomes that do not reveal f).
func EstimateHT(f F, o TupleOutcome) float64 { return funcs.EstimateHT(f, o) }

// Datasets and sum aggregates.
type (
	// Dataset is r instances (rows) over n items (columns).
	Dataset = dataset.Dataset
	// CoordinatedSample is a materialized coordinated sample of a Dataset.
	CoordinatedSample = dataset.CoordinatedSample
	// EstimatorKind selects L*, U* or HT for sum aggregation.
	EstimatorKind = dataset.EstimatorKind
	// StableConfig parameterizes the similar-instances generator.
	StableConfig = dataset.StableConfig
	// FlowsConfig parameterizes the dissimilar-instances generator.
	FlowsConfig = dataset.FlowsConfig
)

// Estimator kinds for CoordinatedSample.EstimateSum.
const (
	KindLStar = dataset.KindLStar
	KindUStar = dataset.KindUStar
	KindHT    = dataset.KindHT
)

// NewDataset validates a weight matrix.
func NewDataset(names []string, w [][]float64) (Dataset, error) { return dataset.New(names, w) }

// StableDataset generates a surnames-like (similar) two-instance dataset.
func StableDataset(cfg StableConfig) Dataset { return dataset.Stable(cfg) }

// FlowsDataset generates an IP-flow-like (dissimilar) two-instance dataset.
func FlowsDataset(cfg FlowsConfig) Dataset { return dataset.Flows(cfg) }

// SampleCoordinated draws the coordinated sample of selected instances.
func SampleCoordinated(d Dataset, instances []int, scheme TupleScheme, hash SeedHash) (CoordinatedSample, error) {
	return dataset.SampleCoordinated(d, instances, scheme, hash)
}

// SampleBottomK draws coordinated bottom-k (priority-rank) samples of every
// instance and reduces them to per-item monotone outcomes via conditional
// inclusion thresholds (the paper's footnote 1).
func SampleBottomK(d Dataset, k int, hash SeedHash) (CoordinatedSample, error) {
	return dataset.SampleBottomK(d, k, hash)
}

// JaccardEstimate estimates the Jaccard coefficient of the instances'
// positive supports from per-item outcomes (ratio of unbiased L* sums of
// AND and OR).
func JaccardEstimate(outcomes []TupleOutcome) float64 { return funcs.JaccardEstimate(outcomes) }

// Streaming coordinated sketches (the live counterpart of SampleBottomK;
// cmd/monestd serves them over HTTP).
type (
	// Engine is a sharded, concurrent, incrementally maintained store of
	// coordinated bottom-k sketches. Engine.Version reports its mutation
	// version, and Engine.CachedSnapshot serves the last reduced snapshot
	// lock-free and bit-identically while the version holds (optionally
	// within a staleness bound) — the serving hot path of monestd.
	Engine = engine.Engine
	// EngineConfig parameterizes an Engine.
	EngineConfig = engine.Config
	// EngineUpdate is one weighted observation for batched ingest.
	EngineUpdate = engine.Update
	// EngineSnapshot is a consistent cut reduced to per-item outcomes —
	// bit-identical to SampleBottomK on the aggregated weight matrix when
	// items are keyed by column index. Snapshots returned by the cache are
	// shared between readers (outcomes are backed by common arena arrays):
	// treat them as immutable.
	EngineSnapshot = engine.Snapshot
	// EngineStats summarizes an engine's contents and traffic as one
	// consistent cut (taken under the same all-shard lock as Snapshot).
	EngineStats = engine.Stats
)

// NewEngine returns an empty streaming sketch engine.
func NewEngine(cfg EngineConfig) (*Engine, error) { return engine.New(cfg) }

// Durability (internal/store): write-ahead logging of engine updates,
// compact sketch checkpoints, and crash recovery for the streaming
// engine. See DESIGN.md §6.6 for the on-disk formats and invariants.
type (
	// EngineState is a portable, deterministic serialization of an
	// engine's full sketch state — what checkpoints and /v1/export carry.
	EngineState = engine.State
	// Store persists engine updates (WAL) and state checkpoints; open one
	// with OpenStore and wire it to an engine with AttachStore.
	Store = store.Store
	// StoreOptions selects the WAL fsync policy and checkpoint retention.
	StoreOptions = store.Options
	// StorePersistence couples a recovered engine with its store:
	// journaled ingest plus Checkpoint/Sync/Close lifecycle.
	StorePersistence = store.Persistence
	// RecoveryStats reports what a boot-time recovery restored/replayed.
	RecoveryStats = store.RecoveryStats
	// CheckpointStats reports what one checkpoint wrote and truncated.
	CheckpointStats = store.CheckpointStats
)

// WAL fsync policies for StoreOptions.
const (
	FsyncAlways   = store.FsyncAlways
	FsyncInterval = store.FsyncInterval
	FsyncNever    = store.FsyncNever
)

// OpenStore opens a persistence backend from a "backend:path" spec (a
// bare path selects the file backend).
func OpenStore(spec string, opt StoreOptions) (Store, error) { return store.Open(spec, opt) }

// AttachStore recovers an empty engine from the store and journals every
// subsequent ingest through it. The returned Persistence owns both ends:
// Close flushes, checkpoints, and closes the store.
func AttachStore(e *Engine, st Store) (*StorePersistence, RecoveryStats, error) {
	return store.Attach(e, st)
}

// EncodeEngineState serializes a state cut (Engine.DumpState) into the
// integrity-checked binary artifact /v1/export serves.
func EncodeEngineState(st *EngineState) []byte { return store.EncodeState(st) }

// DecodeEngineState parses and validates an exported state artifact.
func DecodeEngineState(data []byte) (*EngineState, error) { return store.DecodeState(data) }

// Estimator registry — the pluggable estimator zoo of the serving path
// (internal/estreg): every batch estimator servable by name from a
// streaming snapshot, with room for custom registrations.
type (
	// EstimatorRegistry maps names ("lstar", "ustar", "ht", "voptimal",
	// "order:<spec>") to estimator constructors.
	EstimatorRegistry = estreg.Registry
	// BuiltEstimator is a per-item estimator bound to one item function.
	BuiltEstimator = estreg.Estimator
	// EstimatorMeta carries a built estimator's guarantees (unbiasedness,
	// competitiveness ratio, construction note).
	EstimatorMeta = estreg.Meta
	// EstimatorBuilder constructs estimators for custom registrations.
	EstimatorBuilder = estreg.Builder
	// EstimatorSum aggregates per-item estimates over a snapshot.
	EstimatorSum = estreg.SumResult
)

// DefaultEstimators returns a registry with every built-in estimator.
func DefaultEstimators() *EstimatorRegistry { return estreg.Default() }

// NewEstimatorRegistry returns an empty registry for custom builds.
func NewEstimatorRegistry() *EstimatorRegistry { return estreg.New() }

// SumEstimates applies a built estimator to the selected outcomes
// (nil = all) and aggregates exactly like CoordinatedSample.EstimateSum.
func SumEstimates(est BuiltEstimator, outcomes []TupleOutcome, items []int) (EstimatorSum, error) {
	return estreg.Sum(est, outcomes, items)
}

// StringKey maps a string item key into the engine's uint64 key space,
// consistently with SeedHash.UString.
func StringKey(s string) uint64 { return sampling.StringKey(s) }

// Graphs and all-distances sketches (the Section 7 similarity application).
type (
	// Graph is a weighted graph with Dijkstra traversals.
	Graph = graph.Graph
	// Sketch is a bottom-k all-distances sketch with HIP probabilities.
	Sketch = ads.Sketch
	// Alpha is a non-increasing distance-decay kernel.
	Alpha = ads.Alpha
)

// NewGraph returns an empty graph on n vertices.
func NewGraph(n int) (*Graph, error) { return graph.New(n) }

// PreferentialAttachment generates a social-network-like graph.
func PreferentialAttachment(n, m int, seed int64) (*Graph, error) {
	return graph.PreferentialAttachment(n, m, seed)
}

// BuildSketches computes the bottom-k ADS of every node.
func BuildSketches(g *Graph, k int, hash SeedHash) ([]Sketch, error) { return ads.Build(g, k, hash) }

// ExactSimilarity computes closeness similarity from exact distances.
func ExactSimilarity(g *Graph, u, v int, alpha Alpha) float64 {
	return ads.ExactSimilarity(g, u, v, alpha)
}

// EstimateSimilarity estimates closeness similarity from two sketches.
func EstimateSimilarity(su, sv Sketch, alpha Alpha) float64 {
	return ads.EstimateSimilarity(su, sv, alpha)
}

// AlphaInverse is α(d) = 1/(1+d).
func AlphaInverse(d float64) float64 { return ads.AlphaInverse(d) }

// Order-optimal (customized) estimators on discrete domains (Section 5).
type (
	// OrderScheme is a discrete value/probability ladder.
	OrderScheme = order.Scheme
	// OrderProblem bundles a discrete problem with a priority order ≺.
	OrderProblem = order.Problem
	// OrderEstimator is a ≺+-optimal estimator.
	OrderEstimator = order.Estimator
)

// NewOrderScheme validates a discrete sampling ladder.
func NewOrderScheme(vals, pis []float64) (OrderScheme, error) { return order.NewScheme(vals, pis) }

// NewOrderEstimator constructs the ≺+-optimal estimator for a problem.
func NewOrderEstimator(p OrderProblem) (*OrderEstimator, error) { return order.New(p) }

// GridDomain enumerates the full product domain of a ladder.
func GridDomain(s OrderScheme, r int) [][]float64 { return order.GridDomain(s, r) }

// LessByF orders by increasing f (≺+-optimal estimator = L*, Theorem 4.3).
func LessByF(f func([]float64) float64) func(a, b []float64) bool { return order.LessByF(f) }

// LessByFDesc orders by decreasing f (≺+-optimal estimator = U*, Lemma 6.1).
func LessByFDesc(f func([]float64) float64) func(a, b []float64) bool { return order.LessByFDesc(f) }
