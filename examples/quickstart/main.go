// Quickstart: estimate the L1 difference between two coordinated-PPS
// sampled instances with the L* estimator (the paper's 4-competitive
// default), and compare against the exact value.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Two small "instances" over the same six items — think of two daily
	// snapshots of some per-key metric.
	data, err := repro.NewDataset(
		[]string{"monday", "tuesday"},
		[][]float64{
			{0.95, 0.00, 0.23, 0.70, 0.10, 0.42},
			{0.15, 0.44, 0.00, 0.80, 0.05, 0.50},
		})
	if err != nil {
		log.Fatal(err)
	}

	// The query: L1 difference Σ_k |v1_k − v2_k| — a sum aggregate of the
	// symmetric range RG_1 over per-item tuples (Example 1 of the paper).
	f, err := repro.NewRG(1)
	if err != nil {
		log.Fatal(err)
	}
	exact := data.ExactSum(f, nil)

	// Coordinated PPS sampling: both instances share per-item hashed
	// seeds, so their samples are maximally correlated (the property that
	// makes difference queries estimable at all).
	scheme := repro.UniformTuple(2)
	fmt.Println("trial  sampled-entries  L1-estimate  (exact", fmt.Sprintf("%.4f)", exact))
	var mean float64
	const trials = 8
	for t := 0; t < trials; t++ {
		sample, err := repro.SampleCoordinated(data, nil, scheme, repro.NewSeedHash(uint64(t)))
		if err != nil {
			log.Fatal(err)
		}
		est, err := sample.EstimateSum(f, repro.KindLStar, nil)
		if err != nil {
			log.Fatal(err)
		}
		mean += est / trials
		fmt.Printf("%5d  %15d  %11.4f\n", t, sample.SampledEntries, est)
	}
	fmt.Printf("\nmean of %d trials: %.4f — unbiasedness pulls the average toward the exact value\n",
		trials, mean)
}
