// Surnames-like workload: two yearly snapshots of name frequencies, almost
// identical year over year. On such similar data the L* estimator — the
// unique admissible monotone estimator, order-optimal for small
// differences — should beat U*, mirroring the paper's Section 7 finding on
// the surnames corpus.
//
// Run with: go run ./examples/surnames
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/stats"
)

func main() {
	data := repro.StableDataset(repro.StableConfig{N: 1500, Seed: 7})
	f, err := repro.NewRG(1) // per-name |freq1 − freq2|
	if err != nil {
		log.Fatal(err)
	}
	exact := data.ExactSum(f, nil)

	// Zipf weights live in (0, 1]; τ = 0.05 samples the head densely and
	// the tail sparsely, like a realistic budgeted sketch.
	scheme, err := repro.NewTupleScheme([]float64{0.05, 0.05})
	if err != nil {
		log.Fatal(err)
	}

	meters := map[repro.EstimatorKind]*stats.ErrorMeter{
		repro.KindLStar: {}, repro.KindUStar: {}, repro.KindHT: {},
	}
	var frac stats.Welford
	const trials = 25
	for t := 0; t < trials; t++ {
		sample, err := repro.SampleCoordinated(data, nil, scheme, repro.NewSeedHash(uint64(1000+t)))
		if err != nil {
			log.Fatal(err)
		}
		frac.Add(float64(sample.SampledEntries) / float64(sample.TotalEntries))
		for kind, meter := range meters {
			est, err := sample.EstimateSum(f, kind, nil)
			if err != nil {
				log.Fatal(err)
			}
			meter.Add(est, exact)
		}
	}

	fmt.Printf("surnames dataset: %d names, exact L1 change %.4f, ~%.0f%% entries sampled\n\n",
		data.N(), exact, 100*frac.Mean())
	fmt.Printf("%-4s  %-10s  %-10s\n", "est", "NRMSE", "rel.bias")
	for _, kind := range []repro.EstimatorKind{repro.KindLStar, repro.KindUStar, repro.KindHT} {
		m := meters[kind]
		fmt.Printf("%-4s  %-10.4f  %+-10.4f\n", kind, m.NRMSE(), m.RelBias())
	}
	l, u := meters[repro.KindLStar].NRMSE(), meters[repro.KindUStar].NRMSE()
	fmt.Printf("\nL* beats U* by %.1f%% on this similar workload — pick L* when instances are stable\n",
		100*(1-l/u))
	fmt.Println("(or when you know nothing: its worst case is within factor 4 of optimal).")
}
