// IP-flow-like workload: two epochs of heavy-tailed flow volumes with high
// churn (most keys appear in only one epoch). On such dissimilar data the
// paper's customization story says the U* estimator — order-optimal for
// large differences — should beat the default L*, while Horvitz–Thompson
// trails both. This example measures exactly that.
//
// Run with: go run ./examples/ipflows
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/stats"
)

func main() {
	data := repro.FlowsDataset(repro.FlowsConfig{N: 1500, Seed: 42})
	f, err := repro.NewRG(1) // per-key |volume1 − volume2|
	if err != nil {
		log.Fatal(err)
	}
	exact := data.ExactSum(f, nil)

	// Tune the PPS threshold for roughly 15% of active entries sampled.
	tau := 8.0
	scheme, err := repro.NewTupleScheme([]float64{tau, tau})
	if err != nil {
		log.Fatal(err)
	}

	meters := map[repro.EstimatorKind]*stats.ErrorMeter{
		repro.KindLStar: {}, repro.KindUStar: {}, repro.KindHT: {},
	}
	var frac stats.Welford
	const trials = 25
	for t := 0; t < trials; t++ {
		sample, err := repro.SampleCoordinated(data, nil, scheme, repro.NewSeedHash(uint64(t)))
		if err != nil {
			log.Fatal(err)
		}
		frac.Add(float64(sample.SampledEntries) / float64(sample.TotalEntries))
		for kind, meter := range meters {
			est, err := sample.EstimateSum(f, kind, nil)
			if err != nil {
				log.Fatal(err)
			}
			meter.Add(est, exact)
		}
	}

	fmt.Printf("flows dataset: %d keys, exact L1 difference %.1f, ~%.0f%% entries sampled\n\n",
		data.N(), exact, 100*frac.Mean())
	fmt.Printf("%-4s  %-10s  %-10s\n", "est", "NRMSE", "rel.bias")
	for _, kind := range []repro.EstimatorKind{repro.KindUStar, repro.KindLStar, repro.KindHT} {
		m := meters[kind]
		fmt.Printf("%-4s  %-10.4f  %+-10.4f\n", kind, m.NRMSE(), m.RelBias())
	}
	u, l := meters[repro.KindUStar].NRMSE(), meters[repro.KindLStar].NRMSE()
	fmt.Printf("\nU* beats L* by %.1f%% on this dissimilar workload — the customization win;\n",
		100*(1-u/l))
	fmt.Println("L* still lands within its 4-competitive guarantee (and crushes HT).")
}
