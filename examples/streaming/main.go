// Streaming workload: a simulated two-epoch IP-flow stream is fed
// observation by observation into the streaming sketch engine, and live
// sum/Jaccard estimates are queried along the way — no access to the full
// weight matrix, just the O(k)-per-instance coordinated bottom-k sketches.
// At the end the live snapshot is checked against the batch sampler on the
// aggregated data: the outcomes are identical by construction, so the
// streaming estimates carry the paper's guarantees (unbiasedness, L*'s
// 4-competitiveness) unchanged.
//
// Run with: go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	const (
		keys = 2000
		k    = 64
		salt = 42
	)
	data := repro.FlowsDataset(repro.FlowsConfig{N: keys, Seed: 7})
	f, err := repro.NewRG(1) // per-flow |volume1 − volume2|
	if err != nil {
		log.Fatal(err)
	}
	exact := data.ExactSum(f, nil)

	hash := repro.NewSeedHash(salt)
	eng, err := repro.NewEngine(repro.EngineConfig{Instances: data.R(), K: k, Shards: 4, Hash: hash})
	if err != nil {
		log.Fatal(err)
	}

	// Simulate the stream: every positive (epoch, flow) entry arrives as a
	// sequence of partial observations (packets); the running maximum of
	// the partials is the entry's final volume, matching the engine's
	// max-weight semantics.
	type obs struct {
		epoch int
		flow  uint64
		vol   float64
	}
	rng := rand.New(rand.NewSource(1))
	var stream []obs
	for i := 0; i < data.R(); i++ {
		for key := 0; key < data.N(); key++ {
			w := data.W[i][key]
			if w <= 0 {
				continue
			}
			for _, frac := range []float64{0.25 + 0.5*rng.Float64(), 1.0} {
				stream = append(stream, obs{epoch: i, flow: uint64(key), vol: w * frac})
			}
		}
	}
	rng.Shuffle(len(stream), func(a, b int) { stream[a], stream[b] = stream[b], stream[a] })

	fmt.Printf("streaming %d observations (%d flows, k=%d per epoch)\n\n", len(stream), keys, k)
	fmt.Printf("%-10s  %-12s  %-10s  %-10s\n", "ingested", "L1 estimate", "rel.err", "jaccard")
	checkpoints := map[int]bool{len(stream) / 4: true, len(stream) / 2: true, len(stream): true}
	for n, o := range stream {
		if err := eng.Ingest(o.epoch, o.flow, o.vol); err != nil {
			log.Fatal(err)
		}
		if !checkpoints[n+1] {
			continue
		}
		snap := eng.Snapshot()
		est, err := snap.Sample.EstimateSum(f, repro.KindLStar, nil)
		if err != nil {
			log.Fatal(err)
		}
		jac := repro.JaccardEstimate(snap.Sample.Outcomes)
		fmt.Printf("%-10d  %-12.1f  %-10.4f  %-10.4f\n",
			n+1, est, est/exact-1, jac)
	}

	// The final snapshot must agree with a from-scratch batch sample of
	// the aggregated matrix — coordination and thresholds are identical.
	batch, err := repro.SampleBottomK(data, k, hash)
	if err != nil {
		log.Fatal(err)
	}
	snap := eng.Snapshot()
	agree := len(snap.Keys) == len(batch.Outcomes)
	for j := range snap.Sample.Outcomes {
		agree = agree && snap.Sample.Outcomes[j].Same(batch.Outcomes[j])
	}
	st := eng.Stats()
	fmt.Printf("\nfinal snapshot outcomes identical to batch SampleBottomK: %v\n", agree)
	fmt.Printf("sketch storage: %d retained entries for %d active entries (%.1f%%)\n",
		st.RetainedEntries, st.ActiveEntries,
		100*float64(st.RetainedEntries)/float64(st.ActiveEntries))
	fmt.Printf("exact L1 difference %.1f — live estimates above are unbiased with L*'s guarantee\n", exact)

	// The customization story served by monestd's /v1/query: ONE snapshot,
	// every estimator of the registry evaluated on the same outcomes —
	// pick per workload (L* for similar instances, U* for dissimilar, HT
	// as the baseline, v-optimal as the per-data benchmark).
	fmt.Printf("\none snapshot, the whole estimator zoo (exact %.1f):\n", exact)
	reg := repro.DefaultEstimators()
	for _, name := range []string{"lstar", "ustar", "ht", "voptimal"} {
		est, meta, err := reg.Build(name, f, data.R())
		if err != nil {
			log.Fatal(err)
		}
		sum, err := repro.SumEstimates(est, snap.Sample.Outcomes, nil)
		if err != nil {
			log.Fatal(err)
		}
		unbiased := "unbiased"
		if !meta.Unbiased {
			unbiased = "diagnostic"
		}
		fmt.Printf("  %-9s %12.1f  rel.err %+8.4f  (%s)\n",
			name, sum.Estimate, sum.Estimate/exact-1, unbiased)
	}
}
