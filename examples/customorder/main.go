// Customized (order-optimal) estimators on a discrete domain — the paper's
// Example 5. Three priority orders over V = {0,1,2,3}² give three different
// admissible estimators for RG1+ = max(0, v1−v2):
//
//   - "smaller f first"  — reproduces the L* estimator,
//   - "larger f first"   — reproduces the U* estimator,
//   - "difference 2 first" — a custom pattern prior.
//
// All are unbiased everywhere; each is variance-optimal on the vectors its
// order prioritizes. If your data usually has difference ≈ 2, the custom
// estimator gives the lowest variance exactly where it matters.
//
// Run with: go run ./examples/customorder
package main

import (
	"fmt"
	"log"
	"math"

	"repro"
)

func main() {
	scheme, err := repro.NewOrderScheme(
		[]float64{1, 2, 3},       // discrete values
		[]float64{0.2, 0.5, 0.9}, // their inclusion probabilities π1 < π2 < π3
	)
	if err != nil {
		log.Fatal(err)
	}
	f := func(v []float64) float64 { return math.Max(0, v[0]-v[1]) }
	domain := repro.GridDomain(scheme, 2)

	orders := []struct {
		name string
		less func(a, b []float64) bool
	}{
		{"L* (small f first)", repro.LessByF(f)},
		{"U* (large f first)", repro.LessByFDesc(f)},
		{"custom (diff-2 first)", diff2Less},
	}

	probes := [][]float64{{2, 0}, {3, 1}, {3, 0}, {2, 1}}
	fmt.Printf("%-22s", "variance on:")
	for _, v := range probes {
		fmt.Printf("  (%g,%g)", v[0], v[1])
	}
	fmt.Println()
	for _, o := range orders {
		est, err := repro.NewOrderEstimator(repro.OrderProblem{
			Scheme: scheme, F: f, Domain: domain, Less: o.less,
		})
		if err != nil {
			log.Fatal(err)
		}
		// Sanity: unbiased on the whole domain.
		for _, v := range domain {
			if d := math.Abs(est.Mean(v) - f(v)); d > 1e-9 {
				log.Fatalf("bias %g on %v", d, v)
			}
		}
		fmt.Printf("%-22s", o.name)
		for _, v := range probes {
			fmt.Printf("  %5.2f", est.Variance(v))
		}
		fmt.Println()
	}
	fmt.Println("\nevery row is unbiased on all 16 domain vectors; the custom order wins on")
	fmt.Println("difference-2 vectors like (3,1) and (2,0), paying a little elsewhere.")
}

// diff2Less prioritizes vectors with difference 2, then nearer differences
// (the order walked through in the paper's Example 5).
func diff2Less(a, b []float64) bool {
	key := func(v []float64) [2]float64 {
		d := v[0] - v[1]
		if d <= 0 {
			return [2]float64{math.Inf(1), 0}
		}
		return [2]float64{math.Abs(d - 2), d}
	}
	ka, kb := key(a), key(b)
	if ka[0] != kb[0] {
		return ka[0] < kb[0]
	}
	return ka[1] < kb[1]
}
