// Sketch-based closeness similarity in a social network (Section 7 of the
// paper): build one all-distances sketch per node — coordinated bottom-k
// samples of the distance relation — then estimate
//
//	sim(u,v) = Σ_i α(max(d_ui, d_vi)) / Σ_i α(min(d_ui, d_vi))
//
// from sketches alone, using HIP inclusion probabilities and the L*
// estimator for the per-node summands.
//
// Run with: go run ./examples/similarity
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const (
		n = 400
		k = 16
	)
	g, err := repro.PreferentialAttachment(n, 3, 99)
	if err != nil {
		log.Fatal(err)
	}
	// A production system holds one sketch set; the demo builds a few with
	// independent rank assignments to show the estimates concentrate (all
	// pairs share one assignment, so their errors are correlated within a
	// build).
	const builds = 5
	var all [][]repro.Sketch
	total := 0
	for b := 0; b < builds; b++ {
		sketches, err := repro.BuildSketches(g, k, repro.NewSeedHash(uint64(b)))
		if err != nil {
			log.Fatal(err)
		}
		for _, s := range sketches {
			total += len(s.Entries)
		}
		all = append(all, sketches)
	}
	fmt.Printf("graph: %d nodes; sketches of mean size %.1f (vs %d distances each)\n\n",
		n, float64(total)/float64(n*builds), n)

	pairs := [][2]int{{0, 1}, {0, 399}, {17, 18}, {50, 350}, {123, 124}, {200, 300}}
	fmt.Printf("%-10s  %-8s  %-14s\n", "pair", "exact", "sketch (mean)")
	for _, p := range pairs {
		exact := repro.ExactSimilarity(g, p[0], p[1], repro.AlphaInverse)
		var mean float64
		for _, sketches := range all {
			mean += repro.EstimateSimilarity(sketches[p[0]], sketches[p[1]], repro.AlphaInverse) / builds
		}
		fmt.Printf("(%3d,%3d)  %-8.4f  %-14.4f\n", p[0], p[1], exact, mean)
	}
	fmt.Println("\neach sketch is ~k·ln(n) entries, yet pairwise similarities come out close;")
	fmt.Println("the denominator sums L* estimates of α(min distance) per node (unbiased).")
}
