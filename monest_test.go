package repro_test

import (
	"math"
	"testing"

	"repro"
)

// The facade exposes the full estimation round trip: these tests exercise
// the public API end to end (internal packages have the deep coverage).

func TestFacadeEstimationRoundTrip(t *testing.T) {
	scheme := repro.UniformTuple(2)
	f, err := repro.NewRG(1)
	if err != nil {
		t.Fatal(err)
	}
	v := []float64{0.6, 0.2}
	o := scheme.Sample(v, 0.35)
	l := repro.EstimateLStar(f, o)
	u := repro.EstimateUStar(f, o, repro.Grid{})
	h := repro.EstimateHT(f, o)
	if l <= 0 {
		t.Errorf("L* estimate = %g, want positive on a partially revealing outcome", l)
	}
	if math.Abs(u-1) > 0.05 {
		t.Errorf("U* estimate = %g, want ≈ 1 (Example 4 closed form)", u)
	}
	if h != 0 {
		t.Errorf("HT estimate = %g, want 0 (outcome does not reveal f)", h)
	}
}

func TestFacadeDatasetFlow(t *testing.T) {
	data, err := repro.NewDataset(nil, [][]float64{{1, 0.5, 0.2}, {0.9, 0.6, 0}})
	if err != nil {
		t.Fatal(err)
	}
	f, err := repro.NewRGPlus(1)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := repro.SampleCoordinated(data, nil, repro.UniformTuple(2), repro.NewSeedHash(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []repro.EstimatorKind{repro.KindLStar, repro.KindUStar, repro.KindHT} {
		est, err := cs.EstimateSum(f, kind, nil)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if est < 0 || math.IsNaN(est) {
			t.Errorf("%v: estimate %g invalid", kind, est)
		}
	}
}

func TestFacadeStreamingEngine(t *testing.T) {
	data, err := repro.NewDataset(nil, [][]float64{{1, 0.5, 0.2}, {0.9, 0.6, 0}})
	if err != nil {
		t.Fatal(err)
	}
	hash := repro.NewSeedHash(3)
	eng, err := repro.NewEngine(repro.EngineConfig{Instances: 2, K: 2, Hash: hash})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < data.R(); i++ {
		for k := 0; k < data.N(); k++ {
			if err := eng.Ingest(i, uint64(k), data.W[i][k]); err != nil {
				t.Fatal(err)
			}
		}
	}
	batch, err := repro.SampleBottomK(data, 2, hash)
	if err != nil {
		t.Fatal(err)
	}
	snap := eng.Snapshot()
	if got, want := repro.JaccardEstimate(snap.Sample.Outcomes), repro.JaccardEstimate(batch.Outcomes); got != want {
		t.Errorf("streaming Jaccard %g != batch %g", got, want)
	}
	f, err := repro.NewRG(1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := snap.Sample.EstimateSum(f, repro.KindLStar, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := batch.EstimateSum(f, repro.KindLStar, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("streaming L* sum %g != batch %g", got, want)
	}
	// StringKey must coordinate with UString: named ingest through the
	// HTTP layer and direct UString consumers share the same seed space.
	if got, want := hash.U(repro.StringKey("alpha")), hash.UString("alpha"); got != want {
		t.Errorf("U(StringKey(alpha)) = %g, UString(alpha) = %g", got, want)
	}
}

func TestFacadeSimilarityFlow(t *testing.T) {
	g, err := repro.PreferentialAttachment(60, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	sk, err := repro.BuildSketches(g, 8, repro.NewSeedHash(2))
	if err != nil {
		t.Fatal(err)
	}
	exact := repro.ExactSimilarity(g, 1, 2, repro.AlphaInverse)
	est := repro.EstimateSimilarity(sk[1], sk[2], repro.AlphaInverse)
	if exact <= 0 || exact > 1 {
		t.Fatalf("exact similarity %g outside (0,1]", exact)
	}
	if est <= 0 || math.IsNaN(est) {
		t.Errorf("estimate %g invalid", est)
	}
}

func TestFacadeOrderOptimal(t *testing.T) {
	scheme, err := repro.NewOrderScheme([]float64{1, 2}, []float64{0.3, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	f := func(v []float64) float64 { return math.Max(0, v[0]-v[1]) }
	est, err := repro.NewOrderEstimator(repro.OrderProblem{
		Scheme: scheme, F: f, Domain: repro.GridDomain(scheme, 2), Less: repro.LessByF(f),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range [][]float64{{2, 1}, {1, 0}, {2, 0}} {
		if got, want := est.Mean(v), f(v); math.Abs(got-want) > 1e-9 {
			t.Errorf("E[f̂|%v] = %g, want %g", v, got, want)
		}
	}
}

func TestFacadeEstimatorRegistry(t *testing.T) {
	data, err := repro.NewDataset(nil, [][]float64{{1, 0.5, 0.2}, {0.9, 0.6, 0}})
	if err != nil {
		t.Fatal(err)
	}
	sample, err := repro.SampleBottomK(data, 2, repro.NewSeedHash(3))
	if err != nil {
		t.Fatal(err)
	}
	f, err := repro.NewRG(1)
	if err != nil {
		t.Fatal(err)
	}
	reg := repro.DefaultEstimators()
	est, meta, err := reg.Build("lstar", f, data.R())
	if err != nil {
		t.Fatal(err)
	}
	if !meta.Unbiased || meta.CompetitiveRatio != 4 {
		t.Errorf("lstar meta = %+v", meta)
	}
	got, err := repro.SumEstimates(est, sample.Outcomes, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sample.EstimateSum(f, repro.KindLStar, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Estimate != want {
		t.Errorf("registry sum %g != batch %g", got.Estimate, want)
	}
	// A ≺-customized estimator builds from a spec string alone.
	if _, _, err := reg.Build("order:vals=0.2,0.5,1;by=desc", f, data.R()); err != nil {
		t.Fatal(err)
	}
	// Custom registration through the exported builder type.
	custom := repro.NewEstimatorRegistry()
	if err := custom.Register("zero", func(string, repro.F, int) (repro.BuiltEstimator, repro.EstimatorMeta, error) {
		return zeroEstimator{}, repro.EstimatorMeta{Estimator: "zero"}, nil
	}); err != nil {
		t.Fatal(err)
	}
	zest, _, err := custom.Build("zero", f, data.R())
	if err != nil {
		t.Fatal(err)
	}
	if sum, err := repro.SumEstimates(zest, sample.Outcomes, nil); err != nil || sum.Estimate != 0 {
		t.Errorf("custom estimator sum = %+v, err %v", sum, err)
	}
}

type zeroEstimator struct{}

func (zeroEstimator) Name() string                                 { return "zero" }
func (zeroEstimator) Estimate(repro.TupleOutcome) (float64, error) { return 0, nil }
