package repro_test

import (
	"testing"

	"repro"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/funcs"
	"repro/internal/sampling"
)

// ---- One benchmark per paper table/figure (DESIGN.md experiment index).
// Quick configurations keep single iterations bounded; the benchmarks both
// time the harness and guard against regressions (any internal consistency
// failure aborts the run).

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	exp, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Run(experiments.Config{Quick: true, Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1ExampleQueries(b *testing.B)     { benchExperiment(b, "E1") }
func BenchmarkE2CoordinatedPPS(b *testing.B)     { benchExperiment(b, "E2") }
func BenchmarkF3LowerBoundSeries(b *testing.B)   { benchExperiment(b, "F3") }
func BenchmarkF4EstimateSeries(b *testing.B)     { benchExperiment(b, "F4") }
func BenchmarkE5OrderOptimal(b *testing.B)       { benchExperiment(b, "E5") }
func BenchmarkT41TightnessSweep(b *testing.B)    { benchExperiment(b, "T41") }
func BenchmarkRATCompetitiveRatios(b *testing.B) { benchExperiment(b, "RAT") }
func BenchmarkDOMLStarVsHT(b *testing.B)         { benchExperiment(b, "DOM") }
func BenchmarkLPDifferenceStudy(b *testing.B)    { benchExperiment(b, "LP") }
func BenchmarkSIMCloseness(b *testing.B)         { benchExperiment(b, "SIM") }
func BenchmarkUNIVRatioBounds(b *testing.B)      { benchExperiment(b, "UNIV") }
func BenchmarkCOOCoordination(b *testing.B)      { benchExperiment(b, "COO") }
func BenchmarkJACJaccard(b *testing.B)           { benchExperiment(b, "JAC") }

// ---- Micro-benchmarks of the core building blocks.

func BenchmarkLStarClosedForm(b *testing.B) {
	scheme := repro.UniformTuple(2)
	f, err := repro.NewRGPlus(1)
	if err != nil {
		b.Fatal(err)
	}
	o := scheme.Sample([]float64{0.6, 0.2}, 0.35)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = repro.EstimateLStar(f, o)
	}
}

func BenchmarkLStarGenericQuadrature(b *testing.B) {
	scheme := repro.UniformTuple(2)
	f, err := repro.NewRGPlus(1.5) // no exact antiderivative: quadrature path
	if err != nil {
		b.Fatal(err)
	}
	o := scheme.Sample([]float64{0.6, 0.2}, 0.35)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = repro.EstimateLStar(f, o)
	}
}

func BenchmarkLStarStepForm(b *testing.B) {
	steps := []core.Step{{At: 0.5, Delta: 1}, {At: 0.25, Delta: 0.5}, {At: 0.1, Delta: 2}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = core.LStarStep(0, steps, 0.3)
	}
}

func BenchmarkUStarBackwardSolver(b *testing.B) {
	// p = 1.5 above the sampling threshold has no closed form, so this
	// exercises the backward solver (below the threshold, Example 4's
	// closed forms cover all p and the solver never runs).
	scheme, err := sampling.NewTupleScheme([]float64{0.5, 0.5})
	if err != nil {
		b.Fatal(err)
	}
	f, err := funcs.NewRGPlus(1.5)
	if err != nil {
		b.Fatal(err)
	}
	o := scheme.Sample([]float64{1.2, 0.3}, 0.35)
	g := core.DefaultGrid()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = funcs.EstimateUStar(f, o, g)
	}
}

func BenchmarkVOptimalHull(b *testing.B) {
	scheme := sampling.UniformTuple(2)
	f, err := funcs.NewRGPlus(1)
	if err != nil {
		b.Fatal(err)
	}
	lb := funcs.DataLB(f, scheme, []float64{0.6, 0.2})
	g := core.Grid{Breaks: []float64{0.2, 0.6}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.VOptimalHull(lb, 0.4, g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoordinatedSampling(b *testing.B) {
	data := repro.StableDataset(repro.StableConfig{N: 10000, Seed: 1})
	scheme := repro.UniformTuple(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repro.SampleCoordinated(data, nil, scheme, repro.NewSeedHash(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSumEstimateLStar(b *testing.B) {
	data := repro.StableDataset(repro.StableConfig{N: 10000, Seed: 1})
	scheme := repro.UniformTuple(2)
	f, err := repro.NewRG(1)
	if err != nil {
		b.Fatal(err)
	}
	cs, err := repro.SampleCoordinated(data, nil, scheme, repro.NewSeedHash(7))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cs.EstimateSum(f, repro.KindLStar, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkADSBuild(b *testing.B) {
	g, err := repro.PreferentialAttachment(300, 3, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repro.BuildSketches(g, 8, repro.NewSeedHash(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimilarityEstimate(b *testing.B) {
	g, err := repro.PreferentialAttachment(300, 3, 1)
	if err != nil {
		b.Fatal(err)
	}
	sketches, err := repro.BuildSketches(g, 16, repro.NewSeedHash(3))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = repro.EstimateSimilarity(sketches[i%300], sketches[(i*7+1)%300], repro.AlphaInverse)
	}
}

func BenchmarkOrderOptimalEstimator(b *testing.B) {
	scheme, err := repro.NewOrderScheme([]float64{1, 2, 3}, []float64{0.2, 0.5, 0.9})
	if err != nil {
		b.Fatal(err)
	}
	f := func(v []float64) float64 {
		if v[0] > v[1] {
			return v[0] - v[1]
		}
		return 0
	}
	domain := repro.GridDomain(scheme, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		est, err := repro.NewOrderEstimator(repro.OrderProblem{
			Scheme: scheme, F: f, Domain: domain, Less: repro.LessByF(f),
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = est.Estimate([]float64{3, 1}, 0.3)
	}
}
