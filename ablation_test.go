package repro_test

// Ablation benchmarks for the numeric design choices DESIGN.md calls out:
// the U* solver's grid resolution, the quadrature's composite panel start,
// and the closed-form vs generic estimator paths. Run with
//
//	go test -bench=Ablation -benchmem
//
// The companion tests assert that the cheap settings stay within tolerance
// of the expensive ones, so the defaults are justified rather than assumed.

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/funcs"
	"repro/internal/numeric"
	"repro/internal/sampling"
)

func ustarAtResolution(n int) float64 {
	scheme := sampling.UniformTuple(2)
	f, _ := funcs.NewRGPlus(1.5)
	o := scheme.Sample([]float64{0.6, 0.2}, 0.35)
	return core.UStarAt(funcs.OutcomeFamily(f, o), o.Rho, core.Grid{N: n})
}

func BenchmarkAblationUStarGrid100(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = ustarAtResolution(100)
	}
}

func BenchmarkAblationUStarGrid400(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = ustarAtResolution(400)
	}
}

func BenchmarkAblationUStarGrid1600(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = ustarAtResolution(1600)
	}
}

func TestAblationUStarGridConvergence(t *testing.T) {
	// The estimate should be grid-stable: the cheap default within 2% of
	// the expensive reference.
	coarse := ustarAtResolution(100)
	ref := ustarAtResolution(1600)
	if math.Abs(coarse-ref) > 0.02*(1+math.Abs(ref)) {
		t.Errorf("U* grid ablation: N=100 gives %g, N=1600 gives %g", coarse, ref)
	}
}

func BenchmarkAblationQuadratureDefault(b *testing.B) {
	f := func(x float64) float64 { return math.Sqrt(x) * math.Sin(3*x) }
	for i := 0; i < b.N; i++ {
		_, _ = numeric.IntegrateOpt(f, 0, 1, numeric.QuadOptions{})
	}
}

func BenchmarkAblationQuadratureLooseTol(b *testing.B) {
	f := func(x float64) float64 { return math.Sqrt(x) * math.Sin(3*x) }
	for i := 0; i < b.N; i++ {
		_, _ = numeric.IntegrateOpt(f, 0, 1, numeric.QuadOptions{AbsTol: 1e-6, RelTol: 1e-5})
	}
}

func BenchmarkAblationClosedFormVsGeneric(b *testing.B) {
	// The closed-form dispatch is the reason dataset-scale estimation is
	// cheap; this pairs with BenchmarkLStarClosedForm/GenericQuadrature to
	// quantify the gap for the same outcome.
	scheme := sampling.UniformTuple(2)
	f, _ := funcs.NewRGPlus(2)
	o := scheme.Sample([]float64{0.6, 0.2}, 0.35)
	b.Run("closed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, _ = f.LStarClosed(o)
		}
	})
	b.Run("generic", func(b *testing.B) {
		lb := funcs.OutcomeLB(f, o)
		for i := 0; i < b.N; i++ {
			_ = core.LStarAt(lb, o.Rho)
		}
	})
}

func TestAblationClosedFormAgreesWithGeneric(t *testing.T) {
	scheme := sampling.UniformTuple(2)
	f, err := funcs.NewRGPlus(2)
	if err != nil {
		t.Fatal(err)
	}
	o := scheme.Sample([]float64{0.6, 0.2}, 0.35)
	closed, ok := f.LStarClosed(o)
	if !ok {
		t.Fatal("closed form expected")
	}
	generic := core.LStarAt(funcs.OutcomeLB(f, o), o.Rho)
	if !numeric.EqualWithin(closed, generic, 1e-6) {
		t.Errorf("closed %g vs generic %g", closed, generic)
	}
}
